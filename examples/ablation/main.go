// Ablation demonstrates why DWarn is a *hybrid* policy (paper §3): with
// two threads, priority reduction alone cannot keep a Dmiss thread out
// of the 2.8 fetch engine's spare slots, so DWarn additionally gates a
// thread whose load actually misses in L2. This example compares full
// DWarn against the prioritisation-only variant across thread counts.
package main

import (
	"fmt"
	"log"

	"dwarn"
)

func main() {
	fmt.Println("DWarn hybrid gate vs prioritisation only (the gate engages below 3 threads):")
	fmt.Printf("%-8s %10s %12s %8s\n", "workload", "DWarn", "DWarn-Prio", "delta")
	for _, wlName := range []string{"2-MIX", "2-MEM", "4-MIX", "4-MEM"} {
		wl, err := dwarn.Workload(wlName)
		if err != nil {
			log.Fatal(err)
		}
		full := mustRun("dwarn", wl)
		prio := mustRun("dwarn-prio", wl)
		fmt.Printf("%-8s %10.3f %12.3f %+7.1f%%\n",
			wlName, full, prio, 100*(full-prio)/prio)
	}
}

func mustRun(policy string, wl dwarn.WorkloadSpec) float64 {
	res, err := dwarn.Run(dwarn.Options{Policy: policy, Workload: wl})
	if err != nil {
		log.Fatal(err)
	}
	return res.Throughput
}
