// Customworkload shows how to define a synthetic benchmark of your own —
// here an extreme pointer-chaser nastier than mcf — and co-schedule it
// with stock SPECint profiles to see how each fetch policy copes.
package main

import (
	"fmt"
	"log"

	"dwarn"
)

func main() {
	// A hypothetical benchmark: half of all loads miss the L1 and most
	// of those go all the way to memory, with almost no instruction-
	// level parallelism. This is the workload DWarn and FLUSH were
	// built for.
	chaser := &dwarn.Profile{
		Name:           "chaser",
		Type:           1, // MEM
		LoadFrac:       0.34,
		StoreFrac:      0.06,
		BranchFrac:     0.16,
		L1MissRate:     0.50,
		L2MissRate:     0.40,
		StoreMissScale: 0.2,
		HardBranchFrac: 0.05,
		TakenBias:      0.6,
		MeanDepDist:    2.5,
		TwoSrcFrac:     0.6,
		NoSrcFrac:      0.02,
		CodeBytes:      16 << 10,
		HotBytes:       4 << 10,
		MidBytes:       96 << 10,
	}
	if err := dwarn.RegisterBenchmark(chaser); err != nil {
		log.Fatal(err)
	}

	wl := dwarn.WorkloadSpec{
		Name:       "chaser-mix",
		Threads:    4,
		Benchmarks: []string{"gzip", "bzip2", "eon", "chaser"},
	}

	fmt.Println("three ILP threads co-scheduled with an extreme pointer-chaser:")
	for _, pol := range dwarn.PaperPolicies() {
		res, err := dwarn.Run(dwarn.Options{Policy: pol, Workload: wl})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s throughput %.3f  (chaser IPC %.3f, gzip IPC %.3f)\n",
			res.Policy, res.Throughput, res.Threads[3].IPC, res.Threads[0].IPC)
	}
}
