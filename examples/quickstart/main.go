// Quickstart: run the paper's 4-MIX workload (gzip, twolf, bzip2, mcf)
// under the DWarn fetch policy on the baseline 8-wide SMT machine and
// print per-thread IPCs.
package main

import (
	"fmt"
	"log"

	"dwarn"
)

func main() {
	wl, err := dwarn.Workload("4-MIX")
	if err != nil {
		log.Fatal(err)
	}

	res, err := dwarn.Run(dwarn.Options{
		Policy:   "dwarn",
		Workload: wl,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s under %s on the %s machine (%d cycles)\n",
		res.Workload, res.Policy, res.Machine, res.Cycles)
	for _, th := range res.Threads {
		fmt.Printf("  %-8s IPC %.3f  (L1 miss %.1f%%, L2 miss %.1f%% of loads)\n",
			th.Benchmark, th.IPC,
			100*th.Pipeline.CommittedL1MissRate(),
			100*th.Pipeline.CommittedL2MissRate())
	}
	fmt.Printf("throughput: %.3f IPC\n", res.Throughput)
}
