// Policycompare reproduces the heart of the paper's evaluation on one
// workload: it runs all six fetch policies on the same workload, computes
// throughput and the Hmean of relative IPCs (against solo baselines),
// and prints a ranking.
//
// Usage: policycompare [workload]    (default 2-MEM)
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"dwarn"
)

func main() {
	wlName := "2-MEM"
	if len(os.Args) > 1 {
		wlName = os.Args[1]
	}
	wl, err := dwarn.Workload(wlName)
	if err != nil {
		log.Fatal(err)
	}

	// Solo baselines for relative IPC (one run per distinct benchmark).
	solo := map[string]float64{}
	for _, b := range wl.Benchmarks {
		if _, ok := solo[b]; ok {
			continue
		}
		res, err := dwarn.RunSolo(nil, b, 0, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		solo[b] = res.Threads[0].IPC
	}

	type row struct {
		policy     string
		throughput float64
		hmean      float64
	}
	var rows []row
	for _, pol := range dwarn.PaperPolicies() {
		res, err := dwarn.Run(dwarn.Options{Policy: pol, Workload: wl})
		if err != nil {
			log.Fatal(err)
		}
		rel := make([]float64, len(res.Threads))
		for i, th := range res.Threads {
			rel[i] = th.IPC / solo[th.Benchmark]
		}
		rows = append(rows, row{res.Policy, res.Throughput, dwarn.Hmean(rel)})
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].hmean > rows[j].hmean })
	fmt.Printf("%s — ranked by Hmean of relative IPCs (the paper's fairness metric):\n", wlName)
	fmt.Printf("%-8s %12s %8s\n", "policy", "throughput", "Hmean")
	for _, r := range rows {
		fmt.Printf("%-8s %12.3f %8.3f\n", r.policy, r.throughput, r.hmean)
	}
}
