// Command smtsim runs one SMT simulation — machine × fetch policy ×
// workload — and prints per-thread and aggregate statistics.
//
// Examples:
//
//	smtsim -policy dwarn -workload 4-MIX
//	smtsim -policy flush -workload 8-MEM -machine deep -measure 300000
//	smtsim -solo mcf
//	smtsim -policy dwarn -workload 4-MIX -json
//	smtsim -policy icount -workload 2-MEM -trace run.dwt   # record a uop trace
//
// A trace recorded with -trace replays through `smttrace replay` under
// any policy, reproducing this run bit for bit.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dwarn/internal/config"
	"dwarn/internal/core"
	"dwarn/internal/out"
	"dwarn/internal/sim"
	"dwarn/internal/trace"
	"dwarn/internal/workload"
)

func main() {
	var (
		policy    = flag.String("policy", "dwarn", "fetch policy: "+strings.Join(core.Policies(), ", "))
		wlName    = flag.String("workload", "4-MIX", "Table 2(b) workload name")
		solo      = flag.String("solo", "", "run one benchmark alone instead of a workload")
		machine   = flag.String("machine", "baseline", "machine: baseline, small, deep")
		seed      = flag.Uint64("seed", sim.DefaultSeed, "random seed")
		warmup    = flag.Int64("warmup", 60000, "warmup cycles")
		measure   = flag.Int64("measure", 150000, "measured cycles")
		asJSON    = flag.Bool("json", false, "emit the full result record as JSON")
		tracePath = flag.String("trace", "", "record the run's uop streams to this trace file")
		listWork  = flag.Bool("list", false, "list workloads and benchmarks, then exit")
	)
	flag.Parse()

	if *listWork {
		fmt.Println("workloads:")
		for _, wl := range workload.Workloads() {
			fmt.Printf("  %-6s %v\n", wl.Name, wl.Benchmarks)
		}
		fmt.Println("benchmarks:", strings.Join(workload.Names(), ", "))
		fmt.Println("policies:  ", strings.Join(core.Policies(), ", "))
		return
	}

	cfg, err := config.ByName(*machine)
	if err != nil {
		fatal(err)
	}

	var wl workload.Workload
	if *solo != "" {
		wl = sim.SoloWorkload(*solo)
	} else {
		wl, err = workload.GetWorkload(*wlName)
		if err != nil {
			fatal(err)
		}
	}

	var rec *trace.Writer
	if *tracePath != "" {
		rec = trace.NewWriter(wl.Name, *seed)
	}

	res, err := sim.Run(sim.Options{
		Config:        cfg,
		Policy:        *policy,
		Workload:      wl,
		Record:        rec,
		Seed:          *seed,
		WarmupCycles:  *warmup,
		MeasureCycles: *measure,
	})
	if err != nil {
		fatal(err)
	}

	if rec != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		n, err := rec.WriteTo(f)
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "smtsim: recorded %s (%d bytes)\n", *tracePath, n)
	}

	if *asJSON {
		if err := out.WriteJSON(os.Stdout, res); err != nil {
			fatal(err)
		}
		return
	}
	out.PrintResult(os.Stdout, res)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smtsim:", err)
	os.Exit(1)
}
