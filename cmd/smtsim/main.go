// Command smtsim runs one SMT simulation — machine × fetch policy ×
// workload — and prints per-thread and aggregate statistics.
//
// Examples:
//
//	smtsim -policy dwarn -workload 4-MIX
//	smtsim -policy flush -workload 8-MEM -machine deep -measure 300000
//	smtsim -solo mcf
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dwarn/internal/config"
	"dwarn/internal/core"
	"dwarn/internal/sim"
	"dwarn/internal/workload"
)

func main() {
	var (
		policy   = flag.String("policy", "dwarn", "fetch policy: "+strings.Join(core.Policies(), ", "))
		wlName   = flag.String("workload", "4-MIX", "Table 2(b) workload name")
		solo     = flag.String("solo", "", "run one benchmark alone instead of a workload")
		machine  = flag.String("machine", "baseline", "machine: baseline, small, deep")
		seed     = flag.Uint64("seed", sim.DefaultSeed, "random seed")
		warmup   = flag.Int64("warmup", 60000, "warmup cycles")
		measure  = flag.Int64("measure", 150000, "measured cycles")
		listWork = flag.Bool("list", false, "list workloads and benchmarks, then exit")
	)
	flag.Parse()

	if *listWork {
		fmt.Println("workloads:")
		for _, wl := range workload.Workloads() {
			fmt.Printf("  %-6s %v\n", wl.Name, wl.Benchmarks)
		}
		fmt.Println("benchmarks:", strings.Join(workload.Names(), ", "))
		fmt.Println("policies:  ", strings.Join(core.Policies(), ", "))
		return
	}

	cfg, err := config.ByName(*machine)
	if err != nil {
		fatal(err)
	}

	var wl workload.Workload
	if *solo != "" {
		wl = sim.SoloWorkload(*solo)
	} else {
		wl, err = workload.GetWorkload(*wlName)
		if err != nil {
			fatal(err)
		}
	}

	res, err := sim.Run(sim.Options{
		Config:        cfg,
		Policy:        *policy,
		Workload:      wl,
		Seed:          *seed,
		WarmupCycles:  *warmup,
		MeasureCycles: *measure,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("machine=%s policy=%s workload=%s cycles=%d\n", res.Machine, res.Policy, res.Workload, res.Cycles)
	fmt.Printf("throughput: %.3f IPC\n", res.Throughput)
	if f := res.FlushedFraction(); f > 0 {
		fmt.Printf("flushed/fetched: %.1f%%\n", 100*f)
	}
	for i, t := range res.Threads {
		fmt.Printf("  t%d %-8s IPC %.3f  fetched %d (wp %.0f%%)  L1m %.4f  L2m %.4f  TLBm %d  bpred-mr %.3f  imiss %.4f\n",
			i, t.Benchmark, t.IPC,
			t.Pipeline.Fetched, 100*float64(t.Pipeline.WrongPathFetched)/float64(max64(t.Pipeline.Fetched, 1)),
			t.Mem.LoadL1MissRate(), t.Mem.LoadL2MissRate(), t.Mem.TLBMisses,
			t.Bpred.MispredictRate(), imissRate(t))
	}
}

func imissRate(t sim.ThreadResult) float64 {
	if t.Mem.IFetches == 0 {
		return 0
	}
	return float64(t.Mem.IMisses) / float64(t.Mem.IFetches)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smtsim:", err)
	os.Exit(1)
}
