// Command smtsim runs SMT simulations — machine × fetch policy ×
// workload — and prints per-thread and aggregate statistics. Runs are
// selected by flags, or declaratively with -spec: a JSON spec file
// holding one run or a whole sweep grid (see examples/specs/), each
// cell reported with its content-addressed fingerprint.
//
// Examples:
//
//	smtsim -policy dwarn -workload 4-MIX
//	smtsim -policy flush -workload 8-MEM -machine deep -measure 300000
//	smtsim -solo mcf
//	smtsim -policy dwarn -workload 4-MIX -json
//	smtsim -policy icount -workload 2-MEM -trace run.dwt   # record a uop trace
//	smtsim -spec examples/specs/dwarn-warn-grid.json       # run a sweep spec
//
// A trace recorded with -trace replays through `smttrace replay` under
// any policy, reproducing this run bit for bit.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dwarn/internal/config"
	"dwarn/internal/core"
	"dwarn/internal/out"
	"dwarn/internal/prof"
	"dwarn/internal/sim"
	"dwarn/internal/spec"
	"dwarn/internal/stats"
	"dwarn/internal/trace"
	"dwarn/internal/workload"
)

func main() {
	var (
		policy    = flag.String("policy", "dwarn", "fetch policy: "+strings.Join(core.Policies(), ", "))
		wlName    = flag.String("workload", "4-MIX", "Table 2(b) workload name")
		solo      = flag.String("solo", "", "run one benchmark alone instead of a workload")
		machine   = flag.String("machine", "baseline", "machine: baseline, small, deep")
		seed      = flag.Uint64("seed", sim.DefaultSeed, "random seed")
		warmup    = flag.Int64("warmup", 60000, "warmup cycles")
		measure   = flag.Int64("measure", 150000, "measured cycles")
		asJSON    = flag.Bool("json", false, "emit the full result record as JSON")
		tracePath = flag.String("trace", "", "record the run's uop streams to this trace file")
		specPath  = flag.String("spec", "", "run a JSON spec file (one run or a sweep grid) instead of the flag selection")
		maxCells  = flag.Int("max-cells", spec.DefaultMaxCells, "largest sweep expansion a -spec file may request")
		listWork  = flag.Bool("list", false, "list workloads and benchmarks, then exit")
	)
	profFlags := prof.Register()
	flag.Parse()

	stopProf, err := profFlags.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if *specPath != "" {
		runSpecFile(*specPath, *maxCells, *asJSON)
		return
	}

	if *listWork {
		fmt.Println("workloads:")
		for _, wl := range workload.Workloads() {
			fmt.Printf("  %-6s %v\n", wl.Name, wl.Benchmarks)
		}
		fmt.Println("benchmarks:", strings.Join(workload.Names(), ", "))
		fmt.Println("policies:  ", strings.Join(core.Policies(), ", "))
		return
	}

	cfg, err := config.ByName(*machine)
	if err != nil {
		fatal(err)
	}

	var wl workload.Workload
	if *solo != "" {
		wl = sim.SoloWorkload(*solo)
	} else {
		wl, err = workload.GetWorkload(*wlName)
		if err != nil {
			fatal(err)
		}
	}

	var rec *trace.Writer
	if *tracePath != "" {
		rec = trace.NewWriter(wl.Name, *seed)
	}

	res, err := sim.Run(sim.Options{
		Config:        cfg,
		Policy:        *policy,
		Workload:      wl,
		Record:        rec,
		Seed:          *seed,
		WarmupCycles:  *warmup,
		MeasureCycles: *measure,
	})
	if err != nil {
		fatal(err)
	}

	if rec != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		n, err := rec.WriteTo(f)
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "smtsim: recorded %s (%d bytes)\n", *tracePath, n)
	}

	if *asJSON {
		if err := out.WriteJSON(os.Stdout, res); err != nil {
			fatal(err)
		}
		return
	}
	out.PrintResult(os.Stdout, res)
}

// specCell is the JSON record emitted per spec cell: the canonical
// identity plus the full result (and relative-IPC metrics when the
// spec asks for baselines).
type specCell struct {
	Fingerprint string         `json:"fingerprint"`
	Spec        spec.RunSpec   `json:"spec"`
	Result      *sim.Result    `json:"result"`
	Summary     *stats.Summary `json:"summary,omitempty"`
}

// runSpecFile executes every cell of a spec file in expansion order.
// Trace references in the file resolve as filesystem paths.
func runSpecFile(path string, maxCells int, asJSON bool) {
	f, err := spec.LoadFile(path)
	if err != nil {
		fatal(err)
	}
	runs, err := f.Runs(maxCells)
	if err != nil {
		fatal(err)
	}

	var cells []specCell
	soloIPC := map[string]float64{} // solo fingerprint → IPC, shared across cells
	for _, rs := range runs {
		resolved, err := rs.Resolve(spec.FileTraces{})
		if err != nil {
			fatal(err)
		}
		res, err := sim.Run(resolved.Options)
		if err != nil {
			fatal(err)
		}
		var summary *stats.Summary
		if resolved.Spec.Baselines {
			if summary, err = specBaselines(resolved, res, soloIPC); err != nil {
				fatal(err)
			}
		}
		if asJSON {
			cells = append(cells, specCell{Fingerprint: resolved.Fingerprint, Spec: resolved.Spec, Result: res, Summary: summary})
			continue
		}
		fmt.Printf("%s/%s/%s seed=%d fingerprint=%s\n",
			resolved.Spec.Machine.Name, resolved.Spec.Policy.ID(), resolved.Spec.Workload.ID(),
			resolved.Spec.Seed, resolved.Fingerprint[:12])
		out.PrintResult(os.Stdout, res)
		if summary != nil {
			fmt.Printf("baselines: Hmean %.3f  weighted speedup %.3f\n", summary.Hmean, summary.WeightedSpeedup)
		}
		fmt.Println()
	}
	if asJSON {
		if err := out.WriteJSON(os.Stdout, cells); err != nil {
			fatal(err)
		}
	}
}

// specBaselines runs each distinct benchmark of a finished cell solo
// under ICOUNT (same machine, seed, and protocol — the same identity
// the service's baselines path uses) and computes the relative-IPC
// summary. soloIPC memoises solos by fingerprint across cells.
func specBaselines(resolved *spec.Resolved, res *sim.Result, soloIPC map[string]float64) (*stats.Summary, error) {
	byBench := map[string]float64{}
	for _, b := range resolved.Options.Workload.Benchmarks {
		if _, ok := byBench[b]; ok {
			continue
		}
		soloSpec := spec.RunSpec{
			Machine:       resolved.Spec.Machine,
			Policy:        spec.Policy{Name: "icount"},
			Workload:      spec.Workload{Solo: b},
			Seed:          resolved.Spec.Seed,
			WarmupCycles:  resolved.Spec.WarmupCycles,
			MeasureCycles: resolved.Spec.MeasureCycles,
		}
		sr, err := soloSpec.Resolve(nil)
		if err != nil {
			return nil, err
		}
		ipc, ok := soloIPC[sr.Fingerprint]
		if !ok {
			solo, err := sim.Run(sr.Options)
			if err != nil {
				return nil, err
			}
			ipc = solo.Threads[0].IPC
			soloIPC[sr.Fingerprint] = ipc
		}
		byBench[b] = ipc
	}
	solo := make([]float64, len(res.Threads))
	for i, t := range res.Threads {
		solo[i] = byBench[t.Benchmark]
	}
	return stats.Summarize(res.IPCs(), solo)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smtsim:", err)
	os.Exit(1)
}
