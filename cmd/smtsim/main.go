// Command smtsim runs SMT simulations — machine × fetch policy ×
// workload — and prints per-thread and aggregate statistics. Runs are
// selected by flags, or declaratively with -spec: a JSON spec file
// holding one run or a whole sweep grid (see examples/specs/), each
// cell reported with its content-addressed fingerprint. Sweep cells
// fan out over the shared execution layer (-parallel bounds the worker
// pool); with -store DIR every finished cell persists to a durable
// result store, so an interrupted sweep rerun with the same -store
// resumes by skipping everything already simulated. One failing cell
// is reported in place and never aborts the rest of the grid.
//
// Examples:
//
//	smtsim -policy dwarn -workload 4-MIX
//	smtsim -policy flush -workload 8-MEM -machine deep -measure 300000
//	smtsim -solo mcf
//	smtsim -policy dwarn -workload 4-MIX -json
//	smtsim -policy icount -workload 2-MEM -trace run.dwt    # record a uop trace
//	smtsim -spec examples/specs/dwarn-warn-grid.json        # run a sweep spec
//	smtsim -spec examples/specs/parallel-grid.json -parallel 8 -store /tmp/sweep
//	smtsim -policy dwarn -workload 4-MIX -metrics run.prom  # dump metrics
//	smtsim -policy dwarn -workload 4-MIX -timeline out.jsonl  # interval frames
//	smtsim -policy dwarn -workload 4-MIX -timeline out.csv -timeline-interval 5000
//
// A trace recorded with -trace replays through `smttrace replay` under
// any policy, reproducing this run bit for bit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"dwarn/internal/ckpt"
	"dwarn/internal/config"
	"dwarn/internal/core"
	"dwarn/internal/exec"
	"dwarn/internal/obs"
	"dwarn/internal/out"
	"dwarn/internal/prof"
	"dwarn/internal/sim"
	"dwarn/internal/spec"
	"dwarn/internal/stats"
	"dwarn/internal/timeline"
	"dwarn/internal/trace"
	"dwarn/internal/workload"
)

func main() {
	var (
		policy    = flag.String("policy", "dwarn", "fetch policy: "+strings.Join(core.Policies(), ", "))
		wlName    = flag.String("workload", "4-MIX", "Table 2(b) workload name")
		solo      = flag.String("solo", "", "run one benchmark alone instead of a workload")
		machine   = flag.String("machine", "baseline", "machine: baseline, small, deep")
		seed      = flag.Uint64("seed", sim.DefaultSeed, "random seed")
		warmup    = flag.Int64("warmup", 60000, "warmup cycles")
		measure   = flag.Int64("measure", 150000, "measured cycles")
		asJSON    = flag.Bool("json", false, "emit the full result record as JSON")
		tracePath = flag.String("trace", "", "record the run's uop streams to this trace file")
		specPath  = flag.String("spec", "", "run a JSON spec file (one run or a sweep grid) instead of the flag selection")
		maxCells  = flag.Int("max-cells", spec.DefaultMaxCells, "largest sweep expansion a -spec file may request")
		parallel  = flag.Int("parallel", 0, "max concurrent sweep cells with -spec (0 = GOMAXPROCS)")
		storeDir  = flag.String("store", "", "persist -spec cell results in this directory; rerunning resumes past stored cells")
		ckptOn    = flag.Bool("ckpt", true, "with -spec, fork sweep cells sharing a (machine, workload, seed) group from one post-prewarm checkpoint instead of warming each cold")
		ckptDir   = flag.String("ckpt-dir", "", "persist checkpoints in this directory (implies -ckpt); rerunning forks even the first cell of each warm group")
		listWork  = flag.Bool("list", false, "list workloads and benchmarks, then exit")
		metrics   = flag.String("metrics", "", "after the run or sweep, dump the metrics registry to this file in Prometheus text format")
		tlPath    = flag.String("timeline", "", "sample interval frames during the measured window and write them to this file (.csv extension → CSV, otherwise JSONL)")
		tlIvl     = flag.Int64("timeline-interval", timeline.DefaultIntervalCycles, "cycles per timeline interval with -timeline")
		tlFrames  = flag.Int("timeline-frames", timeline.DefaultMaxFrames, "most recent interval frames retained with -timeline")
	)
	profFlags := prof.Register()
	flag.Parse()

	stopProf, err := profFlags.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if *specPath != "" {
		ok := runSpecFile(*specPath, *maxCells, *parallel, *storeDir, *ckptDir, *ckptOn, *asJSON)
		dumpMetrics(*metrics)
		if !ok {
			stopProf()
			os.Exit(1)
		}
		return
	}

	if *listWork {
		fmt.Println("workloads:")
		for _, wl := range workload.Workloads() {
			fmt.Printf("  %-6s %v\n", wl.Name, wl.Benchmarks)
		}
		fmt.Println("benchmarks:", strings.Join(workload.Names(), ", "))
		fmt.Println("policies:  ", strings.Join(core.Policies(), ", "))
		return
	}

	cfg, err := config.ByName(*machine)
	if err != nil {
		fatal(err)
	}

	var wl workload.Workload
	if *solo != "" {
		wl = sim.SoloWorkload(*solo)
	} else {
		wl, err = workload.GetWorkload(*wlName)
		if err != nil {
			fatal(err)
		}
	}

	var rec *trace.Writer
	if *tracePath != "" {
		rec = trace.NewWriter(wl.Name, *seed)
	}

	var tlCfg *timeline.Config
	if *tlPath != "" {
		tlCfg = &timeline.Config{IntervalCycles: *tlIvl, MaxFrames: *tlFrames}
	}

	res, err := sim.Run(sim.Options{
		Config:        cfg,
		Policy:        *policy,
		Workload:      wl,
		Record:        rec,
		Seed:          *seed,
		WarmupCycles:  *warmup,
		MeasureCycles: *measure,
		Timeline:      tlCfg,
	})
	if err != nil {
		fatal(err)
	}
	if *tlPath != "" {
		writeTimeline(*tlPath, res.Timeline)
	}

	if rec != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		n, err := rec.WriteTo(f)
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "smtsim: recorded %s (%d bytes)\n", *tracePath, n)
	}

	if *asJSON {
		if err := out.WriteJSON(os.Stdout, res); err != nil {
			fatal(err)
		}
		dumpMetrics(*metrics)
		return
	}
	out.PrintResult(os.Stdout, res)
	dumpMetrics(*metrics)
}

// writeTimeline writes a run's interval frames to path: CSV when the
// file name ends in .csv (one row per thread per frame), JSONL
// otherwise (one frame per line).
func writeTimeline(path string, tl *timeline.Timeline) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if strings.HasSuffix(path, ".csv") {
		err = tl.WriteCSV(f)
	} else {
		err = tl.WriteJSONL(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "smtsim: timeline written to %s (%d frames, %d cycles/interval)\n",
		path, len(tl.Frames), tl.IntervalCycles)
}

// dumpMetrics writes the process-wide registry — the engine's run
// snapshots and, after a -spec sweep, the execution layer's series —
// as Prometheus text exposition. No-op without -metrics.
func dumpMetrics(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	err = obs.Default.WritePrometheus(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "smtsim: metrics written to %s\n", path)
}

// specCell is the JSON record emitted per spec cell: the canonical
// identity plus the full result (and relative-IPC metrics when the
// spec asks for baselines). A failing cell reports its error in place;
// its siblings still carry results.
type specCell struct {
	Fingerprint string         `json:"fingerprint"`
	Spec        spec.RunSpec   `json:"spec"`
	Result      *sim.Result    `json:"result,omitempty"`
	Summary     *stats.Summary `json:"summary,omitempty"`
	Cached      bool           `json:"cached,omitempty"`
	Error       string         `json:"error,omitempty"`
}

// runSpecFile executes every cell of a spec file through the shared
// execution layer — parallel workers bounded, memoised by fingerprint,
// reported in expansion order regardless of completion order — and
// reports whether every cell succeeded. Trace references in the file
// resolve as filesystem paths. Interrupting the sweep (SIGINT/SIGTERM)
// stops cells cooperatively; with -store the finished prefix survives
// for the next run to resume from.
func runSpecFile(path string, maxCells, parallel int, storeDir, ckptDir string, ckptOn, asJSON bool) bool {
	f, err := spec.LoadFile(path)
	if err != nil {
		fatal(err)
	}
	runs, err := f.Runs(maxCells)
	if err != nil {
		fatal(err)
	}
	resolved := make([]*spec.Resolved, len(runs))
	for i, rs := range runs {
		if resolved[i], err = rs.Resolve(spec.FileTraces{}); err != nil {
			fatal(err)
		}
	}

	var store exec.Store
	if storeDir != "" {
		ds, err := exec.NewDirStore(storeDir)
		if err != nil {
			fatal(err)
		}
		store = ds
	}
	var ckpts ckpt.Store
	if ckptOn || ckptDir != "" {
		chain := ckpt.Chain{ckpt.NewMemStore(0)}
		if ckptDir != "" {
			cds, err := ckpt.NewDirStore(ckptDir)
			if err != nil {
				fatal(err)
			}
			chain = append(chain, cds)
		}
		ckpts = chain
	}
	ex := exec.New(exec.Options{Workers: parallel, Store: store, Checkpoints: ckpts})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	progress := func(ev exec.Event) {
		if !ev.Terminal() {
			return
		}
		note := ev.State
		if ev.Err != nil {
			note = fmt.Sprintf("%s (%v)", ev.State, ev.Err)
		}
		fmt.Fprintf(os.Stderr, "smtsim: [%d/%d] %s/%s/%s seed=%d %s\n",
			ev.Completed, ev.Total,
			resolved[ev.Index].Spec.Machine.Name, resolved[ev.Index].Spec.Policy.ID(),
			resolved[ev.Index].Spec.Workload.ID(), resolved[ev.Index].Spec.Seed, note)
	}
	results := ex.Execute(ctx, resolved, progress)

	// Baselines pass: every distinct solo cell the finished cells need,
	// as one batch over the same executor and store.
	ok := true
	summaries, err := exec.SoloSummaries(ctx, ex, resolved, results)
	if err != nil {
		if ctx.Err() == nil {
			fatal(err)
		}
		// Interrupted mid-baselines: the cells below still print, but
		// their summaries are missing — say so and exit nonzero rather
		// than passing off a truncated run as complete.
		fmt.Fprintf(os.Stderr, "smtsim: baselines incomplete: %v\n", err)
		ok = false
	}
	var cells []specCell
	for i, r := range results {
		if r.Err != nil {
			ok = false
		}
		if asJSON {
			c := specCell{Fingerprint: r.Fingerprint, Spec: resolved[i].Spec, Result: r.Result, Summary: summaries[i], Cached: r.Cached}
			if r.Err != nil {
				c.Error = r.Err.Error()
			}
			cells = append(cells, c)
			continue
		}
		if r.Err != nil {
			fmt.Printf("%s/%s/%s seed=%d fingerprint=%s\n",
				resolved[i].Spec.Machine.Name, resolved[i].Spec.Policy.ID(), resolved[i].Spec.Workload.ID(),
				resolved[i].Spec.Seed, r.Fingerprint[:12])
			fmt.Printf("error: %v\n\n", r.Err)
			continue
		}
		// The digest is the cell's behavioural identity (bit-identical
		// iff the simulation behaved identically) — the line a
		// distributed run is diffed against a serial one with.
		fmt.Printf("%s/%s/%s seed=%d fingerprint=%s digest=%s\n",
			resolved[i].Spec.Machine.Name, resolved[i].Spec.Policy.ID(), resolved[i].Spec.Workload.ID(),
			resolved[i].Spec.Seed, r.Fingerprint[:12], r.Result.CounterDigest()[:16])
		out.PrintResult(os.Stdout, r.Result)
		if summaries[i] != nil {
			fmt.Printf("baselines: Hmean %.3f  weighted speedup %.3f\n", summaries[i].Hmean, summaries[i].WeightedSpeedup)
		}
		fmt.Println()
	}
	if asJSON {
		if err := out.WriteJSON(os.Stdout, cells); err != nil {
			fatal(err)
		}
	}
	return ok
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smtsim:", err)
	os.Exit(1)
}
