// Command smttrace records, inspects, and replays binary uop traces.
//
//	smttrace record -workload 4-MIX -uops 400000 -o 4mix.dwt
//	smttrace record -benchmarks gzip,mcf -seed 7 -o custom.dwt
//	smttrace info 4mix.dwt
//	smttrace replay 4mix.dwt -policy dwarn
//	smttrace replay 4mix.dwt -policy flush -machine deep -json
//
// `record` draws each thread's correct-path uop stream straight from
// the synthetic generators (no pipeline in the loop), so recording is
// fast and the trace is policy-independent. `replay` feeds a recorded
// trace back through the full simulator; the run is bit-identical to a
// live synthetic run of the same workload and seed, under any policy.
// To capture exactly the uops one live run consumed instead, use
// `smtsim -trace`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dwarn/internal/config"
	"dwarn/internal/core"
	"dwarn/internal/obs"
	"dwarn/internal/out"
	"dwarn/internal/sim"
	"dwarn/internal/timeline"
	"dwarn/internal/trace"
	"dwarn/internal/workload"
)

// logger carries record/replay diagnostics as structured key=value
// lines on stderr, keeping stdout for the command's actual output.
// SMTTRACE_LOG=debug|warn|error|off overrides the default level.
var logger = obs.NewLogger(os.Stderr, logLevelFromEnv())

func logLevelFromEnv() obs.Level {
	if s := os.Getenv("SMTTRACE_LOG"); s != "" {
		if lvl, err := obs.ParseLevel(s); err == nil {
			return lvl
		}
	}
	return obs.LevelInfo
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		cmdRecord(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: smttrace <command> [flags]

commands:
  record   record a synthetic workload's uop streams to a trace file
  info     print a trace file's metadata
  replay   run a simulation from a recorded trace

run 'smttrace <command> -h' for command flags`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smttrace:", err)
	os.Exit(1)
}

// splitFileArg allows the trace file to come before the flags
// (`smttrace replay t.dwt -policy flush`), which the flag package's
// stop-at-first-positional rule would otherwise forbid.
func splitFileArg(args []string) (string, []string) {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		return args[0], args[1:]
	}
	return "", args
}

func cmdRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		wlName  = fs.String("workload", "", "Table 2(b) workload name")
		benches = fs.String("benchmarks", "", "comma-separated benchmark names (custom workload)")
		solo    = fs.String("solo", "", "one benchmark alone")
		seed    = fs.Uint64("seed", sim.DefaultSeed, "random seed")
		uops    = fs.Int("uops", 400_000, "correct-path uops to record per thread")
		outPath = fs.String("o", "trace.dwt", "output file")
	)
	fs.Parse(args)

	var wl workload.Workload
	var err error
	switch {
	case *solo != "":
		wl = sim.SoloWorkload(*solo)
	case *benches != "":
		names := strings.Split(*benches, ",")
		wl, err = workload.Custom("custom:"+strings.Join(names, "+"), names)
	case *wlName != "":
		wl, err = workload.GetWorkload(*wlName)
	default:
		err = fmt.Errorf("record needs -workload, -benchmarks, or -solo")
	}
	if err != nil {
		fatal(err)
	}
	if *uops <= 0 {
		fatal(fmt.Errorf("-uops must be positive"))
	}

	start := time.Now()
	srcs, err := wl.Generators(*seed)
	if err != nil {
		fatal(err)
	}
	w := trace.NewWriter(wl.Name, *seed)
	for _, src := range srcs {
		rec := w.Record(src)
		for i := 0; i < *uops; i++ {
			rec.Next()
		}
	}

	f, err := os.Create(*outPath)
	if err != nil {
		fatal(err)
	}
	n, err := w.WriteTo(f)
	if err == nil {
		err = f.Close()
	}
	if err != nil {
		fatal(err)
	}
	logger.Info("trace recorded",
		"file", *outPath, "workload", wl.Name, "seed", *seed,
		"threads", len(srcs), "uops_per_thread", *uops, "bytes", n,
		"dur", time.Since(start).Round(time.Millisecond))
	fmt.Printf("recorded %s: %d threads × %d uops, %d bytes (%.2f bytes/uop)\n",
		*outPath, len(srcs), *uops, n, float64(n)/float64(len(srcs)**uops))
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit metadata as JSON")
	file, rest := splitFileArg(args)
	fs.Parse(rest)
	if file == "" && fs.NArg() == 1 {
		file = fs.Arg(0)
	}
	if file == "" || fs.NArg() > 1 {
		fatal(fmt.Errorf("info needs exactly one trace file"))
	}
	tr, err := trace.ReadFile(file)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		type threadInfo struct {
			Benchmark string `json:"benchmark"`
			Uops      uint64 `json:"uops"`
			Base      string `json:"base"`
			Blocks    int    `json:"blocks"`
		}
		info := struct {
			Workload string       `json:"workload"`
			Seed     uint64       `json:"seed"`
			Digest   string       `json:"digest"`
			Threads  []threadInfo `json:"threads"`
		}{Workload: tr.Workload, Seed: tr.Seed, Digest: tr.Digest}
		for i := range tr.Threads {
			th := &tr.Threads[i]
			info.Threads = append(info.Threads, threadInfo{
				Benchmark: th.Meta.Benchmark,
				Uops:      th.Uops,
				Base:      fmt.Sprintf("%#x", th.Meta.Base),
				Blocks:    len(th.Meta.BlockStarts),
			})
		}
		if err := out.WriteJSON(os.Stdout, info); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("workload: %s  seed: %d  threads: %d  uops: %d\n", tr.Workload, tr.Seed, len(tr.Threads), tr.Uops())
	fmt.Printf("digest:   %s\n", tr.Digest)
	for i := range tr.Threads {
		th := &tr.Threads[i]
		fmt.Printf("  t%d %-8s uops %-8d base %#x  blocks %d  code %dB hot %dB mid %dB\n",
			i, th.Meta.Benchmark, th.Uops, th.Meta.Base, len(th.Meta.BlockStarts),
			th.Meta.Footprint.CodeBytes, th.Meta.Footprint.HotBytes, th.Meta.Footprint.MidBytes)
	}
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		policy  = fs.String("policy", "dwarn", "fetch policy: "+strings.Join(core.Policies(), ", "))
		machine = fs.String("machine", "baseline", "machine: baseline, small, deep")
		warmup  = fs.Int64("warmup", 60000, "warmup cycles")
		measure = fs.Int64("measure", 150000, "measured cycles")
		asJSON  = fs.Bool("json", false, "emit the full result record as JSON")
		tlPath  = fs.String("timeline", "", "sample interval frames during the measured window and write them to this file (.csv extension → CSV, otherwise JSONL)")
		tlIvl   = fs.Int64("timeline-interval", timeline.DefaultIntervalCycles, "cycles per timeline interval with -timeline")
	)
	file, rest := splitFileArg(args)
	fs.Parse(rest)
	if file == "" && fs.NArg() == 1 {
		file = fs.Arg(0)
	}
	if file == "" || fs.NArg() > 1 {
		fatal(fmt.Errorf("replay needs exactly one trace file"))
	}
	tr, err := trace.ReadFile(file)
	if err != nil {
		fatal(err)
	}
	cfg, err := config.ByName(*machine)
	if err != nil {
		fatal(err)
	}

	var tlCfg *timeline.Config
	if *tlPath != "" {
		tlCfg = &timeline.Config{IntervalCycles: *tlIvl}
	}

	start := time.Now()
	res, err := sim.Run(sim.Options{
		Config:        cfg,
		Policy:        *policy,
		Trace:         tr,
		WarmupCycles:  *warmup,
		MeasureCycles: *measure,
		Timeline:      tlCfg,
	})
	if err != nil {
		logger.Error("replay failed", "file", file, "policy", *policy, "err", err)
		fatal(err)
	}
	if *tlPath != "" {
		writeTimeline(*tlPath, res.Timeline)
	}
	logger.Info("replay finished",
		"file", file, "workload", tr.Workload, "digest", tr.Digest,
		"policy", res.Policy, "machine", *machine,
		"cycles", res.Cycles, "throughput", res.Throughput,
		"dur", time.Since(start).Round(time.Millisecond))
	if *asJSON {
		if err := out.WriteJSON(os.Stdout, res); err != nil {
			fatal(err)
		}
		return
	}
	out.PrintResult(os.Stdout, res)
}

// writeTimeline writes a replay's interval frames to path: CSV when the
// file name ends in .csv, JSONL otherwise. A trace replay's frames are
// bit-identical to a live run of the same workload and seed under the
// same policy — the property the timeline determinism tests pin down.
func writeTimeline(path string, tl *timeline.Timeline) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if strings.HasSuffix(path, ".csv") {
		err = tl.WriteCSV(f)
	} else {
		err = tl.WriteJSONL(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	logger.Info("timeline written", "file", path, "frames", len(tl.Frames), "interval", tl.IntervalCycles)
}
