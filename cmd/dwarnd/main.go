// Command dwarnd serves the SMT simulator over HTTP: submit
// simulations and policy × workload sweeps as async jobs, poll their
// status, and let the content-addressed result cache absorb repeated
// work. See README.md for the API walkthrough and DESIGN.md §dwarnd for
// the architecture.
//
// Examples:
//
//	dwarnd -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/simulations \
//	    -d '{"policy":"dwarn","workload":"4-MIX"}'
//	curl -s localhost:8080/v1/simulations/sim-000001
//	curl -s -X POST localhost:8080/v1/sweeps -d '{"workloads":["4-MIX"]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dwarn/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker pool size")
		queueDepth   = flag.Int("queue", 256, "job queue depth")
		cacheEntries = flag.Int("cache", 4096, "result cache entries")
		maxCycles    = flag.Int64("max-cycles", 5_000_000, "per-request cycle cap (warmup and measure each; <0 = uncapped)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to drain jobs on shutdown")
	)
	flag.Parse()

	srv := service.New(service.Options{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		CacheEntries: *cacheEntries,
		MaxCycles:    *maxCycles,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("dwarnd: listening on %s (%d workers, queue %d, cache %d entries)",
			*addr, *workers, *queueDepth, *cacheEntries)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("dwarnd: %v", err)
		}
	case <-ctx.Done():
	}

	// Stop accepting connections, then drain queued and in-flight jobs.
	log.Printf("dwarnd: shutting down, draining jobs (up to %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("dwarnd: http shutdown: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "dwarnd: job drain: %v\n", err)
		os.Exit(1)
	}
	log.Print("dwarnd: drained cleanly")
}
