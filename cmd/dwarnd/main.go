// Command dwarnd serves the SMT simulator over HTTP: submit
// simulations as async jobs and policy × workload sweeps into the
// shared parallel execution layer, poll status (sweeps report partial
// per-cell progress), follow a sweep's SSE completion stream, cancel
// cooperatively, and let the content-addressed result cache absorb
// repeated work. See README.md for the API walkthrough and DESIGN.md
// §dwarnd for the architecture.
//
// Examples:
//
//	dwarnd -addr :8080
//	dwarnd -spec examples/specs/table4-sweep.json   # pre-warm the cache
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/simulations \
//	    -d '{"policy":"dwarn","workload":"4-MIX"}'
//	curl -s localhost:8080/v1/simulations/sim-000001
//	curl -s -X POST localhost:8080/v1/sweeps -d '{"workloads":["4-MIX"]}'
//	curl -s -X POST localhost:8080/v2/sweeps \
//	    -d '{"policies":[{"name":"dwarn","params":{"warn":[1,2,4]}}],"workloads":[{"name":"2-MEM"}]}'
//	curl -sN localhost:8080/v2/sweeps/sweep-000001/events   # SSE progress
//	curl -s -X DELETE localhost:8080/v2/sweeps/sweep-000001 # cancel
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dwarn/internal/service"
	"dwarn/internal/spec"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker pool size")
		queueDepth   = flag.Int("queue", 256, "job queue depth")
		cacheEntries = flag.Int("cache", 4096, "result cache entries")
		maxCycles    = flag.Int64("max-cycles", 5_000_000, "per-request cycle cap (warmup and measure each; <0 = uncapped)")
		maxCells     = flag.Int("max-sweep-cells", 1024, "largest sweep expansion one request may fan out")
		maxSweeps    = flag.Int("max-active-sweeps", 16, "concurrently executing sweeps before submissions fail fast with 503")
		specPath     = flag.String("spec", "", "submit this JSON spec file (run or sweep) at startup to pre-warm the cache")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to drain jobs on shutdown")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		// The profiler gets its own mux on its own (typically loopback)
		// address so diagnostics are never exposed on the service port.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("dwarnd: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("dwarnd: pprof server: %v", err)
			}
		}()
	}

	srv := service.New(service.Options{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		CacheEntries:    *cacheEntries,
		MaxCycles:       *maxCycles,
		MaxSweepCells:   *maxCells,
		MaxActiveSweeps: *maxSweeps,
	})

	if *specPath != "" {
		f, err := spec.LoadFile(*specPath)
		if err != nil {
			log.Fatalf("dwarnd: -spec: %v", err)
		}
		views, err := srv.Preload(f)
		switch {
		case errors.Is(err, service.ErrQueueFull):
			// A grid larger than the free queue is a partial warm-up,
			// not a reason to refuse to serve.
			log.Printf("dwarnd: -spec %s: %v; continuing with a partial preload", *specPath, err)
		case err != nil:
			log.Fatalf("dwarnd: -spec %s: %v", *specPath, err)
		}
		log.Printf("dwarnd: preloaded %d runs from %s", len(views), *specPath)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("dwarnd: listening on %s (%d workers, queue %d, cache %d entries)",
			*addr, *workers, *queueDepth, *cacheEntries)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("dwarnd: %v", err)
		}
	case <-ctx.Done():
	}

	// Stop accepting connections, then drain queued and in-flight jobs.
	log.Printf("dwarnd: shutting down, draining jobs (up to %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("dwarnd: http shutdown: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "dwarnd: job drain: %v\n", err)
		os.Exit(1)
	}
	log.Print("dwarnd: drained cleanly")
}
