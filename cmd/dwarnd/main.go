// Command dwarnd serves the SMT simulator over HTTP: submit
// simulations as async jobs and policy × workload sweeps into the
// shared parallel execution layer, poll status (sweeps report partial
// per-cell progress), follow a sweep's SSE completion stream, cancel
// cooperatively, and let the content-addressed result cache absorb
// repeated work. See README.md for the API walkthrough and DESIGN.md
// §dwarnd for the architecture.
//
// Every request is logged as a structured key=value line with a
// request id, and GET /metrics serves the full Prometheus exposition
// (HTTP, queue, executor, cache, and engine series). The request id is
// also the trace id: an inbound X-Request-ID is honoured, and with
// -log-level debug the same id follows the request through the exec
// worker's cell logs into the sim run's own log line. Runs whose spec
// sets "timeline" sample per-interval frames: GET /v2/runs/{id}/timeline
// returns them, and the sweep SSE stream interleaves live "frame"
// events as intervals close inside running cells. The -admin flag
// opens a second (typically loopback) port carrying the operational
// surface: /metrics, /debug/pprof/*, /healthz, and /buildinfo.
//
// Examples:
//
//	dwarnd -addr :8080
//	dwarnd -addr :8080 -admin localhost:6060 -log-level debug
//	dwarnd -spec examples/specs/table4-sweep.json   # pre-warm the cache
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics
//	curl -s -X POST localhost:8080/v1/simulations \
//	    -d '{"policy":"dwarn","workload":"4-MIX"}'
//	curl -s localhost:8080/v1/simulations/sim-000001
//	curl -s -X POST localhost:8080/v1/sweeps -d '{"workloads":["4-MIX"]}'
//	curl -s -X POST localhost:8080/v2/sweeps \
//	    -d '{"policies":[{"name":"dwarn","params":{"warn":[1,2,4]}}],"workloads":[{"name":"2-MEM"}]}'
//	curl -sN localhost:8080/v2/sweeps/sweep-000001/events   # SSE progress
//	curl -s -X DELETE localhost:8080/v2/sweeps/sweep-000001 # cancel
//	curl -s -X POST localhost:8080/v2/runs \
//	    -d '{"policy":{"name":"dwarn"},"workload":{"name":"4-MIX"},"timeline":{}}'
//	curl -s localhost:8080/v2/runs/sim-000001/timeline      # interval frames
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"syscall"
	"time"

	"dwarn/internal/chaos"
	"dwarn/internal/ckpt"
	"dwarn/internal/exec"
	"dwarn/internal/fabric"
	"dwarn/internal/journal"
	"dwarn/internal/obs"
	"dwarn/internal/service"
	"dwarn/internal/spec"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker pool size")
		queueDepth   = flag.Int("queue", 256, "job queue depth")
		cacheEntries = flag.Int("cache", 4096, "result cache entries")
		maxCycles    = flag.Int64("max-cycles", 5_000_000, "per-request cycle cap (warmup and measure each; <0 = uncapped)")
		maxCells     = flag.Int("max-sweep-cells", 1024, "largest sweep expansion one request may fan out")
		maxSweeps    = flag.Int("max-active-sweeps", 16, "concurrently executing sweeps before submissions fail fast with 503")
		specPath     = flag.String("spec", "", "submit this JSON spec file (run or sweep) at startup to pre-warm the cache")
		storeDir     = flag.String("store", "", "back the result cache with this durable result directory (shared layout with smtsim -store)")
		journalPath  = flag.String("journal", "", "append-only submission journal for restart recovery (default <store>/journal.log when -store is set; empty without -store = journaling off)")
		authToken    = flag.String("auth-token", "", "require this bearer token on every request except /healthz and /metrics (empty = open)")
		rateLimit    = flag.Float64("rate-limit", 0, "per-client request rate limit in requests/sec, 429 + Retry-After beyond it (0 = unlimited)")
		rateBurst    = flag.Int("rate-burst", 0, "per-client burst allowance for -rate-limit (0 = derived from the rate)")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "server-side handling deadline for non-streaming requests (0 = none)")
		fabricOn     = flag.Bool("fabric", true, "serve the distributed sweep fabric under /v2/fabric (remote dwarnd -worker processes may join)")
		fabricLocal  = flag.Int("fabric-local-workers", -1, "in-process fabric worker slots (-1 = -workers; 0 = pure coordinator, cells wait for remote workers)")
		leaseTTL     = flag.Duration("lease-ttl", 0, "fabric lease TTL: how long a worker's cell survives missed heartbeats before requeue (0 = default 15s)")
		workerMode   = flag.Bool("worker", false, "run as a fabric worker: pull cells from -coordinator instead of serving HTTP")
		coordURL     = flag.String("coordinator", "", "coordinator base URL for -worker mode (e.g. http://host:8080)")
		workerName   = flag.String("worker-name", "", "worker label in fabric status (default host-pid)")
		workerCap    = flag.Int("worker-capacity", runtime.GOMAXPROCS(0), "cells this worker runs concurrently in -worker mode")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to drain jobs on shutdown")
		adminAddr    = flag.String("admin", "", "serve the admin mux (/metrics, /debug/pprof/*, /healthz, /buildinfo) on this address (e.g. localhost:6060; empty = disabled)")
		pprofAddr    = flag.String("pprof", "", "deprecated synonym for -admin")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug, info, warn, error, off")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dwarnd:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)

	// Operational fault injection: DWARN_CHAOS arms the chaos seam for
	// crash/torn-write drills (see internal/chaos and
	// scripts/chaos_service.sh). Unset, the seam stays nil and free.
	if spec := os.Getenv("DWARN_CHAOS"); spec != "" {
		h, err := chaos.FromEnv(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dwarnd:", err)
			os.Exit(2)
		}
		chaos.Set(h)
		logger.Warn("chaos handler armed", "spec", spec)
	}

	if *adminAddr == "" {
		*adminAddr = *pprofAddr // -pprof kept as a deprecated synonym
	}

	if *workerMode {
		os.Exit(runWorker(logger, *coordURL, *workerName, *workerCap, *storeDir, *authToken, *adminAddr))
	}

	opts := service.Options{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		CacheEntries:    *cacheEntries,
		MaxCycles:       *maxCycles,
		MaxSweepCells:   *maxCells,
		MaxActiveSweeps: *maxSweeps,
		AuthToken:       *authToken,
		RateLimit:       *rateLimit,
		RateBurst:       *rateBurst,
		RequestTimeout:  *reqTimeout,
		Logger:          logger,
	}
	if *storeDir != "" {
		ds, err := exec.NewDirStore(*storeDir)
		if err != nil {
			logger.Error("store open", "dir", *storeDir, "err", err)
			os.Exit(1)
		}
		opts.Store = ds
		// Checkpoints persist next to the results they accelerate, so a
		// restarted dwarnd forks warm groups straight from disk.
		cds, err := ckpt.NewDirStore(filepath.Join(*storeDir, "ckpt"))
		if err != nil {
			logger.Warn("checkpoint store open failed; checkpoints stay in-memory", "dir", *storeDir, "err", err)
		} else {
			opts.Checkpoints = ckpt.Chain{ckpt.NewMemStore(0), cds}
		}
	}
	if *journalPath == "" && *storeDir != "" {
		*journalPath = filepath.Join(*storeDir, "journal.log")
	}
	if *journalPath != "" {
		j, recs, err := journal.Open(*journalPath)
		if err != nil {
			logger.Error("journal open", "path", *journalPath, "err", err)
			os.Exit(1)
		}
		if j.Torn() {
			logger.Warn("journal had a torn tail; truncated", "path", *journalPath)
		}
		logger.Info("journal open", "path", *journalPath, "replayed", len(recs))
		opts.Journal = j
		opts.Recovered = recs
	}
	if *fabricOn {
		// -fabric-local-workers -1 leaves LocalWorkersSet false, so the
		// service defaults the slot count to its Workers option.
		opts.Fabric = &service.FabricOptions{
			LocalWorkers:    *fabricLocal,
			LocalWorkersSet: *fabricLocal >= 0,
			LeaseTTL:        *leaseTTL,
		}
	}
	srv := service.New(opts)

	if *adminAddr != "" {
		// The operational surface gets its own mux on its own (typically
		// loopback) address so diagnostics are never exposed on the
		// service port.
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"status":"ok"}`)
		})
		mux.HandleFunc("/buildinfo", handleBuildInfo)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("admin listening", "addr", *adminAddr)
			if err := http.ListenAndServe(*adminAddr, mux); err != nil {
				logger.Error("admin server", "err", err)
			}
		}()
	}

	if *specPath != "" {
		f, err := spec.LoadFile(*specPath)
		if err != nil {
			logger.Error("spec load", "path", *specPath, "err", err)
			os.Exit(1)
		}
		views, err := srv.Preload(f)
		switch {
		case errors.Is(err, service.ErrQueueFull):
			// A grid larger than the free queue is a partial warm-up,
			// not a reason to refuse to serve.
			logger.Warn("partial preload", "path", *specPath, "err", err)
		case err != nil:
			logger.Error("preload", "path", *specPath, "err", err)
			os.Exit(1)
		}
		logger.Info("preloaded", "runs", len(views), "path", *specPath)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "workers", *workers, "queue", *queueDepth, "cache", *cacheEntries)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
	}

	// Stop accepting connections, then drain queued and in-flight jobs.
	logger.Info("shutting down", "drain_timeout", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Error("job drain", "err", err)
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}

// runWorker is `dwarnd -worker -coordinator=URL`: the same binary as a
// pull-based fabric worker. It registers with the coordinator, pulls
// cell leases, simulates them through the ordinary spec→sim path, and
// pushes results back; SIGINT/SIGTERM abandons in-flight cells silently
// (no completion, no more heartbeats) so the coordinator's lease TTL
// requeues them on a healthy worker. With -store the worker reads and
// writes the same durable result directory as the coordinator, sharing
// one cache identity through the filesystem. -auth-token rides on every
// coordinator RPC; -admin serves the worker's own /metrics (RPC failure
// counters) and /healthz.
func runWorker(logger *obs.Logger, coordinator, name string, capacity int, storeDir, authToken, adminAddr string) int {
	if coordinator == "" {
		fmt.Fprintln(os.Stderr, "dwarnd: -worker requires -coordinator=URL")
		return 2
	}
	var store exec.Store
	ckpts := ckpt.Chain{ckpt.NewMemStore(0)}
	if storeDir != "" {
		ds, err := exec.NewDirStore(storeDir)
		if err != nil {
			logger.Error("store open", "dir", storeDir, "err", err)
			return 1
		}
		store = ds
		if cds, err := ckpt.NewDirStore(filepath.Join(storeDir, "ckpt")); err != nil {
			logger.Warn("checkpoint store open failed", "dir", storeDir, "err", err)
		} else {
			ckpts = append(ckpts, cds)
		}
	}
	// Last tier: pull checkpoints the fleet already warmed from the
	// coordinator, and push the ones this worker builds.
	ckpts = append(ckpts, fabric.NewRemoteCkptStore(coordinator, authToken, nil))
	reg := obs.NewRegistry()
	if adminAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = reg.WritePrometheus(w)
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"status":"ok"}`)
		})
		go func() {
			logger.Info("worker admin listening", "addr", adminAddr)
			if err := http.ListenAndServe(adminAddr, mux); err != nil {
				logger.Error("worker admin server", "err", err)
			}
		}()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	w := fabric.NewWorker(fabric.WorkerOptions{
		Coordinator: coordinator,
		Name:        name,
		Capacity:    capacity,
		Store:       store,
		Checkpoints: ckpts,
		Logger:      logger,
		AuthToken:   authToken,
		Registry:    reg,
	})
	logger.Info("fabric worker starting", "coordinator", coordinator, "capacity", capacity)
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		logger.Error("fabric worker", "err", err)
		return 1
	}
	logger.Info("fabric worker stopped")
	return 0
}

// handleBuildInfo reports how this binary was built: Go version, module
// path and version, and the embedded VCS stamps when present.
func handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		http.Error(w, `{"error":"no build info"}`, http.StatusNotFound)
		return
	}
	out := struct {
		GoVersion string            `json:"go_version"`
		Path      string            `json:"path"`
		Version   string            `json:"version"`
		Settings  map[string]string `json:"settings,omitempty"`
	}{
		GoVersion: bi.GoVersion,
		Path:      bi.Main.Path,
		Version:   bi.Main.Version,
		Settings:  map[string]string{},
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision", "vcs.time", "vcs.modified", "GOOS", "GOARCH":
			out.Settings[s.Key] = s.Value
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}
