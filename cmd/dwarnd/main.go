// Command dwarnd serves the SMT simulator over HTTP: submit
// simulations as async jobs and policy × workload sweeps into the
// shared parallel execution layer, poll status (sweeps report partial
// per-cell progress), follow a sweep's SSE completion stream, cancel
// cooperatively, and let the content-addressed result cache absorb
// repeated work. See README.md for the API walkthrough and DESIGN.md
// §dwarnd for the architecture.
//
// Every request is logged as a structured key=value line with a
// request id, and GET /metrics serves the full Prometheus exposition
// (HTTP, queue, executor, cache, and engine series). The request id is
// also the trace id: an inbound X-Request-ID is honoured, and with
// -log-level debug the same id follows the request through the exec
// worker's cell logs into the sim run's own log line. Runs whose spec
// sets "timeline" sample per-interval frames: GET /v2/runs/{id}/timeline
// returns them, and the sweep SSE stream interleaves live "frame"
// events as intervals close inside running cells. The -admin flag
// opens a second (typically loopback) port carrying the operational
// surface: /metrics, /debug/pprof/*, /healthz, and /buildinfo.
//
// Examples:
//
//	dwarnd -addr :8080
//	dwarnd -addr :8080 -admin localhost:6060 -log-level debug
//	dwarnd -spec examples/specs/table4-sweep.json   # pre-warm the cache
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics
//	curl -s -X POST localhost:8080/v1/simulations \
//	    -d '{"policy":"dwarn","workload":"4-MIX"}'
//	curl -s localhost:8080/v1/simulations/sim-000001
//	curl -s -X POST localhost:8080/v1/sweeps -d '{"workloads":["4-MIX"]}'
//	curl -s -X POST localhost:8080/v2/sweeps \
//	    -d '{"policies":[{"name":"dwarn","params":{"warn":[1,2,4]}}],"workloads":[{"name":"2-MEM"}]}'
//	curl -sN localhost:8080/v2/sweeps/sweep-000001/events   # SSE progress
//	curl -s -X DELETE localhost:8080/v2/sweeps/sweep-000001 # cancel
//	curl -s -X POST localhost:8080/v2/runs \
//	    -d '{"policy":{"name":"dwarn"},"workload":{"name":"4-MIX"},"timeline":{}}'
//	curl -s localhost:8080/v2/runs/sim-000001/timeline      # interval frames
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"syscall"
	"time"

	"dwarn/internal/obs"
	"dwarn/internal/service"
	"dwarn/internal/spec"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker pool size")
		queueDepth   = flag.Int("queue", 256, "job queue depth")
		cacheEntries = flag.Int("cache", 4096, "result cache entries")
		maxCycles    = flag.Int64("max-cycles", 5_000_000, "per-request cycle cap (warmup and measure each; <0 = uncapped)")
		maxCells     = flag.Int("max-sweep-cells", 1024, "largest sweep expansion one request may fan out")
		maxSweeps    = flag.Int("max-active-sweeps", 16, "concurrently executing sweeps before submissions fail fast with 503")
		specPath     = flag.String("spec", "", "submit this JSON spec file (run or sweep) at startup to pre-warm the cache")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to drain jobs on shutdown")
		adminAddr    = flag.String("admin", "", "serve the admin mux (/metrics, /debug/pprof/*, /healthz, /buildinfo) on this address (e.g. localhost:6060; empty = disabled)")
		pprofAddr    = flag.String("pprof", "", "deprecated synonym for -admin")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug, info, warn, error, off")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dwarnd:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)

	srv := service.New(service.Options{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		CacheEntries:    *cacheEntries,
		MaxCycles:       *maxCycles,
		MaxSweepCells:   *maxCells,
		MaxActiveSweeps: *maxSweeps,
		Logger:          logger,
	})

	if *adminAddr == "" {
		*adminAddr = *pprofAddr // -pprof kept as a deprecated synonym
	}
	if *adminAddr != "" {
		// The operational surface gets its own mux on its own (typically
		// loopback) address so diagnostics are never exposed on the
		// service port.
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"status":"ok"}`)
		})
		mux.HandleFunc("/buildinfo", handleBuildInfo)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("admin listening", "addr", *adminAddr)
			if err := http.ListenAndServe(*adminAddr, mux); err != nil {
				logger.Error("admin server", "err", err)
			}
		}()
	}

	if *specPath != "" {
		f, err := spec.LoadFile(*specPath)
		if err != nil {
			logger.Error("spec load", "path", *specPath, "err", err)
			os.Exit(1)
		}
		views, err := srv.Preload(f)
		switch {
		case errors.Is(err, service.ErrQueueFull):
			// A grid larger than the free queue is a partial warm-up,
			// not a reason to refuse to serve.
			logger.Warn("partial preload", "path", *specPath, "err", err)
		case err != nil:
			logger.Error("preload", "path", *specPath, "err", err)
			os.Exit(1)
		}
		logger.Info("preloaded", "runs", len(views), "path", *specPath)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "workers", *workers, "queue", *queueDepth, "cache", *cacheEntries)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
	}

	// Stop accepting connections, then drain queued and in-flight jobs.
	logger.Info("shutting down", "drain_timeout", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Error("job drain", "err", err)
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}

// handleBuildInfo reports how this binary was built: Go version, module
// path and version, and the embedded VCS stamps when present.
func handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		http.Error(w, `{"error":"no build info"}`, http.StatusNotFound)
		return
	}
	out := struct {
		GoVersion string            `json:"go_version"`
		Path      string            `json:"path"`
		Version   string            `json:"version"`
		Settings  map[string]string `json:"settings,omitempty"`
	}{
		GoVersion: bi.GoVersion,
		Path:      bi.Main.Path,
		Version:   bi.Main.Version,
		Settings:  map[string]string{},
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision", "vcs.time", "vcs.modified", "GOOS", "GOARCH":
			out.Settings[s.Key] = s.Value
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}
