// Command experiments regenerates the paper's tables and figures from
// the simulator, printing each as an aligned text table or, with
// -json, as machine-readable JSON (the exp.Table shape). With -spec it
// instead runs an arbitrary spec grid (a JSON run or sweep file, see
// examples/specs/) and renders one generic results table; a failing
// cell renders an error column while the rest of the grid reports.
// All simulations fan out over the shared execution layer: -parallel
// bounds the worker pool (0 = GOMAXPROCS), and grid cells shared
// between artifacts are simulated once.
//
// Examples:
//
//	experiments                     # regenerate everything
//	experiments -exp fig1a          # one artifact
//	experiments -exp fig3 -measure 300000 -warmup 120000
//	experiments -exp table4 -json   # machine-readable output
//	experiments -spec examples/specs/dwarn-warn-grid.json
//	experiments -parallel 8         # one worker per core
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dwarn/internal/ckpt"
	"dwarn/internal/exp"
	"dwarn/internal/obs"
	"dwarn/internal/out"
	"dwarn/internal/prof"
	"dwarn/internal/spec"
)

func main() {
	var (
		expID    = flag.String("exp", "all", "experiment id or 'all': "+strings.Join(exp.Experiments, ", "))
		specPath = flag.String("spec", "", "run a JSON spec file (one run or a sweep grid) instead of a named experiment")
		seed     = flag.Uint64("seed", 0, "random seed (0 = default)")
		warmup   = flag.Int64("warmup", 0, "warmup cycles per run (0 = default)")
		measure  = flag.Int64("measure", 0, "measured cycles per run (0 = default)")
		par      = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		ckptOn   = flag.Bool("ckpt", true, "fork grid cells sharing a (machine, workload, seed) group from one post-prewarm checkpoint")
		ckptDir  = flag.String("ckpt-dir", "", "persist checkpoints in this directory (implies -ckpt), shared across invocations")
		asJSON   = flag.Bool("json", false, "emit JSON instead of aligned text tables")
		logLevel = flag.String("log-level", "info", "stderr log verbosity: debug, info, warn, error, off")
		metrics  = flag.String("metrics", "", "after all experiments, dump the metrics registry to this file in Prometheus text format")
	)
	profFlags := prof.Register()
	flag.Parse()

	stopProf, err := profFlags.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	// Tables go to stdout; timing and progress diagnostics go to stderr
	// as structured key=value lines, so piped table output stays clean.
	logger := obs.NewLogger(os.Stderr, level)

	var ckpts ckpt.Store
	if *ckptOn || *ckptDir != "" {
		chain := ckpt.Chain{ckpt.NewMemStore(0)}
		if *ckptDir != "" {
			cds, err := ckpt.NewDirStore(*ckptDir)
			if err != nil {
				fatal(err)
			}
			chain = append(chain, cds)
		}
		ckpts = chain
	}
	r := exp.NewRunner(exp.Config{
		Seed:          *seed,
		WarmupCycles:  *warmup,
		MeasureCycles: *measure,
		Parallelism:   *par,
		Checkpoints:   ckpts,
	})

	if *specPath != "" {
		f, err := spec.LoadFile(*specPath)
		if err != nil {
			fatal(err)
		}
		cells, err := f.Runs(0)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		t, err := r.RunSpecs(cells)
		if err != nil {
			fatal(err)
		}
		logger.Info("spec done", "path", *specPath, "cells", len(cells), "dur", time.Since(start).Round(time.Millisecond))
		dumpMetrics(*metrics)
		if *asJSON {
			if err := out.WriteJSON(os.Stdout, []*exp.Table{t}); err != nil {
				fatal(err)
			}
			return
		}
		fmt.Println(t.Render())
		return
	}

	ids := exp.Experiments
	if *expID != "all" {
		ids = strings.Split(*expID, ",")
	}
	var all []*exp.Table
	for _, id := range ids {
		id = strings.TrimSpace(id)
		logger.Debug("experiment start", "exp", id)
		start := time.Now()
		tables, err := r.Run(id)
		if err != nil {
			fatal(err)
		}
		logger.Info("experiment done", "exp", id, "tables", len(tables), "dur", time.Since(start).Round(time.Millisecond))
		if *asJSON {
			all = append(all, tables...)
			continue
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		fmt.Printf("(%s finished in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	dumpMetrics(*metrics)
	if *asJSON {
		if err := out.WriteJSON(os.Stdout, all); err != nil {
			fatal(err)
		}
	}
}

// dumpMetrics writes obs.Default — the engine's per-run snapshots and
// the shared executor's series — as Prometheus text. No-op without
// -metrics.
func dumpMetrics(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	err = obs.Default.WritePrometheus(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
