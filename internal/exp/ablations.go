package exp

import (
	"fmt"

	"dwarn/internal/core"
	"dwarn/internal/pipeline"
	"dwarn/internal/workload"
)

// AblateL2Threshold sweeps the cycle threshold at which STALL and FLUSH
// declare a load an L2 miss. The paper tuned this parameter and found
// 15 best for the baseline machine (§5).
func (r *Runner) AblateL2Threshold() (*Table, error) {
	thresholds := []int64{5, 10, 15, 25, 40}
	wls := []string{"2-MEM", "4-MIX", "4-MEM"}
	var jobs []job
	for _, wn := range wls {
		wl, err := workload.GetWorkload(wn)
		if err != nil {
			return nil, err
		}
		for _, th := range thresholds {
			th := th
			jobs = append(jobs,
				job{machine: "baseline", label: fmt.Sprintf("stall-t%d", th), workload: wl,
					instance: func() pipeline.FetchPolicy { return core.NewSTALLThreshold(th) }},
				job{machine: "baseline", label: fmt.Sprintf("flush-t%d", th), workload: wl,
					instance: func() pipeline.FetchPolicy { return core.NewFLUSHThreshold(th) }},
			)
		}
	}
	if err := r.runAll(jobs); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablate-threshold",
		Title:  "STALL/FLUSH throughput vs L2-declaration threshold (paper uses 15)",
		Header: []string{"workload", "policy"},
	}
	for _, th := range thresholds {
		t.Header = append(t.Header, fmt.Sprintf("t=%d", th))
	}
	for _, wn := range wls {
		for _, pol := range []string{"stall", "flush"} {
			row := []string{wn, pol}
			for _, th := range thresholds {
				res := r.get("baseline", fmt.Sprintf("%s-t%d", pol, th), wn)
				row = append(row, cell(res.Throughput))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// AblateDGThreshold sweeps DG's outstanding-miss gate threshold n; the
// paper (following El-Moursy & Albonesi) uses n = 0.
func (r *Runner) AblateDGThreshold() (*Table, error) {
	ns := []int{0, 1, 2, 4}
	wls := []string{"2-MEM", "4-MEM", "8-MEM"}
	var jobs []job
	for _, wn := range wls {
		wl, err := workload.GetWorkload(wn)
		if err != nil {
			return nil, err
		}
		for _, n := range ns {
			n := n
			jobs = append(jobs, job{machine: "baseline", label: fmt.Sprintf("dg-n%d", n), workload: wl,
				instance: func() pipeline.FetchPolicy { return core.NewDGThreshold(n) }})
		}
	}
	if err := r.runAll(jobs); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablate-dg",
		Title:  "DG throughput vs gate threshold n (paper uses n=0)",
		Header: []string{"workload"},
	}
	for _, n := range ns {
		t.Header = append(t.Header, fmt.Sprintf("n=%d", n))
	}
	for _, wn := range wls {
		row := []string{wn}
		for _, n := range ns {
			row = append(row, cell(r.get("baseline", fmt.Sprintf("dg-n%d", n), wn).Throughput))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblateDWarnHybrid compares full DWarn against the prioritisation-only
// variant. The paper motivates the hybrid gate with the 2-thread case:
// priority reduction alone cannot keep a Dmiss thread out of a 2.8
// fetch engine's spare slots.
func (r *Runner) AblateDWarnHybrid() (*Table, error) {
	wls := []string{"2-ILP", "2-MIX", "2-MEM", "4-MIX", "4-MEM"}
	var jobs []job
	for _, wn := range wls {
		wl, err := workload.GetWorkload(wn)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs,
			job{machine: "baseline", policy: "dwarn", workload: wl},
			job{machine: "baseline", policy: "dwarn-prio", workload: wl},
		)
	}
	if err := r.runAll(jobs); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablate-hybrid",
		Title:  "DWarn hybrid gate vs prioritisation only (throughput)",
		Header: []string{"workload", "DWarn", "DWarn-Prio", "hybrid gain"},
	}
	for _, wn := range wls {
		full := r.get("baseline", "dwarn", wn).Throughput
		prio := r.get("baseline", "dwarn-prio", wn).Throughput
		t.Rows = append(t.Rows, []string{wn, cell(full), cell(prio), pct(100 * (full - prio) / prio)})
	}
	t.Notes = append(t.Notes, "the gate only engages below three threads; 4-thread rows should show ~no difference")
	return t, nil
}
