package exp

import (
	"fmt"

	"dwarn/internal/core"
	"dwarn/internal/spec"
)

// The ablation studies are parameter sweeps, and they are expressed the
// way every other frontend expresses them: as spec grids over the
// policy registry's declared parameters. A cell whose parameters are
// all defaults shares its fingerprint — and therefore its memo entry —
// with the paper-grid runs of the base policy.

// ablationID is the row/column key of a parameterised cell, identical
// to the canonical id the spec fingerprint uses.
func ablationID(policy, param string, v int64) string {
	return core.PolicyID(policy, map[string]int64{param: v})
}

// paramSweep runs one policy × one parameter's value list over the
// workloads on the baseline machine.
func (r *Runner) paramSweep(policies []spec.PolicyAxis, wls []string) error {
	var axis []spec.Workload
	for _, wn := range wls {
		axis = append(axis, spec.Workload{Name: wn})
	}
	specs, err := r.grid(spec.SweepSpec{
		Policies:  policies,
		Workloads: axis,
	})
	if err != nil {
		return err
	}
	return r.runAll(specs)
}

// AblateL2Threshold sweeps the cycle threshold at which STALL and FLUSH
// declare a load an L2 miss. The paper tuned this parameter and found
// 15 best for the baseline machine (§5).
func (r *Runner) AblateL2Threshold() (*Table, error) {
	thresholds := []int64{5, 10, 15, 25, 40}
	wls := []string{"2-MEM", "4-MIX", "4-MEM"}
	err := r.paramSweep([]spec.PolicyAxis{
		{Name: "stall", Params: map[string][]int64{"threshold": thresholds}},
		{Name: "flush", Params: map[string][]int64{"threshold": thresholds}},
	}, wls)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablate-threshold",
		Title:  "STALL/FLUSH throughput vs L2-declaration threshold (paper uses 15)",
		Header: []string{"workload", "policy"},
	}
	for _, th := range thresholds {
		t.Header = append(t.Header, fmt.Sprintf("t=%d", th))
	}
	for _, wn := range wls {
		for _, pol := range []string{"stall", "flush"} {
			row := []string{wn, pol}
			for _, th := range thresholds {
				res := r.get("baseline", ablationID(pol, "threshold", th), wn)
				row = append(row, cell(res.Throughput))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// AblateDGThreshold sweeps DG's outstanding-miss gate threshold n; the
// paper (following El-Moursy & Albonesi) uses n = 0.
func (r *Runner) AblateDGThreshold() (*Table, error) {
	ns := []int64{0, 1, 2, 4}
	wls := []string{"2-MEM", "4-MEM", "8-MEM"}
	err := r.paramSweep([]spec.PolicyAxis{
		{Name: "dg", Params: map[string][]int64{"n": ns}},
	}, wls)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablate-dg",
		Title:  "DG throughput vs gate threshold n (paper uses n=0)",
		Header: []string{"workload"},
	}
	for _, n := range ns {
		t.Header = append(t.Header, fmt.Sprintf("n=%d", n))
	}
	for _, wn := range wls {
		row := []string{wn}
		for _, n := range ns {
			row = append(row, cell(r.get("baseline", ablationID("dg", "n", n), wn).Throughput))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblateDWarnWarn sweeps DWarn's warn threshold: the in-flight L1
// data-miss count at which a thread drops to the Dmiss group. The paper
// demotes on the first miss (warn = 1); higher values tolerate short
// miss bursts and show how much of DWarn's gain comes from reacting to
// the earliest warning signal.
func (r *Runner) AblateDWarnWarn() (*Table, error) {
	warns := []int64{1, 2, 4}
	wls := []string{"2-MEM", "4-MIX", "4-MEM"}
	err := r.paramSweep([]spec.PolicyAxis{
		{Name: "dwarn", Params: map[string][]int64{"warn": warns}},
	}, wls)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablate-dwarn-warn",
		Title:  "DWarn throughput vs warn threshold (paper demotes on the first in-flight miss)",
		Header: []string{"workload"},
	}
	for _, wn := range warns {
		t.Header = append(t.Header, fmt.Sprintf("warn=%d", wn))
	}
	for _, wn := range wls {
		row := []string{wn}
		for _, v := range warns {
			row = append(row, cell(r.get("baseline", ablationID("dwarn", "warn", v), wn).Throughput))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "warn=1 is the paper's DWarn; higher thresholds delay the priority response")
	return t, nil
}

// AblateDWarnHybrid compares full DWarn against the prioritisation-only
// variant. The paper motivates the hybrid gate with the 2-thread case:
// priority reduction alone cannot keep a Dmiss thread out of a 2.8
// fetch engine's spare slots.
func (r *Runner) AblateDWarnHybrid() (*Table, error) {
	wls := []string{"2-ILP", "2-MIX", "2-MEM", "4-MIX", "4-MEM"}
	err := r.paramSweep([]spec.PolicyAxis{
		{Name: "dwarn"},
		{Name: "dwarn-prio"},
	}, wls)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablate-hybrid",
		Title:  "DWarn hybrid gate vs prioritisation only (throughput)",
		Header: []string{"workload", "DWarn", "DWarn-Prio", "hybrid gain"},
	}
	for _, wn := range wls {
		full := r.get("baseline", "dwarn", wn).Throughput
		prio := r.get("baseline", "dwarn-prio", wn).Throughput
		t.Rows = append(t.Rows, []string{wn, cell(full), cell(prio), pct(100 * (full - prio) / prio)})
	}
	t.Notes = append(t.Notes, "the gate only engages below three threads; 4-thread rows should show ~no difference")
	return t, nil
}
