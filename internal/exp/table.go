package exp

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// Table is a rendered experiment result: the rows and series a paper
// table or figure reports. The JSON tags are the machine-readable shape
// `experiments -json` emits.
type Table struct {
	// ID is the experiment identifier (e.g. "fig1a").
	ID string `json:"id"`
	// Title describes the artifact being regenerated.
	Title string `json:"title"`
	// Header names the columns.
	Header []string `json:"header"`
	// Rows holds the data, already formatted.
	Rows [][]string `json:"rows"`
	// Notes are printed under the table (paper-vs-measured remarks).
	Notes []string `json:"notes,omitempty"`
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	w.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// cell formats a float with sensible precision for tables.
func cell(v float64) string { return fmt.Sprintf("%.3f", v) }

// pct formats an improvement percentage.
func pct(v float64) string { return fmt.Sprintf("%+.1f%%", v) }
