// Package exp regenerates every table and figure of the paper's
// evaluation: Table 2(a) (isolated cache behaviour), Figure 1 (absolute
// throughput and DWarn's improvement), Figure 2 (flushed instructions
// under FLUSH), Figure 3 (Hmean improvement), Table 4 (per-thread
// relative IPCs on 4-MIX), Figures 4 and 5 (the smaller and deeper
// machines), plus the ablation studies DESIGN.md calls out.
//
// Simulations are memoised and independent runs fan out over a worker
// pool, so experiments that share the policy × workload × machine grid
// (Figures 1 and 3, Table 4) pay for each simulation once.
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"dwarn/internal/config"
	"dwarn/internal/pipeline"
	"dwarn/internal/sim"
	"dwarn/internal/workload"
)

// Config controls the measurement protocol for all experiments.
type Config struct {
	// Seed drives all synthetic randomness (0 = sim.DefaultSeed).
	Seed uint64
	// WarmupCycles and MeasureCycles per simulation (0 = package
	// defaults: 60k warmup, 150k measured).
	WarmupCycles  int64
	MeasureCycles int64
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
}

// Default run lengths for experiments: long enough for stable rankings,
// short enough that the full paper regeneration finishes in minutes.
const (
	DefaultWarmup  = 60_000
	DefaultMeasure = 150_000
)

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = sim.DefaultSeed
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = DefaultWarmup
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = DefaultMeasure
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// Runner executes and memoises simulations. The memo is keyed by
// sim.Fingerprint — the same content-addressed identity the dwarnd
// service cache uses — with a (machine, policy, workload-name) index on
// top for the lookups the table builders perform.
type Runner struct {
	cfg Config

	mu    sync.Mutex
	runs  map[string]*sim.Result // fingerprint → result
	errs  map[string]error       // fingerprint → error
	index map[runKey]string      // name triple → fingerprint
}

type runKey struct {
	machine  string
	policy   string
	workload string
}

// NewRunner builds a Runner with the given protocol.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		cfg:   cfg.withDefaults(),
		runs:  make(map[string]*sim.Result),
		errs:  make(map[string]error),
		index: make(map[runKey]string),
	}
}

// job is one simulation to perform.
type job struct {
	machine  string
	policy   string                      // registry name, or "" when instance is set
	instance func() pipeline.FetchPolicy // for parameterised policies
	workload workload.Workload
	label    string // memo key for instance-based jobs
}

// policyID is the policy component of the memo key: the registry name,
// or the label for parameterised instances.
func (j job) policyID() string {
	if j.policy != "" {
		return j.policy
	}
	return j.label
}

func (j job) key() runKey {
	return runKey{machine: j.machine, policy: j.policyID(), workload: j.workload.Name}
}

// options assembles the sim.Options for a job.
func (r *Runner) options(j job) (sim.Options, error) {
	cfg, err := config.ByName(j.machine)
	if err != nil {
		return sim.Options{}, err
	}
	opts := sim.Options{
		Config:        cfg,
		Policy:        j.policy,
		Workload:      j.workload,
		Seed:          r.cfg.Seed,
		WarmupCycles:  r.cfg.WarmupCycles,
		MeasureCycles: r.cfg.MeasureCycles,
	}
	if j.instance != nil {
		opts.PolicyInstance = j.instance()
	}
	return opts, nil
}

// runAll completes all jobs, memoised, fanning out over the worker pool.
func (r *Runner) runAll(jobs []job) error {
	type pendingJob struct {
		opts sim.Options
		fp   string
	}
	// Resolve every job before reserving anything, so a bad job cannot
	// strand nil reservations in the memo for the good ones.
	prepared := make([]pendingJob, len(jobs))
	for i, j := range jobs {
		opts, err := r.options(j)
		if err != nil {
			return err
		}
		prepared[i] = pendingJob{opts: opts, fp: sim.Fingerprint(opts, j.policyID())}
	}

	var pending []pendingJob
	fps := make([]string, len(jobs))
	r.mu.Lock()
	for i, j := range jobs {
		p := prepared[i]
		fps[i] = p.fp
		r.index[j.key()] = p.fp
		if _, ok := r.runs[p.fp]; ok {
			continue
		}
		if _, ok := r.errs[p.fp]; ok {
			continue
		}
		// Reserve the slot so duplicate jobs in this batch run once.
		r.runs[p.fp] = nil
		pending = append(pending, p)
	}
	r.mu.Unlock()

	sem := make(chan struct{}, r.cfg.Parallelism)
	var wg sync.WaitGroup
	for _, p := range pending {
		wg.Add(1)
		go func(p pendingJob) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := sim.Run(p.opts)
			r.mu.Lock()
			if err != nil {
				delete(r.runs, p.fp)
				r.errs[p.fp] = err
			} else {
				r.runs[p.fp] = res
			}
			r.mu.Unlock()
		}(p)
	}
	wg.Wait()

	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fp := range fps {
		if err := r.errs[fp]; err != nil {
			return err
		}
	}
	return nil
}

// get returns a memoised result; runAll must have succeeded for its job.
func (r *Runner) get(machine, policy string, wl string) *sim.Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs[r.index[runKey{machine: machine, policy: policy, workload: wl}]]
}

// Solo returns the single-thread IPC of a benchmark on a machine (the
// relative-IPC denominator), memoised via the same cache.
func (r *Runner) solo(machine, bench string) (float64, error) {
	wl := sim.SoloWorkload(bench)
	if err := r.runAll([]job{{machine: machine, policy: "icount", workload: wl}}); err != nil {
		return 0, err
	}
	return r.get(machine, "icount", wl.Name).Threads[0].IPC, nil
}

// soloAll warms the solo cache for every benchmark in the workloads.
func (r *Runner) soloAll(machine string, wls []workload.Workload) error {
	seen := map[string]bool{}
	var jobs []job
	for _, wl := range wls {
		for _, b := range wl.Benchmarks {
			if !seen[b] {
				seen[b] = true
				jobs = append(jobs, job{machine: machine, policy: "icount", workload: sim.SoloWorkload(b)})
			}
		}
	}
	return r.runAll(jobs)
}

// relIPCs computes each thread's relative IPC for a finished run.
func (r *Runner) relIPCs(machine string, res *sim.Result) ([]float64, error) {
	rel := make([]float64, len(res.Threads))
	for i, t := range res.Threads {
		solo, err := r.solo(machine, t.Benchmark)
		if err != nil {
			return nil, err
		}
		if solo <= 0 {
			return nil, fmt.Errorf("exp: zero solo IPC for %s on %s", t.Benchmark, machine)
		}
		rel[i] = t.IPC / solo
	}
	return rel, nil
}
