// Package exp regenerates every table and figure of the paper's
// evaluation: Table 2(a) (isolated cache behaviour), Figure 1 (absolute
// throughput and DWarn's improvement), Figure 2 (flushed instructions
// under FLUSH), Figure 3 (Hmean improvement), Table 4 (per-thread
// relative IPCs on 4-MIX), Figures 4 and 5 (the smaller and deeper
// machines), plus the ablation studies DESIGN.md calls out.
//
// Simulations are memoised and independent runs fan out over a worker
// pool, so experiments that share the policy × workload × machine grid
// (Figures 1 and 3, Table 4) pay for each simulation once.
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"dwarn/internal/config"
	"dwarn/internal/pipeline"
	"dwarn/internal/sim"
	"dwarn/internal/workload"
)

// Config controls the measurement protocol for all experiments.
type Config struct {
	// Seed drives all synthetic randomness (0 = sim.DefaultSeed).
	Seed uint64
	// WarmupCycles and MeasureCycles per simulation (0 = package
	// defaults: 60k warmup, 150k measured).
	WarmupCycles  int64
	MeasureCycles int64
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
}

// Default run lengths for experiments: long enough for stable rankings,
// short enough that the full paper regeneration finishes in minutes.
const (
	DefaultWarmup  = 60_000
	DefaultMeasure = 150_000
)

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = sim.DefaultSeed
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = DefaultWarmup
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = DefaultMeasure
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// Runner executes and memoises simulations.
type Runner struct {
	cfg Config

	mu   sync.Mutex
	runs map[runKey]*sim.Result
	errs map[runKey]error
}

type runKey struct {
	machine  string
	policy   string
	workload string
}

// NewRunner builds a Runner with the given protocol.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		cfg:  cfg.withDefaults(),
		runs: make(map[runKey]*sim.Result),
		errs: make(map[runKey]error),
	}
}

// machineFor maps a machine name to its configuration.
func machineFor(name string) (*config.Processor, error) {
	switch name {
	case "", "baseline":
		return config.Baseline(), nil
	case "small":
		return config.Small(), nil
	case "deep":
		return config.Deep(), nil
	}
	return nil, fmt.Errorf("exp: unknown machine %q", name)
}

// job is one simulation to perform.
type job struct {
	machine  string
	policy   string                      // registry name, or "" when instance is set
	instance func() pipeline.FetchPolicy // for parameterised policies
	workload workload.Workload
	label    string // memo key for instance-based jobs
}

func (j job) key() runKey {
	pol := j.policy
	if pol == "" {
		pol = j.label
	}
	return runKey{machine: j.machine, policy: pol, workload: j.workload.Name}
}

// execute runs one job (uncached).
func (r *Runner) execute(j job) (*sim.Result, error) {
	cfg, err := machineFor(j.machine)
	if err != nil {
		return nil, err
	}
	opts := sim.Options{
		Config:        cfg,
		Policy:        j.policy,
		Workload:      j.workload,
		Seed:          r.cfg.Seed,
		WarmupCycles:  r.cfg.WarmupCycles,
		MeasureCycles: r.cfg.MeasureCycles,
	}
	if j.instance != nil {
		opts.PolicyInstance = j.instance()
	}
	return sim.Run(opts)
}

// runAll completes all jobs, memoised, fanning out over the worker pool.
func (r *Runner) runAll(jobs []job) error {
	var pending []job
	r.mu.Lock()
	for _, j := range jobs {
		k := j.key()
		if _, ok := r.runs[k]; ok {
			continue
		}
		if _, ok := r.errs[k]; ok {
			continue
		}
		// Reserve the slot so duplicate jobs in this batch run once.
		r.runs[k] = nil
		pending = append(pending, j)
	}
	r.mu.Unlock()

	sem := make(chan struct{}, r.cfg.Parallelism)
	var wg sync.WaitGroup
	for _, j := range pending {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := r.execute(j)
			r.mu.Lock()
			if err != nil {
				delete(r.runs, j.key())
				r.errs[j.key()] = err
			} else {
				r.runs[j.key()] = res
			}
			r.mu.Unlock()
		}(j)
	}
	wg.Wait()

	r.mu.Lock()
	defer r.mu.Unlock()
	for _, j := range jobs {
		if err := r.errs[j.key()]; err != nil {
			return err
		}
	}
	return nil
}

// get returns a memoised result; runAll must have succeeded for its job.
func (r *Runner) get(machine, policy string, wl string) *sim.Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs[runKey{machine: machine, policy: policy, workload: wl}]
}

// Solo returns the single-thread IPC of a benchmark on a machine (the
// relative-IPC denominator), memoised via the same cache.
func (r *Runner) solo(machine, bench string) (float64, error) {
	wl := sim.SoloWorkload(bench)
	if err := r.runAll([]job{{machine: machine, policy: "icount", workload: wl}}); err != nil {
		return 0, err
	}
	return r.get(machine, "icount", wl.Name).Threads[0].IPC, nil
}

// soloAll warms the solo cache for every benchmark in the workloads.
func (r *Runner) soloAll(machine string, wls []workload.Workload) error {
	seen := map[string]bool{}
	var jobs []job
	for _, wl := range wls {
		for _, b := range wl.Benchmarks {
			if !seen[b] {
				seen[b] = true
				jobs = append(jobs, job{machine: machine, policy: "icount", workload: sim.SoloWorkload(b)})
			}
		}
	}
	return r.runAll(jobs)
}

// relIPCs computes each thread's relative IPC for a finished run.
func (r *Runner) relIPCs(machine string, res *sim.Result) ([]float64, error) {
	rel := make([]float64, len(res.Threads))
	for i, t := range res.Threads {
		solo, err := r.solo(machine, t.Benchmark)
		if err != nil {
			return nil, err
		}
		if solo <= 0 {
			return nil, fmt.Errorf("exp: zero solo IPC for %s on %s", t.Benchmark, machine)
		}
		rel[i] = t.IPC / solo
	}
	return rel, nil
}
