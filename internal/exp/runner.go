// Package exp regenerates every table and figure of the paper's
// evaluation: Table 2(a) (isolated cache behaviour), Figure 1 (absolute
// throughput and DWarn's improvement), Figure 2 (flushed instructions
// under FLUSH), Figure 3 (Hmean improvement), Table 4 (per-thread
// relative IPCs on 4-MIX), Figures 4 and 5 (the smaller and deeper
// machines), plus the ablation studies DESIGN.md calls out.
//
// Every experiment is a spec grid: the builders declare their runs as
// spec.SweepSpec axes (machines × policies with parameter grids ×
// workloads × seeds), expand them deterministically, and hand the cells
// to the shared execution layer (internal/exec). Simulations are
// memoised by spec fingerprint in the executor's Store — the same
// content-addressed identity the dwarnd service cache uses — and
// independent cells fan out over the executor's bounded worker pool, so
// experiments that share grid cells (Figures 1 and 3, Table 4) pay for
// each simulation once.
package exp

import (
	"context"
	"fmt"
	"sync"

	"dwarn/internal/ckpt"
	"dwarn/internal/exec"
	"dwarn/internal/sim"
	"dwarn/internal/spec"
	"dwarn/internal/workload"
)

// Config controls the measurement protocol for all experiments.
type Config struct {
	// Seed drives all synthetic randomness (0 = sim.DefaultSeed).
	Seed uint64
	// WarmupCycles and MeasureCycles per simulation (0 = package
	// defaults: 60k warmup, 150k measured).
	WarmupCycles  int64
	MeasureCycles int64
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Checkpoints, when non-nil, enables the checkpoint/fork engine:
	// grid cells sharing a (machine, workload, seed) group warm once
	// and fork the group's post-prewarm state from this store.
	Checkpoints ckpt.Store
}

// Default run lengths for experiments: long enough for stable rankings,
// short enough that the full paper regeneration finishes in minutes.
const (
	DefaultWarmup  = 60_000
	DefaultMeasure = 150_000
)

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = sim.DefaultSeed
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = DefaultWarmup
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = DefaultMeasure
	}
	return c
}

// Runner executes experiments through the shared execution layer. The
// executor's Store memoises by spec fingerprint; the runner adds a
// (machine, policy-id, workload, seed) index on top for the lookups the
// table builders perform.
type Runner struct {
	cfg    Config
	traces spec.TraceResolver
	exec   *exec.Executor

	mu    sync.Mutex
	index map[runKey]string // identity quad → fingerprint
}

type runKey struct {
	machine  string
	policy   string // canonical compact id: "stall", "dwarn(warn=2)"
	workload string
	seed     uint64
}

// NewRunner builds a Runner with the given protocol. Spec files that
// reference traces resolve them as filesystem paths.
func NewRunner(cfg Config) *Runner {
	cfg = cfg.withDefaults()
	return &Runner{
		cfg:    cfg,
		traces: spec.FileTraces{},
		exec:   exec.New(exec.Options{Workers: cfg.Parallelism, Checkpoints: cfg.Checkpoints}),
		index:  make(map[runKey]string),
	}
}

// grid expands a sweep under the runner's protocol: the experiment
// declares the axes, the runner supplies seed and run lengths.
func (r *Runner) grid(ss spec.SweepSpec) ([]spec.RunSpec, error) {
	ss.WarmupCycles = r.cfg.WarmupCycles
	ss.MeasureCycles = r.cfg.MeasureCycles
	if len(ss.Seeds) == 0 {
		ss.Seeds = []uint64{r.cfg.Seed}
	}
	return ss.Expand(0)
}

// gridCell is one resolved grid point.
type gridCell struct {
	res *spec.Resolved
	key runKey
}

// resolveAll compiles every spec before anything runs, so a bad cell is
// reported before any simulation starts.
func (r *Runner) resolveAll(specs []spec.RunSpec) ([]gridCell, error) {
	cells := make([]gridCell, len(specs))
	for i, rs := range specs {
		res, err := rs.Resolve(r.traces)
		if err != nil {
			return nil, err
		}
		cells[i] = gridCell{res: res, key: cellKey(res)}
	}
	return cells, nil
}

// cellKey derives the index quad from a resolved run.
func cellKey(res *spec.Resolved) runKey {
	wl := res.Options.Workload.Name
	if res.Options.Trace != nil {
		wl = res.Spec.Workload.ID()
	}
	return runKey{
		machine:  res.Spec.Machine.Name,
		policy:   res.Spec.Policy.ID(),
		workload: wl,
		seed:     res.Spec.Seed,
	}
}

// runAll completes all cells through the executor (memoised, fanned out
// over its pool), failing on the first cell error in grid order — the
// table builders need every cell to render anything.
func (r *Runner) runAll(specs []spec.RunSpec) error {
	cells, err := r.resolveAll(specs)
	if err != nil {
		return err
	}
	_, err = r.runResolved(cells)
	return err
}

// runResolved executes resolved cells and indexes their identities. The
// returned slice is in input order; its per-cell errors are also folded
// into the returned error (first in grid order) for callers that need
// every cell.
func (r *Runner) runResolved(cells []gridCell) ([]exec.CellResult, error) {
	resolved := make([]*spec.Resolved, len(cells))
	r.mu.Lock()
	for i, c := range cells {
		resolved[i] = c.res
		r.index[c.key] = c.res.Fingerprint
	}
	r.mu.Unlock()
	results := r.exec.Execute(context.Background(), resolved, nil)
	return results, exec.FirstError(results)
}

// get returns a memoised result under the runner's own seed; runAll
// must have succeeded for its cell.
func (r *Runner) get(machine, policy, wl string) *sim.Result {
	r.mu.Lock()
	fp := r.index[runKey{machine: machine, policy: policy, workload: wl, seed: r.cfg.Seed}]
	r.mu.Unlock()
	res, _ := r.exec.Store().Get(fp)
	return res
}

// soloSpecs builds the solo-baseline workload axis for every distinct
// benchmark in the workloads.
func soloSpecs(wls []workload.Workload) []spec.Workload {
	seen := map[string]bool{}
	var out []spec.Workload
	for _, wl := range wls {
		for _, b := range wl.Benchmarks {
			if !seen[b] {
				seen[b] = true
				out = append(out, spec.Workload{Solo: b})
			}
		}
	}
	return out
}

// solo returns the single-thread IPC of a benchmark on a machine (the
// relative-IPC denominator), memoised via the same store.
func (r *Runner) solo(machine, bench string) (float64, error) {
	specs, err := r.grid(spec.SweepSpec{
		Machines:  []spec.Machine{{Name: machine}},
		Policies:  []spec.PolicyAxis{{Name: "icount"}},
		Workloads: []spec.Workload{{Solo: bench}},
	})
	if err != nil {
		return 0, err
	}
	if err := r.runAll(specs); err != nil {
		return 0, err
	}
	return r.get(machine, "icount", "solo-"+bench).Threads[0].IPC, nil
}

// soloAll warms the solo cache for every benchmark in the workloads.
func (r *Runner) soloAll(machine string, wls []workload.Workload) error {
	specs, err := r.grid(spec.SweepSpec{
		Machines:  []spec.Machine{{Name: machine}},
		Policies:  []spec.PolicyAxis{{Name: "icount"}},
		Workloads: soloSpecs(wls),
	})
	if err != nil {
		return err
	}
	return r.runAll(specs)
}

// relIPCs computes each thread's relative IPC for a finished run.
func (r *Runner) relIPCs(machine string, res *sim.Result) ([]float64, error) {
	rel := make([]float64, len(res.Threads))
	for i, t := range res.Threads {
		solo, err := r.solo(machine, t.Benchmark)
		if err != nil {
			return nil, err
		}
		if solo <= 0 {
			return nil, fmt.Errorf("exp: zero solo IPC for %s on %s", t.Benchmark, machine)
		}
		rel[i] = t.IPC / solo
	}
	return rel, nil
}

// RunSpecs executes an arbitrary spec grid (the -spec path of
// cmd/experiments) and renders one generic table: a row per cell with
// its resolved identity, throughput, and fingerprint. Unlike the named
// experiments, a failing cell does not abort the grid: its row reports
// the error and every other cell still renders. Cells with baselines
// set additionally report Hmean and weighted speedup over solo-ICOUNT
// baselines run at the cell's own machine, seed, and protocol (memoised
// like everything else).
func (r *Runner) RunSpecs(cells []spec.RunSpec) (*Table, error) {
	resolved, err := r.resolveAll(cells)
	if err != nil {
		return nil, err
	}
	results, _ := r.runResolved(resolved) // per-cell errors render as rows

	// Baselines pass: the shared batch shape (collect, dedupe by
	// fingerprint, one Execute, summarize) lives in the execution layer.
	specs := make([]*spec.Resolved, len(resolved))
	for i, c := range resolved {
		specs[i] = c.res
	}
	summaries, err := exec.SoloSummaries(context.Background(), r.exec, specs, results)
	if err != nil {
		return nil, err
	}

	hasBaselines := false
	for _, s := range summaries {
		if s != nil {
			hasBaselines = true
			break
		}
	}
	hasErrors := exec.FirstError(results) != nil

	t := &Table{
		ID:     "spec-grid",
		Title:  "spec grid results",
		Header: []string{"machine", "policy", "workload", "seed", "throughput", "fingerprint"},
	}
	if hasBaselines {
		t.Header = append(t.Header, "hmean", "wspeedup")
	}
	if hasErrors {
		t.Header = append(t.Header, "error")
	}
	for i, c := range resolved {
		cr := results[i]
		tp := "-"
		if cr.Result != nil {
			tp = cell(cr.Result.Throughput)
		}
		row := []string{
			c.key.machine, c.key.policy, c.key.workload,
			fmt.Sprintf("%d", c.key.seed),
			tp,
			c.res.Fingerprint[:12],
		}
		if hasBaselines {
			hm, ws := "-", "-"
			if s := summaries[i]; s != nil {
				hm, ws = cell(s.Hmean), cell(s.WeightedSpeedup)
			}
			row = append(row, hm, ws)
		}
		if hasErrors {
			e := ""
			if cr.Err != nil {
				e = cr.Err.Error()
			}
			row = append(row, e)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
