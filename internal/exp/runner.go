// Package exp regenerates every table and figure of the paper's
// evaluation: Table 2(a) (isolated cache behaviour), Figure 1 (absolute
// throughput and DWarn's improvement), Figure 2 (flushed instructions
// under FLUSH), Figure 3 (Hmean improvement), Table 4 (per-thread
// relative IPCs on 4-MIX), Figures 4 and 5 (the smaller and deeper
// machines), plus the ablation studies DESIGN.md calls out.
//
// Every experiment is a spec grid: the builders declare their runs as
// spec.SweepSpec axes (machines × policies with parameter grids ×
// workloads × seeds), expand them deterministically, and hand the cells
// to the runner. Simulations are memoised by spec fingerprint — the
// same content-addressed identity the dwarnd service cache uses — and
// independent cells fan out over a worker pool, so experiments that
// share grid cells (Figures 1 and 3, Table 4) pay for each simulation
// once.
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"dwarn/internal/sim"
	"dwarn/internal/spec"
	"dwarn/internal/stats"
	"dwarn/internal/workload"
)

// Config controls the measurement protocol for all experiments.
type Config struct {
	// Seed drives all synthetic randomness (0 = sim.DefaultSeed).
	Seed uint64
	// WarmupCycles and MeasureCycles per simulation (0 = package
	// defaults: 60k warmup, 150k measured).
	WarmupCycles  int64
	MeasureCycles int64
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
}

// Default run lengths for experiments: long enough for stable rankings,
// short enough that the full paper regeneration finishes in minutes.
const (
	DefaultWarmup  = 60_000
	DefaultMeasure = 150_000
)

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = sim.DefaultSeed
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = DefaultWarmup
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = DefaultMeasure
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// Runner executes and memoises simulations. The memo is keyed by the
// spec fingerprint, with a (machine, policy-id, workload, seed) index
// on top for the lookups the table builders perform.
type Runner struct {
	cfg    Config
	traces spec.TraceResolver

	mu    sync.Mutex
	runs  map[string]*sim.Result // fingerprint → result
	errs  map[string]error       // fingerprint → error
	index map[runKey]string      // identity quad → fingerprint
}

type runKey struct {
	machine  string
	policy   string // canonical compact id: "stall", "dwarn(warn=2)"
	workload string
	seed     uint64
}

// NewRunner builds a Runner with the given protocol. Spec files that
// reference traces resolve them as filesystem paths.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		cfg:    cfg.withDefaults(),
		traces: spec.FileTraces{},
		runs:   make(map[string]*sim.Result),
		errs:   make(map[string]error),
		index:  make(map[runKey]string),
	}
}

// grid expands a sweep under the runner's protocol: the experiment
// declares the axes, the runner supplies seed and run lengths.
func (r *Runner) grid(ss spec.SweepSpec) ([]spec.RunSpec, error) {
	ss.WarmupCycles = r.cfg.WarmupCycles
	ss.MeasureCycles = r.cfg.MeasureCycles
	if len(ss.Seeds) == 0 {
		ss.Seeds = []uint64{r.cfg.Seed}
	}
	return ss.Expand(0)
}

// gridCell is one resolved grid point.
type gridCell struct {
	res *spec.Resolved
	key runKey
}

// resolveAll compiles every spec before anything runs, so a bad cell
// cannot strand reservations in the memo for the good ones.
func (r *Runner) resolveAll(specs []spec.RunSpec) ([]gridCell, error) {
	cells := make([]gridCell, len(specs))
	for i, rs := range specs {
		res, err := rs.Resolve(r.traces)
		if err != nil {
			return nil, err
		}
		cells[i] = gridCell{res: res, key: cellKey(res)}
	}
	return cells, nil
}

// cellKey derives the index quad from a resolved run.
func cellKey(res *spec.Resolved) runKey {
	wl := res.Options.Workload.Name
	if res.Options.Trace != nil {
		wl = res.Spec.Workload.ID()
	}
	return runKey{
		machine:  res.Spec.Machine.Name,
		policy:   res.Spec.Policy.ID(),
		workload: wl,
		seed:     res.Spec.Seed,
	}
}

// runAll completes all cells, memoised, fanning out over the worker pool.
func (r *Runner) runAll(specs []spec.RunSpec) error {
	cells, err := r.resolveAll(specs)
	if err != nil {
		return err
	}
	return r.runResolved(cells)
}

func (r *Runner) runResolved(cells []gridCell) error {
	var pending []gridCell
	fps := make([]string, len(cells))
	r.mu.Lock()
	for i, c := range cells {
		fp := c.res.Fingerprint
		fps[i] = fp
		r.index[c.key] = fp
		if _, ok := r.runs[fp]; ok {
			continue
		}
		if _, ok := r.errs[fp]; ok {
			continue
		}
		// Reserve the slot so duplicate cells in this batch run once.
		r.runs[fp] = nil
		pending = append(pending, c)
	}
	r.mu.Unlock()

	sem := make(chan struct{}, r.cfg.Parallelism)
	var wg sync.WaitGroup
	for _, c := range pending {
		wg.Add(1)
		go func(c gridCell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := sim.Run(c.res.Options)
			r.mu.Lock()
			if err != nil {
				delete(r.runs, c.res.Fingerprint)
				r.errs[c.res.Fingerprint] = err
			} else {
				r.runs[c.res.Fingerprint] = res
			}
			r.mu.Unlock()
		}(c)
	}
	wg.Wait()

	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fp := range fps {
		if err := r.errs[fp]; err != nil {
			return err
		}
	}
	return nil
}

// get returns a memoised result under the runner's own seed; runAll
// must have succeeded for its cell.
func (r *Runner) get(machine, policy, wl string) *sim.Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs[r.index[runKey{machine: machine, policy: policy, workload: wl, seed: r.cfg.Seed}]]
}

// soloSpecs builds the solo-baseline workload axis for every distinct
// benchmark in the workloads.
func soloSpecs(wls []workload.Workload) []spec.Workload {
	seen := map[string]bool{}
	var out []spec.Workload
	for _, wl := range wls {
		for _, b := range wl.Benchmarks {
			if !seen[b] {
				seen[b] = true
				out = append(out, spec.Workload{Solo: b})
			}
		}
	}
	return out
}

// solo returns the single-thread IPC of a benchmark on a machine (the
// relative-IPC denominator), memoised via the same cache.
func (r *Runner) solo(machine, bench string) (float64, error) {
	specs, err := r.grid(spec.SweepSpec{
		Machines:  []spec.Machine{{Name: machine}},
		Policies:  []spec.PolicyAxis{{Name: "icount"}},
		Workloads: []spec.Workload{{Solo: bench}},
	})
	if err != nil {
		return 0, err
	}
	if err := r.runAll(specs); err != nil {
		return 0, err
	}
	return r.get(machine, "icount", "solo-"+bench).Threads[0].IPC, nil
}

// soloAll warms the solo cache for every benchmark in the workloads.
func (r *Runner) soloAll(machine string, wls []workload.Workload) error {
	specs, err := r.grid(spec.SweepSpec{
		Machines:  []spec.Machine{{Name: machine}},
		Policies:  []spec.PolicyAxis{{Name: "icount"}},
		Workloads: soloSpecs(wls),
	})
	if err != nil {
		return err
	}
	return r.runAll(specs)
}

// relIPCs computes each thread's relative IPC for a finished run.
func (r *Runner) relIPCs(machine string, res *sim.Result) ([]float64, error) {
	rel := make([]float64, len(res.Threads))
	for i, t := range res.Threads {
		solo, err := r.solo(machine, t.Benchmark)
		if err != nil {
			return nil, err
		}
		if solo <= 0 {
			return nil, fmt.Errorf("exp: zero solo IPC for %s on %s", t.Benchmark, machine)
		}
		rel[i] = t.IPC / solo
	}
	return rel, nil
}

// RunSpecs executes an arbitrary spec grid (the -spec path of
// cmd/experiments) and renders one generic table: a row per cell with
// its resolved identity, throughput, and fingerprint. Cells with
// baselines set additionally report Hmean and weighted speedup over
// solo-ICOUNT baselines run at the cell's own machine, seed, and
// protocol (memoised like everything else).
func (r *Runner) RunSpecs(cells []spec.RunSpec) (*Table, error) {
	resolved, err := r.resolveAll(cells)
	if err != nil {
		return nil, err
	}
	if err := r.runResolved(resolved); err != nil {
		return nil, err
	}

	// Baselines pass: collect each requesting cell's solo runs, dedupe
	// by fingerprint, and run them as one batch.
	cellSolos := make([]map[string]string, len(resolved)) // per cell: bench → solo fingerprint
	soloBatch := map[string]gridCell{}
	for i, c := range resolved {
		if !c.res.Spec.Baselines || c.res.Options.Trace != nil {
			continue
		}
		solos := map[string]string{}
		for _, b := range c.res.Options.Workload.Benchmarks {
			if _, ok := solos[b]; ok {
				continue
			}
			soloSpec := spec.RunSpec{
				Machine:       c.res.Spec.Machine,
				Policy:        spec.Policy{Name: "icount"},
				Workload:      spec.Workload{Solo: b},
				Seed:          c.res.Spec.Seed,
				WarmupCycles:  c.res.Spec.WarmupCycles,
				MeasureCycles: c.res.Spec.MeasureCycles,
			}
			sr, err := soloSpec.Resolve(nil)
			if err != nil {
				return nil, err
			}
			solos[b] = sr.Fingerprint
			soloBatch[sr.Fingerprint] = gridCell{res: sr, key: cellKey(sr)}
		}
		cellSolos[i] = solos
	}
	if len(soloBatch) > 0 {
		batch := make([]gridCell, 0, len(soloBatch))
		for _, c := range soloBatch {
			batch = append(batch, c)
		}
		if err := r.runResolved(batch); err != nil {
			return nil, err
		}
	}

	hasBaselines := false
	for _, m := range cellSolos {
		if m != nil {
			hasBaselines = true
			break
		}
	}

	t := &Table{
		ID:     "spec-grid",
		Title:  "spec grid results",
		Header: []string{"machine", "policy", "workload", "seed", "throughput", "fingerprint"},
	}
	if hasBaselines {
		t.Header = append(t.Header, "hmean", "wspeedup")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, c := range resolved {
		res := r.runs[c.res.Fingerprint]
		row := []string{
			c.key.machine, c.key.policy, c.key.workload,
			fmt.Sprintf("%d", c.key.seed),
			cell(res.Throughput),
			c.res.Fingerprint[:12],
		}
		if hasBaselines {
			hm, ws := "-", "-"
			if solos := cellSolos[i]; solos != nil {
				smt := res.IPCs()
				solo := make([]float64, len(res.Threads))
				for j, th := range res.Threads {
					solo[j] = r.runs[solos[th.Benchmark]].Threads[0].IPC
				}
				summary, err := stats.Summarize(smt, solo)
				if err != nil {
					return nil, err
				}
				hm, ws = cell(summary.Hmean), cell(summary.WeightedSpeedup)
			}
			row = append(row, hm, ws)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
