package exp

import (
	"fmt"

	"dwarn/internal/core"
	"dwarn/internal/sim"
	"dwarn/internal/spec"
	"dwarn/internal/stats"
	"dwarn/internal/workload"
)

// paperPolicies are the six policies of the evaluation, in figure order.
var paperPolicies = core.PaperPolicies()

// displayName maps registry names to the paper's labels.
func displayName(p string) string { return core.MustNewPolicy(p).Name() }

// workloadSpecs lifts named workloads onto a sweep's workload axis.
func workloadSpecs(wls []workload.Workload) []spec.Workload {
	out := make([]spec.Workload, len(wls))
	for i, wl := range wls {
		out[i] = spec.Workload{Name: wl.Name}
	}
	return out
}

// Table2a regenerates Table 2(a): isolated L1/L2 load miss rates and the
// L1→L2 ratio per benchmark, next to the paper's values.
func (r *Runner) Table2a() (*Table, error) {
	names := workload.Names()
	var solos []spec.Workload
	for _, b := range names {
		solos = append(solos, spec.Workload{Solo: b})
	}
	specs, err := r.grid(spec.SweepSpec{
		Policies:  []spec.PolicyAxis{{Name: "icount"}},
		Workloads: solos,
	})
	if err != nil {
		return nil, err
	}
	if err := r.runAll(specs); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table2a",
		Title:  "cache behaviour of isolated benchmarks (measured vs paper targets)",
		Header: []string{"bench", "type", "L1 miss", "(paper)", "L2 miss", "(paper)", "L1→L2", "(paper)", "solo IPC"},
	}
	for _, b := range names {
		p := workload.MustGet(b)
		res := r.get("baseline", "icount", "solo-"+b)
		th := res.Threads[0]
		ratio := 0.0
		if p.L1MissRate > 0 {
			ratio = p.L2MissRate / p.L1MissRate
		}
		t.Rows = append(t.Rows, []string{
			b, p.Type.String(),
			fmt.Sprintf("%.4f", th.Pipeline.CommittedL1MissRate()), fmt.Sprintf("%.4f", p.L1MissRate),
			fmt.Sprintf("%.4f", th.Pipeline.CommittedL2MissRate()), fmt.Sprintf("%.4f", p.L2MissRate),
			fmt.Sprintf("%.2f", th.Pipeline.CommittedL1ToL2Ratio()), fmt.Sprintf("%.2f", ratio),
			cell(th.IPC),
		})
	}
	t.Notes = append(t.Notes, "paper values are the synthetic generators' calibration targets (Table 2a)")
	return t, nil
}

// paperGrid expands the paper-policies × workloads grid for one
// machine (the default policy axis is exactly the six paper policies).
func (r *Runner) paperGrid(machine string, wls []workload.Workload) ([]spec.RunSpec, error) {
	return r.grid(spec.SweepSpec{
		Machines:  []spec.Machine{{Name: machine}},
		Workloads: workloadSpecs(wls),
	})
}

// runPaperGrid expands and runs the grid in one step.
func (r *Runner) runPaperGrid(machine string, wls []workload.Workload) error {
	specs, err := r.paperGrid(machine, wls)
	if err != nil {
		return err
	}
	return r.runAll(specs)
}

// Fig1a regenerates Figure 1(a): absolute throughput per workload and
// policy on the baseline machine.
func (r *Runner) Fig1a() (*Table, error) {
	wls := workload.Workloads()
	if err := r.runPaperGrid("baseline", wls); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig1a",
		Title:  "throughput (sum of IPCs), baseline machine",
		Header: append([]string{"workload"}, policyHeaders()...),
	}
	for _, wl := range wls {
		row := []string{wl.Name}
		for _, p := range paperPolicies {
			row = append(row, cell(r.get("baseline", p, wl.Name).Throughput))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func policyHeaders() []string {
	hs := make([]string, len(paperPolicies))
	for i, p := range paperPolicies {
		hs[i] = displayName(p)
	}
	return hs
}

// improvementTable builds a DWarn-over-others table from a per-run
// metric.
func (r *Runner) improvementTable(id, title, machine string, wls []workload.Workload, metric func(*sim.Result) (float64, error)) (*Table, error) {
	if err := r.runPaperGrid(machine, wls); err != nil {
		return nil, err
	}
	others := make([]string, 0, len(paperPolicies)-1)
	for _, p := range paperPolicies {
		if p != "dwarn" {
			others = append(others, p)
		}
	}
	t := &Table{ID: id, Title: title}
	t.Header = []string{"workload"}
	for _, p := range others {
		t.Header = append(t.Header, "DWarn/"+displayName(p))
	}
	sums := make([]float64, len(others))
	for _, wl := range wls {
		dw, err := metric(r.get(machine, "dwarn", wl.Name))
		if err != nil {
			return nil, err
		}
		row := []string{wl.Name}
		for i, p := range others {
			base, err := metric(r.get(machine, p, wl.Name))
			if err != nil {
				return nil, err
			}
			imp := stats.Improvement(dw, base)
			sums[i] += imp
			row = append(row, pct(imp))
		}
		t.Rows = append(t.Rows, row)
	}
	avg := []string{"avg"}
	for i := range others {
		avg = append(avg, pct(sums[i]/float64(len(wls))))
	}
	t.Rows = append(t.Rows, avg)
	return t, nil
}

// Fig1b regenerates Figure 1(b): throughput improvement of DWarn over
// each policy on the baseline machine.
func (r *Runner) Fig1b() (*Table, error) {
	return r.improvementTable("fig1b", "throughput improvement of DWarn over the other policies, baseline",
		"baseline", workload.Workloads(),
		func(res *sim.Result) (float64, error) { return res.Throughput, nil })
}

// Fig2 regenerates Figure 2: instructions squashed by the FLUSH policy
// as a percentage of fetched instructions.
func (r *Runner) Fig2() (*Table, error) {
	wls := workload.Workloads()
	specs, err := r.grid(spec.SweepSpec{
		Policies:  []spec.PolicyAxis{{Name: "flush"}},
		Workloads: workloadSpecs(wls),
	})
	if err != nil {
		return nil, err
	}
	if err := r.runAll(specs); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig2",
		Title:  "flushed instructions w.r.t. fetched instructions (FLUSH policy)",
		Header: []string{"workload", "flushed %"},
	}
	byMix := map[workload.Mix][]float64{}
	for _, wl := range wls {
		f := 100 * r.get("baseline", "flush", wl.Name).FlushedFraction()
		byMix[wl.Mix] = append(byMix[wl.Mix], f)
		t.Rows = append(t.Rows, []string{wl.Name, fmt.Sprintf("%.1f%%", f)})
	}
	for _, mix := range []workload.Mix{workload.MixILP, workload.MixMIX, workload.MixMEM} {
		t.Rows = append(t.Rows, []string{"avg-" + mix.String(), fmt.Sprintf("%.1f%%", stats.Mean(byMix[mix]))})
	}
	t.Notes = append(t.Notes, "paper reports averages of roughly 7% ILP, 2%... MIX and 35% MEM")
	return t, nil
}

// hmeanMetric returns a metric function computing Hmean of relative
// IPCs on the given machine.
func (r *Runner) hmeanMetric(machine string) func(*sim.Result) (float64, error) {
	return func(res *sim.Result) (float64, error) {
		rel, err := r.relIPCs(machine, res)
		if err != nil {
			return 0, err
		}
		return stats.Hmean(rel), nil
	}
}

// Fig3 regenerates Figure 3: Hmean improvement of DWarn over the other
// policies on the baseline machine.
func (r *Runner) Fig3() (*Table, error) {
	wls := workload.Workloads()
	if err := r.soloAll("baseline", wls); err != nil {
		return nil, err
	}
	return r.improvementTable("fig3", "Hmean improvement of DWarn over the other policies, baseline",
		"baseline", wls, r.hmeanMetric("baseline"))
}

// Table4 regenerates Table 4: the relative IPC of each thread in the
// 4-MIX workload under every policy, plus the Hmean.
func (r *Runner) Table4() (*Table, error) {
	wl, err := workload.GetWorkload("4-MIX")
	if err != nil {
		return nil, err
	}
	if err := r.runPaperGrid("baseline", []workload.Workload{wl}); err != nil {
		return nil, err
	}
	if err := r.soloAll("baseline", []workload.Workload{wl}); err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "table4",
		Title: "relative IPC of each thread in the 4-MIX workload",
	}
	t.Header = []string{"policy"}
	for _, b := range wl.Benchmarks {
		ty := workload.MustGet(b).Type
		t.Header = append(t.Header, fmt.Sprintf("%s(%s)", b, ty))
	}
	t.Header = append(t.Header, "Hmean")
	for _, p := range paperPolicies {
		res := r.get("baseline", p, wl.Name)
		rel, err := r.relIPCs("baseline", res)
		if err != nil {
			return nil, err
		}
		row := []string{displayName(p)}
		for _, v := range rel {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		row = append(row, fmt.Sprintf("%.2f", stats.Hmean(rel)))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig4 regenerates Figure 4: throughput and Hmean improvements of DWarn
// on the smaller 4-wide 1.4-fetch machine (2- and 4-thread workloads).
func (r *Runner) Fig4() ([]*Table, error) {
	wls := workload.WorkloadsByThreads(2, 4)
	if err := r.soloAll("small", wls); err != nil {
		return nil, err
	}
	thr, err := r.improvementTable("fig4a", "throughput improvement of DWarn, small machine (4-wide, 1.4 fetch)",
		"small", wls, func(res *sim.Result) (float64, error) { return res.Throughput, nil })
	if err != nil {
		return nil, err
	}
	hm, err := r.improvementTable("fig4b", "Hmean improvement of DWarn, small machine (4-wide, 1.4 fetch)",
		"small", wls, r.hmeanMetric("small"))
	if err != nil {
		return nil, err
	}
	return []*Table{thr, hm}, nil
}

// Fig5 regenerates Figure 5: throughput and Hmean improvements of DWarn
// on the deeper machine (16 stages, longer memory latencies).
func (r *Runner) Fig5() ([]*Table, error) {
	wls := workload.Workloads()
	if err := r.soloAll("deep", wls); err != nil {
		return nil, err
	}
	thr, err := r.improvementTable("fig5a", "throughput improvement of DWarn, deep machine (16-stage)",
		"deep", wls, func(res *sim.Result) (float64, error) { return res.Throughput, nil })
	if err != nil {
		return nil, err
	}
	hm, err := r.improvementTable("fig5b", "Hmean improvement of DWarn, deep machine (16-stage)",
		"deep", wls, r.hmeanMetric("deep"))
	if err != nil {
		return nil, err
	}
	return []*Table{thr, hm}, nil
}
