package exp

import "fmt"

// Experiments lists every regenerable artifact by identifier.
var Experiments = []string{
	"table2a", "fig1a", "fig1b", "fig2", "fig3", "table4",
	"fig4", "fig5",
	"ablate-threshold", "ablate-dg", "ablate-dwarn-warn", "ablate-hybrid",
	"phases",
}

// Run executes one experiment by identifier, returning its tables.
func (r *Runner) Run(id string) ([]*Table, error) {
	switch id {
	case "table2a":
		t, err := r.Table2a()
		return wrap(t, err)
	case "fig1a":
		t, err := r.Fig1a()
		return wrap(t, err)
	case "fig1b":
		t, err := r.Fig1b()
		return wrap(t, err)
	case "fig2":
		t, err := r.Fig2()
		return wrap(t, err)
	case "fig3":
		t, err := r.Fig3()
		return wrap(t, err)
	case "table4":
		t, err := r.Table4()
		return wrap(t, err)
	case "fig4":
		return r.Fig4()
	case "fig5":
		return r.Fig5()
	case "ablate-threshold":
		t, err := r.AblateL2Threshold()
		return wrap(t, err)
	case "ablate-dg":
		t, err := r.AblateDGThreshold()
		return wrap(t, err)
	case "ablate-dwarn-warn":
		t, err := r.AblateDWarnWarn()
		return wrap(t, err)
	case "ablate-hybrid":
		t, err := r.AblateDWarnHybrid()
		return wrap(t, err)
	case "phases":
		return r.Phases()
	}
	return nil, fmt.Errorf("exp: unknown experiment %q (known: %v)", id, Experiments)
}

func wrap(t *Table, err error) ([]*Table, error) {
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}
