package exp

import (
	"strings"
	"testing"

	"dwarn/internal/config"
	"dwarn/internal/workload"
)

// fastRunner uses very short simulations: these tests exercise the
// harness plumbing, not result quality.
func fastRunner() *Runner {
	return NewRunner(Config{WarmupCycles: 4000, MeasureCycles: 8000})
}

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	s := tb.Render()
	for _, want := range []string{"demo", "a", "1", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestMachineFor(t *testing.T) {
	for _, name := range []string{"baseline", "small", "deep", ""} {
		if _, err := config.ByName(name); err != nil {
			t.Errorf("config.ByName(%q): %v", name, err)
		}
	}
	if _, err := config.ByName("nonesuch"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestRunnerMemoises(t *testing.T) {
	r := fastRunner()
	wl, _ := workload.GetWorkload("2-MIX")
	j := job{machine: "baseline", policy: "icount", workload: wl}
	if err := r.runAll([]job{j}); err != nil {
		t.Fatal(err)
	}
	first := r.get("baseline", "icount", "2-MIX")
	if err := r.runAll([]job{j}); err != nil {
		t.Fatal(err)
	}
	if second := r.get("baseline", "icount", "2-MIX"); second != first {
		t.Error("second runAll re-simulated instead of memoising")
	}
}

func TestSoloCached(t *testing.T) {
	r := fastRunner()
	a, err := r.solo("baseline", "gzip")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.solo("baseline", "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a <= 0 {
		t.Errorf("solo cache broken: %v vs %v", a, b)
	}
}

func TestTable2aSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := fastRunner().Table2a()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := fastRunner().Run("nonesuch"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestAblateHybridSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := fastRunner().AblateDWarnHybrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
}

func TestTable4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := fastRunner().Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("%d policy rows", len(tb.Rows))
	}
	// Header: policy + 4 threads + Hmean.
	if len(tb.Header) != 6 {
		t.Fatalf("header %v", tb.Header)
	}
}

func TestExperimentListComplete(t *testing.T) {
	if len(Experiments) != 11 {
		t.Errorf("%d experiments registered", len(Experiments))
	}
}
