package exp

import (
	"context"
	"errors"
	"strings"
	"testing"

	"dwarn/internal/config"
	"dwarn/internal/exec"
	"dwarn/internal/sim"
	"dwarn/internal/spec"
)

// fastRunner uses very short simulations: these tests exercise the
// harness plumbing, not result quality.
func fastRunner() *Runner {
	return NewRunner(Config{WarmupCycles: 4000, MeasureCycles: 8000})
}

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	s := tb.Render()
	for _, want := range []string{"demo", "a", "1", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestMachineFor(t *testing.T) {
	for _, name := range []string{"baseline", "small", "deep", ""} {
		if _, err := config.ByName(name); err != nil {
			t.Errorf("config.ByName(%q): %v", name, err)
		}
	}
	if _, err := config.ByName("nonesuch"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestRunnerMemoises(t *testing.T) {
	r := fastRunner()
	specs, err := r.grid(spec.SweepSpec{
		Policies:  []spec.PolicyAxis{{Name: "icount"}},
		Workloads: []spec.Workload{{Name: "2-MIX"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.runAll(specs); err != nil {
		t.Fatal(err)
	}
	first := r.get("baseline", "icount", "2-MIX")
	if first == nil {
		t.Fatal("run not indexed")
	}
	if err := r.runAll(specs); err != nil {
		t.Fatal(err)
	}
	if second := r.get("baseline", "icount", "2-MIX"); second != first {
		t.Error("second runAll re-simulated instead of memoising")
	}
}

// TestDefaultParamsShareMemo: an ablation cell whose parameters are all
// defaults must reuse the base policy's memo entry, not re-simulate.
func TestDefaultParamsShareMemo(t *testing.T) {
	r := fastRunner()
	base, err := r.grid(spec.SweepSpec{
		Policies:  []spec.PolicyAxis{{Name: "stall"}},
		Workloads: []spec.Workload{{Name: "2-MIX"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.runAll(base); err != nil {
		t.Fatal(err)
	}
	first := r.get("baseline", "stall", "2-MIX")

	tuned, err := r.grid(spec.SweepSpec{
		Policies:  []spec.PolicyAxis{{Name: "stall", Params: map[string][]int64{"threshold": {15, 25}}}},
		Workloads: []spec.Workload{{Name: "2-MIX"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.runAll(tuned); err != nil {
		t.Fatal(err)
	}
	if got := r.get("baseline", "stall", "2-MIX"); got != first {
		t.Error("threshold=15 (the default) did not share the base policy's memo entry")
	}
	if got := r.get("baseline", "stall(threshold=25)", "2-MIX"); got == nil || got == first {
		t.Error("threshold=25 not indexed as its own run")
	}
}

func TestRunSpecsTable(t *testing.T) {
	r := fastRunner()
	specs, err := r.grid(spec.SweepSpec{
		Policies:  []spec.PolicyAxis{{Name: "dwarn", Params: map[string][]int64{"warn": {1, 2}}}},
		Workloads: []spec.Workload{{Name: "2-MIX"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := r.RunSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	if tb.Rows[0][5] == tb.Rows[1][5] {
		t.Error("warn=1 and warn=2 share a fingerprint")
	}
}

// TestRunSpecsSurfacesCellErrors: a failing cell renders its error in
// the generic table while its siblings still report results — the grid
// is never aborted by one bad cell.
func TestRunSpecsSurfacesCellErrors(t *testing.T) {
	r := fastRunner()
	// Swap in an executor that fails exactly the stall cell.
	r.exec = exec.New(exec.Options{Workers: 2, Run: func(ctx context.Context, res *spec.Resolved) (*sim.Result, error) {
		if res.Spec.Policy.Name == "stall" {
			return nil, errors.New("injected failure")
		}
		return sim.RunContext(ctx, res.Options)
	}})

	specs, err := r.grid(spec.SweepSpec{
		Policies:  []spec.PolicyAxis{{Name: "icount"}, {Name: "stall"}, {Name: "dwarn"}},
		Workloads: []spec.Workload{{Name: "2-MIX"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := r.RunSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.Header[len(tb.Header)-1]; got != "error" {
		t.Fatalf("no error column (header %v)", tb.Header)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		errCol := row[len(row)-1]
		if row[1] == "stall" {
			if !strings.Contains(errCol, "injected failure") || row[4] != "-" {
				t.Fatalf("failing row %v", row)
			}
			continue
		}
		if errCol != "" || row[4] == "-" {
			t.Fatalf("sibling row must carry a result: %v", row)
		}
	}
}

func TestSoloCached(t *testing.T) {
	r := fastRunner()
	a, err := r.solo("baseline", "gzip")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.solo("baseline", "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a <= 0 {
		t.Errorf("solo cache broken: %v vs %v", a, b)
	}
}

func TestTable2aSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := fastRunner().Table2a()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := fastRunner().Run("nonesuch"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestAblateHybridSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := fastRunner().AblateDWarnHybrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
}

func TestTable4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := fastRunner().Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("%d policy rows", len(tb.Rows))
	}
	// Header: policy + 4 threads + Hmean.
	if len(tb.Header) != 6 {
		t.Fatalf("header %v", tb.Header)
	}
}

func TestExperimentListComplete(t *testing.T) {
	if len(Experiments) != 13 {
		t.Errorf("%d experiments registered", len(Experiments))
	}
}
