package exp

import (
	"fmt"

	"dwarn/internal/sim"
	"dwarn/internal/timeline"
	"dwarn/internal/workload"
)

// Phases renders the phase-analysis tables behind the timeline layer:
// DWarn vs ICOUNT over one MIX workload, one row per sampled interval
// with aggregate IPC and the fraction of thread-cycles each fetch-gate
// decision class absorbed. Where the paper's figures compare end-of-run
// totals, this view shows *when* DWarn demotes and gates — the
// per-interval signal the ROADMAP's adaptive-policy work needs.
//
// The runs execute the simulator directly rather than through the
// runner's memoizing store: timeline frames are non-semantic (they
// never change a fingerprint), so a store hit could legitimately return
// a frame-less result computed by an earlier experiment.
func (r *Runner) Phases() ([]*Table, error) {
	const wlName = "4-MIX"
	wl, err := workload.GetWorkload(wlName)
	if err != nil {
		return nil, err
	}
	// Ten intervals across the measured window keeps the table readable
	// at any -measure length.
	interval := r.cfg.MeasureCycles / 10
	if interval < 1_000 {
		interval = 1_000
	}

	var tables []*Table
	for _, policy := range []string{"dwarn", "icount"} {
		res, err := sim.Run(sim.Options{
			Policy:        policy,
			Workload:      wl,
			Seed:          r.cfg.Seed,
			WarmupCycles:  r.cfg.WarmupCycles,
			MeasureCycles: r.cfg.MeasureCycles,
			Timeline:      &timeline.Config{IntervalCycles: interval},
		})
		if err != nil {
			return nil, err
		}
		tables = append(tables, phaseTable(policy, wlName, res))
	}
	return tables, nil
}

// phaseTable renders one run's frames: per interval, aggregate IPC and
// the share of thread-cycles spent in each gate class.
func phaseTable(policy, wl string, res *sim.Result) *Table {
	t := &Table{
		ID:     "phases-" + policy,
		Title:  fmt.Sprintf("per-interval phase analysis: %s on %s (%d cycles/interval)", policy, wl, res.Timeline.IntervalCycles),
		Header: []string{"cycles", "ipc", "committed", "l2_misses", "normal%", "demoted%", "gated%"},
		Notes: []string{
			"gate classes attribute each thread-cycle to the policy's fetch decision: " +
				"normal (competing freely), demoted (deprioritized), gated (excluded from fetch)",
		},
	}
	for i := range res.Timeline.Frames {
		f := &res.Timeline.Frames[i]
		var l2, normal, demoted, gated, total uint64
		for j := range f.Threads {
			tf := &f.Threads[j]
			l2 += tf.LoadL2Misses
			normal += tf.GateNormalCycles
			demoted += tf.GateDemotedCycles
			gated += tf.GateGatedCycles
		}
		total = normal + demoted + gated
		frac := func(v uint64) string {
			if total == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f", 100*float64(v)/float64(total))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d-%d", f.StartCycle, f.EndCycle),
			cell(f.IPC()),
			fmt.Sprintf("%d", f.Committed()),
			fmt.Sprintf("%d", l2),
			frac(normal), frac(demoted), frac(gated),
		})
	}
	return t
}
