package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split(1)
	c2 := root.Split(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first draws")
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9).Split(3)
	b := New(9).Split(3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split streams diverged at %d", i)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(13)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 0.06*float64(want) {
			t.Errorf("bucket %d: %d, want ~%d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(17)
	var sum float64
	const draws = 50000
	for i := 0; i < draws; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(19)
	const draws = 50000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / draws; math.Abs(p-0.3) > 0.02 {
		t.Errorf("Bool(0.3) rate %v", p)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(23)
	const p, draws = 0.25, 50000
	var sum float64
	for i := 0; i < draws; i++ {
		sum += float64(r.Geometric(p))
	}
	want := (1 - p) / p // 3.0
	if mean := sum / draws; math.Abs(mean-want) > 0.15 {
		t.Errorf("Geometric(%v) mean %v, want ~%v", p, mean, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := New(29)
	if v := r.Geometric(1); v != 0 {
		t.Errorf("Geometric(1) = %d, want 0", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	r.Geometric(0)
}

func TestPickWeights(t *testing.T) {
	r := New(31)
	weights := []float64{1, 3, 0, 6}
	counts := make([]int, 4)
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[r.Pick(weights)]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight bucket drawn %d times", counts[2])
	}
	if p := float64(counts[3]) / draws; math.Abs(p-0.6) > 0.02 {
		t.Errorf("bucket 3 rate %v, want ~0.6", p)
	}
}

func TestPickPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with zero total did not panic")
		}
	}()
	New(1).Pick([]float64{0, 0})
}

func TestUint32NotConstant(t *testing.T) {
	r := New(37)
	first := r.Uint32()
	for i := 0; i < 10; i++ {
		if r.Uint32() != first {
			return
		}
	}
	t.Fatal("Uint32 appears constant")
}

func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 10; i++ {
			if v := r.Intn(m); v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeterministicReplay(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 16; i++ {
			if a.Float64() != b.Float64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
