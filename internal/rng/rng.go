// Package rng provides the deterministic pseudo-random number generator
// used by every stochastic component of the simulator (synthetic trace
// generation, address streams, branch outcome synthesis).
//
// The simulator must be bit-reproducible across runs and platforms, and
// independent components must be able to draw from independent streams,
// so rng wraps a SplitMix64 core: cheap, well distributed, and trivially
// splittable by deriving child seeds.
package rng

// Source is a SplitMix64 pseudo-random generator. The zero value is a
// valid generator seeded with 0.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives an independent child Source. The child's stream is a
// deterministic function of the parent state and the salt, so components
// created in a fixed order always see the same streams.
func (s *Source) Split(salt uint64) *Source {
	return New(s.Uint64() ^ (salt * 0x9e3779b97f4a7c15))
}

// State returns the generator's internal state word. Together with
// SetState it makes a Source checkpointable: restoring the word resumes
// the stream at exactly the same position.
func (s *Source) State() uint64 { return s.state }

// SetState overwrites the generator's internal state word.
func (s *Source) SetState(state uint64) { s.state = state }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns 32 uniformly distributed bits.
func (s *Source) Uint32() uint32 {
	return uint32(s.Uint64() >> 32)
}

// Intn returns a uniformly distributed int in [0, n). n must be > 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method.
	v := s.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := -uint64(n) % uint64(n)
		for lo < thresh {
			v = s.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p, i.e. the number of failures before the first success
// (support {0, 1, 2, ...}, mean (1-p)/p). p must be in (0, 1].
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs p in (0,1]")
	}
	if p == 1 {
		return 0
	}
	n := 0
	for !s.Bool(p) {
		n++
		if n > 1<<20 {
			// Defensive bound; unreachable for sane p.
			break
		}
	}
	return n
}

// Pick returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative and sum to a
// positive value.
func (s *Source) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("rng: Pick needs a positive total weight")
	}
	x := s.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}
