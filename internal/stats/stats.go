// Package stats implements the evaluation metrics the paper uses:
// throughput (sum of per-thread IPCs), relative IPC against a
// single-threaded run of the same machine, the harmonic mean of
// relative IPCs (Luo et al.'s throughput-fairness balance, the paper's
// second metric), and weighted speedup (used by Tullsen & Brown, shown
// for completeness).
package stats

import (
	"fmt"
	"math"
)

// Throughput returns the sum of per-thread IPCs.
func Throughput(ipcs []float64) float64 {
	var sum float64
	for _, v := range ipcs {
		sum += v
	}
	return sum
}

// RelativeIPCs divides each thread's multithreaded IPC by its
// single-threaded IPC on the same machine. The slices must be the same
// length and solo IPCs must be positive.
func RelativeIPCs(smt, solo []float64) ([]float64, error) {
	if len(smt) != len(solo) {
		return nil, fmt.Errorf("stats: %d SMT IPCs vs %d solo IPCs", len(smt), len(solo))
	}
	rel := make([]float64, len(smt))
	for i := range smt {
		if solo[i] <= 0 {
			return nil, fmt.Errorf("stats: thread %d solo IPC %.4f not positive", i, solo[i])
		}
		rel[i] = smt[i] / solo[i]
	}
	return rel, nil
}

// Hmean returns the harmonic mean of the relative IPCs: n / Σ(1/x_i).
// A zero entry yields 0 (a fully starved thread zeroes the metric,
// which is the intended fairness property).
func Hmean(rel []float64) float64 {
	if len(rel) == 0 {
		return 0
	}
	var inv float64
	for _, v := range rel {
		if v <= 0 {
			return 0
		}
		inv += 1 / v
	}
	return float64(len(rel)) / inv
}

// WeightedSpeedup returns the arithmetic mean of relative IPCs
// (Snavely & Tullsen's symbiosis metric as used in the FLUSH paper).
func WeightedSpeedup(rel []float64) float64 {
	if len(rel) == 0 {
		return 0
	}
	var sum float64
	for _, v := range rel {
		sum += v
	}
	return sum / float64(len(rel))
}

// Improvement returns the percentage improvement of a over b:
// 100*(a-b)/b. Used for every "X improvement of DWarn over POLICY" bar
// in the paper's figures.
func Improvement(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 100 * (a - b) / b
}

// GeoMean returns the geometric mean of positive values; zero or
// negative values yield 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, v := range xs {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Summary bundles the paper's aggregate metrics for one SMT run against
// its solo baselines. It is the JSON shape dwarnd returns for sweep
// cells, so field tags are part of the service API.
type Summary struct {
	// Throughput is the sum of per-thread IPCs.
	Throughput float64 `json:"throughput"`
	// Hmean is the harmonic mean of relative IPCs (throughput-fairness).
	Hmean float64 `json:"hmean"`
	// WeightedSpeedup is the arithmetic mean of relative IPCs.
	WeightedSpeedup float64 `json:"weighted_speedup"`
	// RelativeIPCs is each thread's SMT IPC over its solo IPC.
	RelativeIPCs []float64 `json:"relative_ipcs"`
}

// Summarize computes all aggregate metrics from per-thread SMT IPCs and
// their solo baselines.
func Summarize(smt, solo []float64) (*Summary, error) {
	rel, err := RelativeIPCs(smt, solo)
	if err != nil {
		return nil, err
	}
	return &Summary{
		Throughput:      Throughput(smt),
		Hmean:           Hmean(rel),
		WeightedSpeedup: WeightedSpeedup(rel),
		RelativeIPCs:    rel,
	}, nil
}
