package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThroughput(t *testing.T) {
	if got := Throughput([]float64{1, 2, 0.5}); got != 3.5 {
		t.Errorf("Throughput = %v", got)
	}
	if Throughput(nil) != 0 {
		t.Error("empty throughput not 0")
	}
}

func TestRelativeIPCs(t *testing.T) {
	rel, err := RelativeIPCs([]float64{1, 2}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if rel[0] != 0.5 || rel[1] != 1 {
		t.Errorf("rel = %v", rel)
	}
}

func TestRelativeIPCsErrors(t *testing.T) {
	if _, err := RelativeIPCs([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := RelativeIPCs([]float64{1}, []float64{0}); err == nil {
		t.Error("zero solo accepted")
	}
}

func TestHmean(t *testing.T) {
	if got := Hmean([]float64{1, 1}); got != 1 {
		t.Errorf("Hmean(1,1) = %v", got)
	}
	// Harmonic mean of 0.5 and 1: 2/(2+1) = 0.667.
	if got := Hmean([]float64{0.5, 1}); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Hmean = %v", got)
	}
	if Hmean(nil) != 0 {
		t.Error("empty hmean not 0")
	}
	if Hmean([]float64{0.5, 0}) != 0 {
		t.Error("zero entry must zero the hmean")
	}
}

func TestWeightedSpeedup(t *testing.T) {
	if got := WeightedSpeedup([]float64{0.5, 1.5}); got != 1 {
		t.Errorf("WeightedSpeedup = %v", got)
	}
	if WeightedSpeedup(nil) != 0 {
		t.Error("empty weighted speedup not 0")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(1.1, 1.0); math.Abs(got-10) > 1e-9 {
		t.Errorf("Improvement = %v", got)
	}
	if got := Improvement(0.9, 1.0); math.Abs(got+10) > 1e-9 {
		t.Errorf("Improvement = %v", got)
	}
	if Improvement(0, 0) != 0 {
		t.Error("0/0 improvement not 0")
	}
	if !math.IsInf(Improvement(1, 0), 1) {
		t.Error("x/0 improvement not +inf")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("zero entry geomean not 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean not 0")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if Mean(nil) != 0 {
		t.Error("empty mean not 0")
	}
}

func TestQuickHmeanAtMostMean(t *testing.T) {
	f := func(xs []float64) bool {
		var pos []float64
		for _, x := range xs {
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e9 {
				pos = append(pos, x)
			}
		}
		if len(pos) == 0 {
			return true
		}
		return Hmean(pos) <= Mean(pos)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHmeanBetweenMinAndMax(t *testing.T) {
	f := func(a, b uint16) bool {
		x := float64(a)/65535 + 0.001
		y := float64(b)/65535 + 0.001
		h := Hmean([]float64{x, y})
		lo, hi := math.Min(x, y), math.Max(x, y)
		return h >= lo-1e-9 && h <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
