package core

import (
	"fmt"
	"sort"

	"dwarn/internal/pipeline"
)

// Factory constructs a fresh policy instance. Policies hold per-CPU
// state, so each simulation needs its own instance.
type Factory func() pipeline.FetchPolicy

var registry = map[string]Factory{
	"icount":     func() pipeline.FetchPolicy { return NewICOUNT() },
	"stall":      func() pipeline.FetchPolicy { return NewSTALL() },
	"flush":      func() pipeline.FetchPolicy { return NewFLUSH() },
	"dg":         func() pipeline.FetchPolicy { return NewDG() },
	"pdg":        func() pipeline.FetchPolicy { return NewPDG() },
	"dwarn":      func() pipeline.FetchPolicy { return NewDWarn() },
	"dwarn-prio": func() pipeline.FetchPolicy { return NewDWarnPrio() },
}

// PaperPolicies lists the six policies of the paper's evaluation, in
// the figures' order.
func PaperPolicies() []string {
	return []string{"icount", "stall", "flush", "dg", "pdg", "dwarn"}
}

// Policies returns all registered policy names, sorted.
func Policies() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewPolicy constructs a policy by registry name.
func NewPolicy(name string) (pipeline.FetchPolicy, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown policy %q (known: %v)", name, Policies())
	}
	return f(), nil
}

// MustNewPolicy is NewPolicy for static names; it panics on unknown
// policies.
func MustNewPolicy(name string) pipeline.FetchPolicy {
	p, err := NewPolicy(name)
	if err != nil {
		panic(err)
	}
	return p
}
