package core

import (
	"fmt"
	"sort"
	"strings"

	"dwarn/internal/pipeline"
)

// Factory constructs a fresh policy instance. Policies hold per-CPU
// state, so each simulation needs its own instance.
type Factory func() pipeline.FetchPolicy

// ParamSpec declares one tunable policy parameter: its identity, its
// paper-default value, and the range a request may set it to. The specs
// are data, not code — the service and the spec package introspect them
// to validate {name, params} policy references before anything runs.
type ParamSpec struct {
	// Name is the parameter key ("threshold", "n", "warn").
	Name string `json:"name"`
	// Default is the paper's value, applied when the parameter is absent.
	Default int64 `json:"default"`
	// Min and Max bound accepted values (inclusive).
	Min int64 `json:"min"`
	Max int64 `json:"max"`
	// Doc is a one-line description for catalog endpoints.
	Doc string `json:"doc"`
}

// entry is one registered policy: a parameterised constructor plus the
// declaration of the parameters it accepts. build is called with a full
// parameter map (every declared parameter present, defaults applied).
type entry struct {
	build  func(params map[string]int64) pipeline.FetchPolicy
	params []ParamSpec
}

var registry = map[string]entry{
	"icount": {
		build: func(map[string]int64) pipeline.FetchPolicy { return NewICOUNT() },
	},
	"stall": {
		build: func(p map[string]int64) pipeline.FetchPolicy { return NewSTALLThreshold(p["threshold"]) },
		params: []ParamSpec{{
			Name: "threshold", Default: DefaultL2DeclareThreshold, Min: 1, Max: 10_000,
			Doc: "cycles in the hierarchy before a load is declared an L2 miss",
		}},
	},
	"flush": {
		build: func(p map[string]int64) pipeline.FetchPolicy { return NewFLUSHThreshold(p["threshold"]) },
		params: []ParamSpec{{
			Name: "threshold", Default: DefaultL2DeclareThreshold, Min: 1, Max: 10_000,
			Doc: "cycles in the hierarchy before a load is declared an L2 miss",
		}},
	},
	"dg": {
		build: func(p map[string]int64) pipeline.FetchPolicy { return NewDGThreshold(int(p["n"])) },
		params: []ParamSpec{{
			Name: "n", Default: int64(DefaultGateThreshold), Min: 0, Max: 64,
			Doc: "outstanding L1 data misses a thread may have before it is gated",
		}},
	},
	"pdg": {
		build: func(p map[string]int64) pipeline.FetchPolicy { return NewPDGThreshold(int(p["n"])) },
		params: []ParamSpec{{
			Name: "n", Default: int64(DefaultGateThreshold), Min: 0, Max: 64,
			Doc: "predicted outstanding misses a thread may have before it is gated",
		}},
	},
	"dwarn": {
		build: func(p map[string]int64) pipeline.FetchPolicy { return NewDWarnWarn(int(p["warn"])) },
		params: []ParamSpec{{
			Name: "warn", Default: DefaultWarnThreshold, Min: 1, Max: 64,
			Doc: "in-flight L1 data misses at which a thread drops to the Dmiss group",
		}},
	},
	"dwarn-prio": {
		build: func(p map[string]int64) pipeline.FetchPolicy { return NewDWarnPrioWarn(int(p["warn"])) },
		params: []ParamSpec{{
			Name: "warn", Default: DefaultWarnThreshold, Min: 1, Max: 64,
			Doc: "in-flight L1 data misses at which a thread drops to the Dmiss group",
		}},
	},
}

// PaperPolicies lists the six policies of the paper's evaluation, in
// the figures' order.
func PaperPolicies() []string {
	return []string{"icount", "stall", "flush", "dg", "pdg", "dwarn"}
}

// Policies returns all registered policy names, sorted.
func Policies() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PolicyParams returns the declared parameters of a policy, in
// declaration order. The returned slice is a copy.
func PolicyParams(name string) ([]ParamSpec, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown policy %q (known: %v)", name, Policies())
	}
	return append([]ParamSpec(nil), e.params...), nil
}

// CanonicalParams validates a {name, params} policy reference and
// returns the full parameter map: every declared parameter present,
// defaults applied, so two references that build the same policy
// canonicalize to the same map. Unknown parameters and out-of-range
// values are errors; a nil map selects all defaults.
func CanonicalParams(name string, params map[string]int64) (map[string]int64, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown policy %q (known: %v)", name, Policies())
	}
	for k := range params {
		found := false
		for _, ps := range e.params {
			if ps.Name == k {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: policy %q has no parameter %q (declared: %v)", name, k, paramNames(e.params))
		}
	}
	if len(e.params) == 0 {
		return nil, nil
	}
	full := make(map[string]int64, len(e.params))
	for _, ps := range e.params {
		v, set := params[ps.Name]
		if !set {
			v = ps.Default
		}
		if v < ps.Min || v > ps.Max {
			return nil, fmt.Errorf("core: policy %q parameter %q = %d out of range [%d, %d]", name, ps.Name, v, ps.Min, ps.Max)
		}
		full[ps.Name] = v
	}
	return full, nil
}

func paramNames(specs []ParamSpec) []string {
	out := make([]string, len(specs))
	for i, ps := range specs {
		out[i] = ps.Name
	}
	return out
}

// PolicyID renders the canonical compact identity of a {name, params}
// reference: the bare name when every parameter has its default value,
// otherwise "name(k=v,...)" with keys sorted — so a threshold sweep
// never collides with the base policy, while an explicit default is
// identical to an omitted one. Unregistered names render their given
// parameters verbatim (callers that care validate first).
func PolicyID(name string, params map[string]int64) string {
	var nonDefault map[string]int64
	if e, ok := registry[name]; ok {
		nonDefault = make(map[string]int64)
		for _, ps := range e.params {
			if v, set := params[ps.Name]; set && v != ps.Default {
				nonDefault[ps.Name] = v
			}
		}
	} else {
		nonDefault = params
	}
	if len(nonDefault) == 0 {
		return name
	}
	keys := make([]string, 0, len(nonDefault))
	for k := range nonDefault {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('(')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", k, nonDefault[k])
	}
	b.WriteByte(')')
	return b.String()
}

// NewPolicyParams constructs a policy from a {name, params} reference,
// validating the parameters against the registry's declarations and
// applying defaults for the ones not given.
func NewPolicyParams(name string, params map[string]int64) (pipeline.FetchPolicy, error) {
	full, err := CanonicalParams(name, params)
	if err != nil {
		return nil, err
	}
	return registry[name].build(full), nil
}

// NewPolicy constructs a policy by registry name with every parameter
// at its paper default.
func NewPolicy(name string) (pipeline.FetchPolicy, error) {
	return NewPolicyParams(name, nil)
}

// MustNewPolicy is NewPolicy for static names; it panics on unknown
// policies.
func MustNewPolicy(name string) pipeline.FetchPolicy {
	p, err := NewPolicy(name)
	if err != nil {
		panic(err)
	}
	return p
}
