package core

import (
	"fmt"

	"dwarn/internal/isa"
	"dwarn/internal/pipeline"
)

// DefaultGateThreshold is the outstanding-miss count above which DG and
// PDG gate a thread. The paper (following El-Moursy & Albonesi) uses
// n = 0: a thread is gated on its first outstanding L1 data miss.
const DefaultGateThreshold = 0

// DG is data gating: a thread with more than n outstanding L1 data
// misses is fetch-gated until the misses resolve. The detection moment
// is the L1 tag check; the response action is a full gate — too strict
// when thread-level parallelism is low, which is exactly the behaviour
// the paper exploits in its comparison.
type DG struct {
	nopEvents
	cpu *pipeline.CPU
	n   int
}

// NewDG returns DG with the paper's n = 0 threshold.
func NewDG() *DG { return NewDGThreshold(DefaultGateThreshold) }

// NewDGThreshold returns DG gating threads with more than n outstanding
// L1 data misses (used by the ablation sweep).
func NewDGThreshold(n int) *DG { return &DG{n: n} }

// Name implements pipeline.FetchPolicy.
func (p *DG) Name() string { return "DG" }

// Params implements pipeline.ParameterizedPolicy.
func (p *DG) Params() string { return fmt.Sprintf("n=%d", p.n) }

// Attach implements pipeline.FetchPolicy.
func (p *DG) Attach(cpu *pipeline.CPU) { p.cpu = cpu }

// Reset implements pipeline.FetchPolicy.
func (p *DG) Reset() {}

// Priority implements pipeline.FetchPolicy: ICOUNT order over the
// threads at or below the gating threshold. The in-flight miss counter
// lives in the pipeline (it is the same hardware counter DWarn uses).
func (p *DG) Priority(now int64, dst []int) []int {
	for t := 0; t < p.cpu.NumThreads(); t++ {
		if p.cpu.L1DMissInFlight(t) <= p.n {
			dst = append(dst, t)
		}
	}
	icountOrder(p.cpu, now, dst)
	return dst
}

// GateClass implements pipeline.ClassifyingPolicy: gated strictly
// above the threshold, never demoted.
func (p *DG) GateClass(t int) pipeline.GateClass {
	if p.cpu.L1DMissInFlight(t) > p.n {
		return pipeline.GateGated
	}
	return pipeline.GateNormal
}

// pdgTableSize is the per-thread L1 miss predictor size (2-bit
// saturating counters indexed by load PC).
const pdgTableSize = 2048

// PDG is predictive data gating: an L1 miss predictor consulted at
// fetch. A thread is gated while (#in-flight loads predicted to miss +
// #loads predicted to hit that actually missed) exceeds n. Earlier than
// DG but exposed to predictor error and to load serialisation — the two
// failure modes the paper measures.
type PDG struct {
	nopEvents
	cpu   *pipeline.CPU
	n     int
	table [][]uint8
	count []int
}

// NewPDG returns PDG with the paper's n = 0 threshold.
func NewPDG() *PDG { return NewPDGThreshold(DefaultGateThreshold) }

// NewPDGThreshold returns PDG with a custom gating threshold.
func NewPDGThreshold(n int) *PDG { return &PDG{n: n} }

// Name implements pipeline.FetchPolicy.
func (p *PDG) Name() string { return "PDG" }

// Params implements pipeline.ParameterizedPolicy.
func (p *PDG) Params() string { return fmt.Sprintf("n=%d", p.n) }

// Attach implements pipeline.FetchPolicy.
func (p *PDG) Attach(cpu *pipeline.CPU) {
	p.cpu = cpu
	p.table = make([][]uint8, cpu.NumThreads())
	for i := range p.table {
		p.table[i] = make([]uint8, pdgTableSize)
	}
	p.count = make([]int, cpu.NumThreads())
}

// Reset implements pipeline.FetchPolicy: gates clear, the trained
// predictor persists (it is microarchitectural state).
func (p *PDG) Reset() {
	for i := range p.count {
		p.count[i] = 0
	}
}

func (p *PDG) idx(pc uint64) int { return int(pc>>2) & (pdgTableSize - 1) }

// OnFetch implements pipeline.FetchPolicy: predict each fetched load.
func (p *PDG) OnFetch(inst *pipeline.DynInst, now int64) {
	if inst.U.Class != isa.Load {
		return
	}
	ctr := p.table[inst.Thread][p.idx(inst.U.PC)]
	if ctr >= 2 {
		inst.PredictedMiss = true
		inst.PolicyCounted = true
		p.count[inst.Thread]++
	}
}

// OnLoadAccess implements pipeline.FetchPolicy: train the predictor on
// the actual outcome; count surprise misses (predicted hit, missed).
func (p *PDG) OnLoadAccess(inst *pipeline.DynInst, now int64) {
	tbl := p.table[inst.Thread]
	i := p.idx(inst.U.PC)
	if inst.MemRes.SawMiss() {
		if tbl[i] < 3 {
			tbl[i]++
		}
		if !inst.PolicyCounted {
			inst.PolicyCounted = true
			p.count[inst.Thread]++
		}
	} else if tbl[i] > 0 {
		tbl[i]--
	}
}

// OnLoadReturn implements pipeline.FetchPolicy.
func (p *PDG) OnLoadReturn(inst *pipeline.DynInst, now int64) { p.release(inst) }

// OnSquash implements pipeline.FetchPolicy.
func (p *PDG) OnSquash(inst *pipeline.DynInst, now int64) { p.release(inst) }

func (p *PDG) release(inst *pipeline.DynInst) {
	if inst.PolicyCounted {
		inst.PolicyCounted = false
		p.count[inst.Thread]--
	}
}

// Priority implements pipeline.FetchPolicy.
func (p *PDG) Priority(now int64, dst []int) []int {
	for t := 0; t < p.cpu.NumThreads(); t++ {
		if p.count[t] <= p.n {
			dst = append(dst, t)
		}
	}
	icountOrder(p.cpu, now, dst)
	return dst
}

// GateClass implements pipeline.ClassifyingPolicy: gated while the
// predicted-miss count exceeds the threshold.
func (p *PDG) GateClass(t int) pipeline.GateClass {
	if p.count[t] > p.n {
		return pipeline.GateGated
	}
	return pipeline.GateNormal
}
