package core

import (
	"fmt"

	"dwarn/internal/pipeline"
)

// DWarn is the paper's contribution. Detection moment: the L1 data-miss
// tag check (reliable — every L2 miss was first an L1 miss — and early).
// Response action: *reduce priority* rather than gate. Each cycle the
// threads are classified by the per-context in-flight L1 data-miss
// counter into the Normal group (counter zero) and the Dmiss group
// (counter positive); fetch serves Normal threads first, ICOUNT order
// within each group, so Dmiss threads get slots only when the Normal
// threads cannot fill the fetch bandwidth.
//
// Hybrid response (the full DWarn of §3): with fewer than three running
// threads, priority reduction alone cannot keep a Dmiss thread out of a
// 2.8 fetch engine's spare slots, so a load that *actually* misses in
// L2 (the L2 tag-check signal) additionally gates its thread until the
// data returns. With three or more threads only prioritisation is used;
// threads are never fully stalled.
type DWarn struct {
	nopEvents
	cpu *pipeline.CPU
	// hybrid enables the <3-thread L2-miss gate; disabled for the
	// DWarn-Prio ablation variant.
	hybrid bool
	// warn is the in-flight L1 data-miss count at which a thread is
	// classified into the Dmiss group. The paper warns on the first miss
	// (warn = 1); higher values tolerate short miss bursts before
	// demoting the thread, the §5-style sensitivity axis the registry's
	// "warn" parameter sweeps.
	warn int
	// gating counts declared-and-unreturned L2-missing loads per thread
	// (only maintained when the hybrid gate is active).
	gating []int
	// dmissBuf and gatedBuf are per-cycle scratch for Priority's group
	// split, sized once at Attach so classification never allocates.
	dmissBuf []int
	gatedBuf []int
	// class records each thread's group from the latest Priority call —
	// the pipeline's gate-attribution view (ClassifyingPolicy).
	class []pipeline.GateClass
	// variant name: "DWarn" or "DWarn-Prio".
	name string
}

// DefaultWarnThreshold is the paper's Dmiss classification point: one
// in-flight L1 data miss demotes the thread.
const DefaultWarnThreshold = 1

// NewDWarn returns the full hybrid DWarn policy with the paper's warn
// threshold.
func NewDWarn() *DWarn { return NewDWarnWarn(DefaultWarnThreshold) }

// NewDWarnWarn returns the full hybrid DWarn policy with a custom warn
// threshold (used by the threshold sweeps).
func NewDWarnWarn(warn int) *DWarn { return &DWarn{hybrid: true, warn: warn, name: "DWarn"} }

// NewDWarnPrio returns the prioritisation-only variant (no gate with
// few threads) — the ablation the paper's §3 discussion motivates.
func NewDWarnPrio() *DWarn { return NewDWarnPrioWarn(DefaultWarnThreshold) }

// NewDWarnPrioWarn returns the prioritisation-only variant with a
// custom warn threshold.
func NewDWarnPrioWarn(warn int) *DWarn {
	return &DWarn{hybrid: false, warn: warn, name: "DWarn-Prio"}
}

// Name implements pipeline.FetchPolicy.
func (p *DWarn) Name() string { return p.name }

// Params implements pipeline.ParameterizedPolicy.
func (p *DWarn) Params() string { return fmt.Sprintf("hybrid=%v|warn=%d", p.hybrid, p.warn) }

// Attach implements pipeline.FetchPolicy.
func (p *DWarn) Attach(cpu *pipeline.CPU) {
	p.cpu = cpu
	p.gating = make([]int, cpu.NumThreads())
	p.dmissBuf = make([]int, 0, cpu.NumThreads())
	p.gatedBuf = make([]int, 0, cpu.NumThreads())
	p.class = make([]pipeline.GateClass, cpu.NumThreads())
}

// Reset implements pipeline.FetchPolicy.
func (p *DWarn) Reset() {
	for i := range p.gating {
		p.gating[i] = 0
	}
}

// gateActive reports whether the hybrid L2-miss gate applies: fewer
// than three running threads.
func (p *DWarn) gateActive() bool { return p.hybrid && p.cpu.NumThreads() < 3 }

// OnL2Miss implements pipeline.FetchPolicy: the true L2-miss signal
// gates the thread when the hybrid response is active.
func (p *DWarn) OnL2Miss(inst *pipeline.DynInst, now int64) {
	if !p.gateActive() || inst.PolicyCounted {
		return
	}
	inst.PolicyCounted = true
	p.gating[inst.Thread]++
}

// OnLoadReturning implements pipeline.FetchPolicy: release the gate on
// the advance return indication, like STALL.
func (p *DWarn) OnLoadReturning(inst *pipeline.DynInst, now int64) { p.release(inst) }

// OnLoadReturn implements pipeline.FetchPolicy.
func (p *DWarn) OnLoadReturn(inst *pipeline.DynInst, now int64) { p.release(inst) }

// OnSquash implements pipeline.FetchPolicy.
func (p *DWarn) OnSquash(inst *pipeline.DynInst, now int64) { p.release(inst) }

func (p *DWarn) release(inst *pipeline.DynInst) {
	if inst.PolicyCounted {
		inst.PolicyCounted = false
		p.gating[inst.Thread]--
	}
}

// Priority implements pipeline.FetchPolicy: Normal threads first, then
// Dmiss threads, ICOUNT order within each group; hybrid-gated threads
// are omitted unless that would leave nothing to fetch from.
func (p *DWarn) Priority(now int64, dst []int) []int {
	n := p.cpu.NumThreads()
	normal := dst
	dmiss, gated := p.dmissBuf[:0], p.gatedBuf[:0]
	for t := 0; t < n; t++ {
		switch {
		case p.gateActive() && p.gating[t] > 0:
			gated = append(gated, t)
			p.class[t] = pipeline.GateGated
		case p.cpu.L1DMissInFlight(t) >= p.warn:
			dmiss = append(dmiss, t)
			p.class[t] = pipeline.GateDemoted
		default:
			normal = append(normal, t)
			p.class[t] = pipeline.GateNormal
		}
	}
	icountOrder(p.cpu, now, normal)
	icountOrder(p.cpu, now, dmiss)
	out := append(normal, dmiss...)
	if len(out) == 0 && len(gated) > 0 {
		// Keep one thread running, as the related policies do. The
		// thread stays classified gated: attribution charges the
		// policy's decision, not the liveness escape hatch.
		icountOrder(p.cpu, now, gated)
		out = append(out, gated[0])
	}
	return out
}

// GateClass implements pipeline.ClassifyingPolicy: the thread's group
// from the latest Priority call.
func (p *DWarn) GateClass(t int) pipeline.GateClass { return p.class[t] }
