// Package core implements the fetch policies the paper studies: the
// ICOUNT baseline, the long-latency-load policies STALL and FLUSH
// (Tullsen & Brown), data gating DG and predictive data gating PDG
// (El-Moursy & Albonesi), and the paper's contribution, DWarn, plus a
// prioritisation-only DWarn variant used for ablation.
//
// Every policy is built on top of ICOUNT ordering, as in the paper. The
// policies differ in their detection moment (fetch-time prediction, L1
// miss, L2 miss, or a latency threshold) and their response action
// (gating, flushing, resource limiting, or priority reduction) — the
// paper's Table 1 taxonomy.
package core

import (
	"dwarn/internal/pipeline"
)

// icountOrder orders thread IDs by ascending pre-issue instruction count
// (the ICOUNT heuristic), breaking ties with a rotating offset so equal
// threads share fetch slots fairly over time. Keys are unique (the
// rotation separates equal counts), so this insertion sort produces
// exactly the order the previous sort.Slice did — without its per-call
// closure and interface allocations, which dominated Priority on the
// per-cycle path. Thread counts are at most 8.
func icountOrder(cpu *pipeline.CPU, now int64, tids []int) {
	n := cpu.NumThreads()
	var kbuf [16]int
	keys := kbuf[:]
	if n > len(kbuf) {
		keys = make([]int, n)
	}
	for _, t := range tids {
		keys[t] = cpu.PreIssueCount(t)*16 + (t+int(now))%n
	}
	for i := 1; i < len(tids); i++ {
		t := tids[i]
		k := keys[t]
		j := i - 1
		for ; j >= 0 && keys[tids[j]] > k; j-- {
			tids[j+1] = tids[j]
		}
		tids[j+1] = t
	}
}

// nopEvents provides no-op implementations of the event hooks so simple
// policies only override what they need.
type nopEvents struct{}

func (nopEvents) OnFetch(*pipeline.DynInst, int64)         {}
func (nopEvents) OnLoadAccess(*pipeline.DynInst, int64)    {}
func (nopEvents) OnL2Miss(*pipeline.DynInst, int64)        {}
func (nopEvents) OnLoadReturning(*pipeline.DynInst, int64) {}
func (nopEvents) OnLoadReturn(*pipeline.DynInst, int64)    {}
func (nopEvents) OnSquash(*pipeline.DynInst, int64)        {}
func (nopEvents) Tick(int64)                               {}

// ICOUNT is the baseline policy: fetch priority to the threads with the
// fewest in-flight pre-issue instructions (Tullsen et al.). It has no
// awareness of cache misses.
type ICOUNT struct {
	nopEvents
	cpu *pipeline.CPU
}

// NewICOUNT returns the ICOUNT baseline policy.
func NewICOUNT() *ICOUNT { return &ICOUNT{} }

// Name implements pipeline.FetchPolicy.
func (p *ICOUNT) Name() string { return "ICOUNT" }

// Attach implements pipeline.FetchPolicy.
func (p *ICOUNT) Attach(cpu *pipeline.CPU) { p.cpu = cpu }

// Reset implements pipeline.FetchPolicy.
func (p *ICOUNT) Reset() {}

// Priority implements pipeline.FetchPolicy: all threads, ICOUNT order.
func (p *ICOUNT) Priority(now int64, dst []int) []int {
	for t := 0; t < p.cpu.NumThreads(); t++ {
		dst = append(dst, t)
	}
	icountOrder(p.cpu, now, dst)
	return dst
}
