package core

import (
	"fmt"

	"dwarn/internal/pipeline"
)

// DefaultL2DeclareThreshold is the number of cycles a load may spend in
// the memory hierarchy before STALL and FLUSH declare it an L2 miss.
// The paper experimented with this parameter and found 15 best for the
// baseline machine; the ablation bench sweeps it.
const DefaultL2DeclareThreshold = 15

// trackedLoad is one outstanding L1-missing load being timed by the
// threshold detector.
type trackedLoad struct {
	inst     *pipeline.DynInst
	accessAt int64
	declared bool
}

// l2Detector implements the detection machinery shared by STALL and
// FLUSH: a load that stays in the hierarchy longer than the threshold
// (or suffers a data-TLB miss) is declared an L2 miss; the 2-cycle
// advance return indication releases the thread early. It also owns the
// per-thread gate set and the keep-one-thread-running rule.
type l2Detector struct {
	cpu       *pipeline.CPU
	threshold int64
	// outstanding missing loads per thread.
	tracked [][]trackedLoad
	// blocking counts declared-but-unreturned loads per thread; a
	// thread is gated while its count is positive.
	blocking []int
	// onDeclare is invoked once per declared load (FLUSH squashes here).
	onDeclare func(inst *pipeline.DynInst, now int64)
	// declareBuf and gatedBuf are reusable scratch for tick and
	// priority, so the per-cycle path never allocates.
	declareBuf []*pipeline.DynInst
	gatedBuf   []int
}

func (d *l2Detector) attach(cpu *pipeline.CPU) {
	d.cpu = cpu
	d.tracked = make([][]trackedLoad, cpu.NumThreads())
	d.blocking = make([]int, cpu.NumThreads())
	d.gatedBuf = make([]int, 0, cpu.NumThreads())
}

func (d *l2Detector) reset() {
	for i := range d.tracked {
		d.tracked[i] = d.tracked[i][:0]
		d.blocking[i] = 0
	}
}

// onLoadAccess starts timing a missing load. A DTLB miss triggers the
// response immediately, as in the paper.
func (d *l2Detector) onLoadAccess(inst *pipeline.DynInst, now int64) {
	if !inst.MemRes.SawMiss() && !inst.MemRes.TLBMiss {
		return
	}
	t := inst.Thread
	tl := trackedLoad{inst: inst, accessAt: now}
	if inst.MemRes.TLBMiss {
		tl.declared = true
		d.blocking[t]++
		if d.onDeclare != nil {
			d.onDeclare(inst, now)
		}
	}
	d.tracked[t] = append(d.tracked[t], tl)
}

// tick advances the timers and declares overdue loads. Declarations are
// collected first and acted on afterwards: FLUSH's response squashes
// instructions, which re-enters the detector through drop and would
// otherwise invalidate the iteration.
func (d *l2Detector) tick(now int64) {
	for t := range d.tracked {
		declare := d.declareBuf[:0]
		for i := range d.tracked[t] {
			tl := &d.tracked[t][i]
			if tl.declared || now-tl.accessAt < d.threshold {
				continue
			}
			tl.declared = true
			d.blocking[t]++
			if d.onDeclare != nil {
				declare = append(declare, tl.inst)
			}
		}
		for _, inst := range declare {
			if !inst.Squashed() {
				d.onDeclare(inst, now)
			}
		}
		d.declareBuf = declare[:0]
	}
}

// drop stops tracking a load (it returned or was squashed), releasing
// its gate contribution.
func (d *l2Detector) drop(inst *pipeline.DynInst) {
	t := inst.Thread
	list := d.tracked[t]
	for i := range list {
		if list[i].inst == inst {
			if list[i].declared {
				d.blocking[t]--
			}
			list[i] = list[len(list)-1]
			d.tracked[t] = list[:len(list)-1]
			return
		}
	}
}

// priority returns all threads in ICOUNT order with gated threads
// omitted — unless that would leave no thread fetching, in which case
// the best gated thread keeps running (the paper's rule: the mechanism
// always keeps one thread running).
func (d *l2Detector) priority(now int64, dst []int) []int {
	free := dst
	gated := d.gatedBuf[:0]
	for t := 0; t < d.cpu.NumThreads(); t++ {
		if d.blocking[t] > 0 {
			gated = append(gated, t)
		} else {
			free = append(free, t)
		}
	}
	icountOrder(d.cpu, now, free)
	if len(free) == 0 && len(gated) > 0 {
		icountOrder(d.cpu, now, gated)
		free = append(free, gated[0])
	}
	return free
}

// gateClass reports thread t's fetch-gate class: gated while any of
// its loads is declared-but-unreturned, normal otherwise (the detector
// has no demotion concept).
func (d *l2Detector) gateClass(t int) pipeline.GateClass {
	if d.blocking[t] > 0 {
		return pipeline.GateGated
	}
	return pipeline.GateNormal
}

// STALL is Tullsen & Brown's stalling policy: once a load is declared an
// L2 miss (latency threshold or DTLB miss), its thread stops fetching
// until the 2-cycle advance return indication.
type STALL struct {
	nopEvents
	det l2Detector
}

// NewSTALL returns STALL with the paper's 15-cycle declaration threshold.
func NewSTALL() *STALL { return NewSTALLThreshold(DefaultL2DeclareThreshold) }

// NewSTALLThreshold returns STALL with a custom declaration threshold
// (used by the ablation sweep).
func NewSTALLThreshold(threshold int64) *STALL {
	return &STALL{det: l2Detector{threshold: threshold}}
}

// Name implements pipeline.FetchPolicy.
func (p *STALL) Name() string { return "STALL" }

// Params implements pipeline.ParameterizedPolicy.
func (p *STALL) Params() string { return fmt.Sprintf("threshold=%d", p.det.threshold) }

// Attach implements pipeline.FetchPolicy.
func (p *STALL) Attach(cpu *pipeline.CPU) { p.det.attach(cpu) }

// Reset implements pipeline.FetchPolicy.
func (p *STALL) Reset() { p.det.reset() }

// Tick implements pipeline.FetchPolicy.
func (p *STALL) Tick(now int64) { p.det.tick(now) }

// Priority implements pipeline.FetchPolicy.
func (p *STALL) Priority(now int64, dst []int) []int { return p.det.priority(now, dst) }

// GateClass implements pipeline.ClassifyingPolicy.
func (p *STALL) GateClass(t int) pipeline.GateClass { return p.det.gateClass(t) }

// OnLoadAccess implements pipeline.FetchPolicy.
func (p *STALL) OnLoadAccess(inst *pipeline.DynInst, now int64) { p.det.onLoadAccess(inst, now) }

// OnLoadReturning implements pipeline.FetchPolicy: the advance return
// indication un-gates the thread two cycles early.
func (p *STALL) OnLoadReturning(inst *pipeline.DynInst, now int64) { p.det.drop(inst) }

// OnLoadReturn implements pipeline.FetchPolicy (safety net for loads
// whose return was too close for an advance indication).
func (p *STALL) OnLoadReturn(inst *pipeline.DynInst, now int64) { p.det.drop(inst) }

// OnSquash implements pipeline.FetchPolicy.
func (p *STALL) OnSquash(inst *pipeline.DynInst, now int64) { p.det.drop(inst) }

// FLUSH is Tullsen & Brown's flushing policy: STALL's trigger, plus all
// instructions of the thread younger than the offending load are
// squashed and later re-fetched, freeing the shared resources they held.
type FLUSH struct {
	nopEvents
	det l2Detector
	cpu *pipeline.CPU
}

// NewFLUSH returns FLUSH with the paper's 15-cycle declaration threshold.
func NewFLUSH() *FLUSH { return NewFLUSHThreshold(DefaultL2DeclareThreshold) }

// NewFLUSHThreshold returns FLUSH with a custom declaration threshold.
func NewFLUSHThreshold(threshold int64) *FLUSH {
	p := &FLUSH{det: l2Detector{threshold: threshold}}
	p.det.onDeclare = p.declare
	return p
}

// Name implements pipeline.FetchPolicy.
func (p *FLUSH) Name() string { return "FLUSH" }

// Params implements pipeline.ParameterizedPolicy.
func (p *FLUSH) Params() string { return fmt.Sprintf("threshold=%d", p.det.threshold) }

// Attach implements pipeline.FetchPolicy.
func (p *FLUSH) Attach(cpu *pipeline.CPU) {
	p.cpu = cpu
	p.det.attach(cpu)
}

// Reset implements pipeline.FetchPolicy.
func (p *FLUSH) Reset() { p.det.reset() }

// Tick implements pipeline.FetchPolicy.
func (p *FLUSH) Tick(now int64) { p.det.tick(now) }

// Priority implements pipeline.FetchPolicy.
func (p *FLUSH) Priority(now int64, dst []int) []int { return p.det.priority(now, dst) }

// GateClass implements pipeline.ClassifyingPolicy.
func (p *FLUSH) GateClass(t int) pipeline.GateClass { return p.det.gateClass(t) }

// OnLoadAccess implements pipeline.FetchPolicy.
func (p *FLUSH) OnLoadAccess(inst *pipeline.DynInst, now int64) { p.det.onLoadAccess(inst, now) }

// OnLoadReturning implements pipeline.FetchPolicy.
func (p *FLUSH) OnLoadReturning(inst *pipeline.DynInst, now int64) { p.det.drop(inst) }

// OnLoadReturn implements pipeline.FetchPolicy.
func (p *FLUSH) OnLoadReturn(inst *pipeline.DynInst, now int64) { p.det.drop(inst) }

// OnSquash implements pipeline.FetchPolicy.
func (p *FLUSH) OnSquash(inst *pipeline.DynInst, now int64) { p.det.drop(inst) }

// declare fires once per declared load: squash everything younger in
// the thread. The freed issue-queue entries and registers become
// available to the other threads; the squashed instructions are
// re-fetched when the thread resumes.
func (p *FLUSH) declare(inst *pipeline.DynInst, now int64) {
	p.cpu.FlushAfter(inst)
}
