package core

import (
	"testing"

	"dwarn/internal/config"
	"dwarn/internal/pipeline"
	"dwarn/internal/workload"
)

func buildCPU(t testing.TB, wlName, policy string) *pipeline.CPU {
	t.Helper()
	wl, err := workload.GetWorkload(wlName)
	if err != nil {
		t.Fatal(err)
	}
	gens, err := wl.Generators(42)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := pipeline.New(config.Baseline(), MustNewPolicy(policy), gens)
	if err != nil {
		t.Fatal(err)
	}
	return cpu
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"dg", "dwarn", "dwarn-prio", "flush", "icount", "pdg", "stall"}
	got := Policies()
	if len(got) != len(want) {
		t.Fatalf("policies %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("policy[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestPaperPoliciesOrder(t *testing.T) {
	want := []string{"icount", "stall", "flush", "dg", "pdg", "dwarn"}
	got := PaperPolicies()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("paper policies %v", got)
		}
	}
}

func TestNewPolicyUnknown(t *testing.T) {
	if _, err := NewPolicy("nonesuch"); err == nil {
		t.Error("unknown policy constructed")
	}
}

func TestPolicyNames(t *testing.T) {
	want := map[string]string{
		"icount": "ICOUNT", "stall": "STALL", "flush": "FLUSH",
		"dg": "DG", "pdg": "PDG", "dwarn": "DWarn", "dwarn-prio": "DWarn-Prio",
	}
	for reg, name := range want {
		if got := MustNewPolicy(reg).Name(); got != name {
			t.Errorf("%s.Name() = %s, want %s", reg, got, name)
		}
	}
}

// priorityLegal checks a priority list is a duplicate-free subset of
// the thread ids.
func priorityLegal(t *testing.T, cpu *pipeline.CPU, order []int) {
	t.Helper()
	seen := map[int]bool{}
	for _, tid := range order {
		if tid < 0 || tid >= cpu.NumThreads() {
			t.Fatalf("priority contains thread %d of %d", tid, cpu.NumThreads())
		}
		if seen[tid] {
			t.Fatalf("priority lists thread %d twice: %v", tid, order)
		}
		seen[tid] = true
	}
}

func TestAllPoliciesProduceLegalPriorities(t *testing.T) {
	for _, pol := range Policies() {
		cpu := buildCPU(t, "4-MIX", pol)
		cpu.Run(5000)
		order := cpu.Policy().Priority(cpu.Now(), nil)
		priorityLegal(t, cpu, order)
	}
}

func TestAllPoliciesRunAllWorkloadSizes(t *testing.T) {
	for _, pol := range Policies() {
		for _, wn := range []string{"2-MEM", "6-MIX"} {
			cpu := buildCPU(t, wn, pol)
			cpu.Run(15000)
			total := uint64(0)
			for i := 0; i < cpu.NumThreads(); i++ {
				total += cpu.ThreadStats(i).Committed
			}
			if total == 0 {
				t.Errorf("%s on %s committed nothing", pol, wn)
			}
			if err := cpu.CheckInvariants(); err != nil {
				t.Errorf("%s on %s: %v", pol, wn, err)
			}
		}
	}
}

func TestICOUNTOrdersByOccupancy(t *testing.T) {
	cpu := buildCPU(t, "4-MIX", "icount")
	cpu.Run(8000)
	order := cpu.Policy().Priority(cpu.Now(), nil)
	if len(order) != 4 {
		t.Fatalf("ICOUNT omitted threads: %v", order)
	}
	// Ascending pre-issue counts up to the rotating tie-break: allow
	// equality but not strict inversions beyond the rotation window.
	for i := 1; i < len(order); i++ {
		a, b := cpu.PreIssueCount(order[i-1]), cpu.PreIssueCount(order[i])
		if a > b+1 {
			t.Errorf("ICOUNT order inverted: counts %d before %d (%v)", a, b, order)
		}
	}
}

func TestDGGatesMissingThreads(t *testing.T) {
	cpu := buildCPU(t, "2-MEM", "dg")
	cpu.Run(20000)
	// Sample: whenever mcf (t0) has an outstanding miss, DG must omit it.
	violations, samples := 0, 0
	for i := 0; i < 4000; i++ {
		cpu.Step()
		if cpu.L1DMissInFlight(0) > 0 {
			samples++
			for _, tid := range cpu.Policy().Priority(cpu.Now(), nil) {
				if tid == 0 {
					violations++
					break
				}
			}
		}
	}
	if samples == 0 {
		t.Fatal("mcf never had a miss outstanding")
	}
	if violations > 0 {
		t.Errorf("DG listed a missing thread in %d of %d samples", violations, samples)
	}
}

func TestDWarnDemotesButNeverOmitsAtFourThreads(t *testing.T) {
	cpu := buildCPU(t, "4-MEM", "dwarn")
	cpu.Run(20000)
	for i := 0; i < 2000; i++ {
		cpu.Step()
		order := cpu.Policy().Priority(cpu.Now(), nil)
		if len(order) != 4 {
			t.Fatalf("DWarn omitted threads at 4 threads: %v", order)
		}
		// Dmiss threads must come after Normal threads.
		lastNormal := -1
		firstDmiss := len(order)
		for pos, tid := range order {
			if cpu.L1DMissInFlight(tid) == 0 {
				lastNormal = pos
			} else if pos < firstDmiss {
				firstDmiss = pos
			}
		}
		if firstDmiss < lastNormal {
			t.Fatalf("Dmiss thread ahead of Normal thread: %v", order)
		}
	}
}

func TestDWarnReducesMEMFetchShareVsICOUNT(t *testing.T) {
	share := func(pol string) float64 {
		cpu := buildCPU(t, "2-MEM", pol)
		cpu.Run(15000)
		cpu.ResetStats()
		cpu.Run(30000)
		mcf := float64(cpu.ThreadStats(0).Fetched)
		twolf := float64(cpu.ThreadStats(1).Fetched)
		return mcf / (mcf + twolf)
	}
	ic, dw := share("icount"), share("dwarn")
	if dw >= ic {
		t.Errorf("DWarn gave mcf fetch share %.3f >= ICOUNT's %.3f", dw, ic)
	}
}

func TestFLUSHSquashesOnMEM(t *testing.T) {
	cpu := buildCPU(t, "2-MEM", "flush")
	cpu.Run(30000)
	var flushed uint64
	for i := 0; i < cpu.NumThreads(); i++ {
		flushed += cpu.ThreadStats(i).FlushSquashed
	}
	if flushed == 0 {
		t.Error("FLUSH never squashed on a MEM workload")
	}
}

func TestSTALLNeverSquashes(t *testing.T) {
	cpu := buildCPU(t, "2-MEM", "stall")
	cpu.Run(30000)
	for i := 0; i < cpu.NumThreads(); i++ {
		if f := cpu.ThreadStats(i).FlushSquashed; f != 0 {
			t.Errorf("STALL flushed %d instructions", f)
		}
	}
}

func TestKeepOneRunningSoloMEM(t *testing.T) {
	// A lone thread must keep running under every gating policy.
	wl := workload.Workload{Name: "solo-mcf", Threads: 1, Benchmarks: []string{"mcf"}}
	for _, pol := range []string{"stall", "flush", "dwarn"} {
		gens, _ := wl.Generators(42)
		cpu, err := pipeline.New(config.Baseline(), MustNewPolicy(pol), gens)
		if err != nil {
			t.Fatal(err)
		}
		cpu.Run(30000)
		if cpu.ThreadStats(0).Committed == 0 {
			t.Errorf("%s starved a lone mcf", pol)
		}
	}
}

func TestDWarnPrioNeverGates(t *testing.T) {
	cpu := buildCPU(t, "2-MEM", "dwarn-prio")
	cpu.Run(20000)
	for i := 0; i < 2000; i++ {
		cpu.Step()
		if order := cpu.Policy().Priority(cpu.Now(), nil); len(order) != 2 {
			t.Fatalf("DWarn-Prio omitted a thread: %v", order)
		}
	}
}

func TestThresholdVariantsConstruct(t *testing.T) {
	if NewSTALLThreshold(25).Name() != "STALL" {
		t.Error("threshold STALL misnamed")
	}
	if NewFLUSHThreshold(25).Name() != "FLUSH" {
		t.Error("threshold FLUSH misnamed")
	}
	if NewDGThreshold(2).Name() != "DG" {
		t.Error("threshold DG misnamed")
	}
	if NewPDGThreshold(2).Name() != "PDG" {
		t.Error("threshold PDG misnamed")
	}
}

func TestPDGCountsStayBalanced(t *testing.T) {
	cpu := buildCPU(t, "4-MEM", "pdg")
	pdg := cpu.Policy().(*PDG)
	cpu.Run(40000)
	for tid, c := range pdg.count {
		if c < 0 {
			t.Errorf("PDG count for t%d went negative: %d", tid, c)
		}
	}
}
