// Package prof wires the standard runtime profilers into the CLIs, so
// performance work on the cycle engine starts from `smtsim -cpuprofile`
// instead of an ad-hoc test harness. It is flag plumbing only — the
// profiles themselves are the stock runtime/pprof formats, consumed
// with `go tool pprof`.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags carries the profile destinations parsed from the command line.
type Flags struct {
	CPU string
	Mem string
}

// Register declares the -cpuprofile and -memprofile flags on the
// default flag set and returns the struct they populate.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&f.Mem, "memprofile", "", "write a heap profile to this file on exit")
	return f
}

// Start begins CPU profiling when requested and returns a stop function
// that finishes the CPU profile and writes the heap profile. The caller
// must invoke stop on its successful exit path (error paths that
// os.Exit lose the profiles, which is fine for a diagnostic tool).
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if f.CPU != "" {
		cpuFile, err = os.Create(f.CPU)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if f.Mem != "" {
			mf, err := os.Create(f.Mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			defer mf.Close()
			runtime.GC() // materialise the live heap before snapshotting
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
		}
	}, nil
}
