// Package exec is the one sweep execution layer under every frontend:
// it takes resolved spec cells (a single run or a whole expanded grid),
// fans them out across a bounded worker pool, memoizes each cell
// through a content-addressed Store keyed by sim.Fingerprint, streams
// per-cell completion events, and assembles results deterministically
// in input order regardless of completion order.
//
// The CLI's -spec sweeps, the dwarnd service's sweep jobs, and the
// experiment runner all execute through the same Executor, so they
// share one set of semantics: identical cells (within a batch, across
// batches, or across concurrent sweeps on a shared executor) are
// simulated once; one failing cell is recorded in its slot and never
// aborts the rest; cancelling the context stops running cells at their
// next cooperative check and marks the remainder canceled; and a sweep
// re-executed over a warm Store — including a DirStore surviving a
// killed process — skips everything already stored.
package exec

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"dwarn/internal/ckpt"
	"dwarn/internal/obs"
	"dwarn/internal/sim"
	"dwarn/internal/spec"
)

// RunFunc computes one resolved cell. The default runs the simulator
// (sim.RunContext); tests substitute failures and delays.
type RunFunc func(ctx context.Context, res *spec.Resolved) (*sim.Result, error)

// Dispatcher executes leader cells through an external execution
// fabric instead of the executor's own worker pool. The executor still
// owns memoization, single-flight, events, and store writes — a
// dispatcher only answers "run this one cell somewhere and give me the
// result". internal/fabric's Coordinator implements it by queueing the
// cell for lease: local in-process workers and remote worker processes
// drain that one queue, so a fingerprint in flight anywhere in the
// fleet is never simulated twice (the executor's single-flight
// guarantees at most one Dispatch per fingerprint at a time).
//
// started must be invoked (at most once) when the cell begins paying
// for its simulation — for the fabric, when its first lease is granted
// — so progress consumers see the started→terminal transition they
// would see from the local pool. ctx carries the cell's trace ID and
// cancellation: a Dispatch must return promptly with ctx.Err() once
// the context is done.
type Dispatcher interface {
	Dispatch(ctx context.Context, res *spec.Resolved, started func()) (*sim.Result, error)
}

// Options configures an Executor.
type Options struct {
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// Store memoizes results across Execute calls (nil = fresh MemStore).
	Store Store
	// Run computes a cell (nil = sim.RunContext). Test seam.
	Run RunFunc
	// Dispatcher, when set, executes leader cells through an external
	// fabric (local + remote workers draining one queue) instead of
	// this executor's own pool; Workers then bounds nothing here — the
	// fabric owns concurrency. Memoization, single-flight, events, and
	// store writes stay with the executor either way.
	Dispatcher Dispatcher
	// Registry receives the executor's metrics (nil = obs.Default):
	// store hit/miss/put and single-flight dedup counters, terminal
	// cells by state, per-policy cell wall-time histograms, and
	// worker-pool utilization. See DESIGN.md §Observability.
	Registry *obs.Registry
	// Logger receives per-cell debug lines (nil = discard). Each line
	// carries the request-scoped trace ID from the Execute context and
	// the cell's span (a fingerprint prefix), so one X-Request-ID can
	// be followed from the HTTP access log through the worker pool into
	// the simulator's own run logs.
	Logger *obs.Logger
	// Checkpoints, when set, enables the checkpoint/fork engine for
	// cells run on the local pool: cells sharing a spec.CheckpointKey
	// are grouped, the group's first cell warms cold and publishes its
	// post-prewarm machine state, and the rest fork from it — one
	// warmup per (machine, workload, seed) group per store lifetime.
	// The default RunFunc threads the store into sim.Options; a custom
	// Run sees the same gated store via CheckpointStore().
	Checkpoints ckpt.Store
}

// Cell event states, in the order a cell can report them. Every cell
// emits exactly one terminal event (done, cached, failed, or canceled);
// cells that pay for a simulation emit started first.
const (
	CellStarted  = "started"
	CellDone     = "done"
	CellCached   = "cached"
	CellFailed   = "failed"
	CellCanceled = "canceled"
)

// Event is one per-cell progress notification. Index is the cell's
// position in the Execute input; Completed counts terminal cells so far
// (including this one, when terminal) out of Total. Result is set on
// done and cached events so progress consumers (the service's sweep
// status and SSE stream) need no store round trip.
type Event struct {
	Index       int
	Fingerprint string
	State       string
	Result      *sim.Result
	Err         error
	Completed   int
	Total       int
}

// Terminal reports whether the event finishes its cell.
func (e Event) Terminal() bool { return e.State != CellStarted }

// CellResult is one assembled slot of an Execute call, in input order.
type CellResult struct {
	// Index is the cell's position in the input.
	Index int
	// Fingerprint is the cell's content-addressed identity.
	Fingerprint string
	// Spec is the cell's canonical spec.
	Spec spec.RunSpec
	// Result is the finished simulation; nil when Err is set.
	Result *sim.Result
	// Cached reports that this cell did not pay for its simulation: the
	// result came from the Store or from a concurrent identical cell.
	Cached bool
	// Err is the cell's failure (or context error), recorded in place;
	// other cells run to completion regardless.
	Err error
}

// FirstError returns the first cell error in input order, or nil.
func FirstError(results []CellResult) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}

// flight is one in-progress simulation; duplicate cells and concurrent
// Execute calls with the same fingerprint wait on done and share the
// outcome.
type flight struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// Executor runs cells over a bounded worker pool with single-flight
// memoization. One Executor may serve many concurrent Execute calls —
// the dwarnd service runs every sweep through one shared Executor so N
// concurrent sweeps compete for the same bounded pool instead of
// multiplying it.
type Executor struct {
	workers int
	store   Store
	run     RunFunc
	disp    Dispatcher
	sem     chan struct{}
	met     *metrics
	log     *obs.Logger
	ckgate  *warmGate
	ckpts   ckpt.Store // gated; nil when checkpointing is off

	mu       sync.Mutex
	inflight map[string]*flight
}

// New builds an Executor.
func New(opts Options) *Executor {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Store == nil {
		opts.Store = NewMemStore()
	}
	var ckgate *warmGate
	var ckpts ckpt.Store
	if opts.Checkpoints != nil {
		ckgate = newWarmGate()
		ckpts = gatedCkptStore{inner: opts.Checkpoints, gate: ckgate}
	}
	if opts.Run == nil {
		opts.Run = func(ctx context.Context, res *spec.Resolved) (*sim.Result, error) {
			o := res.Options
			o.Checkpoints = ckpts // nil interface when checkpointing is off
			return sim.RunContext(ctx, o)
		}
	}
	met := newMetrics(opts.Registry, opts.Workers)
	if opts.Logger == nil {
		opts.Logger = obs.Nop()
	}
	return &Executor{
		workers: opts.Workers,
		disp:    opts.Dispatcher,
		log:     opts.Logger,
		ckgate:  ckgate,
		ckpts:   ckpts,
		// Every store access — the executor's own memoization and
		// callers going through Store(), like the service's submit-time
		// precheck — counts into the hit/miss/put series.
		store:    countingStore{inner: opts.Store, m: met},
		run:      opts.Run,
		sem:      make(chan struct{}, opts.Workers),
		met:      met,
		inflight: make(map[string]*flight),
	}
}

// Store returns the executor's result store.
func (e *Executor) Store() Store { return e.store }

// CheckpointStore returns the executor's gated checkpoint store, for
// callers that supply their own RunFunc but still want cells to fork
// (thread it into sim.Options.Checkpoints). Nil when checkpointing is
// off.
func (e *Executor) CheckpointStore() ckpt.Store { return e.ckpts }

// Workers returns the pool bound.
func (e *Executor) Workers() int { return e.workers }

// Execute completes every cell and returns the assembled results in
// input order. It never fails as a whole: per-cell errors (including
// ctx cancellation, which stops running cells cooperatively and marks
// waiting ones canceled) land in their slots; use FirstError for
// callers that treat any failure as fatal. onEvent, when non-nil, is
// called serially (one goroutine's event at a time, never concurrently)
// with per-cell progress.
func (e *Executor) Execute(ctx context.Context, cells []*spec.Resolved, onEvent func(Event)) []CellResult {
	out := make([]CellResult, len(cells))
	batchStart := time.Now()

	var evMu sync.Mutex
	completed := 0
	emit := func(ev Event) {
		evMu.Lock()
		defer evMu.Unlock()
		if ev.Terminal() {
			completed++
			e.met.cellTerminal(ev.State)
		}
		ev.Completed = completed
		ev.Total = len(cells)
		if onEvent != nil {
			onEvent(ev)
		}
	}

	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c *spec.Resolved) {
			defer wg.Done()
			fp := c.Fingerprint
			started := func() {
				emit(Event{Index: i, Fingerprint: fp, State: CellStarted})
			}
			res, cached, err := e.cell(ctx, c, started)
			out[i] = CellResult{
				Index:       i,
				Fingerprint: fp,
				Spec:        c.Spec,
				Result:      res,
				Cached:      cached,
				Err:         err,
			}
			// Canceled means the cell's error IS a context error; a cell
			// that failed with a genuine simulation error reports failed
			// even when the sweep was canceled moments later — masking a
			// real failure as "canceled" would hide it from the caller.
			state := CellDone
			switch {
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				state = CellCanceled
			case err != nil:
				state = CellFailed
			case cached:
				state = CellCached
			}
			emit(Event{Index: i, Fingerprint: fp, State: state, Result: res, Err: err})
		}(i, c)
	}
	wg.Wait()
	e.met.batchRate(len(cells), time.Since(batchStart))
	return out
}

// cell computes one fingerprint with store memoization and
// single-flight dedup. cached reports that this caller did not pay for
// the simulation. If a leader fails, waiters whose own context is still
// live retry as leader rather than inheriting the failure, so one
// cancelled sweep cannot poison an identical healthy one.
func (e *Executor) cell(ctx context.Context, c *spec.Resolved, started func()) (res *sim.Result, cached bool, err error) {
	fp := c.Fingerprint
	for {
		if r, ok := e.store.Get(fp); ok {
			return r, true, nil
		}
		e.mu.Lock()
		if f, ok := e.inflight[fp]; ok {
			e.mu.Unlock()
			e.met.dedup.Inc()
			select {
			case <-f.done:
				if f.err == nil {
					return f.res, true, nil
				}
				continue // leader failed; retry as leader
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		e.inflight[fp] = f
		e.mu.Unlock()

		// Leader: execute the cell — through the dispatcher's fabric
		// when one is wired, else on the local pool.
		f.res, f.err = e.lead(ctx, c, started)
		if f.err == nil {
			e.store.Put(fp, f.res)
		}
		e.settle(fp, f)
		return f.res, false, f.err
	}
}

// lead executes one leader cell. The cell's span is its fingerprint
// prefix: short enough to read in a log line, unique enough to match a
// cell within a sweep. The span rides the context into the run, so
// sim's own "sim run" line carries the same trace/span pair as the
// worker's lines here — local pool and fabric alike.
func (e *Executor) lead(ctx context.Context, c *spec.Resolved, started func()) (*sim.Result, error) {
	fp := c.Fingerprint
	runCtx := obs.WithSpan(ctx, spanID(fp))
	if e.log.Enabled(obs.LevelDebug) {
		e.log.Debug("cell start",
			"trace", obs.TraceID(ctx), "span", obs.SpanID(runCtx),
			"policy", c.Spec.Policy.ID(), "workload", c.Spec.Workload.ID())
	}

	var res *sim.Result
	var err error
	runStart := time.Now()
	if e.disp != nil {
		// The fabric owns concurrency (its local and remote workers
		// drain one queue), so the leader does not take a pool slot;
		// started fires when the fabric grants the cell's first lease.
		res, err = e.disp.Dispatch(runCtx, c, started)
	} else {
		// Checkpoint groups warm once: the group's first cell leads
		// while siblings hold here (before taking a pool slot, so a
		// wide group never starves unrelated cells), then fork the
		// instant the leader publishes its post-prewarm state.
		if e.ckgate != nil && c.CheckpointKey != "" {
			leave, gerr := e.ckgate.enter(ctx, c.CheckpointKey)
			if gerr != nil {
				return nil, gerr
			}
			defer leave()
		}
		// Take a worker slot, honouring cancellation while queued so a
		// canceled sweep's waiting cells release instantly.
		select {
		case e.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if started != nil {
			started()
		}
		e.met.workersBusy.Inc()
		res, err = e.run(runCtx, c)
		e.met.workersBusy.Dec()
		<-e.sem
	}
	dur := time.Since(runStart)
	e.met.cellSeconds(c.Spec.Policy.Name).Observe(dur.Seconds())
	if e.log.Enabled(obs.LevelDebug) {
		e.log.Debug("cell done",
			"trace", obs.TraceID(ctx), "span", obs.SpanID(runCtx),
			"policy", c.Spec.Policy.ID(), "workload", c.Spec.Workload.ID(),
			"dur", dur.Round(time.Microsecond), "err", err)
	}
	return res, err
}

// spanID derives a cell's span from its fingerprint: the first 12 hex
// characters, matching the short form sweep status pages print.
func spanID(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

// settle publishes a flight's outcome and retires it.
func (e *Executor) settle(fp string, f *flight) {
	e.mu.Lock()
	delete(e.inflight, fp)
	e.mu.Unlock()
	close(f.done)
}
