package exec

import (
	"context"
	"fmt"

	"dwarn/internal/sim"
	"dwarn/internal/spec"
	"dwarn/internal/stats"
)

// SoloSummaries computes relative-IPC summaries for every finished
// cell whose spec asks for baselines: each distinct benchmark runs
// solo under ICOUNT (spec.SoloBaseline — the canonical identity every
// consumer of a given baseline shares), deduplicated by fingerprint
// across cells and executed as one batch through the executor's pool
// and store. The returned slice is aligned with cells; entries stay
// nil for cells without baselines, trace cells, and failed cells.
//
// This is the batch-after-the-grid shape `smtsim -spec` and the
// experiment runner share. The dwarnd service computes the same
// identities but interleaves its solo cells with the grid in one
// Execute call (it needs per-cell progress while cells finish), so it
// has its own assembly over spec.SoloBaseline.
func SoloSummaries(ctx context.Context, ex *Executor, cells []*spec.Resolved, results []CellResult) ([]*stats.Summary, error) {
	summaries := make([]*stats.Summary, len(cells))
	cellSolos := make([]map[string]string, len(cells)) // benchmark → solo fingerprint
	var batch []*spec.Resolved
	seen := map[string]bool{}
	for i, res := range cells {
		if !res.Spec.Baselines || res.Options.Trace != nil || results[i].Err != nil {
			continue
		}
		solos := map[string]string{}
		for _, b := range res.Options.Workload.Benchmarks {
			if _, dup := solos[b]; dup {
				continue
			}
			soloSpec := spec.SoloBaseline(res.Spec, b)
			sr, err := soloSpec.Resolve(nil)
			if err != nil {
				return summaries, err
			}
			solos[b] = sr.Fingerprint
			if !seen[sr.Fingerprint] {
				seen[sr.Fingerprint] = true
				batch = append(batch, sr)
			}
		}
		cellSolos[i] = solos
	}
	if len(batch) == 0 {
		return summaries, nil
	}

	soloResults := ex.Execute(ctx, batch, nil)
	if err := FirstError(soloResults); err != nil {
		return summaries, err
	}
	// Index the in-memory batch results rather than re-reading the
	// store: a DirStore's Put is best-effort, so the store is allowed
	// to have dropped an entry the executor still holds.
	soloRes := make(map[string]*sim.Result, len(soloResults))
	for _, r := range soloResults {
		soloRes[r.Fingerprint] = r.Result
	}
	for i, solos := range cellSolos {
		if solos == nil {
			continue
		}
		res := results[i].Result
		solo := make([]float64, len(res.Threads))
		for j, t := range res.Threads {
			sr := soloRes[solos[t.Benchmark]]
			if sr == nil {
				return summaries, fmt.Errorf("exec: missing solo baseline for %s", t.Benchmark)
			}
			solo[j] = sr.Threads[0].IPC
		}
		summary, err := stats.Summarize(res.IPCs(), solo)
		if err != nil {
			return summaries, err
		}
		summaries[i] = summary
	}
	return summaries, nil
}
