package exec

import (
	"context"
	"sync/atomic"
	"testing"

	"dwarn/internal/ckpt"
	"dwarn/internal/spec"
)

// countingCkptStore counts publishes: each Put is one cold warmup that
// produced a checkpoint.
type countingCkptStore struct {
	inner ckpt.Store
	puts  atomic.Int64
}

func (s *countingCkptStore) Get(key string) (*ckpt.Image, bool) { return s.inner.Get(key) }
func (s *countingCkptStore) Put(key string, img *ckpt.Image) {
	s.puts.Add(1)
	s.inner.Put(key, img)
}

// TestOneWarmupPerGroup runs a sweep whose cells split into exactly two
// checkpoint groups (two seeds, three policies each) and asserts that
// exactly one cell per group paid for a cold warmup — the rest forked.
func TestOneWarmupPerGroup(t *testing.T) {
	var cells []*spec.Resolved
	for _, p := range []string{"icount", "stall", "dwarn"} {
		for _, seed := range []uint64{5, 6} {
			rs := spec.RunSpec{
				Policy:       spec.Policy{Name: p},
				Workload:     spec.Workload{Name: "2-ILP"},
				Seed:         seed,
				WarmupCycles: 1000, MeasureCycles: 2000,
			}
			res, err := rs.Resolve(nil)
			if err != nil {
				t.Fatal(err)
			}
			cells = append(cells, res)
		}
	}
	groups := map[string]bool{}
	for _, c := range cells {
		if c.CheckpointKey == "" {
			t.Fatalf("cell %s has no checkpoint key", c.Fingerprint[:12])
		}
		groups[c.CheckpointKey] = true
	}
	if len(groups) != 2 {
		t.Fatalf("expected 2 checkpoint groups, got %d", len(groups))
	}

	store := &countingCkptStore{inner: ckpt.NewMemStore(ckpt.DefaultMemBytes)}
	e := New(Options{Workers: 4, Checkpoints: store})
	results := e.Execute(context.Background(), cells, nil)
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	if got := store.puts.Load(); got != 2 {
		t.Errorf("expected exactly one checkpoint publish per group (2), got %d", got)
	}
}

// TestWarmGateLeaderDeath exercises promotion: when the warm leader
// exits without publishing, exactly one waiter takes over rather than
// all of them stampeding.
func TestWarmGateLeaderDeath(t *testing.T) {
	g := newWarmGate()
	leave, err := g.enter(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	promoted := make(chan func(), 2)
	for i := 0; i < 2; i++ {
		go func() {
			l, err := g.enter(context.Background(), "k")
			if err != nil {
				t.Error(err)
			}
			promoted <- l
		}()
	}
	leave() // leader dies without publishing
	// Exactly one waiter becomes the new leader; the other still waits.
	first := <-promoted
	select {
	case <-promoted:
		t.Fatal("both waiters promoted at once after leader death")
	default:
	}
	// The new leader publishes; the remaining waiter floods through.
	g.release("k")
	first()
	<-promoted
}
