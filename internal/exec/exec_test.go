package exec

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dwarn/internal/sim"
	"dwarn/internal/spec"
)

// resolveCells expands a seeds × policies grid into resolved cells
// without running anything (tests substitute RunFunc).
func resolveCells(t *testing.T, policies []string, seeds []uint64) []*spec.Resolved {
	t.Helper()
	var out []*spec.Resolved
	for _, p := range policies {
		for _, seed := range seeds {
			rs := spec.RunSpec{
				Policy:       spec.Policy{Name: p},
				Workload:     spec.Workload{Name: "2-MIX"},
				Seed:         seed,
				WarmupCycles: 100, MeasureCycles: 200,
			}
			res, err := rs.Resolve(nil)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
	}
	return out
}

// fakeResult builds a distinguishable result for a cell.
func fakeResult(res *spec.Resolved) *sim.Result {
	return &sim.Result{
		Workload: res.Spec.Workload.ID(),
		Policy:   res.Spec.Policy.ID(),
		Machine:  res.Spec.Machine.Name,
		Cycles:   int64(res.Spec.Seed),
	}
}

// countingRun returns a RunFunc recording invocations per fingerprint.
func countingRun(counts *sync.Map) RunFunc {
	return func(ctx context.Context, res *spec.Resolved) (*sim.Result, error) {
		n, _ := counts.LoadOrStore(res.Fingerprint, new(atomic.Int64))
		n.(*atomic.Int64).Add(1)
		return fakeResult(res), nil
	}
}

func TestExecuteAssemblesInOrderAndDedupes(t *testing.T) {
	cells := resolveCells(t, []string{"icount", "stall"}, []uint64{1, 2, 3})
	// Append duplicates of every cell: they must share the originals'
	// simulations, not pay again.
	cells = append(cells, cells...)

	var counts sync.Map
	ex := New(Options{Workers: 4, Run: countingRun(&counts)})
	results := ex.Execute(context.Background(), cells, nil)

	if len(results) != len(cells) {
		t.Fatalf("got %d results for %d cells", len(results), len(cells))
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("slot %d carries index %d", i, r.Index)
		}
		if r.Err != nil {
			t.Fatalf("cell %d: %v", i, r.Err)
		}
		if r.Fingerprint != cells[i].Fingerprint {
			t.Errorf("slot %d: fingerprint mismatch", i)
		}
		if r.Result == nil || r.Result.Policy != cells[i].Spec.Policy.ID() {
			t.Errorf("slot %d: wrong result %+v", i, r.Result)
		}
	}
	runs := 0
	counts.Range(func(_, v any) bool {
		runs += int(v.(*atomic.Int64).Load())
		return true
	})
	if runs != 6 {
		t.Errorf("%d simulations for 6 unique fingerprints", runs)
	}
	cached := 0
	for _, r := range results {
		if r.Cached {
			cached++
		}
	}
	if cached != 6 {
		t.Errorf("%d cells cached, want the 6 duplicates", cached)
	}
}

func TestPerCellErrorIsolation(t *testing.T) {
	cells := resolveCells(t, []string{"icount"}, []uint64{1, 2, 3, 4})
	boom := errors.New("boom")
	bad := cells[1].Fingerprint
	ex := New(Options{Workers: 2, Run: func(ctx context.Context, res *spec.Resolved) (*sim.Result, error) {
		if res.Fingerprint == bad {
			return nil, boom
		}
		return fakeResult(res), nil
	}})

	var events []Event
	results := ex.Execute(context.Background(), cells, func(ev Event) {
		events = append(events, ev)
	})

	if err := FirstError(results); !errors.Is(err, boom) {
		t.Fatalf("FirstError = %v, want boom", err)
	}
	for i, r := range results {
		if i == 1 {
			if !errors.Is(r.Err, boom) || r.Result != nil {
				t.Fatalf("failing cell: err=%v result=%v", r.Err, r.Result)
			}
			continue
		}
		if r.Err != nil || r.Result == nil {
			t.Fatalf("cell %d must survive its sibling's failure: err=%v", i, r.Err)
		}
	}
	failed := 0
	for _, ev := range events {
		if ev.State == CellFailed {
			failed++
			if ev.Index != 1 || !errors.Is(ev.Err, boom) {
				t.Errorf("failed event %+v", ev)
			}
		}
	}
	if failed != 1 {
		t.Errorf("%d failed events, want 1", failed)
	}
	// A failed cell must not be stored: re-executing retries it.
	if _, ok := ex.Store().Get(bad); ok {
		t.Error("failed cell landed in the store")
	}
}

func TestStoreResumeSkipsStoredCells(t *testing.T) {
	cells := resolveCells(t, []string{"icount"}, []uint64{1, 2, 3})
	store := NewMemStore()
	pre := fakeResult(cells[0])
	store.Put(cells[0].Fingerprint, pre)

	var counts sync.Map
	ex := New(Options{Workers: 2, Store: store, Run: countingRun(&counts)})
	results := ex.Execute(context.Background(), cells, nil)

	if !results[0].Cached || results[0].Result != pre {
		t.Fatalf("stored cell not served from store: %+v", results[0])
	}
	if _, ok := counts.Load(cells[0].Fingerprint); ok {
		t.Fatal("stored cell was re-simulated")
	}
	if results[1].Cached || results[2].Cached {
		t.Fatal("fresh cells reported cached")
	}
	// Second pass over the warm store: everything cached, nothing runs.
	counts = sync.Map{}
	again := New(Options{Workers: 2, Store: store, Run: countingRun(&counts)})
	for i, r := range again.Execute(context.Background(), cells, nil) {
		if !r.Cached || r.Err != nil {
			t.Fatalf("resume cell %d not served from store: %+v", i, r)
		}
	}
	if n := 0; func() bool { counts.Range(func(_, _ any) bool { n++; return true }); return n > 0 }() {
		t.Fatal("resume re-simulated cells")
	}
}

func TestCancellationMarksCellsCanceled(t *testing.T) {
	cells := resolveCells(t, []string{"icount"}, []uint64{1, 2, 3, 4, 5, 6})
	ctx, cancel := context.WithCancel(context.Background())
	firstRunning := make(chan struct{})
	var once sync.Once
	ex := New(Options{Workers: 1, Run: func(ctx context.Context, res *spec.Resolved) (*sim.Result, error) {
		once.Do(func() { close(firstRunning) })
		<-ctx.Done() // cooperative: observe cancellation like sim.RunContext does
		return nil, ctx.Err()
	}})

	go func() {
		<-firstRunning
		cancel()
	}()
	results := ex.Execute(ctx, cells, nil)
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("cell %d err = %v, want context.Canceled", i, r.Err)
		}
	}
}

func TestConcurrentExecutesShareOneFlight(t *testing.T) {
	cells := resolveCells(t, []string{"icount"}, []uint64{7})
	var runs atomic.Int64
	release := make(chan struct{})
	ex := New(Options{Workers: 4, Run: func(ctx context.Context, res *spec.Resolved) (*sim.Result, error) {
		runs.Add(1)
		<-release
		return fakeResult(res), nil
	}})

	var wg sync.WaitGroup
	out := make([][]CellResult, 2)
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = ex.Execute(context.Background(), cells, nil)
		}(i)
	}
	// Let both Execute calls reach the flight, then release the leader.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := runs.Load(); n != 1 {
		t.Fatalf("%d simulations across two concurrent sweeps, want 1", n)
	}
	if out[0][0].Err != nil || out[1][0].Err != nil {
		t.Fatalf("errs: %v %v", out[0][0].Err, out[1][0].Err)
	}
	if !out[0][0].Cached && !out[1][0].Cached {
		t.Error("neither sweep joined the other's flight")
	}
}

func TestEventsCountToTotal(t *testing.T) {
	cells := resolveCells(t, []string{"icount", "stall"}, []uint64{1, 2})
	var counts sync.Map
	ex := New(Options{Workers: 3, Run: countingRun(&counts)})

	var events []Event
	ex.Execute(context.Background(), cells, func(ev Event) {
		events = append(events, ev)
	})

	terminal := 0
	lastCompleted := 0
	for _, ev := range events {
		if ev.Total != len(cells) {
			t.Fatalf("event total %d, want %d", ev.Total, len(cells))
		}
		if ev.Terminal() {
			terminal++
			if ev.Completed <= lastCompleted {
				t.Fatalf("completed counter not monotonic: %+v", ev)
			}
			lastCompleted = ev.Completed
		}
	}
	if terminal != len(cells) || lastCompleted != len(cells) {
		t.Fatalf("%d terminal events, final completed %d, want %d", terminal, lastCompleted, len(cells))
	}
}

func TestDirStoreRoundTripAndCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := &sim.Result{Workload: "2-MIX", Policy: "icount", Machine: "baseline", Cycles: 123, Throughput: 1.5}
	store.Put("f01", res)
	got, ok := store.Get("f01")
	if !ok || got.Cycles != 123 || got.Throughput != 1.5 {
		t.Fatalf("round trip: ok=%v got=%+v", ok, got)
	}
	if _, ok := store.Get("nonesuch"); ok {
		t.Fatal("missing entry reported present")
	}
	// A truncated entry (as if the process died mid-write without the
	// rename discipline) is a miss, not an error.
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte(`{"Cycles":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get("bad"); ok {
		t.Fatal("corrupt entry reported present")
	}
	// No temp litter after Puts.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if n := e.Name(); n != "f01.json" && n != "bad.json" {
			t.Fatalf("unexpected file %s", n)
		}
	}
}

func TestDirStoreResumesAcrossExecutors(t *testing.T) {
	dir := t.TempDir()
	cells := resolveCells(t, []string{"icount"}, []uint64{1, 2, 3, 4})

	// First "process": killed after two cells — simulate by only
	// executing a prefix.
	store1, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var counts1 sync.Map
	New(Options{Workers: 1, Store: store1, Run: countingRun(&counts1)}).
		Execute(context.Background(), cells[:2], nil)

	// Second "process" over the same directory: the stored prefix is
	// skipped, only the remainder simulates.
	store2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var counts2 sync.Map
	results := New(Options{Workers: 1, Store: store2, Run: countingRun(&counts2)}).
		Execute(context.Background(), cells, nil)

	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("cell %d: %v", i, r.Err)
		}
		if wantCached := i < 2; r.Cached != wantCached {
			t.Fatalf("cell %d cached=%v, want %v", i, r.Cached, wantCached)
		}
	}
	reruns := 0
	counts2.Range(func(_, _ any) bool { reruns++; return true })
	if reruns != 2 {
		t.Fatalf("resume simulated %d cells, want 2", reruns)
	}
}

func TestExecuteRunsRealSimulator(t *testing.T) {
	// Default RunFunc end to end: a tiny two-cell grid through the real
	// engine, cross-checked against direct sim.Run.
	rs := spec.RunSpec{
		Policy:       spec.Policy{Name: "icount"},
		Workload:     spec.Workload{Name: "2-MIX"},
		WarmupCycles: 1000, MeasureCycles: 3000,
	}
	res, err := rs.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	ex := New(Options{Workers: 2})
	results := ex.Execute(context.Background(), []*spec.Resolved{res, res}, nil)
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	direct, err := sim.Run(res.Options)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Result.Throughput != direct.Throughput {
			t.Fatalf("cell %d: executor %.6f vs direct %.6f", i, r.Result.Throughput, direct.Throughput)
		}
	}
	if fmt.Sprintf("%d", ex.Workers()) != "2" {
		t.Fatalf("workers = %d", ex.Workers())
	}
}
