package exec

import (
	"sync"
	"time"

	"dwarn/internal/obs"
	"dwarn/internal/sim"
)

// metrics is the executor's instrumentation set, registered on the
// executor's obs registry (obs.Default unless Options.Registry names
// another — the dwarnd service passes its own so per-server counters
// stay isolated in tests). All handles are pre-created; the per-cell
// paths only touch atomics, except the per-policy histogram lookup,
// which is one RLock map probe per simulated cell — noise next to the
// simulation it measures.
type metrics struct {
	reg *obs.Registry

	cellsDone     *obs.Counter // terminal cells by state
	cellsCached   *obs.Counter
	cellsFailed   *obs.Counter
	cellsCanceled *obs.Counter

	storeHits   *obs.Counter
	storeMisses *obs.Counter
	storePuts   *obs.Counter
	dedup       *obs.Counter

	workers     *obs.Gauge
	workersBusy *obs.Gauge
	cellsPerSec *obs.Gauge

	mu       sync.Mutex
	byPolicy map[string]*obs.Histogram
}

func newMetrics(reg *obs.Registry, workers int) *metrics {
	if reg == nil {
		reg = obs.Default
	}
	const cells = "dwarn_exec_cells_total"
	const cellsHelp = "Terminal sweep cells by outcome: done paid for a simulation, cached was served by the store or a concurrent identical cell."
	m := &metrics{
		reg:           reg,
		cellsDone:     reg.Counter(cells, cellsHelp, obs.L("state", CellDone)),
		cellsCached:   reg.Counter(cells, cellsHelp, obs.L("state", CellCached)),
		cellsFailed:   reg.Counter(cells, cellsHelp, obs.L("state", CellFailed)),
		cellsCanceled: reg.Counter(cells, cellsHelp, obs.L("state", CellCanceled)),
		storeHits:     reg.Counter("dwarn_exec_store_hits_total", "Result-store lookups that found a finished result (resumes and cross-frontend reuse)."),
		storeMisses:   reg.Counter("dwarn_exec_store_misses_total", "Result-store lookups that missed."),
		storePuts:     reg.Counter("dwarn_exec_store_puts_total", "Finished results persisted to the store."),
		dedup:         reg.Counter("dwarn_exec_singleflight_dedup_total", "Cells that joined an identical in-flight simulation instead of starting their own."),
		workers:       reg.Gauge("dwarn_exec_workers", "Size of the executor's bounded worker pool."),
		workersBusy:   reg.Gauge("dwarn_exec_workers_busy", "Workers currently inside a simulation."),
		cellsPerSec:   reg.Gauge("dwarn_exec_cells_per_second", "Terminal cells per second over the most recent Execute batch."),
		byPolicy:      make(map[string]*obs.Histogram),
	}
	m.workers.Set(float64(workers))
	return m
}

// cellSeconds returns the wall-time histogram for a policy, creating
// it on first sight. Policy names come from the bounded registry in
// internal/core, so cardinality is the policy count, not the sweep
// size.
func (m *metrics) cellSeconds(policy string) *obs.Histogram {
	if policy == "" {
		policy = "custom"
	}
	m.mu.Lock()
	h, ok := m.byPolicy[policy]
	if !ok {
		h = m.reg.Histogram("dwarn_exec_cell_seconds",
			"Wall time of one simulated sweep cell, by fetch policy.",
			obs.CellBuckets, obs.L("policy", policy))
		m.byPolicy[policy] = h
	}
	m.mu.Unlock()
	return h
}

// cellTerminal counts one terminal cell event.
func (m *metrics) cellTerminal(state string) {
	switch state {
	case CellDone:
		m.cellsDone.Inc()
	case CellCached:
		m.cellsCached.Inc()
	case CellFailed:
		m.cellsFailed.Inc()
	case CellCanceled:
		m.cellsCanceled.Inc()
	}
}

// countingStore wraps the executor's Store so every lookup and write —
// including the service's submit-time prechecks, which go through
// Executor.Store() — lands in the hit/miss/put counters.
type countingStore struct {
	inner Store
	m     *metrics
}

// Get implements Store.
func (cs countingStore) Get(fp string) (*sim.Result, bool) {
	res, ok := cs.inner.Get(fp)
	if ok {
		cs.m.storeHits.Inc()
	} else {
		cs.m.storeMisses.Inc()
	}
	return res, ok
}

// Put implements Store.
func (cs countingStore) Put(fp string, res *sim.Result) {
	cs.m.storePuts.Inc()
	cs.inner.Put(fp, res)
}

// batchRate folds one Execute batch into the cells/sec gauge.
func (m *metrics) batchRate(cells int, elapsed time.Duration) {
	if cells == 0 || elapsed <= 0 {
		return
	}
	m.cellsPerSec.Set(float64(cells) / elapsed.Seconds())
}
