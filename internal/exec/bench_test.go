package exec

import (
	"context"
	"fmt"
	"testing"

	"dwarn/internal/spec"
)

// benchGrid expands the fixed sweep the executor benchmark runs: 64
// cells (4 policies × 4 workloads × 4 seeds) with a short protocol —
// large enough that scheduling overhead is invisible, short enough that
// the serial baseline finishes in under a second.
func benchGrid(b *testing.B) []*spec.Resolved {
	b.Helper()
	ss := spec.SweepSpec{
		Policies: []spec.PolicyAxis{
			{Name: "icount"}, {Name: "stall"}, {Name: "flush"}, {Name: "dwarn"},
		},
		Workloads: []spec.Workload{
			{Name: "2-ILP"}, {Name: "2-MIX"}, {Name: "2-MEM"}, {Name: "4-MIX"},
		},
		Seeds:        []uint64{1, 2, 3, 4},
		WarmupCycles: 500, MeasureCycles: 2000,
	}
	runs, err := ss.Expand(0)
	if err != nil {
		b.Fatal(err)
	}
	cells := make([]*spec.Resolved, len(runs))
	for i := range runs {
		if cells[i], err = runs[i].Resolve(nil); err != nil {
			b.Fatal(err)
		}
	}
	return cells
}

// BenchmarkSweepExecutor measures sweep throughput (cells/sec) at
// 1/2/4/8 workers over a 64-cell grid. Every iteration uses a fresh
// store so each cell is really simulated — this is the number
// scripts/bench_sweep.sh records to BENCH_sweep.json, and the serial ÷
// 8-worker ratio is the parallel speedup the execution layer delivers
// on the host's cores (capped by GOMAXPROCS; on a single-core runner
// all four points collapse to the serial rate).
func BenchmarkSweepExecutor(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			cells := benchGrid(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ex := New(Options{Workers: workers})
				results := ex.Execute(context.Background(), cells, nil)
				if err := FirstError(results); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			cells64 := float64(len(cells) * b.N)
			b.ReportMetric(cells64/b.Elapsed().Seconds(), "cells/sec")
			b.ReportMetric(float64(len(cells)), "cells")
		})
	}
}
