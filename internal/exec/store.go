package exec

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"

	"dwarn/internal/chaos"
	"dwarn/internal/sim"
)

// Store is the content-addressed result store every executor memoizes
// through: keys are sim.Fingerprint identities, values are finished
// results. One Store interface backs all three frontends — the exp
// runner's memoiser is a MemStore, the dwarnd result cache adapts its
// byte-level LRU onto it, and the CLI's resumable sweeps use a DirStore
// — so an identical cell is never simulated twice no matter which
// frontend asks, and a killed sweep resumes by skipping stored cells.
//
// Implementations must be safe for concurrent use. Results are treated
// as immutable once stored: callers must not modify a returned Result,
// and Get may return the same pointer to every caller.
type Store interface {
	// Get returns the stored result for a fingerprint, if present.
	Get(fingerprint string) (*sim.Result, bool)
	// Put stores a finished result under its fingerprint. Put is
	// best-effort: a store that cannot persist (e.g. a full disk behind
	// a DirStore) drops the entry rather than failing the sweep.
	Put(fingerprint string, res *sim.Result)
}

// MemStore is an unbounded in-memory Store: the memoiser behind the
// experiment runner and the default for CLI sweeps. The zero value is
// not ready; use NewMemStore.
type MemStore struct {
	mu sync.RWMutex
	m  map[string]*sim.Result
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string]*sim.Result)}
}

// Get implements Store.
func (s *MemStore) Get(fp string) (*sim.Result, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.m[fp]
	return r, ok
}

// Put implements Store.
func (s *MemStore) Put(fp string, res *sim.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[fp] = res
}

// Len returns the number of stored results.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// DirStore persists results as one JSON file per fingerprint under a
// directory — the durable Store behind resumable CLI sweeps (smtsim
// -spec -store DIR). Writes go through a temp file and rename, so a
// sweep killed mid-write never leaves a corrupt entry: on the next run
// the cell simply reruns. Unreadable or unparsable entries are treated
// as misses for the same reason.
type DirStore struct {
	dir string
}

// NewDirStore creates the directory (if needed) and returns a store
// over it.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{dir: dir}, nil
}

// validFingerprint gates what may become a file name: fingerprints are
// lowercase-hex digests, so anything else — path separators, dots, an
// empty string — is refused rather than joined into a path. The store
// is also fed keys from network peers (fabric workers share a DirStore
// with the coordinator), so this is a safety boundary, not lint.
func validFingerprint(fp string) bool {
	if len(fp) == 0 || len(fp) > 128 {
		return false
	}
	for i := 0; i < len(fp); i++ {
		c := fp[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *DirStore) path(fp string) string {
	return filepath.Join(s.dir, fp+".json")
}

// Get implements Store.
func (s *DirStore) Get(fp string) (*sim.Result, bool) {
	if !validFingerprint(fp) {
		return nil, false
	}
	raw, err := os.ReadFile(s.path(fp))
	if err != nil {
		return nil, false
	}
	var res sim.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, false
	}
	return &res, true
}

// Put implements Store. Persistence is best-effort (see Store), but
// what lands is atomic even across processes: the payload goes to a
// private temp file in the same directory, is flushed to stable
// storage, and only then renamed onto the final name — so a concurrent
// opener (another goroutine, another process sharing the directory, a
// fabric worker racing the coordinator) sees either no entry or a
// complete one, never a torn write, and a crash between fsync and
// rename leaves only a stray temp file behind.
func (s *DirStore) Put(fp string, res *sim.Result) {
	if !validFingerprint(fp) {
		return
	}
	// Chaos seam: a drill simulating a full or failing disk drops the
	// write here, exactly like the error paths below.
	if chaos.Fire("store.put", fp) != nil {
		return
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, "."+fp+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(raw)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.path(fp)); err != nil {
		os.Remove(tmp.Name())
	}
}
