package exec

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dwarn/internal/sim"
)

// TestDirStoreFingerprintSanitization: the store refuses keys that are
// not lowercase-hex digests — it is fed fingerprints from network peers
// (fabric workers sharing a directory with the coordinator), so a key
// must never be able to name a path outside the store.
func TestDirStoreFingerprintSanitization(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := &sim.Result{Cycles: 1}
	hostile := []string{
		"",
		"../escape",
		"..",
		"a/b",
		`a\b`,
		".hidden",
		"UPPERHEX00",
		"0123456789abcdefg", // one non-hex char
		strings.Repeat("a", 129),
	}
	for _, fp := range hostile {
		store.Put(fp, res)
		if _, ok := store.Get(fp); ok {
			t.Errorf("hostile key %q round-tripped", fp)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("hostile keys created files: %v", ents)
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "escape.json")); err == nil {
		t.Fatal("a key escaped the store directory")
	}
}

// TestDirStoreConcurrentOpeners hammers one directory through several
// independently opened DirStores (the multi-process sharing pattern:
// coordinator and fabric workers pointed at the same -store DIR) from
// many goroutines under -race. Every Get must observe either a miss or
// a complete, self-consistent entry — never a torn write — and the
// directory must hold exactly the final entries with no temp litter.
func TestDirStoreConcurrentOpeners(t *testing.T) {
	dir := t.TempDir()
	const openers = 3
	const writersPerStore = 4
	const rounds = 25
	const keys = 8

	stores := make([]*DirStore, openers)
	for i := range stores {
		s, err := NewDirStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
	}
	fp := func(k int) string { return fmt.Sprintf("%016x", k) }
	// A result whose fields are mutually consistent: a torn or mixed
	// read would break Cycles == 1000*k + r relation with Throughput.
	mk := func(k, r int) *sim.Result {
		return &sim.Result{
			Workload:   fmt.Sprintf("w%d", k),
			Cycles:     int64(1000*k + r),
			Throughput: float64(1000*k + r),
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, 256)
	for si, s := range stores {
		for w := 0; w < writersPerStore; w++ {
			wg.Add(1)
			go func(s *DirStore, seed int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					k := (seed + r) % keys
					s.Put(fp(k), mk(k, r))
					got, ok := s.Get(fp(k))
					if !ok {
						continue // racing rename windows may miss; never torn
					}
					if got.Workload != fmt.Sprintf("w%d", k) ||
						float64(got.Cycles) != got.Throughput {
						select {
						case errs <- fmt.Sprintf("torn read for key %d: %+v", k, got):
						default:
						}
					}
				}
			}(s, si*writersPerStore+w)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".") {
			t.Errorf("temp litter left behind: %s", e.Name())
			continue
		}
		seen++
	}
	if seen != keys {
		t.Errorf("directory holds %d entries, want %d", seen, keys)
	}
	// Every surviving entry is complete and self-consistent.
	for k := 0; k < keys; k++ {
		got, ok := stores[0].Get(fp(k))
		if !ok {
			t.Errorf("key %d lost", k)
			continue
		}
		if float64(got.Cycles) != got.Throughput {
			t.Errorf("key %d final entry torn: %+v", k, got)
		}
	}
}
