package exec

import (
	"context"
	"sync"

	"dwarn/internal/ckpt"
)

// warmGate serializes the cold warmup of each checkpoint group: the
// first cell of a (machine, workload, seed) group becomes the warm
// leader while its siblings wait, then fork from the published
// checkpoint. Unlike the fingerprint single-flight, the gate releases
// the moment the checkpoint is *published* — mid-run, right after
// prewarm — so siblings overlap with the leader's measurement phase
// rather than its completion. A leader that exits without publishing
// (snapshot failed, run errored, canceled) promotes exactly one waiter
// to warm leader, so a failed warmup never triggers a thundering herd
// of redundant cold starts.
type warmGate struct {
	mu        sync.Mutex
	warming   map[string]chan struct{}
	published map[string]bool
}

func newWarmGate() *warmGate {
	return &warmGate{
		warming:   make(map[string]chan struct{}),
		published: make(map[string]bool),
	}
}

// enter blocks until the key's checkpoint is available or the caller
// becomes the group's warm leader. It returns the function to call
// when the caller's run finishes (a no-op for non-leaders): it
// promotes the next waiter if the leader never published.
func (g *warmGate) enter(ctx context.Context, key string) (leave func(), err error) {
	nop := func() {}
	for {
		g.mu.Lock()
		if g.published[key] {
			g.mu.Unlock()
			return nop, nil
		}
		ch, ok := g.warming[key]
		if !ok {
			ch = make(chan struct{})
			g.warming[key] = ch
			g.mu.Unlock()
			return func() { g.exit(key, ch) }, nil
		}
		g.mu.Unlock()
		select {
		case <-ch:
			// Re-check: published → fork; leader died → maybe lead.
		case <-ctx.Done():
			return nop, ctx.Err()
		}
	}
}

// release marks the key's checkpoint available and unblocks every
// waiter. Called by the gated store on both publish and first hit (a
// hit on a disk tier warmed by an earlier process must flood the gate
// just like a fresh publish — otherwise waiters would fork one at a
// time).
func (g *warmGate) release(key string) {
	g.mu.Lock()
	g.published[key] = true
	if ch, ok := g.warming[key]; ok {
		delete(g.warming, key)
		close(ch)
	}
	g.mu.Unlock()
}

// exit retires a leader that finished without publishing; the closed
// channel wakes all waiters, and enter's re-check elects one of them
// the next leader.
func (g *warmGate) exit(key string, ch chan struct{}) {
	g.mu.Lock()
	if cur, ok := g.warming[key]; ok && cur == ch {
		delete(g.warming, key)
		close(ch)
	}
	g.mu.Unlock()
}

// gatedCkptStore is the checkpoint store the executor hands to sim:
// it forwards to the shared tiers and tells the warm gate the moment a
// key becomes available, from either direction.
type gatedCkptStore struct {
	inner ckpt.Store
	gate  *warmGate
}

func (s gatedCkptStore) Get(key string) (*ckpt.Image, bool) {
	img, ok := s.inner.Get(key)
	if ok {
		s.gate.release(key)
	}
	return img, ok
}

func (s gatedCkptStore) Put(key string, img *ckpt.Image) {
	s.inner.Put(key, img)
	s.gate.release(key)
}
