package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"dwarn/internal/obs"
	"dwarn/internal/sim"
	"dwarn/internal/spec"
)

// recordingDispatcher counts dispatches per fingerprint and runs a
// RunFunc, standing in for the fabric coordinator.
type recordingDispatcher struct {
	mu      sync.Mutex
	byFP    map[string]int
	started atomic.Int64
	run     RunFunc
}

func (d *recordingDispatcher) Dispatch(ctx context.Context, res *spec.Resolved, started func()) (*sim.Result, error) {
	d.mu.Lock()
	if d.byFP == nil {
		d.byFP = map[string]int{}
	}
	d.byFP[res.Fingerprint]++
	d.mu.Unlock()
	if started != nil {
		d.started.Add(1)
		started()
	}
	return d.run(ctx, res)
}

// TestExecutorDispatcherSeam: with a Dispatcher wired, leader cells go
// through it instead of the pool, while the executor keeps everything
// else — single-flight (duplicate cells dispatch once), store writes,
// per-cell events, and input-order assembly.
func TestExecutorDispatcherSeam(t *testing.T) {
	cells := resolveCells(t, []string{"icount", "stall"}, []uint64{1, 2})
	cells = append(cells, cells...) // duplicates must not double-dispatch

	store := NewMemStore()
	disp := &recordingDispatcher{run: func(ctx context.Context, res *spec.Resolved) (*sim.Result, error) {
		return fakeResult(res), nil
	}}
	ex := New(Options{Dispatcher: disp, Store: store, Registry: obs.NewRegistry()})

	var evMu sync.Mutex
	var events []Event
	results := ex.Execute(context.Background(), cells, func(ev Event) {
		evMu.Lock()
		events = append(events, ev)
		evMu.Unlock()
	})

	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("cell %d: %v", i, r.Err)
		}
		if r.Index != i || r.Fingerprint != cells[i].Fingerprint {
			t.Fatalf("slot %d out of order: %+v", i, r)
		}
	}
	uniq := len(cells) / 2
	disp.mu.Lock()
	for fp, n := range disp.byFP {
		if n != 1 {
			t.Errorf("fingerprint %s dispatched %d times", fp[:12], n)
		}
	}
	if len(disp.byFP) != uniq {
		t.Errorf("dispatched %d distinct fingerprints, want %d", len(disp.byFP), uniq)
	}
	disp.mu.Unlock()
	if got := disp.started.Load(); got != int64(uniq) {
		t.Errorf("started fired %d times, want %d (once per leader)", got, uniq)
	}
	if store.Len() != uniq {
		t.Errorf("store holds %d results, want %d", store.Len(), uniq)
	}

	var done, cached int
	for _, ev := range events {
		switch ev.State {
		case CellDone:
			done++
		case CellCached:
			cached++
		}
	}
	if done != uniq || cached != uniq {
		t.Errorf("events: %d done, %d cached; want %d each", done, cached, uniq)
	}

	// A dispatcher failure is recorded in its cell, not fatal to others.
	boom := errors.New("boom")
	disp2 := &recordingDispatcher{run: func(ctx context.Context, res *spec.Resolved) (*sim.Result, error) {
		return nil, boom
	}}
	ex2 := New(Options{Dispatcher: disp2, Registry: obs.NewRegistry()})
	rs := ex2.Execute(context.Background(), cells[:1], nil)
	if !errors.Is(rs[0].Err, boom) {
		t.Fatalf("dispatcher failure not surfaced: %+v", rs[0])
	}
}
