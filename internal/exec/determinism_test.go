package exec

import (
	"context"
	"testing"

	"dwarn/internal/core"
	"dwarn/internal/spec"
)

// TestParallelSweepBitIdenticalToSerial is the execution layer's
// determinism guard, the sweep-level companion of the cycle engine's
// golden-digest test: expanding one grid and executing it serially
// (1 worker) and in parallel (8 workers) must produce bit-identical
// per-cell counter digests. Parallelism may only change wall-clock
// time, never a single counter — each cell's simulation is hermetic,
// which is exactly what the concurrency audit of pipeline/workload/core
// (no package-level mutable state, no shared RNG) guarantees.
func TestParallelSweepBitIdenticalToSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full policy grid in -short mode")
	}
	var axes []spec.PolicyAxis
	for _, p := range core.Policies() {
		axes = append(axes, spec.PolicyAxis{Name: p})
	}
	ss := spec.SweepSpec{
		Policies:     axes,
		Workloads:    []spec.Workload{{Name: "2-MIX"}, {Name: "2-MEM"}},
		Seeds:        []uint64{1, 2},
		WarmupCycles: 1500, MeasureCycles: 4000,
	}
	runs, err := ss.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	cells := make([]*spec.Resolved, len(runs))
	for i := range runs {
		if cells[i], err = runs[i].Resolve(nil); err != nil {
			t.Fatal(err)
		}
	}

	serial := New(Options{Workers: 1}).Execute(context.Background(), cells, nil)
	parallel := New(Options{Workers: 8}).Execute(context.Background(), cells, nil)
	if err := FirstError(serial); err != nil {
		t.Fatal(err)
	}
	if err := FirstError(parallel); err != nil {
		t.Fatal(err)
	}

	for i := range cells {
		s, p := serial[i], parallel[i]
		if s.Fingerprint != p.Fingerprint {
			t.Fatalf("cell %d: fingerprint diverged between executions", i)
		}
		sd, pd := s.Result.CounterDigest(), p.Result.CounterDigest()
		if sd != pd {
			t.Errorf("cell %d (%s/%s seed %d): parallel digest %s != serial %s",
				i, s.Spec.Policy.ID(), s.Spec.Workload.ID(), s.Spec.Seed, pd, sd)
		}
	}
}
