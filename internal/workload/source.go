package workload

import "dwarn/internal/isa"

// Source delivers one thread's dynamic uop stream to the pipeline. The
// synthetic Generator is the original implementation; a trace Replayer
// (internal/trace) delivers a recorded stream instead. The pipeline
// depends only on this seam, so workloads are pluggable end to end.
//
// The contract mirrors the generator's: Next yields correct-path uops
// strictly in fetch order and is never rewound (a policy that squashes
// and re-fetches buffers uops itself); the wrong-path methods produce a
// deterministic stream for fetches past a mispredicted branch, seeded
// per episode so replays reproduce bit-identically.
type Source interface {
	// Next produces the next correct-path uop.
	Next() isa.Uop
	// StartPC is the first instruction's address.
	StartPC() uint64
	// StartWrongPath (re)seeds the wrong-path stream for a new
	// misprediction episode; salt identifies the episode (the branch's
	// sequence number) and startPC is where fetch wrongly redirected.
	StartWrongPath(salt, startPC uint64)
	// WrongPathPC returns the PC the front end runs off to after
	// mispredicting branch u.
	WrongPathPC(u *isa.Uop, predictedTaken bool) uint64
	// NextWrongPath produces the next wrong-path uop.
	NextWrongPath() isa.Uop
	// Footprint describes the thread's memory regions for pre-warming.
	Footprint() Footprint
	// ReplayMeta captures everything a trace recorder must persist so a
	// replayer can reproduce this source — including its wrong-path
	// synthesis — byte-exactly.
	ReplayMeta() ReplayMeta
}

// Compile-time checks that the synthetic generator satisfies the seam.
var _ Source = (*Generator)(nil)

// ReplayMeta is the per-thread metadata a trace records alongside the
// uop stream: the address-space base, the static block table (wrong-path
// targets point at real blocks), and the handful of profile parameters
// the wrong-path synthesizer draws from. With these, a replayer's
// WrongPathSynth is bit-identical to the live generator's.
type ReplayMeta struct {
	// Benchmark is the profile name this stream was generated from.
	Benchmark string
	// Base is the thread's virtual address-space base.
	Base uint64
	// StartPC is the first instruction's address.
	StartPC uint64
	// Instruction-mix fractions driving wrong-path class selection.
	LoadFrac, StoreFrac, BranchFrac, IntMulFrac, FPFrac float64
	// FarW and MidW are the calibrated dynamic region weights driving
	// wrong-path data-address region selection.
	FarW, MidW float64
	// BlockStarts holds each static basic block's first slot index, in
	// ascending order (wrong-path control flow lands on block starts).
	BlockStarts []int32
	// Footprint is the thread's memory layout (also carries the hot and
	// mid region sizes the wrong-path address sampler needs).
	Footprint Footprint
}

// TrackUop updates st to reflect delivery of correct-path uop u,
// mirroring the generator's internal counter and cursor updates. A
// trace replayer feeds every delivered uop through this so that when a
// wrong-path episode starts it hands the synthesizer exactly the state
// a live generator would have had.
func (m *ReplayMeta) TrackUop(st *WrongPathState, u *isa.Uop) {
	switch u.Class {
	case isa.IntALU, isa.IntMul, isa.Load:
		st.IntWrites++
	case isa.FPALU, isa.FPMul:
		st.FPWrites++
	}
	if u.Class.IsMem() {
		off := u.Mem.Addr - m.Base
		switch {
		case off >= farOffset:
			st.FarCursor = (off - farOffset + lineBytes) % farRegion
		case off >= midOffset:
			st.MidCursor = (off - midOffset + lineBytes) % uint64(m.Footprint.MidBytes)
		}
	}
}
