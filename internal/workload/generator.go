package workload

import (
	"fmt"
	"sync"

	"dwarn/internal/isa"
	"dwarn/internal/rng"
)

// Virtual address space layout per generator instance. Threads receive
// disjoint bases, so cross-thread interference happens only through
// shared cache capacity and set conflicts (low index bits), as on real
// SMT hardware.
const (
	codeOffset = 0x0000_0000
	hotOffset  = 0x1000_0000
	midOffset  = 0x2000_0000
	farOffset  = 0x4000_0000
	farRegion  = 1 << 30 // far stream wraps after 1 GiB (never, in practice)
	lineBytes  = 64
)

// Generator produces the dynamic instruction stream for one thread: the
// correct path by walking the synthetic CFG, and — on demand — a
// deterministic wrong-path stream for fetches past a mispredicted
// branch.
type Generator struct {
	prof *Profile
	prog *program
	r    *rng.Source
	base uint64

	// Correct-path walker state.
	walk      *walker
	curSlot   int
	seq       uint64
	intWrites uint64
	fpWrites  uint64
	midCursor uint64
	farCursor uint64

	// Region mixture actually used for dynamic accesses.
	farW, midW   float64
	sFarW, sMidW float64
	loadAdj      regionAdjust
	storeAdj     regionAdjust

	// meta is the recordable identity of this stream; wp synthesizes
	// wrong-path episodes from it (separate RNG; never advances the
	// walker). A trace replayer reconstructs the identical synthesizer
	// from the recorded meta alone.
	meta ReplayMeta
	wp   WrongPathSynth
}

// genCore is everything about a generator that is immutable once built
// and deterministic in (prof, seed, base): the static program with its
// assigned data homes, the calibrated region weights and adjustments,
// the replay metadata, and the walker RNG's initial state. Cores are
// the expensive part of generator construction (program synthesis plus
// two 300k-instruction calibration walks), so the checkpoint/fork
// engine shares one core across every sweep cell of a (workload, seed)
// group; see NewGeneratorShared.
type genCore struct {
	prof *Profile
	base uint64
	prog *program

	farW, midW   float64
	sFarW, sMidW float64
	loadAdj      regionAdjust
	storeAdj     regionAdjust
	meta         ReplayMeta
	walkRNG      uint64
}

// buildCore runs the full deterministic construction for (prof, seed,
// base).
func buildCore(prof *Profile, seed, base uint64) *genCore {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	root := rng.New(seed)
	progR := root.Split(1)
	walkR := root.Split(2)
	prog := buildProgram(prof, progR)
	c := &genCore{
		prof:    prof,
		base:    base,
		prog:    prog,
		walkRNG: walkR.State(),
	}
	c.farW = prof.L2MissRate / homeFidelity
	c.midW = (prof.L1MissRate - prof.L2MissRate) / homeFidelity
	if c.farW+c.midW > 1 {
		s := c.farW + c.midW
		c.farW /= s
		c.midW /= s
	}
	c.sFarW = c.farW * prof.StoreMissScale
	c.sMidW = c.midW * prof.StoreMissScale
	c.loadAdj, c.storeAdj = prog.assignHomes(prof, progR, c.farW, c.midW, c.sFarW, c.sMidW)

	starts := make([]int32, len(prog.blocks))
	for i, b := range prog.blocks {
		starts[i] = int32(b.first)
	}
	c.meta = ReplayMeta{
		Benchmark: prof.Name,
		Base:      base,
		LoadFrac:  prof.LoadFrac, StoreFrac: prof.StoreFrac,
		BranchFrac: prof.BranchFrac, IntMulFrac: prof.IntMulFrac, FPFrac: prof.FPFrac,
		FarW: c.farW, MidW: c.midW,
		BlockStarts: starts,
	}
	return c
}

// newFromCore assembles a fresh generator (walker at the entry block,
// cursors zeroed, walker RNG at its initial state) over a — possibly
// shared — immutable core.
func newFromCore(c *genCore) *Generator {
	g := &Generator{
		prof: c.prof,
		prog: c.prog,
		r:    rng.New(0),
		base: c.base,
		farW: c.farW, midW: c.midW,
		sFarW: c.sFarW, sMidW: c.sMidW,
		loadAdj:  c.loadAdj,
		storeAdj: c.storeAdj,
		meta:     c.meta,
	}
	g.r.SetState(c.walkRNG)
	g.walk = newWalker(c.prog)
	g.meta.Footprint = g.Footprint()
	g.meta.StartPC = g.StartPC()
	g.wp = NewWrongPathSynth(&g.meta)
	return g
}

// NewGenerator builds the synthetic benchmark prof at the given address
// base. The same (prof, seed, base) always yields the same stream.
func NewGenerator(prof *Profile, seed, base uint64) *Generator {
	return newFromCore(buildCore(prof, seed, base))
}

// coreCache memoizes built cores for the checkpoint/fork engine. Keyed
// by profile identity (the registered *Profile pointer, so a
// re-registered benchmark never aliases a stale program), seed, and
// base. Bounded: cores hold the full static program, so the cache keeps
// the most recent handful — enough for the paper's grids, where every
// cell of a threshold sweep shares one (workload, seed) group.
var coreCache struct {
	sync.Mutex
	m     map[coreKey]*genCore
	order []coreKey
}

type coreKey struct {
	prof *Profile
	seed uint64
	base uint64
}

const coreCacheMax = 32

// NewGeneratorShared is NewGenerator through the process-wide core
// cache: the first call for a (prof, seed, base) triple pays for
// program construction and calibration, and every later call assembles
// a fresh generator over the shared immutable core. Streams are
// bit-identical to NewGenerator's. The checkpoint/fork engine uses this
// so forked sweep cells skip the dominant warmup cost in-process.
func NewGeneratorShared(prof *Profile, seed, base uint64) *Generator {
	k := coreKey{prof: prof, seed: seed, base: base}
	coreCache.Lock()
	if coreCache.m == nil {
		coreCache.m = make(map[coreKey]*genCore)
	}
	c, ok := coreCache.m[k]
	coreCache.Unlock()
	if !ok {
		// Build outside the lock: construction takes milliseconds and
		// concurrent cells of different groups must not serialize. A
		// racing duplicate build is harmless (identical, last one wins).
		c = buildCore(prof, seed, base)
		coreCache.Lock()
		if prev, again := coreCache.m[k]; again {
			c = prev
		} else {
			coreCache.m[k] = c
			coreCache.order = append(coreCache.order, k)
			if len(coreCache.order) > coreCacheMax {
				old := coreCache.order[0]
				coreCache.order = coreCache.order[1:]
				delete(coreCache.m, old)
			}
		}
		coreCache.Unlock()
	}
	return newFromCore(c)
}

// ReplayMeta implements Source: the metadata a trace must record so a
// replayer reproduces this stream (including wrong paths) byte-exactly.
func (g *Generator) ReplayMeta() ReplayMeta { return g.meta }

// Profile returns the benchmark profile driving this generator.
func (g *Generator) Profile() *Profile { return g.prof }

// StartPC is the first instruction's address.
func (g *Generator) StartPC() uint64 { return g.blockPC(0) }

// blockPC returns the address of the first instruction of block b.
func (g *Generator) blockPC(b int32) uint64 {
	return g.base + codeOffset + uint64(g.prog.blocks[b].first)*4
}

// slotPC returns the address of slot s in block b.
func (g *Generator) slotPC(b, s int) uint64 {
	return g.base + codeOffset + uint64(g.prog.blocks[b].first+s)*4
}

// Next produces the next correct-path uop. The caller must consume the
// stream strictly in fetch order; a fetch policy that squashes and
// re-fetches (FLUSH) must buffer and replay uops itself rather than
// asking the generator to rewind.
func (g *Generator) Next() isa.Uop {
	cur := g.walk.cur
	blk := g.prog.blocks[cur]
	slot := g.curSlot
	st := g.prog.insts[blk.first+slot]

	u := isa.Uop{
		Seq:   g.seq,
		PC:    g.slotPC(int(cur), slot),
		Class: st.class,
	}
	g.seq++
	g.fillOperands(&u)

	switch {
	case st.class.IsMem():
		u.Mem.Addr = g.dataAddr(st.class, st.region)
	case st.class.IsBranch():
		g.resolveBranch(&u, &g.prog.insts[blk.first+slot], blk.first+slot)
		g.curSlot = 0
		return u
	}

	// Advance within the block (every block ends in a terminator, so a
	// non-branch slot is never the last one).
	g.curSlot = slot + 1
	return u
}

// resolveBranch samples the branch outcome, fills u.Branch, and moves
// the walker to the successor block.
func (g *Generator) resolveBranch(u *isa.Uop, st *staticInst, slot int) {
	u.Branch.Taken = true
	switch st.class {
	case isa.CondBranch:
		taken := g.walk.condTaken(st, slot, g.r)
		u.Branch.Taken = taken
		u.Branch.Target = g.blockPC(st.target)
		g.walk.advance(st, taken, g.r)
	case isa.Jump, isa.Call:
		u.Branch.Target = g.blockPC(st.target)
		g.walk.advance(st, true, g.r)
	case isa.Ret:
		tgt, ok := g.walk.retTarget()
		if !ok {
			tgt = g.prog.entryLevel0(g.r)
		}
		u.Branch.Target = g.blockPC(tgt)
		g.walk.advanceTo(tgt)
	}
}

// fillOperands assigns destination and source architectural registers
// using the round-robin-writer / geometric-distance dependency model.
func (g *Generator) fillOperands(u *isa.Uop) {
	u.Dest, u.Src1, u.Src2 = isa.NoReg, isa.NoReg, isa.NoReg
	switch u.Class {
	case isa.IntALU, isa.IntMul:
		u.Src1 = g.intSrc(g.r, g.intWrites)
		if g.r.Bool(g.prof.TwoSrcFrac) {
			u.Src2 = g.intSrc(g.r, g.intWrites)
		}
		u.Dest = roundRobinDest(&g.intWrites)
	case isa.FPALU, isa.FPMul:
		u.Src1 = g.fpSrc(g.r, g.fpWrites)
		if g.r.Bool(g.prof.TwoSrcFrac) {
			u.Src2 = g.fpSrc(g.r, g.fpWrites)
		}
		u.Dest = roundRobinDest(&g.fpWrites)
	case isa.Load:
		u.Src1 = g.intSrc(g.r, g.intWrites)
		u.Dest = roundRobinDest(&g.intWrites)
	case isa.Store:
		u.Src1 = g.intSrc(g.r, g.intWrites) // data
		u.Src2 = g.intSrc(g.r, g.intWrites) // base
	case isa.CondBranch:
		u.Src1 = g.intSrc(g.r, g.intWrites)
	case isa.Ret, isa.Jump, isa.Call:
		// No register operands in the synthetic model.
	}
}

// intSrc picks a source register d writes back, d geometric with mean
// MeanDepDist; writers are round-robin so the register identifies the
// producing instruction. A NoSrcFrac share of reads are ready at rename
// (immediates, globals, long-dead values) — without them the dependence
// graph is far more serial than compiled code.
func (g *Generator) intSrc(r *rng.Source, writes uint64) isa.Reg {
	if r.Bool(g.prof.NoSrcFrac) {
		return isa.NoReg
	}
	d := uint64(1 + r.Geometric(1/g.prof.MeanDepDist))
	if d > 29 {
		d = 29
	}
	if d > writes {
		return isa.Reg(1 + r.Intn(30))
	}
	return isa.Reg(1 + (writes-d)%30)
}

func (g *Generator) fpSrc(r *rng.Source, writes uint64) isa.Reg {
	d := uint64(1 + r.Geometric(1/g.prof.MeanDepDist))
	if d > 29 {
		d = 29
	}
	if d > writes {
		return isa.Reg(1 + r.Intn(30))
	}
	return isa.Reg(1 + (writes-d)%30)
}

// dataAddr produces the effective address for a memory slot with the
// given home region, applying the calibrated per-execution adjustment
// (see regionAdjust in program.go).
func (g *Generator) dataAddr(class isa.Class, home uint8) uint64 {
	adj := &g.loadAdj
	if class == isa.Store {
		adj = &g.storeAdj
	}
	region := regionHot
	switch home {
	case regionFar:
		if g.r.Bool(adj.pFar) {
			region = regionFar
		}
	case regionMid:
		if g.r.Bool(adj.pMid) {
			region = regionMid
		}
	default:
		x := g.r.Float64()
		switch {
		case x < adj.leakFar:
			region = regionFar
		case x < adj.leakFar+adj.leakMid:
			region = regionMid
		}
	}
	switch region {
	case regionFar:
		addr := g.base + farOffset + g.farCursor
		g.farCursor = (g.farCursor + lineBytes) % farRegion
		return addr
	case regionMid:
		addr := g.base + midOffset + g.midCursor
		g.midCursor = (g.midCursor + lineBytes) % uint64(g.prof.MidBytes)
		return addr
	default:
		return g.base + hotOffset + hotOffsetSample(g.r, g.prof.HotBytes)
	}
}

// StartWrongPath (re)seeds the wrong-path stream for a new misprediction
// episode, snapshotting the correct path's writer counters and region
// cursors (static while the episode is active). salt should identify
// the episode (e.g. the branch's sequence number) so replays are
// deterministic; startPC is where the front end wrongly redirected to.
func (g *Generator) StartWrongPath(salt, startPC uint64) {
	g.wp.Start(salt, startPC, WrongPathState{
		IntWrites: g.intWrites,
		FPWrites:  g.fpWrites,
		FarCursor: g.farCursor,
		MidCursor: g.midCursor,
	})
}

// WrongPathPC returns the PC the front end runs off to after
// mispredicting branch u; see WrongPathSynth.PCAfterMispredict.
func (g *Generator) WrongPathPC(u *isa.Uop, predictedTaken bool) uint64 {
	return g.wp.PCAfterMispredict(u, predictedTaken)
}

// NextWrongPath produces the next wrong-path uop; see WrongPathSynth.
func (g *Generator) NextWrongPath() isa.Uop {
	return g.wp.Next()
}

// Footprint describes the generator's memory regions, so a simulator
// can pre-warm caches and TLBs to steady state instead of simulating
// multi-hundred-thousand-instruction cold laps of the mid ring.
type Footprint struct {
	// CodeBase/CodeBytes span the program text.
	CodeBase  uint64
	CodeBytes int
	// HotBase/HotBytes span the L1-resident data region.
	HotBase  uint64
	HotBytes int
	// MidBase/MidBytes span the L2-resident ring.
	MidBase  uint64
	MidBytes int
}

// Footprint returns the thread's memory layout.
func (g *Generator) Footprint() Footprint {
	return Footprint{
		CodeBase:  g.base + codeOffset,
		CodeBytes: len(g.prog.insts) * 4,
		HotBase:   g.base + hotOffset,
		HotBytes:  g.prof.HotBytes,
		MidBase:   g.base + midOffset,
		MidBytes:  g.prof.MidBytes,
	}
}

// DebugStaticStats summarises the static program for diagnostics.
func DebugStaticStats(g *Generator) string {
	var cond, jump, call, ret int
	for _, st := range g.prog.insts {
		switch st.class {
		case isa.CondBranch:
			cond++
		case isa.Jump:
			jump++
		case isa.Call:
			call++
		case isa.Ret:
			ret++
		}
	}
	return fmt.Sprintf("static: insts=%d blocks=%d funcs=%d cond=%d jump=%d call=%d ret=%d",
		len(g.prog.insts), len(g.prog.blocks), len(g.prog.entries), cond, jump, call, ret)
}
