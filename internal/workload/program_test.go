package workload

import (
	"testing"

	"dwarn/internal/isa"
	"dwarn/internal/rng"
)

func buildTestProgram(t *testing.T, bench string, seed uint64) *program {
	t.Helper()
	r := rng.New(seed)
	return buildProgram(MustGet(bench), r)
}

func TestEveryBlockEndsInTerminator(t *testing.T) {
	prog := buildTestProgram(t, "gzip", 1)
	for bi, b := range prog.blocks {
		last := prog.insts[b.first+b.n-1]
		if !last.class.IsBranch() {
			t.Fatalf("block %d ends in %v", bi, last.class)
		}
	}
}

func TestEveryFunctionEndsInRet(t *testing.T) {
	prog := buildTestProgram(t, "mcf", 2)
	for fi, entry := range prog.entries {
		lastBlock := int32(len(prog.blocks)) - 1
		if fi+1 < len(prog.entries) {
			lastBlock = prog.entries[fi+1] - 1
		}
		b := prog.blocks[lastBlock]
		if prog.insts[b.first+b.n-1].class != isa.Ret {
			t.Fatalf("function %d (blocks %d..%d) does not end in Ret", fi, entry, lastBlock)
		}
	}
}

func TestCallGraphIsLevelledDAG(t *testing.T) {
	prog := buildTestProgram(t, "gcc", 3)
	// Map block -> function index.
	funcOf := make([]int, len(prog.blocks))
	for fi := range prog.entries {
		lastBlock := len(prog.blocks) - 1
		if fi+1 < len(prog.entries) {
			lastBlock = int(prog.entries[fi+1]) - 1
		}
		for b := int(prog.entries[fi]); b <= lastBlock; b++ {
			funcOf[b] = fi
		}
	}
	for bi, b := range prog.blocks {
		term := prog.insts[b.first+b.n-1]
		if term.class != isa.Call {
			continue
		}
		caller := funcOf[bi]
		callee := funcOf[term.target]
		if callee <= caller {
			t.Fatalf("call from function %d to %d is not strictly downward", caller, callee)
		}
		if callee%callLevels != caller%callLevels+1 {
			t.Fatalf("call from level %d to level %d", caller%callLevels, callee%callLevels)
		}
	}
}

func TestJumpsNeverGoBackward(t *testing.T) {
	prog := buildTestProgram(t, "twolf", 4)
	for bi, b := range prog.blocks {
		term := prog.insts[b.first+b.n-1]
		if term.class == isa.Jump && term.target <= int32(bi) {
			t.Fatalf("block %d jumps backward to %d (inescapable cycle risk)", bi, term.target)
		}
	}
}

func TestLoopBackedgesGoBackward(t *testing.T) {
	prog := buildTestProgram(t, "vpr", 5)
	loops := 0
	for bi, b := range prog.blocks {
		term := prog.insts[b.first+b.n-1]
		if term.class == isa.CondBranch && term.loop {
			loops++
			if term.target >= int32(bi) {
				t.Fatalf("loop backedge at block %d targets %d (not backward)", bi, term.target)
			}
			if term.trips == 0 {
				t.Fatalf("loop at block %d has zero trips", bi)
			}
		}
	}
	if loops == 0 {
		t.Fatal("program has no loops")
	}
}

func TestDryRunDeterministic(t *testing.T) {
	prog := buildTestProgram(t, "parser", 6)
	a := prog.dryRun(rng.New(99))
	b := prog.dryRun(rng.New(99))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dry-run counts diverge at slot %d", i)
		}
	}
}

func TestDryRunCoversHotCode(t *testing.T) {
	prog := buildTestProgram(t, "gzip", 7)
	counts := prog.dryRun(rng.New(1))
	executed := 0
	for _, c := range counts {
		if c > 0 {
			executed++
		}
	}
	// The skewed walk should still touch a sizeable share of the text.
	if frac := float64(executed) / float64(len(counts)); frac < 0.10 {
		t.Errorf("dry run touched only %.1f%% of slots", 100*frac)
	}
}

func TestSolveAdjust(t *testing.T) {
	// Home mass above target: scale down, no leak.
	a := solveAdjust(0.4, 0.1, 0.2, 0.05)
	if a.pFar != 0.5 || a.leakFar != 0 {
		t.Errorf("over-mass far: %+v", a)
	}
	if a.pMid != 0.5 || a.leakMid != 0 {
		t.Errorf("over-mass mid: %+v", a)
	}
	// Home mass below target: full home probability plus a hot leak.
	b := solveAdjust(0.1, 0.0, 0.2, 0.0)
	if b.pFar != 1 || b.leakFar <= 0 {
		t.Errorf("under-mass: %+v", b)
	}
	// Leaks must never sum above 1.
	c := solveAdjust(0.0, 0.0, 0.9, 0.9)
	if c.leakFar+c.leakMid > 1.0001 {
		t.Errorf("leaks exceed 1: %+v", c)
	}
}

func TestWalkerDwellCapDrainsLoops(t *testing.T) {
	prog := buildTestProgram(t, "gzip", 8)
	w := newWalker(prog)
	w.dwell = maxFuncDwell + 1
	for slot, st := range prog.insts {
		if st.class == isa.CondBranch && st.loop {
			if w.condTaken(&prog.insts[slot], slot, rng.New(1)) {
				t.Fatal("loop taken past the dwell cap")
			}
			return
		}
	}
	t.Skip("no loop found")
}

func TestClassPacerHitsRates(t *testing.T) {
	p := MustGet("gzip")
	cp := newClassPacer(p)
	counts := map[isa.Class]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[cp.next()]++
	}
	bodyShare := 1 - p.BranchFrac
	wantLoads := p.LoadFrac / bodyShare
	got := float64(counts[isa.Load]) / n
	if got < wantLoads*0.98 || got > wantLoads*1.02 {
		t.Errorf("paced load rate %.4f, want %.4f", got, wantLoads)
	}
}

func TestEntryLevel0AlwaysLevelZero(t *testing.T) {
	prog := buildTestProgram(t, "eon", 9)
	r := rng.New(5)
	for i := 0; i < 200; i++ {
		e := prog.entryLevel0(r)
		// Find the function index of this entry.
		fi := -1
		for j, fe := range prog.entries {
			if fe == e {
				fi = j
				break
			}
		}
		if fi < 0 || fi%callLevels != 0 {
			t.Fatalf("restart entry %d is function %d (level %d)", e, fi, fi%callLevels)
		}
	}
}
