package workload

import "fmt"

// SourceState is the serializable cursor state of a synthetic Generator
// at a stream boundary: the walker's RNG word, the sequence number and
// round-robin writer counters, the mid/far region cursors, and the
// walker's position. It is only capturable when the walker can be
// re-derived from it — empty call stack, no active loop trip counts —
// which holds at the simulator's snapshot point (before the first
// fetched uop).
type SourceState struct {
	RNG       uint64
	Seq       uint64
	CurSlot   int32
	IntWrites uint64
	FPWrites  uint64
	MidCursor uint64
	FarCursor uint64
	WalkCur   int32
	WalkDwell int32
}

// Checkpointable is the optional Source extension the checkpoint engine
// uses: sources that can externalize their cursor state can be forked
// from a snapshot. Sources that cannot (trace replayers, recording
// wrappers) simply do not implement it and their runs start cold.
type Checkpointable interface {
	// CheckpointState captures the source's cursor state, failing when
	// the source is mid-stream in a way the state cannot represent.
	CheckpointState() (SourceState, error)
	// SetCheckpointState rewinds/forwards the source to a previously
	// captured state. The source must have been built from the same
	// (profile, seed, base) triple.
	SetCheckpointState(SourceState) error
}

var _ Checkpointable = (*Generator)(nil)

// CheckpointState implements Checkpointable. It refuses to capture a
// walker with call-stack frames or armed loop trip counters: that state
// is unbounded and episodic, and the only snapshot point the engine uses
// (post-prewarm, before any fetch) never has it.
func (g *Generator) CheckpointState() (SourceState, error) {
	if n := len(g.walk.stack); n != 0 {
		return SourceState{}, fmt.Errorf("workload: generator call stack holds %d frames", n)
	}
	for _, tr := range g.walk.trips {
		if tr >= 0 {
			return SourceState{}, fmt.Errorf("workload: generator has an active loop trip count")
		}
	}
	return SourceState{
		RNG:       g.r.State(),
		Seq:       g.seq,
		CurSlot:   int32(g.curSlot),
		IntWrites: g.intWrites,
		FPWrites:  g.fpWrites,
		MidCursor: g.midCursor,
		FarCursor: g.farCursor,
		WalkCur:   g.walk.cur,
		WalkDwell: g.walk.dwell,
	}, nil
}

// SetCheckpointState implements Checkpointable.
func (g *Generator) SetCheckpointState(st SourceState) error {
	if st.WalkCur < 0 || int(st.WalkCur) >= len(g.prog.blocks) {
		return fmt.Errorf("workload: snapshot walker block %d out of range (%d blocks)", st.WalkCur, len(g.prog.blocks))
	}
	blk := g.prog.blocks[st.WalkCur]
	if st.CurSlot < 0 || int(st.CurSlot) >= blk.n {
		return fmt.Errorf("workload: snapshot slot %d out of range for block %d", st.CurSlot, st.WalkCur)
	}
	g.r.SetState(st.RNG)
	g.seq = st.Seq
	g.curSlot = int(st.CurSlot)
	g.intWrites = st.IntWrites
	g.fpWrites = st.FPWrites
	g.midCursor = st.MidCursor
	g.farCursor = st.FarCursor
	g.walk.cur = st.WalkCur
	g.walk.dwell = st.WalkDwell
	g.walk.stack = g.walk.stack[:0]
	for i := range g.walk.trips {
		g.walk.trips[i] = -1
	}
	return nil
}
