package workload

import (
	"sort"

	"dwarn/internal/isa"
	"dwarn/internal/rng"
)

// Memory region classes for load/store home assignment.
const (
	regionHot uint8 = iota
	regionMid
	regionFar
)

// staticInst is one instruction slot in the synthetic program text.
type staticInst struct {
	class isa.Class
	// region is the home memory region for loads and stores.
	region uint8
	// loop marks trip-counted backedges: the walker runs the loop for
	// (approximately) trips iterations per entry instead of sampling
	// i.i.d. outcomes, bounding loop dwell. A stable per-slot trip count
	// also makes loop exits learnable by gshare, as real loops are.
	loop  bool
	trips uint8
	// bias is P(taken) for non-loop conditional branches.
	bias float64
	// target is the destination block index for taken branches, jumps
	// and calls.
	target int32
}

// basicBlock is a run of instructions ending in a terminator.
type basicBlock struct {
	first int // index of the first slot in prog.insts
	n     int // number of slots
}

// program is the synthetic static code for one benchmark: functions made
// of basic blocks over a linear code layout. Control flow is local —
// conditional branches jump within their function (loop backedges are
// taken-biased), calls target function entries with a hot-set skew —
// which gives the I-cache, BTB, and gshare realistic locality to
// exploit, as compiled SPECint code does.
//
// Two properties matter for calibration and are enforced structurally:
//
//  1. The instruction mix is *paced*: classes are placed with Bresenham
//     accumulators rather than sampled independently per slot, so any
//     loop the walker dwells in executes approximately the global mix.
//  2. Memory home regions are assigned *after* a dry-run of the walker
//     measures each slot's dynamic execution frequency, via sequential
//     proportional fitting, so the dynamic far/mid access fractions hit
//     the Table 2(a) targets regardless of which loops are hot.
type program struct {
	insts   []staticInst
	blocks  []basicBlock
	entries []int32 // function entry blocks, callable
}

// Terminator mix among non-final blocks of a function. Every function's
// last block returns, which keeps calls and returns balanced for the
// walker and the return address stack.
const (
	condFrac = 0.80
	jumpFrac = 0.08
	// callFrac is the remainder (~0.12).
)

// callLevels stratifies the call DAG: function f sits at level f %
// callLevels and calls only functions one level deeper; leaf-level
// functions make no calls. Bounded depth keeps the walk's call tree
// small, so dynamic slot frequencies mix quickly and the dry-run
// calibration transfers to the measured run.
const callLevels = 4

// homeFidelity is the probability a memory slot accesses its home region
// on a given execution (the remainder go to the hot region). Values
// below 1 give the PDG miss predictor a realistic error rate.
const homeFidelity = 0.85

// backwardFrac is the fraction of conditional branches that are loop
// backedges; meanLoopTrips is the mean trip count the walker draws per
// loop entry.
const (
	backwardFrac  = 0.30
	meanLoopTrips = 9.0
	maxLoopTrips  = 32
)

// classPacer places instruction classes at their exact global rates
// using error accumulators (Bresenham's algorithm over the mix).
type classPacer struct {
	weights [5]float64 // load, store, mul, fp, alu
	errs    [5]float64
}

func newClassPacer(p *Profile) *classPacer {
	bodyShare := 1 - p.BranchFrac
	cp := &classPacer{}
	cp.weights[0] = p.LoadFrac / bodyShare
	cp.weights[1] = p.StoreFrac / bodyShare
	cp.weights[2] = p.IntMulFrac / bodyShare
	cp.weights[3] = p.FPFrac / bodyShare
	sum := cp.weights[0] + cp.weights[1] + cp.weights[2] + cp.weights[3]
	cp.weights[4] = 1 - sum
	if cp.weights[4] < 0 {
		cp.weights[4] = 0
	}
	return cp
}

// next returns the class of the next body slot: the class with the
// highest accumulated deficit.
func (cp *classPacer) next() isa.Class {
	best := 4
	for i := range cp.errs {
		cp.errs[i] += cp.weights[i]
		if cp.errs[i] > cp.errs[best] {
			best = i
		}
	}
	cp.errs[best] -= 1
	switch best {
	case 0:
		return isa.Load
	case 1:
		return isa.Store
	case 2:
		return isa.IntMul
	case 3:
		return isa.FPALU
	default:
		return isa.IntALU
	}
}

// buildProgram synthesises the static code for p using r. Home regions
// are left as regionHot; assignHomes calibrates them afterwards.
func buildProgram(p *Profile, r *rng.Source) *program {
	meanBlock := 1.0 / p.BranchFrac
	if meanBlock < 2 {
		meanBlock = 2
	}
	nInsts := p.CodeBytes / 4
	prog := &program{
		insts:  make([]staticInst, 0, nInsts),
		blocks: make([]basicBlock, 0, int(float64(nInsts)/meanBlock)+1),
	}
	pacer := newClassPacer(p)
	for len(prog.insts) < nInsts {
		buildFunction(p, r, prog, meanBlock, pacer)
	}
	prog.patchCalls(r)
	return prog
}

// buildFunction appends one function: a geometric number of basic
// blocks, the last of which returns.
func buildFunction(p *Profile, r *rng.Source, prog *program, meanBlock float64, pacer *classPacer) {
	nBlocks := 3 + r.Geometric(1.0/10)
	if nBlocks > 48 {
		nBlocks = 48
	}
	f0 := int32(len(prog.blocks))
	f1 := f0 + int32(nBlocks) // exclusive
	prog.entries = append(prog.entries, f0)

	for b := int32(0); b < int32(nBlocks); b++ {
		blockLen := 1 + r.Geometric(1/meanBlock)
		if blockLen > 24 {
			blockLen = 24
		}
		first := len(prog.insts)
		for i := 0; i < blockLen-1; i++ {
			cls := pacer.next()
			// FP work comes in ALU/MUL pairs half the time.
			if cls == isa.FPALU && r.Bool(0.5) {
				cls = isa.FPMul
			}
			prog.insts = append(prog.insts, staticInst{class: cls})
		}
		cur := f0 + b
		var term staticInst
		if b == 1 && nBlocks > 3 && r.Bool(0.7) {
			// A call site on the entry path: most function visits make
			// at least one call, so returns usually match a real frame
			// (unmatched returns always mispredict the RAS).
			term = staticInst{class: isa.Call, bias: 1, target: -1}
		} else {
			term = makeTerminator(p, r, cur, f0, f1, b == int32(nBlocks)-1)
		}
		prog.insts = append(prog.insts, term)
		prog.blocks = append(prog.blocks, basicBlock{first: first, n: blockLen})
	}
}

// makeTerminator creates the control-flow instruction ending block cur
// of the function spanning blocks [f0, f1).
func makeTerminator(p *Profile, r *rng.Source, cur, f0, f1 int32, last bool) staticInst {
	if last {
		return staticInst{class: isa.Ret, bias: 1}
	}
	x := r.Float64()
	switch {
	case x < condFrac:
		inst := staticInst{class: isa.CondBranch}
		// Loop backedges need a strictly earlier target; the function's
		// first block has none, so it only gets forward branches.
		if cur > f0 && r.Bool(backwardFrac) {
			inst.loop = true
			trips := 4 + r.Geometric(1/(meanLoopTrips-4))
			if trips > maxLoopTrips {
				trips = maxLoopTrips
			}
			inst.trips = uint8(trips)
			inst.target = clampInt32(cur-1-int32(r.Geometric(0.4)), f0, cur-1)
			return inst
		}
		// Forward skips stop short of the return block so call sites
		// do not get leapfrogged out of the dynamic mix.
		hi := f1 - 2
		if hi <= cur {
			hi = f1 - 1
		}
		inst.target = clampInt32(cur+2+int32(r.Geometric(0.4)), cur+1, hi)
		switch {
		case r.Bool(p.HardBranchFrac):
			inst.bias = 0.3 + 0.4*r.Float64() // near-random: gshare struggles
		case r.Bool(p.TakenBias):
			inst.bias = 0.97
		default:
			inst.bias = 0.03
		}
		return inst
	case x < condFrac+jumpFrac:
		// Unconditional forward jump within the function. Forward-only
		// (a backward unconditional jump could close an inescapable
		// cycle) and short of the return block when possible, so call
		// sites keep executing.
		hi := f1 - 2
		if hi <= cur {
			hi = f1 - 1
		}
		tgt := clampInt32(cur+1+int32(r.Geometric(0.4)), cur+1, hi)
		return staticInst{class: isa.Jump, bias: 1, target: tgt}
	default:
		// Call target is patched once all functions exist.
		return staticInst{class: isa.Call, bias: 1, target: -1}
	}
}

func clampInt32(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// patchCalls assigns call targets. The call graph is a levelled DAG:
// function f (level f % callLevels) calls only functions at the next
// level, preferring nearby ones (call-graph locality); leaf-level
// callers degrade to jumps. Every call chain terminates within
// callLevels returns, so the walker's call trees stay small and its
// visit frequencies mix quickly — calibration depends on that.
func (prog *program) patchCalls(r *rng.Source) {
	nFuncs := len(prog.entries)
	for f := 0; f < nFuncs; f++ {
		firstBlock := prog.entries[f]
		lastBlock := int32(len(prog.blocks)) - 1
		if f+1 < nFuncs {
			lastBlock = prog.entries[f+1] - 1
		}
		level := f % callLevels
		// Candidate callees: next-level functions, nearest first.
		var callees []int32
		if level < callLevels-1 {
			for g := f + 1; g < nFuncs && len(callees) < 8; g++ {
				if g%callLevels == level+1 {
					callees = append(callees, prog.entries[g])
				}
			}
		}
		for b := firstBlock; b <= lastBlock; b++ {
			blk := prog.blocks[b]
			st := &prog.insts[blk.first+blk.n-1]
			if st.class != isa.Call {
				continue
			}
			if len(callees) == 0 {
				// Leaf level (or no next-level function exists): the
				// call degrades to a jump to the next block, keeping
				// control flow moving without touching the return block.
				st.class = isa.Jump
				if b < lastBlock {
					st.target = b + 1
				} else {
					st.target = lastBlock
				}
				continue
			}
			// Mostly the nearest couple of callees, occasionally any.
			span := 2
			if span > len(callees) {
				span = len(callees)
			}
			if !r.Bool(0.85) {
				span = len(callees)
			}
			st.target = callees[r.Intn(span)]
		}
	}
}

// entryLevel0 returns a level-0 function entry; both walkers restart
// there when the call stack runs dry. The choice is skewed towards the
// first few level-0 functions — programs have main loops — which keeps
// the hot branch and I-cache working sets realistic.
func (prog *program) entryLevel0(r *rng.Source) int32 {
	n := (len(prog.entries) + callLevels - 1) / callLevels
	k := r.Geometric(1.0 / 1.8)
	if k >= n {
		k = r.Intn(n)
	}
	idx := callLevels * k
	if idx >= len(prog.entries) {
		idx = 0
	}
	return prog.entries[idx]
}

// dryRunLength is the number of instructions the calibration walk
// executes to estimate per-slot dynamic frequencies.
const dryRunLength = 300_000

// regionAdjust holds the per-execution region probabilities that map
// home assignments onto the Table 2(a) dynamic targets. pFar/pMid are
// the probabilities that a far-/mid-home slot accesses its home region
// (otherwise it goes hot); leakFar/leakMid route a fraction of hot-home
// executions to far/mid when the home population alone cannot reach the
// target.
type regionAdjust struct {
	pFar, pMid       float64
	leakFar, leakMid float64
}

// solveAdjust computes the adjustment given realized home-mass fractions
// (fFar, fMid of all executions of the class) and dynamic targets: the
// home population covers as much of the target as it can; any remainder
// leaks from hot-home executions.
func solveAdjust(fFar, fMid, targetFar, targetMid float64) regionAdjust {
	a := regionAdjust{pFar: 1, pMid: 1}
	fHot := 1 - fFar - fMid
	if fHot < 1e-9 {
		fHot = 1e-9
	}
	if fFar > 0 && targetFar < fFar {
		a.pFar = targetFar / fFar
	} else if fFar < targetFar {
		a.leakFar = (targetFar - fFar) / fHot
	}
	if fMid > 0 && targetMid < fMid {
		a.pMid = targetMid / fMid
	} else if fMid < targetMid {
		a.leakMid = (targetMid - fMid) / fHot
	}
	if a.leakFar+a.leakMid > 1 {
		s := a.leakFar + a.leakMid
		a.leakFar /= s
		a.leakMid /= s
	}
	return a
}

// assignHomes calibrates load/store home regions. One dry run measures
// per-slot dynamic frequencies; sequential proportional fitting assigns
// far/mid homes against those frequencies; a second, independent dry
// run then measures the realized home mass and solveAdjust closes the
// residual gap with per-execution probabilities. Returns the load and
// store adjustments the generator must apply.
func (prog *program) assignHomes(p *Profile, r *rng.Source, farW, midW, sFarW, sMidW float64) (loadAdj, storeAdj regionAdjust) {
	counts := prog.dryRun(r.Split(0xd27))
	fit(prog, counts, r, isa.Load, farW, midW)
	fit(prog, counts, r, isa.Store, sFarW, sMidW)

	verify := prog.dryRun(r.Split(0x5eed))
	fFar, fMid := homeMass(prog, verify, isa.Load)
	sFarM, sMidM := homeMass(prog, verify, isa.Store)
	loadAdj = solveAdjust(fFar, fMid, p.L2MissRate, p.L1MissRate-p.L2MissRate)
	storeAdj = solveAdjust(sFarM, sMidM,
		p.L2MissRate*p.StoreMissScale, (p.L1MissRate-p.L2MissRate)*p.StoreMissScale)
	return loadAdj, storeAdj
}

// homeMass returns the fractions of class executions (per the count
// vector) whose slot is far-/mid-home.
func homeMass(prog *program, counts []uint32, class isa.Class) (fFar, fMid float64) {
	var far, mid, all float64
	for i := range prog.insts {
		if prog.insts[i].class != class {
			continue
		}
		c := float64(counts[i]) + 1
		all += c
		switch prog.insts[i].region {
		case regionFar:
			far += c
		case regionMid:
			mid += c
		}
	}
	if all == 0 {
		return 0, 0
	}
	return far / all, mid / all
}

// fit assigns home regions to all slots of one class.
func fit(prog *program, counts []uint32, r *rng.Source, class isa.Class, farW, midW float64) {
	type slot struct {
		idx int
		c   float64
	}
	var slots []slot
	var total float64
	for i := range prog.insts {
		if prog.insts[i].class != class {
			continue
		}
		// +1 smoothing gives never-executed slots a home too.
		c := float64(counts[i]) + 1
		slots = append(slots, slot{idx: i, c: c})
		total += c
	}
	if len(slots) == 0 {
		return
	}
	// Process hottest first so proportional fitting can correct early
	// overshoot with the long tail of cold slots.
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].c != slots[j].c {
			return slots[i].c > slots[j].c
		}
		return slots[i].idx < slots[j].idx
	})
	remFar := farW * total
	remMid := midW * total
	remTotal := total
	for _, s := range slots {
		x := r.Float64() * remTotal
		switch {
		case x < remFar:
			prog.insts[s.idx].region = regionFar
			remFar -= s.c
			if remFar < 0 {
				remFar = 0
			}
		case x < remFar+remMid:
			prog.insts[s.idx].region = regionMid
			remMid -= s.c
			if remMid < 0 {
				remMid = 0
			}
		default:
			prog.insts[s.idx].region = regionHot
		}
		remTotal -= s.c
	}
}

// maxFuncDwell is the block-execution budget per function visit. Once a
// visit exceeds it, loop backedges drain (fall through), bounding dwell:
// chained trip-counted loops otherwise compound into heavy-tailed visits
// that break the ergodicity the calibration relies on.
const maxFuncDwell = 128

// walker executes the CFG. Exactly the same code drives the calibration
// dry runs and the generator's correct path, so their visit statistics
// agree by construction.
type walker struct {
	prog  *program
	cur   int32 // current block
	dwell int32 // blocks executed in the current function visit
	// remaining trip counts per backedge slot; -1 = loop inactive.
	trips []int32
	stack []walkFrame
}

type walkFrame struct {
	ret   int32
	dwell int32
}

func newWalker(prog *program) *walker {
	w := &walker{prog: prog, trips: make([]int32, len(prog.insts))}
	for i := range w.trips {
		w.trips[i] = -1
	}
	return w
}

// condTaken decides a conditional branch at slot, advancing loop state.
func (w *walker) condTaken(st *staticInst, slot int, r *rng.Source) bool {
	if !st.loop {
		return r.Bool(st.bias)
	}
	if w.dwell > maxFuncDwell {
		w.trips[slot] = -1
		return false // drain: the visit has outstayed its budget
	}
	rem := w.trips[slot]
	if rem < 0 {
		// The slot's base trip count with occasional ±1 jitter: mostly
		// learnable, not perfectly so.
		rem = int32(st.trips)
		switch x := r.Float64(); {
		case x < 0.10 && rem > 1:
			rem--
		case x > 0.90:
			rem++
		}
	}
	if rem > 0 {
		w.trips[slot] = rem - 1
		return true
	}
	w.trips[slot] = -1
	return false
}

// advance moves past the terminator of the current block given its
// taken decision, returning the next block.
func (w *walker) advance(st *staticInst, taken bool, r *rng.Source) int32 {
	cur := w.cur
	next := (cur + 1) % int32(len(w.prog.blocks))
	switch st.class {
	case isa.CondBranch:
		if taken {
			next = st.target
		}
	case isa.Jump:
		next = st.target
	case isa.Call:
		if len(w.stack) < 2*callLevels {
			w.stack = append(w.stack, walkFrame{ret: next, dwell: w.dwell})
		}
		w.dwell = 0
		next = st.target
	case isa.Ret:
		if n := len(w.stack); n > 0 {
			next = w.stack[n-1].ret
			w.dwell = w.stack[n-1].dwell
			w.stack = w.stack[:n-1]
		} else {
			next = w.prog.entryLevel0(r)
			w.dwell = 0
		}
	}
	w.cur = next
	w.dwell++
	return next
}

// retTarget previews where a Ret will go without moving the walker or
// drawing randomness; ok is false when the stack is empty (the caller
// picks a restart entry and passes it through advanceTo).
func (w *walker) retTarget() (int32, bool) {
	if n := len(w.stack); n > 0 {
		return w.stack[n-1].ret, true
	}
	return -1, false
}

// advanceTo is advance for a Ret whose restart target was already chosen
// by the caller (keeps the uop's recorded target and the walker's move
// consistent).
func (w *walker) advanceTo(target int32) {
	if n := len(w.stack); n > 0 {
		w.dwell = w.stack[n-1].dwell
		w.stack = w.stack[:n-1]
	} else {
		w.dwell = 0
	}
	w.cur = target
	w.dwell++
}

// dryRun walks the CFG for dryRunLength instructions, returning per-slot
// execution counts.
func (prog *program) dryRun(r *rng.Source) []uint32 {
	counts := make([]uint32, len(prog.insts))
	w := newWalker(prog)
	executed := 0
	for executed < dryRunLength {
		b := prog.blocks[w.cur]
		for i := 0; i < b.n; i++ {
			counts[b.first+i]++
		}
		executed += b.n
		slot := b.first + b.n - 1
		term := &prog.insts[slot]
		taken := true
		if term.class == isa.CondBranch {
			taken = w.condTaken(term, slot, r)
		}
		if term.class.IsBranch() {
			w.advance(term, taken, r)
		} else {
			w.advance(&staticInst{class: isa.IntALU}, false, r)
		}
	}
	return counts
}
