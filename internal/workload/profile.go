// Package workload synthesises the SPECint2000 benchmark behaviour the
// paper's trace-driven simulator consumed from Alpha traces.
//
// The original evaluation fed SMTSIM 300M-instruction SimPoint trace
// segments of the twelve SPECint2000 programs. Those traces (and the
// Alpha binaries that produced them) are unavailable, so this package
// substitutes per-benchmark synthetic generators calibrated to the
// observable characteristics the fetch policies actually react to:
//
//   - the instruction mix (loads, stores, branches, multiplies, FP),
//   - the L1 and L2 data-miss rates per dynamic load (paper Table 2a),
//   - branch predictability under gshare,
//   - register-dependency distance (ILP),
//   - code footprint (I-cache behaviour).
//
// Memory behaviour uses a three-region model: a small hot region that
// hits the L1, a ring buffer larger than the L1 but L2-resident (L1 miss,
// L2 hit), and a cold streaming region that always misses both levels.
// Each static load is assigned a home region; mixture weights follow
// directly from Table 2(a). Table 2(a) is regenerated as a calibration
// experiment.
package workload

import (
	"fmt"
	"sort"
	"sync"
)

// ThreadType is the paper's classification of a benchmark.
type ThreadType uint8

const (
	// ILP marks benchmarks with good cache behaviour (L2 miss rate <= 1%).
	ILP ThreadType = iota
	// MEM marks memory-bounded benchmarks (L2 miss rate > 1%).
	MEM
)

func (t ThreadType) String() string {
	if t == MEM {
		return "MEM"
	}
	return "ILP"
}

// Profile parameterises one synthetic benchmark.
type Profile struct {
	// Name is the SPECint2000 benchmark name.
	Name string
	// Type is the paper's MEM/ILP classification.
	Type ThreadType

	// Instruction mix, as fractions of dynamic instructions. The
	// remainder is single-cycle integer ALU work.
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64
	IntMulFrac float64
	FPFrac     float64

	// L1MissRate and L2MissRate are per-dynamic-load miss rates from the
	// paper's Table 2(a) (e.g. mcf: 0.323 and 0.296).
	L1MissRate float64
	L2MissRate float64
	// StoreMissScale scales the same region mixture for stores (stores
	// hit more often: stack and local traffic).
	StoreMissScale float64

	// HardBranchFrac is the fraction of static conditional branches with
	// near-random outcomes (the rest are heavily biased); it tunes the
	// gshare misprediction rate. TakenBias is the fraction of biased
	// branches that are taken-biased (drives fetch fragmentation).
	HardBranchFrac float64
	TakenBias      float64

	// MeanDepDist is the mean register-dependency distance in
	// instructions; larger means more ILP. TwoSrcFrac is the fraction of
	// instructions reading two registers. NoSrcFrac is the fraction of
	// register reads satisfied by immediates or long-dead values (ready
	// at rename): high for compute code, near zero for pointer chasing,
	// where nearly every instruction hangs off the last load.
	MeanDepDist float64
	TwoSrcFrac  float64
	NoSrcFrac   float64

	// Footprints in bytes: static code, hot data region, L2-resident
	// ring region.
	CodeBytes int
	HotBytes  int
	MidBytes  int
}

// Validate reports parameter errors.
func (p *Profile) Validate() error {
	sum := p.LoadFrac + p.StoreFrac + p.BranchFrac + p.IntMulFrac + p.FPFrac
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile needs a name")
	case sum >= 1.0 || p.LoadFrac < 0 || p.StoreFrac < 0 || p.BranchFrac <= 0 || p.IntMulFrac < 0 || p.FPFrac < 0:
		return fmt.Errorf("workload: %s instruction mix invalid (sum %.3f)", p.Name, sum)
	case p.L1MissRate < 0 || p.L1MissRate > 1 || p.L2MissRate < 0 || p.L2MissRate > p.L1MissRate:
		return fmt.Errorf("workload: %s miss rates invalid (L1 %.3f, L2 %.3f)", p.Name, p.L1MissRate, p.L2MissRate)
	case p.NoSrcFrac < 0 || p.NoSrcFrac > 1:
		return fmt.Errorf("workload: %s NoSrcFrac out of range", p.Name)
	case p.MeanDepDist < 1:
		return fmt.Errorf("workload: %s mean dependency distance must be >= 1", p.Name)
	case p.CodeBytes < 4096 || p.HotBytes < 64 || p.MidBytes < 64:
		return fmt.Errorf("workload: %s footprints too small", p.Name)
	case p.HardBranchFrac < 0 || p.HardBranchFrac > 1 || p.TakenBias < 0 || p.TakenBias > 1:
		return fmt.Errorf("workload: %s branch parameters out of range", p.Name)
	}
	return nil
}

// profilesMu guards profiles: the registry is mutable through Register,
// and independent simulations read it concurrently (every sim.Run calls
// Get while building generators and fingerprints), so unsynchronized
// registration would race with a running sweep. Profiles themselves are
// immutable once registered — Register stores a private copy and Get
// hands out the shared pointer read-only.
var profilesMu sync.RWMutex

// profiles is the calibrated SPECint2000 set. Miss rates are the paper's
// Table 2(a); instruction mixes and branch behaviour are typical
// published SPECint2000 characteristics; dependency distances are tuned
// so ILP benchmarks sustain healthy single-thread IPC on the baseline
// while mcf crawls.
var profiles = map[string]*Profile{
	"mcf": {
		Name: "mcf", Type: MEM,
		LoadFrac: 0.31, StoreFrac: 0.09, BranchFrac: 0.19, IntMulFrac: 0.00, FPFrac: 0.00,
		L1MissRate: 0.323, L2MissRate: 0.296, StoreMissScale: 0.25,
		HardBranchFrac: 0.072, TakenBias: 0.62,
		MeanDepDist: 3.0, TwoSrcFrac: 0.45, NoSrcFrac: 0.04,
		CodeBytes: 16 << 10, HotBytes: 4 << 10, MidBytes: 128 << 10,
	},
	"twolf": {
		Name: "twolf", Type: MEM,
		LoadFrac: 0.24, StoreFrac: 0.09, BranchFrac: 0.16, IntMulFrac: 0.01, FPFrac: 0.01,
		L1MissRate: 0.058, L2MissRate: 0.029, StoreMissScale: 0.40,
		HardBranchFrac: 0.120, TakenBias: 0.60,
		MeanDepDist: 4.0, TwoSrcFrac: 0.45, NoSrcFrac: 0.10,
		CodeBytes: 32 << 10, HotBytes: 8 << 10, MidBytes: 128 << 10,
	},
	"vpr": {
		Name: "vpr", Type: MEM,
		LoadFrac: 0.28, StoreFrac: 0.11, BranchFrac: 0.14, IntMulFrac: 0.01, FPFrac: 0.02,
		L1MissRate: 0.043, L2MissRate: 0.019, StoreMissScale: 0.40,
		HardBranchFrac: 0.096, TakenBias: 0.60,
		MeanDepDist: 4.5, TwoSrcFrac: 0.45, NoSrcFrac: 0.10,
		CodeBytes: 32 << 10, HotBytes: 8 << 10, MidBytes: 128 << 10,
	},
	"parser": {
		Name: "parser", Type: MEM,
		LoadFrac: 0.21, StoreFrac: 0.11, BranchFrac: 0.18, IntMulFrac: 0.01, FPFrac: 0.00,
		L1MissRate: 0.029, L2MissRate: 0.010, StoreMissScale: 0.40,
		HardBranchFrac: 0.060, TakenBias: 0.62,
		MeanDepDist: 4.0, TwoSrcFrac: 0.45, NoSrcFrac: 0.12,
		CodeBytes: 32 << 10, HotBytes: 8 << 10, MidBytes: 96 << 10,
	},
	"gap": {
		Name: "gap", Type: ILP,
		LoadFrac: 0.21, StoreFrac: 0.13, BranchFrac: 0.14, IntMulFrac: 0.02, FPFrac: 0.00,
		L1MissRate: 0.007, L2MissRate: 0.0066, StoreMissScale: 0.40,
		HardBranchFrac: 0.030, TakenBias: 0.65,
		MeanDepDist: 5.0, TwoSrcFrac: 0.45, NoSrcFrac: 0.20,
		CodeBytes: 48 << 10, HotBytes: 16 << 10, MidBytes: 96 << 10,
	},
	"vortex": {
		Name: "vortex", Type: ILP,
		LoadFrac: 0.27, StoreFrac: 0.17, BranchFrac: 0.16, IntMulFrac: 0.01, FPFrac: 0.00,
		L1MissRate: 0.010, L2MissRate: 0.003, StoreMissScale: 0.40,
		HardBranchFrac: 0.012, TakenBias: 0.65,
		MeanDepDist: 5.0, TwoSrcFrac: 0.45, NoSrcFrac: 0.20,
		CodeBytes: 48 << 10, HotBytes: 16 << 10, MidBytes: 96 << 10,
	},
	"gcc": {
		Name: "gcc", Type: ILP,
		LoadFrac: 0.25, StoreFrac: 0.13, BranchFrac: 0.19, IntMulFrac: 0.01, FPFrac: 0.00,
		L1MissRate: 0.004, L2MissRate: 0.003, StoreMissScale: 0.40,
		HardBranchFrac: 0.048, TakenBias: 0.63,
		MeanDepDist: 4.5, TwoSrcFrac: 0.45, NoSrcFrac: 0.18,
		CodeBytes: 64 << 10, HotBytes: 16 << 10, MidBytes: 64 << 10,
	},
	"perlbmk": {
		Name: "perlbmk", Type: ILP,
		LoadFrac: 0.24, StoreFrac: 0.14, BranchFrac: 0.18, IntMulFrac: 0.01, FPFrac: 0.00,
		L1MissRate: 0.003, L2MissRate: 0.001, StoreMissScale: 0.40,
		HardBranchFrac: 0.036, TakenBias: 0.65,
		MeanDepDist: 4.5, TwoSrcFrac: 0.45, NoSrcFrac: 0.18,
		CodeBytes: 48 << 10, HotBytes: 16 << 10, MidBytes: 64 << 10,
	},
	"bzip2": {
		Name: "bzip2", Type: ILP,
		LoadFrac: 0.26, StoreFrac: 0.09, BranchFrac: 0.15, IntMulFrac: 0.01, FPFrac: 0.00,
		L1MissRate: 0.001, L2MissRate: 0.001, StoreMissScale: 0.40,
		HardBranchFrac: 0.060, TakenBias: 0.62,
		MeanDepDist: 5.5, TwoSrcFrac: 0.45, NoSrcFrac: 0.22,
		CodeBytes: 24 << 10, HotBytes: 16 << 10, MidBytes: 48 << 10,
	},
	"crafty": {
		Name: "crafty", Type: ILP,
		LoadFrac: 0.28, StoreFrac: 0.09, BranchFrac: 0.13, IntMulFrac: 0.02, FPFrac: 0.00,
		L1MissRate: 0.008, L2MissRate: 0.001, StoreMissScale: 0.40,
		HardBranchFrac: 0.066, TakenBias: 0.60,
		MeanDepDist: 5.0, TwoSrcFrac: 0.50, NoSrcFrac: 0.20,
		CodeBytes: 48 << 10, HotBytes: 16 << 10, MidBytes: 96 << 10,
	},
	"gzip": {
		Name: "gzip", Type: ILP,
		LoadFrac: 0.20, StoreFrac: 0.08, BranchFrac: 0.17, IntMulFrac: 0.01, FPFrac: 0.00,
		L1MissRate: 0.025, L2MissRate: 0.001, StoreMissScale: 0.40,
		HardBranchFrac: 0.054, TakenBias: 0.62,
		MeanDepDist: 5.0, TwoSrcFrac: 0.45, NoSrcFrac: 0.20,
		CodeBytes: 24 << 10, HotBytes: 8 << 10, MidBytes: 128 << 10,
	},
	"eon": {
		Name: "eon", Type: ILP,
		LoadFrac: 0.26, StoreFrac: 0.17, BranchFrac: 0.11, IntMulFrac: 0.01, FPFrac: 0.08,
		L1MissRate: 0.001, L2MissRate: 0.0002, StoreMissScale: 0.40,
		HardBranchFrac: 0.030, TakenBias: 0.65,
		MeanDepDist: 5.5, TwoSrcFrac: 0.45, NoSrcFrac: 0.22,
		CodeBytes: 48 << 10, HotBytes: 16 << 10, MidBytes: 48 << 10,
	},
}

// Get returns the calibrated profile for a SPECint2000 benchmark name.
// The returned profile is shared and must not be modified.
func Get(name string) (*Profile, error) {
	profilesMu.RLock()
	p, ok := profiles[name]
	profilesMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return p, nil
}

// MustGet is Get for static names; it panics on unknown benchmarks.
func MustGet(name string) *Profile {
	p, err := Get(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns all benchmark names in sorted order.
func Names() []string {
	profilesMu.RLock()
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	profilesMu.RUnlock()
	sort.Strings(names)
	return names
}

// Register adds or replaces a profile (used by the custom-workload
// example and by tests). The profile must validate. Registering while
// simulations run is safe but changes the fingerprints of future runs
// referencing the benchmark; in-flight runs keep the profile pointer
// they already resolved.
func Register(p *Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	cp := *p
	profilesMu.Lock()
	profiles[p.Name] = &cp
	profilesMu.Unlock()
	return nil
}
