package workload

import (
	"math"
	"testing"
	"testing/quick"

	"dwarn/internal/isa"
)

func TestProfilesValidate(t *testing.T) {
	for _, name := range Names() {
		if err := MustGet(name).Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTwelveBenchmarks(t *testing.T) {
	if len(Names()) != 12 {
		t.Fatalf("%d benchmarks, want 12 (SPECint2000)", len(Names()))
	}
}

func TestPaperClassification(t *testing.T) {
	// Table 2(a): mcf, twolf, vpr, parser are MEM; the rest ILP.
	mem := map[string]bool{"mcf": true, "twolf": true, "vpr": true, "parser": true}
	for _, name := range Names() {
		p := MustGet(name)
		if want := mem[name]; (p.Type == MEM) != want {
			t.Errorf("%s classified %v", name, p.Type)
		}
	}
}

func TestMissRatesMatchTable2a(t *testing.T) {
	cases := map[string][2]float64{
		"mcf":   {0.323, 0.296},
		"twolf": {0.058, 0.029},
		"vpr":   {0.043, 0.019},
	}
	for name, want := range cases {
		p := MustGet(name)
		if p.L1MissRate != want[0] || p.L2MissRate != want[1] {
			t.Errorf("%s rates %v/%v, want %v/%v", name, p.L1MissRate, p.L2MissRate, want[0], want[1])
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nonesuch"); err == nil {
		t.Error("unknown benchmark did not error")
	}
}

func TestRegisterRejectsInvalid(t *testing.T) {
	if err := Register(&Profile{Name: ""}); err == nil {
		t.Error("empty profile registered")
	}
}

func TestRegisterAndUse(t *testing.T) {
	p := *MustGet("gzip")
	p.Name = "testbench"
	if err := Register(&p); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("testbench"); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadTableMatchesPaper(t *testing.T) {
	wls := Workloads()
	if len(wls) != 12 {
		t.Fatalf("%d workloads, want 12", len(wls))
	}
	// Spot-check Table 2(b).
	check := func(name string, want []string) {
		t.Helper()
		wl, err := GetWorkload(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(wl.Benchmarks) != len(want) {
			t.Fatalf("%s has %d benchmarks", name, len(wl.Benchmarks))
		}
		for i := range want {
			if wl.Benchmarks[i] != want[i] {
				t.Errorf("%s[%d] = %s, want %s", name, i, wl.Benchmarks[i], want[i])
			}
		}
	}
	check("2-MEM", []string{"mcf", "twolf"})
	check("4-MIX", []string{"gzip", "twolf", "bzip2", "mcf"})
	check("8-MEM", []string{"mcf", "twolf", "vpr", "parser", "mcf", "twolf", "vpr", "parser"})
	check("6-ILP", []string{"gzip", "bzip2", "eon", "gcc", "crafty", "perlbmk"})
}

func TestWorkloadsByThreads(t *testing.T) {
	wls := WorkloadsByThreads(2, 4)
	if len(wls) != 6 {
		t.Fatalf("%d workloads for 2/4 threads, want 6", len(wls))
	}
	for _, wl := range wls {
		if wl.Threads != 2 && wl.Threads != 4 {
			t.Errorf("%s has %d threads", wl.Name, wl.Threads)
		}
	}
}

func TestWorkloadValidate(t *testing.T) {
	bad := Workload{Name: "x", Threads: 2, Benchmarks: []string{"gzip"}}
	if err := bad.Validate(); err == nil {
		t.Error("thread-count mismatch validated")
	}
	bad2 := Workload{Name: "x", Threads: 1, Benchmarks: []string{"nonesuch"}}
	if err := bad2.Validate(); err == nil {
		t.Error("unknown benchmark validated")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(MustGet("gzip"), 42, 1<<40)
	b := NewGenerator(MustGet("gzip"), 42, 1<<40)
	for i := 0; i < 5000; i++ {
		ua, ub := a.Next(), b.Next()
		if ua != ub {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, ua, ub)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	a := NewGenerator(MustGet("gzip"), 1, 1<<40)
	b := NewGenerator(MustGet("gzip"), 2, 1<<40)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next().PC == b.Next().PC {
			same++
		}
	}
	if same == 1000 {
		t.Error("different seeds produced identical PC streams")
	}
}

// TestControlFlowConsistency is the core stream invariant: consecutive
// correct-path uops follow the recorded control flow exactly.
func TestControlFlowConsistency(t *testing.T) {
	for _, name := range []string{"gzip", "mcf", "eon"} {
		g := NewGenerator(MustGet(name), 7, 1<<40)
		prev := g.Next()
		for i := 0; i < 20000; i++ {
			u := g.Next()
			var wantPC uint64
			if prev.Class.IsBranch() && prev.Branch.Taken {
				wantPC = prev.Branch.Target
			} else {
				wantPC = prev.PC + 4
			}
			if u.PC != wantPC {
				t.Fatalf("%s: uop %d at %#x, want %#x (after %v taken=%v)",
					name, i, u.PC, wantPC, prev.Class, prev.Branch.Taken)
			}
			prev = u
		}
	}
}

func TestSequenceNumbersMonotonic(t *testing.T) {
	g := NewGenerator(MustGet("gzip"), 9, 1<<40)
	for i := uint64(0); i < 1000; i++ {
		if u := g.Next(); u.Seq != i {
			t.Fatalf("seq %d at position %d", u.Seq, i)
		}
	}
}

func TestSeparateSeqForWrongPath(t *testing.T) {
	g := NewGenerator(MustGet("gzip"), 9, 1<<40)
	g.Next()
	g.StartWrongPath(1, g.StartPC())
	wp := g.NextWrongPath()
	if !wp.WrongPath {
		t.Error("wrong-path uop not flagged")
	}
	u := g.Next()
	if u.Seq != 1 {
		t.Errorf("correct path advanced by wrong-path fetch: seq %d", u.Seq)
	}
}

func TestWrongPathDeterministicPerEpisode(t *testing.T) {
	g := NewGenerator(MustGet("gzip"), 9, 1<<40)
	g.StartWrongPath(5, 1<<40+64)
	var first []isa.Uop
	for i := 0; i < 20; i++ {
		first = append(first, g.NextWrongPath())
	}
	g.StartWrongPath(5, 1<<40+64)
	for i := 0; i < 20; i++ {
		if got := g.NextWrongPath(); got != first[i] {
			t.Fatalf("wrong-path replay diverged at %d", i)
		}
	}
}

func TestAddressesStayInRegions(t *testing.T) {
	g := NewGenerator(MustGet("mcf"), 13, 1<<40)
	const base = uint64(1) << 40
	for i := 0; i < 50000; i++ {
		u := g.Next()
		if u.Class.IsMem() {
			off := u.Mem.Addr - base
			switch {
			case off < hotOffset: // code region: data must not live here
				t.Fatalf("data access in code region: %#x", u.Mem.Addr)
			case off >= farOffset+farRegion:
				t.Fatalf("address beyond far region: %#x", u.Mem.Addr)
			}
		} else if u.PC-base >= hotOffset {
			t.Fatalf("PC outside code region: %#x", u.PC)
		}
	}
}

func TestInstructionMixNearProfile(t *testing.T) {
	p := MustGet("gzip")
	g := NewGenerator(p, 17, 1<<40)
	var loads, stores, branches, total float64
	for i := 0; i < 300000; i++ {
		u := g.Next()
		total++
		switch {
		case u.Class == isa.Load:
			loads++
		case u.Class == isa.Store:
			stores++
		case u.Class.IsBranch():
			branches++
		}
	}
	// Loop weighting makes dynamic mixes drift substantially from the
	// static profile for individual windows; these are sanity bounds,
	// not calibration checks (region calibration is tested separately).
	if r := loads / total; r < 0.03 || r > 0.5 {
		t.Errorf("load fraction %.3f out of sane range (profile %.3f)", r, p.LoadFrac)
	}
	if r := stores / total; r < 0.01 || r > 0.35 {
		t.Errorf("store fraction %.3f out of sane range (profile %.3f)", r, p.StoreFrac)
	}
	if r := branches / total; r < 0.05 || r > 0.35 {
		t.Errorf("branch fraction %.3f out of sane range", r)
	}
}

func TestFarMidCalibrationOrderOfMagnitude(t *testing.T) {
	// The two-stage calibration should land dynamic far fractions in
	// the right regime: mcf far ≈ 0.3 of loads, gzip far ≈ 0.001.
	type tc struct {
		name    string
		wantFar float64
		tol     float64 // relative
	}
	for _, c := range []tc{{"mcf", 0.296, 0.5}, {"twolf", 0.029, 0.8}} {
		g := NewGenerator(MustGet(c.name), 42, 1<<40)
		var loads, far float64
		for i := 0; i < 400000; i++ {
			u := g.Next()
			if u.Class != isa.Load {
				continue
			}
			loads++
			if u.Mem.Addr >= 1<<40+farOffset {
				far++
			}
		}
		got := far / loads
		if math.Abs(got-c.wantFar) > c.tol*c.wantFar {
			t.Errorf("%s dynamic far fraction %.4f, want %.4f ± %.0f%%", c.name, got, c.wantFar, 100*c.tol)
		}
	}
}

func TestRegistersInRange(t *testing.T) {
	g := NewGenerator(MustGet("eon"), 19, 1<<40)
	for i := 0; i < 20000; i++ {
		u := g.Next()
		for _, r := range []isa.Reg{u.Dest, u.Src1, u.Src2} {
			if r != isa.NoReg && (r < 0 || r >= isa.NumIntRegs) {
				t.Fatalf("register %d out of range on %v", r, u.Class)
			}
		}
		if u.Class.IsBranch() && u.Dest != isa.NoReg {
			t.Fatalf("branch with destination register")
		}
		if u.Class == isa.Store && u.Dest != isa.NoReg {
			t.Fatalf("store with destination register")
		}
	}
}

func TestFootprint(t *testing.T) {
	g := NewGenerator(MustGet("gzip"), 21, 1<<40)
	fp := g.Footprint()
	p := MustGet("gzip")
	if fp.HotBytes != p.HotBytes || fp.MidBytes != p.MidBytes {
		t.Errorf("footprint %+v does not match profile", fp)
	}
	if fp.CodeBase != 1<<40 {
		t.Errorf("code base %#x", fp.CodeBase)
	}
	if fp.CodeBytes < p.CodeBytes || fp.CodeBytes > p.CodeBytes+4096 {
		t.Errorf("code bytes %d vs profile %d", fp.CodeBytes, p.CodeBytes)
	}
}

func TestGeneratorsDistinctBases(t *testing.T) {
	wl, err := GetWorkload("4-MIX")
	if err != nil {
		t.Fatal(err)
	}
	gens, err := wl.Generators(42)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, g := range gens {
		b := g.Footprint().CodeBase
		if seen[b] {
			t.Errorf("duplicate base %#x", b)
		}
		seen[b] = true
	}
}

func TestReplicatedInstancesDephased(t *testing.T) {
	wl, _ := GetWorkload("6-MEM") // mcf appears twice
	gens, _ := wl.Generators(42)
	a, b := gens[0], gens[4] // both mcf
	same := 0
	for i := 0; i < 1000; i++ {
		ua, ub := a.Next(), b.Next()
		if ua.Class == ub.Class {
			same++
		}
	}
	if same == 1000 {
		t.Error("replicated instances generate identical streams")
	}
}

func TestQuickGeneratorNeverPanics(t *testing.T) {
	f := func(seed uint64, pick uint8) bool {
		names := Names()
		g := NewGenerator(MustGet(names[int(pick)%len(names)]), seed, 1<<40)
		for i := 0; i < 2000; i++ {
			g.Next()
		}
		g.StartWrongPath(seed, g.StartPC())
		for i := 0; i < 200; i++ {
			g.NextWrongPath()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
