package workload

import (
	"dwarn/internal/isa"
	"dwarn/internal/rng"
)

// WrongPathState is the slice of generator state a wrong-path episode
// branches off from: the round-robin writer counters (so wrong-path
// destinations continue the correct path's register pattern) and the
// streaming-region cursors (so wrong-path loads pollute near the data
// the thread is actually touching). The correct path never advances
// while an episode is active, so a snapshot at episode start is exact.
type WrongPathState struct {
	IntWrites, FPWrites  uint64
	FarCursor, MidCursor uint64
}

// WrongPathSynth synthesizes the deterministic wrong-path uop stream for
// fetches past a mispredicted branch. It is driven entirely by
// ReplayMeta plus a WrongPathState snapshot, so the live Generator and a
// trace Replayer produce bit-identical wrong paths: the stream is a pure
// function of (episode salt, start PC, state, metadata).
//
// Wrong-path uops fetch, rename, and execute (polluting caches and
// predictor history) but are squashed when the mispredicted branch
// resolves. Wrong-path branches carry plausible outcomes so fetch
// follows them, but the pipeline never treats them as mispredicted.
type WrongPathSynth struct {
	meta *ReplayMeta

	r   *rng.Source
	pc  uint64
	seq uint64
	st  WrongPathState
}

// NewWrongPathSynth builds a synthesizer over meta. meta must outlive
// the synthesizer.
func NewWrongPathSynth(meta *ReplayMeta) WrongPathSynth {
	return WrongPathSynth{meta: meta, r: rng.New(meta.Base)}
}

// Start (re)seeds the stream for a new misprediction episode. salt
// should identify the episode (e.g. the branch's sequence number) so
// replays are deterministic; startPC is where the front end wrongly
// redirected to; st is the correct path's state at the episode start.
func (s *WrongPathSynth) Start(salt, startPC uint64, st WrongPathState) {
	s.r = rng.New(salt*0x9e3779b97f4a7c15 ^ s.meta.Base)
	s.pc = startPC
	s.seq = 0
	s.st = st
}

// PCAfterMispredict returns the PC the front end runs off to after
// mispredicting branch u: the fall-through when the prediction was
// not-taken, otherwise a deterministic pseudo-target standing in for a
// stale BTB entry. Stale targets point at recently executed code, so
// the pseudo-target stays near the branch — a uniformly random target
// would turn every misprediction into a cold I-cache excursion.
func (s *WrongPathSynth) PCAfterMispredict(u *isa.Uop, predictedTaken bool) uint64 {
	if !predictedTaken {
		return u.PC + 4
	}
	h := u.PC * 0x9e3779b97f4a7c15 >> 33
	return s.blockPC(s.nearbyBlock(u.PC, h))
}

// blockPC returns the address of the first instruction of block b.
func (s *WrongPathSynth) blockPC(b int32) uint64 {
	return s.meta.Base + codeOffset + uint64(s.meta.BlockStarts[b])*4
}

// nearbyBlock maps a PC to its block and offsets it by hash within a
// small window, clamped to the program.
func (s *WrongPathSynth) nearbyBlock(pc, hash uint64) int32 {
	slot := int32((pc - s.meta.Base - codeOffset) / 4)
	starts := s.meta.BlockStarts
	// Binary search for the block containing slot.
	lo, hi := 0, len(starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if starts[mid] <= slot {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	b := lo + int(hash%17) - 8
	if b < 0 {
		b = 0
	}
	if b >= len(starts) {
		b = len(starts) - 1
	}
	return int32(b)
}

// Next produces the next wrong-path uop.
func (s *WrongPathSynth) Next() isa.Uop {
	u := isa.Uop{
		Seq:       s.seq,
		PC:        s.pc,
		WrongPath: true,
		Dest:      isa.NoReg,
		Src1:      isa.NoReg,
		Src2:      isa.NoReg,
	}
	s.seq++

	x := s.r.Float64()
	m := s.meta
	switch {
	case x < m.LoadFrac:
		u.Class = isa.Load
	case x < m.LoadFrac+m.StoreFrac:
		u.Class = isa.Store
	case x < m.LoadFrac+m.StoreFrac+m.BranchFrac:
		u.Class = isa.CondBranch
	case x < m.LoadFrac+m.StoreFrac+m.BranchFrac+m.IntMulFrac:
		u.Class = isa.IntMul
	case x < m.LoadFrac+m.StoreFrac+m.BranchFrac+m.IntMulFrac+m.FPFrac:
		u.Class = isa.FPALU
	default:
		u.Class = isa.IntALU
	}

	switch u.Class {
	case isa.Load:
		u.Src1 = s.intSrc()
		u.Dest = roundRobinDest(&s.st.IntWrites)
		u.Mem.Addr = s.dataAddr()
	case isa.Store:
		u.Src1 = s.intSrc()
		u.Src2 = s.intSrc()
		u.Mem.Addr = s.dataAddr()
	case isa.CondBranch:
		u.Src1 = s.intSrc()
		u.Branch.Taken = s.r.Bool(0.6)
		h := u.PC*0x2545f4914f6cdd1d + s.seq
		u.Branch.Target = s.blockPC(s.nearbyBlock(u.PC, h>>13))
	case isa.FPALU:
		u.Src1 = isa.Reg(1 + s.r.Intn(30))
		u.Dest = roundRobinDest(&s.st.FPWrites)
	default:
		u.Src1 = s.intSrc()
		u.Dest = roundRobinDest(&s.st.IntWrites)
	}

	if u.Class == isa.CondBranch && u.Branch.Taken {
		s.pc = u.Branch.Target
	} else {
		s.pc += 4
	}
	return u
}

func (s *WrongPathSynth) intSrc() isa.Reg {
	return isa.Reg(1 + s.r.Intn(30))
}

// dataAddr draws wrong-path data addresses from the same region mixture
// as the correct path, so wrong-path loads pollute the caches and bump
// the policies' miss counters realistically. Wrong-path loads mostly
// touch data near the correct path's cursors — wrong paths run the same
// code over the same structures — with a small fraction streaming ahead
// (true pollution).
func (s *WrongPathSynth) dataAddr() uint64 {
	x := s.r.Float64()
	switch {
	case x < s.meta.FarW:
		var off uint64
		if s.r.Bool(0.8) {
			// Recently streamed lines: likely still cached.
			back := uint64(1+s.r.Intn(256)) * lineBytes
			off = (s.st.FarCursor + farRegion - back) % farRegion
		} else {
			// A genuine extra miss, displaced far from the stream so
			// wrong-path execution never prefetches the correct path's
			// upcoming lines.
			off = (s.st.FarCursor + 8<<20 + uint64(s.r.Intn(4096))*lineBytes) % farRegion
		}
		return s.meta.Base + farOffset + off
	case x < s.meta.FarW+s.meta.MidW:
		back := uint64(s.r.Intn(256)) * lineBytes
		mid := uint64(s.meta.Footprint.MidBytes)
		off := (s.st.MidCursor + mid - back%mid) % mid
		return s.meta.Base + midOffset + off
	default:
		return s.meta.Base + hotOffset + hotOffsetSample(s.r, s.meta.Footprint.HotBytes)
	}
}

// roundRobinDest allocates the next round-robin destination register
// (r1..r30; r0 is the zero register and r31 is reserved).
func roundRobinDest(writes *uint64) isa.Reg {
	r := isa.Reg(1 + *writes%30)
	*writes++
	return r
}

// hotOffsetSample draws a skewed offset within the hot region: mostly
// the first few lines (stack tops and hot structures), occasionally
// anywhere. Uniform access over the whole region would make the hot
// set exactly as large as its footprint — the worst case for shared-
// cache LRU and nothing like real programs' locality.
func hotOffsetSample(r *rng.Source, hotBytes int) uint64 {
	hotLines := hotBytes / lineBytes
	var line int
	if r.Bool(0.97) {
		line = r.Geometric(1.0 / 3)
		if line >= hotLines {
			line = hotLines - 1
		}
	} else {
		line = r.Intn(hotLines)
	}
	return uint64(line)*lineBytes + uint64(r.Intn(lineBytes/8))*8
}
