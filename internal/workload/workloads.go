package workload

import (
	"fmt"
	"sort"
)

// Mix is the paper's workload classification by cache behaviour.
type Mix uint8

const (
	// MixILP contains only benchmarks with good cache behaviour.
	MixILP Mix = iota
	// MixMIX contains both ILP and MEM benchmarks.
	MixMIX
	// MixMEM contains only memory-bounded benchmarks.
	MixMEM
)

func (m Mix) String() string {
	switch m {
	case MixILP:
		return "ILP"
	case MixMIX:
		return "MIX"
	case MixMEM:
		return "MEM"
	}
	return fmt.Sprintf("Mix(%d)", uint8(m))
}

// Workload is one multiprogrammed workload from Table 2(b).
type Workload struct {
	// Name is e.g. "4-MIX".
	Name string
	// Threads is the thread count (2, 4, 6, 8).
	Threads int
	// Mix is the cache-behaviour class.
	Mix Mix
	// Benchmarks lists the co-scheduled programs; duplicates are the
	// paper's boldface replicated instances, which it de-phased by one
	// million instructions (we de-phase by seeding each instance
	// differently).
	Benchmarks []string
}

// table2b is the exact workload table from the paper.
var table2b = []Workload{
	{Name: "2-ILP", Threads: 2, Mix: MixILP, Benchmarks: []string{"gzip", "bzip2"}},
	{Name: "2-MIX", Threads: 2, Mix: MixMIX, Benchmarks: []string{"gzip", "twolf"}},
	{Name: "2-MEM", Threads: 2, Mix: MixMEM, Benchmarks: []string{"mcf", "twolf"}},
	{Name: "4-ILP", Threads: 4, Mix: MixILP, Benchmarks: []string{"gzip", "bzip2", "eon", "gcc"}},
	{Name: "4-MIX", Threads: 4, Mix: MixMIX, Benchmarks: []string{"gzip", "twolf", "bzip2", "mcf"}},
	{Name: "4-MEM", Threads: 4, Mix: MixMEM, Benchmarks: []string{"mcf", "twolf", "vpr", "parser"}},
	{Name: "6-ILP", Threads: 6, Mix: MixILP, Benchmarks: []string{"gzip", "bzip2", "eon", "gcc", "crafty", "perlbmk"}},
	{Name: "6-MIX", Threads: 6, Mix: MixMIX, Benchmarks: []string{"gzip", "twolf", "bzip2", "mcf", "vpr", "eon"}},
	{Name: "6-MEM", Threads: 6, Mix: MixMEM, Benchmarks: []string{"mcf", "twolf", "vpr", "parser", "mcf", "twolf"}},
	{Name: "8-ILP", Threads: 8, Mix: MixILP, Benchmarks: []string{"gzip", "bzip2", "eon", "gcc", "crafty", "perlbmk", "gap", "vortex"}},
	{Name: "8-MIX", Threads: 8, Mix: MixMIX, Benchmarks: []string{"gzip", "twolf", "bzip2", "mcf", "vpr", "eon", "parser", "gap"}},
	{Name: "8-MEM", Threads: 8, Mix: MixMEM, Benchmarks: []string{"mcf", "twolf", "vpr", "parser", "mcf", "twolf", "vpr", "parser"}},
}

// Workloads returns the full Table 2(b) set, in paper order.
func Workloads() []Workload {
	out := make([]Workload, len(table2b))
	copy(out, table2b)
	return out
}

// WorkloadsByThreads returns the workloads with the given thread counts,
// in paper order (used for the small machine, which runs only 2- and
// 4-thread workloads).
func WorkloadsByThreads(counts ...int) []Workload {
	want := map[int]bool{}
	for _, c := range counts {
		want[c] = true
	}
	var out []Workload
	for _, w := range table2b {
		if want[w.Threads] {
			out = append(out, w)
		}
	}
	return out
}

// GetWorkload returns the named workload from Table 2(b).
func GetWorkload(name string) (Workload, error) {
	for _, w := range table2b {
		if w.Name == name {
			return w, nil
		}
	}
	var known []string
	for _, w := range table2b {
		known = append(known, w.Name)
	}
	sort.Strings(known)
	return Workload{}, fmt.Errorf("workload: unknown workload %q (known: %v)", name, known)
}

// Custom builds a user-defined workload from benchmark names: the
// thread count is the benchmark count and the Mix class is inferred
// from the profiles' MEM/ILP types, the same rule Table 2(b) follows.
func Custom(name string, benchmarks []string) (Workload, error) {
	w := Workload{
		Name:       name,
		Threads:    len(benchmarks),
		Benchmarks: append([]string(nil), benchmarks...),
	}
	if err := w.Validate(); err != nil {
		return Workload{}, err
	}
	var mem, ilp bool
	for _, b := range benchmarks {
		p, _ := Get(b) // Validate above guarantees the lookup succeeds
		if p.Type == MEM {
			mem = true
		} else {
			ilp = true
		}
	}
	switch {
	case mem && ilp:
		w.Mix = MixMIX
	case mem:
		w.Mix = MixMEM
	default:
		w.Mix = MixILP
	}
	return w, nil
}

// Validate checks a (possibly user-defined) workload.
func (w *Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workload: workload needs a name")
	}
	if len(w.Benchmarks) == 0 {
		return fmt.Errorf("workload: %s has no benchmarks", w.Name)
	}
	if w.Threads != len(w.Benchmarks) {
		return fmt.Errorf("workload: %s declares %d threads but lists %d benchmarks", w.Name, w.Threads, len(w.Benchmarks))
	}
	for _, b := range w.Benchmarks {
		if _, err := Get(b); err != nil {
			return err
		}
	}
	return nil
}

// Generators instantiates one uop source per thread — live synthetic
// generators walking each benchmark's CFG. Replicated benchmark
// instances get different seeds (standing in for the paper's
// one-million-instruction shift) and every thread gets a disjoint
// address-space base.
//
// It returns the Source seam rather than concrete *Generator values so
// the pipeline and simulator stay agnostic about where uops come from
// (a trace Replayer is a drop-in substitute).
func (w *Workload) Generators(seed uint64) ([]Source, error) {
	return w.generators(seed, NewGenerator)
}

// SharedGenerators is Generators through the process-wide program core
// cache (see NewGeneratorShared): bit-identical streams, but cells that
// share a (workload, seed) group skip program construction and
// calibration after the first. The checkpoint/fork engine's path.
func (w *Workload) SharedGenerators(seed uint64) ([]Source, error) {
	return w.generators(seed, NewGeneratorShared)
}

func (w *Workload) generators(seed uint64, mk func(*Profile, uint64, uint64) *Generator) ([]Source, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	srcs := make([]Source, len(w.Benchmarks))
	for i, name := range w.Benchmarks {
		prof, err := Get(name)
		if err != nil {
			return nil, err
		}
		// Disjoint address spaces with a pseudo-random line-aligned
		// stagger: without it every thread's regions would start
		// set-aligned and collide pathologically in the shared caches.
		stagger := (seed + uint64(i)*0x9e3779b97f4a7c15) >> 13 & 0x3FFFC0
		base := uint64(i+1)<<40 + stagger
		srcs[i] = mk(prof, seed+uint64(i)*0x51ed2701, base)
	}
	return srcs, nil
}
