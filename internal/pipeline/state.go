package pipeline

import "fmt"

// CoreState is the serializable scalar state of a CPU at a quiescent
// point (no instructions anywhere in the pipeline). The interesting
// machine state at such a point lives in the memory hierarchy and the
// predictor, which snapshot themselves; what remains core-side is the
// clock and the age/commit bookkeeping derived from it.
type CoreState struct {
	Now          int64
	AgeCtr       uint64
	LastCommitAt int64
	NumThreads   int
}

// Quiescent verifies the pipeline holds no in-flight work: empty
// front-end queues, ROBs, issue queues and event calendar, no wrong-path
// fetch, no pending replay, no outstanding miss accounting. Snapshots
// are only taken (and restored) at quiescent points — serializing
// in-flight DynInsts would drag the whole arena, event queue, and
// rename state into the format for no benefit, since the only snapshot
// site (post-prewarm, pre-warmup) is quiescent by construction.
func (c *CPU) Quiescent() error {
	if n := c.events.len(); n != 0 {
		return fmt.Errorf("pipeline: %d events in flight", n)
	}
	for q := range c.queues {
		if n := len(c.queues[q]); n != 0 {
			return fmt.Errorf("pipeline: issue queue %d holds %d entries", q, n)
		}
	}
	for _, t := range c.threads {
		switch {
		case t.feq.len() != 0:
			return fmt.Errorf("pipeline: t%d front-end queue holds %d entries", t.id, t.feq.len())
		case t.rob.len() != 0:
			return fmt.Errorf("pipeline: t%d ROB holds %d entries", t.id, t.rob.len())
		case t.inQueues != 0:
			return fmt.Errorf("pipeline: t%d has %d instructions in issue queues", t.id, t.inQueues)
		case t.hasPeek:
			return fmt.Errorf("pipeline: t%d holds a peeked uop", t.id)
		case t.wrongPath || t.pendingBranch != nil:
			return fmt.Errorf("pipeline: t%d is on the wrong path", t.id)
		case len(t.replay) != 0:
			return fmt.Errorf("pipeline: t%d has %d replay uops", t.id, len(t.replay))
		case t.l1MissInFlight != 0:
			return fmt.Errorf("pipeline: t%d has %d L1 misses in flight", t.id, t.l1MissInFlight)
		case t.icacheReadyAt > c.now || t.redirectAt > c.now:
			return fmt.Errorf("pipeline: t%d front end is stalled", t.id)
		}
	}
	return nil
}

// CoreState snapshots the core's scalar state. It fails unless the
// pipeline is quiescent; see Quiescent.
func (c *CPU) CoreState() (CoreState, error) {
	if err := c.Quiescent(); err != nil {
		return CoreState{}, err
	}
	return CoreState{
		Now:          c.now,
		AgeCtr:       c.ageCtr,
		LastCommitAt: c.lastCommitAt,
		NumThreads:   len(c.threads),
	}, nil
}

// SetCoreState overwrites the core's scalar state from a snapshot taken
// on an identically shaped, quiescent CPU. The target must itself be
// quiescent (freshly built, typically): register files, rename maps and
// queues are deterministic functions of the configuration at a quiescent
// point, so only the scalars need restoring.
func (c *CPU) SetCoreState(st CoreState) error {
	if st.NumThreads != len(c.threads) {
		return fmt.Errorf("pipeline: snapshot has %d threads, CPU has %d", st.NumThreads, len(c.threads))
	}
	if err := c.Quiescent(); err != nil {
		return fmt.Errorf("pipeline: restore target not quiescent: %w", err)
	}
	c.now = st.Now
	c.ageCtr = st.AgeCtr
	c.lastCommitAt = st.LastCommitAt
	c.events.init(eventHorizon(c.cfg), c.now)
	return nil
}
