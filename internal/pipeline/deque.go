package pipeline

// instDeque is a FIFO of in-flight instructions (front-end queues,
// reorder buffers) backed by one reusable slice. The naive idiom these
// replaced — pop via q = q[1:], push via append — slides the window off
// the front of the backing array, so every push past the capacity
// reallocates even though the queue's length is bounded; the deque
// instead memmoves the live window back to the front when it hits the
// end, which amortises to O(1) per operation with zero steady-state
// allocations.
type instDeque struct {
	buf  []*DynInst
	head int
}

func (q *instDeque) len() int          { return len(q.buf) - q.head }
func (q *instDeque) front() *DynInst   { return q.buf[q.head] }
func (q *instDeque) at(i int) *DynInst { return q.buf[q.head+i] }

func (q *instDeque) popFront() {
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
}

func (q *instDeque) push(d *DynInst) {
	if len(q.buf) == cap(q.buf) && q.head > 0 {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, d)
}

// truncate drops entries from the tail until n remain.
func (q *instDeque) truncate(n int) { q.buf = q.buf[:q.head+n] }
