// Package pipeline implements the SMT out-of-order core: an ICOUNT-style
// x.y fetch engine with pluggable fetch policies, a fixed-latency front
// end, per-thread renaming onto shared physical register files, shared
// issue queues, oldest-first out-of-order issue over limited functional
// units, per-thread reorder buffers, and full squash/replay support for
// branch mispredictions and policy-initiated flushes (the FLUSH policy).
//
// The model follows the paper's Table 3 machine and its simulator
// conventions: wrong-path instructions are fetched, renamed, and
// executed; the fetch unit learns of an L1 data miss 5 cycles after the
// load was fetched; latencies assume no bank conflicts.
package pipeline

import (
	"dwarn/internal/bpred"
	"dwarn/internal/isa"
	"dwarn/internal/mem/hierarchy"
)

// instState tracks a dynamic instruction through the pipeline.
type instState uint8

const (
	stFrontEnd  instState = iota // fetched, traversing decode/rename delay
	stInQueue                    // waiting in an issue queue
	stExecuting                  // issued, result pending
	stDone                       // result available, awaiting commit
	stCommitted
	stSquashed
)

// DynInst is one in-flight dynamic instruction. Instances are pooled in
// a per-CPU arena and recycled at retire/squash; the pipeline and the
// policies must drop every reference by then (squash fires OnSquash,
// completion fires OnLoadReturn, so they do).
type DynInst struct {
	U      isa.Uop
	Thread int
	// Age is the global fetch order, used for oldest-first issue
	// arbitration and squash ordering.
	Age uint64

	state instState

	// fpRegs caches U.Class.UsesFP() — which register space the
	// operands live in — so the per-cycle issue/complete/retire paths
	// avoid re-deriving it from the class.
	fpRegs bool

	// gen is the arena recycling generation. Scheduled events snapshot
	// it; after the instruction is recycled the snapshot no longer
	// matches and the stale event is discarded.
	gen uint32

	// Rename state: physical register indices, -1 when absent.
	destPhys int32
	prevPhys int32
	src1Phys int32
	src2Phys int32

	// frontEndReadyAt is the cycle the uop may leave the front end.
	frontEndReadyAt int64
	// completeAt is the cycle the result becomes available.
	completeAt int64

	// Pred is the front end's prediction for branch uops.
	Pred bpred.Prediction

	// MemRes is the memory system's timing verdict for loads/stores,
	// valid once the uop has issued.
	MemRes hierarchy.DataResult

	// missCounted tracks whether this load incremented its thread's
	// in-flight L1-miss counter (so squash/complete decrement exactly
	// once).
	missCounted bool

	// PredictedMiss is scratch state for the PDG policy: the L1-miss
	// prediction made at fetch.
	PredictedMiss bool
	// PolicyCounted is scratch state for policies that count this load
	// in a gating counter and must decrement on return/squash.
	PolicyCounted bool
}

// Squashed reports whether the instruction has been squashed.
func (d *DynInst) Squashed() bool { return d.state == stSquashed }

// Done reports whether the result is available.
func (d *DynInst) Done() bool { return d.state >= stDone }

// CompleteAt returns the cycle the instruction's result is (or will be)
// available; valid once issued.
func (d *DynInst) CompleteAt() int64 { return d.completeAt }

// arenaSlab is how many DynInsts one arena growth step allocates.
const arenaSlab = 256

// instArena recycles DynInsts through a free list backed by slab
// allocation, so steady-state fetch performs no heap allocations (the
// pool stops growing once it covers the peak number of simultaneously
// live instructions). Freeing bumps the generation counter — it must
// only happen once every pipeline structure has (or is about to drop)
// its reference; see retire and squashYounger.
type instArena struct {
	free []*DynInst
}

// get returns a zeroed instruction carrying its recycling generation.
func (a *instArena) get() *DynInst {
	if n := len(a.free); n > 0 {
		d := a.free[n-1]
		a.free = a.free[:n-1]
		gen := d.gen
		*d = DynInst{gen: gen}
		return d
	}
	slab := make([]DynInst, arenaSlab)
	for i := 1; i < len(slab); i++ {
		a.free = append(a.free, &slab[i])
	}
	return &slab[0]
}

// put recycles an instruction. The generation bump invalidates every
// event scheduled against it; the fields are deliberately left intact
// (reset happens in get) so in-flight squash bookkeeping that still
// inspects state this cycle — e.g. FLUSH's declare batch checking
// Squashed() — sees the truth until the instruction is reused.
func (a *instArena) put(d *DynInst) {
	d.gen++
	a.free = append(a.free, d)
}
