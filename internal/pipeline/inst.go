// Package pipeline implements the SMT out-of-order core: an ICOUNT-style
// x.y fetch engine with pluggable fetch policies, a fixed-latency front
// end, per-thread renaming onto shared physical register files, shared
// issue queues, oldest-first out-of-order issue over limited functional
// units, per-thread reorder buffers, and full squash/replay support for
// branch mispredictions and policy-initiated flushes (the FLUSH policy).
//
// The model follows the paper's Table 3 machine and its simulator
// conventions: wrong-path instructions are fetched, renamed, and
// executed; the fetch unit learns of an L1 data miss 5 cycles after the
// load was fetched; latencies assume no bank conflicts.
package pipeline

import (
	"dwarn/internal/bpred"
	"dwarn/internal/isa"
	"dwarn/internal/mem/hierarchy"
)

// instState tracks a dynamic instruction through the pipeline.
type instState uint8

const (
	stFrontEnd  instState = iota // fetched, traversing decode/rename delay
	stInQueue                    // waiting in an issue queue
	stExecuting                  // issued, result pending
	stDone                       // result available, awaiting commit
	stCommitted
	stSquashed
)

// DynInst is one in-flight dynamic instruction.
type DynInst struct {
	U      isa.Uop
	Thread int
	// Age is the global fetch order, used for oldest-first issue
	// arbitration and squash ordering.
	Age uint64

	state instState

	// Rename state: physical register indices, -1 when absent.
	destPhys int32
	prevPhys int32
	src1Phys int32
	src2Phys int32

	// frontEndReadyAt is the cycle the uop may leave the front end.
	frontEndReadyAt int64
	// completeAt is the cycle the result becomes available.
	completeAt int64

	// Pred is the front end's prediction for branch uops.
	Pred bpred.Prediction

	// MemRes is the memory system's timing verdict for loads/stores,
	// valid once the uop has issued.
	MemRes hierarchy.DataResult

	// missCounted tracks whether this load incremented its thread's
	// in-flight L1-miss counter (so squash/complete decrement exactly
	// once).
	missCounted bool

	// PredictedMiss is scratch state for the PDG policy: the L1-miss
	// prediction made at fetch.
	PredictedMiss bool
	// PolicyCounted is scratch state for policies that count this load
	// in a gating counter and must decrement on return/squash.
	PolicyCounted bool
}

// Squashed reports whether the instruction has been squashed.
func (d *DynInst) Squashed() bool { return d.state == stSquashed }

// Done reports whether the result is available.
func (d *DynInst) Done() bool { return d.state >= stDone }

// CompleteAt returns the cycle the instruction's result is (or will be)
// available; valid once issued.
func (d *DynInst) CompleteAt() int64 { return d.completeAt }

// event kinds, processed at the top of each cycle.
type evKind uint8

const (
	// evComplete: the instruction's result is available (ALU latency
	// elapsed, load data arrived, store left the AGU).
	evComplete evKind = iota
	// evLoadAccess: the load's D-cache access happens now; policies are
	// told about L1/TLB outcomes.
	evLoadAccess
	// evL2Miss: the L2 tag check failed now (true L2-miss detection,
	// used by DWarn's hybrid gate).
	evL2Miss
	// evLoadReturning: the 2-cycle advance indication that load data is
	// coming back (used by STALL/FLUSH/DWarn to release gates early).
	evLoadReturning
	// evBranchResolve: the branch executes now; mispredictions squash.
	evBranchResolve
)

type event struct {
	at   int64
	seq  uint64
	kind evKind
	inst *DynInst
}

// eventHeap is a min-heap on (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
