package pipeline

// event kinds, processed at the top of each cycle.
type evKind uint8

const (
	// evComplete: the instruction's result is available (ALU latency
	// elapsed, load data arrived, store left the AGU).
	evComplete evKind = iota
	// evLoadAccess: the load's D-cache access happens now; policies are
	// told about L1/TLB outcomes.
	evLoadAccess
	// evL2Miss: the L2 tag check failed now (true L2-miss detection,
	// used by DWarn's hybrid gate).
	evL2Miss
	// evLoadReturning: the 2-cycle advance indication that load data is
	// coming back (used by STALL/FLUSH/DWarn to release gates early).
	evLoadReturning
	// evBranchResolve: the branch executes now; mispredictions squash.
	evBranchResolve
)

type event struct {
	at   int64
	kind evKind
	// gen snapshots inst.gen at schedule time. The arena bumps gen when
	// an instruction is recycled, so a stale event for a squashed (and
	// possibly reused) DynInst is detected by a mismatch and skipped.
	gen  uint32
	inst *DynInst
}

// eventQueue is a calendar queue: a ring of per-cycle buckets covering
// the window (now, now+horizon], plus a rarely-used overflow list for
// events beyond it. Event latencies are bounded by the memory system
// (TLB-miss penalty + L1→L2 + main memory), so with a horizon sized
// from the machine configuration every event lands in a bucket and
// scheduling/draining is O(1) with zero steady-state allocations —
// unlike the container/heap it replaces, which boxed one allocation
// into an interface{} per Push and per Pop.
//
// Determinism: the previous heap ordered events by (at, seq) where seq
// was the global schedule order. Buckets are append-only and drained
// front to back, and overflow events migrate into a bucket before any
// later-scheduled event can target that cycle, so within a bucket
// events sit in exactly that schedule order. The processing order is
// bit-identical to the heap's.
type eventQueue struct {
	buckets [][]event
	mask    int64
	// now is the last drained cycle: buckets cover (now, now+H].
	now   int64
	count int
	// overflow holds events beyond the horizon in schedule order. Empty
	// for every stock machine configuration; custom configs with longer
	// latencies than the sized horizon fall back to it for correctness.
	overflow []event
}

// init sizes the ring to cover horizon cycles of look-ahead and primes
// the window to start at cycle start.
func (q *eventQueue) init(horizon, start int64) {
	size := int64(64)
	for size < horizon {
		size <<= 1
	}
	q.buckets = make([][]event, size)
	q.mask = size - 1
	q.now = start - 1
}

// schedule enqueues an event for cycle at. Events scheduled for the
// current cycle or earlier fire next cycle, matching the heap's
// behaviour (the pipeline drains cycle N's events before any phase of
// cycle N can schedule).
func (q *eventQueue) schedule(at int64, kind evKind, inst *DynInst) {
	if at <= q.now {
		at = q.now + 1
	}
	ev := event{at: at, kind: kind, gen: inst.gen, inst: inst}
	q.count++
	if at-q.now <= int64(len(q.buckets)) {
		idx := at & q.mask
		q.buckets[idx] = append(q.buckets[idx], ev)
		return
	}
	q.overflow = append(q.overflow, ev)
}

// bucketFor returns the bucket holding cycle now's events. The caller
// must drain it fully, then call advance(now) exactly once.
func (q *eventQueue) bucketFor(now int64) []event {
	return q.buckets[now&q.mask]
}

// advance consumes cycle now: clears its bucket (whose slot becomes
// cycle now+H) and migrates any overflow events that just entered the
// window into their buckets, preserving schedule order.
func (q *eventQueue) advance(now int64) {
	idx := now & q.mask
	q.count -= len(q.buckets[idx])
	q.buckets[idx] = q.buckets[idx][:0]
	q.now = now
	if len(q.overflow) == 0 {
		return
	}
	h := int64(len(q.buckets))
	kept := q.overflow[:0]
	for _, ev := range q.overflow {
		if ev.at-now <= h {
			i := ev.at & q.mask
			q.buckets[i] = append(q.buckets[i], ev)
		} else {
			kept = append(kept, ev)
		}
	}
	q.overflow = kept
}

// len returns the number of pending events.
func (q *eventQueue) len() int { return q.count }
