package pipeline

import (
	"fmt"

	"dwarn/internal/isa"
)

// Step advances the machine by one cycle. Phases run in reverse pipeline
// order so same-cycle effects flow naturally: completions wake issue,
// issue vacates queue slots for dispatch, dispatch vacates the front-end
// queue for fetch.
func (c *CPU) Step() {
	now := c.now
	c.processEvents(now)
	c.policy.Tick(now)
	c.commit(now)
	c.issue(now)
	c.dispatch(now)
	c.fetch(now)
	c.Stats.Cycles++
	c.now = now + 1

	if now-c.lastCommitAt > livelockWindow {
		panic(fmt.Sprintf("pipeline: no instruction committed for %d cycles at cycle %d (policy %s)\n%s",
			livelockWindow, now, c.policy.Name(), c.DumpState()))
	}
}

// livelockWindow bounds how long the core may go without committing
// anything before the simulator declares a modelling bug. The largest
// legitimate gap is a pile-up of TLB misses and memory accesses, well
// under this bound.
const livelockWindow = 100_000

// Run advances the machine n cycles.
func (c *CPU) Run(n int64) {
	for i := int64(0); i < n; i++ {
		c.Step()
	}
}

// processEvents applies all events scheduled for cycle now, in schedule
// order (the calendar bucket preserves it). An event whose generation
// no longer matches its instruction's is stale — the instruction was
// squashed and recycled — and is dropped.
func (c *CPU) processEvents(now int64) {
	bucket := c.events.bucketFor(now)
	for i := 0; i < len(bucket); i++ {
		ev := bucket[i]
		d := ev.inst
		if ev.gen != d.gen || d.state == stSquashed {
			continue
		}
		switch ev.kind {
		case evComplete:
			c.complete(d, now)
		case evLoadAccess:
			c.loadAccess(d, now)
		case evL2Miss:
			c.policy.OnL2Miss(d, now)
		case evLoadReturning:
			c.policy.OnLoadReturning(d, now)
		case evBranchResolve:
			c.resolveBranch(d, now)
		}
	}
	c.events.advance(now)
}

// complete marks an instruction's result available and wakes dependents.
func (c *CPU) complete(d *DynInst, now int64) {
	d.state = stDone
	c.setRegReady(d.fpRegs, d.destPhys)
	if d.U.Class == isa.Load {
		t := c.threads[d.Thread]
		if d.missCounted {
			t.l1MissInFlight--
			d.missCounted = false
		}
		// Every completing load is reported: policies track hitting
		// loads too (PDG counts predicted-miss loads that in fact hit).
		c.policy.OnLoadReturn(d, now)
	}
}

// loadAccess fires when a load's D-cache access resolves its tag check:
// the L1 and TLB outcomes become architecturally visible and the miss
// counters the policies watch are updated.
func (c *CPU) loadAccess(d *DynInst, now int64) {
	if d.MemRes.SawMiss() {
		t := c.threads[d.Thread]
		t.l1MissInFlight++
		d.missCounted = true
	}
	c.policy.OnLoadAccess(d, now)
}

// resolveBranch executes a branch: trains the predictor and recovers
// from mispredictions by squashing and redirecting fetch.
func (c *CPU) resolveBranch(d *DynInst, now int64) {
	d.state = stDone
	if d.U.WrongPath {
		return
	}
	c.bp.Resolve(d.Thread, &d.U, d.Pred)
	if !d.Pred.Mispredicted {
		return
	}
	t := c.threads[d.Thread]
	n := c.squashYounger(t, d.Age, false)
	t.stats.MispredictSquashed += uint64(n)
	c.bp.Squash(d.Thread, &d.U, d.Pred)
	if t.pendingBranch == d {
		t.pendingBranch = nil
	}
	t.wrongPath = false
	t.redirectAt = now + int64(c.cfg.MispredictRedirect)
}

// commit retires completed instructions in order, up to CommitWidth per
// cycle shared across threads (rotating the starting thread for
// fairness).
func (c *CPU) commit(now int64) {
	budget := c.cfg.CommitWidth
	n := len(c.threads)
	start := int(now) % n
	for i := 0; i < n && budget > 0; i++ {
		t := c.threads[(start+i)%n]
		for budget > 0 && t.rob.len() > 0 {
			d := t.rob.front()
			if d.state != stDone {
				break
			}
			c.retire(t, d)
			t.rob.popFront()
			budget--
			c.lastCommitAt = now
		}
	}
}

// retire commits one instruction and recycles it. By commit time every
// event for the instruction has fired (all are scheduled at or before
// completeAt, and completion is what makes it committable) and its lazy
// issue-queue reference was compacted no later than this cycle's issue
// phase runs — so the arena may hand it back to fetch immediately.
func (c *CPU) retire(t *thread, d *DynInst) {
	d.state = stCommitted
	if d.destPhys >= 0 && d.prevPhys >= 0 {
		c.freeReg(d.fpRegs, d.prevPhys)
	}
	t.stats.Committed++
	if d.U.Class == isa.Load {
		t.stats.Loads++
		if d.MemRes.L1Miss {
			t.stats.LoadL1Misses++
			if d.MemRes.L2Miss {
				t.stats.LoadL2Misses++
			}
		}
	}
	c.arena.put(d)
}

// issue selects ready instructions oldest-first across the shared
// queues, bounded by issue width and per-class functional unit counts.
//
// The queues are kept age-sorted (dispatch inserts in order, compaction
// is stable), so selection is a three-way merge that visits entries in
// global age order and stops as soon as the issue budget or all units
// are spent — no per-cycle sort, no ready checks beyond the selection
// frontier, and no allocations. Readiness cannot change during the
// phase (completions only land in processEvents), so skipping an
// unready entry for the rest of the cycle is sound. The issued set is
// identical to the old gather-sort-scan: both consider ready entries
// oldest-first and skip classes whose units are exhausted.
func (c *CPU) issue(now int64) {
	// Compact queues, reclaiming the slots of squashed and issued
	// entries so this cycle's dispatch sees true occupancy.
	total := 0
	for q := range c.queues {
		kept := c.queues[q][:0]
		for _, d := range c.queues[q] {
			if d.state != stInQueue {
				continue
			}
			kept = append(kept, d)
		}
		c.queues[q] = kept
		total += len(kept)
	}
	if total == 0 {
		return
	}

	budget := c.cfg.IssueWidth
	units := [isa.NumQueues]int{
		isa.QInt: c.cfg.IntUnits,
		isa.QFP:  c.cfg.FPUnits,
		isa.QLS:  c.cfg.LSUnits,
	}
	var idx [isa.NumQueues]int
	for budget > 0 {
		best := -1
		var bestAge uint64
		for q := range c.queues {
			if units[q] == 0 {
				continue
			}
			qs := c.queues[q]
			i := idx[q]
			for i < len(qs) {
				d := qs[i]
				if c.regReady(d.fpRegs, d.src1Phys) && c.regReady(d.fpRegs, d.src2Phys) {
					break
				}
				i++
			}
			idx[q] = i
			if i < len(qs) && (best < 0 || qs[i].Age < bestAge) {
				best = q
				bestAge = qs[i].Age
			}
		}
		if best < 0 {
			return
		}
		c.issueOne(c.queues[best][idx[best]], now)
		idx[best]++
		units[best]--
		budget--
	}
}

// issueOne launches one instruction into execution.
func (c *CPU) issueOne(d *DynInst, now int64) {
	d.state = stExecuting
	c.threads[d.Thread].inQueues--
	c.issued[d.Thread]++

	switch d.U.Class {
	case isa.IntALU:
		d.completeAt = now + 1
		c.schedule(d.completeAt, evComplete, d)
	case isa.IntMul:
		d.completeAt = now + int64(c.cfg.IntMulLatency)
		c.schedule(d.completeAt, evComplete, d)
	case isa.FPALU, isa.FPMul:
		d.completeAt = now + int64(c.cfg.FPLatency)
		c.schedule(d.completeAt, evComplete, d)
	case isa.CondBranch, isa.Jump, isa.Call, isa.Ret:
		d.completeAt = now + 1
		c.schedule(d.completeAt, evBranchResolve, d)
	case isa.Load:
		// One cycle of address generation, then the D-cache access.
		accessAt := now + 1
		d.MemRes = c.mem.Load(d.Thread, d.U.Mem.Addr, accessAt)
		d.completeAt = d.MemRes.CompleteAt
		c.schedule(accessAt, evLoadAccess, d)
		c.schedule(d.completeAt, evComplete, d)
		if d.MemRes.L2Miss {
			l2At := accessAt + int64(c.cfg.DCache.HitLatency) + int64(c.cfg.L1ToL2Latency)
			c.schedule(l2At, evL2Miss, d)
		}
		if d.MemRes.SawMiss() {
			if ret := d.completeAt - 2; ret > accessAt {
				c.schedule(ret, evLoadReturning, d)
			}
		}
	case isa.Store:
		// Stores update cache/TLB state at the access but retire
		// through a store buffer: the pipeline sees them complete right
		// after address generation.
		accessAt := now + 1
		d.MemRes = c.mem.Store(d.Thread, d.U.Mem.Addr, accessAt)
		d.completeAt = accessAt + 1
		c.schedule(d.completeAt, evComplete, d)
	}
}

// dispatch renames and inserts front-end instructions into the issue
// queues, up to DecodeWidth per cycle, visiting threads in the fetch
// policy's priority order from the previous fetch cycle (falling back
// to round-robin before the first fetch).
func (c *CPU) dispatch(now int64) {
	budget := c.cfg.DecodeWidth
	n := len(c.threads)
	order := c.dispatchOrder
	if len(order) != n {
		order = order[:0]
		start := int(now) % n
		for i := 0; i < n; i++ {
			order = append(order, (start+i)%n)
		}
	}
	progress := true
	for budget > 0 && progress {
		progress = false
		for _, tid := range order {
			if budget == 0 {
				break
			}
			if c.dispatchOne(c.threads[tid], now) {
				budget--
				progress = true
			}
		}
	}
}

// dispatchOne tries to rename and dispatch t's oldest front-end
// instruction; it reports whether one was dispatched. In-order: the
// first blocked instruction stalls the thread.
func (c *CPU) dispatchOne(t *thread, now int64) bool {
	if t.feq.len() == 0 {
		return false
	}
	d := t.feq.front()
	if d.frontEndReadyAt > now {
		return false
	}
	if t.rob.len() >= c.cfg.ROBSizePerThread {
		return false
	}
	q := d.U.Class.QueueFor()
	if len(c.queues[q]) >= c.qCap[q] {
		return false
	}
	fp := d.fpRegs
	if d.U.HasDest() {
		// Check before popping so a failed allocation leaves no trace.
		if fp && len(c.fpFree) == 0 || !fp && len(c.intFree) == 0 {
			return false
		}
	}

	// Rename: read sources, then allocate the destination.
	d.src1Phys = c.lookupMap(t, fp, d.U.Src1)
	d.src2Phys = c.lookupMap(t, fp, d.U.Src2)
	d.destPhys, d.prevPhys = -1, -1
	if d.U.HasDest() {
		p := c.allocReg(fp)
		arch := d.U.Dest
		if fp {
			d.prevPhys = t.fpMap[arch]
			t.fpMap[arch] = p
			c.fpReady.clear(p)
		} else {
			d.prevPhys = t.intMap[arch]
			t.intMap[arch] = p
			c.intReady.clear(p)
		}
		d.destPhys = p
	}

	d.state = stInQueue
	// Insert keeping the queue age-sorted for issue's merge. New
	// dispatches are usually the youngest in the queue (ages follow
	// fetch order), so the common case is a plain append.
	qs := append(c.queues[q], d)
	for i := len(qs) - 1; i > 0 && qs[i-1].Age > d.Age; i-- {
		qs[i], qs[i-1] = qs[i-1], qs[i]
	}
	c.queues[q] = qs
	t.inQueues++
	t.rob.push(d)
	t.feq.popFront()
	return true
}

func (c *CPU) lookupMap(t *thread, fp bool, r isa.Reg) int32 {
	if r == isa.NoReg {
		return -1
	}
	if fp {
		return t.fpMap[r]
	}
	return t.intMap[r]
}

// fetch asks the policy for thread priorities and fills the fetch
// bandwidth following the x.y mechanism: up to FetchThreads threads
// supply up to FetchWidth total instructions, each thread fetching
// sequentially until a predicted-taken branch or I-cache line boundary.
func (c *CPU) fetch(now int64) {
	order := c.policy.Priority(now, c.prioBuf[:0])
	c.prioBuf = order[:0]

	// Record the order for next cycle's dispatch, appending any threads
	// the policy omitted (gated) at the tail.
	c.dispatchOrder = c.dispatchOrder[:0]
	seen := 0
	for _, tid := range order {
		c.dispatchOrder = append(c.dispatchOrder, tid)
		seen |= 1 << tid
	}
	for t := 0; t < len(c.threads); t++ {
		if seen&(1<<t) == 0 {
			c.dispatchOrder = append(c.dispatchOrder, t)
		}
	}
	if c.gateSampling {
		c.attributeGates(seen)
	}

	slots := c.cfg.FetchWidth
	threadsUsed := 0
	for _, tid := range order {
		if threadsUsed >= c.cfg.FetchThreads || slots == 0 {
			break
		}
		t := c.threads[tid]
		if t.icacheReadyAt > now {
			t.stats.FetchBlockedICache++
			continue
		}
		if t.redirectAt > now {
			t.stats.FetchBlockedRedirect++
			continue
		}
		if t.feq.len() >= c.cfg.FetchQueueSize {
			t.stats.FetchBlockedFeqFull++
			continue
		}
		threadsUsed++
		t.stats.FetchCycles++
		slots -= c.fetchFrom(t, slots, now)
	}
}

// attributeGates charges this cycle to each thread's fetch-gate
// decision class — the policy's own classification when it exposes
// one, otherwise the structural view of the priority list (listed =
// normal, omitted = gated). Called only while gate sampling is
// enabled; it allocates nothing.
func (c *CPU) attributeGates(seen int) {
	for t := range c.threads {
		cls := GateNormal
		switch {
		case c.classifier != nil:
			cls = c.classifier.GateClass(t)
		case seen&(1<<t) == 0:
			cls = GateGated
		}
		c.gateCycles[t][cls]++
	}
}

// fetchFrom fetches up to budget instructions from t, returning the
// number fetched.
func (c *CPU) fetchFrom(t *thread, budget int, now int64) int {
	first := t.peek()
	lineMask := ^uint64(c.cfg.ICache.LineBytes - 1)
	if t.ifillValid && first.PC&lineMask == t.ifillLine {
		// The outstanding fill carries exactly this line: consume the
		// forwarded data and refresh the cache copy.
		t.ifillValid = false
		c.mem.TouchI(first.PC)
	} else {
		t.ifillValid = false
		fr := c.mem.Fetch(t.id, first.PC, now)
		if fr.Miss {
			t.icacheReadyAt = fr.CompleteAt
			t.ifillLine = first.PC & lineMask
			t.ifillValid = true
			return 0
		}
	}
	lineStart := first.PC & lineMask

	n := 0
	for n < budget && t.feq.len() < c.cfg.FetchQueueSize {
		u := t.peek()
		if u.PC&lineMask != lineStart {
			break
		}
		uop := t.consume()
		d := c.arena.get()
		d.U = uop
		d.Thread = t.id
		d.Age = c.ageCtr
		d.fpRegs = usesFPRegs(uop.Class)
		d.destPhys, d.prevPhys, d.src1Phys, d.src2Phys = -1, -1, -1, -1
		d.frontEndReadyAt = now + int64(c.cfg.FrontEndLatency)
		c.ageCtr++
		t.stats.Fetched++
		if uop.WrongPath {
			t.stats.WrongPathFetched++
		}
		n++
		t.feq.push(d)
		c.policy.OnFetch(d, now)

		if !uop.Class.IsBranch() {
			continue
		}
		// Branch handling: wrong-path branches bypass the predictor and
		// simply steer wrong-path fetch; correct-path branches are
		// predicted, and a misprediction flips the thread into
		// wrong-path mode at the bogus next PC.
		if uop.WrongPath {
			if uop.Branch.Taken {
				break // fetch stops at a taken branch
			}
			continue
		}
		d.Pred = c.bp.Predict(t.id, &d.U)
		if d.Pred.Mispredicted {
			t.pendingBranch = d
			t.wrongPath = true
			t.src.StartWrongPath(uop.Seq, t.src.WrongPathPC(&d.U, d.Pred.Taken))
		} else if d.Pred.Resteer {
			// Decode recomputes the direct target: a short fetch bubble.
			t.redirectAt = now + resteerPenalty
		}
		if d.Pred.Taken {
			break // the front end redirects; no more fetch this cycle
		}
	}
	return n
}

// resteerPenalty is the fetch bubble for a BTB miss on a direct branch
// whose target decode recomputes (two decode stages).
const resteerPenalty = 2
