package pipeline

// FetchPolicy is the contract between the fetch stage and an I-fetch
// policy (ICOUNT, STALL, FLUSH, DG, PDG, DWarn). The pipeline notifies
// the policy of the dynamic events a real front end would observe, and
// asks it once per cycle for the thread fetch priority order.
//
// Implementations live in internal/core.
type FetchPolicy interface {
	// Name identifies the policy in output.
	Name() string

	// Attach is called once when the policy is bound to a CPU, before
	// the first cycle. Policies size their per-thread state here.
	Attach(cpu *CPU)

	// Tick is called once per cycle after events are processed and
	// before Priority; timing-based detectors (the 15-cycle L2-miss
	// declaration of STALL/FLUSH) advance here.
	Tick(now int64)

	// Priority appends to dst the threads allowed to fetch this cycle,
	// highest priority first, and returns the result. Threads omitted
	// are gated. The pipeline may fetch from fewer threads than listed
	// (fetch mechanism limits, I-cache misses, full queues).
	Priority(now int64, dst []int) []int

	// OnFetch is called for every fetched uop (including wrong-path
	// uops). PDG predicts load L1 misses here.
	OnFetch(inst *DynInst, now int64)

	// OnLoadAccess is called when a load's D-cache access completes its
	// tag check: the L1 hit/miss and DTLB outcomes are architecturally
	// visible at this point. (inst.MemRes also carries the L2 verdict
	// and completion time; honest policies must not read those — the
	// pipeline delivers OnL2Miss/OnLoadReturning at the right cycles.)
	OnLoadAccess(inst *DynInst, now int64)

	// OnL2Miss is called when the L2 tag check for a load actually
	// fails (L1 access + L2 transit later). DWarn's hybrid gate uses it.
	OnL2Miss(inst *DynInst, now int64)

	// OnLoadReturning is the 2-cycle advance indication that a missing
	// load's data is arriving (the paper gives STALL and FLUSH this
	// signal to reduce restart bubbles).
	OnLoadReturning(inst *DynInst, now int64)

	// OnLoadReturn is called when a missing load's data arrives and the
	// thread's in-flight miss counter has been decremented.
	OnLoadReturn(inst *DynInst, now int64)

	// OnSquash is called for every in-flight load the pipeline squashes
	// whose miss was still outstanding, so gating counters stay
	// balanced. It is also called for the offending load of a policy
	// gate if that load itself is squashed.
	OnSquash(inst *DynInst, now int64)

	// Reset clears policy state between runs (microarchitectural state
	// such as PDG's predictor may be preserved; gates must clear).
	Reset()
}

// GateClass is the fetch-gate treatment a policy applied to one thread
// for one cycle — the decision the timeline's gate attribution charges
// cycles to.
type GateClass uint8

const (
	// GateNormal: listed at full priority.
	GateNormal GateClass = iota
	// GateDemoted: listed, but behind the normal group (DWarn's Dmiss
	// group).
	GateDemoted
	// GateGated: withheld from fetch (including a gated thread kept
	// running only by the keep-one-thread rule).
	GateGated
	// NumGateClasses sizes per-class counter arrays.
	NumGateClasses
)

// String returns the class's lowercase name.
func (g GateClass) String() string {
	switch g {
	case GateNormal:
		return "normal"
	case GateDemoted:
		return "demoted"
	case GateGated:
		return "gated"
	}
	return "unknown"
}

// ClassifyingPolicy is optionally implemented by policies that can
// attribute each thread's fetch-gate decision class. GateClass reports
// thread t's class as of the latest Priority call; the pipeline reads
// it immediately after Priority each cycle while gate sampling is
// enabled. Policies without it fall back to the pipeline's structural
// view: listed threads are normal, omitted threads are gated.
type ClassifyingPolicy interface {
	GateClass(t int) GateClass
}

// ParameterizedPolicy is optionally implemented by policies whose
// behaviour is tuned by parameters Name() does not encode (declaration
// thresholds, gate counts). Params returns a stable, human-readable
// rendering of those parameters; content-addressed caches fold it into
// their keys so a threshold sweep never collides with the base policy.
type ParameterizedPolicy interface {
	Params() string
}
