package pipeline

import (
	"cmp"
	"fmt"
	"slices"

	"dwarn/internal/bpred"
	"dwarn/internal/config"
	"dwarn/internal/isa"
	"dwarn/internal/mem/hierarchy"
	"dwarn/internal/workload"
)

// CPUStats aggregates whole-core counters for a measurement interval.
type CPUStats struct {
	Cycles int64
}

// regBitset tracks physical-register ready bits, one bit per register.
// The hot regReady/setRegReady paths touch a handful of cache lines
// instead of a 384-entry []bool.
type regBitset []uint64

func newRegBitset(n int) regBitset { return make(regBitset, (n+63)/64) }

func (b regBitset) get(p int32) bool { return b[p>>6]&(1<<(uint32(p)&63)) != 0 }
func (b regBitset) set(p int32)      { b[p>>6] |= 1 << (uint32(p) & 63) }
func (b regBitset) clear(p int32)    { b[p>>6] &^= 1 << (uint32(p) & 63) }

// CPU is one simulated SMT core running a fixed set of threads under a
// fetch policy. It is not safe for concurrent use; run one CPU per
// goroutine.
type CPU struct {
	cfg    *config.Processor
	policy FetchPolicy
	mem    *hierarchy.Hierarchy
	bp     *bpred.Predictor

	threads []*thread

	now    int64
	ageCtr uint64
	events eventQueue
	arena  instArena

	// Shared physical register files: free lists and ready bitsets.
	intFree  []int32
	fpFree   []int32
	intReady regBitset
	fpReady  regBitset

	// Shared issue queues.
	queues [isa.NumQueues][]*DynInst
	qCap   [isa.NumQueues]int

	// Scratch buffers reused across cycles.
	prioBuf   []int
	replayBuf []isa.Uop

	// dispatchOrder is the front-end thread order for this cycle: the
	// policy's fetch priority with any omitted (gated) threads at the
	// end. The in-order front end is a unit — a thread the policy has
	// deprioritised should not push buffered instructions into the
	// shared queues ahead of preferred threads.
	dispatchOrder []int

	// lastCommitAt backs the livelock detector.
	lastCommitAt int64

	// Observability counters kept outside ThreadStats: ThreadStats
	// feeds the golden counter digests, so telemetry-only counters live
	// here. issued counts instructions launched into execution per
	// thread; gateCycles attributes each cycle's fetch-gate decision
	// class per thread, filled only while gate sampling is enabled
	// (timeline runs) via the policy's ClassifyingPolicy view when it
	// has one.
	issued       []uint64
	gateCycles   [][NumGateClasses]uint64
	gateSampling bool
	classifier   ClassifyingPolicy

	// Stats for the current measurement interval.
	Stats CPUStats
}

// eventHorizon bounds how far ahead of now any event can be scheduled:
// the worst-case load (DTLB miss, L1 miss, L2 miss) plus slack for the
// address-generation cycle and the longest execution latencies. The
// calendar queue's ring is sized from it so overflow stays empty.
func eventHorizon(cfg *config.Processor) int64 {
	h := int64(cfg.TLBMissPenalty) + int64(cfg.DCache.HitLatency) +
		int64(cfg.L1ToL2Latency) + int64(cfg.MemLatency)
	if l := int64(cfg.FPLatency); l > int64(cfg.IntMulLatency) {
		h += l
	} else {
		h += int64(cfg.IntMulLatency)
	}
	return h + 8
}

// New builds a CPU running one thread per uop source under the given
// policy. len(srcs) must not exceed cfg.HardwareContexts. Sources may
// be live synthetic generators or trace replayers — the pipeline sees
// only the workload.Source seam.
func New(cfg *config.Processor, policy FetchPolicy, srcs []workload.Source) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("pipeline: need at least one thread")
	}
	if len(srcs) > cfg.HardwareContexts {
		return nil, fmt.Errorf("pipeline: %d threads exceed %d hardware contexts", len(srcs), cfg.HardwareContexts)
	}
	n := len(srcs)
	c := &CPU{
		cfg:    cfg,
		policy: policy,
		mem:    hierarchy.New(cfg, n),
		bp:     bpred.New(cfg.Bpred, n),
		now:    1,
	}
	c.events.init(eventHorizon(cfg), c.now)
	c.qCap[isa.QInt] = cfg.IntQueueSize
	c.qCap[isa.QFP] = cfg.FPQueueSize
	c.qCap[isa.QLS] = cfg.LSQueueSize

	// Physical registers: each running context permanently holds its 32
	// architectural mappings; the remainder forms the shared rename pool.
	c.intReady = newRegBitset(cfg.PhysIntRegs)
	c.fpReady = newRegBitset(cfg.PhysFPRegs)
	c.threads = make([]*thread, n)
	for i, src := range srcs {
		t := &thread{id: i, src: src}
		for a := 0; a < isa.NumIntRegs; a++ {
			p := int32(i*isa.NumIntRegs + a)
			t.intMap[a] = p
			c.intReady.set(p)
		}
		for a := 0; a < isa.NumFPRegs; a++ {
			p := int32(i*isa.NumFPRegs + a)
			t.fpMap[a] = p
			c.fpReady.set(p)
		}
		c.threads[i] = t
	}
	for p := int32(n * isa.NumIntRegs); p < int32(cfg.PhysIntRegs); p++ {
		c.intFree = append(c.intFree, p)
	}
	for p := int32(n * isa.NumFPRegs); p < int32(cfg.PhysFPRegs); p++ {
		c.fpFree = append(c.fpFree, p)
	}
	c.issued = make([]uint64, n)
	c.gateCycles = make([][NumGateClasses]uint64, n)

	policy.Attach(c)
	return c, nil
}

// Config returns the machine description.
func (c *CPU) Config() *config.Processor { return c.cfg }

// Mem returns the memory hierarchy (read access for experiments/tests).
func (c *CPU) Mem() *hierarchy.Hierarchy { return c.mem }

// Bpred returns the branch predictor (read access for experiments/tests).
func (c *CPU) Bpred() *bpred.Predictor { return c.bp }

// Policy returns the attached fetch policy.
func (c *CPU) Policy() FetchPolicy { return c.policy }

// NumThreads returns the number of running hardware contexts.
func (c *CPU) NumThreads() int { return len(c.threads) }

// Now returns the current cycle.
func (c *CPU) Now() int64 { return c.now }

// PreIssueCount returns the number of thread t's instructions in the
// front end and issue queues — the ICOUNT priority input.
func (c *CPU) PreIssueCount(t int) int {
	th := c.threads[t]
	return th.feq.len() + th.inQueues
}

// L1DMissInFlight returns thread t's outstanding L1 data-miss count —
// the hardware counter DWarn and DG consult.
func (c *CPU) L1DMissInFlight(t int) int { return c.threads[t].l1MissInFlight }

// ROBOccupancy returns the number of in-flight instructions in thread
// t's reorder buffer.
func (c *CPU) ROBOccupancy(t int) int { return c.threads[t].rob.len() }

// ThreadStats returns a copy of thread t's counters for the current
// measurement interval.
func (c *CPU) ThreadStats(t int) ThreadStats { return c.threads[t].stats }

// IssuedUops returns thread t's instructions launched into execution
// during the current measurement interval. Kept outside ThreadStats so
// the golden counter digests (which hash ThreadStats verbatim) are
// unchanged by telemetry.
func (c *CPU) IssuedUops(t int) uint64 { return c.issued[t] }

// EnableGateSampling turns on per-cycle fetch-gate attribution: from
// now on each cycle charges every thread's GateCycles bucket with the
// policy's decision class. Off by default so runs without timeline
// sampling pay nothing for it.
func (c *CPU) EnableGateSampling() {
	c.gateSampling = true
	c.classifier, _ = c.policy.(ClassifyingPolicy)
}

// GateCycles returns thread t's cycles-per-gate-class counters for the
// current measurement interval (all zero unless EnableGateSampling was
// called).
func (c *CPU) GateCycles(t int) [NumGateClasses]uint64 { return c.gateCycles[t] }

// ResetStats zeroes all measurement counters (pipeline, memory,
// predictor) while preserving microarchitectural state, so measurement
// starts from a warmed-up machine.
func (c *CPU) ResetStats() {
	c.Stats = CPUStats{}
	for _, t := range c.threads {
		t.stats = ThreadStats{}
	}
	for i := range c.issued {
		c.issued[i] = 0
		c.gateCycles[i] = [NumGateClasses]uint64{}
	}
	c.mem.ResetStats()
	for i := range c.bp.Stats {
		c.bp.Stats[i] = bpred.Stats{}
	}
	c.lastCommitAt = c.now
}

func (c *CPU) schedule(at int64, kind evKind, inst *DynInst) {
	c.events.schedule(at, kind, inst)
}

// allocReg pops a free physical register for the given space, returning
// -1 if none is available.
func (c *CPU) allocReg(fp bool) int32 {
	if fp {
		if n := len(c.fpFree); n > 0 {
			p := c.fpFree[n-1]
			c.fpFree = c.fpFree[:n-1]
			return p
		}
		return -1
	}
	if n := len(c.intFree); n > 0 {
		p := c.intFree[n-1]
		c.intFree = c.intFree[:n-1]
		return p
	}
	return -1
}

func (c *CPU) freeReg(fp bool, p int32) {
	if fp {
		c.fpFree = append(c.fpFree, p)
	} else {
		c.intFree = append(c.intFree, p)
	}
}

// FreeIntRegs and FreeFPRegs report rename-pool headroom (observability
// for tests and resource-aware policies).
func (c *CPU) FreeIntRegs() int { return len(c.intFree) }
func (c *CPU) FreeFPRegs() int  { return len(c.fpFree) }

// QueueLen returns the current occupancy of issue queue q.
func (c *CPU) QueueLen(q isa.Queue) int { return len(c.queues[q]) }

// usesFPRegs reports which register space an instruction's operands live
// in (the synthetic ISA never mixes spaces within one instruction).
func usesFPRegs(class isa.Class) bool { return class.UsesFP() }

// regReady reports whether physical register p of the given space holds
// a value.
func (c *CPU) regReady(fp bool, p int32) bool {
	if p < 0 {
		return true
	}
	if fp {
		return c.fpReady.get(p)
	}
	return c.intReady.get(p)
}

func (c *CPU) setRegReady(fp bool, p int32) {
	if p < 0 {
		return
	}
	if fp {
		c.fpReady.set(p)
	} else {
		c.intReady.set(p)
	}
}

// FlushAfter squashes every instruction of inst's thread younger than
// inst, queueing the squashed correct-path instructions for re-fetch.
// It implements the FLUSH policy's response action; the offending load
// itself survives. It returns the number of squashed instructions.
func (c *CPU) FlushAfter(inst *DynInst) int {
	if inst.Squashed() {
		return 0
	}
	t := c.threads[inst.Thread]
	n := c.squashYounger(t, inst.Age, true)
	t.stats.FlushSquashed += uint64(n)
	return n
}

// squashYounger removes every instruction of t younger than age from the
// pipeline. When replay is true (policy flush) the squashed correct-path
// uops are queued for re-fetch in program order; when false (branch
// misprediction) they are dropped. Returns the number squashed.
//
// Squashed instructions are recycled into the arena immediately: their
// pending events are invalidated by the generation bump, and the lazy
// issue-queue references are compacted away in this same cycle's issue
// phase (squashes only happen in the event/tick phases), before fetch
// can reuse the instruction.
func (c *CPU) squashYounger(t *thread, age uint64, replay bool) int {
	wasWP := t.wrongPath
	// A peeked-but-unfetched uop must not leak: push a correct-path one
	// back onto the replay stack (it is younger than everything being
	// squashed, so it is re-fetched after them), drop a wrong-path one.
	t.dropPeek(wasWP)

	count := 0
	// The oldest squashed correct-path branch decides the predictor
	// restore point. Its checkpoint is copied out because the DynInst is
	// recycled before the walk finishes.
	var oldestBranchAge uint64
	var oldestBranchPred bpred.Prediction
	haveBranch := false
	pendingSquashed := false
	replayBuf := c.replayBuf[:0]

	note := func(d *DynInst) {
		count++
		if d.U.Class.IsBranch() && !d.U.WrongPath {
			if !haveBranch || d.Age < oldestBranchAge {
				oldestBranchAge, oldestBranchPred, haveBranch = d.Age, d.Pred, true
			}
		}
		if d.U.Class == isa.Load {
			// Policies tracking this load (miss counters, PDG's
			// predicted-miss count) rebalance here.
			c.policy.OnSquash(d, c.now)
		}
		if replay && !d.U.WrongPath {
			replayBuf = append(replayBuf, d.U)
		}
		if d == t.pendingBranch {
			pendingSquashed = true
		}
		c.arena.put(d)
	}

	// Front-end queue first (all entries are younger than any dispatched
	// instruction, but guard on age anyway); keep survivors in order.
	if n := t.feq.len(); n > 0 {
		kept := 0
		for i := 0; i < n; i++ {
			d := t.feq.at(i)
			if d.Age > age {
				d.state = stSquashed
				note(d)
			} else {
				t.feq.buf[t.feq.head+kept] = d
				kept++
			}
		}
		t.feq.truncate(kept)
	}

	// ROB tail walk: undo renaming youngest-first so the map ends up at
	// its pre-squash state.
	cut := t.rob.len()
	for cut > 0 && t.rob.at(cut-1).Age > age {
		d := t.rob.at(cut - 1)
		cut--
		c.squashInFlight(t, d)
		note(d)
	}
	t.rob.truncate(cut)

	// Replay order: squashed uops are older than whatever was already
	// on the stack (including the peeked uop pushed above), so they are
	// fetched first — pushed last, youngest-to-oldest. Correct-path uops
	// of one thread have strictly increasing Seq, which is exactly
	// program order.
	if replay && len(replayBuf) > 0 {
		sortUopsBySeq(replayBuf)
		for i := len(replayBuf) - 1; i >= 0; i-- {
			t.replay = append(t.replay, replayBuf[i])
		}
	}
	c.replayBuf = replayBuf[:0]

	// Restore speculative predictor state to the oldest squashed branch.
	if haveBranch {
		c.bp.Restore(t.id, oldestBranchPred.Before)
	}

	// If the unresolved mispredicted branch died, leave wrong-path mode:
	// fetch resumes from the replay stack / generator.
	if pendingSquashed {
		t.pendingBranch = nil
		t.wrongPath = false
	}
	return count
}

// squashInFlight tears down one dispatched instruction: issue-queue
// slot, rename mapping, physical register, and the thread's in-flight
// miss counter.
func (c *CPU) squashInFlight(t *thread, d *DynInst) {
	if d.state == stInQueue {
		t.inQueues--
		// The queue slice is compacted lazily at the next issue phase.
	}
	if d.U.Class == isa.Load && d.missCounted {
		t.l1MissInFlight--
		d.missCounted = false
	}
	if d.destPhys >= 0 {
		fp := d.fpRegs
		// Restore the previous mapping and recycle the register.
		arch := d.U.Dest
		if fp {
			t.fpMap[arch] = d.prevPhys
		} else {
			t.intMap[arch] = d.prevPhys
		}
		c.freeReg(fp, d.destPhys)
		d.destPhys = -1
	}
	d.state = stSquashed
}

// seqSortCutoff is the batch size above which sortUopsBySeq switches
// from insertion sort to the library sort: full-ROB FLUSH squashes on
// 8-thread MEM workloads hand it hundreds of uops, where insertion
// sort's O(n²) worst case dominated squash cost.
const seqSortCutoff = 32

// sortUopsBySeq sorts by dynamic sequence number (program order for
// correct-path uops of a single thread). Small, mostly-ordered batches
// use insertion sort; large flush batches fall back to slices.SortFunc.
// Seq values are unique within a batch, so both produce the same order.
func sortUopsBySeq(us []isa.Uop) {
	if len(us) > seqSortCutoff {
		slices.SortFunc(us, func(a, b isa.Uop) int { return cmp.Compare(a.Seq, b.Seq) })
		return
	}
	for i := 1; i < len(us); i++ {
		for j := i; j > 0 && us[j].Seq < us[j-1].Seq; j-- {
			us[j], us[j-1] = us[j-1], us[j]
		}
	}
}

// DumpState renders a diagnostic snapshot of the pipeline for debugging
// and livelock reports.
func (c *CPU) DumpState() string {
	s := fmt.Sprintf("cycle %d: freeInt=%d freeFP=%d q[int]=%d q[fp]=%d q[ls]=%d events=%d\n",
		c.now, len(c.intFree), len(c.fpFree),
		len(c.queues[0]), len(c.queues[1]), len(c.queues[2]), c.events.len())
	for _, t := range c.threads {
		s += fmt.Sprintf("  t%d: feq=%d rob=%d inQ=%d missInFlight=%d wrongPath=%v replay=%d icacheReadyAt=%d redirectAt=%d\n",
			t.id, t.feq.len(), t.rob.len(), t.inQueues, t.l1MissInFlight, t.wrongPath, len(t.replay), t.icacheReadyAt, t.redirectAt)
		if t.rob.len() > 0 {
			d := t.rob.front()
			s += fmt.Sprintf("      robHead: class=%v state=%d age=%d seq=%d wp=%v completeAt=%d pc=%x\n",
				d.U.Class, d.state, d.Age, d.U.Seq, d.U.WrongPath, d.completeAt, d.U.PC)
		}
		if t.feq.len() > 0 {
			d := t.feq.front()
			s += fmt.Sprintf("      feqHead: class=%v state=%d age=%d readyAt=%d\n", d.U.Class, d.state, d.Age, d.frontEndReadyAt)
		}
	}
	return s
}

// CheckInvariants validates the resource-accounting invariants the
// squash/flush/commit machinery must preserve. Tests call it after
// arbitrary run prefixes; a violation indicates a leak (registers,
// queue slots, miss counters) that would silently skew results.
func (c *CPU) CheckInvariants() error {
	// Physical registers: every architecturally mapped register and
	// every in-flight destination must be live exactly once; together
	// with the free lists they must account for the whole file.
	intLive := make(map[int32]string)
	fpLive := make(map[int32]string)
	claim := func(m map[int32]string, p int32, who string) error {
		if p < 0 {
			return nil
		}
		if prev, ok := m[p]; ok {
			return fmt.Errorf("pipeline: phys reg %d claimed by both %s and %s", p, prev, who)
		}
		m[p] = who
		return nil
	}
	for _, t := range c.threads {
		for a, p := range t.intMap {
			if err := claim(intLive, p, fmt.Sprintf("t%d intMap[r%d]", t.id, a)); err != nil {
				return err
			}
		}
		for a, p := range t.fpMap {
			if err := claim(fpLive, p, fmt.Sprintf("t%d fpMap[f%d]", t.id, a)); err != nil {
				return err
			}
		}
		for i := 0; i < t.rob.len(); i++ {
			d := t.rob.at(i)
			if d.destPhys < 0 {
				continue
			}
			m := intLive
			if usesFPRegs(d.U.Class) {
				m = fpLive
			}
			// The current mapping for the dest arch reg is the youngest
			// writer's reg; older in-flight writers hold regs not in
			// any map. Either way the reg must not be free.
			if _, mapped := m[d.destPhys]; !mapped {
				if err := claim(m, d.destPhys, fmt.Sprintf("t%d rob seq %d", t.id, d.U.Seq)); err != nil {
					return err
				}
			}
		}
	}
	for _, p := range c.intFree {
		if who, ok := intLive[p]; ok {
			return fmt.Errorf("pipeline: int reg %d both free and live (%s)", p, who)
		}
		intLive[p] = "free"
	}
	for _, p := range c.fpFree {
		if who, ok := fpLive[p]; ok {
			return fmt.Errorf("pipeline: fp reg %d both free and live (%s)", p, who)
		}
		fpLive[p] = "free"
	}

	// Issue queues: per-thread inQueues must match the queue contents,
	// no queue may exceed its capacity, and every queue must be
	// age-sorted (issue's oldest-first merge depends on it).
	inQ := make([]int, len(c.threads))
	for q := range c.queues {
		live := 0
		for i, d := range c.queues[q] {
			if d.state == stInQueue {
				inQ[d.Thread]++
				live++
			}
			if i > 0 && d.Age <= c.queues[q][i-1].Age {
				return fmt.Errorf("pipeline: queue %d not age-sorted at %d", q, i)
			}
		}
		if live > c.qCap[q] {
			return fmt.Errorf("pipeline: queue %d holds %d live entries, capacity %d", q, live, c.qCap[q])
		}
	}
	for _, t := range c.threads {
		if t.inQueues != inQ[t.id] {
			return fmt.Errorf("pipeline: t%d inQueues=%d but queues hold %d", t.id, t.inQueues, inQ[t.id])
		}
		if t.l1MissInFlight < 0 {
			return fmt.Errorf("pipeline: t%d negative miss counter %d", t.id, t.l1MissInFlight)
		}
		if t.rob.len() > c.cfg.ROBSizePerThread {
			return fmt.Errorf("pipeline: t%d ROB %d exceeds %d", t.id, t.rob.len(), c.cfg.ROBSizePerThread)
		}
		// ROB must be in age order with no squashed entries.
		for i := 1; i < t.rob.len(); i++ {
			if t.rob.at(i).Age <= t.rob.at(i-1).Age {
				return fmt.Errorf("pipeline: t%d ROB out of order at %d", t.id, i)
			}
		}
		for i := 0; i < t.rob.len(); i++ {
			if st := t.rob.at(i).state; st == stSquashed || st == stCommitted {
				return fmt.Errorf("pipeline: t%d ROB holds %v entry", t.id, st)
			}
		}
	}
	return nil
}
