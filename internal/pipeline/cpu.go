package pipeline

import (
	"container/heap"
	"fmt"

	"dwarn/internal/bpred"
	"dwarn/internal/config"
	"dwarn/internal/isa"
	"dwarn/internal/mem/hierarchy"
	"dwarn/internal/workload"
)

// CPUStats aggregates whole-core counters for a measurement interval.
type CPUStats struct {
	Cycles int64
}

// CPU is one simulated SMT core running a fixed set of threads under a
// fetch policy. It is not safe for concurrent use; run one CPU per
// goroutine.
type CPU struct {
	cfg    *config.Processor
	policy FetchPolicy
	mem    *hierarchy.Hierarchy
	bp     *bpred.Predictor

	threads []*thread

	now    int64
	ageCtr uint64
	evSeq  uint64
	events eventHeap

	// Shared physical register files: free lists and ready bits.
	intFree  []int32
	fpFree   []int32
	intReady []bool
	fpReady  []bool

	// Shared issue queues.
	queues [isa.NumQueues][]*DynInst
	qCap   [isa.NumQueues]int

	// Scratch buffers reused across cycles.
	prioBuf  []int
	readyBuf []*DynInst

	// dispatchOrder is the front-end thread order for this cycle: the
	// policy's fetch priority with any omitted (gated) threads at the
	// end. The in-order front end is a unit — a thread the policy has
	// deprioritised should not push buffered instructions into the
	// shared queues ahead of preferred threads.
	dispatchOrder []int

	// lastCommitAt backs the livelock detector.
	lastCommitAt int64

	// Stats for the current measurement interval.
	Stats CPUStats
}

// New builds a CPU running one thread per uop source under the given
// policy. len(srcs) must not exceed cfg.HardwareContexts. Sources may
// be live synthetic generators or trace replayers — the pipeline sees
// only the workload.Source seam.
func New(cfg *config.Processor, policy FetchPolicy, srcs []workload.Source) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("pipeline: need at least one thread")
	}
	if len(srcs) > cfg.HardwareContexts {
		return nil, fmt.Errorf("pipeline: %d threads exceed %d hardware contexts", len(srcs), cfg.HardwareContexts)
	}
	n := len(srcs)
	c := &CPU{
		cfg:    cfg,
		policy: policy,
		mem:    hierarchy.New(cfg, n),
		bp:     bpred.New(cfg.Bpred, n),
		now:    1,
	}
	c.qCap[isa.QInt] = cfg.IntQueueSize
	c.qCap[isa.QFP] = cfg.FPQueueSize
	c.qCap[isa.QLS] = cfg.LSQueueSize

	// Physical registers: each running context permanently holds its 32
	// architectural mappings; the remainder forms the shared rename pool.
	c.intReady = make([]bool, cfg.PhysIntRegs)
	c.fpReady = make([]bool, cfg.PhysFPRegs)
	c.threads = make([]*thread, n)
	for i, src := range srcs {
		t := &thread{id: i, src: src}
		for a := 0; a < isa.NumIntRegs; a++ {
			p := int32(i*isa.NumIntRegs + a)
			t.intMap[a] = p
			c.intReady[p] = true
		}
		for a := 0; a < isa.NumFPRegs; a++ {
			p := int32(i*isa.NumFPRegs + a)
			t.fpMap[a] = p
			c.fpReady[p] = true
		}
		c.threads[i] = t
	}
	for p := int32(n * isa.NumIntRegs); p < int32(cfg.PhysIntRegs); p++ {
		c.intFree = append(c.intFree, p)
	}
	for p := int32(n * isa.NumFPRegs); p < int32(cfg.PhysFPRegs); p++ {
		c.fpFree = append(c.fpFree, p)
	}

	policy.Attach(c)
	return c, nil
}

// Config returns the machine description.
func (c *CPU) Config() *config.Processor { return c.cfg }

// Mem returns the memory hierarchy (read access for experiments/tests).
func (c *CPU) Mem() *hierarchy.Hierarchy { return c.mem }

// Bpred returns the branch predictor (read access for experiments/tests).
func (c *CPU) Bpred() *bpred.Predictor { return c.bp }

// Policy returns the attached fetch policy.
func (c *CPU) Policy() FetchPolicy { return c.policy }

// NumThreads returns the number of running hardware contexts.
func (c *CPU) NumThreads() int { return len(c.threads) }

// Now returns the current cycle.
func (c *CPU) Now() int64 { return c.now }

// PreIssueCount returns the number of thread t's instructions in the
// front end and issue queues — the ICOUNT priority input.
func (c *CPU) PreIssueCount(t int) int {
	th := c.threads[t]
	return len(th.feq) + th.inQueues
}

// L1DMissInFlight returns thread t's outstanding L1 data-miss count —
// the hardware counter DWarn and DG consult.
func (c *CPU) L1DMissInFlight(t int) int { return c.threads[t].l1MissInFlight }

// ROBOccupancy returns the number of in-flight instructions in thread
// t's reorder buffer.
func (c *CPU) ROBOccupancy(t int) int { return len(c.threads[t].rob) }

// ThreadStats returns a copy of thread t's counters for the current
// measurement interval.
func (c *CPU) ThreadStats(t int) ThreadStats { return c.threads[t].stats }

// ResetStats zeroes all measurement counters (pipeline, memory,
// predictor) while preserving microarchitectural state, so measurement
// starts from a warmed-up machine.
func (c *CPU) ResetStats() {
	c.Stats = CPUStats{}
	for _, t := range c.threads {
		t.stats = ThreadStats{}
	}
	c.mem.ResetStats()
	for i := range c.bp.Stats {
		c.bp.Stats[i] = bpred.Stats{}
	}
	c.lastCommitAt = c.now
}

func (c *CPU) schedule(at int64, kind evKind, inst *DynInst) {
	c.evSeq++
	heap.Push(&c.events, event{at: at, seq: c.evSeq, kind: kind, inst: inst})
}

// allocReg pops a free physical register for the given space, returning
// -1 if none is available.
func (c *CPU) allocReg(fp bool) int32 {
	if fp {
		if n := len(c.fpFree); n > 0 {
			p := c.fpFree[n-1]
			c.fpFree = c.fpFree[:n-1]
			return p
		}
		return -1
	}
	if n := len(c.intFree); n > 0 {
		p := c.intFree[n-1]
		c.intFree = c.intFree[:n-1]
		return p
	}
	return -1
}

func (c *CPU) freeReg(fp bool, p int32) {
	if fp {
		c.fpFree = append(c.fpFree, p)
	} else {
		c.intFree = append(c.intFree, p)
	}
}

// FreeIntRegs and FreeFPRegs report rename-pool headroom (observability
// for tests and resource-aware policies).
func (c *CPU) FreeIntRegs() int { return len(c.intFree) }
func (c *CPU) FreeFPRegs() int  { return len(c.fpFree) }

// QueueLen returns the current occupancy of issue queue q.
func (c *CPU) QueueLen(q isa.Queue) int { return len(c.queues[q]) }

// usesFPRegs reports which register space an instruction's operands live
// in (the synthetic ISA never mixes spaces within one instruction).
func usesFPRegs(class isa.Class) bool { return class.UsesFP() }

// regReady reports whether physical register p of the given space holds
// a value.
func (c *CPU) regReady(fp bool, p int32) bool {
	if p < 0 {
		return true
	}
	if fp {
		return c.fpReady[p]
	}
	return c.intReady[p]
}

func (c *CPU) setRegReady(fp bool, p int32) {
	if p < 0 {
		return
	}
	if fp {
		c.fpReady[p] = true
	} else {
		c.intReady[p] = true
	}
}

// FlushAfter squashes every instruction of inst's thread younger than
// inst, queueing the squashed correct-path instructions for re-fetch.
// It implements the FLUSH policy's response action; the offending load
// itself survives. It returns the number of squashed instructions.
func (c *CPU) FlushAfter(inst *DynInst) int {
	if inst.Squashed() {
		return 0
	}
	t := c.threads[inst.Thread]
	n := c.squashYounger(t, inst.Age, true)
	t.stats.FlushSquashed += uint64(n)
	return n
}

// squashYounger removes every instruction of t younger than age from the
// pipeline. When replay is true (policy flush) the squashed correct-path
// uops are queued for re-fetch in program order; when false (branch
// misprediction) they are dropped. Returns the number squashed.
func (c *CPU) squashYounger(t *thread, age uint64, replay bool) int {
	wasWP := t.wrongPath
	// A peeked-but-unfetched uop must not leak: push a correct-path one
	// back onto the replay queue (it is younger than everything being
	// squashed, so it belongs behind them), drop a wrong-path one.
	t.dropPeek(wasWP)

	count := 0
	var oldestBranch *DynInst
	var replayBuf []isa.Uop

	note := func(d *DynInst) {
		count++
		if d.U.Class.IsBranch() && !d.U.WrongPath {
			if oldestBranch == nil || d.Age < oldestBranch.Age {
				oldestBranch = d
			}
		}
		if d.U.Class == isa.Load {
			// Policies tracking this load (miss counters, PDG's
			// predicted-miss count) rebalance here.
			c.policy.OnSquash(d, c.now)
		}
		if replay && !d.U.WrongPath {
			replayBuf = append(replayBuf, d.U)
		}
	}

	// Front-end queue first (all entries are younger than any dispatched
	// instruction, but guard on age anyway); keep survivors in order.
	if len(t.feq) > 0 {
		kept := t.feq[:0]
		for _, d := range t.feq {
			if d.Age > age {
				d.state = stSquashed
				note(d)
			} else {
				kept = append(kept, d)
			}
		}
		t.feq = kept
	}

	// ROB tail walk: undo renaming youngest-first so the map ends up at
	// its pre-squash state.
	cut := len(t.rob)
	for cut > 0 && t.rob[cut-1].Age > age {
		d := t.rob[cut-1]
		cut--
		c.squashInFlight(t, d)
		note(d)
	}
	t.rob = t.rob[:cut]

	// Replay queue order: squashed uops are older than whatever was
	// already queued (including the peeked uop pushed above), so they go
	// in front. Correct-path uops of one thread have strictly increasing
	// Seq, which is exactly program order.
	if replay && len(replayBuf) > 0 {
		sortUopsBySeq(replayBuf)
		ordered := make([]isa.Uop, 0, len(replayBuf)+len(t.replay))
		ordered = append(ordered, replayBuf...)
		ordered = append(ordered, t.replay...)
		t.replay = ordered
	}

	// Restore speculative predictor state to the oldest squashed branch.
	if oldestBranch != nil {
		c.bp.Restore(t.id, oldestBranch.Pred.Before)
	}

	// If the unresolved mispredicted branch died, leave wrong-path mode:
	// fetch resumes from the replay queue / generator.
	if t.pendingBranch != nil && t.pendingBranch.Age > age {
		t.pendingBranch = nil
		t.wrongPath = false
	}
	return count
}

// squashInFlight tears down one dispatched instruction: issue-queue
// slot, rename mapping, physical register, and the thread's in-flight
// miss counter.
func (c *CPU) squashInFlight(t *thread, d *DynInst) {
	if d.state == stInQueue {
		t.inQueues--
		// The queue slice is compacted lazily at the next issue phase.
	}
	if d.U.Class == isa.Load && d.missCounted {
		t.l1MissInFlight--
		d.missCounted = false
	}
	if d.destPhys >= 0 {
		fp := usesFPRegs(d.U.Class)
		// Restore the previous mapping and recycle the register.
		arch := d.U.Dest
		if fp {
			t.fpMap[arch] = d.prevPhys
		} else {
			t.intMap[arch] = d.prevPhys
		}
		c.freeReg(fp, d.destPhys)
		d.destPhys = -1
	}
	d.state = stSquashed
}

// sortUopsBySeq sorts by dynamic sequence number (program order for
// correct-path uops of a single thread). Insertion sort: squash batches
// are small and mostly ordered.
func sortUopsBySeq(us []isa.Uop) {
	for i := 1; i < len(us); i++ {
		for j := i; j > 0 && us[j].Seq < us[j-1].Seq; j-- {
			us[j], us[j-1] = us[j-1], us[j]
		}
	}
}

// DumpState renders a diagnostic snapshot of the pipeline for debugging
// and livelock reports.
func (c *CPU) DumpState() string {
	s := fmt.Sprintf("cycle %d: freeInt=%d freeFP=%d q[int]=%d q[fp]=%d q[ls]=%d events=%d\n",
		c.now, len(c.intFree), len(c.fpFree),
		len(c.queues[0]), len(c.queues[1]), len(c.queues[2]), len(c.events))
	for _, t := range c.threads {
		s += fmt.Sprintf("  t%d: feq=%d rob=%d inQ=%d missInFlight=%d wrongPath=%v replay=%d icacheReadyAt=%d redirectAt=%d\n",
			t.id, len(t.feq), len(t.rob), t.inQueues, t.l1MissInFlight, t.wrongPath, len(t.replay), t.icacheReadyAt, t.redirectAt)
		if len(t.rob) > 0 {
			d := t.rob[0]
			s += fmt.Sprintf("      robHead: class=%v state=%d age=%d seq=%d wp=%v completeAt=%d pc=%x\n",
				d.U.Class, d.state, d.Age, d.U.Seq, d.U.WrongPath, d.completeAt, d.U.PC)
		}
		if len(t.feq) > 0 {
			d := t.feq[0]
			s += fmt.Sprintf("      feqHead: class=%v state=%d age=%d readyAt=%d\n", d.U.Class, d.state, d.Age, d.frontEndReadyAt)
		}
	}
	return s
}

// CheckInvariants validates the resource-accounting invariants the
// squash/flush/commit machinery must preserve. Tests call it after
// arbitrary run prefixes; a violation indicates a leak (registers,
// queue slots, miss counters) that would silently skew results.
func (c *CPU) CheckInvariants() error {
	// Physical registers: every architecturally mapped register and
	// every in-flight destination must be live exactly once; together
	// with the free lists they must account for the whole file.
	intLive := make(map[int32]string)
	fpLive := make(map[int32]string)
	claim := func(m map[int32]string, p int32, who string) error {
		if p < 0 {
			return nil
		}
		if prev, ok := m[p]; ok {
			return fmt.Errorf("pipeline: phys reg %d claimed by both %s and %s", p, prev, who)
		}
		m[p] = who
		return nil
	}
	for _, t := range c.threads {
		for a, p := range t.intMap {
			if err := claim(intLive, p, fmt.Sprintf("t%d intMap[r%d]", t.id, a)); err != nil {
				return err
			}
		}
		for a, p := range t.fpMap {
			if err := claim(fpLive, p, fmt.Sprintf("t%d fpMap[f%d]", t.id, a)); err != nil {
				return err
			}
		}
		for _, d := range t.rob {
			if d.destPhys < 0 {
				continue
			}
			m := intLive
			if usesFPRegs(d.U.Class) {
				m = fpLive
			}
			// The current mapping for the dest arch reg is the youngest
			// writer's reg; older in-flight writers hold regs not in
			// any map. Either way the reg must not be free.
			if _, mapped := m[d.destPhys]; !mapped {
				if err := claim(m, d.destPhys, fmt.Sprintf("t%d rob seq %d", t.id, d.U.Seq)); err != nil {
					return err
				}
			}
		}
	}
	for _, p := range c.intFree {
		if who, ok := intLive[p]; ok {
			return fmt.Errorf("pipeline: int reg %d both free and live (%s)", p, who)
		}
		intLive[p] = "free"
	}
	for _, p := range c.fpFree {
		if who, ok := fpLive[p]; ok {
			return fmt.Errorf("pipeline: fp reg %d both free and live (%s)", p, who)
		}
		fpLive[p] = "free"
	}

	// Issue queues: per-thread inQueues must match the queue contents,
	// and no queue may exceed its capacity.
	inQ := make([]int, len(c.threads))
	for q := range c.queues {
		live := 0
		for _, d := range c.queues[q] {
			if d.state == stInQueue {
				inQ[d.Thread]++
				live++
			}
		}
		if live > c.qCap[q] {
			return fmt.Errorf("pipeline: queue %d holds %d live entries, capacity %d", q, live, c.qCap[q])
		}
	}
	for _, t := range c.threads {
		if t.inQueues != inQ[t.id] {
			return fmt.Errorf("pipeline: t%d inQueues=%d but queues hold %d", t.id, t.inQueues, inQ[t.id])
		}
		if t.l1MissInFlight < 0 {
			return fmt.Errorf("pipeline: t%d negative miss counter %d", t.id, t.l1MissInFlight)
		}
		if len(t.rob) > c.cfg.ROBSizePerThread {
			return fmt.Errorf("pipeline: t%d ROB %d exceeds %d", t.id, len(t.rob), c.cfg.ROBSizePerThread)
		}
		// ROB must be in age order with no squashed entries.
		for i := 1; i < len(t.rob); i++ {
			if t.rob[i].Age <= t.rob[i-1].Age {
				return fmt.Errorf("pipeline: t%d ROB out of order at %d", t.id, i)
			}
		}
		for _, d := range t.rob {
			if d.state == stSquashed || d.state == stCommitted {
				return fmt.Errorf("pipeline: t%d ROB holds %v entry", t.id, d.state)
			}
		}
	}
	return nil
}
