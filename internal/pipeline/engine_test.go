package pipeline

import (
	"math/rand"
	"sort"
	"testing"
)

// refEvent mirrors the ordering contract of the old container/heap
// implementation: events fire in (at, seq) order, seq being global
// schedule order.
type refEvent struct {
	at  int64
	seq int
}

// TestEventQueueMatchesHeapOrder drives the calendar queue with a
// randomized schedule — including events far past the horizon that take
// the overflow path — and checks that the drain order is exactly the
// (at, schedule-order) order the replaced heap produced. Each event
// gets its own DynInst so the drain can identify it by pointer.
func TestEventQueueMatchesHeapOrder(t *testing.T) {
	const horizon = 64
	rng := rand.New(rand.NewSource(7))

	for trial := 0; trial < 25; trial++ {
		var q eventQueue
		q.init(horizon, 1)

		var ref []refEvent
		ids := make(map[*DynInst]int)
		var drained []int
		now := int64(1)
		maxAt := int64(1)

		schedule := func(at int64) {
			if at <= now {
				at = now + 1
			}
			d := &DynInst{}
			ids[d] = len(ref)
			q.schedule(at, evComplete, d)
			ref = append(ref, refEvent{at: at, seq: len(ref)})
			if at > maxAt {
				maxAt = at
			}
		}

		for i := 0; i < 64; i++ {
			schedule(now + 1 + rng.Int63n(3*horizon))
		}
		for ; now <= maxAt; now++ {
			bucket := q.bucketFor(now)
			for i := 0; i < len(bucket); i++ {
				if bucket[i].at != now {
					t.Fatalf("trial %d: cycle %d drained event scheduled for %d", trial, now, bucket[i].at)
				}
				drained = append(drained, ids[bucket[i].inst])
			}
			q.advance(now)
			if len(ref) < 200 && rng.Intn(2) == 0 {
				schedule(now + 1 + rng.Int63n(3*horizon))
			}
		}
		if q.len() != 0 {
			t.Fatalf("trial %d: %d events left after draining to maxAt", trial, q.len())
		}

		order := append([]refEvent(nil), ref...)
		sort.SliceStable(order, func(i, j int) bool {
			if order[i].at != order[j].at {
				return order[i].at < order[j].at
			}
			return order[i].seq < order[j].seq
		})
		if len(drained) != len(order) {
			t.Fatalf("trial %d: drained %d events, scheduled %d", trial, len(drained), len(order))
		}
		for i := range order {
			if drained[i] != order[i].seq {
				t.Fatalf("trial %d: drain position %d got event %d, heap order wants %d",
					trial, i, drained[i], order[i].seq)
			}
		}
	}
}

// TestEventQueueOverflowMigration pins the overflow path specifically:
// an event far beyond the horizon must drain at exactly its cycle, and
// an event scheduled for that same cycle after it entered the window
// must drain after it.
func TestEventQueueOverflowMigration(t *testing.T) {
	var q eventQueue
	q.init(64, 1) // ring size 64
	a, b := &DynInst{}, &DynInst{}

	far := int64(1 + 500) // beyond the 64-cycle window
	q.schedule(far, evComplete, a)
	if len(q.overflow) != 1 {
		t.Fatalf("far event not in overflow (len %d)", len(q.overflow))
	}

	scheduledLate := false
	for now := int64(1); now <= far; now++ {
		bucket := q.bucketFor(now)
		if now < far && len(bucket) != 0 {
			t.Fatalf("cycle %d: unexpected events", now)
		}
		if now == far {
			if len(bucket) != 2 {
				t.Fatalf("cycle %d: want 2 events, got %d", now, len(bucket))
			}
			if bucket[0].inst != a || bucket[1].inst != b {
				t.Fatal("overflow event did not drain before the later-scheduled event")
			}
		}
		q.advance(now)
		// Once far is inside the window, add a same-cycle event; it must
		// land behind the migrated overflow event.
		if !scheduledLate && far-now <= 64 {
			q.schedule(far, evComplete, b)
			scheduledLate = true
		}
	}
	if q.len() != 0 || len(q.overflow) != 0 {
		t.Fatalf("events left: len=%d overflow=%d", q.len(), len(q.overflow))
	}
}

// TestInstDequeSlidesWithoutGrowth checks FIFO behaviour and that a
// bounded-occupancy push/pop pattern — the ROB and front-end queue
// pattern that used to reallocate on every window slide — stops growing
// the backing array.
func TestInstDequeSlidesWithoutGrowth(t *testing.T) {
	var q instDeque
	insts := make([]DynInst, 8)

	for i := 0; i < 4; i++ {
		q.push(&insts[i])
	}
	capAfterFill := cap(q.buf)
	next := 4
	for i := 0; i < 10_000; i++ {
		want := &insts[(next-4)%8]
		if q.front() != want {
			t.Fatalf("slide %d: wrong front entry", i)
		}
		q.popFront()
		q.push(&insts[next%8])
		next++
	}
	if q.len() != 4 {
		t.Fatalf("len %d want 4", q.len())
	}
	if got := cap(q.buf); got > 2*capAfterFill+8 {
		t.Errorf("backing array grew: cap %d after fill, %d after 10k slides", capAfterFill, got)
	}

	// truncate drops the tail, keeping the front.
	front := q.front()
	q.truncate(2)
	if q.len() != 2 || q.front() != front {
		t.Fatalf("truncate broke the queue: len %d", q.len())
	}
}

// TestArenaRecyclesWithGenerationBump checks the arena contract events
// rely on: put invalidates by bumping gen and preserves fields until
// the next get, which hands back a zeroed instruction with the bumped
// generation.
func TestArenaRecyclesWithGenerationBump(t *testing.T) {
	var a instArena
	d := a.get()
	if d.gen != 0 {
		t.Fatalf("fresh inst gen %d", d.gen)
	}
	d.state = stSquashed
	d.Age = 99
	a.put(d)
	if d.gen != 1 {
		t.Fatalf("gen after put %d, want 1", d.gen)
	}
	if d.state != stSquashed || d.Age != 99 {
		t.Error("put must leave fields intact for same-cycle inspection")
	}

	// Drain the free list; the recycled pointer must come back zeroed
	// with its generation preserved.
	for i := 0; i < 2*arenaSlab; i++ {
		r := a.get()
		if r != d {
			continue
		}
		if r.gen != 1 {
			t.Errorf("recycled inst gen %d, want 1", r.gen)
		}
		if r.state != stFrontEnd || r.Age != 0 {
			t.Errorf("recycled inst not reset: state %d age %d", r.state, r.Age)
		}
		return
	}
	t.Error("recycled inst never handed back")
}
