package pipeline

import (
	"dwarn/internal/isa"
	"dwarn/internal/workload"
)

// ThreadStats aggregates per-thread pipeline behaviour over a
// measurement interval.
type ThreadStats struct {
	// Fetched counts every fetched uop, including wrong-path uops and
	// FLUSH-replayed re-fetches (the paper's Figure 2 denominator).
	Fetched uint64
	// WrongPathFetched counts the wrong-path subset.
	WrongPathFetched uint64
	// Committed counts retired (correct-path) instructions.
	Committed uint64
	// FlushSquashed counts instructions squashed by policy-initiated
	// flushes (the paper's Figure 2 numerator).
	FlushSquashed uint64
	// MispredictSquashed counts instructions squashed on branch
	// misprediction recovery.
	MispredictSquashed uint64
	// Fetch availability accounting: cycles this thread was offered a
	// fetch slot and took it, or could not because of an outstanding
	// I-cache miss, a redirect bubble, or a full fetch queue.
	FetchCycles          uint64
	FetchBlockedICache   uint64
	FetchBlockedRedirect uint64
	FetchBlockedFeqFull  uint64
	// Loads counts committed loads; LoadL1Misses/LoadL2Misses count
	// committed loads whose access missed (per-thread cache behaviour
	// as the policies observed it).
	Loads        uint64
	LoadL1Misses uint64
	LoadL2Misses uint64
}

// IPC returns committed instructions per cycle over cycles.
func (t *ThreadStats) IPC(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(t.Committed) / float64(cycles)
}

// CommittedL1MissRate returns L1 misses per committed load — the
// per-program miss rate the paper's Table 2(a) reports. (The memory
// system's own counters include wrong-path and replayed accesses, which
// real hardware counters would too.)
func (t *ThreadStats) CommittedL1MissRate() float64 {
	if t.Loads == 0 {
		return 0
	}
	return float64(t.LoadL1Misses) / float64(t.Loads)
}

// CommittedL2MissRate returns L2 misses per committed load.
func (t *ThreadStats) CommittedL2MissRate() float64 {
	if t.Loads == 0 {
		return 0
	}
	return float64(t.LoadL2Misses) / float64(t.Loads)
}

// CommittedL1ToL2Ratio returns the fraction of committed loads' L1
// misses that also missed L2.
func (t *ThreadStats) CommittedL1ToL2Ratio() float64 {
	if t.LoadL1Misses == 0 {
		return 0
	}
	return float64(t.LoadL2Misses) / float64(t.LoadL1Misses)
}

// thread is the per-hardware-context pipeline state.
type thread struct {
	id  int
	src workload.Source

	// Fetch-side state: a one-uop lookahead for the current stream,
	// held by value so peeking never allocates.
	peeked    isa.Uop
	hasPeek   bool
	wrongPath bool
	// pendingBranch is the unresolved mispredicted correct-path branch
	// this thread is fetching wrong-path behind, if any.
	pendingBranch *DynInst
	// replay holds correct-path uops squashed by a policy flush, to be
	// re-fetched before consuming the generator again. It is a LIFO
	// stack in reverse fetch order — the next uop to re-fetch is the
	// last element — so both the consume side and the squash side are
	// cheap appends/pops that reuse capacity instead of prepends that
	// reallocate.
	replay []isa.Uop
	// icacheReadyAt blocks fetch until an I-miss fill arrives. The fill
	// is forwarded to the waiting fetch: ifillLine records which line
	// the outstanding fill carries, and the retry consumes it without
	// re-probing the cache (whose copy may have been evicted by a
	// set-colliding fill in the meantime — without forwarding, mutually
	// evicting threads can livelock the fetch engine).
	icacheReadyAt int64
	ifillLine     uint64
	ifillValid    bool
	// redirectAt blocks fetch until a misprediction redirect completes.
	redirectAt int64

	// Front-end queue: fetched uops traversing decode/rename.
	feq instDeque

	// rob is the per-thread reorder buffer in program order.
	rob instDeque

	// Rename map: architectural -> physical register.
	intMap [isa.NumIntRegs]int32
	fpMap  [isa.NumFPRegs]int32

	// inQueues counts this thread's uops currently in issue queues;
	// PreIssueCount (ICOUNT) is len(feq)+inQueues.
	inQueues int

	// l1MissInFlight counts this thread's outstanding L1 data-missing
	// loads (the DWarn/DG hardware counter).
	l1MissInFlight int

	// Stats for the current measurement interval.
	stats ThreadStats
}

// nextUop returns the next uop to fetch without consuming it.
func (t *thread) peek() *isa.Uop {
	if !t.hasPeek {
		switch {
		case t.wrongPath:
			t.peeked = t.src.NextWrongPath()
		case len(t.replay) > 0:
			t.peeked = t.replay[len(t.replay)-1]
			t.replay = t.replay[:len(t.replay)-1]
		default:
			t.peeked = t.src.Next()
		}
		t.hasPeek = true
	}
	return &t.peeked
}

// consume takes the peeked uop.
func (t *thread) consume() isa.Uop {
	u := *t.peek()
	t.hasPeek = false
	return u
}

// dropPeekOnModeSwitch discards a peeked uop when the fetch stream
// changes (entering or leaving wrong-path mode). A peeked correct-path
// uop must be preserved, not dropped: it is the youngest un-fetched uop,
// so it goes back on top of the replay stack (re-fetched first — until
// squashYounger pushes the even older squashed uops above it). A peeked
// wrong-path uop is simply discarded.
func (t *thread) dropPeek(wasWrongPath bool) {
	if !t.hasPeek {
		return
	}
	if !wasWrongPath {
		t.replay = append(t.replay, t.peeked)
	}
	t.hasPeek = false
}
