package pipeline

import (
	"testing"
	"testing/quick"

	"dwarn/internal/config"
	"dwarn/internal/isa"
	"dwarn/internal/workload"
)

// icountPolicy is a minimal in-package ICOUNT so pipeline tests do not
// import internal/core (which imports pipeline).
type icountPolicy struct{ cpu *CPU }

func (p *icountPolicy) Name() string                    { return "test-icount" }
func (p *icountPolicy) Attach(c *CPU)                   { p.cpu = c }
func (p *icountPolicy) Tick(int64)                      {}
func (p *icountPolicy) OnFetch(*DynInst, int64)         {}
func (p *icountPolicy) OnLoadAccess(*DynInst, int64)    {}
func (p *icountPolicy) OnL2Miss(*DynInst, int64)        {}
func (p *icountPolicy) OnLoadReturning(*DynInst, int64) {}
func (p *icountPolicy) OnLoadReturn(*DynInst, int64)    {}
func (p *icountPolicy) OnSquash(*DynInst, int64)        {}
func (p *icountPolicy) Reset()                          {}
func (p *icountPolicy) Priority(now int64, dst []int) []int {
	type kv struct{ t, c int }
	var order []kv
	for t := 0; t < p.cpu.NumThreads(); t++ {
		order = append(order, kv{t, p.cpu.PreIssueCount(t)})
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if order[j].c < order[i].c {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for _, o := range order {
		dst = append(dst, o.t)
	}
	return dst
}

// flushEverything is a hostile policy for stress tests: it flushes after
// every missing load it sees.
type flushEverything struct {
	icountPolicy
}

func (p *flushEverything) Name() string { return "test-flusher" }
func (p *flushEverything) OnLoadAccess(d *DynInst, now int64) {
	if d.MemRes.SawMiss() {
		p.cpu.FlushAfter(d)
	}
}

func newCPU(t testing.TB, wlName string, pol FetchPolicy) *CPU {
	t.Helper()
	wl, err := workload.GetWorkload(wlName)
	if err != nil {
		t.Fatal(err)
	}
	gens, err := wl.Generators(42)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := New(config.Baseline(), pol, gens)
	if err != nil {
		t.Fatal(err)
	}
	return cpu
}

func TestSoloCommitsInstructions(t *testing.T) {
	wl := workload.Workload{Name: "solo", Threads: 1, Benchmarks: []string{"gzip"}}
	gens, _ := wl.Generators(42)
	cpu, err := New(config.Baseline(), &icountPolicy{}, gens)
	if err != nil {
		t.Fatal(err)
	}
	cpu.Run(30000)
	st := cpu.ThreadStats(0)
	if st.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if ipc := st.IPC(30000); ipc < 0.2 || ipc > 8 {
		t.Fatalf("gzip solo IPC %.3f implausible", ipc)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ThreadStats {
		cpu := newCPU(t, "2-MIX", &icountPolicy{})
		cpu.Run(20000)
		return cpu.ThreadStats(1)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestInvariantsUnderICOUNT(t *testing.T) {
	cpu := newCPU(t, "4-MIX", &icountPolicy{})
	for i := 0; i < 20; i++ {
		cpu.Run(2000)
		if err := cpu.CheckInvariants(); err != nil {
			t.Fatalf("after %d cycles: %v", cpu.Now(), err)
		}
	}
}

func TestInvariantsUnderHostileFlushing(t *testing.T) {
	cpu := newCPU(t, "4-MEM", &flushEverything{})
	for i := 0; i < 20; i++ {
		cpu.Run(2000)
		if err := cpu.CheckInvariants(); err != nil {
			t.Fatalf("after %d cycles: %v", cpu.Now(), err)
		}
	}
	var flushed uint64
	for i := 0; i < cpu.NumThreads(); i++ {
		flushed += cpu.ThreadStats(i).FlushSquashed
	}
	if flushed == 0 {
		t.Error("hostile flusher never flushed on a MEM workload")
	}
}

func TestFetchedNeverLessThanCommitted(t *testing.T) {
	cpu := newCPU(t, "2-MEM", &icountPolicy{})
	cpu.Run(30000)
	for i := 0; i < cpu.NumThreads(); i++ {
		st := cpu.ThreadStats(i)
		if st.Committed > st.Fetched {
			t.Errorf("t%d committed %d > fetched %d", i, st.Committed, st.Fetched)
		}
	}
}

func TestResetStatsPreservesState(t *testing.T) {
	cpu := newCPU(t, "2-ILP", &icountPolicy{})
	cpu.Run(20000)
	before := cpu.ThreadStats(0).Committed
	if before == 0 {
		t.Fatal("warmup committed nothing")
	}
	cpu.ResetStats()
	if cpu.ThreadStats(0).Committed != 0 {
		t.Error("stats survived reset")
	}
	cpu.Run(5000)
	if cpu.ThreadStats(0).Committed == 0 {
		t.Error("machine wedged after ResetStats")
	}
}

func TestMissCounterReturnsToZero(t *testing.T) {
	cpu := newCPU(t, "2-MEM", &icountPolicy{})
	cpu.Run(40000)
	// In a quiescent window the in-flight counters must repeatedly
	// return to a small value: track the minimum.
	minSeen := 1 << 30
	for i := 0; i < 3000; i++ {
		cpu.Step()
		if v := cpu.L1DMissInFlight(0); v < minSeen {
			minSeen = v
		}
	}
	if minSeen > 2 {
		t.Errorf("mcf's miss counter never drained below %d (leak?)", minSeen)
	}
}

func TestRejectsTooManyThreads(t *testing.T) {
	cfg := config.Baseline()
	cfg.HardwareContexts = 2
	wl, _ := workload.GetWorkload("4-MIX")
	gens, _ := wl.Generators(42)
	if _, err := New(cfg, &icountPolicy{}, gens); err == nil {
		t.Error("4 threads on 2 contexts accepted")
	}
}

func TestRejectsNoThreads(t *testing.T) {
	if _, err := New(config.Baseline(), &icountPolicy{}, nil); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestRejectsInvalidConfig(t *testing.T) {
	cfg := config.Baseline()
	cfg.FetchWidth = 0
	wl := workload.Workload{Name: "solo", Threads: 1, Benchmarks: []string{"gzip"}}
	gens, _ := wl.Generators(42)
	if _, err := New(cfg, &icountPolicy{}, gens); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSmallAndDeepMachinesRun(t *testing.T) {
	for _, cfg := range []*config.Processor{config.Small(), config.Deep()} {
		wl, _ := workload.GetWorkload("2-MIX")
		gens, _ := wl.Generators(42)
		cpu, err := New(cfg, &icountPolicy{}, gens)
		if err != nil {
			t.Fatal(err)
		}
		cpu.Run(20000)
		if cpu.ThreadStats(0).Committed == 0 && cpu.ThreadStats(1).Committed == 0 {
			t.Errorf("%s machine committed nothing", cfg.Name)
		}
		if err := cpu.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestFlushAfterRepaysFetch(t *testing.T) {
	// After a FlushAfter, the squashed correct-path instructions are
	// re-fetched: total fetched grows beyond the stream position.
	cpu := newCPU(t, "2-MEM", &flushEverything{})
	cpu.Run(30000)
	st := cpu.ThreadStats(0) // mcf
	if st.FlushSquashed == 0 {
		t.Fatal("no flushes on mcf")
	}
	if st.Fetched < st.Committed+st.FlushSquashed/2 {
		t.Errorf("fetched %d seems too low for %d flushed", st.Fetched, st.FlushSquashed)
	}
}

func TestPreIssueCountTracksOccupancy(t *testing.T) {
	cpu := newCPU(t, "4-MIX", &icountPolicy{})
	cpu.Run(10000)
	for i := 0; i < cpu.NumThreads(); i++ {
		if c := cpu.PreIssueCount(i); c < 0 || c > cpu.Config().FetchQueueSize+96 {
			t.Errorf("t%d pre-issue count %d out of range", i, c)
		}
	}
}

func TestQueueOccupancyBounded(t *testing.T) {
	cpu := newCPU(t, "8-MEM", &icountPolicy{})
	for i := 0; i < 200; i++ {
		cpu.Run(100)
		for _, q := range []isa.Queue{isa.QInt, isa.QFP, isa.QLS} {
			if n := cpu.QueueLen(q); n > 32 {
				t.Fatalf("queue %v holds %d > 32", q, n)
			}
		}
	}
}

func TestDumpStateRenders(t *testing.T) {
	cpu := newCPU(t, "2-MIX", &icountPolicy{})
	cpu.Run(1000)
	if s := cpu.DumpState(); len(s) < 20 {
		t.Errorf("dump suspiciously short: %q", s)
	}
}

func TestQuickInvariantsAcrossSeedsAndWorkloads(t *testing.T) {
	wls := []string{"2-ILP", "2-MEM", "4-MIX"}
	f := func(seed uint64, pick uint8) bool {
		wl, err := workload.GetWorkload(wls[int(pick)%len(wls)])
		if err != nil {
			return false
		}
		gens, err := wl.Generators(seed%1000 + 1)
		if err != nil {
			return false
		}
		cpu, err := New(config.Baseline(), &icountPolicy{}, gens)
		if err != nil {
			return false
		}
		cpu.Run(4000)
		return cpu.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
