package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dwarn/internal/ckpt"
	"dwarn/internal/exec"
	"dwarn/internal/obs"
	"dwarn/internal/sim"
	"dwarn/internal/spec"
)

// WorkerOptions configures a pull-based fabric worker (the client side
// of the lease protocol; `dwarnd -worker -coordinator=URL` wraps one).
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Name labels the worker in status and logs ("" = host-pid).
	Name string
	// Capacity is how many cells run concurrently (<=0 = 1).
	Capacity int
	// Store, when non-nil, short-circuits leases whose fingerprint it
	// already holds and persists finished results before they are
	// pushed — point every worker and the coordinator at one shared
	// DirStore and the fleet shares one durable cache identity.
	Store exec.Store
	// LeaseWait bounds each lease call's long-poll (<=0 = default).
	LeaseWait time.Duration
	// AuthToken, when non-empty, is sent as a bearer credential on
	// every RPC — required when the coordinator runs with -auth-token.
	AuthToken string
	// Registry, when non-nil, receives the worker's RPC health metrics.
	Registry *obs.Registry
	// Logger receives worker lifecycle logs (nil = discard).
	Logger *obs.Logger
	// Run executes a cell (nil = sim.RunContext).
	Run exec.RunFunc
	// Checkpoints, when non-nil, is threaded into every cell the default
	// Run executes, so a worker's cells fork post-prewarm state instead
	// of warming cold. Typically a ckpt.Chain ending in the
	// coordinator's RemoteCkptStore: local mem (and optionally dir)
	// tiers first, the fleet-shared tier last.
	Checkpoints ckpt.Store
	// Client issues the RPCs (nil = a dedicated client with a timeout
	// comfortably above the long-poll window).
	Client *http.Client
}

// Worker pulls leases from a coordinator, runs the cells, and pushes
// completions. Run blocks until its context is canceled; on shutdown
// in-flight cells are abandoned silently (no error completion is ever
// pushed for them), so the coordinator's lease TTL — not a dying
// worker's last gasp — decides when their cells are requeued.
type Worker struct {
	opts   WorkerOptions
	log    *obs.Logger
	client *http.Client
	run    exec.RunFunc

	mu       sync.Mutex
	workerID string
	ttl      time.Duration

	// heartbeats can be switched off by fault-injection tests to
	// simulate a partitioned worker that keeps computing.
	heartbeats atomic.Bool

	// rpcFailures counts failed coordinator RPCs over the worker's
	// lifetime; rpcStreak is the current consecutive-failure run (0 =
	// healthy), the fastest signal of a partitioned coordinator.
	rpcFailures atomic.Uint64
	rpcStreak   atomic.Int64

	active sync.Map // lease id -> *activeLease
}

// activeLease is one in-flight cell on this worker.
type activeLease struct {
	cancel context.CancelFunc
	// abandon marks a cell whose completion must not be pushed (the
	// coordinator canceled it, or the worker is shutting down).
	abandon atomic.Bool
}

// NewWorker builds a worker; call Run to start it.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.Capacity <= 0 {
		opts.Capacity = 1
	}
	if opts.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		opts.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if opts.LeaseWait <= 0 {
		opts.LeaseWait = DefaultLeaseWait
	}
	w := &Worker{
		opts:   opts,
		log:    opts.Logger,
		client: opts.Client,
		run:    opts.Run,
	}
	if w.log == nil {
		w.log = obs.Nop()
	}
	if w.client == nil {
		w.client = &http.Client{Timeout: opts.LeaseWait + 30*time.Second}
	}
	if w.run == nil {
		w.run = func(ctx context.Context, res *spec.Resolved) (*sim.Result, error) {
			o := res.Options
			o.Checkpoints = opts.Checkpoints
			return sim.RunContext(ctx, o)
		}
	}
	w.heartbeats.Store(true)
	if reg := opts.Registry; reg != nil {
		reg.CounterFunc("dwarn_fabric_worker_rpc_failures", "Failed coordinator RPCs (register, lease, heartbeat, complete).",
			func() float64 { return float64(w.rpcFailures.Load()) })
		reg.GaugeFunc("dwarn_fabric_worker_rpc_failure_streak", "Consecutive failed coordinator RPCs (0 = healthy).",
			func() float64 { return float64(w.rpcStreak.Load()) })
	}
	return w
}

// rpcTimeout bounds every non-long-polling coordinator RPC: without a
// per-call deadline a hung coordinator (accepted connection, no
// response) would wedge the heartbeat loop and expire every lease.
const rpcTimeout = 15 * time.Second

// jitter spreads a backoff over [d/2, 3d/2) so a fleet of workers
// restarted together does not hammer the coordinator in lockstep.
func jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// SetHeartbeats enables or disables lease renewal. Fault-injection
// tests disable it to simulate a partition: the worker keeps computing
// while the coordinator expires its leases and requeues the cells.
func (w *Worker) SetHeartbeats(on bool) { w.heartbeats.Store(on) }

// errUnknown is the client-side face of ErrUnknownWorker (HTTP 404):
// the coordinator forgot us; re-register and carry on.
var errUnknown = errors.New("fabric: worker not recognised by coordinator")

// Run registers with the coordinator and pulls leases until ctx is
// canceled, then returns nil. RPC failures are retried with backoff
// rather than surfaced — a worker outliving a coordinator restart
// simply re-registers and resumes pulling.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	hbCtx, hbCancel := context.WithCancel(ctx)
	defer hbCancel()
	go w.heartbeatLoop(hbCtx)

	slots := make(chan struct{}, w.opts.Capacity)
	for i := 0; i < w.opts.Capacity; i++ {
		slots <- struct{}{}
	}
	var wg sync.WaitGroup
	defer wg.Wait()

	backoff := 200 * time.Millisecond
	for {
		// Block for one free slot, then batch up to every other free
		// slot so a wide worker fills in one RPC.
		select {
		case <-slots:
		case <-ctx.Done():
			w.shutdown()
			return nil
		}
		n := 1
	batch:
		for n < w.opts.Capacity {
			select {
			case <-slots:
				n++
			default:
				break batch
			}
		}

		leases, err := w.lease(ctx, n)
		if err != nil {
			for i := 0; i < n; i++ {
				slots <- struct{}{}
			}
			if ctx.Err() != nil {
				w.shutdown()
				return nil
			}
			if errors.Is(err, errUnknown) {
				if rerr := w.register(ctx); rerr != nil {
					return rerr
				}
				continue
			}
			w.log.Warn("fabric lease call failed; retrying", "err", err)
			select {
			case <-time.After(jitter(backoff)):
			case <-ctx.Done():
				w.shutdown()
				return nil
			}
			if backoff < 5*time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = 200 * time.Millisecond
		for i := len(leases); i < n; i++ {
			slots <- struct{}{} // unused slots go back
		}
		for _, l := range leases {
			l := l
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { slots <- struct{}{} }()
				w.execute(ctx, l)
			}()
		}
	}
}

// shutdown flags every in-flight cell abandoned and cancels it: no
// completion is pushed, heartbeats stop with the Run context, and the
// coordinator requeues our cells when the leases expire.
func (w *Worker) shutdown() {
	w.active.Range(func(_, v any) bool {
		al := v.(*activeLease)
		al.abandon.Store(true)
		al.cancel()
		return true
	})
}

// register announces the worker, retrying until ctx is canceled.
func (w *Worker) register(ctx context.Context) error {
	backoff := 200 * time.Millisecond
	for {
		var resp RegisterResponse
		err := w.rpc(ctx, "", "/v2/fabric/workers", RegisterRequest{
			Name:     w.opts.Name,
			Capacity: w.opts.Capacity,
			PID:      os.Getpid(),
		}, &resp)
		if err == nil {
			w.mu.Lock()
			w.workerID = resp.WorkerID
			w.ttl = time.Duration(resp.LeaseTTLMillis) * time.Millisecond
			w.mu.Unlock()
			w.log.Info("fabric worker registered",
				"coordinator", w.opts.Coordinator, "worker", resp.WorkerID,
				"name", w.opts.Name, "capacity", w.opts.Capacity)
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.log.Warn("fabric register failed; retrying", "coordinator", w.opts.Coordinator, "err", err)
		select {
		case <-time.After(jitter(backoff)):
		case <-ctx.Done():
			return ctx.Err()
		}
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}
}

// lease pulls up to n cells, long-polling an empty queue server-side.
func (w *Worker) lease(ctx context.Context, n int) ([]Lease, error) {
	var resp LeaseResponse
	err := w.rpc(ctx, "", "/v2/fabric/lease", LeaseRequest{
		WorkerID:   w.id(),
		Max:        n,
		WaitMillis: w.opts.LeaseWait.Milliseconds(),
	}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Leases, nil
}

func (w *Worker) id() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.workerID
}

// heartbeatLoop renews the worker and its active leases at a third of
// the lease TTL, and acts on the coordinator's verdicts: canceled
// cells are stopped and dropped, expired leases keep computing (a late
// completion is still accepted if the cell remains unresolved).
func (w *Worker) heartbeatLoop(ctx context.Context) {
	w.mu.Lock()
	ttl := w.ttl
	w.mu.Unlock()
	interval := ttl / 3
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if !w.heartbeats.Load() {
			continue
		}
		var ids []string
		w.active.Range(func(k, _ any) bool {
			ids = append(ids, k.(string))
			return true
		})
		var resp HeartbeatResponse
		err := w.rpc(ctx, "", "/v2/fabric/heartbeat", HeartbeatRequest{WorkerID: w.id(), LeaseIDs: ids}, &resp)
		if err != nil {
			if ctx.Err() == nil {
				w.log.Warn("fabric heartbeat failed", "err", err)
			}
			continue
		}
		for _, id := range resp.Canceled {
			if v, ok := w.active.Load(id); ok {
				al := v.(*activeLease)
				al.abandon.Store(true)
				al.cancel()
			}
		}
	}
}

// execute runs one leased cell end to end: short-circuit through the
// shared store, else re-resolve the canonical spec (verifying it lands
// on the leased fingerprint) and simulate, then push the completion
// under the lease's trace id.
func (w *Worker) execute(ctx context.Context, l Lease) {
	cellCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	al := &activeLease{cancel: cancel}
	w.active.Store(l.ID, al)
	defer w.active.Delete(l.ID)

	cellCtx = obs.WithLogger(obs.WithSpan(obs.WithTrace(cellCtx, l.Trace), spanID(l.Fingerprint)), w.log)
	if w.log.Enabled(obs.LevelDebug) {
		w.log.Debug("fabric cell leased", "trace", l.Trace, "span", spanID(l.Fingerprint), "lease", l.ID)
	}

	if w.opts.Store != nil {
		if res, ok := w.opts.Store.Get(l.Fingerprint); ok {
			w.complete(ctx, CompleteRequest{WorkerID: w.id(), LeaseID: l.ID, Fingerprint: l.Fingerprint, Result: res}, l.Trace)
			return
		}
	}

	res, err := w.runLease(cellCtx, l)
	if al.abandon.Load() {
		return // canceled by the coordinator or our own shutdown: push nothing
	}
	if err != nil && cellCtx.Err() != nil {
		return // dying mid-cell: the lease TTL requeues it
	}
	req := CompleteRequest{WorkerID: w.id(), LeaseID: l.ID, Fingerprint: l.Fingerprint}
	if err != nil {
		req.Error = err.Error()
	} else {
		req.Result = res
		if w.opts.Store != nil {
			w.opts.Store.Put(l.Fingerprint, res)
		}
	}
	w.complete(ctx, req, l.Trace)
}

// runLease resolves and simulates one leased cell.
func (w *Worker) runLease(ctx context.Context, l Lease) (*sim.Result, error) {
	// The lease carries the cell's canonical, self-contained spec;
	// re-resolving it locally must land on the leased fingerprint, or
	// the result would be filed under an identity it does not have.
	// (Trace workloads never reach here — the coordinator keeps them
	// local — so no trace resolver is needed.)
	rs := l.Spec
	res, err := rs.Resolve(nil)
	if err != nil {
		return nil, fmt.Errorf("fabric: leased spec does not resolve: %w", err)
	}
	if res.Fingerprint != l.Fingerprint {
		return nil, fmt.Errorf("fabric: fingerprint mismatch: leased %s, resolved %s (engine version skew?)",
			spanID(l.Fingerprint), spanID(res.Fingerprint))
	}
	return w.run(ctx, res)
}

// complete pushes one completion, re-registering once if the
// coordinator forgot us (late completions after a silence expiry are
// still worth pushing: they are accepted if the cell is unresolved).
func (w *Worker) complete(ctx context.Context, req CompleteRequest, trace string) {
	var resp CompleteResponse
	err := w.rpc(ctx, trace, "/v2/fabric/complete", req, &resp)
	if errors.Is(err, errUnknown) {
		if w.register(ctx) == nil {
			req.WorkerID = w.id()
			err = w.rpc(ctx, trace, "/v2/fabric/complete", req, &resp)
		}
	}
	if err != nil {
		if ctx.Err() == nil {
			w.log.Warn("fabric complete push failed", "span", spanID(req.Fingerprint), "err", err)
		}
		return
	}
	if resp.Stale {
		w.log.Info("fabric completion stale (cell already resolved)", "span", spanID(req.Fingerprint))
	}
}

// rpc is one JSON POST to the coordinator, under its own deadline —
// rpcTimeout, widened by the long-poll window for the lease call.
// trace, when set, rides as X-Request-ID so coordinator-side access
// logs join the cell's trace. Failures (transport, HTTP, decode) feed
// the worker's RPC health metrics; any success resets the streak.
func (w *Worker) rpc(ctx context.Context, trace, path string, in, out any) error {
	err := w.doRPC(ctx, trace, path, in, out)
	// errUnknown is a protocol verdict (re-register), not transport
	// failure — counting it would alarm on a routine coordinator
	// restart the worker recovers from by design.
	if err != nil && !errors.Is(err, errUnknown) {
		w.rpcFailures.Add(1)
		w.rpcStreak.Add(1)
	} else {
		w.rpcStreak.Store(0)
	}
	return err
}

func (w *Worker) doRPC(ctx context.Context, trace, path string, in, out any) error {
	timeout := rpcTimeout
	if path == "/v2/fabric/lease" {
		timeout += w.opts.LeaseWait
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if trace != "" {
		req.Header.Set("X-Request-ID", trace)
	}
	if w.opts.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+w.opts.AuthToken)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return errUnknown
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fabric: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxRPCBody)).Decode(out)
}

// spanID is the cell span convention shared with internal/exec: the
// first 12 hex characters of the fingerprint.
func spanID(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}
