package fabric

import (
	"bytes"
	"net/http"
	"testing"

	"dwarn/internal/ckpt"
	"dwarn/internal/sim"
	"dwarn/internal/spec"
	"dwarn/internal/workload"
)

// buildImage warms one real run and returns its published checkpoint.
func buildImage(t *testing.T) (string, *ckpt.Image) {
	t.Helper()
	wl, err := workload.GetWorkload("2-ILP")
	if err != nil {
		t.Fatal(err)
	}
	store := ckpt.NewMemStore(0)
	opts := sim.Options{
		Policy: "icount", Workload: wl, Seed: 9,
		WarmupCycles: 500, MeasureCycles: 500,
		Checkpoints: store,
	}
	if _, err := sim.Run(opts); err != nil {
		t.Fatal(err)
	}
	key := sim.CheckpointKey(opts)
	img, ok := store.Get(key)
	if !ok {
		t.Fatal("run did not publish a checkpoint")
	}
	return key, img
}

// TestCkptTransferRoundTrip pushes a checkpoint through the remote
// store to the coordinator and pulls it back intact.
func TestCkptTransferRoundTrip(t *testing.T) {
	coordStore := ckpt.NewMemStore(0)
	_, ts := newTestFabric(t, Config{Checkpoints: coordStore})

	key, img := buildImage(t)
	remote := NewRemoteCkptStore(ts.URL, "", nil)

	if _, ok := remote.Get(key); ok {
		t.Fatal("coordinator served a checkpoint it does not hold")
	}
	remote.Put(key, img)
	if _, ok := coordStore.Get(key); !ok {
		t.Fatal("push did not land in the coordinator store")
	}
	got, ok := remote.Get(key)
	if !ok {
		t.Fatal("pull after push missed")
	}
	if !bytes.Equal(ckpt.Encode(got), ckpt.Encode(img)) {
		t.Error("checkpoint changed across the wire")
	}
}

// TestCkptTransferRejectsCorruption posts mangled checkpoint bytes and
// asserts the coordinator refuses them.
func TestCkptTransferRejectsCorruption(t *testing.T) {
	coordStore := ckpt.NewMemStore(0)
	_, ts := newTestFabric(t, Config{Checkpoints: coordStore})

	key, img := buildImage(t)
	data := ckpt.Encode(img)
	data[len(data)/2] ^= 0xFF // flip a payload bit; CRC must catch it

	resp, err := http.Post(ts.URL+"/v2/fabric/ckpt/"+key, "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt push: got %d, want 400", resp.StatusCode)
	}
	if _, ok := coordStore.Get(key); ok {
		t.Fatal("corrupt checkpoint was stored")
	}
}

// TestFabricWorkerForksFromCoordinator runs a policy sweep over one
// workload group through a remote worker whose checkpoint chain ends at
// the coordinator: digests must match a serial run exactly (forking is
// invisible in results).
func TestFabricWorkerForksFromCoordinator(t *testing.T) {
	cells := resolveGrid(t, []string{"icount", "stall", "dwarn"}, []uint64{3})
	want := serialDigests(t, cells)

	coordStore := ckpt.NewMemStore(0)
	c, ts := newTestFabric(t, Config{Checkpoints: coordStore})
	startWorker(t, ts.URL, WorkerOptions{
		Capacity:    2,
		Checkpoints: ckpt.Chain{ckpt.NewMemStore(0), NewRemoteCkptStore(ts.URL, "", nil)},
	})

	got := executeFabric(t, c, cells)
	for fp, d := range want {
		if got[fp] != d {
			t.Errorf("cell %s: fabric digest %s != serial %s", fp[:12], got[fp], d)
		}
	}
	// The worker's chain pushes the group's checkpoint up to the
	// coordinator, where late-joining workers would fork from.
	var res *spec.Resolved = cells[0]
	if _, ok := coordStore.Get(res.CheckpointKey); !ok {
		t.Error("worker did not push the group checkpoint to the coordinator")
	}
}
