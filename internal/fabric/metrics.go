package fabric

import "dwarn/internal/obs"

// coordMetrics is the coordinator's instrumentation set: queue and
// fleet gauges are func-backed (sampled at scrape time under the
// coordinator lock), lifetime counters double as the totals GET
// /v2/fabric reports, so the status endpoint and /metrics can never
// disagree.
type coordMetrics struct {
	queued    *obs.Counter
	leases    *obs.Counter
	requeues  *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	stale     *obs.Counter
}

func newCoordMetrics(reg *obs.Registry, c *Coordinator) *coordMetrics {
	const completes = "dwarn_fabric_completes_total"
	const completesHelp = "Cell completions pushed by fabric workers, by outcome (stale = the cell was already resolved; payload discarded)."
	m := &coordMetrics{
		queued:    reg.Counter("dwarn_fabric_cells_queued_total", "Leader cells dispatched into the fabric queue."),
		leases:    reg.Counter("dwarn_fabric_leases_total", "Leases granted to fabric workers (local and remote)."),
		requeues:  reg.Counter("dwarn_fabric_requeues_total", "Cells requeued after their lease expired unrenewed (worker death or partition)."),
		completed: reg.Counter(completes, completesHelp, obs.L("outcome", "ok")),
		failed:    reg.Counter(completes, completesHelp, obs.L("outcome", "error")),
		stale:     reg.Counter(completes, completesHelp, obs.L("outcome", "stale")),
	}
	reg.GaugeFunc("dwarn_fabric_queue_depth", "Cells waiting for a lease.",
		func() float64 { return float64(c.QueueDepth()) })
	reg.GaugeFunc("dwarn_fabric_workers", "Registered fabric workers (local and remote).",
		func() float64 { return float64(c.WorkerCount()) })
	reg.GaugeFunc("dwarn_fabric_leases_active", "Leases currently held by fabric workers.",
		func() float64 { return float64(c.ActiveLeases()) })
	return m
}
