package fabric

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"

	"dwarn/internal/ckpt"
)

// Checkpoint transfer: the coordinator serves its checkpoint store
// under /v2/fabric/ckpt/{key}, and remote workers mount it as the last
// tier of their own store chain. A worker whose cell misses locally
// pulls the group's post-prewarm image from the coordinator; a worker
// that warms a group cold pushes the image it built, so sibling cells
// landing on other workers fork instead of re-warming. Transfers carry
// the encoded (CRC-trailed) form and are re-verified on receipt — a
// truncated or corrupted body decodes to an error and is treated as a
// miss, never a wrong answer.

func (c *Coordinator) handleCkptGet(w http.ResponseWriter, r *http.Request) {
	store := c.cfg.Checkpoints
	key := r.PathValue("key")
	if store == nil || !ckpt.ValidKey(key) {
		http.Error(w, "fabric: no such checkpoint", http.StatusNotFound)
		return
	}
	img, ok := store.Get(key)
	if !ok {
		http.Error(w, "fabric: no such checkpoint", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(ckpt.Encode(img))
}

func (c *Coordinator) handleCkptPut(w http.ResponseWriter, r *http.Request) {
	store := c.cfg.Checkpoints
	key := r.PathValue("key")
	if store == nil || !ckpt.ValidKey(key) {
		http.Error(w, "fabric: checkpoints disabled or bad key", http.StatusNotFound)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, ckpt.MaxEncoded))
	if err != nil {
		http.Error(w, "fabric: checkpoint body too large or unreadable", http.StatusBadRequest)
		return
	}
	img, err := ckpt.Decode(data)
	if err != nil {
		http.Error(w, fmt.Sprintf("fabric: bad checkpoint: %v", err), http.StatusBadRequest)
		return
	}
	if img.Key != key {
		http.Error(w, "fabric: checkpoint key mismatch", http.StatusBadRequest)
		return
	}
	store.Put(key, img)
	w.WriteHeader(http.StatusNoContent)
}

// RemoteCkptStore is the worker-side client of the coordinator's
// checkpoint endpoint — a ckpt.Store whose Get pulls and whose Put
// pushes encoded images. Both directions are best-effort: any
// transport or decode problem is a miss (Get) or a dropped publish
// (Put); the worker then warms cold, which is always correct.
type RemoteCkptStore struct {
	base   string
	token  string
	client *http.Client
}

// NewRemoteCkptStore builds a client against the coordinator's base
// URL. client may be nil (a default with rpcTimeout is used).
func NewRemoteCkptStore(coordinator, authToken string, client *http.Client) *RemoteCkptStore {
	if client == nil {
		client = &http.Client{Timeout: rpcTimeout}
	}
	return &RemoteCkptStore{base: coordinator, token: authToken, client: client}
}

func (s *RemoteCkptStore) url(key string) string { return s.base + "/v2/fabric/ckpt/" + key }

func (s *RemoteCkptStore) do(req *http.Request) (*http.Response, error) {
	if s.token != "" {
		req.Header.Set("Authorization", "Bearer "+s.token)
	}
	return s.client.Do(req)
}

// Get pulls one checkpoint; any failure is a miss.
func (s *RemoteCkptStore) Get(key string) (*ckpt.Image, bool) {
	if !ckpt.ValidKey(key) {
		return nil, false
	}
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, s.url(key), nil)
	if err != nil {
		return nil, false
	}
	resp, err := s.do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, ckpt.MaxEncoded+1))
	if err != nil {
		return nil, false
	}
	img, err := ckpt.Decode(data)
	if err != nil || img.Key != key {
		return nil, false
	}
	return img, true
}

// Put pushes one checkpoint, best-effort.
func (s *RemoteCkptStore) Put(key string, img *ckpt.Image) {
	if !ckpt.ValidKey(key) || img == nil {
		return
	}
	req, err := http.NewRequestWithContext(context.Background(), http.MethodPost, s.url(key), bytes.NewReader(ckpt.Encode(img)))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
}
