package fabric

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dwarn/internal/exec"
	"dwarn/internal/obs"
	"dwarn/internal/sim"
	"dwarn/internal/spec"
	"dwarn/internal/trace"
)

// Short protocol for tests: plumbing, not measurement quality.
const (
	testWarmup  = 100
	testMeasure = 300
)

// resolveGrid expands a policies × seeds grid into resolved cells.
func resolveGrid(t *testing.T, policies []string, seeds []uint64) []*spec.Resolved {
	t.Helper()
	var out []*spec.Resolved
	for _, p := range policies {
		for _, seed := range seeds {
			rs := spec.RunSpec{
				Policy:       spec.Policy{Name: p},
				Workload:     spec.Workload{Name: "2-MIX"},
				Seed:         seed,
				WarmupCycles: testWarmup, MeasureCycles: testMeasure,
			}
			res, err := rs.Resolve(nil)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
	}
	return out
}

// serialDigests runs the grid on a plain one-worker executor and
// returns fingerprint → counter digest: the determinism oracle every
// fabric execution must reproduce bit for bit.
func serialDigests(t *testing.T, cells []*spec.Resolved) map[string]string {
	t.Helper()
	ex := exec.New(exec.Options{Workers: 1, Registry: obs.NewRegistry()})
	out := map[string]string{}
	for _, r := range ex.Execute(context.Background(), cells, nil) {
		if r.Err != nil {
			t.Fatalf("serial cell %s: %v", r.Fingerprint, r.Err)
		}
		out[r.Fingerprint] = r.Result.CounterDigest()
	}
	return out
}

// newTestFabric starts a coordinator and serves its lease protocol on
// an httptest server.
func newTestFabric(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	c := NewCoordinator(cfg)
	mux := http.NewServeMux()
	c.Routes(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		c.Close()
	})
	return c, ts
}

// startWorker runs a Worker against the coordinator URL under its own
// cancellable context and returns it with its stop function.
func startWorker(t *testing.T, url string, opts WorkerOptions) (*Worker, context.CancelFunc) {
	t.Helper()
	opts.Coordinator = url
	if opts.LeaseWait == 0 {
		opts.LeaseWait = 50 * time.Millisecond
	}
	w := NewWorker(opts)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return w, cancel
}

// executeFabric drives the grid through an executor whose leader cells
// dispatch into the coordinator, and returns fingerprint → digest.
func executeFabric(t *testing.T, c *Coordinator, cells []*spec.Resolved) map[string]string {
	t.Helper()
	ex := exec.New(exec.Options{Dispatcher: c, Registry: obs.NewRegistry()})
	out := map[string]string{}
	for _, r := range ex.Execute(context.Background(), cells, nil) {
		if r.Err != nil {
			t.Fatalf("fabric cell %s: %v", r.Fingerprint, r.Err)
		}
		out[r.Fingerprint] = r.Result.CounterDigest()
	}
	return out
}

// TestFabricDigestsMatchSerial is the core determinism guarantee: a
// sweep distributed over two remote worker processes produces per-cell
// counter digests bit-identical to a serial run.
func TestFabricDigestsMatchSerial(t *testing.T) {
	cells := resolveGrid(t, []string{"icount", "dwarn"}, []uint64{1, 2, 3})
	want := serialDigests(t, cells)

	c, ts := newTestFabric(t, Config{LeaseTTL: 2 * time.Second})
	startWorker(t, ts.URL, WorkerOptions{Name: "wA", Capacity: 2})
	startWorker(t, ts.URL, WorkerOptions{Name: "wB", Capacity: 2})

	got := executeFabric(t, c, cells)
	if len(got) != len(want) {
		t.Fatalf("fabric resolved %d fingerprints, want %d", len(got), len(want))
	}
	for fp, d := range want {
		if got[fp] != d {
			t.Errorf("digest mismatch for %s: fabric %s, serial %s", fp[:12], got[fp][:12], d[:12])
		}
	}

	st := c.Status()
	if st.CompletedTotal != uint64(len(cells)) {
		t.Errorf("completed_total = %d, want %d", st.CompletedTotal, len(cells))
	}
	if st.RequeuesTotal != 0 {
		t.Errorf("healthy run requeued %d cells", st.RequeuesTotal)
	}
}

// TestFabricWorkerKillMidSweep kills one worker (context cancel: no
// completions, no further heartbeats — the observable behaviour of
// SIGKILL) while it holds leases. The coordinator must requeue its
// cells on lease expiry, a healthy worker must finish the sweep, and
// the digests must still match the serial oracle.
func TestFabricWorkerKillMidSweep(t *testing.T) {
	cells := resolveGrid(t, []string{"icount", "dwarn"}, []uint64{1, 2, 3})
	want := serialDigests(t, cells)

	c, ts := newTestFabric(t, Config{LeaseTTL: 150 * time.Millisecond})

	// The doomed worker traps every cell it leases: the simulation never
	// returns until the worker dies, as if it had hung mid-cell.
	leased := make(chan struct{}, 16)
	_, kill := startWorker(t, ts.URL, WorkerOptions{
		Name: "doomed", Capacity: 2,
		Run: func(ctx context.Context, res *spec.Resolved) (*sim.Result, error) {
			leased <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})

	done := make(chan map[string]string, 1)
	go func() { done <- executeFabric(t, c, cells) }()

	// Wait until the doomed worker holds at least one cell, then kill it
	// and bring up the healthy worker that will finish the sweep.
	select {
	case <-leased:
	case <-time.After(10 * time.Second):
		t.Fatal("doomed worker never leased a cell")
	}
	kill()
	startWorker(t, ts.URL, WorkerOptions{Name: "healthy", Capacity: 2})

	var got map[string]string
	select {
	case got = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("sweep did not complete after worker kill")
	}
	for fp, d := range want {
		if got[fp] != d {
			t.Errorf("digest mismatch for %s after kill: fabric %s, serial %s", fp[:12], got[fp][:12], d[:12])
		}
	}
	if st := c.Status(); st.RequeuesTotal == 0 {
		t.Error("killing a lease-holding worker recorded no requeues")
	}
}

// TestFabricHeartbeatDropStaleCompletion partitions a worker without
// killing it: heartbeats stop, the lease expires and the cell is
// re-leased to a healthy worker, and the partitioned worker's eventual
// completion is the late one — accepted only if it wins the race,
// stale otherwise. Either way the cell resolves exactly once.
func TestFabricHeartbeatDropStaleCompletion(t *testing.T) {
	cells := resolveGrid(t, []string{"icount"}, []uint64{7})
	c, ts := newTestFabric(t, Config{LeaseTTL: 100 * time.Millisecond})

	fake := func(res *spec.Resolved) *sim.Result {
		return &sim.Result{Workload: res.Spec.Workload.ID(), Policy: res.Spec.Policy.ID(), Cycles: 42}
	}

	// The partitioned worker computes slowly and silently: by the time
	// its result is pushed, the lease has long expired.
	slowDone := make(chan struct{})
	slow, _ := startWorker(t, ts.URL, WorkerOptions{
		Name: "partitioned", Capacity: 1,
		Run: func(ctx context.Context, res *spec.Resolved) (*sim.Result, error) {
			defer close(slowDone)
			time.Sleep(400 * time.Millisecond)
			return fake(res), nil
		},
	})
	slow.SetHeartbeats(false)

	var healthyRuns atomic.Int64
	var healthyOnce sync.Once
	healthyUp := func() {
		healthyOnce.Do(func() {
			startWorker(t, ts.URL, WorkerOptions{
				Name: "healthy", Capacity: 1,
				Run: func(ctx context.Context, res *spec.Resolved) (*sim.Result, error) {
					healthyRuns.Add(1)
					return fake(res), nil
				},
			})
		})
	}
	// Bring the healthy worker up only after the slow worker has had a
	// chance to lease the cell first (it registered first and its lease
	// wait is shorter than the healthy worker's startup delay).
	time.AfterFunc(50*time.Millisecond, healthyUp)

	res, err := c.Dispatch(context.Background(), cells[0], nil)
	if err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	if res.Cycles != 42 {
		t.Fatalf("unexpected result %+v", res)
	}

	<-slowDone // let the partitioned worker push its late completion
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Status()
		if st.RequeuesTotal >= 1 && st.StaleTotal+st.CompletedTotal >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requeue/stale never recorded: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := c.Status()
	if st.CompletedTotal != 1 {
		t.Errorf("cell resolved %d times, want exactly once", st.CompletedTotal)
	}
	if st.StaleTotal != 1 {
		t.Errorf("stale completions = %d, want 1 (the partitioned worker's late push)", st.StaleTotal)
	}
}

// TestFabricDoubleCompleteIdempotent pushes the same completion twice:
// the first resolves the cell, the second is acknowledged stale.
func TestFabricDoubleCompleteIdempotent(t *testing.T) {
	c, _ := newTestFabric(t, Config{})
	cells := resolveGrid(t, []string{"icount"}, []uint64{1})

	w, err := c.register(RegisterRequest{Name: "test", Capacity: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	resCh := make(chan error, 1)
	go func() {
		_, err := c.Dispatch(context.Background(), cells[0], nil)
		resCh <- err
	}()

	var leases []Lease
	deadline := time.Now().Add(5 * time.Second)
	for len(leases) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cell never leased")
		}
		leases, err = c.leaseBatch(w.id, 1, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
	}
	req := CompleteRequest{
		WorkerID: w.id, LeaseID: leases[0].ID, Fingerprint: leases[0].Fingerprint,
		Result: &sim.Result{Cycles: 1},
	}
	first, err := c.complete(req)
	if err != nil || !first.Accepted {
		t.Fatalf("first complete: %+v, %v", first, err)
	}
	second, err := c.complete(req)
	if err != nil {
		t.Fatalf("second complete: %v", err)
	}
	if second.Accepted || !second.Stale {
		t.Errorf("second complete = %+v, want stale", second)
	}
	if err := <-resCh; err != nil {
		t.Fatalf("dispatch: %v", err)
	}
}

// TestFabricTraceCellsStayLocal: cells whose workload replays an
// uploaded trace can only run where the trace store lives. With no
// local workers they are rejected outright; with local workers they run
// locally and are never granted to a remote worker.
func TestFabricTraceCellsStayLocal(t *testing.T) {
	traceCell := &spec.Resolved{
		Spec:        spec.RunSpec{},
		Options:     sim.Options{Trace: &trace.Trace{}},
		Fingerprint: "feedfacefeedface",
	}

	c, ts := newTestFabric(t, Config{})
	if _, err := c.Dispatch(context.Background(), traceCell, nil); !errors.Is(err, errNoLocalWorkers) {
		t.Fatalf("trace cell with no local workers: err = %v, want errNoLocalWorkers", err)
	}

	// A remote worker long-polling the queue must never receive the
	// trace cell; a local worker picks it up.
	var remoteLeased atomic.Int64
	startWorker(t, ts.URL, WorkerOptions{
		Name: "remote", Capacity: 1,
		Run: func(ctx context.Context, res *spec.Resolved) (*sim.Result, error) {
			remoteLeased.Add(1)
			return &sim.Result{}, nil
		},
	})
	c.StartLocalWorkers(1, func(ctx context.Context, res *spec.Resolved) (*sim.Result, error) {
		return &sim.Result{Cycles: 7}, nil
	})
	res, err := c.Dispatch(context.Background(), traceCell, nil)
	if err != nil {
		t.Fatalf("trace cell with local workers: %v", err)
	}
	if res.Cycles != 7 {
		t.Fatalf("trace cell ran remotely? result %+v", res)
	}
	if n := remoteLeased.Load(); n != 0 {
		t.Errorf("remote worker executed %d trace cells", n)
	}
}

// TestFabricDispatchCancel: cancelling the dispatching context releases
// the caller promptly and tells the leasing worker (via heartbeat) to
// abandon the simulation.
func TestFabricDispatchCancel(t *testing.T) {
	cells := resolveGrid(t, []string{"icount"}, []uint64{3})
	c, ts := newTestFabric(t, Config{LeaseTTL: 300 * time.Millisecond})

	running := make(chan struct{})
	aborted := make(chan struct{})
	startWorker(t, ts.URL, WorkerOptions{
		Name: "w", Capacity: 1,
		Run: func(ctx context.Context, res *spec.Resolved) (*sim.Result, error) {
			close(running)
			<-ctx.Done()
			close(aborted)
			return nil, ctx.Err()
		},
	})

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Dispatch(ctx, cells[0], nil)
		errCh <- err
	}()
	select {
	case <-running:
	case <-time.After(10 * time.Second):
		t.Fatal("cell never started on the worker")
	}
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("dispatch returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dispatch did not release on cancel")
	}
	select {
	case <-aborted:
	case <-time.After(5 * time.Second):
		t.Fatal("worker simulation was never told to abandon the canceled cell")
	}
}

// TestFabricSharedStoreShortCircuit: a worker pointed at a store that
// already holds a leased fingerprint completes from the store without
// simulating.
func TestFabricSharedStoreShortCircuit(t *testing.T) {
	cells := resolveGrid(t, []string{"icount"}, []uint64{9})
	fp := cells[0].Fingerprint
	store := exec.NewMemStore()
	store.Put(fp, &sim.Result{Cycles: 77})

	c, ts := newTestFabric(t, Config{})
	var simulated atomic.Int64
	startWorker(t, ts.URL, WorkerOptions{
		Name: "w", Capacity: 1, Store: store,
		Run: func(ctx context.Context, res *spec.Resolved) (*sim.Result, error) {
			simulated.Add(1)
			return &sim.Result{}, nil
		},
	})
	res, err := c.Dispatch(context.Background(), cells[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 77 {
		t.Fatalf("result %+v, want the stored one", res)
	}
	if simulated.Load() != 0 {
		t.Error("worker simulated a cell its store already held")
	}
}
