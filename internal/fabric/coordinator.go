package fabric

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dwarn/internal/ckpt"
	"dwarn/internal/exec"
	"dwarn/internal/obs"
	"dwarn/internal/sim"
	"dwarn/internal/spec"
)

// ErrUnknownWorker reports a lease/heartbeat/complete RPC from a
// worker id the coordinator does not know — a worker that outlived a
// coordinator restart, or one already expired for silence. The HTTP
// layer maps it to 404; workers react by re-registering.
var ErrUnknownWorker = errors.New("fabric: unknown worker")

// ErrClosed reports work submitted to a closed coordinator.
var ErrClosed = errors.New("fabric: coordinator closed")

// errNoLocalWorkers rejects cells that can only run in-process (trace
// workloads resolve against the coordinator's trace store) when the
// coordinator has no local workers to run them on.
var errNoLocalWorkers = errors.New("fabric: cell needs local execution (trace workload) but the coordinator runs no local workers")

// Config tunes a Coordinator. Zero values take the package defaults.
type Config struct {
	// LeaseTTL is how long a granted lease lives without a heartbeat.
	LeaseTTL time.Duration
	// WorkerTTL is how long a silent worker stays registered.
	WorkerTTL time.Duration
	// MaxLeaseBatch bounds cells granted per lease call.
	MaxLeaseBatch int
	// Registry receives the fabric metrics (nil = obs.Default).
	Registry *obs.Registry
	// Logger receives lease lifecycle logs (nil = discard).
	Logger *obs.Logger
	// Checkpoints, when non-nil, is served under /v2/fabric/ckpt/{key}:
	// remote workers pull post-prewarm machine images by checkpoint key
	// and push the ones they build, so a sweep group warmed anywhere in
	// the fleet is forked everywhere. Nil disables the endpoint (404).
	Checkpoints ckpt.Store
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = DefaultLeaseTTL
	}
	if c.WorkerTTL <= 0 {
		c.WorkerTTL = DefaultWorkerTTL
		if c.WorkerTTL < 4*c.LeaseTTL {
			c.WorkerTTL = 4 * c.LeaseTTL
		}
	}
	if c.MaxLeaseBatch <= 0 {
		c.MaxLeaseBatch = DefaultMaxLeaseBatch
	}
	if c.Registry == nil {
		c.Registry = obs.Default
	}
	if c.Logger == nil {
		c.Logger = obs.Nop()
	}
	return c
}

// cell is one dispatched leader cell awaiting execution somewhere in
// the fleet. Guarded by the coordinator mutex except ctx/res/done,
// which are immutable after creation.
type cell struct {
	fp  string
	res *spec.Resolved
	ctx context.Context // the Dispatch context: trace, logger, cancellation

	leased    bool   // currently held by leaseID
	leaseID   string // current holder when leased
	localOnly bool   // trace workloads never lease remotely
	started   func() // fired on first lease grant
	requeues  int

	done   chan struct{} // closed exactly once, when resolved
	result *sim.Result
	err    error
}

// lease is one grant of one cell to one worker for one TTL window.
type lease struct {
	id       string
	fp       string
	workerID string
	local    bool
	expires  time.Time
	// canceled marks the cell as no longer wanted (sweep cancelled or
	// resolved by a racing twin); the next heartbeat tells the worker
	// to abandon it and retires the lease.
	canceled bool
}

// workerState is the coordinator's view of one worker.
type workerState struct {
	id         string
	name       string
	pid        int
	capacity   int
	local      bool
	registered time.Time
	lastSeen   time.Time
	active     int
	done       uint64
	failed     uint64
	requeues   uint64
}

// Coordinator owns the fabric's pending-cell queue, the worker
// registry, and the lease table. It implements exec.Dispatcher: the
// executor hands it leader cells, local and remote workers drain them
// through one queue, and lease expiry requeues the cells of workers
// that die mid-flight.
type Coordinator struct {
	cfg Config
	log *obs.Logger
	met *coordMetrics

	mu        sync.Mutex
	closed    bool
	cells     map[string]*cell // unresolved cells by fingerprint
	queue     []*cell          // pending FIFO (entries may be stale; state is authoritative)
	workers   map[string]*workerState
	leases    map[string]*lease
	waiters   []chan struct{} // lease long-polls + local workers parked on an empty queue
	workerSeq uint64
	leaseSeq  uint64
	localCap  int // total local worker slots (trace cells need > 0)

	janitorStop chan struct{}
	localWG     sync.WaitGroup
}

// NewCoordinator builds a coordinator and starts its lease janitor.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:         cfg,
		log:         cfg.Logger,
		cells:       make(map[string]*cell),
		workers:     make(map[string]*workerState),
		leases:      make(map[string]*lease),
		janitorStop: make(chan struct{}),
	}
	c.met = newCoordMetrics(cfg.Registry, c)
	go c.janitor()
	return c
}

// LeaseTTL returns the configured lease TTL.
func (c *Coordinator) LeaseTTL() time.Duration { return c.cfg.LeaseTTL }

// Close stops the janitor, fails every unresolved cell, and waits for
// the local workers to park. Remote workers discover the closure on
// their next RPC.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.janitorStop)
	for fp, ce := range c.cells {
		ce.result, ce.err = nil, ErrClosed
		close(ce.done)
		delete(c.cells, fp)
	}
	c.queue = nil
	c.wakeLocked()
	c.mu.Unlock()
	c.localWG.Wait()
}

// Dispatch implements exec.Dispatcher: queue the cell, wait for some
// worker — local goroutine or remote process, whichever leases it
// first — to resolve it. On ctx cancellation the cell is withdrawn
// (pending) or its lease flagged canceled (in flight), and a late
// completion is discarded as stale.
func (c *Coordinator) Dispatch(ctx context.Context, res *spec.Resolved, started func()) (*sim.Result, error) {
	ce := &cell{
		fp:        res.Fingerprint,
		res:       res,
		ctx:       ctx,
		started:   started,
		localOnly: res.Options.Trace != nil,
		done:      make(chan struct{}),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if ce.localOnly && c.localCap == 0 {
		c.mu.Unlock()
		return nil, errNoLocalWorkers
	}
	if twin, ok := c.cells[ce.fp]; ok {
		// The executor's single-flight admits one leader per
		// fingerprint, so a live twin means a caller raced a withdrawn
		// cell's cleanup; join it rather than double-queueing.
		c.mu.Unlock()
		select {
		case <-twin.done:
			return twin.result, twin.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c.cells[ce.fp] = ce
	c.queue = append(c.queue, ce)
	c.met.queued.Inc()
	c.wakeLocked()
	c.mu.Unlock()

	select {
	case <-ce.done:
		return ce.result, ce.err
	case <-ctx.Done():
		c.withdraw(ce)
		return nil, ctx.Err()
	}
}

// withdraw resolves a cell as canceled from the submitting side. If a
// worker holds its lease, the lease is flagged so the next heartbeat
// tells the worker to abandon the simulation.
func (c *Coordinator) withdraw(ce *cell) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur, ok := c.cells[ce.fp]
	if !ok || cur != ce {
		return // already resolved (or a newer cell took the fingerprint)
	}
	if ce.leased {
		if l, ok := c.leases[ce.leaseID]; ok {
			l.canceled = true
		}
	}
	delete(c.cells, ce.fp)
	// The queue entry (if pending) goes stale; poppers skip it.
}

// wakeLocked releases every parked lease long-poll and local worker.
func (c *Coordinator) wakeLocked() {
	for _, ch := range c.waiters {
		close(ch)
	}
	c.waiters = nil
}

// popLocked removes and returns the next live pending cell the worker
// may run (remote workers skip local-only cells), or nil.
func (c *Coordinator) popLocked(local bool) *cell {
	for i := 0; i < len(c.queue); i++ {
		ce := c.queue[i]
		if cur, ok := c.cells[ce.fp]; !ok || cur != ce || ce.leased {
			continue // withdrawn, resolved, or already leased (stale entry)
		}
		if ce.localOnly && !local {
			continue
		}
		c.queue = append(c.queue[:i], c.queue[i+1:]...)
		return ce
	}
	return nil
}

// register adds a worker to the fleet.
func (c *Coordinator) register(req RegisterRequest, local bool) (*workerState, error) {
	if req.Capacity <= 0 {
		req.Capacity = 1
	}
	if req.Name == "" {
		req.Name = "worker"
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	c.workerSeq++
	w := &workerState{
		id:         fmt.Sprintf("w-%06d", c.workerSeq),
		name:       req.Name,
		pid:        req.PID,
		capacity:   req.Capacity,
		local:      local,
		registered: time.Now(),
		lastSeen:   time.Now(),
	}
	c.workers[w.id] = w
	c.log.Info("fabric worker registered", "worker", w.id, "name", w.name, "capacity", w.capacity, "local", local)
	return w, nil
}

// grantLocked leases one popped cell to a worker and returns the
// started callback to fire outside the lock (it re-enters the
// caller's event plumbing).
func (c *Coordinator) grantLocked(w *workerState, ce *cell) (Lease, func()) {
	c.leaseSeq++
	l := &lease{
		id:       fmt.Sprintf("l-%08d", c.leaseSeq),
		fp:       ce.fp,
		workerID: w.id,
		local:    w.local,
		expires:  time.Now().Add(c.cfg.LeaseTTL),
	}
	c.leases[l.id] = l
	ce.leased = true
	ce.leaseID = l.id
	w.active++
	c.met.leases.Inc()
	started := ce.started
	ce.started = nil // at most once, on the first grant
	return Lease{
		ID:          l.id,
		Fingerprint: ce.fp,
		Spec:        ce.res.Spec,
		Trace:       obs.TraceID(ce.ctx),
	}, started
}

// leaseBatch grants up to max pending cells to the worker, long-polling
// an empty queue up to wait. It returns the granted leases after firing
// the cells' started callbacks.
func (c *Coordinator) leaseBatch(workerID string, max int, wait time.Duration) ([]Lease, error) {
	if max <= 0 {
		max = 1
	}
	if max > c.cfg.MaxLeaseBatch {
		max = c.cfg.MaxLeaseBatch
	}
	deadline := time.Now().Add(wait)
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		w, ok := c.workers[workerID]
		if !ok {
			c.mu.Unlock()
			return nil, ErrUnknownWorker
		}
		w.lastSeen = time.Now()
		var out []Lease
		var starts []func()
		for len(out) < max {
			ce := c.popLocked(w.local)
			if ce == nil {
				break
			}
			l, started := c.grantLocked(w, ce)
			out = append(out, l)
			if started != nil {
				starts = append(starts, started)
			}
		}
		var parked chan struct{}
		if len(out) == 0 && time.Now().Before(deadline) {
			parked = make(chan struct{})
			c.waiters = append(c.waiters, parked)
		}
		c.mu.Unlock()

		for _, fn := range starts {
			fn()
		}
		if len(out) > 0 || parked == nil {
			return out, nil
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-parked:
			timer.Stop()
		case <-timer.C:
		case <-c.janitorStop:
			timer.Stop()
			return nil, ErrClosed
		}
	}
}

// heartbeat renews the worker and its listed leases, and reports which
// leases the worker must abandon.
func (c *Coordinator) heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return HeartbeatResponse{}, ErrClosed
	}
	w, ok := c.workers[req.WorkerID]
	if !ok {
		return HeartbeatResponse{}, ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	var resp HeartbeatResponse
	for _, id := range req.LeaseIDs {
		l, ok := c.leases[id]
		if !ok || l.workerID != req.WorkerID {
			resp.Expired = append(resp.Expired, id)
			continue
		}
		if l.canceled {
			resp.Canceled = append(resp.Canceled, id)
			c.retireLeaseLocked(l)
			continue
		}
		l.expires = time.Now().Add(c.cfg.LeaseTTL)
	}
	return resp, nil
}

// abandonLease hands a lease back without touching its cell — the
// worker discovered the cell is unwanted (withdrawn or canceled).
func (c *Coordinator) abandonLease(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l, ok := c.leases[id]; ok {
		c.retireLeaseLocked(l)
	}
}

// retireLeaseLocked drops a lease and its worker's active count.
func (c *Coordinator) retireLeaseLocked(l *lease) {
	delete(c.leases, l.id)
	if w, ok := c.workers[l.workerID]; ok && w.active > 0 {
		w.active--
	}
}

// complete resolves a cell with a worker's pushed result. Matching is
// by fingerprint, not lease: a completion from an expired lease still
// resolves the cell if no one else has (the work is done — discarding
// it would only pay twice), while a cell already resolved — by a
// racing re-lease or a duplicate push — reports stale and the payload
// is dropped, which is what makes completion idempotent.
func (c *Coordinator) complete(req CompleteRequest) (CompleteResponse, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return CompleteResponse{}, ErrClosed
	}
	w, ok := c.workers[req.WorkerID]
	if !ok {
		c.mu.Unlock()
		return CompleteResponse{}, ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	if l, ok := c.leases[req.LeaseID]; ok {
		c.retireLeaseLocked(l)
	}
	ce, ok := c.cells[req.Fingerprint]
	if !ok {
		c.mu.Unlock()
		c.met.stale.Inc()
		return CompleteResponse{Stale: true}, nil
	}
	// If a different lease currently holds the cell (it expired here
	// and was re-leased), flag that twin so its worker stops wasting
	// cycles on a resolved cell at its next heartbeat.
	if ce.leased && ce.leaseID != req.LeaseID {
		if twin, ok := c.leases[ce.leaseID]; ok {
			twin.canceled = true
		}
	}
	if req.Error != "" {
		ce.err = fmt.Errorf("fabric: worker %s: %s", w.name, req.Error)
		w.failed++
		c.met.failed.Inc()
	} else if req.Result == nil {
		ce.err = fmt.Errorf("fabric: worker %s pushed an empty completion", w.name)
		w.failed++
		c.met.failed.Inc()
	} else {
		ce.result = req.Result
		w.done++
		c.met.completed.Inc()
	}
	delete(c.cells, req.Fingerprint)
	close(ce.done)
	c.mu.Unlock()
	return CompleteResponse{Accepted: true}, nil
}

// janitor periodically expires unrenewed remote leases (requeueing
// their cells) and drops workers silent past WorkerTTL.
func (c *Coordinator) janitor() {
	tick := c.cfg.LeaseTTL / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.janitorStop:
			return
		case <-t.C:
			c.sweepExpired(time.Now())
		}
	}
}

// sweepExpired is one janitor pass: requeue cells behind expired
// remote leases, retire canceled/orphaned leases, expire silent
// workers (requeueing everything they held).
func (c *Coordinator) sweepExpired(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	for id, w := range c.workers {
		if w.local || now.Sub(w.lastSeen) <= c.cfg.WorkerTTL {
			continue
		}
		c.log.Warn("fabric worker expired", "worker", w.id, "name", w.name, "active_leases", w.active)
		delete(c.workers, id)
		for _, l := range c.leases {
			if l.workerID == id {
				l.expires = now.Add(-time.Second) // expire below, requeueing its cells
			}
		}
	}
	for _, l := range c.leases {
		// Local leases never expire: an in-process worker cannot vanish
		// without taking the coordinator with it, and requeueing a slow
		// local cell would double-simulate it in this very process.
		if l.local || now.Before(l.expires) {
			continue
		}
		ce, ok := c.cells[l.fp]
		if ok && ce.leased && ce.leaseID == l.id {
			ce.leased = false
			ce.leaseID = ""
			ce.requeues++
			c.queue = append(c.queue, ce)
			c.met.requeues.Inc()
			if w, ok := c.workers[l.workerID]; ok {
				w.requeues++
			}
			c.log.Warn("fabric lease expired, cell requeued",
				"lease", l.id, "worker", l.workerID, "span", l.fp[:min(12, len(l.fp))], "requeues", ce.requeues)
		}
		c.retireLeaseLocked(l)
	}
	if len(c.queue) > 0 {
		c.wakeLocked()
	}
}

// Status assembles the GET /v2/fabric view.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Enabled:        true,
		ActiveLeases:   len(c.leases),
		LeaseTTLMillis: c.cfg.LeaseTTL.Milliseconds(),
		LeasesTotal:    c.met.leases.Value(),
		RequeuesTotal:  c.met.requeues.Value(),
		CompletedTotal: c.met.completed.Value(),
		FailedTotal:    c.met.failed.Value(),
		StaleTotal:     c.met.stale.Value(),
	}
	st.QueueDepth = c.queueDepthLocked()
	now := time.Now()
	for _, w := range c.workers {
		ws := WorkerStatus{
			ID:             w.id,
			Name:           w.name,
			PID:            w.pid,
			Local:          w.local,
			Capacity:       w.capacity,
			ActiveLeases:   w.active,
			CellsDone:      w.done,
			CellsFailed:    w.failed,
			Requeues:       w.requeues,
			LastSeenMillis: now.Sub(w.lastSeen).Milliseconds(),
		}
		if lifetime := now.Sub(w.registered).Seconds(); lifetime > 0 {
			ws.CellsPerSec = float64(w.done) / lifetime
		}
		st.Workers = append(st.Workers, ws)
	}
	// Deterministic order for status pages and tests.
	sortWorkers(st.Workers)
	return st
}

// QueueDepth counts live pending cells (feeds the queue-depth gauge).
func (c *Coordinator) QueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queueDepthLocked()
}

// WorkerCount counts registered workers (feeds the workers gauge).
func (c *Coordinator) WorkerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// ActiveLeases counts held leases (feeds the leases gauge).
func (c *Coordinator) ActiveLeases() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.leases)
}

// queueDepthLocked counts live pending cells (the queue slice may hold
// stale entries for withdrawn or already-leased cells).
func (c *Coordinator) queueDepthLocked() int {
	n := 0
	for _, ce := range c.queue {
		if cur, ok := c.cells[ce.fp]; ok && cur == ce && !ce.leased {
			n++
		}
	}
	return n
}

func sortWorkers(ws []WorkerStatus) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].ID < ws[j-1].ID; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

// StartLocalWorkers registers one in-process worker with n slots, each
// a goroutine pulling leases from the same queue remote workers drain.
// run executes a cell (the service passes its frame-sink-aware
// RunFunc); the cell's own Dispatch context — trace id, logger, sweep
// cancellation — is the execution context, so DELETE /v2/sweeps/{id}
// cancels a local fabric cell exactly as it cancelled a pool cell.
func (c *Coordinator) StartLocalWorkers(n int, run exec.RunFunc) {
	if n <= 0 {
		return
	}
	if run == nil {
		run = func(ctx context.Context, res *spec.Resolved) (*sim.Result, error) {
			return sim.RunContext(ctx, res.Options)
		}
	}
	w, err := c.register(RegisterRequest{Name: "local", Capacity: n}, true)
	if err != nil {
		return
	}
	c.mu.Lock()
	c.localCap += n
	c.mu.Unlock()
	for i := 0; i < n; i++ {
		c.localWG.Add(1)
		go c.localWorker(w.id, run)
	}
}

// localWorker is one in-process lease loop: pull one cell, run it on
// its own Dispatch context, push the completion, repeat until the
// coordinator closes.
func (c *Coordinator) localWorker(workerID string, run exec.RunFunc) {
	defer c.localWG.Done()
	for {
		leases, err := c.leaseBatch(workerID, 1, time.Minute)
		if err != nil {
			return // closed (local workers are never unknown)
		}
		for _, l := range leases {
			c.mu.Lock()
			ce, ok := c.cells[l.Fingerprint]
			c.mu.Unlock()
			if !ok || ce.ctx.Err() != nil {
				// Withdrawn while leased, or its sweep is already
				// canceled: Dispatch resolves through its own context
				// branch, so just hand the lease back.
				c.abandonLease(l.ID)
				continue
			}
			res, err := run(ce.ctx, ce.res)
			if err != nil && ce.ctx.Err() != nil {
				// The sweep was canceled mid-simulation. Dispatch
				// returns ctx.Err() itself; pushing a string-wrapped
				// context error here would race it and mask the
				// cancellation as a failure.
				c.abandonLease(l.ID)
				continue
			}
			req := CompleteRequest{WorkerID: workerID, LeaseID: l.ID, Fingerprint: l.Fingerprint, Result: res}
			if err != nil {
				req.Result, req.Error = nil, err.Error()
			}
			c.complete(req)
		}
	}
}
