// Package fabric is the distributed sweep layer: one Coordinator
// (embedded in dwarnd) hands out leases on pending cells, and N
// workers — in-process goroutines and remote `dwarnd -worker`
// processes alike — pull those leases over one queue, execute the
// cells through the ordinary spec→sim path, and push results back.
//
// The coordinator sits behind internal/exec's Dispatcher seam, so
// everything above it — the /v2 sweep API, SSE progress, submit-time
// store prechecks, MaxActiveSweeps admission, single-flight by
// fingerprint — keeps working unchanged; the executor still owns
// memoization and store writes, the fabric only decides *where* a
// leader cell runs. Fault tolerance is lease-based: a lease not
// renewed within its TTL (worker died, was SIGKILLed, or partitioned)
// is requeued and transparently re-leased to the next worker to ask;
// a late completion from the presumed-dead worker is accepted if the
// cell is still unresolved and discarded as stale otherwise, so a cell
// completes exactly once no matter how many workers raced on it.
// Because the executor admits at most one in-flight leader per
// fingerprint, a fingerprint leased to worker A is never
// simultaneously leased to worker B.
//
// The wire protocol is five small JSON-over-HTTP calls mounted under
// /v2/fabric on the coordinator's ordinary service mux: workers
// register, pull lease batches (long-polling when the queue is idle),
// renew leases with heartbeats, push completions, and anyone can GET
// /v2/fabric for the live fleet status. Every RPC carries the cell's
// originating X-Request-ID, so one trace id spans coordinator →
// worker → engine log lines.
package fabric

import (
	"time"

	"dwarn/internal/sim"
	"dwarn/internal/spec"
)

// Defaults for the lease protocol. The TTL is deliberately generous
// next to a cell's wall time (milliseconds): requeueing a live
// worker's cell would waste work, while a dead worker's cells are only
// delayed, never lost.
const (
	// DefaultLeaseTTL is how long a lease lives without renewal.
	DefaultLeaseTTL = 15 * time.Second
	// DefaultWorkerTTL is how long a silent worker stays registered;
	// past it the worker is dropped and its leases requeued.
	DefaultWorkerTTL = 60 * time.Second
	// DefaultMaxLeaseBatch bounds cells granted per lease call.
	DefaultMaxLeaseBatch = 8
	// DefaultLeaseWait bounds how long a lease call long-polls an
	// empty queue before returning no leases.
	DefaultLeaseWait = 2 * time.Second
)

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name labels the worker in status and logs (hostname-pid style).
	Name string `json:"name"`
	// Capacity is how many cells the worker runs concurrently.
	Capacity int `json:"capacity"`
	// PID is informational (shown in status).
	PID int `json:"pid,omitempty"`
}

// RegisterResponse assigns the worker its identity and the protocol
// timings it must honour.
type RegisterResponse struct {
	WorkerID string `json:"worker_id"`
	// LeaseTTLMillis is the lease TTL; workers heartbeat well inside it.
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
}

// LeaseRequest pulls a batch of pending cells.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
	// Max bounds the batch; the coordinator may return fewer (or none,
	// after WaitMillis of long-polling an empty queue).
	Max int `json:"max"`
	// WaitMillis long-polls an empty queue up to this long.
	WaitMillis int64 `json:"wait_ms,omitempty"`
}

// Lease is one cell granted to one worker for one TTL window.
type Lease struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	// Spec is the cell's canonical RunSpec: self-contained (inline
	// machine config, completed policy params, explicit protocol), so
	// the worker re-resolves it to the identical fingerprint with no
	// shared state beyond this payload.
	Spec spec.RunSpec `json:"spec"`
	// Trace is the submitting request's trace id; the worker attaches
	// it to the engine context and echoes it as X-Request-ID on the
	// completion RPC, so one id spans coordinator → worker → engine.
	Trace string `json:"trace,omitempty"`
}

// LeaseResponse carries the granted batch.
type LeaseResponse struct {
	Leases         []Lease `json:"leases"`
	LeaseTTLMillis int64   `json:"lease_ttl_ms"`
}

// HeartbeatRequest renews the worker's liveness and its active leases.
type HeartbeatRequest struct {
	WorkerID string   `json:"worker_id"`
	LeaseIDs []string `json:"lease_ids,omitempty"`
}

// HeartbeatResponse tells the worker which of its cells to abandon.
type HeartbeatResponse struct {
	// Canceled lists leases whose cells no longer matter (the sweep
	// was cancelled); the worker stops those simulations.
	Canceled []string `json:"canceled,omitempty"`
	// Expired lists leases the coordinator no longer recognises (TTL
	// elapsed and the cell was requeued, or the coordinator
	// restarted); the worker abandons them — a completion it has
	// already computed may still be pushed and is accepted if the cell
	// remains unresolved.
	Expired []string `json:"expired,omitempty"`
}

// CompleteRequest pushes one finished cell.
type CompleteRequest struct {
	WorkerID    string `json:"worker_id"`
	LeaseID     string `json:"lease_id"`
	Fingerprint string `json:"fingerprint"`
	// Result is the finished simulation (nil when Error is set).
	Result *sim.Result `json:"result,omitempty"`
	// Error reports a genuine simulation failure. Workers never report
	// their own shutdown this way — they just stop heartbeating and
	// let the lease expire, so a dying worker cannot poison a cell.
	Error string `json:"error,omitempty"`
}

// CompleteResponse acknowledges a completion.
type CompleteResponse struct {
	// Accepted: the result (or error) resolved the cell.
	Accepted bool `json:"accepted"`
	// Stale: the cell was already resolved (double completion, or a
	// re-leased twin finished first); the payload was discarded.
	Stale bool `json:"stale,omitempty"`
}

// Status is the GET /v2/fabric view: the queue, the fleet, and the
// lifetime counters, assembled under the coordinator's lock.
type Status struct {
	Enabled        bool           `json:"enabled"`
	QueueDepth     int            `json:"queue_depth"`
	ActiveLeases   int            `json:"active_leases"`
	LeaseTTLMillis int64          `json:"lease_ttl_ms"`
	LeasesTotal    uint64         `json:"leases_total"`
	RequeuesTotal  uint64         `json:"requeues_total"`
	CompletedTotal uint64         `json:"completed_total"`
	FailedTotal    uint64         `json:"failed_total"`
	StaleTotal     uint64         `json:"stale_total"`
	Workers        []WorkerStatus `json:"workers"`
}

// WorkerStatus is one worker's row in Status.
type WorkerStatus struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	PID      int    `json:"pid,omitempty"`
	Local    bool   `json:"local"`
	Capacity int    `json:"capacity"`
	// ActiveLeases is the worker's currently held leases.
	ActiveLeases int `json:"active_leases"`
	// CellsDone / CellsFailed count accepted completions.
	CellsDone   uint64 `json:"cells_done"`
	CellsFailed uint64 `json:"cells_failed"`
	// Requeues counts this worker's leases that expired unrenewed.
	Requeues uint64 `json:"requeues"`
	// CellsPerSec is CellsDone over the worker's registered lifetime.
	CellsPerSec float64 `json:"cells_per_sec"`
	// LastSeenMillis is the time since the worker's last RPC.
	LastSeenMillis int64 `json:"last_seen_ms"`
}
