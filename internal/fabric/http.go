package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// The coordinator's wire surface, mounted on the owning service's mux
// (dwarnd serves it under /v2/fabric alongside the sweep API, behind
// the same obs middleware — so fabric RPCs get route metrics and
// request-id access logs like any other call).

// maxRPCBody bounds a fabric RPC body. Completions carry a full
// sim.Result (a few KB of counters); everything else is tiny.
const maxRPCBody = 8 << 20

// Routes mounts the fabric API.
func (c *Coordinator) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v2/fabric/workers", c.handleRegister)
	mux.HandleFunc("POST /v2/fabric/lease", c.handleLease)
	mux.HandleFunc("POST /v2/fabric/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v2/fabric/complete", c.handleComplete)
	mux.HandleFunc("GET /v2/fabric", c.handleStatus)
	mux.HandleFunc("GET /v2/fabric/ckpt/{key}", c.handleCkptGet)
	mux.HandleFunc("POST /v2/fabric/ckpt/{key}", c.handleCkptPut)
}

func fabricJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func fabricError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownWorker):
		// 404: the worker re-registers and carries on — the standard
		// recovery after a coordinator restart or a silence expiry.
		status = http.StatusNotFound
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	}
	fabricJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeRPC(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRPCBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		fabricJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("fabric: bad request body: %v", err)})
		return false
	}
	return true
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decodeRPC(w, r, &req) {
		return
	}
	ws, err := c.register(req, false)
	if err != nil {
		fabricError(w, err)
		return
	}
	fabricJSON(w, http.StatusOK, RegisterResponse{
		WorkerID:       ws.id,
		LeaseTTLMillis: c.cfg.LeaseTTL.Milliseconds(),
	})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeRPC(w, r, &req) {
		return
	}
	wait := time.Duration(req.WaitMillis) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > 30*time.Second {
		wait = 30 * time.Second
	}
	leases, err := c.leaseBatch(req.WorkerID, req.Max, wait)
	if err != nil {
		fabricError(w, err)
		return
	}
	fabricJSON(w, http.StatusOK, LeaseResponse{
		Leases:         leases,
		LeaseTTLMillis: c.cfg.LeaseTTL.Milliseconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeRPC(w, r, &req) {
		return
	}
	resp, err := c.heartbeat(req)
	if err != nil {
		fabricError(w, err)
		return
	}
	fabricJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeRPC(w, r, &req) {
		return
	}
	resp, err := c.complete(req)
	if err != nil {
		fabricError(w, err)
		return
	}
	fabricJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	fabricJSON(w, http.StatusOK, c.Status())
}
