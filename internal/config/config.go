// Package config defines the processor configurations evaluated in the
// paper: the baseline 8-wide 2.8-fetch machine (Table 3), the smaller
// 4-wide 1.4-fetch machine, and the deeper 16-stage machine (both §6).
package config

import (
	"errors"
	"fmt"
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// LineBytes is the cache line size.
	LineBytes int
	// Banks is the number of interleaved banks (informational; bank
	// conflicts are not charged — the paper's policies are insensitive
	// to them and the authors note latencies assume no conflicts).
	Banks int
	// HitLatency is the access latency in cycles on a hit.
	HitLatency int
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int {
	return c.SizeBytes / (c.Ways * c.LineBytes)
}

// Validate reports configuration errors.
func (c CacheConfig) Validate(name string) error {
	switch {
	case c.SizeBytes <= 0:
		return fmt.Errorf("config: %s size must be positive", name)
	case c.Ways <= 0:
		return fmt.Errorf("config: %s ways must be positive", name)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("config: %s line size must be a positive power of two", name)
	case c.SizeBytes%(c.Ways*c.LineBytes) != 0:
		return fmt.Errorf("config: %s size not divisible into %d-way sets of %d-byte lines", name, c.Ways, c.LineBytes)
	case c.Sets()&(c.Sets()-1) != 0:
		return fmt.Errorf("config: %s set count %d must be a power of two", name, c.Sets())
	case c.HitLatency < 1:
		return fmt.Errorf("config: %s hit latency must be >= 1", name)
	}
	return nil
}

// BranchPredictorConfig describes the front-end predictors.
type BranchPredictorConfig struct {
	// GshareEntries is the size of the gshare pattern history table.
	GshareEntries int
	// GshareHistoryBits is the global history length.
	GshareHistoryBits int
	// BTBEntries and BTBWays shape the branch target buffer.
	BTBEntries int
	BTBWays    int
	// RASEntries is the return address stack depth per thread.
	RASEntries int
}

// Validate reports configuration errors.
func (b BranchPredictorConfig) Validate() error {
	switch {
	case b.GshareEntries <= 0 || b.GshareEntries&(b.GshareEntries-1) != 0:
		return errors.New("config: gshare entries must be a positive power of two")
	case b.GshareHistoryBits < 1 || b.GshareHistoryBits > 30:
		return errors.New("config: gshare history bits out of range")
	case b.BTBEntries <= 0 || b.BTBWays <= 0 || b.BTBEntries%b.BTBWays != 0:
		return errors.New("config: BTB entries must divide into ways")
	case (b.BTBEntries/b.BTBWays)&(b.BTBEntries/b.BTBWays-1) != 0:
		return errors.New("config: BTB set count must be a power of two")
	case b.RASEntries <= 0:
		return errors.New("config: RAS entries must be positive")
	}
	return nil
}

// Processor is a complete machine description.
type Processor struct {
	// Name labels the configuration in output.
	Name string

	// HardwareContexts is the maximum number of co-scheduled threads.
	HardwareContexts int

	// FetchThreads and FetchWidth define the x.y fetch mechanism:
	// up to FetchThreads threads supply up to FetchWidth total
	// instructions per cycle (2.8 baseline, 1.4 small machine).
	FetchThreads int
	FetchWidth   int

	// DecodeWidth, IssueWidth, CommitWidth are per-cycle limits shared
	// by all threads.
	DecodeWidth int
	IssueWidth  int
	CommitWidth int

	// FrontEndLatency is the number of cycles between fetch and arrival
	// in an issue queue (decode + rename + dispatch). The baseline value
	// of 3 makes the fetch unit aware of an L1 data miss 5 cycles after
	// the load was fetched (fetch + 3 front-end + issue + access),
	// matching the paper.
	FrontEndLatency int

	// FetchQueueSize is the per-thread fetch/decode buffer capacity.
	FetchQueueSize int

	// IntQueueSize, FPQueueSize, LSQueueSize are the shared issue queue
	// capacities.
	IntQueueSize int
	FPQueueSize  int
	LSQueueSize  int

	// IntUnits, FPUnits, LSUnits are functional unit counts.
	IntUnits int
	FPUnits  int
	LSUnits  int

	// IntMulLatency and FPLatency are execution latencies beyond the
	// single-cycle integer ALU.
	IntMulLatency int
	FPLatency     int

	// PhysIntRegs and PhysFPRegs are the shared physical register file
	// sizes. Each hardware context permanently holds 32 of each for
	// architectural state.
	PhysIntRegs int
	PhysFPRegs  int

	// ROBSizePerThread is the per-thread reorder buffer capacity.
	ROBSizePerThread int

	// ICache, DCache, L2 describe the memory hierarchy.
	ICache CacheConfig
	DCache CacheConfig
	L2     CacheConfig

	// L1ToL2Latency is the additional delay from an L1 miss to the L2
	// access completing (10 cycles baseline, 15 deep).
	L1ToL2Latency int
	// MemLatency is the additional delay for an L2 miss (100 baseline,
	// 200 deep).
	MemLatency int

	// DTLBEntries is the per-thread data TLB size; PageBytes the page
	// size; TLBMissPenalty the added latency on a DTLB miss (160).
	DTLBEntries    int
	PageBytes      int
	TLBMissPenalty int

	// Branch prediction.
	Bpred BranchPredictorConfig

	// MispredictRedirect is the number of cycles after resolution before
	// fetch restarts on the correct path (front-end redirect bubble).
	MispredictRedirect int
}

// Validate reports configuration errors.
func (p *Processor) Validate() error {
	switch {
	case p.HardwareContexts < 1:
		return errors.New("config: need at least one hardware context")
	case p.FetchThreads < 1 || p.FetchWidth < 1:
		return errors.New("config: fetch mechanism must be at least 1.1")
	case p.DecodeWidth < 1 || p.IssueWidth < 1 || p.CommitWidth < 1:
		return errors.New("config: widths must be positive")
	case p.FrontEndLatency < 1:
		return errors.New("config: front-end latency must be >= 1")
	case p.FetchQueueSize < p.FetchWidth:
		return errors.New("config: fetch queue must hold at least one fetch group")
	case p.IntQueueSize < 1 || p.FPQueueSize < 1 || p.LSQueueSize < 1:
		return errors.New("config: issue queues must be positive")
	case p.IntUnits < 1 || p.FPUnits < 1 || p.LSUnits < 1:
		return errors.New("config: need at least one unit of each kind")
	case p.PhysIntRegs < 32*p.HardwareContexts+1:
		return fmt.Errorf("config: %d int phys regs cannot back %d contexts", p.PhysIntRegs, p.HardwareContexts)
	case p.PhysFPRegs < 32*p.HardwareContexts+1:
		return fmt.Errorf("config: %d fp phys regs cannot back %d contexts", p.PhysFPRegs, p.HardwareContexts)
	case p.ROBSizePerThread < 1:
		return errors.New("config: ROB size must be positive")
	case p.L1ToL2Latency < 1 || p.MemLatency < 1:
		return errors.New("config: memory latencies must be positive")
	case p.DTLBEntries < 1 || p.PageBytes <= 0 || p.PageBytes&(p.PageBytes-1) != 0:
		return errors.New("config: TLB entries must be positive and page size a power of two")
	case p.TLBMissPenalty < 0:
		return errors.New("config: TLB miss penalty must be non-negative")
	case p.MispredictRedirect < 0:
		return errors.New("config: mispredict redirect must be non-negative")
	}
	if err := p.ICache.Validate("icache"); err != nil {
		return err
	}
	if err := p.DCache.Validate("dcache"); err != nil {
		return err
	}
	if err := p.L2.Validate("l2"); err != nil {
		return err
	}
	return p.Bpred.Validate()
}

// Baseline returns the paper's Table 3 configuration: 8-wide, 9-stage,
// ICOUNT 2.8 fetch, 32-entry queues, 384+384 physical registers.
func Baseline() *Processor {
	return &Processor{
		Name:             "baseline",
		HardwareContexts: 8,
		FetchThreads:     2,
		FetchWidth:       8,
		DecodeWidth:      8,
		IssueWidth:       8,
		CommitWidth:      8,
		FrontEndLatency:  3,
		FetchQueueSize:   16,
		IntQueueSize:     32,
		FPQueueSize:      32,
		LSQueueSize:      32,
		IntUnits:         6,
		FPUnits:          3,
		LSUnits:          4,
		IntMulLatency:    3,
		FPLatency:        4,
		PhysIntRegs:      384,
		PhysFPRegs:       384,
		ROBSizePerThread: 256,
		ICache: CacheConfig{
			SizeBytes: 64 << 10, Ways: 2, LineBytes: 64, Banks: 8, HitLatency: 1,
		},
		DCache: CacheConfig{
			SizeBytes: 64 << 10, Ways: 2, LineBytes: 64, Banks: 8, HitLatency: 1,
		},
		L2: CacheConfig{
			SizeBytes: 512 << 10, Ways: 2, LineBytes: 64, Banks: 8, HitLatency: 10,
		},
		L1ToL2Latency:  10,
		MemLatency:     100,
		DTLBEntries:    128,
		PageBytes:      8 << 10,
		TLBMissPenalty: 160,
		Bpred: BranchPredictorConfig{
			GshareEntries:     2048,
			GshareHistoryBits: 6,
			BTBEntries:        256,
			BTBWays:           4,
			RASEntries:        256,
		},
		MispredictRedirect: 1,
	}
}

// Small returns the paper's §6 less aggressive machine: 4-wide,
// 4-context, 1.4 fetch, 256 physical registers, 3 int / 2 fp / 2 ld-st
// units. Everything not mentioned in the paper inherits the baseline.
func Small() *Processor {
	p := Baseline()
	p.Name = "small"
	p.HardwareContexts = 4
	p.FetchThreads = 1
	p.FetchWidth = 4
	p.DecodeWidth = 4
	p.IssueWidth = 4
	p.CommitWidth = 4
	p.IntUnits = 3
	p.FPUnits = 2
	p.LSUnits = 2
	p.PhysIntRegs = 256
	p.PhysFPRegs = 256
	return p
}

// Deep returns the paper's §6 deeper, more aggressive machine: 16-stage
// pipeline (front-end latency +3, so an L1 miss is known 8 cycles after
// fetch), 2.8 fetch, 64-entry issue queues, L1→L2 latency 15, memory
// latency 200.
func Deep() *Processor {
	p := Baseline()
	p.Name = "deep"
	p.FrontEndLatency = 6
	p.IntQueueSize = 64
	p.FPQueueSize = 64
	p.LSQueueSize = 64
	p.L1ToL2Latency = 15
	p.MemLatency = 200
	p.L2.HitLatency = 15
	p.MispredictRedirect = 4
	return p
}

// Machines returns the named machine configurations in paper order.
func Machines() []string { return []string{"baseline", "small", "deep"} }

// ByName returns a named machine configuration. The empty string means
// the baseline machine.
func ByName(name string) (*Processor, error) {
	switch name {
	case "", "baseline":
		return Baseline(), nil
	case "small":
		return Small(), nil
	case "deep":
		return Deep(), nil
	}
	return nil, fmt.Errorf("config: unknown machine %q (known: %v)", name, Machines())
}

// Clone returns a deep copy (Processor contains only value fields, so a
// shallow copy suffices; the method exists to make call sites explicit).
func (p *Processor) Clone() *Processor {
	q := *p
	return &q
}
