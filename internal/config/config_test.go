package config

import "testing"

func TestPresetsValidate(t *testing.T) {
	for _, p := range []*Processor{Baseline(), Small(), Deep()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestBaselineMatchesPaperTable3(t *testing.T) {
	p := Baseline()
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"fetch threads", p.FetchThreads, 2},
		{"fetch width", p.FetchWidth, 8},
		{"issue width", p.IssueWidth, 8},
		{"int queue", p.IntQueueSize, 32},
		{"fp queue", p.FPQueueSize, 32},
		{"ls queue", p.LSQueueSize, 32},
		{"int units", p.IntUnits, 6},
		{"fp units", p.FPUnits, 3},
		{"ls units", p.LSUnits, 4},
		{"int regs", p.PhysIntRegs, 384},
		{"fp regs", p.PhysFPRegs, 384},
		{"rob", p.ROBSizePerThread, 256},
		{"icache size", p.ICache.SizeBytes, 64 << 10},
		{"dcache ways", p.DCache.Ways, 2},
		{"l2 size", p.L2.SizeBytes, 512 << 10},
		{"l2 latency", p.L2.HitLatency, 10},
		{"l1->l2", p.L1ToL2Latency, 10},
		{"memory", p.MemLatency, 100},
		{"tlb penalty", p.TLBMissPenalty, 160},
		{"gshare", p.Bpred.GshareEntries, 2048},
		{"btb", p.Bpred.BTBEntries, 256},
		{"ras", p.Bpred.RASEntries, 256},
		{"contexts", p.HardwareContexts, 8},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

func TestSmallMatchesPaper(t *testing.T) {
	p := Small()
	if p.FetchThreads != 1 || p.FetchWidth != 4 {
		t.Errorf("small fetch mechanism %d.%d, want 1.4", p.FetchThreads, p.FetchWidth)
	}
	if p.PhysIntRegs != 256 || p.HardwareContexts != 4 {
		t.Errorf("small regs/contexts %d/%d, want 256/4", p.PhysIntRegs, p.HardwareContexts)
	}
	if p.IntUnits != 3 || p.FPUnits != 2 || p.LSUnits != 2 {
		t.Errorf("small units %d/%d/%d, want 3/2/2", p.IntUnits, p.FPUnits, p.LSUnits)
	}
}

func TestDeepMatchesPaper(t *testing.T) {
	p := Deep()
	if p.IntQueueSize != 64 {
		t.Errorf("deep int queue %d, want 64", p.IntQueueSize)
	}
	if p.L1ToL2Latency != 15 || p.MemLatency != 200 {
		t.Errorf("deep latencies %d/%d, want 15/200", p.L1ToL2Latency, p.MemLatency)
	}
	if p.FrontEndLatency <= Baseline().FrontEndLatency {
		t.Error("deep front end not deeper than baseline")
	}
}

func TestCacheSets(t *testing.T) {
	c := CacheConfig{SizeBytes: 64 << 10, Ways: 2, LineBytes: 64, HitLatency: 1}
	if got := c.Sets(); got != 512 {
		t.Errorf("Sets() = %d, want 512", got)
	}
}

func TestCacheValidateRejects(t *testing.T) {
	bad := []CacheConfig{
		{SizeBytes: 0, Ways: 2, LineBytes: 64, HitLatency: 1},
		{SizeBytes: 64 << 10, Ways: 0, LineBytes: 64, HitLatency: 1},
		{SizeBytes: 64 << 10, Ways: 2, LineBytes: 63, HitLatency: 1},
		{SizeBytes: 64 << 10, Ways: 2, LineBytes: 64, HitLatency: 0},
		{SizeBytes: 3 << 10, Ways: 2, LineBytes: 64, HitLatency: 1}, // 24 sets: not a power of two
	}
	for i, c := range bad {
		if err := c.Validate("test"); err == nil {
			t.Errorf("case %d validated unexpectedly: %+v", i, c)
		}
	}
}

func TestProcessorValidateRejects(t *testing.T) {
	mutations := []func(*Processor){
		func(p *Processor) { p.HardwareContexts = 0 },
		func(p *Processor) { p.FetchWidth = 0 },
		func(p *Processor) { p.FrontEndLatency = 0 },
		func(p *Processor) { p.FetchQueueSize = 1 },
		func(p *Processor) { p.IntQueueSize = 0 },
		func(p *Processor) { p.IntUnits = 0 },
		func(p *Processor) { p.PhysIntRegs = 100 }, // cannot back 8 contexts
		func(p *Processor) { p.ROBSizePerThread = 0 },
		func(p *Processor) { p.MemLatency = 0 },
		func(p *Processor) { p.PageBytes = 3000 },
		func(p *Processor) { p.TLBMissPenalty = -1 },
		func(p *Processor) { p.Bpred.GshareEntries = 1000 },
		func(p *Processor) { p.Bpred.BTBEntries = 7 },
		func(p *Processor) { p.Bpred.RASEntries = 0 },
		func(p *Processor) { p.Bpred.GshareHistoryBits = 0 },
	}
	for i, mut := range mutations {
		p := Baseline()
		mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d validated unexpectedly", i)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := Baseline()
	q := p.Clone()
	q.FetchWidth = 99
	if p.FetchWidth == 99 {
		t.Error("Clone shares state with the original")
	}
}
