// Package out holds the result-encoding helpers shared by the CLIs
// (cmd/smtsim, cmd/smttrace, cmd/experiments), so machine-readable and
// human-readable renderings of a simulation exist in exactly one place.
package out

import (
	"encoding/json"
	"fmt"
	"io"

	"dwarn/internal/sim"
)

// WriteJSON encodes v as two-space-indented JSON with HTML escaping
// off — the one JSON shape every CLI's -json flag emits.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// PrintResult renders one simulation result as the standard per-thread
// text block.
func PrintResult(w io.Writer, res *sim.Result) {
	fmt.Fprintf(w, "machine=%s policy=%s workload=%s cycles=%d\n", res.Machine, res.Policy, res.Workload, res.Cycles)
	fmt.Fprintf(w, "throughput: %.3f IPC\n", res.Throughput)
	if f := res.FlushedFraction(); f > 0 {
		fmt.Fprintf(w, "flushed/fetched: %.1f%%\n", 100*f)
	}
	for i, t := range res.Threads {
		fetched := t.Pipeline.Fetched
		if fetched == 0 {
			fetched = 1
		}
		fmt.Fprintf(w, "  t%d %-8s IPC %.3f  fetched %d (wp %.0f%%)  L1m %.4f  L2m %.4f  TLBm %d  bpred-mr %.3f  imiss %.4f\n",
			i, t.Benchmark, t.IPC,
			t.Pipeline.Fetched, 100*float64(t.Pipeline.WrongPathFetched)/float64(fetched),
			t.Mem.LoadL1MissRate(), t.Mem.LoadL2MissRate(), t.Mem.TLBMisses,
			t.Bpred.MispredictRate(), imissRate(&t))
	}
}

func imissRate(t *sim.ThreadResult) float64 {
	if t.Mem.IFetches == 0 {
		return 0
	}
	return float64(t.Mem.IMisses) / float64(t.Mem.IFetches)
}
