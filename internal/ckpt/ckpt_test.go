package ckpt

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dwarn/internal/bpred"
	"dwarn/internal/mem/cache"
	"dwarn/internal/mem/tlb"
	"dwarn/internal/pipeline"
	"dwarn/internal/workload"
)

// testImage builds a small but fully-populated image: every field the
// codec carries is non-zero somewhere, so a round-trip that drops one
// fails DeepEqual.
func testImage() *Image {
	return &Image{
		Key:  "aabb01",
		Seed: 42,
		Core: pipeline.CoreState{Now: 123, AgeCtr: 456, LastCommitAt: 100, NumThreads: 2},
		L1I: cache.State{Sets: 2, Ways: 1, UseClock: 9, Lines: []cache.LineState{
			{Tag: 1, Valid: true, ReadyAt: 5, LastUse: 7}, {Tag: 2},
		}},
		L1D: cache.State{Sets: 1, Ways: 2, UseClock: 3, Lines: []cache.LineState{
			{Tag: 8, Valid: true}, {LastUse: 4},
		}},
		L2: cache.State{Sets: 1, Ways: 1, UseClock: 1, Lines: []cache.LineState{
			{Tag: 15, Valid: true, ReadyAt: 2, LastUse: 3},
		}},
		DTLB: []tlb.State{
			{Clock: 3, Entries: []tlb.EntryState{{Page: 7, Valid: true, LastUse: 2}}},
			{Clock: 1, Entries: []tlb.EntryState{{Page: 9}}},
		},
		Bpred: bpred.State{
			PHT: []uint8{0, 1, 2, 3}, BTBSets: 1, BTBWays: 2, BTBClock: 5,
			BTB:     []bpred.BTBEntryState{{Tag: 9, Target: 11, Valid: true, LastUse: 1}, {}},
			History: []uint32{5, 0},
			RAS:     [][]uint64{{1, 2}, {3}},
			RASTop:  []int{1, 0},
		},
		Sources: []workload.SourceState{
			{RNG: 1, Seq: 2, CurSlot: 3, IntWrites: 4, FPWrites: 5, MidCursor: 6, FarCursor: 7, WalkCur: 1, WalkDwell: 2},
			{RNG: 11, Seq: 12},
		},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	img := testImage()
	out, err := Decode(Encode(img))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(img, out) {
		t.Fatalf("round trip drifted:\n in %+v\nout %+v", img, out)
	}
}

// Every single-byte flip anywhere in the encoding must fail the CRC (or
// an earlier structural check) — a damaged checkpoint is a miss, never
// a wrong machine state.
func TestDecodeRejectsEveryByteFlip(t *testing.T) {
	data := Encode(testImage())
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xFF
		if _, err := Decode(mut); err == nil {
			t.Fatalf("flip at offset %d decoded cleanly", i)
		}
	}
}

// Every truncation point must fail, as must trailing garbage.
func TestDecodeRejectsTruncation(t *testing.T) {
	data := Encode(testImage())
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", n, len(data))
		}
	}
	if _, err := Decode(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing garbage decoded cleanly")
	}
}

// A corrupt or truncated on-disk checkpoint is a miss: the cell
// re-warms and overwrites it, never restores from it.
func TestDirStoreCorruptFileIsMiss(t *testing.T) {
	ds, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	img := testImage()
	ds.Put(img.Key, img)
	if _, ok := ds.Get(img.Key); !ok {
		t.Fatal("stored checkpoint not readable")
	}

	path := ds.path(img.Key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.Get(img.Key); ok {
		t.Fatal("truncated checkpoint served as a hit")
	}

	raw[9] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.Get(img.Key); ok {
		t.Fatal("corrupt checkpoint served as a hit")
	}
}

// A renamed checkpoint file cannot impersonate another group: the key
// is part of the checksummed payload and verified on read.
func TestDirStoreRejectsRenamedFile(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	img := testImage()
	ds.Put(img.Key, img)
	other := "ccdd02"
	if err := os.Rename(ds.path(img.Key), filepath.Join(dir, other+".ckpt")); err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.Get(other); ok {
		t.Fatal("renamed checkpoint impersonated another key")
	}
}

// The memory tier evicts LRU-by-bytes but always retains at least one
// entry, and the chain refills earlier tiers on a hit.
func TestMemStoreBoundAndChainRefill(t *testing.T) {
	img := testImage()
	small := NewMemStore(1) // below one image: still keeps the newest
	small.Put("aa", img)
	small.Put("bb", img)
	if small.Len() != 1 {
		t.Fatalf("over-budget store holds %d entries, want 1", small.Len())
	}
	if _, ok := small.Get("bb"); !ok {
		t.Fatal("newest entry evicted")
	}

	mem := NewMemStore(0)
	ds, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ds.Put(img.Key, img)
	ch := Chain{mem, ds}
	if _, ok := ch.Get(img.Key); !ok {
		t.Fatal("chain missed the disk tier")
	}
	if _, ok := mem.Get(img.Key); !ok {
		t.Fatal("disk hit did not refill the memory tier")
	}
}

func TestValidKey(t *testing.T) {
	for _, ok := range []string{"ab12", "0", "deadbeef"} {
		if !ValidKey(ok) {
			t.Errorf("ValidKey(%q) = false", ok)
		}
	}
	bad := []string{"", "AB", "xyz", "a/b", "../etc", "a.b", string(make([]byte, 129))}
	for _, k := range bad {
		if ValidKey(k) {
			t.Errorf("ValidKey(%q) = true", k)
		}
	}
}
