package ckpt

import (
	"sync"

	"dwarn/internal/obs"
)

// Checkpoint metrics live on obs.Default, like the sim run metrics:
// dwarnd merges them into /metrics and `smtsim -metrics` dumps them, so
// "how many warmups did this sweep actually execute" is answerable from
// any frontend. Recording happens at the one semantic decision point —
// sim's restore-or-warm branch — not inside stores, so tiering never
// double-counts.
var met struct {
	once      sync.Once
	hits      *obs.Counter
	misses    *obs.Counter
	fallbacks *obs.Counter
	bytes     *obs.Gauge
	total     float64
	mu        sync.Mutex
}

func initMetrics() {
	r := obs.Default
	met.hits = r.Counter("dwarn_ckpt_hits_total",
		"Simulations forked from a stored checkpoint instead of warming cold.")
	met.misses = r.Counter("dwarn_ckpt_misses_total",
		"Simulations that warmed cold and built a checkpoint (one per distinct machine/workload/seed group when stores are shared).")
	met.fallbacks = r.Counter("dwarn_ckpt_fallbacks_total",
		"Checkpoint restores abandoned mid-way (shape mismatch, unsupported source); the run fell back to a cold start.")
	met.bytes = r.Gauge("dwarn_ckpt_bytes",
		"Cumulative encoded bytes of checkpoints built by this process.")
}

// RecordHit counts one simulation forked from a checkpoint.
func RecordHit() {
	met.once.Do(initMetrics)
	met.hits.Inc()
}

// RecordMiss counts one simulation that warmed cold and published a
// checkpoint of size bytes.
func RecordMiss(bytes int) {
	met.once.Do(initMetrics)
	met.misses.Inc()
	met.mu.Lock()
	met.total += float64(bytes)
	met.bytes.Set(met.total)
	met.mu.Unlock()
}

// RecordFallback counts a restore that was abandoned for a cold start.
func RecordFallback() {
	met.once.Do(initMetrics)
	met.fallbacks.Inc()
}
