// Package ckpt is the checkpoint/fork engine's storage layer: it
// serializes the post-prewarm machine state of a simulation — caches,
// TLBs, branch predictor, core clock scalars, and per-thread workload
// source cursors — into a versioned, checksummed binary image,
// content-addressed by the (machine, workload, seed) half of the run
// fingerprint (sim.CheckpointKey). Sweep cells that differ only in
// fetch policy or policy parameters share a checkpoint: the first cell
// of a group builds machine state once and publishes it, and every
// other cell forks from the image instead of re-running generator
// construction and cache prewarming.
//
// Correctness contract: a checkpoint is an optimization, never an
// oracle. Every decode is CRC-verified and shape-checked against the
// live machine on restore; any mismatch — corruption, truncation, a
// format bump, a config drift — makes the run fall back to a cold
// start. A damaged checkpoint can cost time; it can never change a
// result.
package ckpt

import (
	"dwarn/internal/bpred"
	"dwarn/internal/mem/cache"
	"dwarn/internal/mem/tlb"
	"dwarn/internal/pipeline"
	"dwarn/internal/workload"
)

// Image is one decoded checkpoint: everything needed to fork a
// simulation from its post-prewarm point. Images are immutable once
// stored — stores may hand the same pointer to every caller, and
// callers must not modify one.
type Image struct {
	// Key is the checkpoint key the image was stored under; decode
	// verifies it so a renamed file cannot impersonate another group.
	Key string
	// Seed is the synthetic-randomness seed the state was built from
	// (diagnostic; the key already covers it).
	Seed uint64
	// Core holds the CPU's scalar state at the quiescent snapshot point.
	Core pipeline.CoreState
	// Memory hierarchy contents.
	L1I, L1D, L2 cache.State
	DTLB         []tlb.State
	// Bpred is the predictor state (untouched by prewarm today, but
	// captured so the image stays a complete machine snapshot if
	// prewarming ever grows a front-end phase).
	Bpred bpred.State
	// Sources holds each thread's workload generator cursor state.
	Sources []workload.SourceState
}

// ApproxBytes estimates the encoded size of the image without encoding
// it — used for the dwarn_ckpt_bytes accounting and the MemStore's
// size-aware bound.
func (img *Image) ApproxBytes() int {
	n := 64 + len(img.Key)
	n += len(img.L1I.Lines)*25 + len(img.L1D.Lines)*25 + len(img.L2.Lines)*25 + 3*24
	for _, t := range img.DTLB {
		n += 12 + len(t.Entries)*17
	}
	n += len(img.Bpred.PHT) + len(img.Bpred.BTB)*25 + len(img.Bpred.History)*4 + 24
	for _, r := range img.Bpred.RAS {
		n += 4 + len(r)*8
	}
	n += len(img.Bpred.RASTop) * 8
	n += len(img.Sources) * 60
	return n
}
