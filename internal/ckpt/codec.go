package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"dwarn/internal/bpred"
	"dwarn/internal/mem/cache"
	"dwarn/internal/mem/tlb"
	"dwarn/internal/workload"
)

// Format framing: an 8-byte magic that doubles as the version tag, a
// little-endian payload, and a trailing CRC-32C over everything before
// it. Bumping the format means bumping the magic, which makes every
// stale on-disk checkpoint an automatic miss — no migration path
// needed, because a checkpoint is always reproducible from a cold
// start.
const (
	magic = "DWCKPT01"
	// MaxEncoded bounds what Decode will even look at (and what the
	// fabric accepts over HTTP): far above any real machine config,
	// far below a memory-exhaustion payload.
	MaxEncoded = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

type writer struct{ b []byte }

func (w *writer) u8(v uint8)   { w.b = append(w.b, v) }
func (w *writer) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) i32(v int32)  { w.u32(uint32(v)) }
func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}

// reader decodes with a sticky error: after the first failure every
// further read returns zero values, and the caller checks err once.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("ckpt: "+format, args...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b)-r.off {
		r.fail("truncated at offset %d (need %d bytes)", r.off, n)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *reader) u8() uint8 {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}
func (r *reader) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}
func (r *reader) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}
func (r *reader) i64() int64  { return int64(r.u64()) }
func (r *reader) i32() int32  { return int32(r.u32()) }
func (r *reader) bool() bool  { return r.u8() != 0 }
func (r *reader) str() string { return string(r.take(r.count(1))) }

// count reads a length prefix and validates it against the bytes
// actually remaining (elemSize is a lower bound per element), so a
// corrupt length can never drive a giant allocation.
func (r *reader) count(elemSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > len(r.b)-r.off {
		r.fail("length %d exceeds remaining payload", n)
		return 0
	}
	return n
}

// Encode serializes an image into the versioned, checksummed wire/disk
// format.
func Encode(img *Image) []byte {
	w := &writer{b: make([]byte, 0, img.ApproxBytes())}
	w.b = append(w.b, magic...)
	w.str(img.Key)
	w.u64(img.Seed)

	w.i64(img.Core.Now)
	w.u64(img.Core.AgeCtr)
	w.i64(img.Core.LastCommitAt)
	w.u32(uint32(img.Core.NumThreads))

	encodeCache(w, &img.L1I)
	encodeCache(w, &img.L1D)
	encodeCache(w, &img.L2)

	w.u32(uint32(len(img.DTLB)))
	for i := range img.DTLB {
		t := &img.DTLB[i]
		w.i64(t.Clock)
		w.u32(uint32(len(t.Entries)))
		for _, e := range t.Entries {
			w.u64(e.Page)
			w.bool(e.Valid)
			w.i64(e.LastUse)
		}
	}

	b := &img.Bpred
	w.u32(uint32(len(b.PHT)))
	w.b = append(w.b, b.PHT...)
	w.u32(uint32(b.BTBSets))
	w.u32(uint32(b.BTBWays))
	w.i64(b.BTBClock)
	for _, e := range b.BTB {
		w.u64(e.Tag)
		w.u64(e.Target)
		w.bool(e.Valid)
		w.i64(e.LastUse)
	}
	w.u32(uint32(len(b.History)))
	for _, h := range b.History {
		w.u32(h)
	}
	w.u32(uint32(len(b.RAS)))
	for _, ras := range b.RAS {
		w.u32(uint32(len(ras)))
		for _, v := range ras {
			w.u64(v)
		}
	}
	w.u32(uint32(len(b.RASTop)))
	for _, t := range b.RASTop {
		w.i64(int64(t))
	}

	w.u32(uint32(len(img.Sources)))
	for _, s := range img.Sources {
		w.u64(s.RNG)
		w.u64(s.Seq)
		w.i32(s.CurSlot)
		w.u64(s.IntWrites)
		w.u64(s.FPWrites)
		w.u64(s.MidCursor)
		w.u64(s.FarCursor)
		w.i32(s.WalkCur)
		w.i32(s.WalkDwell)
	}

	w.u32(crc32.Checksum(w.b, castagnoli))
	return w.b
}

// Decode parses and verifies an encoded checkpoint. Any defect — bad
// magic, truncation, a checksum mismatch, an internal inconsistency —
// returns an error; callers treat it as a miss and start cold.
func Decode(data []byte) (*Image, error) {
	if len(data) > MaxEncoded {
		return nil, fmt.Errorf("ckpt: %d bytes exceeds the %d-byte limit", len(data), MaxEncoded)
	}
	if len(data) < len(magic)+4 || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("ckpt: bad magic (not a %s checkpoint)", magic)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, castagnoli); got != sum {
		return nil, fmt.Errorf("ckpt: checksum mismatch (stored %08x, computed %08x)", sum, got)
	}

	r := &reader{b: body, off: len(magic)}
	img := &Image{}
	img.Key = r.str()
	img.Seed = r.u64()

	img.Core.Now = r.i64()
	img.Core.AgeCtr = r.u64()
	img.Core.LastCommitAt = r.i64()
	img.Core.NumThreads = int(r.u32())

	decodeCache(r, &img.L1I)
	decodeCache(r, &img.L1D)
	decodeCache(r, &img.L2)

	img.DTLB = make([]tlb.State, r.count(16))
	for i := range img.DTLB {
		t := &img.DTLB[i]
		t.Clock = r.i64()
		t.Entries = make([]tlb.EntryState, r.count(17))
		for j := range t.Entries {
			t.Entries[j] = tlb.EntryState{Page: r.u64(), Valid: r.bool(), LastUse: r.i64()}
		}
	}

	b := &img.Bpred
	b.PHT = append([]uint8(nil), r.take(r.count(1))...)
	b.BTBSets = int(r.u32())
	b.BTBWays = int(r.u32())
	b.BTBClock = r.i64()
	nBTB := b.BTBSets * b.BTBWays
	if r.err == nil && (b.BTBSets < 0 || b.BTBWays < 0 || nBTB < 0 || nBTB*25 > len(r.b)-r.off) {
		r.fail("BTB geometry %dx%d exceeds remaining payload", b.BTBSets, b.BTBWays)
	}
	if r.err == nil {
		b.BTB = make([]bpred.BTBEntryState, nBTB)
		for i := range b.BTB {
			b.BTB[i] = bpred.BTBEntryState{Tag: r.u64(), Target: r.u64(), Valid: r.bool(), LastUse: r.i64()}
		}
	}
	b.History = make([]uint32, r.count(4))
	for i := range b.History {
		b.History[i] = r.u32()
	}
	b.RAS = make([][]uint64, r.count(4))
	for i := range b.RAS {
		b.RAS[i] = make([]uint64, r.count(8))
		for j := range b.RAS[i] {
			b.RAS[i][j] = r.u64()
		}
	}
	b.RASTop = make([]int, r.count(8))
	for i := range b.RASTop {
		b.RASTop[i] = int(r.i64())
	}

	img.Sources = make([]workload.SourceState, r.count(60))
	for i := range img.Sources {
		img.Sources[i] = workload.SourceState{
			RNG:       r.u64(),
			Seq:       r.u64(),
			CurSlot:   r.i32(),
			IntWrites: r.u64(),
			FPWrites:  r.u64(),
			MidCursor: r.u64(),
			FarCursor: r.u64(),
			WalkCur:   r.i32(),
			WalkDwell: r.i32(),
		}
	}

	if r.err == nil && r.off != len(r.b) {
		r.fail("%d trailing bytes after payload", len(r.b)-r.off)
	}
	if r.err != nil {
		return nil, r.err
	}
	return img, nil
}

func encodeCache(w *writer, s *cache.State) {
	w.u32(uint32(s.Sets))
	w.u32(uint32(s.Ways))
	w.i64(s.UseClock)
	for _, ln := range s.Lines {
		w.u64(ln.Tag)
		w.bool(ln.Valid)
		w.i64(ln.ReadyAt)
		w.i64(ln.LastUse)
	}
}

func decodeCache(r *reader, s *cache.State) {
	s.Sets = int(r.u32())
	s.Ways = int(r.u32())
	s.UseClock = r.i64()
	n := s.Sets * s.Ways
	if r.err == nil && (s.Sets < 0 || s.Ways < 0 || n < 0 || n*25 > len(r.b)-r.off) {
		r.fail("cache geometry %dx%d exceeds remaining payload", s.Sets, s.Ways)
	}
	if r.err != nil {
		return
	}
	s.Lines = make([]cache.LineState, n)
	for i := range s.Lines {
		s.Lines[i] = cache.LineState{Tag: r.u64(), Valid: r.bool(), ReadyAt: r.i64(), LastUse: r.i64()}
	}
}
