package ckpt

import (
	"container/list"
	"os"
	"path/filepath"
	"sync"

	"dwarn/internal/chaos"
)

// Store is the content-addressed checkpoint store: keys are
// sim.CheckpointKey identities (the machine/workload/seed half of the
// run fingerprint), values are decoded images. Mirrors exec.Store's
// contract: implementations must be safe for concurrent use, Put is
// best-effort (a store that cannot persist drops the entry rather than
// failing the run), and images are immutable once stored — Get may
// return the same pointer to every caller.
type Store interface {
	// Get returns the stored image for a checkpoint key, if present.
	Get(key string) (*Image, bool)
	// Put stores an image under its key.
	Put(key string, img *Image)
}

// DefaultMemBytes bounds the default in-memory tier: checkpoints are a
// few hundred KB each (dominated by L2 line state), so this keeps tens
// of warm workload groups without letting a wide sweep grow the heap
// unboundedly.
const DefaultMemBytes = 256 << 20

// MemStore is a bounded in-memory LRU checkpoint store — the fast tier
// everywhere, and the whole store when no -ckpt-dir/-store is given.
// The zero value is not ready; use NewMemStore.
type MemStore struct {
	mu       sync.Mutex
	maxBytes int
	curBytes int
	order    *list.List // front = most recent
	m        map[string]*list.Element
}

type memEntry struct {
	key   string
	img   *Image
	bytes int
}

// NewMemStore returns an empty store bounded to roughly maxBytes of
// encoded checkpoint state (0 = DefaultMemBytes). At least one entry is
// always retained, so a single oversized checkpoint still forks its own
// group.
func NewMemStore(maxBytes int) *MemStore {
	if maxBytes <= 0 {
		maxBytes = DefaultMemBytes
	}
	return &MemStore{
		maxBytes: maxBytes,
		order:    list.New(),
		m:        make(map[string]*list.Element),
	}
}

// Get implements Store.
func (s *MemStore) Get(key string) (*Image, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*memEntry).img, true
}

// Put implements Store.
func (s *MemStore) Put(key string, img *Image) {
	size := img.ApproxBytes()
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		ent := el.Value.(*memEntry)
		s.curBytes += size - ent.bytes
		ent.img, ent.bytes = img, size
		s.order.MoveToFront(el)
	} else {
		s.m[key] = s.order.PushFront(&memEntry{key: key, img: img, bytes: size})
		s.curBytes += size
	}
	for s.curBytes > s.maxBytes && s.order.Len() > 1 {
		el := s.order.Back()
		ent := el.Value.(*memEntry)
		s.order.Remove(el)
		delete(s.m, ent.key)
		s.curBytes -= ent.bytes
	}
}

// Len returns the number of stored images.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// DirStore persists checkpoints as one binary file per key under a
// directory — the durable tier behind smtsim -ckpt-dir and dwarnd
// -store. Writes go through a temp file, fsync, and rename (exactly
// like exec.DirStore), so a process killed mid-write never leaves a
// torn checkpoint: the next reader either misses or decodes a complete,
// checksum-verified image.
type DirStore struct {
	dir string
}

// NewDirStore creates the directory (if needed) and returns a store
// over it.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{dir: dir}, nil
}

// ValidKey gates what may become a file name: checkpoint keys are
// lowercase-hex digests, like result fingerprints, and the store is fed
// keys from network peers (fabric workers pull from the coordinator),
// so anything else is refused rather than joined into a path.
func ValidKey(key string) bool {
	if len(key) == 0 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *DirStore) path(key string) string {
	return filepath.Join(s.dir, key+".ckpt")
}

// Get implements Store. Unreadable, corrupt, or truncated files are
// misses: the cell re-warms and overwrites the entry.
func (s *DirStore) Get(key string) (*Image, bool) {
	if !ValidKey(key) {
		return nil, false
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	img, err := Decode(raw)
	if err != nil || img.Key != key {
		return nil, false
	}
	return img, true
}

// GetEncoded returns the raw encoded bytes for a key, if present and
// well-formed — the fabric's serving path, which would otherwise decode
// and immediately re-encode.
func (s *DirStore) GetEncoded(key string) ([]byte, bool) {
	if !ValidKey(key) {
		return nil, false
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	if img, err := Decode(raw); err != nil || img.Key != key {
		return nil, false
	}
	return raw, true
}

// Put implements Store; see DirStore for the atomicity contract.
func (s *DirStore) Put(key string, img *Image) {
	if !ValidKey(key) || img.Key != key {
		return
	}
	s.PutEncoded(key, Encode(img))
}

// PutEncoded writes pre-encoded checkpoint bytes (the fabric's receive
// path). The caller must have decoded data once to verify it.
func (s *DirStore) PutEncoded(key string, data []byte) {
	if !ValidKey(key) {
		return
	}
	// Chaos seam: a drill simulating a full or failing disk drops the
	// write here, exactly like the error paths below.
	if chaos.Fire("ckpt.put", key) != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, "."+key+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
	}
}

// Chain layers stores fastest-first: Get tries each tier in order and
// refills earlier tiers on a hit; Put writes through to every tier.
// The standard compositions are Chain(mem, dir) for a durable local
// store and Chain(mem, dir, remote) for a fabric worker that falls back
// to pulling from its coordinator.
type Chain []Store

// Get implements Store.
func (c Chain) Get(key string) (*Image, bool) {
	for i, s := range c {
		if img, ok := s.Get(key); ok {
			for j := 0; j < i; j++ {
				c[j].Put(key, img)
			}
			return img, true
		}
	}
	return nil, false
}

// Put implements Store.
func (c Chain) Put(key string, img *Image) {
	for _, s := range c {
		s.Put(key, img)
	}
}
