package timeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dwarn/internal/config"
	"dwarn/internal/core"
	"dwarn/internal/pipeline"
	"dwarn/internal/workload"
)

// newCPU builds a warm 2-thread machine for sampler tests.
func newCPU(t *testing.T) *pipeline.CPU {
	t.Helper()
	wl, err := workload.GetWorkload("2-MIX")
	if err != nil {
		t.Fatal(err)
	}
	srcs, err := wl.Generators(42)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewPolicy("dwarn")
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := pipeline.New(config.Baseline(), pol, srcs)
	if err != nil {
		t.Fatal(err)
	}
	cpu.EnableGateSampling()
	return cpu
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.IntervalCycles != DefaultIntervalCycles || c.MaxFrames != DefaultMaxFrames {
		t.Fatalf("zero config defaulted to %+v", c)
	}
	c = Config{IntervalCycles: 500, MaxFrames: 3}.WithDefaults()
	if c.IntervalCycles != 500 || c.MaxFrames != 3 {
		t.Fatalf("explicit config mangled: %+v", c)
	}
}

// TestSamplerDeltasSumToCumulative: summing every interval's deltas
// reproduces the CPU's cumulative counters — no cycle is double-counted
// or lost across boundaries.
func TestSamplerDeltasSumToCumulative(t *testing.T) {
	cpu := newCPU(t)
	s := NewSampler(Config{IntervalCycles: 1000, MaxFrames: 64}, cpu.NumThreads())

	const intervals = 5
	for i := int64(0); i < intervals; i++ {
		cpu.Run(1000)
		s.Sample(cpu, i*1000, (i+1)*1000)
	}
	tl := s.Timeline()
	if len(tl.Frames) != intervals {
		t.Fatalf("got %d frames, want %d", len(tl.Frames), intervals)
	}

	for th := 0; th < cpu.NumThreads(); th++ {
		var fetched, committed, issued uint64
		var gate uint64
		for i := range tl.Frames {
			tf := &tl.Frames[i].Threads[th]
			fetched += tf.Fetched
			committed += tf.Committed
			issued += tf.Issued
			gate += tf.GateNormalCycles + tf.GateDemotedCycles + tf.GateGatedCycles
		}
		st := cpu.ThreadStats(th)
		if fetched != st.Fetched {
			t.Errorf("t%d fetched deltas sum %d, cumulative %d", th, fetched, st.Fetched)
		}
		if committed != st.Committed {
			t.Errorf("t%d committed deltas sum %d, cumulative %d", th, committed, st.Committed)
		}
		if issued != cpu.IssuedUops(th) {
			t.Errorf("t%d issued deltas sum %d, cumulative %d", th, issued, cpu.IssuedUops(th))
		}
		// Gate attribution charges every thread exactly one class per
		// cycle, so the classes partition the sampled cycles.
		if want := uint64(intervals * 1000); gate != want {
			t.Errorf("t%d gate cycles sum %d, want %d", th, gate, want)
		}
	}
}

// TestSamplerRingWrap: past MaxFrames the ring drops oldest frames,
// records the count, and Timeline returns the tail oldest-first.
func TestSamplerRingWrap(t *testing.T) {
	cpu := newCPU(t)
	s := NewSampler(Config{IntervalCycles: 100, MaxFrames: 2}, cpu.NumThreads())
	for i := int64(0); i < 5; i++ {
		cpu.Run(100)
		s.Sample(cpu, i*100, (i+1)*100)
	}
	tl := s.Timeline()
	if tl.DroppedFrames != 3 {
		t.Errorf("dropped %d frames, want 3", tl.DroppedFrames)
	}
	if len(tl.Frames) != 2 {
		t.Fatalf("retained %d frames, want 2", len(tl.Frames))
	}
	if tl.Frames[0].Index != 3 || tl.Frames[1].Index != 4 {
		t.Errorf("retained indexes %d,%d, want 3,4", tl.Frames[0].Index, tl.Frames[1].Index)
	}
	if tl.Frames[0].StartCycle != 300 || tl.Frames[1].EndCycle != 500 {
		t.Errorf("retained bounds [%d..%d], want [300..500]",
			tl.Frames[0].StartCycle, tl.Frames[1].EndCycle)
	}
}

// TestSampleDoesNotAllocate: the sampler's per-boundary hot path must
// stay allocation-free or it would break the engine's zero-alloc
// steady state.
func TestSampleDoesNotAllocate(t *testing.T) {
	cpu := newCPU(t)
	s := NewSampler(Config{IntervalCycles: 100, MaxFrames: 8}, cpu.NumThreads())
	cpu.Run(5000)
	cycle := int64(0)
	avg := testing.AllocsPerRun(1000, func() {
		s.Sample(cpu, cycle, cycle+100)
		cycle += 100
	})
	if avg != 0 {
		t.Errorf("Sample allocates %.4f per call, want 0", avg)
	}
}

func TestFrameAggregates(t *testing.T) {
	f := Frame{
		StartCycle: 0, EndCycle: 1000,
		Threads: []ThreadFrame{{Committed: 600}, {Committed: 900}},
	}
	if f.Committed() != 1500 {
		t.Errorf("Committed() = %d, want 1500", f.Committed())
	}
	if f.IPC() != 1.5 {
		t.Errorf("IPC() = %v, want 1.5", f.IPC())
	}
	empty := Frame{StartCycle: 10, EndCycle: 10}
	if empty.IPC() != 0 {
		t.Errorf("zero-length frame IPC = %v, want 0", empty.IPC())
	}
}

func sampleTimeline(t *testing.T) *Timeline {
	t.Helper()
	cpu := newCPU(t)
	s := NewSampler(Config{IntervalCycles: 1000, MaxFrames: 8}, cpu.NumThreads())
	for i := int64(0); i < 3; i++ {
		cpu.Run(1000)
		s.Sample(cpu, i*1000, (i+1)*1000)
	}
	return s.Timeline()
}

func TestWriteJSONLRoundTrips(t *testing.T) {
	tl := sampleTimeline(t)
	var buf bytes.Buffer
	if err := tl.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(tl.Frames) {
		t.Fatalf("%d JSONL lines, want %d", len(lines), len(tl.Frames))
	}
	for i, line := range lines {
		var f Frame
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line %d does not parse: %v", i, err)
		}
		if f.Index != tl.Frames[i].Index || len(f.Threads) != len(tl.Frames[i].Threads) {
			t.Errorf("line %d round-trips to %+v", i, f)
		}
	}
}

func TestWriteCSVShape(t *testing.T) {
	tl := sampleTimeline(t)
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	wantRows := 1 // header
	for i := range tl.Frames {
		wantRows += len(tl.Frames[i].Threads)
	}
	if len(lines) != wantRows {
		t.Fatalf("%d CSV lines, want %d", len(lines), wantRows)
	}
	if cols := strings.Split(lines[0], ","); len(cols) != len(csvHeader) {
		t.Errorf("header has %d columns, want %d", len(cols), len(csvHeader))
	}
}
