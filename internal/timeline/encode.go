package timeline

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// WriteJSONL writes one frame per line as JSON — the `smtsim -timeline
// out.jsonl` format. Interval metadata is recoverable from each
// frame's cycle bounds, so a JSONL file is self-describing line by
// line and friendly to jq / line-oriented tooling.
func (t *Timeline) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range t.Frames {
		if err := enc.Encode(&t.Frames[i]); err != nil {
			return err
		}
	}
	return nil
}

// csvHeader names WriteCSV's columns: one row per (frame, thread).
var csvHeader = []string{
	"index", "start_cycle", "end_cycle", "thread",
	"fetched", "wrong_path_fetched", "issued", "committed",
	"flush_squashed", "mispredict_squashed",
	"load_l1_misses", "load_l2_misses",
	"gate_normal_cycles", "gate_demoted_cycles", "gate_gated_cycles",
	"l1d_miss_in_flight", "rob_occupancy",
}

// WriteCSV writes the timeline as CSV, one row per thread per frame,
// for spreadsheet and plotting pipelines.
func (t *Timeline) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	row := make([]string, len(csvHeader))
	for i := range t.Frames {
		f := &t.Frames[i]
		for j := range f.Threads {
			tf := &f.Threads[j]
			row[0] = strconv.Itoa(f.Index)
			row[1] = strconv.FormatInt(f.StartCycle, 10)
			row[2] = strconv.FormatInt(f.EndCycle, 10)
			row[3] = strconv.Itoa(tf.Thread)
			row[4] = strconv.FormatUint(tf.Fetched, 10)
			row[5] = strconv.FormatUint(tf.WrongPathFetched, 10)
			row[6] = strconv.FormatUint(tf.Issued, 10)
			row[7] = strconv.FormatUint(tf.Committed, 10)
			row[8] = strconv.FormatUint(tf.FlushSquashed, 10)
			row[9] = strconv.FormatUint(tf.MispredictSquashed, 10)
			row[10] = strconv.FormatUint(tf.LoadL1Misses, 10)
			row[11] = strconv.FormatUint(tf.LoadL2Misses, 10)
			row[12] = strconv.FormatUint(tf.GateNormalCycles, 10)
			row[13] = strconv.FormatUint(tf.GateDemotedCycles, 10)
			row[14] = strconv.FormatUint(tf.GateGatedCycles, 10)
			row[15] = strconv.Itoa(tf.L1DMissInFlight)
			row[16] = strconv.Itoa(tf.ROBOccupancy)
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
