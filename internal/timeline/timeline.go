// Package timeline records interval-resolution telemetry from inside a
// simulation run. The end-of-run counters the rest of the repo reports
// collapse a run's temporal structure — but the fetch policies under
// study are temporal mechanisms (DWarn demotes a thread the cycle its
// first L1 data miss is seen), so phase behaviour is exactly what an
// analysis wants to see. A Sampler snapshots per-thread activity
// deltas, point-in-time occupancy, and fetch-gate attribution at fixed
// cycle boundaries into a preallocated ring of frames: sampling
// allocates nothing, so the cycle engine's zero-allocation steady
// state survives with telemetry enabled.
//
// Sampling is observation only. It reads the pipeline's counters and
// never writes machine state, so per-thread counter digests are
// bit-identical with sampling on or off, and a timeline request never
// changes a run's content-addressed fingerprint.
package timeline

import "dwarn/internal/pipeline"

// Defaults: a 10k-cycle interval resolves phase behaviour at the
// repo's default 100k-cycle measurement (10 frames) without measurable
// cycle-rate cost, and 1024 frames absorb a 10M-cycle run before the
// ring starts dropping the oldest intervals.
const (
	DefaultIntervalCycles = 10_000
	DefaultMaxFrames      = 1024
)

// Config selects the sampling cadence. The zero value means defaults;
// specs carry it verbatim (it is a metrics option and never part of
// the fingerprint).
type Config struct {
	// IntervalCycles is the sampling period in simulated cycles.
	IntervalCycles int64 `json:"interval_cycles,omitempty"`
	// MaxFrames bounds the retained frame ring; when a run produces
	// more intervals than this, the oldest frames are dropped (the
	// Timeline records how many).
	MaxFrames int `json:"max_frames,omitempty"`
}

// WithDefaults fills zero fields with the package defaults.
func (c Config) WithDefaults() Config {
	if c.IntervalCycles <= 0 {
		c.IntervalCycles = DefaultIntervalCycles
	}
	if c.MaxFrames <= 0 {
		c.MaxFrames = DefaultMaxFrames
	}
	return c
}

// ThreadFrame is one thread's activity over one interval: counter
// deltas since the previous boundary, fetch-gate attribution (how many
// of the interval's cycles the policy classified this thread normal /
// demoted / gated), and point samples taken at the closing boundary.
type ThreadFrame struct {
	Thread int `json:"thread"`

	// Counter deltas over the interval.
	Fetched            uint64 `json:"fetched"`
	WrongPathFetched   uint64 `json:"wrong_path_fetched"`
	Issued             uint64 `json:"issued"`
	Committed          uint64 `json:"committed"`
	FlushSquashed      uint64 `json:"flush_squashed"`
	MispredictSquashed uint64 `json:"mispredict_squashed"`
	LoadL1Misses       uint64 `json:"load_l1_misses"`
	LoadL2Misses       uint64 `json:"load_l2_misses"`

	// Fetch-gate attribution: cycles of the interval spent in each
	// policy decision class (normal priority, demoted like DWarn's
	// Dmiss group, fully gated).
	GateNormalCycles  uint64 `json:"gate_normal_cycles"`
	GateDemotedCycles uint64 `json:"gate_demoted_cycles"`
	GateGatedCycles   uint64 `json:"gate_gated_cycles"`

	// Point samples at the closing boundary.
	L1DMissInFlight int `json:"l1d_miss_in_flight"`
	ROBOccupancy    int `json:"rob_occupancy"`
}

// Frame is one closed interval across all threads.
type Frame struct {
	// Index numbers frames from 0 in sampling order, including frames
	// later dropped by the ring.
	Index int `json:"index"`
	// StartCycle and EndCycle bound the interval in measured cycles
	// (0 = start of the measurement window); the frame covers
	// [StartCycle, EndCycle).
	StartCycle int64 `json:"start_cycle"`
	EndCycle   int64 `json:"end_cycle"`
	// Threads holds per-thread deltas in thread order.
	Threads []ThreadFrame `json:"threads"`
}

// Committed sums the interval's committed uops across threads.
func (f *Frame) Committed() uint64 {
	var c uint64
	for i := range f.Threads {
		c += f.Threads[i].Committed
	}
	return c
}

// IPC is the interval's aggregate committed-uops-per-cycle.
func (f *Frame) IPC() float64 {
	cycles := f.EndCycle - f.StartCycle
	if cycles <= 0 {
		return 0
	}
	return float64(f.Committed()) / float64(cycles)
}

// Timeline is the retained sampling product of one run, attached to
// sim.Result (and therefore surviving every result store and service
// cache round trip).
type Timeline struct {
	IntervalCycles int64 `json:"interval_cycles"`
	// DroppedFrames counts the oldest frames the ring overwrote; the
	// retained Frames always cover the run's tail.
	DroppedFrames int     `json:"dropped_frames,omitempty"`
	Frames        []Frame `json:"frames"`
}

// cumulative is the per-thread counter snapshot deltas are computed
// against.
type cumulative struct {
	fetched, wrongPath, issued, committed uint64
	flushSq, mispredSq, l1, l2            uint64
	gate                                  [pipeline.NumGateClasses]uint64
}

// Sampler closes interval frames into a preallocated ring. All frame
// storage (the ring, every frame's Threads slice, the previous
// snapshots) is allocated at construction; Sample itself never
// allocates.
type Sampler struct {
	cfg     Config
	threads int
	frames  []Frame
	prev    []cumulative
	total   int // frames ever sampled, including dropped ones
}

// NewSampler preallocates a sampler for a machine running threads
// hardware contexts.
func NewSampler(cfg Config, threads int) *Sampler {
	cfg = cfg.WithDefaults()
	s := &Sampler{
		cfg:     cfg,
		threads: threads,
		frames:  make([]Frame, cfg.MaxFrames),
		prev:    make([]cumulative, threads),
	}
	backing := make([]ThreadFrame, cfg.MaxFrames*threads)
	for i := range s.frames {
		s.frames[i].Threads = backing[i*threads : (i+1)*threads : (i+1)*threads]
	}
	return s
}

// IntervalCycles returns the (defaulted) sampling period.
func (s *Sampler) IntervalCycles() int64 { return s.cfg.IntervalCycles }

// Sample closes the interval [startCycle, endCycle) by reading the
// CPU's counters and point samples into the next ring frame, which it
// returns. The returned frame's Threads slice is ring storage: it is
// valid until the ring wraps back around, so callers streaming frames
// must consume or copy before MaxFrames further samples.
func (s *Sampler) Sample(cpu *pipeline.CPU, startCycle, endCycle int64) *Frame {
	f := &s.frames[s.total%len(s.frames)]
	f.Index = s.total
	f.StartCycle, f.EndCycle = startCycle, endCycle
	for t := 0; t < s.threads; t++ {
		st := cpu.ThreadStats(t)
		gate := cpu.GateCycles(t)
		issued := cpu.IssuedUops(t)
		prev := &s.prev[t]
		tf := &f.Threads[t]
		tf.Thread = t
		tf.Fetched = st.Fetched - prev.fetched
		tf.WrongPathFetched = st.WrongPathFetched - prev.wrongPath
		tf.Issued = issued - prev.issued
		tf.Committed = st.Committed - prev.committed
		tf.FlushSquashed = st.FlushSquashed - prev.flushSq
		tf.MispredictSquashed = st.MispredictSquashed - prev.mispredSq
		tf.LoadL1Misses = st.LoadL1Misses - prev.l1
		tf.LoadL2Misses = st.LoadL2Misses - prev.l2
		tf.GateNormalCycles = gate[pipeline.GateNormal] - prev.gate[pipeline.GateNormal]
		tf.GateDemotedCycles = gate[pipeline.GateDemoted] - prev.gate[pipeline.GateDemoted]
		tf.GateGatedCycles = gate[pipeline.GateGated] - prev.gate[pipeline.GateGated]
		tf.L1DMissInFlight = cpu.L1DMissInFlight(t)
		tf.ROBOccupancy = cpu.ROBOccupancy(t)
		prev.fetched = st.Fetched
		prev.wrongPath = st.WrongPathFetched
		prev.issued = issued
		prev.committed = st.Committed
		prev.flushSq = st.FlushSquashed
		prev.mispredSq = st.MispredictSquashed
		prev.l1 = st.LoadL1Misses
		prev.l2 = st.LoadL2Misses
		prev.gate = gate
	}
	s.total++
	return f
}

// Timeline copies the retained frames out of the ring, oldest first.
// It allocates — call it once, after the cycle loop.
func (s *Sampler) Timeline() *Timeline {
	tl := &Timeline{IntervalCycles: s.cfg.IntervalCycles}
	kept := s.total
	if kept > len(s.frames) {
		kept = len(s.frames)
	}
	tl.DroppedFrames = s.total - kept
	if kept == 0 {
		return tl
	}
	tl.Frames = make([]Frame, kept)
	for i := 0; i < kept; i++ {
		src := &s.frames[(s.total-kept+i)%len(s.frames)]
		f := *src
		f.Threads = append([]ThreadFrame(nil), src.Threads...)
		tl.Frames[i] = f
	}
	return tl
}
