package isa

import "testing"

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		c               Class
		branch, mem, fp bool
		queue           Queue
	}{
		{IntALU, false, false, false, QInt},
		{IntMul, false, false, false, QInt},
		{FPALU, false, false, true, QFP},
		{FPMul, false, false, true, QFP},
		{Load, false, true, false, QLS},
		{Store, false, true, false, QLS},
		{CondBranch, true, false, false, QInt},
		{Jump, true, false, false, QInt},
		{Call, true, false, false, QInt},
		{Ret, true, false, false, QInt},
	}
	for _, tc := range cases {
		if got := tc.c.IsBranch(); got != tc.branch {
			t.Errorf("%v.IsBranch() = %v", tc.c, got)
		}
		if got := tc.c.IsMem(); got != tc.mem {
			t.Errorf("%v.IsMem() = %v", tc.c, got)
		}
		if got := tc.c.UsesFP(); got != tc.fp {
			t.Errorf("%v.UsesFP() = %v", tc.c, got)
		}
		if got := tc.c.QueueFor(); got != tc.queue {
			t.Errorf("%v.QueueFor() = %v, want %v", tc.c, got, tc.queue)
		}
	}
}

func TestClassStrings(t *testing.T) {
	for c := Class(0); int(c) < NumClasses; c++ {
		if s := c.String(); s == "" || s[0] == 'C' && s != "CondBranch" && s != "Call" {
			t.Errorf("class %d has suspicious name %q", c, s)
		}
	}
	if s := Class(200).String(); s != "Class(200)" {
		t.Errorf("unknown class string %q", s)
	}
}

func TestQueueStrings(t *testing.T) {
	want := map[Queue]string{QInt: "int", QFP: "fp", QLS: "ls"}
	for q, w := range want {
		if q.String() != w {
			t.Errorf("queue %d string %q, want %q", q, q.String(), w)
		}
	}
}

func TestHasDest(t *testing.T) {
	u := Uop{Dest: NoReg}
	if u.HasDest() {
		t.Error("NoReg dest reported as present")
	}
	u.Dest = 3
	if !u.HasDest() {
		t.Error("dest r3 reported as absent")
	}
}

func TestNumClasses(t *testing.T) {
	if NumClasses != 10 {
		t.Errorf("NumClasses = %d, want 10", NumClasses)
	}
}
