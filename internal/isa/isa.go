// Package isa defines the dynamic instruction (uop) model shared by the
// workload generators, the pipeline, and the fetch policies.
//
// The simulator is trace-driven in the SMTSIM tradition: instructions
// carry their own outcomes (branch direction, effective address) and the
// pipeline charges timing for discovering those outcomes. A generic
// RISC-like vocabulary (Alpha-flavoured: 32 int + 32 fp architectural
// registers, 4-byte instructions) is sufficient because the policies
// under study react only to dynamic events, not to opcode semantics.
package isa

import "fmt"

// Class is the functional class of an instruction. It determines which
// issue queue and functional unit the uop needs and its execution latency.
type Class uint8

const (
	// IntALU is a single-cycle integer operation.
	IntALU Class = iota
	// IntMul is a multi-cycle integer multiply.
	IntMul
	// FPALU is a pipelined floating-point operation.
	FPALU
	// FPMul is a pipelined floating-point multiply.
	FPMul
	// Load reads memory through the data cache.
	Load
	// Store writes memory through the data cache.
	Store
	// CondBranch is a conditional branch (predicted by gshare).
	CondBranch
	// Jump is an unconditional direct jump (always taken; BTB target).
	Jump
	// Call is a subroutine call (pushes the RAS).
	Call
	// Ret is a subroutine return (predicted by the RAS).
	Ret
	numClasses
)

// NumClasses is the number of distinct instruction classes.
const NumClasses = int(numClasses)

var classNames = [...]string{
	IntALU:     "IntALU",
	IntMul:     "IntMul",
	FPALU:      "FPALU",
	FPMul:      "FPMul",
	Load:       "Load",
	Store:      "Store",
	CondBranch: "CondBranch",
	Jump:       "Jump",
	Call:       "Call",
	Ret:        "Ret",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// IsBranch reports whether the class redirects control flow.
func (c Class) IsBranch() bool {
	switch c {
	case CondBranch, Jump, Call, Ret:
		return true
	}
	return false
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// UsesFP reports whether the class uses the floating-point register file
// and issue queue.
func (c Class) UsesFP() bool { return c == FPALU || c == FPMul }

// Queue identifies one of the three shared issue queues.
type Queue uint8

const (
	// QInt is the integer issue queue.
	QInt Queue = iota
	// QFP is the floating-point issue queue.
	QFP
	// QLS is the load/store issue queue.
	QLS
	// NumQueues is the number of issue queues.
	NumQueues
)

func (q Queue) String() string {
	switch q {
	case QInt:
		return "int"
	case QFP:
		return "fp"
	case QLS:
		return "ls"
	}
	return fmt.Sprintf("Queue(%d)", uint8(q))
}

// QueueFor returns the issue queue a class dispatches into.
func (c Class) QueueFor() Queue {
	switch {
	case c.IsMem():
		return QLS
	case c.UsesFP():
		return QFP
	default:
		return QInt
	}
}

// Reg is an architectural register number. Integer and floating-point
// registers live in separate spaces; NoReg means "no operand".
type Reg int16

// NoReg marks an absent register operand.
const NoReg Reg = -1

// NumIntRegs and NumFPRegs are the architectural register counts per
// hardware context (Alpha-like).
const (
	NumIntRegs = 32
	NumFPRegs  = 32
)

// MemInfo carries the memory behaviour of a load or store uop, chosen by
// the workload generator.
type MemInfo struct {
	// Addr is the effective virtual byte address.
	Addr uint64
}

// BranchInfo carries the actual control-flow outcome of a branch uop.
type BranchInfo struct {
	// Taken is the actual direction (always true for Jump/Call/Ret).
	Taken bool
	// Target is the actual target PC when taken.
	Target uint64
}

// Uop is one dynamic instruction. The workload generator fills in the
// static fields and outcomes; the pipeline owns the (unexported) timing
// state it attaches elsewhere.
type Uop struct {
	// Seq is the per-thread dynamic sequence number (fetch order,
	// including wrong-path uops).
	Seq uint64
	// PC is the instruction's virtual address.
	PC uint64
	// Class is the functional class.
	Class Class
	// Dest is the architectural destination register (NoReg if none).
	// Loads and ALU ops write int or fp regs per class; stores and
	// branches have no dest.
	Dest Reg
	// Src1 and Src2 are architectural source registers (NoReg if unused).
	Src1 Reg
	Src2 Reg
	// Mem is valid when Class.IsMem().
	Mem MemInfo
	// Branch is valid when Class.IsBranch().
	Branch BranchInfo
	// WrongPath marks uops fetched past a mispredicted branch; they are
	// squashed when the branch resolves and never commit.
	WrongPath bool
}

// HasDest reports whether the uop writes a register.
func (u *Uop) HasDest() bool { return u.Dest != NoReg }
