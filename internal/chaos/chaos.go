// Package chaos is the fault-injection seam the durability layers
// (journal, stores, sweep submission) expose to tests and operational
// chaos drills. It is build-tag-free and nil-by-default: with no
// handler installed every Fire call is a no-op that costs one atomic
// load, so production binaries pay nothing for carrying the seam.
//
// A handler is a single function keyed by injection point names — the
// code under test declares the points ("journal.append",
// "sweep.journal.appended", "store.put", ...), the test or drill
// decides what happens there: return an error the caller must absorb,
// return ErrTorn to make a write land half-finished, or terminate the
// process outright (the in-process equivalent of kill -9, which is how
// scripts/chaos_service.sh crashes dwarnd between journal append and
// executor submit).
package chaos

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
)

// Handler decides what happens at an injection point. point names the
// seam; detail carries the caller's identifying context (a sweep id, a
// fingerprint). A nil return lets execution continue normally.
type Handler func(point, detail string) error

// ErrInjected is the generic injected failure. Handlers that just want
// "this operation fails here" return it (or wrap it).
var ErrInjected = errors.New("chaos: injected fault")

// ErrTorn instructs a cooperating writer (journal.Append) to simulate a
// crash mid-write: persist a deliberately truncated record, skip the
// fsync, and report failure — the durable state a real power cut
// between write and sync leaves behind.
var ErrTorn = fmt.Errorf("%w: torn write", ErrInjected)

var handler atomic.Pointer[Handler]

// Set installs h as the process-wide handler; nil disarms the seam.
// Tests must Set(nil) (or use t.Cleanup) when done — the handler is
// global state shared with every other seam in the process.
func Set(h Handler) {
	if h == nil {
		handler.Store(nil)
		return
	}
	handler.Store(&h)
}

// Active reports whether a handler is installed.
func Active() bool { return handler.Load() != nil }

// Fire consults the handler at a named point. With no handler installed
// it returns nil.
func Fire(point, detail string) error {
	h := handler.Load()
	if h == nil {
		return nil
	}
	return (*h)(point, detail)
}

// FromEnv parses an operational chaos spec (the DWARN_CHAOS environment
// variable in cmd/dwarnd) into a handler, or nil for an empty spec.
// Grammar, comma-separated:
//
//	exit:POINT[:N]   kill the process (exit 137, like SIGKILL) on the
//	                 Nth time POINT fires (default N=1)
//	error:POINT[:N]  return ErrInjected from the Nth firing onward
//	torn:POINT[:N]   return ErrTorn from the Nth firing onward
//
// Example: DWARN_CHAOS=exit:sweep.journal.appended crashes dwarnd
// immediately after a sweep's submit record is durably journaled and
// before any cell reaches the executor — the worst-case crash point
// restart recovery must cover.
func FromEnv(spec string) (Handler, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	type rule struct {
		action string
		point  string
		n      int64
		hits   atomic.Int64
	}
	var rules []*rule
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("chaos: bad rule %q (want action:point[:n])", part)
		}
		r := &rule{action: fields[0], point: fields[1], n: 1}
		switch r.action {
		case "exit", "error", "torn":
		default:
			return nil, fmt.Errorf("chaos: unknown action %q (want exit, error, or torn)", r.action)
		}
		if r.point == "" {
			return nil, fmt.Errorf("chaos: rule %q names no point", part)
		}
		if len(fields) == 3 {
			n, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("chaos: bad hit count in %q", part)
			}
			r.n = n
		}
		rules = append(rules, r)
	}
	return func(point, detail string) error {
		for _, r := range rules {
			if r.point != point {
				continue
			}
			hits := r.hits.Add(1)
			switch r.action {
			case "exit":
				if hits == r.n {
					fmt.Fprintf(os.Stderr, "chaos: exit at %s (%s), hit %d\n", point, detail, hits)
					os.Exit(137)
				}
			case "error":
				if hits >= r.n {
					return fmt.Errorf("%w at %s (%s)", ErrInjected, point, detail)
				}
			case "torn":
				if hits >= r.n {
					return ErrTorn
				}
			}
		}
		return nil
	}, nil
}
