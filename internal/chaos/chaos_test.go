package chaos

import (
	"errors"
	"testing"
)

func TestFireWithoutHandlerIsNoop(t *testing.T) {
	Set(nil)
	if Active() {
		t.Fatal("no handler installed, Active() = true")
	}
	if err := Fire("any.point", "detail"); err != nil {
		t.Fatalf("Fire with nil handler: %v", err)
	}
}

func TestSetAndFire(t *testing.T) {
	var gotPoint, gotDetail string
	Set(func(point, detail string) error {
		gotPoint, gotDetail = point, detail
		return ErrInjected
	})
	t.Cleanup(func() { Set(nil) })

	err := Fire("store.put", "abc123")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Fire = %v, want ErrInjected", err)
	}
	if gotPoint != "store.put" || gotDetail != "abc123" {
		t.Fatalf("handler saw (%q, %q)", gotPoint, gotDetail)
	}
}

func TestFromEnvEmpty(t *testing.T) {
	h, err := FromEnv("  ")
	if err != nil || h != nil {
		t.Fatalf("FromEnv(blank) = %v, %v; want nil, nil", h, err)
	}
}

func TestFromEnvErrorRule(t *testing.T) {
	h, err := FromEnv("error:journal.append:2")
	if err != nil {
		t.Fatal(err)
	}
	// First hit passes, second and later fail.
	if err := h("journal.append", "x"); err != nil {
		t.Fatalf("hit 1: %v, want nil", err)
	}
	for i := 2; i <= 3; i++ {
		if err := h("journal.append", "x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: %v, want ErrInjected", i, err)
		}
	}
	// Other points are untouched.
	if err := h("store.put", "x"); err != nil {
		t.Fatalf("unrelated point: %v", err)
	}
}

func TestFromEnvTornRule(t *testing.T) {
	h, err := FromEnv("torn:journal.append")
	if err != nil {
		t.Fatal(err)
	}
	if err := h("journal.append", "x"); !errors.Is(err, ErrTorn) {
		t.Fatalf("got %v, want ErrTorn", err)
	}
}

func TestFromEnvRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{"exit", "boom:p", "exit:p:0", "exit:p:x", "exit::", "exit:p:1:z"} {
		if _, err := FromEnv(spec); err == nil {
			t.Errorf("FromEnv(%q) accepted", spec)
		}
	}
}
