package trace

import (
	"compress/gzip"
	"fmt"
	"io"

	"dwarn/internal/isa"
	"dwarn/internal/workload"
)

// Writer accumulates per-thread uop streams and serializes them as one
// trace file. Threads are registered with Record, which returns a
// pass-through workload.Source: every correct-path uop flowing to the
// pipeline is encoded as a side effect, so recording a live simulation
// is just wrapping its sources. Wrong-path uops are deliberately not
// recorded — replay synthesizes them from the recorded metadata.
//
// A Writer is not safe for concurrent use; the simulator runs one CPU
// per goroutine, and all of a CPU's sources must be recorded by the
// same Writer from that goroutine.
type Writer struct {
	workload string
	seed     uint64
	threads  []*recorder
}

// NewWriter starts an empty trace for the named workload. seed is
// informational (it lets `smttrace info` say where a trace came from);
// replay never re-derives streams from it.
func NewWriter(workloadName string, seed uint64) *Writer {
	return &Writer{workload: workloadName, seed: seed}
}

// Record registers src as the next thread and returns a wrapper that
// records every correct-path uop it delivers.
func (w *Writer) Record(src workload.Source) workload.Source {
	meta := src.ReplayMeta()
	r := &recorder{src: src, meta: meta}
	w.threads = append(w.threads, r)
	return r
}

// Uops returns the number of uops recorded so far for thread t.
func (w *Writer) Uops(t int) uint64 { return w.threads[t].count }

// WriteTo serializes the trace. It may be called once, after the
// recorded run completes.
func (w *Writer) WriteTo(dst io.Writer) (int64, error) {
	if len(w.threads) == 0 {
		return 0, fmt.Errorf("trace: no threads recorded")
	}
	cw := &countWriter{w: dst}
	if _, err := cw.Write([]byte(fileMagic)); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write([]byte{fileVersion}); err != nil {
		return cw.n, err
	}

	gz := gzip.NewWriter(cw)
	var buf []byte
	buf = appendString(buf, w.workload)
	buf = appendUvarint(buf, w.seed)
	buf = appendUvarint(buf, uint64(len(w.threads)))
	if _, err := gz.Write(buf); err != nil {
		return cw.n, err
	}
	for _, t := range w.threads {
		hdr := appendMeta(nil, &t.meta)
		hdr = appendUvarint(hdr, t.count)
		hdr = appendUvarint(hdr, uint64(len(t.records)))
		if _, err := gz.Write(hdr); err != nil {
			return cw.n, err
		}
		if _, err := gz.Write(t.records); err != nil {
			return cw.n, err
		}
	}
	if err := gz.Close(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// appendMeta serializes one thread's ReplayMeta.
func appendMeta(buf []byte, m *workload.ReplayMeta) []byte {
	buf = appendString(buf, m.Benchmark)
	buf = appendUvarint(buf, m.Base)
	buf = appendUvarint(buf, m.StartPC)
	for _, f := range []float64{m.LoadFrac, m.StoreFrac, m.BranchFrac, m.IntMulFrac, m.FPFrac, m.FarW, m.MidW} {
		buf = appendFloat(buf, f)
	}
	fp := m.Footprint
	buf = appendUvarint(buf, fp.CodeBase)
	buf = appendUvarint(buf, uint64(fp.CodeBytes))
	buf = appendUvarint(buf, fp.HotBase)
	buf = appendUvarint(buf, uint64(fp.HotBytes))
	buf = appendUvarint(buf, fp.MidBase)
	buf = appendUvarint(buf, uint64(fp.MidBytes))
	buf = appendUvarint(buf, uint64(len(m.BlockStarts)))
	prev := int32(0)
	for _, b := range m.BlockStarts {
		buf = appendUvarint(buf, uint64(b-prev)) // ascending, so deltas are non-negative
		prev = b
	}
	return buf
}

// countWriter counts bytes written through it.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// recorder is the pass-through Source wrapping one recorded thread.
type recorder struct {
	src     workload.Source
	meta    workload.ReplayMeta
	st      codecState
	records []byte
	count   uint64
}

// Next records and forwards the next correct-path uop.
func (r *recorder) Next() isa.Uop {
	u := r.src.Next()
	r.records = appendUop(r.records, &u, &r.st)
	r.count++
	return u
}

// The remaining Source methods delegate untouched: wrong paths are
// synthesized identically at replay, so recording them would only
// bloat the trace.
func (r *recorder) StartPC() uint64                     { return r.src.StartPC() }
func (r *recorder) StartWrongPath(salt, startPC uint64) { r.src.StartWrongPath(salt, startPC) }
func (r *recorder) WrongPathPC(u *isa.Uop, predictedTaken bool) uint64 {
	return r.src.WrongPathPC(u, predictedTaken)
}
func (r *recorder) NextWrongPath() isa.Uop          { return r.src.NextWrongPath() }
func (r *recorder) Footprint() workload.Footprint   { return r.src.Footprint() }
func (r *recorder) ReplayMeta() workload.ReplayMeta { return r.meta }
