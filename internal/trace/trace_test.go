package trace

import (
	"bytes"
	"sync"
	"testing"

	"dwarn/internal/isa"
	"dwarn/internal/workload"
)

// recordStandalone records n uops per thread of the named workload into
// a serialized trace, returning the file bytes.
func recordStandalone(t testing.TB, wlName string, seed uint64, n int) []byte {
	t.Helper()
	wl, err := workload.GetWorkload(wlName)
	if err != nil {
		t.Fatal(err)
	}
	srcs, err := wl.Generators(seed)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(wl.Name, seed)
	for _, src := range srcs {
		rec := w.Record(src)
		for i := 0; i < n; i++ {
			rec.Next()
		}
	}
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func readTrace(t testing.TB, raw []byte) *Trace {
	t.Helper()
	tr, err := Read(bytes.NewReader(raw), 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestRoundTripUopStream is the core property: replaying a recorded
// trace yields, uop for uop, the stream a fresh generator produces.
func TestRoundTripUopStream(t *testing.T) {
	const n = 20000
	raw := recordStandalone(t, "2-MIX", 42, n)
	tr := readTrace(t, raw)

	wl, _ := workload.GetWorkload("2-MIX")
	fresh, err := wl.Generators(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Threads) != len(fresh) {
		t.Fatalf("thread count %d, want %d", len(tr.Threads), len(fresh))
	}
	for ti, src := range tr.Sources() {
		for i := 0; i < n; i++ {
			got, want := src.Next(), fresh[ti].Next()
			if got != want {
				t.Fatalf("thread %d uop %d:\n got %+v\nwant %+v", ti, i, got, want)
			}
		}
	}
}

// TestRoundTripMetadata checks the recorded identity survives the
// encode/decode cycle.
func TestRoundTripMetadata(t *testing.T) {
	raw := recordStandalone(t, "2-MEM", 7, 500)
	tr := readTrace(t, raw)

	if tr.Workload != "2-MEM" || tr.Seed != 7 {
		t.Errorf("workload/seed = %q/%d", tr.Workload, tr.Seed)
	}
	if tr.Digest == "" || len(tr.Digest) != 64 {
		t.Errorf("digest %q", tr.Digest)
	}
	wl, _ := workload.GetWorkload("2-MEM")
	srcs, _ := wl.Generators(7)
	for i, th := range tr.Threads {
		want := srcs[i].ReplayMeta()
		if th.Meta.Benchmark != want.Benchmark || th.Meta.Base != want.Base || th.Meta.StartPC != want.StartPC {
			t.Errorf("thread %d meta identity mismatch: %+v", i, th.Meta)
		}
		if th.Meta.Footprint != want.Footprint {
			t.Errorf("thread %d footprint %+v, want %+v", i, th.Meta.Footprint, want.Footprint)
		}
		if len(th.Meta.BlockStarts) != len(want.BlockStarts) {
			t.Fatalf("thread %d block count %d, want %d", i, len(th.Meta.BlockStarts), len(want.BlockStarts))
		}
		for j := range want.BlockStarts {
			if th.Meta.BlockStarts[j] != want.BlockStarts[j] {
				t.Fatalf("thread %d block %d = %d, want %d", i, j, th.Meta.BlockStarts[j], want.BlockStarts[j])
			}
		}
		if th.Meta.FarW != want.FarW || th.Meta.MidW != want.MidW || th.Meta.LoadFrac != want.LoadFrac {
			t.Errorf("thread %d wrong-path params mismatch", i)
		}
	}
}

// TestWrongPathReplayMatchesGenerator: after consuming the same prefix,
// the replayer's synthesized wrong-path episode must be bit-identical
// to the live generator's — including the redirect PC.
func TestWrongPathReplayMatchesGenerator(t *testing.T) {
	const prefix, episode = 5000, 200
	raw := recordStandalone(t, "2-MIX", 11, prefix+10)
	tr := readTrace(t, raw)

	wl, _ := workload.GetWorkload("2-MIX")
	fresh, _ := wl.Generators(11)

	for ti, src := range tr.Sources() {
		gen := fresh[ti]
		var branch isa.Uop
		for i := 0; i < prefix; i++ {
			a, b := src.Next(), gen.Next()
			if a != b {
				t.Fatalf("thread %d prefix diverged at %d", ti, i)
			}
			if a.Class == isa.CondBranch {
				branch = a
			}
		}
		if branch.PC == 0 {
			t.Fatalf("thread %d: no conditional branch in prefix", ti)
		}
		wpPCr := src.WrongPathPC(&branch, !branch.Branch.Taken)
		wpPCg := gen.WrongPathPC(&branch, !branch.Branch.Taken)
		if wpPCr != wpPCg {
			t.Fatalf("thread %d wrong-path PC %#x, want %#x", ti, wpPCr, wpPCg)
		}
		src.StartWrongPath(branch.Seq, wpPCr)
		gen.StartWrongPath(branch.Seq, wpPCg)
		for i := 0; i < episode; i++ {
			a, b := src.NextWrongPath(), gen.NextWrongPath()
			if a != b {
				t.Fatalf("thread %d wrong-path uop %d:\n got %+v\nwant %+v", ti, i, a, b)
			}
		}
	}
}

// TestReplayerLoops: exhausting the stream wraps instead of crashing,
// and reports the wrap count.
func TestReplayerLoops(t *testing.T) {
	const n = 100
	raw := recordStandalone(t, "2-ILP", 3, n)
	tr := readTrace(t, raw)
	r := NewReplayer(&tr.Threads[0])
	seen := make(map[uint64]bool)
	for i := 0; i < 3*n; i++ {
		u := r.Next()
		if u.Seq != uint64(i) {
			t.Fatalf("seq %d at uop %d", u.Seq, i)
		}
		seen[u.PC] = true
	}
	if r.Loops() != 2 {
		t.Fatalf("loops = %d, want 2", r.Loops())
	}
	if len(seen) == 0 {
		t.Fatal("no PCs seen")
	}
}

// TestConcurrentReplayersShareTrace: replayers over one Trace must be
// independent and race-free (run with -race).
func TestConcurrentReplayersShareTrace(t *testing.T) {
	const n = 4000
	raw := recordStandalone(t, "2-MIX", 21, n)
	tr := readTrace(t, raw)

	const replicas = 4
	streams := make([][]isa.Uop, replicas)
	var wg sync.WaitGroup
	for k := 0; k < replicas; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			r := NewReplayer(&tr.Threads[0])
			out := make([]isa.Uop, 0, n)
			for i := 0; i < n; i++ {
				out = append(out, r.Next())
			}
			// Exercise wrong-path synthesis concurrently too.
			r.StartWrongPath(uint64(n), r.StartPC())
			for i := 0; i < 100; i++ {
				out = append(out, r.NextWrongPath())
			}
			streams[k] = out
		}(k)
	}
	wg.Wait()
	for k := 1; k < replicas; k++ {
		if len(streams[k]) != len(streams[0]) {
			t.Fatalf("replica %d length %d", k, len(streams[k]))
		}
		for i := range streams[0] {
			if streams[k][i] != streams[0][i] {
				t.Fatalf("replica %d diverged at uop %d", k, i)
			}
		}
	}
}

// TestCorruptTraces covers the error paths of Read.
func TestCorruptTraces(t *testing.T) {
	good := recordStandalone(t, "2-ILP", 5, 2000)

	cases := []struct {
		name string
		raw  []byte
	}{
		{"empty", nil},
		{"short header", good[:3]},
		{"bad magic", append([]byte("NOPE"), good[4:]...)},
		{"bad version", append(append([]byte{}, "DWTR\xff"...), good[5:]...)},
		{"truncated half", good[:len(good)/2]},
		{"truncated tail", good[:len(good)-7]},
		{"trailing garbage", append(append([]byte{}, good...), 0xde, 0xad)},
	}
	// Flip a byte inside the compressed payload: either the gzip frame
	// or the decoded records must fail validation.
	flipped := append([]byte{}, good...)
	flipped[len(flipped)/2] ^= 0x40
	cases = append(cases, struct {
		name string
		raw  []byte
	}{"flipped byte", flipped})

	for _, c := range cases {
		if _, err := Read(bytes.NewReader(c.raw), 0); err == nil {
			t.Errorf("%s: Read accepted corrupt input", c.name)
		}
	}
}

// TestEmptyStreamRejected: a thread declaring zero uops must be
// rejected at load — the replayer would otherwise wrap forever without
// producing a uop, and the "unreachable" decode panic would take down
// whatever service goroutine was running the simulation.
func TestEmptyStreamRejected(t *testing.T) {
	wl, _ := workload.GetWorkload("2-ILP")
	srcs, _ := wl.Generators(3)
	w := NewWriter(wl.Name, 3)
	w.Record(srcs[0]) // registered, but no uops ever recorded
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()), 0); err == nil {
		t.Fatal("Read accepted a zero-uop thread")
	}
}

// metaOverrideSource inflates the recorded metadata to simulate a
// hostile upload (the stream bytes themselves stay valid).
type metaOverrideSource struct {
	workload.Source
	meta workload.ReplayMeta
}

func (f *metaOverrideSource) ReplayMeta() workload.ReplayMeta { return f.meta }

// TestHugeFootprintRejected: declared region sizes are capped at load,
// because the simulator pre-touches every declared line before the
// first cycle — an unbounded CodeBytes would wedge a worker goroutine
// beyond the reach of job cancellation.
func TestHugeFootprintRejected(t *testing.T) {
	wl, _ := workload.GetWorkload("2-ILP")
	srcs, _ := wl.Generators(3)
	meta := srcs[0].ReplayMeta()
	meta.Footprint.CodeBytes = 1 << 50

	w := NewWriter(wl.Name, 3)
	rec := w.Record(&metaOverrideSource{Source: srcs[0], meta: meta})
	for i := 0; i < 100; i++ {
		rec.Next()
	}
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()), 0); err == nil {
		t.Fatal("Read accepted a petabyte code footprint")
	}
}

// TestPayloadCap: the decompression bomb guard trips.
func TestPayloadCap(t *testing.T) {
	good := recordStandalone(t, "2-ILP", 5, 5000)
	if _, err := Read(bytes.NewReader(good), 64); err == nil {
		t.Fatal("Read accepted payload over the cap")
	}
}

// TestCompression sanity-checks that delta+varint+gzip earns its keep:
// well under the ~26 bytes a naive fixed-width encoding would need.
func TestCompression(t *testing.T) {
	const n = 50000
	raw := recordStandalone(t, "2-MIX", 42, n)
	perUop := float64(len(raw)) / (2 * n)
	t.Logf("trace: %d bytes for %d uops (%.2f bytes/uop)", len(raw), 2*n, perUop)
	if perUop > 8 {
		t.Errorf("encoding too fat: %.2f bytes/uop", perUop)
	}
}

// BenchmarkGeneratorNext and BenchmarkReplayerNext compare uops/sec
// delivered to the pipeline: the replay fast path must beat synthetic
// generation (the acceptance criterion for the trace subsystem).
func BenchmarkGeneratorNext(b *testing.B) {
	p, err := workload.Get("gzip")
	if err != nil {
		b.Fatal(err)
	}
	g := workload.NewGenerator(p, 42, 1<<40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "uops/s")
}

func BenchmarkReplayerNext(b *testing.B) {
	raw := recordStandalone(b, "2-ILP", 42, 200000)
	tr := readTrace(b, raw)
	r := NewReplayer(&tr.Threads[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Next()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "uops/s")
}
