// Package trace records and replays binary uop traces. A trace captures
// one run's correct-path uop streams — one stream per thread, varint and
// delta encoded, gzip framed — together with the per-thread metadata
// (workload.ReplayMeta) a replayer needs to reconstruct each thread's
// wrong-path synthesis byte-exactly. Replaying a trace therefore
// reproduces a live synthetic run bit for bit, for any fetch policy,
// while skipping CFG walking and operand synthesis entirely.
//
// File layout:
//
//	magic "DWTR" (4 bytes) | version (1 byte) | gzip(payload)
//
// payload:
//
//	workloadName string | seed uvarint | threadCount uvarint
//	per thread:
//	  meta (see appendMeta) | recordByteLen uvarint | records
//
// Each record encodes one correct-path uop:
//
//	head byte: class (low 4 bits) | flagPCSeq | flagTaken
//	[pc delta zigzag]    — omitted when flagPCSeq (PC == prev+4)
//	[registers]          — class-dependent, 1 byte each (0xFF = NoReg)
//	[mem addr zigzag]    — delta from the thread's previous data address
//	[branch target zigzag] — delta from the fall-through PC
//
// Sequence numbers and the WrongPath flag are not stored: correct-path
// sequence numbers are positional, and traces record the correct path
// only (wrong paths are synthesized at replay).
package trace

import (
	"encoding/binary"
	"fmt"
	"math"

	"dwarn/internal/isa"
)

// fileMagic and fileVersion identify the container format.
const (
	fileMagic   = "DWTR"
	fileVersion = 1
)

// Head-byte flags (class occupies the low 4 bits).
const (
	flagPCSeq = 1 << 4 // PC == previous PC + 4; pc delta omitted
	flagTaken = 1 << 5 // branch actual direction
)

// noRegByte encodes isa.NoReg in one byte.
const noRegByte = 0xFF

// Sanity bounds applied when decoding untrusted trace files (the dwarnd
// upload endpoint feeds request bodies straight into the reader).
const (
	maxThreads     = 64
	maxStringLen   = 4096
	maxBlockStarts = 1 << 22
)

// codecState is the per-thread delta-encoding state, symmetric between
// encode and decode.
type codecState struct {
	prevPC  uint64
	prevMem uint64
}

// appendUvarint/appendZigzag are small wrappers over encoding/binary.
func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendZigzag(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

func appendReg(buf []byte, r isa.Reg) []byte {
	if r == isa.NoReg {
		return append(buf, noRegByte)
	}
	return append(buf, byte(r))
}

// appendUop delta-encodes one correct-path uop.
func appendUop(buf []byte, u *isa.Uop, st *codecState) []byte {
	head := byte(u.Class) & 0x0F
	pcSeq := u.PC == st.prevPC+4
	if pcSeq {
		head |= flagPCSeq
	}
	if u.Class.IsBranch() && u.Branch.Taken {
		head |= flagTaken
	}
	buf = append(buf, head)
	if !pcSeq {
		buf = appendZigzag(buf, int64(u.PC-st.prevPC))
	}
	st.prevPC = u.PC

	switch u.Class {
	case isa.IntALU, isa.IntMul, isa.FPALU, isa.FPMul:
		buf = appendReg(buf, u.Src1)
		buf = appendReg(buf, u.Src2)
		buf = appendReg(buf, u.Dest)
	case isa.Load:
		buf = appendReg(buf, u.Src1)
		buf = appendReg(buf, u.Dest)
	case isa.Store:
		buf = appendReg(buf, u.Src1)
		buf = appendReg(buf, u.Src2)
	case isa.CondBranch:
		buf = appendReg(buf, u.Src1)
	}

	if u.Class.IsMem() {
		buf = appendZigzag(buf, int64(u.Mem.Addr-st.prevMem))
		st.prevMem = u.Mem.Addr
	}
	if u.Class.IsBranch() {
		buf = appendZigzag(buf, int64(u.Branch.Target-(u.PC+4)))
	}
	return buf
}

// decodeUop decodes one record from data, returning the bytes consumed.
// It is the exact inverse of appendUop.
func decodeUop(data []byte, st *codecState, u *isa.Uop) (int, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("trace: truncated record")
	}
	head := data[0]
	pos := 1
	class := isa.Class(head & 0x0F)
	if int(class) >= isa.NumClasses {
		return 0, fmt.Errorf("trace: invalid class %d", class)
	}
	*u = isa.Uop{Class: class, Dest: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}

	if head&flagPCSeq != 0 {
		u.PC = st.prevPC + 4
	} else {
		d, n := binary.Varint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("trace: bad pc delta")
		}
		pos += n
		u.PC = st.prevPC + uint64(d)
	}
	st.prevPC = u.PC

	readReg := func(r *isa.Reg) error {
		if pos >= len(data) {
			return fmt.Errorf("trace: truncated register")
		}
		b := data[pos]
		pos++
		if b == noRegByte {
			*r = isa.NoReg
		} else if b >= isa.NumIntRegs {
			return fmt.Errorf("trace: invalid register %d", b)
		} else {
			*r = isa.Reg(b)
		}
		return nil
	}
	var err error
	switch class {
	case isa.IntALU, isa.IntMul, isa.FPALU, isa.FPMul:
		if err = readReg(&u.Src1); err == nil {
			if err = readReg(&u.Src2); err == nil {
				err = readReg(&u.Dest)
			}
		}
	case isa.Load:
		if err = readReg(&u.Src1); err == nil {
			err = readReg(&u.Dest)
		}
	case isa.Store:
		if err = readReg(&u.Src1); err == nil {
			err = readReg(&u.Src2)
		}
	case isa.CondBranch:
		err = readReg(&u.Src1)
	}
	if err != nil {
		return 0, err
	}

	if class.IsMem() {
		d, n := binary.Varint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("trace: bad mem delta")
		}
		pos += n
		u.Mem.Addr = st.prevMem + uint64(d)
		st.prevMem = u.Mem.Addr
	}
	if class.IsBranch() {
		d, n := binary.Varint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("trace: bad branch target")
		}
		pos += n
		u.Branch.Target = u.PC + 4 + uint64(d)
		u.Branch.Taken = head&flagTaken != 0
	}
	return pos, nil
}
