package trace

import (
	"compress/gzip"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"os"

	"dwarn/internal/isa"
	"dwarn/internal/workload"
)

// DefaultMaxPayload caps the decompressed payload Read will accept, so
// a hostile upload cannot decompression-bomb the service.
const DefaultMaxPayload = 1 << 30

// Trace is a fully loaded, validated uop trace. It is immutable after
// Read and safe for concurrent use: replayers share the decoded record
// bytes read-only and keep all mutable state to themselves, so one
// uploaded trace can back many simultaneous simulations.
type Trace struct {
	// Workload is the recorded workload's name; Seed the seed the
	// recording run used (informational — replay never re-derives).
	Workload string
	Seed     uint64
	// Digest is the hex SHA-256 of the trace file bytes: the trace's
	// content address, folded into sim.Fingerprint for cache identity.
	Digest string
	// Threads holds one recorded stream per hardware context.
	Threads []Thread
}

// Thread is one recorded per-thread stream.
type Thread struct {
	// Meta reconstructs the thread's wrong-path synthesizer.
	Meta workload.ReplayMeta
	// Uops is the number of recorded correct-path uops.
	Uops uint64
	// records holds the encoded uop stream (validated at load).
	records []byte
}

// Benchmarks returns the per-thread benchmark names, in thread order.
func (t *Trace) Benchmarks() []string {
	out := make([]string, len(t.Threads))
	for i := range t.Threads {
		out[i] = t.Threads[i].Meta.Benchmark
	}
	return out
}

// Uops returns the total recorded uop count across threads.
func (t *Trace) Uops() uint64 {
	var n uint64
	for i := range t.Threads {
		n += t.Threads[i].Uops
	}
	return n
}

// PayloadBytes returns the trace's in-memory footprint: the decoded
// record bytes plus the block tables (stores use it for capacity
// accounting).
func (t *Trace) PayloadBytes() int64 {
	var n int64
	for i := range t.Threads {
		n += int64(len(t.Threads[i].records)) + int64(len(t.Threads[i].Meta.BlockStarts))*4
	}
	return n
}

// Sources returns fresh replayers, one per thread, each starting at the
// beginning of its stream. Call once per simulation.
func (t *Trace) Sources() []workload.Source {
	out := make([]workload.Source, len(t.Threads))
	for i := range t.Threads {
		out[i] = NewReplayer(&t.Threads[i])
	}
	return out
}

// ReadFile loads and validates a trace file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, 0)
}

// Read loads and validates a trace from r. maxPayload caps the
// decompressed payload size (0 means DefaultMaxPayload). Every record
// of every thread is decoded once here, so a Trace that loads without
// error can never fail mid-replay.
func Read(r io.Reader, maxPayload int64) (*Trace, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	h := sha256.New()
	raw := io.TeeReader(r, h)

	hdr := make([]byte, len(fileMagic)+1)
	if _, err := io.ReadFull(raw, hdr); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(hdr[:len(fileMagic)]) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q (not a trace file)", hdr[:len(fileMagic)])
	}
	if hdr[len(fileMagic)] != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", hdr[len(fileMagic)], fileVersion)
	}

	gz, err := gzip.NewReader(raw)
	if err != nil {
		return nil, fmt.Errorf("trace: corrupt gzip frame: %w", err)
	}
	payload, err := io.ReadAll(io.LimitReader(gz, maxPayload+1))
	if err != nil {
		return nil, fmt.Errorf("trace: corrupt payload: %w", err)
	}
	if int64(len(payload)) > maxPayload {
		return nil, fmt.Errorf("trace: payload exceeds %d bytes", maxPayload)
	}
	if err := gz.Close(); err != nil {
		return nil, fmt.Errorf("trace: corrupt gzip frame: %w", err)
	}

	d := &decoder{data: payload}
	t := &Trace{}
	t.Workload = d.str()
	t.Seed = d.uvarint()
	n := d.uvarint()
	if d.err == nil && (n == 0 || n > maxThreads) {
		return nil, fmt.Errorf("trace: implausible thread count %d", n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		th, err := d.thread()
		if err != nil {
			return nil, fmt.Errorf("trace: thread %d: %w", i, err)
		}
		t.Threads = append(t.Threads, th)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(payload) {
		return nil, fmt.Errorf("trace: %d trailing bytes", len(payload)-d.pos)
	}
	t.Digest = hex.EncodeToString(h.Sum(nil))
	return t, nil
}

// decoder is a cursor over the decompressed payload.
type decoder struct {
	data []byte
	pos  int
	err  error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("trace: "+format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail("truncated varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxStringLen || d.pos+int(n) > len(d.data) {
		d.fail("implausible string length %d", n)
		return ""
	}
	s := string(d.data[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

func (d *decoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.data) {
		d.fail("truncated float at offset %d", d.pos)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.pos:]))
	d.pos += 8
	return v
}

// thread decodes one thread's metadata and validates its record bytes
// by decoding every record once.
func (d *decoder) thread() (Thread, error) {
	var th Thread
	m := &th.Meta
	m.Benchmark = d.str()
	m.Base = d.uvarint()
	m.StartPC = d.uvarint()
	for _, dst := range []*float64{&m.LoadFrac, &m.StoreFrac, &m.BranchFrac, &m.IntMulFrac, &m.FPFrac, &m.FarW, &m.MidW} {
		*dst = d.float()
	}
	m.Footprint.CodeBase = d.uvarint()
	m.Footprint.CodeBytes = int(d.uvarint())
	m.Footprint.HotBase = d.uvarint()
	m.Footprint.HotBytes = int(d.uvarint())
	m.Footprint.MidBase = d.uvarint()
	m.Footprint.MidBytes = int(d.uvarint())
	nb := d.uvarint()
	if d.err == nil && (nb == 0 || nb > maxBlockStarts) {
		return th, fmt.Errorf("implausible block count %d", nb)
	}
	if d.err == nil {
		m.BlockStarts = make([]int32, 0, nb)
		prev := int32(0)
		for i := uint64(0); i < nb && d.err == nil; i++ {
			prev += int32(d.uvarint())
			m.BlockStarts = append(m.BlockStarts, prev)
		}
	}
	th.Uops = d.uvarint()
	recLen := d.uvarint()
	if d.err != nil {
		return th, d.err
	}
	if th.Uops == 0 || recLen == 0 {
		// An empty stream would make the replayer wrap forever without
		// ever producing a uop.
		return th, fmt.Errorf("empty uop stream")
	}
	if th.Uops > maxUopsPerThread || recLen > uint64(len(d.data)-d.pos) {
		return th, fmt.Errorf("truncated records (%d declared bytes, %d remain)", recLen, len(d.data)-d.pos)
	}
	// Footprint bounds: wrong-path synthesis samples within the hot and
	// mid regions (zero sizes would divide by zero mid-replay), and the
	// simulator pre-touches every declared line before the first cycle —
	// an absurdly large declared region would wedge that loop, so cap
	// all three well above anything a real generator emits.
	fpt := m.Footprint
	if fpt.HotBytes < lineBytesMin || fpt.MidBytes < lineBytesMin || fpt.CodeBytes < 0 ||
		fpt.CodeBytes > maxFootprintBytes || fpt.HotBytes > maxFootprintBytes || fpt.MidBytes > maxFootprintBytes {
		return th, fmt.Errorf("implausible footprint %+v", fpt)
	}
	th.records = d.data[d.pos : d.pos+int(recLen)]
	d.pos += int(recLen)

	// Validation pass: every record must decode and the count must
	// match, so replay can run panic-free on the hot path.
	var st codecState
	var u isa.Uop
	pos := 0
	for i := uint64(0); i < th.Uops; i++ {
		n, err := decodeUop(th.records[pos:], &st, &u)
		if err != nil {
			return th, fmt.Errorf("record %d: %w", i, err)
		}
		pos += n
	}
	if pos != len(th.records) {
		return th, fmt.Errorf("record bytes mismatch: %d decoded, %d stored", pos, len(th.records))
	}
	return th, nil
}

// lineBytesMin guards the wrong-path address sampler's modular
// arithmetic (hot/mid sampling divides by the region size in lines).
const lineBytesMin = 64

// maxUopsPerThread bounds a single thread's declared record count.
const maxUopsPerThread = 1 << 32

// maxFootprintBytes caps each declared memory region (64 MiB — real
// calibrated profiles stay under 256 KiB). The simulator pre-touches
// every declared line, so an unbounded region would turn prewarming
// into an unkillable multi-year loop on a hostile upload.
const maxFootprintBytes = 64 << 20

// Replayer replays one recorded thread as a workload.Source. The
// correct path is decoded from the trace; wrong-path episodes are
// synthesized with the same WrongPathSynth the live generator uses,
// primed from counters and cursors tracked over the delivered stream —
// so a replayed simulation is bit-identical to the live run it was
// recorded from, under any fetch policy.
//
// A replayer that exhausts its stream wraps to the beginning (keeping
// its counters and cursors), so an under-provisioned trace degrades
// gracefully instead of crashing a long simulation; Loops reports how
// often that happened so callers can flag divergence from the recorded
// run.
type Replayer struct {
	th  *Thread
	st  codecState
	pos int

	seq   uint64
	loops int
	wpSt  workload.WrongPathState
	wp    workload.WrongPathSynth
}

// NewReplayer builds a fresh replayer over a loaded thread stream.
func NewReplayer(th *Thread) *Replayer {
	r := &Replayer{th: th}
	r.wp = workload.NewWrongPathSynth(&th.Meta)
	return r
}

// Compile-time check: a Replayer is a drop-in uop source.
var _ workload.Source = (*Replayer)(nil)

// Next decodes the next correct-path uop from the trace.
func (r *Replayer) Next() isa.Uop {
	if r.pos >= len(r.th.records) {
		// Exhausted: wrap. Delta state restarts, counters continue.
		r.pos = 0
		r.st = codecState{}
		r.loops++
	}
	var u isa.Uop
	n, err := decodeUop(r.th.records[r.pos:], &r.st, &u)
	if err != nil {
		// Unreachable for traces loaded through Read, which validates
		// every record.
		panic(fmt.Sprintf("trace: corrupt record at offset %d: %v", r.pos, err))
	}
	r.pos += n
	u.Seq = r.seq
	r.seq++
	r.th.Meta.TrackUop(&r.wpSt, &u)
	return u
}

// Loops reports how many times the replayer wrapped past the end of the
// recorded stream (0 means the trace covered the whole run).
func (r *Replayer) Loops() int { return r.loops }

// StartPC implements workload.Source.
func (r *Replayer) StartPC() uint64 { return r.th.Meta.StartPC }

// StartWrongPath implements workload.Source, priming the synthesizer
// with the tracked correct-path state.
func (r *Replayer) StartWrongPath(salt, startPC uint64) {
	r.wp.Start(salt, startPC, r.wpSt)
}

// WrongPathPC implements workload.Source.
func (r *Replayer) WrongPathPC(u *isa.Uop, predictedTaken bool) uint64 {
	return r.wp.PCAfterMispredict(u, predictedTaken)
}

// NextWrongPath implements workload.Source.
func (r *Replayer) NextWrongPath() isa.Uop { return r.wp.Next() }

// Footprint implements workload.Source.
func (r *Replayer) Footprint() workload.Footprint { return r.th.Meta.Footprint }

// ReplayMeta implements workload.Source (re-recording a replay is
// legal and yields an equivalent trace).
func (r *Replayer) ReplayMeta() workload.ReplayMeta { return r.th.Meta }
