package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): families in registration
// order, each with its # HELP and # TYPE lines, histograms expanded
// into cumulative _bucket/_sum/_count series. Func-backed series are
// sampled at write time.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.order {
		f := r.families[name]
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind.typeName())
		for _, suffix := range f.order {
			s := f.series[suffix]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, suffix, s.c.Value())
			case kindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, suffix, formatFloat(s.g.Value()))
			case kindCounterFunc, kindGaugeFunc:
				v := 0.0
				if s.fn != nil {
					v = s.fn()
				}
				fmt.Fprintf(bw, "%s%s %s\n", f.name, suffix, formatFloat(v))
			case kindHistogram:
				writeHistogram(bw, f.name, suffix, s.h)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative buckets with
// an le label, then _sum and _count.
func writeHistogram(w io.Writer, name, suffix string, h *Histogram) {
	// The le label joins any existing labels inside the braces.
	open, cum := "{", uint64(0)
	if suffix != "" {
		open = suffix[:len(suffix)-1] + ","
	}
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%sle=\"%s\"} %d\n", name, open, formatFloat(b), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", name, open, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.count.Load())
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sampleLine matches one exposition sample: a metric name, an optional
// {label="value",...} block, and a float value. Label values are
// matched as proper quoted strings (backslash escapes allowed), so
// values containing braces — route patterns like "/v2/sweeps/{id}" —
// parse correctly. Tests use ParseText to assert dwarnd's /metrics
// output is well-formed, so this is strict about the pieces it matches.
var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$`)

// ParseText parses Prometheus text exposition into a map from full
// series name (including the label block exactly as rendered) to value.
// It fails on any line that is neither a comment, blank, nor a
// well-formed sample, and on samples whose family lacks a preceding
// # TYPE line — which makes it a structural validator for tests as
// much as a reader.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	typed := make(map[string]string) // family -> type
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, fmt.Errorf("obs: line %d: malformed TYPE comment %q", lineNo, line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("obs: line %d: unknown metric type %q", lineNo, fields[3])
			}
			typed[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("obs: line %d: malformed sample %q", lineNo, line)
		}
		name := m[1]
		fam := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suf); ok && typed[base] == "histogram" {
				fam = base
				break
			}
		}
		if _, ok := typed[fam]; !ok {
			return nil, fmt.Errorf("obs: line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: bad value %q: %v", lineNo, m[3], err)
		}
		out[m[1]+m[2]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
