package obs

import "testing"

// TestMetricsHotPathZeroAlloc guards the instrumentation contract the
// executor and cycle-engine snapshot rely on: once a metric handle
// exists, recording through it must not allocate. If an increment on
// the executor's per-cell path ever allocates, sweep throughput pays
// for observability — this test makes that a build failure instead of
// a profile surprise.
func TestMetricsHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_alloc_total", "alloc guard", L("state", "done"))
	g := r.Gauge("t_alloc_gauge", "alloc guard")
	h := r.Histogram("t_alloc_seconds", "alloc guard", RunBuckets, L("policy", "dwarn"))

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(42) }},
		{"Gauge.Add", func() { g.Add(1) }},
		{"Histogram.Observe", func() { h.Observe(0.0042) }},
	}
	for _, tc := range cases {
		if avg := testing.AllocsPerRun(1000, tc.fn); avg != 0 {
			t.Errorf("%s: %.4f allocs/op, want 0", tc.name, avg)
		}
	}
}
