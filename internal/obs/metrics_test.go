package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_events_total", "events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}

	g := r.Gauge("t_depth", "depth")
	g.Set(3.5)
	g.Add(1.5)
	g.Dec()
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %v, want 4", got)
	}

	h := r.Histogram("t_seconds", "seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("histogram count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-106.05) > 1e-9 {
		t.Errorf("histogram sum = %v, want 106.05", h.Sum())
	}
}

func TestRegistryGetOrCreateReturnsSameHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("t_hits_total", "hits", L("route", "/x"))
	b := r.Counter("t_hits_total", "hits", L("route", "/x"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	other := r.Counter("t_hits_total", "hits", L("route", "/y"))
	if a == other {
		t.Fatal("distinct labels returned the same counter")
	}
	// Label order must not matter for identity.
	x := r.Gauge("t_g", "g", L("a", "1"), L("b", "2"))
	y := r.Gauge("t_g", "g", L("b", "2"), L("a", "1"))
	if x != y {
		t.Fatal("label order changed series identity")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_thing", "thing")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("t_thing", "thing")
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_requests_total", "requests", L("route", "/v1"), L("code", "200")).Add(7)
	r.Gauge("t_queue_depth", "queue").Set(3)
	r.GaugeFunc("t_active", "active", func() float64 { return 2 })
	h := r.Histogram("t_latency_seconds", "latency", []float64{0.1, 1}, L("route", "/v1"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	series, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition did not parse: %v\n%s", err, text)
	}

	want := map[string]float64{
		`t_requests_total{code="200",route="/v1"}`: 7,
		`t_queue_depth`: 3,
		`t_active`:      2,
		`t_latency_seconds_bucket{route="/v1",le="0.1"}`:  1,
		`t_latency_seconds_bucket{route="/v1",le="1"}`:    2,
		`t_latency_seconds_bucket{route="/v1",le="+Inf"}`: 3,
		`t_latency_seconds_count{route="/v1"}`:            3,
	}
	for k, v := range want {
		if got, ok := series[k]; !ok || got != v {
			t.Errorf("series %s = %v (present=%v), want %v\n%s", k, got, ok, v, text)
		}
	}
	if got := series[`t_latency_seconds_sum{route="/v1"}`]; math.Abs(got-5.55) > 1e-9 {
		t.Errorf("histogram sum = %v, want 5.55", got)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	cases := []string{
		"t_x 1",                       // sample without TYPE
		"# TYPE t_x counter\nt_x one", // non-numeric value
		"# TYPE t_x counter\nt_x{ 1",  // broken label block
		"# TYPE t_x flavour\nt_x 1",   // unknown type
	}
	for _, c := range cases {
		if _, err := ParseText(strings.NewReader(c)); err == nil {
			t.Errorf("ParseText accepted malformed input %q", c)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_esc_total", "esc", L("path", `a"b\c`+"\n")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `path="a\"b\\c\n"`) {
		t.Errorf("label not escaped: %s", sb.String())
	}
	if _, err := ParseText(strings.NewReader(sb.String())); err != nil {
		t.Errorf("escaped output did not parse: %v", err)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_conc_total", "conc")
	h := r.Histogram("t_conc_seconds", "conc", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.01)
				r.Gauge("t_conc_gauge", "conc").Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	if g := r.Gauge("t_conc_gauge", "conc").Value(); g != 8000 {
		t.Errorf("gauge = %v, want 8000", g)
	}
}
