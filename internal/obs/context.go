package obs

import "context"

// Request-scoped trace context. The service middleware mints (or
// honors) an X-Request-ID per HTTP request and stashes it here; the
// execution layer derives a span per sweep cell; the simulator logs
// both. One ID then follows a request from HTTP submit through the
// executor into the cycle-loop run logs, across the goroutine and
// queue hops in between — as long as every hop forwards (or
// explicitly re-attaches) the context values.

type ctxKey int

const (
	traceKey ctxKey = iota
	spanKey
	loggerKey
)

// WithTrace returns ctx carrying the request-scoped trace ID.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey, id)
}

// TraceID returns ctx's trace ID, or "" when none is attached.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey).(string)
	return id
}

// WithSpan returns ctx carrying a span ID — one unit of work under a
// trace (the executor uses a fingerprint prefix per cell).
func WithSpan(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, spanKey, id)
}

// SpanID returns ctx's span ID, or "" when none is attached.
func SpanID(ctx context.Context) string {
	id, _ := ctx.Value(spanKey).(string)
	return id
}

// WithLogger returns ctx carrying a logger for layers reached only
// through context (the simulator's run logs).
func WithLogger(ctx context.Context, l *Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// LoggerFrom returns ctx's logger, or a Nop logger when none is
// attached — callers log unconditionally and the default discards.
func LoggerFrom(ctx context.Context) *Logger {
	if l, ok := ctx.Value(loggerKey).(*Logger); ok && l != nil {
		return l
	}
	return Nop()
}
