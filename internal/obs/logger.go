package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff suppresses everything — the default for embedded use
	// (library layers log nothing unless a frontend hands them a
	// configured logger).
	LevelOff
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "off"
	}
}

// ParseLevel maps a -log-level flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none":
		return LevelOff, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error, off)", s)
}

// Logger writes leveled, structured key=value lines:
//
//	time=2026-08-08T12:00:00Z level=info msg="sweep submitted" id=sweep-000001 cells=72
//
// One line per event; writes are serialized under a mutex shared by
// every derived (With) logger, so interleaved goroutines never shear a
// line. The zero value is not usable; use NewLogger.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	level *atomic.Int32
	ctx   string // pre-rendered " k=v ..." context from With
	now   func() time.Time
}

// NewLogger builds a logger writing at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	lv := &atomic.Int32{}
	lv.Store(int32(level))
	return &Logger{mu: &sync.Mutex{}, w: w, level: lv, now: time.Now}
}

// Nop returns a logger that discards everything — the default injected
// into layers whose caller did not configure logging.
func Nop() *Logger { return NewLogger(io.Discard, LevelOff) }

// SetLevel changes the threshold (atomically; safe mid-flight).
func (l *Logger) SetLevel(level Level) { l.level.Store(int32(level)) }

// Enabled reports whether level would be written.
func (l *Logger) Enabled(level Level) bool { return level >= Level(l.level.Load()) }

// With returns a logger that appends the given key/value pairs to every
// line it writes. The derived logger shares the parent's writer, mutex,
// and level.
func (l *Logger) With(kv ...any) *Logger {
	var b strings.Builder
	appendKVs(&b, kv)
	return &Logger{mu: l.mu, w: l.w, level: l.level, ctx: l.ctx + b.String(), now: l.now}
}

// Debug, Info, Warn, and Error write one line at their level. kv is
// alternating key, value pairs; a trailing odd value is logged under
// the key "!badkey" rather than dropped.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }
func (l *Logger) Info(msg string, kv ...any)  { l.log(LevelInfo, msg, kv) }
func (l *Logger) Warn(msg string, kv ...any)  { l.log(LevelWarn, msg, kv) }
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.Grow(64 + len(msg) + len(l.ctx))
	b.WriteString("time=")
	b.WriteString(l.now().UTC().Format(time.RFC3339))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quote(msg))
	b.WriteString(l.ctx)
	appendKVs(&b, kv)
	b.WriteByte('\n')
	l.mu.Lock()
	_, _ = io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// appendKVs renders alternating key/value pairs as " k=v" runs.
func appendKVs(b *strings.Builder, kv []any) {
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok || key == "" {
			key = "!badkey"
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		if i+1 < len(kv) {
			b.WriteString(render(kv[i+1]))
		} else {
			b.WriteString(render(nil))
		}
	}
}

// render formats one value, quoting when the plain form would break
// key=value parsing.
func render(v any) string {
	var s string
	switch t := v.(type) {
	case nil:
		return `""`
	case string:
		s = t
	case error:
		s = t.Error()
	case time.Duration:
		s = t.String()
	case float64:
		s = strconv.FormatFloat(t, 'g', -1, 64)
	case float32:
		s = strconv.FormatFloat(float64(t), 'g', -1, 32)
	default:
		s = fmt.Sprint(v)
	}
	return quote(s)
}

// quote wraps s in double quotes when it contains spaces, quotes, or
// '=' — anything that would shear the key=value grammar.
func quote(s string) string {
	if s == "" {
		return `""`
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '"', '=', '\n', '\t':
			return strconv.Quote(s)
		}
	}
	return s
}
