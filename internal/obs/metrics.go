// Package obs is the repo's zero-dependency observability core: counter,
// gauge, and histogram metrics with atomic hot paths, a named Registry
// with Prometheus text-format exposition, and a leveled structured
// logger (logger.go). Every layer — the cycle engine's end-of-run
// snapshot, the sweep executor, the dwarnd service, and the CLIs —
// instruments through this one package, so a metric means the same
// thing whether it is scraped from `GET /metrics` or dumped by
// `smtsim -metrics`.
//
// Naming convention (see DESIGN.md §Observability): every series is
// prefixed `dwarn_<layer>_`, counters end in `_total`, histograms and
// durations are in seconds. Label cardinality is bounded by
// construction — policy names, route patterns, status codes, and cell
// states only.
//
// Hot-path guarantee: Counter.Inc/Add, Gauge.Set/Add, and
// Histogram.Observe never allocate and never take a lock (guarded by
// TestMetricsHotPathZeroAlloc). Registration (Registry.Counter etc.) is
// GetOrCreate under a mutex and belongs at setup time or on cold paths.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a series. Series identity
// is the metric name plus the sorted label set.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64. The zero value is
// usable but unregistered; obtain counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an arbitrary float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; lock-free).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets and
// tracks their sum — the Prometheus cumulative-histogram model. Bounds
// are strictly increasing; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf overflow
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DefBuckets covers HTTP request latencies (5ms–10s).
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// RunBuckets covers simulation wall times (1ms–30s) — one simulated
// cell or run at the repo's default protocols lands mid-range.
var RunBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30}

// CellBuckets covers one sweep cell's wall time, tuned to observed
// durations (BENCH_sweep.json: ~8ms/cell at the default protocol):
// fine-grained 1–32ms where the distribution actually lives, then
// doubling out to 4s for long-protocol cells, so per-policy latency
// shifts show up as bucket movement instead of all cells piling into
// one coarse bucket.
var CellBuckets = []float64{.001, .002, .004, .006, .008, .012, .016, .024, .032, .064, .125, .25, .5, 1, 2, 4}

// Observe records one value. Alloc-free and lock-free: a linear scan
// over the (small, fixed) bound slice plus three atomic updates.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metricKind discriminates series payloads.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) typeName() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one registered (name, labels) instance.
type series struct {
	labels string // rendered {k="v",...} suffix, "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family is one metric name with its help text, type, and series.
type family struct {
	name, help string
	kind       metricKind
	order      []string // series label suffixes, registration order
	series     map[string]*series
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Registration is GetOrCreate: asking for an
// existing (name, labels) series returns the same handle, so layers
// that share a process share the underlying counters. Registering one
// name with two different kinds or help strings panics — that is a
// programming error, not a runtime condition.
type Registry struct {
	mu       sync.RWMutex
	order    []string // family names, registration order
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry: the engine's end-of-run
// snapshot and the CLIs record here; dwarnd merges it into every
// /metrics scrape alongside the server's own registry.
var Default = NewRegistry()

// renderLabels builds the canonical `{k="v",...}` suffix. Labels are
// sorted by key so the same set always names the same series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	out := "{"
	for i, l := range ls {
		if i > 0 {
			out += ","
		}
		out += l.Key + `="` + escapeLabel(l.Value) + `"`
	}
	return out + "}"
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	needs := false
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' || v[i] == '"' || v[i] == '\n' {
			needs = true
			break
		}
	}
	if !needs {
		return v
	}
	out := make([]byte, 0, len(v)+4)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// lookup returns an existing series or nil, read-locked.
func (r *Registry) lookup(name, labels string, kind metricKind) *series {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.families[name]
	if !ok {
		return nil
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind.typeName(), kind.typeName()))
	}
	return f.series[labels]
}

// register finds or creates a series under the write lock. build is
// called only when the series is new.
func (r *Registry) register(name, help string, kind metricKind, labels []Label, build func() *series) *series {
	suffix := renderLabels(labels)
	if s := r.lookup(name, suffix, kind); s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind.typeName(), kind.typeName()))
	}
	if f.help != help {
		panic(fmt.Sprintf("obs: metric %q registered with different help text", name))
	}
	if s, ok := f.series[suffix]; ok {
		return s
	}
	s := build()
	s.labels = suffix
	f.series[suffix] = s
	f.order = append(f.order, suffix)
	return s
}

// Counter returns the counter for (name, labels), creating it if new.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, kindCounter, labels, func() *series {
		return &series{c: &Counter{}}
	}).c
}

// Gauge returns the gauge for (name, labels), creating it if new.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, kindGauge, labels, func() *series {
		return &series{g: &Gauge{}}
	}).g
}

// Histogram returns the histogram for (name, labels) with the given
// bucket upper bounds (nil = DefBuckets), creating it if new. Bounds
// are fixed at first registration; later calls reuse them.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return r.register(name, help, kindHistogram, labels, func() *series {
		if bounds == nil {
			bounds = DefBuckets
		}
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		return &series{h: &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}}
	}).h
}

// GaugeFunc registers a gauge whose value is read by calling fn at
// exposition time — the right shape for values another component
// already owns (queue depth, active sweeps, cache entries). Re-
// registering an existing series replaces its fn, so a restarted
// component re-binds the series to its live state.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, kindGaugeFunc, labels, func() *series { return &series{} })
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// CounterFunc is GaugeFunc for monotonically increasing values owned
// elsewhere (the service cache's hit/miss totals). fn must never
// decrease between calls.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, kindCounterFunc, labels, func() *series { return &series{} })
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}
