package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedNow pins timestamps so lines are assertable.
func fixedNow() time.Time {
	return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
}

func testLogger(level Level) (*Logger, *strings.Builder) {
	var sb strings.Builder
	l := NewLogger(&sb, level)
	l.now = fixedNow
	return l, &sb
}

func TestLoggerFormat(t *testing.T) {
	l, sb := testLogger(LevelDebug)
	l.Info("sweep submitted", "id", "sweep-000001", "cells", 72, "rate", 1.5)
	want := `time=2026-08-08T12:00:00Z level=info msg="sweep submitted" id=sweep-000001 cells=72 rate=1.5` + "\n"
	if sb.String() != want {
		t.Errorf("line = %q, want %q", sb.String(), want)
	}
}

func TestLoggerQuoting(t *testing.T) {
	l, sb := testLogger(LevelDebug)
	l.Warn("x", "err", errors.New("bad thing = broken"), "empty", "", "dur", 1500*time.Millisecond)
	line := sb.String()
	for _, want := range []string{`err="bad thing = broken"`, `empty=""`, `dur=1.5s`} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	l, sb := testLogger(LevelWarn)
	l.Debug("nope")
	l.Info("nope")
	l.Warn("yes")
	l.Error("yes")
	if got := strings.Count(sb.String(), "\n"); got != 2 {
		t.Errorf("wrote %d lines at LevelWarn, want 2: %q", got, sb.String())
	}
	l.SetLevel(LevelDebug)
	l.Debug("now visible")
	if !strings.Contains(sb.String(), "now visible") {
		t.Error("SetLevel(LevelDebug) did not enable debug lines")
	}
}

func TestLoggerWithContext(t *testing.T) {
	l, sb := testLogger(LevelInfo)
	req := l.With("req", "r000042", "route", "GET /v1/simulations")
	req.Info("done", "code", 200)
	line := sb.String()
	for _, want := range []string{"req=r000042", `route="GET /v1/simulations"`, "code=200"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
}

func TestLoggerOddKVAndBadKey(t *testing.T) {
	l, sb := testLogger(LevelInfo)
	l.Info("odd", "key")   // trailing key without value
	l.Info("bad", 42, "v") // non-string key
	if !strings.Contains(sb.String(), `key=""`) {
		t.Errorf("odd trailing key not rendered: %q", sb.String())
	}
	if !strings.Contains(sb.String(), "!badkey=v") {
		t.Errorf("non-string key not flagged: %q", sb.String())
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "warning": LevelWarn,
		"error": LevelError, "off": LevelOff,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestLoggerConcurrentLinesDoNotShear(t *testing.T) {
	var sb strings.Builder
	var mu sync.Mutex
	// strings.Builder is not concurrency-safe; serialize at the writer
	// to focus the test on line atomicity.
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	l := NewLogger(w, LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Info("tick", "worker", "w", "j", j)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for _, line := range strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "time=") || !strings.Contains(line, "msg=tick") {
			t.Fatalf("sheared line: %q", line)
		}
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
