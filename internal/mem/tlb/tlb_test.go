package tlb

import "testing"

func TestMissThenHit(t *testing.T) {
	tb := New(4, 8192)
	if tb.Access(0x2000) {
		t.Fatal("cold access hit")
	}
	if !tb.Access(0x2000) {
		t.Fatal("second access missed")
	}
	if !tb.Access(0x2fff) {
		t.Fatal("same-page access missed")
	}
	if tb.Access(0x4000) {
		t.Fatal("new page hit")
	}
}

func TestLRUCapacity(t *testing.T) {
	tb := New(2, 8192)
	tb.Access(0 * 8192)
	tb.Access(1 * 8192)
	tb.Access(0 * 8192) // page 0 now MRU
	tb.Access(2 * 8192) // evicts page 1
	if !tb.Probe(0 * 8192) {
		t.Error("MRU page evicted")
	}
	if tb.Probe(1 * 8192) {
		t.Error("LRU page survived")
	}
	if !tb.Probe(2 * 8192) {
		t.Error("new page absent")
	}
}

func TestProbeDoesNotInstall(t *testing.T) {
	tb := New(4, 8192)
	if tb.Probe(0x9000) {
		t.Fatal("probe hit cold TLB")
	}
	if tb.Access(0x9000) {
		t.Fatal("probe installed the page")
	}
}

func TestStats(t *testing.T) {
	tb := New(4, 8192)
	tb.Access(0x0)
	tb.Access(0x0)
	tb.Access(0x0)
	if tb.Stats.Misses != 1 || tb.Stats.Hits != 2 {
		t.Errorf("stats %+v", tb.Stats)
	}
	if r := tb.Stats.MissRate(); r < 0.33 || r > 0.34 {
		t.Errorf("miss rate %v", r)
	}
}

func TestReset(t *testing.T) {
	tb := New(4, 8192)
	tb.Access(0x0)
	tb.Reset()
	if tb.Probe(0x0) {
		t.Error("entry survived reset")
	}
	if tb.Stats.Misses != 0 {
		t.Error("stats survived reset")
	}
}

func TestPageNumber(t *testing.T) {
	tb := New(4, 8192)
	if tb.Page(8192*3+17) != 3 {
		t.Errorf("Page() = %d", tb.Page(8192*3+17))
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 8192) },
		func() { New(4, 1000) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad constructor did not panic")
				}
			}()
			f()
		}()
	}
}

func TestFullAssociativity(t *testing.T) {
	tb := New(8, 8192)
	for i := 0; i < 8; i++ {
		tb.Access(uint64(i) * 8192)
	}
	for i := 0; i < 8; i++ {
		if !tb.Probe(uint64(i) * 8192) {
			t.Errorf("page %d evicted below capacity", i)
		}
	}
}

func TestEmptyStatsMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty miss rate not 0")
	}
}
