// Package tlb implements the per-thread data TLB. The paper charges a
// 160-cycle penalty on a DTLB miss, and a DTLB miss is one of the
// triggers for the STALL and FLUSH policies.
package tlb

import (
	"fmt"
	"math/bits"
)

// Stats counts TLB accesses.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// MissRate returns misses / accesses, or 0 with no accesses.
func (s *Stats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

type entry struct {
	page    uint64
	valid   bool
	lastUse int64
}

// TLB is a fully associative translation buffer with LRU replacement.
// Fully associative is the common choice for small DTLBs (the 21264's
// DTLB was fully associative) and sidesteps set-conflict artifacts in
// the synthetic address streams.
type TLB struct {
	entries  []entry
	pageBits uint
	clock    int64

	// Stats is exported state the owner may read or reset.
	Stats Stats
}

// New builds a TLB with nEntries entries over pageBytes-sized pages.
func New(nEntries, pageBytes int) *TLB {
	if nEntries <= 0 {
		panic("tlb: need at least one entry")
	}
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic("tlb: page size must be a positive power of two")
	}
	return &TLB{
		entries:  make([]entry, nEntries),
		pageBits: uint(bits.TrailingZeros(uint(pageBytes))),
	}
}

// Page returns the page number of addr.
func (t *TLB) Page(addr uint64) uint64 { return addr >> t.pageBits }

// Access translates addr, returning true on a hit. On a miss the page is
// installed (evicting LRU), modelling the hardware walker finishing.
func (t *TLB) Access(addr uint64) bool {
	page := t.Page(addr)
	t.clock++
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.page == page {
			e.lastUse = t.clock
			t.Stats.Hits++
			return true
		}
		if !t.entries[victim].valid {
			continue
		}
		if !e.valid || e.lastUse < t.entries[victim].lastUse {
			victim = i
		}
	}
	t.entries[victim] = entry{page: page, valid: true, lastUse: t.clock}
	t.Stats.Misses++
	return false
}

// Probe reports whether addr's page is resident without updating state.
func (t *TLB) Probe(addr uint64) bool {
	page := t.Page(addr)
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].page == page {
			return true
		}
	}
	return false
}

// EntryState is the serializable form of one TLB entry; see State.
type EntryState struct {
	Page    uint64
	Valid   bool
	LastUse int64
}

// State is a complete snapshot of the TLB's translations and LRU clock
// (Stats are measurement state and excluded).
type State struct {
	Clock   int64
	Entries []EntryState
}

// State snapshots the TLB's entries and replacement clock.
func (t *TLB) State() State {
	st := State{Clock: t.clock, Entries: make([]EntryState, len(t.entries))}
	for i, e := range t.entries {
		st.Entries[i] = EntryState{Page: e.page, Valid: e.valid, LastUse: e.lastUse}
	}
	return st
}

// SetState overwrites the TLB from a snapshot taken on an identically
// sized TLB; a size mismatch is an error and leaves the TLB unchanged.
func (t *TLB) SetState(st State) error {
	if len(st.Entries) != len(t.entries) {
		return fmt.Errorf("tlb: snapshot has %d entries, TLB has %d", len(st.Entries), len(t.entries))
	}
	for i, e := range st.Entries {
		t.entries[i] = entry{page: e.Page, valid: e.Valid, lastUse: e.LastUse}
	}
	t.clock = st.Clock
	return nil
}

// Reset clears all entries and statistics.
func (t *TLB) Reset() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.clock = 0
	t.Stats = Stats{}
}
