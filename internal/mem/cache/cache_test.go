package cache

import (
	"testing"
	"testing/quick"

	"dwarn/internal/config"
)

func tinyCache() *Cache {
	// 4 sets, 2 ways, 64B lines = 512 bytes.
	return New(config.CacheConfig{SizeBytes: 512, Ways: 2, LineBytes: 64, HitLatency: 1})
}

func TestMissThenHit(t *testing.T) {
	c := tinyCache()
	out, ready := c.Access(0x1000, 10, 20)
	if out != Miss || ready != 20 {
		t.Fatalf("first access: %v at %d, want miss at 20", out, ready)
	}
	out, ready = c.Access(0x1000, 25, 99)
	if out != Hit || ready != 25 {
		t.Fatalf("after fill: %v at %d, want hit at 25", out, ready)
	}
}

func TestDelayedHitMergesWithFill(t *testing.T) {
	c := tinyCache()
	c.Access(0x1000, 10, 50)
	out, ready := c.Access(0x1000, 20, 99)
	if out != DelayedHit || ready != 50 {
		t.Fatalf("in-flight access: %v at %d, want delayed-hit at 50", out, ready)
	}
	if c.Stats.DelayedHits != 1 {
		t.Errorf("delayed hits = %d", c.Stats.DelayedHits)
	}
}

func TestSameSetDifferentLines(t *testing.T) {
	c := tinyCache()
	// 4 sets of 64B lines: addresses 0x0 and 0x100 share set 0.
	c.Access(0x000, 1, 2)
	c.Access(0x100, 1, 2)
	if present, _ := c.Probe(0x000); !present {
		t.Error("way 0 line evicted with a free way available")
	}
	if present, _ := c.Probe(0x100); !present {
		t.Error("way 1 line missing")
	}
}

func TestLRUEviction(t *testing.T) {
	c := tinyCache()
	c.Access(0x000, 1, 1) // set 0
	c.Access(0x100, 2, 2) // set 0, other way
	c.Access(0x000, 3, 3) // touch first: now 0x100 is LRU
	c.Access(0x200, 4, 4) // set 0: evicts 0x100
	if present, _ := c.Probe(0x100); present {
		t.Error("LRU line survived eviction")
	}
	if present, _ := c.Probe(0x000); !present {
		t.Error("MRU line was evicted")
	}
}

func TestInFlightProtection(t *testing.T) {
	c := tinyCache()
	// Two in-flight fills fill set 0.
	c.Access(0x000, 1, 100)
	c.Access(0x100, 2, 100)
	// A third miss at cycle 3 must evict one (whole set in flight),
	// but once one line has arrived, arrived lines are preferred.
	c.Access(0x200, 3, 100)
	inFlight := 0
	for _, a := range []uint64{0x000, 0x100, 0x200} {
		if present, _ := c.Probe(a); present {
			inFlight++
		}
	}
	if inFlight != 2 {
		t.Fatalf("expected 2 resident lines, got %d", inFlight)
	}

	c2 := tinyCache()
	c2.Access(0x000, 1, 5)    // arrives at 5
	c2.Access(0x100, 2, 100)  // still in flight at 10
	c2.Access(0x200, 10, 200) // must evict the ARRIVED line, not the in-flight one
	if present, _ := c2.Probe(0x100); !present {
		t.Error("in-flight line evicted while an arrived line was available")
	}
	if present, _ := c2.Probe(0x000); present {
		t.Error("arrived LRU line survived over in-flight protection")
	}
}

func TestTouchInstallsReady(t *testing.T) {
	c := tinyCache()
	c.Touch(0x400)
	out, ready := c.Access(0x400, 7, 99)
	if out != Hit || ready != 7 {
		t.Fatalf("after Touch: %v at %d", out, ready)
	}
	if c.Stats.Accesses() != 1 {
		t.Errorf("Touch counted as an access: %d", c.Stats.Accesses())
	}
}

func TestInvalidate(t *testing.T) {
	c := tinyCache()
	c.Touch(0x800)
	if !c.Invalidate(0x800) {
		t.Fatal("Invalidate missed a present line")
	}
	if c.Invalidate(0x800) {
		t.Fatal("Invalidate hit an absent line")
	}
	if present, _ := c.Probe(0x800); present {
		t.Error("line present after invalidate")
	}
}

func TestReset(t *testing.T) {
	c := tinyCache()
	c.Access(0x1000, 1, 2)
	c.Reset()
	if c.Stats.Accesses() != 0 {
		t.Error("stats survived reset")
	}
	if present, _ := c.Probe(0x1000); present {
		t.Error("line survived reset")
	}
}

func TestLineAddr(t *testing.T) {
	c := tinyCache()
	if got := c.LineAddr(0x12345); got != 0x12340 {
		t.Errorf("LineAddr = %#x", got)
	}
}

func TestStatsMissRate(t *testing.T) {
	c := tinyCache()
	c.Access(0x0, 1, 2)  // miss
	c.Access(0x0, 5, 6)  // hit
	c.Access(0x40, 7, 8) // miss (set 1)
	if got := c.Stats.MissRate(); got < 0.66 || got > 0.67 {
		t.Errorf("miss rate %v, want 2/3", got)
	}
	var empty Stats
	if empty.MissRate() != 0 {
		t.Error("empty stats miss rate not 0")
	}
}

func TestCapacitySweep(t *testing.T) {
	c := tinyCache()
	// Touch 16 distinct lines (twice the capacity); at most 8 survive.
	for i := 0; i < 16; i++ {
		c.Touch(uint64(i) * 64)
	}
	resident := 0
	for i := 0; i < 16; i++ {
		if present, _ := c.Probe(uint64(i) * 64); present {
			resident++
		}
	}
	if resident != 8 {
		t.Errorf("%d lines resident, capacity is 8", resident)
	}
}

func TestQuickNoDuplicateLines(t *testing.T) {
	// Property: after arbitrary accesses, a line is present at most once
	// (indirectly: Probe then Invalidate then Probe must report absent).
	f := func(addrs []uint16) bool {
		c := tinyCache()
		for i, a := range addrs {
			c.Access(uint64(a), int64(i), int64(i+1))
		}
		for _, a := range addrs {
			c.Invalidate(uint64(a))
			if present, _ := c.Probe(uint64(a)); present {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStatsBalance(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := tinyCache()
		for i, a := range addrs {
			c.Access(uint64(a), int64(i), int64(i))
		}
		return c.Stats.Accesses() == uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
