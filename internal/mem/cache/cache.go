// Package cache implements the set-associative caches used for the L1
// instruction, L1 data, and unified L2 levels.
//
// Timing model: the simulator uses insert-at-request with per-line
// ReadyAt timestamps. A miss allocates the line immediately but stamps
// it with the cycle its data will arrive; a subsequent access to the
// same line before that cycle is a "delayed hit" that completes when the
// fill does. This gives MSHR-style merging of secondary misses without
// an event queue, which is the standard trace-simulator simplification
// (SMTSIM does the same).
package cache

import (
	"fmt"
	"math/bits"

	"dwarn/internal/config"
)

// Outcome classifies a cache access.
type Outcome uint8

const (
	// Hit means the line was present and ready.
	Hit Outcome = iota
	// DelayedHit means the line was already being filled by an earlier
	// miss; the access completes when that fill arrives.
	DelayedHit
	// Miss means the line was absent and a fill was allocated.
	Miss
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case DelayedHit:
		return "delayed-hit"
	case Miss:
		return "miss"
	}
	return fmt.Sprintf("Outcome(%d)", uint8(o))
}

// Stats counts accesses by outcome.
type Stats struct {
	Hits        uint64
	DelayedHits uint64
	Misses      uint64
}

// Accesses returns the total access count.
func (s *Stats) Accesses() uint64 { return s.Hits + s.DelayedHits + s.Misses }

// MissRate returns misses / accesses (delayed hits are not misses: the
// line was already in flight). Returns 0 for no accesses.
func (s *Stats) MissRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Misses) / float64(a)
}

type line struct {
	tag   uint64
	valid bool
	// readyAt is the first cycle the line's data is usable.
	readyAt int64
	// lastUse drives LRU replacement.
	lastUse int64
}

// Cache is a single set-associative cache level. It is not safe for
// concurrent use; each simulated core owns its caches.
type Cache struct {
	cfg        config.CacheConfig
	sets       [][]line
	offsetBits uint
	indexBits  uint
	indexMask  uint64
	useClock   int64

	// Stats is exported state the owner may read or reset at will.
	Stats Stats
}

// New builds a cache from cfg. cfg must validate.
func New(cfg config.CacheConfig) *Cache {
	if err := cfg.Validate("cache"); err != nil {
		panic(err)
	}
	nsets := cfg.Sets()
	backing := make([]line, nsets*cfg.Ways)
	sets := make([][]line, nsets)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{
		cfg:        cfg,
		sets:       sets,
		offsetBits: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		indexBits:  uint(bits.TrailingZeros(uint(nsets))),
		indexMask:  uint64(nsets - 1),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() config.CacheConfig { return c.cfg }

// LineAddr returns the line-aligned address for addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr >> c.offsetBits << c.offsetBits
}

func (c *Cache) split(addr uint64) (idx int, tag uint64) {
	a := addr >> c.offsetBits
	return int(a & c.indexMask), a >> c.indexBits
}

// Access looks up addr at cycle now. On a miss it allocates the line
// (evicting LRU) with data arriving at fillAt. It returns the outcome
// and the cycle the data is ready (now for a Hit, the pending fill time
// for a DelayedHit, fillAt for a Miss).
func (c *Cache) Access(addr uint64, now, fillAt int64) (Outcome, int64) {
	idx, tag := c.split(addr)
	set := c.sets[idx]
	c.useClock++
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			ln.lastUse = c.useClock
			if ln.readyAt > now {
				c.Stats.DelayedHits++
				return DelayedHit, ln.readyAt
			}
			c.Stats.Hits++
			return Hit, now
		}
	}
	c.Stats.Misses++
	victim := c.victim(set, now)
	set[victim] = line{tag: tag, valid: true, readyAt: fillAt, lastUse: c.useClock}
	return Miss, fillAt
}

// Probe reports whether addr is present (ready or in flight) without
// modifying any state. It exists for tests and for policies that need a
// non-destructive lookup.
func (c *Cache) Probe(addr uint64) (present bool, readyAt int64) {
	idx, tag := c.split(addr)
	for i := range c.sets[idx] {
		ln := &c.sets[idx][i]
		if ln.valid && ln.tag == tag {
			return true, ln.readyAt
		}
	}
	return false, 0
}

// Touch inserts addr as present-and-ready without counting an access.
// Warmup and tests use it to preload state.
func (c *Cache) Touch(addr uint64) {
	idx, tag := c.split(addr)
	set := c.sets[idx]
	c.useClock++
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.useClock
			set[i].readyAt = 0
			return
		}
	}
	victim := c.victim(set, 1<<62)
	set[victim] = line{tag: tag, valid: true, lastUse: c.useClock}
}

// Invalidate drops addr's line if present, returning whether it was.
func (c *Cache) Invalidate(addr uint64) bool {
	idx, tag := c.split(addr)
	for i := range c.sets[idx] {
		ln := &c.sets[idx][i]
		if ln.valid && ln.tag == tag {
			ln.valid = false
			return true
		}
	}
	return false
}

// Reset clears all lines and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
	c.useClock = 0
	c.Stats = Stats{}
}

// LineState is the serializable form of one cache line; see State.
type LineState struct {
	Tag     uint64
	Valid   bool
	ReadyAt int64
	LastUse int64
}

// State is a complete, geometry-tagged snapshot of a cache's
// microarchitectural contents (lines and the LRU clock; Stats are
// measurement state and deliberately excluded). Lines are stored
// way-major per set: Lines[set*Ways+way].
type State struct {
	Sets     int
	Ways     int
	UseClock int64
	Lines    []LineState
}

// State snapshots the cache's lines and replacement clock.
func (c *Cache) State() State {
	st := State{
		Sets:     len(c.sets),
		Ways:     c.cfg.Ways,
		UseClock: c.useClock,
		Lines:    make([]LineState, 0, len(c.sets)*c.cfg.Ways),
	}
	for _, set := range c.sets {
		for _, ln := range set {
			st.Lines = append(st.Lines, LineState{Tag: ln.tag, Valid: ln.valid, ReadyAt: ln.readyAt, LastUse: ln.lastUse})
		}
	}
	return st
}

// SetState overwrites the cache's lines and replacement clock from a
// snapshot taken on an identically configured cache. A geometry mismatch
// is an error and leaves the cache unchanged — the caller falls back to
// a cold start rather than restoring into the wrong shape.
func (c *Cache) SetState(st State) error {
	if st.Sets != len(c.sets) || st.Ways != c.cfg.Ways || len(st.Lines) != st.Sets*st.Ways {
		return fmt.Errorf("cache: snapshot geometry %dx%d (%d lines) does not match %dx%d",
			st.Sets, st.Ways, len(st.Lines), len(c.sets), c.cfg.Ways)
	}
	i := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			ls := st.Lines[i]
			c.sets[s][w] = line{tag: ls.Tag, valid: ls.Valid, readyAt: ls.ReadyAt, lastUse: ls.LastUse}
			i++
		}
	}
	c.useClock = st.UseClock
	return nil
}

// victim picks the replacement way in set: an invalid way if one exists,
// otherwise the least-recently-used way whose fill has arrived. Lines
// still in flight are only evicted when the whole set is in flight —
// the MSHR-holds-the-line protection real caches have; without it,
// set-colliding concurrent misses evict each other's pending fills and
// can livelock the fetch engine.
func (c *Cache) victim(set []line, now int64) int {
	victim := -1
	for i := range set {
		if !set[i].valid {
			return i
		}
		if set[i].readyAt > now {
			continue // in flight: protected
		}
		if victim < 0 || set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	if victim >= 0 {
		return victim
	}
	// Whole set is in flight: fall back to overall LRU.
	victim = 0
	for i := 1; i < len(set); i++ {
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	return victim
}
