// Package hierarchy wires the L1 instruction cache, L1 data cache,
// unified L2, per-thread data TLBs, and main memory into the timing
// model the pipeline consumes.
//
// Latencies follow the paper's Table 3: 1-cycle L1s, an L1→L2 path of 10
// cycles (15 on the deep machine), 100 cycles to main memory (200 deep),
// and a 160-cycle DTLB miss penalty. All latencies assume no resource
// conflicts, exactly as the paper states for its simulator.
package hierarchy

import (
	"dwarn/internal/config"
	"dwarn/internal/mem/cache"
	"dwarn/internal/mem/tlb"
)

// Level identifies where an access was satisfied.
type Level uint8

const (
	// LevelL1 means the L1 cache (ready or in-flight line).
	LevelL1 Level = iota
	// LevelL2 means the unified L2.
	LevelL2
	// LevelMem means main memory.
	LevelMem
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMem:
		return "memory"
	}
	return "Level(?)"
}

// DataResult describes the timing of one data-side access.
type DataResult struct {
	// L1Miss is true when the line was absent from the L1 (a true miss
	// that allocated a fill, not a merge into an earlier one).
	L1Miss bool
	// MergedMiss is true when the line was already in flight: the access
	// waits for the earlier fill (MSHR merge). The load still observes a
	// data-cache miss — its data is not there — so fetch policies count
	// it as one.
	MergedMiss bool
	// L2Miss is true when the access went to main memory (only possible
	// when L1Miss is true).
	L2Miss bool
	// TLBMiss is true when the DTLB missed; the penalty is already
	// included in CompleteAt.
	TLBMiss bool
	// Level is where the data came from.
	Level Level
	// CompleteAt is the cycle the data is available to consumers.
	CompleteAt int64
}

// SawMiss reports whether the access observed an L1 data miss (true or
// merged) — the event the DWarn/DG counters track.
func (r DataResult) SawMiss() bool { return r.L1Miss || r.MergedMiss }

// ThreadStats aggregates per-thread memory behaviour. Loads and stores
// are counted separately because the paper's Table 2(a) miss rates are
// per dynamic load.
type ThreadStats struct {
	Loads         uint64
	LoadL1Misses  uint64
	LoadL2Misses  uint64
	LoadMerged    uint64
	Stores        uint64
	StoreL1Misses uint64
	StoreL2Misses uint64
	TLBMisses     uint64
	IFetches      uint64
	IMisses       uint64
}

// LoadL1MissRate returns L1 load misses per dynamic load (Table 2a col 2).
func (s *ThreadStats) LoadL1MissRate() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.LoadL1Misses) / float64(s.Loads)
}

// LoadL2MissRate returns L2 load misses per dynamic load (Table 2a col 3).
func (s *ThreadStats) LoadL2MissRate() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.LoadL2Misses) / float64(s.Loads)
}

// L1ToL2Ratio returns the fraction of L1 load misses that also missed in
// L2 (Table 2a col 4).
func (s *ThreadStats) L1ToL2Ratio() float64 {
	if s.LoadL1Misses == 0 {
		return 0
	}
	return float64(s.LoadL2Misses) / float64(s.LoadL1Misses)
}

// Hierarchy is the full memory system for one simulated core. Caches are
// shared by all hardware contexts; the DTLB is per thread.
type Hierarchy struct {
	cfg  *config.Processor
	L1I  *cache.Cache
	L1D  *cache.Cache
	L2   *cache.Cache
	DTLB []*tlb.TLB

	// Threads holds per-thread statistics indexed by hardware context.
	Threads []ThreadStats
}

// New builds the hierarchy for cfg with nThreads contexts.
func New(cfg *config.Processor, nThreads int) *Hierarchy {
	h := &Hierarchy{
		cfg:     cfg,
		L1I:     cache.New(cfg.ICache),
		L1D:     cache.New(cfg.DCache),
		L2:      cache.New(cfg.L2),
		DTLB:    make([]*tlb.TLB, nThreads),
		Threads: make([]ThreadStats, nThreads),
	}
	for i := range h.DTLB {
		h.DTLB[i] = tlb.New(cfg.DTLBEntries, cfg.PageBytes)
	}
	return h
}

// Load performs a data load for thread at addr starting at cycle now and
// returns its timing.
func (h *Hierarchy) Load(thread int, addr uint64, now int64) DataResult {
	st := &h.Threads[thread]
	st.Loads++
	r := h.dataAccess(thread, addr, now)
	if r.L1Miss {
		st.LoadL1Misses++
		if r.L2Miss {
			st.LoadL2Misses++
		}
	}
	if r.MergedMiss {
		st.LoadMerged++
	}
	if r.TLBMiss {
		st.TLBMisses++
	}
	return r
}

// Store performs a data store (write-allocate) for thread at addr.
// Stores retire through a store buffer, so the caller typically ignores
// CompleteAt, but the access still moves cache and TLB state.
func (h *Hierarchy) Store(thread int, addr uint64, now int64) DataResult {
	st := &h.Threads[thread]
	st.Stores++
	r := h.dataAccess(thread, addr, now)
	if r.L1Miss {
		st.StoreL1Misses++
		if r.L2Miss {
			st.StoreL2Misses++
		}
	}
	if r.TLBMiss {
		st.TLBMisses++
	}
	return r
}

// dataAccess is the shared load/store path: DTLB, then L1D, then L2,
// then memory.
func (h *Hierarchy) dataAccess(thread int, addr uint64, now int64) DataResult {
	var r DataResult
	start := now
	if !h.DTLB[thread].Access(addr) {
		r.TLBMiss = true
		start += int64(h.cfg.TLBMissPenalty)
	}

	// The L1 fill time depends on where the data comes from, so decide
	// the full path first by probing, then perform the stateful accesses
	// with the right fill stamps.
	l1Latency := int64(h.cfg.DCache.HitLatency)
	present, readyAt := h.L1D.Probe(addr)
	switch {
	case present && readyAt <= start+l1Latency:
		h.L1D.Access(addr, start, 0) // records the hit
		r.Level = LevelL1
		r.CompleteAt = start + l1Latency
	case present:
		// In-flight line: merge with the pending fill.
		h.L1D.Access(addr, start, 0)
		r.MergedMiss = true
		r.Level = LevelL1
		r.CompleteAt = readyAt
	default:
		r.L1Miss = true
		l2At := start + l1Latency + int64(h.cfg.L1ToL2Latency)
		l2Out, l2Ready := h.L2.Access(addr, l2At, l2At+int64(h.cfg.MemLatency))
		switch l2Out {
		case cache.Hit:
			r.Level = LevelL2
			r.CompleteAt = l2At
		case cache.DelayedHit:
			r.Level = LevelL2
			r.CompleteAt = l2Ready
		default: // cache.Miss
			r.L2Miss = true
			r.Level = LevelMem
			r.CompleteAt = l2At + int64(h.cfg.MemLatency)
		}
		h.L1D.Access(addr, start, r.CompleteAt)
	}
	return r
}

// FetchResult describes one instruction-cache access.
type FetchResult struct {
	// Miss is true when the I-cache missed (true miss or in-flight wait).
	Miss bool
	// CompleteAt is the cycle the fetch block is available (now on a hit).
	CompleteAt int64
}

// Fetch accesses the I-cache for thread at pc. Instruction fetch does
// not consult the DTLB (the paper models only a data TLB).
func (h *Hierarchy) Fetch(thread int, pc uint64, now int64) FetchResult {
	st := &h.Threads[thread]
	st.IFetches++
	l1Latency := int64(h.cfg.ICache.HitLatency)
	present, readyAt := h.L1I.Probe(pc)
	switch {
	case present && readyAt <= now:
		h.L1I.Access(pc, now, 0)
		return FetchResult{CompleteAt: now}
	case present:
		h.L1I.Access(pc, now, 0)
		st.IMisses++
		return FetchResult{Miss: true, CompleteAt: readyAt}
	}
	st.IMisses++
	l2At := now + l1Latency + int64(h.cfg.L1ToL2Latency)
	l2Out, l2Ready := h.L2.Access(pc, l2At, l2At+int64(h.cfg.MemLatency))
	var complete int64
	switch l2Out {
	case cache.Hit:
		complete = l2At
	case cache.DelayedHit:
		complete = l2Ready
	default:
		complete = l2At + int64(h.cfg.MemLatency)
	}
	h.L1I.Access(pc, now, complete)
	return FetchResult{Miss: true, CompleteAt: complete}
}

// Reset clears all cache, TLB, and statistic state.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	for _, t := range h.DTLB {
		t.Reset()
	}
	for i := range h.Threads {
		h.Threads[i] = ThreadStats{}
	}
}

// ResetStats clears statistics but keeps cache/TLB contents (used after
// warmup so measured miss rates reflect steady state).
func (h *Hierarchy) ResetStats() {
	h.L1I.Stats = cache.Stats{}
	h.L1D.Stats = cache.Stats{}
	h.L2.Stats = cache.Stats{}
	for _, t := range h.DTLB {
		t.Stats = tlb.Stats{}
	}
	for i := range h.Threads {
		h.Threads[i] = ThreadStats{}
	}
}

// TouchI re-installs pc's line in the L1 instruction cache as present
// and ready, without counting an access. The fetch engine calls it when
// it consumes a forwarded fill whose cache copy may have been evicted.
func (h *Hierarchy) TouchI(pc uint64) { h.L1I.Touch(pc) }
