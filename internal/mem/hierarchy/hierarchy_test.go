package hierarchy

import (
	"testing"

	"dwarn/internal/config"
)

func newHier(t *testing.T, threads int) *Hierarchy {
	t.Helper()
	return New(config.Baseline(), threads)
}

// prime installs addr's page in the DTLB so timing tests see pure cache
// behaviour.
func prime(h *Hierarchy, thread int, addr uint64) {
	h.DTLB[thread].Access(addr)
}

func TestLoadL1HitLatency(t *testing.T) {
	h := newHier(t, 1)
	prime(h, 0, 0x1000)
	h.L1D.Touch(0x1000)
	r := h.Load(0, 0x1000, 100)
	if r.L1Miss || r.CompleteAt != 101 {
		t.Fatalf("hit: %+v, want complete at 101", r)
	}
	if r.Level != LevelL1 {
		t.Errorf("level %v", r.Level)
	}
}

func TestLoadL2HitLatency(t *testing.T) {
	h := newHier(t, 1)
	prime(h, 0, 0x1000)
	h.L2.Touch(0x1000)
	r := h.Load(0, 0x1000, 100)
	// L1 access (1) + L1→L2 transit (10): data at 111.
	if !r.L1Miss || r.L2Miss || r.CompleteAt != 111 {
		t.Fatalf("L2 hit: %+v, want L1 miss completing at 111", r)
	}
	if r.Level != LevelL2 {
		t.Errorf("level %v", r.Level)
	}
}

func TestLoadMemoryLatency(t *testing.T) {
	h := newHier(t, 1)
	prime(h, 0, 0x1000)
	r := h.Load(0, 0x1000, 100)
	// 1 + 10 + 100 = data at 211.
	if !r.L1Miss || !r.L2Miss || r.CompleteAt != 211 {
		t.Fatalf("memory load: %+v, want completion at 211", r)
	}
	if r.Level != LevelMem {
		t.Errorf("level %v", r.Level)
	}
}

func TestTLBMissPenalty(t *testing.T) {
	h := newHier(t, 1)
	h.L1D.Touch(0x1000) // line resident, page not mapped
	r := h.Load(0, 0x1000, 100)
	if !r.TLBMiss {
		t.Fatal("no TLB miss on cold page")
	}
	// 160 penalty + 1 cycle L1 hit.
	if r.CompleteAt != 100+160+1 {
		t.Fatalf("TLB-miss hit completes at %d, want 261", r.CompleteAt)
	}
}

func TestMergedMiss(t *testing.T) {
	h := newHier(t, 1)
	prime(h, 0, 0x1000)
	first := h.Load(0, 0x1000, 100)
	second := h.Load(0, 0x1000, 105)
	if !second.MergedMiss || second.L1Miss {
		t.Fatalf("second access: %+v, want merged miss", second)
	}
	if second.CompleteAt != first.CompleteAt {
		t.Errorf("merged completion %d, want %d", second.CompleteAt, first.CompleteAt)
	}
	if !second.SawMiss() {
		t.Error("merged miss not reported as a seen miss")
	}
	if h.Threads[0].LoadMerged != 1 {
		t.Errorf("merged counter %d", h.Threads[0].LoadMerged)
	}
}

func TestLoadStatsPerThread(t *testing.T) {
	h := newHier(t, 2)
	prime(h, 1, 0x5000)
	h.Load(1, 0x5000, 10)
	if h.Threads[0].Loads != 0 || h.Threads[1].Loads != 1 {
		t.Errorf("per-thread loads: %d/%d", h.Threads[0].Loads, h.Threads[1].Loads)
	}
	if h.Threads[1].LoadL1Misses != 1 || h.Threads[1].LoadL2Misses != 1 {
		t.Errorf("miss stats %+v", h.Threads[1])
	}
}

func TestStoreWriteAllocate(t *testing.T) {
	h := newHier(t, 1)
	prime(h, 0, 0x2000)
	h.Store(0, 0x2000, 10)
	if h.Threads[0].StoreL1Misses != 1 {
		t.Error("store miss not counted")
	}
	// The store allocated the line; a later load merges or hits.
	r := h.Load(0, 0x2000, 500)
	if r.L1Miss {
		t.Error("load missed after store allocated the line")
	}
}

func TestFetchHitAndMiss(t *testing.T) {
	h := newHier(t, 1)
	h.L1I.Touch(0x100)
	if fr := h.Fetch(0, 0x100, 10); fr.Miss || fr.CompleteAt != 10 {
		t.Fatalf("I-hit: %+v", fr)
	}
	fr := h.Fetch(0, 0x4000, 10)
	if !fr.Miss {
		t.Fatal("cold I-fetch hit")
	}
	// 1 + 10 + 100 for an L2 miss.
	if fr.CompleteAt != 121 {
		t.Errorf("I-miss completes at %d, want 121", fr.CompleteAt)
	}
	if h.Threads[0].IMisses != 1 || h.Threads[0].IFetches != 2 {
		t.Errorf("I stats %+v", h.Threads[0])
	}
}

func TestFetchDelayedFill(t *testing.T) {
	h := newHier(t, 1)
	fr1 := h.Fetch(0, 0x4000, 10)
	fr2 := h.Fetch(0, 0x4000, 20)
	if !fr2.Miss || fr2.CompleteAt != fr1.CompleteAt {
		t.Fatalf("in-flight I-fetch: %+v vs first %+v", fr2, fr1)
	}
}

func TestTouchI(t *testing.T) {
	h := newHier(t, 1)
	h.TouchI(0x9000)
	if fr := h.Fetch(0, 0x9000, 5); fr.Miss {
		t.Error("TouchI did not install the line")
	}
}

func TestRatios(t *testing.T) {
	s := ThreadStats{Loads: 100, LoadL1Misses: 10, LoadL2Misses: 5}
	if s.LoadL1MissRate() != 0.1 || s.LoadL2MissRate() != 0.05 || s.L1ToL2Ratio() != 0.5 {
		t.Errorf("ratios %v %v %v", s.LoadL1MissRate(), s.LoadL2MissRate(), s.L1ToL2Ratio())
	}
	var empty ThreadStats
	if empty.LoadL1MissRate() != 0 || empty.L1ToL2Ratio() != 0 {
		t.Error("empty ratios not zero")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	h := newHier(t, 1)
	prime(h, 0, 0x1000)
	h.Load(0, 0x1000, 10) // allocates the line
	h.ResetStats()
	if h.Threads[0].Loads != 0 {
		t.Error("stats survived ResetStats")
	}
	r := h.Load(0, 0x1000, 5000)
	if r.L1Miss {
		t.Error("cache contents lost on ResetStats")
	}
}

func TestResetClearsEverything(t *testing.T) {
	h := newHier(t, 1)
	prime(h, 0, 0x1000)
	h.Load(0, 0x1000, 10)
	h.Reset()
	r := h.Load(0, 0x1000, 5000)
	if !r.L1Miss || !r.TLBMiss {
		t.Error("state survived full Reset")
	}
}

func TestLevelString(t *testing.T) {
	if LevelL1.String() != "L1" || LevelL2.String() != "L2" || LevelMem.String() != "memory" {
		t.Error("level strings wrong")
	}
}
