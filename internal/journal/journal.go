// Package journal is the durable write-ahead record log behind
// dwarnd's sweep and job registries. The result cells themselves are
// already durable (exec.DirStore), but the registries — which sweeps
// exist, what they were asked to run, how far they got — were
// in-memory only, so a restart forgot every in-flight sweep. The
// journal closes that gap: an append-only, fsync'd, checksummed log of
// small records (submit / cell-done / finish / cancel, keyed by id and
// carrying the canonical cell specs) that the service replays on
// startup to resume unfinished work.
//
// Format: a fixed header line, then length-prefixed frames — 4-byte
// little-endian payload length, 4-byte CRC-32C of the payload, JSON
// payload. Every append is flushed to stable storage before it is
// acknowledged, so a record the service acted on survives kill -9.
// Replay is truncated-tail tolerant: a torn final frame (crash mid
// write) ends replay at the last good record, and Open truncates the
// tail so the next append lands on a clean boundary. Compaction (clean
// shutdown) rewrites the log with only the records that still matter,
// through the same tmp + fsync + rename discipline DirStore uses, so a
// crash mid-compaction leaves either the old log or the new one —
// never a hybrid.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dwarn/internal/chaos"
	"dwarn/internal/spec"
)

// Record types, in the order a sweep emits them.
const (
	// TypeSubmit opens an entry: id, kind, and (for sweeps) the
	// canonical cell specs to re-resolve on recovery.
	TypeSubmit = "submit"
	// TypeCell marks one cell fingerprint durably stored. Idempotent on
	// replay: duplicates collapse into the same set entry.
	TypeCell = "cell"
	// TypeFinish closes an entry with a terminal state.
	TypeFinish = "finish"
	// TypeCancel records a cancellation request; recovery treats it as
	// terminal so a sweep canceled by shutdown is never re-resumed.
	TypeCancel = "cancel"
)

// Entry kinds.
const (
	KindSweep = "sweep"
	KindRun   = "run"
)

// Record is one journal frame's payload.
type Record struct {
	Type string    `json:"type"`
	ID   string    `json:"id"`
	Kind string    `json:"kind,omitempty"` // submit only
	Time time.Time `json:"time,omitempty"` // submit only
	// Cells are the canonical cell specs of a submit record — enough to
	// re-resolve and resume the work with bit-identical fingerprints.
	Cells []spec.RunSpec `json:"cells,omitempty"`
	// Fingerprint identifies the stored cell of a TypeCell record.
	Fingerprint string `json:"fp,omitempty"`
	// State is the terminal state of a TypeFinish record.
	State string `json:"state,omitempty"`
	// Error carries a failed entry's message.
	Error string `json:"error,omitempty"`
}

// header is the file's first bytes; a file that does not start with it
// is not a journal (replay returns everything-lost rather than
// guessing at frames).
const header = "dwarn-journal-v1\n"

// maxRecordBytes bounds one frame's payload: far above any real record
// (the largest is a submit carrying a full sweep expansion), small
// enough that a corrupt length prefix cannot make replay allocate
// gigabytes.
const maxRecordBytes = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Journal is an open record log. Append is safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string

	appends  uint64 // records appended since Open (metrics)
	replayed int    // records recovered by Open
	torn     bool   // Open found and truncated a torn tail
}

// Open reads the journal at path (creating it if absent), returning
// the surviving records in append order. A torn or corrupt tail —
// short frame, bad checksum, unparsable payload — ends replay at the
// last good record and is truncated away, so the next Append writes on
// a clean boundary. A file with a foreign header is refused.
func Open(path string) (*Journal, []Record, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	recs, good, torn, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if torn {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if good == 0 {
		// New (or fully torn-before-header) file: stamp the header.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
		if _, err := f.WriteAt([]byte(header), 0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
		good = int64(len(header))
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{f: f, path: path, replayed: len(recs), torn: torn}, recs, nil
}

// replay scans the file, returning the good records, the offset of the
// first byte past the last good frame, and whether a torn tail (any
// trailing garbage) was found.
func replay(f *os.File) ([]Record, int64, bool, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, 0, false, fmt.Errorf("journal: %w", err)
	}
	if st.Size() == 0 {
		return nil, 0, false, nil
	}
	r := io.NewSectionReader(f, 0, st.Size())
	hdr := make([]byte, len(header))
	if _, err := io.ReadFull(r, hdr); err != nil {
		// Shorter than the header: treat as torn-at-birth, rewrite.
		return nil, 0, true, nil
	}
	if string(hdr) != header {
		return nil, 0, false, fmt.Errorf("journal: %s is not a dwarn journal", f.Name())
	}

	var recs []Record
	good := int64(len(header))
	var frame [8]byte
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			// Clean EOF ends replay; a partial frame header is a torn tail.
			return recs, good, !errors.Is(err, io.EOF), nil
		}
		n := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if n == 0 || n > maxRecordBytes {
			return recs, good, true, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, good, true, nil
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return recs, good, true, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, good, true, nil
		}
		recs = append(recs, rec)
		good += int64(8 + len(payload))
	}
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Replayed returns how many records Open recovered.
func (j *Journal) Replayed() int { return j.replayed }

// Torn reports whether Open found (and truncated) a torn tail.
func (j *Journal) Torn() bool { return j.torn }

// Appends returns the number of records appended since Open.
func (j *Journal) Appends() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends
}

// Append writes one record and flushes it to stable storage before
// returning. An error means the record may not survive a crash; the
// caller decides whether that fails the operation (sweep submission
// does: admitting work the journal cannot remember would silently
// reintroduce the bug this package exists to fix).
//
// Chaos seam: "journal.append" fires before the write; a handler
// returning chaos.ErrTorn makes Append persist a deliberately
// truncated frame without syncing — the on-disk state a crash between
// write and fsync leaves — and report failure.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("journal: record exceeds %d bytes", maxRecordBytes)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[8:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	if err := chaos.Fire("journal.append", rec.Type+":"+rec.ID); err != nil {
		if errors.Is(err, chaos.ErrTorn) {
			_, _ = j.f.Write(frame[:len(frame)/2])
		}
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.appends++
	return nil
}

// Compact atomically replaces the log's contents with keep (typically
// the minimal record set for still-unfinished entries — an empty keep
// leaves just the header). The rewrite goes through a temp file,
// fsync, and rename in the journal's own directory, mirroring
// DirStore's cross-process atomic-put discipline: a crash at any point
// leaves either the old complete log or the new complete log.
func (j *Journal) Compact(keep []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	if err := chaos.Fire("journal.compact", j.path); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, ".journal.tmp*")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.WriteString(header); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: %w", err)
	}
	for _, rec := range keep {
		payload, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("journal: %w", err)
		}
		var frame [8]byte
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
		if _, err := tmp.Write(frame[:]); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: %w", err)
		}
		if _, err := tmp.Write(payload); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	// The open handle still points at the unlinked old file; reopen the
	// new one for further appends.
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopening after compact: %w", err)
	}
	j.f.Close()
	j.f = f
	return nil
}

// Close flushes and closes the log. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// Entry is one submitted unit of work reconstructed from the log: a
// sweep or a run job, its canonical cells, which fingerprints were
// durably completed, and its terminal state if it reached one.
type Entry struct {
	ID          string
	Kind        string
	SubmittedAt time.Time
	Cells       []spec.RunSpec
	// Done is the set of cell fingerprints with TypeCell records.
	// Replay is idempotent: duplicate cell records collapse here.
	Done map[string]bool
	// State is the terminal state from a finish record, "canceled" if
	// only a cancel record was seen, or "" for an unfinished entry —
	// the ones recovery resumes.
	State string
	// Error is the failure message of a failed entry.
	Error string
}

// Unfinished reports whether the entry needs recovery.
func (e *Entry) Unfinished() bool { return e.State == "" }

// Fold reduces a replayed record stream to its entries, in submission
// order. Records referencing an id with no submit record (possible
// after compaction raced a crash, or a pre-truncation submit) are
// dropped — there is nothing actionable to resume for them.
func Fold(recs []Record) []*Entry {
	byID := make(map[string]*Entry)
	var order []*Entry
	for _, rec := range recs {
		switch rec.Type {
		case TypeSubmit:
			if _, ok := byID[rec.ID]; ok {
				continue // duplicate submit: first wins
			}
			e := &Entry{
				ID:          rec.ID,
				Kind:        rec.Kind,
				SubmittedAt: rec.Time,
				Cells:       rec.Cells,
				Done:        make(map[string]bool),
			}
			byID[rec.ID] = e
			order = append(order, e)
		case TypeCell:
			if e, ok := byID[rec.ID]; ok && rec.Fingerprint != "" {
				e.Done[rec.Fingerprint] = true
			}
		case TypeFinish:
			if e, ok := byID[rec.ID]; ok {
				e.State = rec.State
				e.Error = rec.Error
			}
		case TypeCancel:
			if e, ok := byID[rec.ID]; ok && e.State == "" {
				e.State = "canceled"
			}
		}
	}
	return order
}

// Live re-derives the minimal record set that reproduces the
// unfinished entries — what Compact keeps on a clean shutdown (usually
// nothing: a drained server has no unfinished entries).
func Live(entries []*Entry) []Record {
	var out []Record
	for _, e := range entries {
		if !e.Unfinished() {
			continue
		}
		out = append(out, Record{
			Type:  TypeSubmit,
			ID:    e.ID,
			Kind:  e.Kind,
			Time:  e.SubmittedAt,
			Cells: e.Cells,
		})
		for fp := range e.Done {
			out = append(out, Record{Type: TypeCell, ID: e.ID, Fingerprint: fp})
		}
	}
	return out
}
