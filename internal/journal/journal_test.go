package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dwarn/internal/chaos"
	"dwarn/internal/spec"
)

func testCells(n int) []spec.RunSpec {
	cells := make([]spec.RunSpec, n)
	for i := range cells {
		cells[i] = spec.RunSpec{
			Policy:   spec.Policy{Name: "dwarn"},
			Workload: spec.Workload{Name: "2-MIX"},
			Seed:     uint64(i + 1),
		}
	}
	return cells
}

func mustOpen(t *testing.T, path string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { j.Close() })
	return j, recs
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, recs := mustOpen(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}

	sub := Record{Type: TypeSubmit, ID: "sweep-000001", Kind: KindSweep, Time: time.Now().UTC().Truncate(time.Second), Cells: testCells(3)}
	for _, rec := range []Record{
		sub,
		{Type: TypeCell, ID: "sweep-000001", Fingerprint: "aa11"},
		{Type: TypeCell, ID: "sweep-000001", Fingerprint: "bb22"},
		{Type: TypeFinish, ID: "sweep-000001", State: "done"},
	} {
		if err := j.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := j.Appends(); got != 4 {
		t.Fatalf("Appends = %d, want 4", got)
	}
	j.Close()

	j2, recs2 := mustOpen(t, path)
	if j2.Torn() {
		t.Fatal("clean journal reported torn")
	}
	if len(recs2) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs2))
	}
	if recs2[0].Type != TypeSubmit || len(recs2[0].Cells) != 3 || recs2[0].Cells[2].Seed != 3 {
		t.Fatalf("submit record mangled: %+v", recs2[0])
	}
	entries := Fold(recs2)
	if len(entries) != 1 {
		t.Fatalf("Fold: %d entries", len(entries))
	}
	e := entries[0]
	if e.Unfinished() || e.State != "done" || len(e.Done) != 2 || !e.Done["aa11"] {
		t.Fatalf("entry mangled: %+v", e)
	}
}

// A crash mid-append leaves a torn final frame: replay must surface
// every earlier record, truncate the tail, and leave the journal
// appendable on a clean boundary.
func TestTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, _ := mustOpen(t, path)
	if err := j.Append(Record{Type: TypeSubmit, ID: "sweep-000001", Kind: KindSweep, Cells: testCells(1)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: TypeCell, ID: "sweep-000001", Fingerprint: "aa11"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Tear the tail at several depths; every cut past the first record
	// must still replay that record.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := os.Stat(path)
	for _, cut := range []int64{1, 3, 7, 20} {
		if err := os.WriteFile(path, full[:st.Size()-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recs := mustOpen(t, path)
		if !j2.Torn() {
			t.Fatalf("cut %d: torn tail not detected", cut)
		}
		if len(recs) != 1 || recs[0].Type != TypeSubmit {
			t.Fatalf("cut %d: replayed %d records, want the 1 submit", cut, len(recs))
		}
		// The truncated journal accepts appends and round-trips again.
		if err := j2.Append(Record{Type: TypeFinish, ID: "sweep-000001", State: "canceled"}); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		j2.Close()
		_, recs = mustOpen(t, path)
		if len(recs) != 2 || recs[1].State != "canceled" {
			t.Fatalf("cut %d: re-replay got %d records", cut, len(recs))
		}
		// Restore the original bytes for the next cut.
		if err := os.WriteFile(path, full, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// A flipped byte mid-file fails that frame's checksum; replay keeps
// everything before it and discards the rest (the tail cannot be
// trusted past a corrupt frame).
func TestCorruptChecksumEndsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, _ := mustOpen(t, path)
	for i, rec := range []Record{
		{Type: TypeSubmit, ID: "sweep-000001", Kind: KindSweep, Cells: testCells(1)},
		{Type: TypeCell, ID: "sweep-000001", Fingerprint: "aa11"},
		{Type: TypeFinish, ID: "sweep-000001", State: "done"},
	} {
		if err := j.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	j.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the middle of the file (inside record 2).
	raw[len(raw)-20] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recs := mustOpen(t, path)
	if !j2.Torn() {
		t.Fatal("corruption not detected")
	}
	if len(recs) == 0 || recs[0].Type != TypeSubmit {
		t.Fatalf("lost the leading good records: %d replayed", len(recs))
	}
	for _, rec := range recs {
		if rec.Type == TypeFinish {
			t.Fatal("replay crossed the corrupt frame")
		}
	}
}

// Duplicate cell-done records — a crash between store put and the
// journal append retries, or a replayed tail overlapping live appends —
// must fold to one completion, not two.
func TestDuplicateCellRecordsAreIdempotent(t *testing.T) {
	recs := []Record{
		{Type: TypeSubmit, ID: "sweep-000001", Kind: KindSweep, Cells: testCells(2)},
		{Type: TypeCell, ID: "sweep-000001", Fingerprint: "aa11"},
		{Type: TypeCell, ID: "sweep-000001", Fingerprint: "aa11"},
		{Type: TypeCell, ID: "sweep-000001", Fingerprint: "aa11"},
	}
	entries := Fold(recs)
	if len(entries) != 1 {
		t.Fatalf("%d entries", len(entries))
	}
	if got := len(entries[0].Done); got != 1 {
		t.Fatalf("Done set has %d fingerprints, want 1", got)
	}
	if !entries[0].Unfinished() {
		t.Fatal("entry with no finish record reported finished")
	}
}

func TestFoldCancelAndOrphanRecords(t *testing.T) {
	recs := []Record{
		{Type: TypeSubmit, ID: "sweep-000001", Kind: KindSweep},
		{Type: TypeCancel, ID: "sweep-000001"},
		// Orphans: no submit record (compaction dropped it) — inert.
		{Type: TypeCell, ID: "sweep-999999", Fingerprint: "aa11"},
		{Type: TypeFinish, ID: "sweep-999999", State: "done"},
	}
	entries := Fold(recs)
	if len(entries) != 1 {
		t.Fatalf("%d entries", len(entries))
	}
	if entries[0].State != "canceled" || entries[0].Unfinished() {
		t.Fatalf("cancel record not terminal: %+v", entries[0])
	}
}

// Compaction keeps only unfinished entries and survives a crash at the
// injection point with the old log intact (tmp+rename: old-or-new,
// never a hybrid) — mirroring the DirStore atomic-put audit.
func TestCompactionAndMidCrashAudit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, _ := mustOpen(t, path)
	appendAll := func(recs ...Record) {
		t.Helper()
		for _, rec := range recs {
			if err := j.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	appendAll(
		Record{Type: TypeSubmit, ID: "sweep-000001", Kind: KindSweep, Cells: testCells(2)},
		Record{Type: TypeFinish, ID: "sweep-000001", State: "done"},
		Record{Type: TypeSubmit, ID: "sweep-000002", Kind: KindSweep, Cells: testCells(2)},
		Record{Type: TypeCell, ID: "sweep-000002", Fingerprint: "aa11"},
	)

	// Injected crash at the compaction point: the operation fails, the
	// journal still holds every original record.
	chaos.Set(func(point, detail string) error {
		if point == "journal.compact" {
			return chaos.ErrInjected
		}
		return nil
	})
	err := j.Compact(Live(Fold([]Record{})))
	chaos.Set(nil)
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("chaos compact: %v", err)
	}
	j.Close()
	j2, recs := mustOpen(t, path)
	if len(recs) != 4 {
		t.Fatalf("after failed compaction: %d records, want the original 4", len(recs))
	}

	// A stray temp file from a crash between write and rename must not
	// disturb the journal.
	if err := os.WriteFile(filepath.Join(filepath.Dir(path), ".journal.tmp-stray"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Real compaction: only the unfinished sweep-000002 survives, with
	// its cell record, and the journal stays appendable.
	if err := j2.Compact(Live(Fold(recs))); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := j2.Append(Record{Type: TypeFinish, ID: "sweep-000002", State: "done"}); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	j2.Close()

	_, recs = mustOpen(t, path)
	entries := Fold(recs)
	if len(entries) != 1 || entries[0].ID != "sweep-000002" {
		t.Fatalf("after compaction: %+v", entries)
	}
	if !entries[0].Done["aa11"] || entries[0].State != "done" {
		t.Fatalf("sweep-000002 state lost: %+v", entries[0])
	}
}

func TestForeignFileRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	if err := os.WriteFile(path, []byte("this is definitely not a dwarn journal file\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); err == nil {
		t.Fatal("foreign file accepted")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, _ := mustOpen(t, path)
	j.Close()
	if err := j.Append(Record{Type: TypeCancel, ID: "x"}); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// The chaos torn-write injection must leave exactly the state a real
// crash between write and fsync leaves: a half frame that the next
// Open truncates away.
func TestChaosTornAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, _ := mustOpen(t, path)
	if err := j.Append(Record{Type: TypeSubmit, ID: "sweep-000001", Kind: KindSweep, Cells: testCells(1)}); err != nil {
		t.Fatal(err)
	}
	chaos.Set(func(point, detail string) error {
		if point == "journal.append" {
			return chaos.ErrTorn
		}
		return nil
	})
	err := j.Append(Record{Type: TypeCell, ID: "sweep-000001", Fingerprint: "aa11"})
	chaos.Set(nil)
	if !errors.Is(err, chaos.ErrTorn) {
		t.Fatalf("torn append: %v", err)
	}
	j.Close()

	j2, recs := mustOpen(t, path)
	defer j2.Close()
	if !j2.Torn() {
		t.Fatal("torn frame not detected on reopen")
	}
	if len(recs) != 1 || recs[0].Type != TypeSubmit {
		t.Fatalf("replayed %d records, want the 1 submit", len(recs))
	}
}
