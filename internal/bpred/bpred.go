// Package bpred implements the paper's front-end predictors: a 2048-entry
// gshare direction predictor, a 256-entry 4-way branch target buffer,
// and a 256-entry per-thread return address stack.
//
// The simulator is trace-driven, so actual outcomes are known at fetch;
// the predictor decides whether fetch *believed* them. A branch counts
// as mispredicted when the predicted direction is wrong, or when it is
// taken but the BTB (or RAS, for returns) cannot supply the target. The
// pattern history table is shared by all threads (as in real SMT
// hardware) while global history and the RAS are per thread.
package bpred

import (
	"fmt"

	"dwarn/internal/config"
	"dwarn/internal/isa"
)

// Checkpoint snapshots the speculative per-thread predictor state before
// a prediction, so a squash can restore it. The value under the restored
// stack top is saved too: a pointer-only restore leaves entries
// overwritten by squashed speculation in place, and the resulting
// corruption feeds back into further mispredictions (the standard RAS
// top-of-stack repair).
type Checkpoint struct {
	History     uint32
	RASTop      int
	RASTopValue uint64
}

// Prediction is the front end's belief about one branch.
type Prediction struct {
	// Taken is the predicted direction.
	Taken bool
	// Mispredicted is true when the predicted direction (or a return's
	// RAS target) disagrees with the actual outcome; the pipeline
	// squashes when the branch resolves.
	Mispredicted bool
	// Resteer is true when the direction is right (or unconditional)
	// but the BTB could not supply the target: decode computes direct
	// targets, so the front end loses only a short re-steer bubble, not
	// a pipeline squash.
	Resteer bool
	// Before is the state to restore on a squash of this branch.
	Before Checkpoint
}

type btbEntry struct {
	tag     uint64
	target  uint64
	valid   bool
	lastUse int64
}

// Stats counts predictor behaviour.
type Stats struct {
	CondBranches  uint64
	CondMispred   uint64
	BTBMisses     uint64
	RASMispred    uint64
	TotalBranches uint64
	TotalMispred  uint64
}

// MispredictRate returns mispredictions per branch of any kind.
func (s *Stats) MispredictRate() float64 {
	if s.TotalBranches == 0 {
		return 0
	}
	return float64(s.TotalMispred) / float64(s.TotalBranches)
}

// Predictor is the complete front-end prediction machinery for one core.
type Predictor struct {
	cfg config.BranchPredictorConfig

	pht      []uint8 // 2-bit saturating counters
	phtMask  uint32
	histMask uint32

	btb      [][]btbEntry
	btbSets  int
	btbClock int64

	history []uint32 // per thread
	ras     [][]uint64
	rasTop  []int

	// Stats is per-thread predictor statistics.
	Stats []Stats
}

// New builds a predictor for nThreads hardware contexts.
func New(cfg config.BranchPredictorConfig, nThreads int) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.BTBEntries / cfg.BTBWays
	btb := make([][]btbEntry, sets)
	backing := make([]btbEntry, cfg.BTBEntries)
	for i := range btb {
		btb[i], backing = backing[:cfg.BTBWays:cfg.BTBWays], backing[cfg.BTBWays:]
	}
	p := &Predictor{
		cfg:      cfg,
		pht:      make([]uint8, cfg.GshareEntries),
		phtMask:  uint32(cfg.GshareEntries - 1),
		histMask: uint32(1<<cfg.GshareHistoryBits - 1),
		btb:      btb,
		btbSets:  sets,
		history:  make([]uint32, nThreads),
		ras:      make([][]uint64, nThreads),
		rasTop:   make([]int, nThreads),
		Stats:    make([]Stats, nThreads),
	}
	for i := range p.pht {
		p.pht[i] = 1 // weakly not-taken
	}
	for i := range p.ras {
		p.ras[i] = make([]uint64, cfg.RASEntries)
	}
	return p
}

func (p *Predictor) phtIndex(thread int, pc uint64) uint32 {
	return (uint32(pc>>2) ^ (p.history[thread] & p.histMask)) & p.phtMask
}

// Predict consumes one branch uop at fetch time: it produces the
// prediction, speculatively updates history, and maintains the RAS.
func (p *Predictor) Predict(thread int, u *isa.Uop) Prediction {
	st := &p.Stats[thread]
	st.TotalBranches++
	pred := Prediction{Before: Checkpoint{History: p.history[thread], RASTop: p.rasTop[thread]}}
	if top := p.rasTop[thread]; top > 0 {
		pred.Before.RASTopValue = p.ras[thread][(top-1)%len(p.ras[thread])]
	}

	switch u.Class {
	case isa.CondBranch:
		st.CondBranches++
		ctr := p.pht[p.phtIndex(thread, u.PC)]
		pred.Taken = ctr >= 2
		dirWrong := pred.Taken != u.Branch.Taken
		pred.Mispredicted = dirWrong
		if dirWrong {
			st.CondMispred++
		} else if pred.Taken {
			// Direction right; decode recomputes a direct target the
			// BTB could not supply, costing only a re-steer bubble.
			if _, ok := p.btbLookup(u.PC); !ok {
				st.BTBMisses++
				pred.Resteer = true
			}
		}
		// Speculative history update with the predicted direction.
		p.pushHistory(thread, pred.Taken)

	case isa.Jump:
		pred.Taken = true
		if _, ok := p.btbLookup(u.PC); !ok {
			st.BTBMisses++
			pred.Resteer = true
		}

	case isa.Call:
		pred.Taken = true
		if _, ok := p.btbLookup(u.PC); !ok {
			st.BTBMisses++
			pred.Resteer = true
		}
		p.rasPush(thread, u.PC+4)

	case isa.Ret:
		// Returns are true indirect jumps: a wrong or missing RAS entry
		// is a full misprediction, resolved at execute.
		pred.Taken = true
		top, ok := p.rasPop(thread)
		if !ok || top != u.Branch.Target {
			st.RASMispred++
			pred.Mispredicted = true
		}
	}
	if pred.Mispredicted {
		st.TotalMispred++
	}
	return pred
}

// Resolve trains the predictor when a correct-path branch executes: the
// PHT learns the actual direction and the BTB learns the actual target.
func (p *Predictor) Resolve(thread int, u *isa.Uop, pred Prediction) {
	if u.Class == isa.CondBranch {
		// Index with the history the branch saw at fetch.
		idx := (uint32(u.PC>>2) ^ (pred.Before.History & p.histMask)) & p.phtMask
		if u.Branch.Taken {
			if p.pht[idx] < 3 {
				p.pht[idx]++
			}
		} else if p.pht[idx] > 0 {
			p.pht[idx]--
		}
	}
	if u.Branch.Taken && u.Class != isa.Ret {
		p.btbInsert(u.PC, u.Branch.Target)
	}
}

// Restore rolls thread's speculative state (global history, RAS top)
// back to a checkpoint, without applying any outcome. Policy-initiated
// flushes use it: the squashed branches will be re-predicted on
// re-fetch.
func (p *Predictor) Restore(thread int, cp Checkpoint) {
	p.history[thread] = cp.History
	p.rasTop[thread] = cp.RASTop
	if cp.RASTop > 0 {
		p.ras[thread][(cp.RASTop-1)%len(p.ras[thread])] = cp.RASTopValue
	}
}

// Squash restores thread's speculative state to the checkpoint of a
// mispredicted branch and then applies the branch's actual outcome.
func (p *Predictor) Squash(thread int, u *isa.Uop, pred Prediction) {
	p.Restore(thread, pred.Before)
	switch u.Class {
	case isa.CondBranch:
		p.pushHistory(thread, u.Branch.Taken)
	case isa.Call:
		p.rasPush(thread, u.PC+4)
	case isa.Ret:
		p.rasPop(thread)
	}
}

func (p *Predictor) pushHistory(thread int, taken bool) {
	h := p.history[thread] << 1
	if taken {
		h |= 1
	}
	p.history[thread] = h & p.histMask
}

func (p *Predictor) rasPush(thread int, addr uint64) {
	top := p.rasTop[thread]
	p.ras[thread][top%len(p.ras[thread])] = addr
	p.rasTop[thread] = top + 1
}

func (p *Predictor) rasPop(thread int) (uint64, bool) {
	top := p.rasTop[thread]
	if top == 0 {
		return 0, false
	}
	p.rasTop[thread] = top - 1
	return p.ras[thread][(top-1)%len(p.ras[thread])], true
}

func (p *Predictor) btbLookup(pc uint64) (uint64, bool) {
	set := p.btb[(pc>>2)&uint64(p.btbSets-1)]
	tag := pc >> 2 / uint64(p.btbSets)
	p.btbClock++
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = p.btbClock
			return set[i].target, true
		}
	}
	return 0, false
}

func (p *Predictor) btbInsert(pc, target uint64) {
	set := p.btb[(pc>>2)&uint64(p.btbSets-1)]
	tag := pc >> 2 / uint64(p.btbSets)
	p.btbClock++
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].target = target
			set[i].lastUse = p.btbClock
			return
		}
		if !set[victim].valid {
			continue
		}
		if !set[i].valid || set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	set[victim] = btbEntry{tag: tag, target: target, valid: true, lastUse: p.btbClock}
}

// BTBEntryState is the serializable form of one BTB entry; see State.
type BTBEntryState struct {
	Tag     uint64
	Target  uint64
	Valid   bool
	LastUse int64
}

// State is a complete snapshot of the predictor's learned and
// speculative state: the shared PHT, the BTB (way-major per set:
// BTB[set*ways+way]), per-thread global history, and the per-thread
// return address stacks. Stats are measurement state and excluded.
type State struct {
	PHT      []uint8
	BTBSets  int
	BTBWays  int
	BTB      []BTBEntryState
	BTBClock int64
	History  []uint32
	RAS      [][]uint64
	RASTop   []int
}

// State snapshots the predictor.
func (p *Predictor) State() State {
	st := State{
		PHT:      append([]uint8(nil), p.pht...),
		BTBSets:  p.btbSets,
		BTBWays:  p.cfg.BTBWays,
		BTB:      make([]BTBEntryState, 0, p.cfg.BTBEntries),
		BTBClock: p.btbClock,
		History:  append([]uint32(nil), p.history...),
		RAS:      make([][]uint64, len(p.ras)),
		RASTop:   append([]int(nil), p.rasTop...),
	}
	for _, set := range p.btb {
		for _, e := range set {
			st.BTB = append(st.BTB, BTBEntryState{Tag: e.tag, Target: e.target, Valid: e.valid, LastUse: e.lastUse})
		}
	}
	for i := range p.ras {
		st.RAS[i] = append([]uint64(nil), p.ras[i]...)
	}
	return st
}

// SetState overwrites the predictor from a snapshot taken on an
// identically configured predictor with the same thread count. A shape
// mismatch is an error; the predictor may be partially written in that
// case, so callers must treat failure as fatal for the restore (fall
// back to a freshly built machine).
func (p *Predictor) SetState(st State) error {
	if len(st.PHT) != len(p.pht) {
		return fmt.Errorf("bpred: snapshot PHT size %d does not match %d", len(st.PHT), len(p.pht))
	}
	if st.BTBSets != p.btbSets || st.BTBWays != p.cfg.BTBWays || len(st.BTB) != st.BTBSets*st.BTBWays {
		return fmt.Errorf("bpred: snapshot BTB geometry %dx%d (%d entries) does not match %dx%d",
			st.BTBSets, st.BTBWays, len(st.BTB), p.btbSets, p.cfg.BTBWays)
	}
	if len(st.History) != len(p.history) || len(st.RAS) != len(p.ras) || len(st.RASTop) != len(p.rasTop) {
		return fmt.Errorf("bpred: snapshot thread count %d does not match %d", len(st.History), len(p.history))
	}
	for i := range st.RAS {
		if len(st.RAS[i]) != len(p.ras[i]) {
			return fmt.Errorf("bpred: snapshot RAS %d size %d does not match %d", i, len(st.RAS[i]), len(p.ras[i]))
		}
	}
	copy(p.pht, st.PHT)
	i := 0
	for s := range p.btb {
		for w := range p.btb[s] {
			e := st.BTB[i]
			p.btb[s][w] = btbEntry{tag: e.Tag, target: e.Target, valid: e.Valid, lastUse: e.LastUse}
			i++
		}
	}
	p.btbClock = st.BTBClock
	copy(p.history, st.History)
	for t := range st.RAS {
		copy(p.ras[t], st.RAS[t])
	}
	copy(p.rasTop, st.RASTop)
	return nil
}

// Reset clears all predictor state and statistics.
func (p *Predictor) Reset() {
	for i := range p.pht {
		p.pht[i] = 1
	}
	for i := range p.btb {
		for j := range p.btb[i] {
			p.btb[i][j] = btbEntry{}
		}
	}
	for i := range p.history {
		p.history[i] = 0
		p.rasTop[i] = 0
		p.Stats[i] = Stats{}
	}
}
