package bpred

import (
	"testing"

	"dwarn/internal/config"
	"dwarn/internal/isa"
)

func newPred(t *testing.T) *Predictor {
	t.Helper()
	return New(config.Baseline().Bpred, 2)
}

func condUop(pc uint64, taken bool, target uint64) *isa.Uop {
	return &isa.Uop{PC: pc, Class: isa.CondBranch, Branch: isa.BranchInfo{Taken: taken, Target: target}}
}

// step runs one branch through the full pipeline protocol: predict,
// resolve (train), and recover speculative state on a misprediction.
func step(p *Predictor, thread int, u *isa.Uop) Prediction {
	pred := p.Predict(thread, u)
	p.Resolve(thread, u, pred)
	if pred.Mispredicted {
		p.Squash(thread, u, pred)
	}
	return pred
}

func TestGshareLearnsBias(t *testing.T) {
	p := newPred(t)
	u := condUop(0x1000, true, 0x2000)
	miss := 0
	for i := 0; i < 50; i++ {
		pred := step(p, 0, u)
		if i >= 10 && pred.Mispredicted {
			miss++
		}
	}
	if miss > 0 {
		t.Errorf("always-taken branch mispredicted %d times after warmup", miss)
	}
}

func TestGshareLearnsNotTaken(t *testing.T) {
	p := newPred(t)
	u := condUop(0x1000, false, 0x2000)
	for i := 0; i < 10; i++ {
		step(p, 0, u)
	}
	if pred := p.Predict(0, u); pred.Taken {
		t.Error("never-taken branch predicted taken after training")
	}
}

func TestBTBResteerOnColdTakenBranch(t *testing.T) {
	p := newPred(t)
	u := condUop(0x3000, true, 0x4000)
	// Train direction without BTB (Resolve inserts BTB, so check the
	// very first confident taken prediction).
	step(p, 0, u)
	step(p, 0, u)
	if pred := p.Predict(0, u); pred.Taken && !pred.Mispredicted && pred.Resteer {
		t.Error("BTB resteer after Resolve inserted the target")
	}
}

func TestJumpResteerOnceThenHit(t *testing.T) {
	p := newPred(t)
	u := &isa.Uop{PC: 0x5000, Class: isa.Jump, Branch: isa.BranchInfo{Taken: true, Target: 0x6000}}
	pred := p.Predict(0, u)
	if !pred.Resteer || pred.Mispredicted {
		t.Fatalf("cold jump: %+v, want resteer without mispredict", pred)
	}
	p.Resolve(0, u, pred)
	if pred = p.Predict(0, u); pred.Resteer {
		t.Error("jump resteered after BTB insert")
	}
}

func TestRASPredictsBalancedCallReturn(t *testing.T) {
	p := newPred(t)
	call := &isa.Uop{PC: 0x100, Class: isa.Call, Branch: isa.BranchInfo{Taken: true, Target: 0x800}}
	ret := &isa.Uop{PC: 0x900, Class: isa.Ret, Branch: isa.BranchInfo{Taken: true, Target: 0x104}}
	p.Predict(0, call)
	pred := p.Predict(0, ret)
	if pred.Mispredicted {
		t.Error("balanced return mispredicted")
	}
}

func TestRASEmptyMispredicts(t *testing.T) {
	p := newPred(t)
	ret := &isa.Uop{PC: 0x900, Class: isa.Ret, Branch: isa.BranchInfo{Taken: true, Target: 0x104}}
	if pred := p.Predict(0, ret); !pred.Mispredicted {
		t.Error("empty-RAS return predicted")
	}
}

func TestRASWrongTargetMispredicts(t *testing.T) {
	p := newPred(t)
	call := &isa.Uop{PC: 0x100, Class: isa.Call, Branch: isa.BranchInfo{Taken: true, Target: 0x800}}
	ret := &isa.Uop{PC: 0x900, Class: isa.Ret, Branch: isa.BranchInfo{Taken: true, Target: 0xDEAD}}
	p.Predict(0, call)
	if pred := p.Predict(0, ret); !pred.Mispredicted {
		t.Error("wrong-target return predicted")
	}
}

func TestCheckpointRestore(t *testing.T) {
	p := newPred(t)
	call := &isa.Uop{PC: 0x100, Class: isa.Call, Branch: isa.BranchInfo{Taken: true, Target: 0x800}}
	ret := &isa.Uop{PC: 0x900, Class: isa.Ret, Branch: isa.BranchInfo{Taken: true, Target: 0x104}}
	p.Predict(0, call) // pushes 0x104
	// A mispredicted branch checkpoint taken here, then speculative
	// pops/pushes, then restore.
	cpBranch := condUop(0x200, true, 0x300)
	pred := p.Predict(0, cpBranch)
	p.Predict(0, ret)                                                                                      // speculative pop
	p.Predict(0, &isa.Uop{PC: 0x400, Class: isa.Call, Branch: isa.BranchInfo{Taken: true, Target: 0x800}}) // overwrites slot
	p.Restore(0, pred.Before)
	if got := p.Predict(0, ret); got.Mispredicted {
		t.Error("RAS corrupted across checkpoint restore")
	}
}

func TestSquashAppliesActualOutcome(t *testing.T) {
	p := newPred(t)
	u := condUop(0x700, true, 0x900)
	pred := p.Predict(0, u)
	histAfterPredict := p.history[0]
	p.Squash(0, u, pred)
	want := (pred.Before.History<<1 | 1) & p.histMask
	if p.history[0] != want {
		t.Errorf("history after squash %b, want %b (was %b)", p.history[0], want, histAfterPredict)
	}
}

func TestPerThreadIsolationOfRAS(t *testing.T) {
	p := newPred(t)
	call := &isa.Uop{PC: 0x100, Class: isa.Call, Branch: isa.BranchInfo{Taken: true, Target: 0x800}}
	ret := &isa.Uop{PC: 0x900, Class: isa.Ret, Branch: isa.BranchInfo{Taken: true, Target: 0x104}}
	p.Predict(0, call)
	// Thread 1's return must not see thread 0's frame.
	if pred := p.Predict(1, ret); !pred.Mispredicted {
		t.Error("RAS leaked across threads")
	}
}

func TestStatsCounting(t *testing.T) {
	p := newPred(t)
	u := condUop(0x1000, true, 0x2000)
	p.Predict(0, u)
	if p.Stats[0].TotalBranches != 1 || p.Stats[0].CondBranches != 1 {
		t.Errorf("stats %+v", p.Stats[0])
	}
	if p.Stats[1].TotalBranches != 0 {
		t.Error("stats leaked across threads")
	}
}

func TestMispredictRate(t *testing.T) {
	s := Stats{TotalBranches: 10, TotalMispred: 3}
	if s.MispredictRate() != 0.3 {
		t.Errorf("rate %v", s.MispredictRate())
	}
	var empty Stats
	if empty.MispredictRate() != 0 {
		t.Error("empty rate not 0")
	}
}

func TestReset(t *testing.T) {
	p := newPred(t)
	u := condUop(0x1000, true, 0x2000)
	for i := 0; i < 8; i++ {
		step(p, 0, u)
	}
	p.Reset()
	if p.Stats[0].TotalBranches != 0 {
		t.Error("stats survived reset")
	}
	// Counters back to weakly-not-taken: a fresh prediction is not taken.
	if pred := p.Predict(0, u); pred.Taken {
		t.Error("PHT state survived reset")
	}
}

func TestLoopPatternLearnable(t *testing.T) {
	// A loop branch taken N times then not taken, repeating: gshare with
	// history should mispredict at most ~1 per iteration-group after
	// warmup.
	p := newPred(t)
	const trips = 4
	miss := 0
	total := 0
	for visit := 0; visit < 200; visit++ {
		for i := 0; i <= trips; i++ {
			u := condUop(0x1000, i < trips, 0x800)
			pred := step(p, 0, u)
			if visit >= 50 {
				total++
				if pred.Mispredicted {
					miss++
				}
			}
		}
	}
	if rate := float64(miss) / float64(total); rate > 0.05 {
		t.Errorf("short-loop mispredict rate %.3f, want < 0.05", rate)
	}
}
