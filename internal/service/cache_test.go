package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := NewCache(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Put("a", []byte("1"))
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Get("a")              // a is now most recent
	c.Put("c", []byte("3")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
}

func TestCacheGetOrComputeSingleFlight(t *testing.T) {
	c := NewCache(8)
	var computes atomic.Int64
	var wg sync.WaitGroup
	const goroutines = 32
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.GetOrCompute(context.Background(), "key", func() ([]byte, error) {
				computes.Add(1)
				return []byte("value"), nil
			})
			if err != nil || string(v) != "value" {
				t.Errorf("GetOrCompute = %q, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
}

// TestCacheHammer drives many goroutines over a small key space with a
// cache too small to hold it, exercising eviction, single-flight, and
// counter updates together under -race.
func TestCacheHammer(t *testing.T) {
	c := NewCache(4)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("key-%d", (g+i)%10)
				want := "v:" + key
				v, _, err := c.GetOrCompute(context.Background(), key, func() ([]byte, error) {
					return []byte("v:" + key), nil
				})
				if err != nil || string(v) != want {
					t.Errorf("GetOrCompute(%s) = %q, %v", key, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > 4 {
		t.Fatalf("cache grew past its bound: %+v", st)
	}
}

// TestCacheLeaderFailureRetry checks that a cancelled leader does not
// poison waiters: a waiter retries with its own context and succeeds.
func TestCacheLeaderFailureRetry(t *testing.T) {
	c := NewCache(4)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})

	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.GetOrCompute(leaderCtx, "k", func() ([]byte, error) {
			close(leaderIn)
			<-leaderGo
			return nil, leaderCtx.Err()
		})
	}()

	<-leaderIn // leader is mid-compute and owns the flight
	cancelLeader()

	wg.Add(1)
	var waiterVal []byte
	var waiterErr error
	go func() {
		defer wg.Done()
		waiterVal, _, waiterErr = c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
			return []byte("recovered"), nil
		})
	}()

	close(leaderGo)
	wg.Wait()
	if leaderErr == nil {
		t.Fatal("cancelled leader reported success")
	}
	if waiterErr != nil || string(waiterVal) != "recovered" {
		t.Fatalf("waiter got %q, %v; want recovered", waiterVal, waiterErr)
	}
}
