package service

import (
	"net/http"
	"time"

	"dwarn/internal/exec"
	"dwarn/internal/fabric"
	"dwarn/internal/sim"
)

// FabricOptions enables the distributed sweep fabric: the server embeds
// a fabric.Coordinator behind the executor's Dispatcher seam, serves
// the lease protocol under /v2/fabric, and runs LocalWorkers in-process
// lease loops — so a lone dwarnd behaves exactly as before, and
// `dwarnd -worker` processes join the same queue the moment they
// register.
type FabricOptions struct {
	// LocalWorkers is how many in-process worker slots drain the queue
	// (default: Options.Workers). Zero via LocalWorkersSet makes the
	// server a pure coordinator: every cell waits for a remote worker,
	// and trace-workload cells are rejected (their payloads live in this
	// process's trace store).
	LocalWorkers int
	// LocalWorkersSet distinguishes "LocalWorkers: 0" (pure coordinator)
	// from an unset field defaulting to Options.Workers.
	LocalWorkersSet bool
	// LeaseTTL is how long a worker's lease on a cell survives without a
	// heartbeat before the cell is requeued (0 = fabric default).
	LeaseTTL time.Duration
	// WorkerTTL is how long a silent worker stays registered (0 =
	// fabric default).
	WorkerTTL time.Duration
}

// tieredStore layers the in-memory LRU cache over a durable store
// (dwarnd -store DIR): gets fall through to the durable tier and refill
// the LRU, puts write both. The durable tier holds the same one-file-
// per-fingerprint layout CLI sweeps resume from, so a result computed
// by any frontend — or pushed back by a remote fabric worker — is
// served from disk across dwarnd restarts and LRU evictions alike.
type tieredStore struct {
	fast exec.Store // LRU cacheStore: fast, evicting
	slow exec.Store // DirStore: durable, unbounded
}

// Get implements exec.Store.
func (t tieredStore) Get(fp string) (*sim.Result, bool) {
	if res, ok := t.fast.Get(fp); ok {
		return res, true
	}
	res, ok := t.slow.Get(fp)
	if ok {
		t.fast.Put(fp, res)
	}
	return res, ok
}

// Put implements exec.Store.
func (t tieredStore) Put(fp string, res *sim.Result) {
	t.fast.Put(fp, res)
	t.slow.Put(fp, res)
}

// startFabric builds the coordinator, wires it as the executor
// dispatcher, and starts the local workers. Called from New when
// Options.Fabric is set.
func (s *Server) startFabric(fo *FabricOptions) *fabric.Coordinator {
	c := fabric.NewCoordinator(fabric.Config{
		LeaseTTL:  fo.LeaseTTL,
		WorkerTTL: fo.WorkerTTL,
		Registry:  s.reg,
		Logger:    s.log,
		// Serve the server's checkpoint tier under /v2/fabric/ckpt so
		// remote workers fork groups warmed anywhere in the fleet.
		Checkpoints: s.opts.Checkpoints,
	})
	n := fo.LocalWorkers
	if n <= 0 && !fo.LocalWorkersSet {
		n = s.opts.Workers
	}
	c.StartLocalWorkers(n, s.runCell)
	return c
}

// handleFabricDisabled answers GET /v2/fabric when no coordinator is
// configured, so clients can probe for the fabric uniformly.
func (s *Server) handleFabricDisabled(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, fabric.Status{Enabled: false, Workers: []fabric.WorkerStatus{}})
}
