package service

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrSaturated reports load shedding: a submission refused because the
// corresponding backlog bound (job queue, active-sweep cap) is already
// full. Mapped to 503 + Retry-After.
var ErrSaturated = errors.New("service: saturated")

// Admission control: every request (except the health and metrics
// probes) passes through admitHandler before reaching the API mux. In
// order: bearer-token auth (constant-time compare), per-client token
// bucket rate limiting (429 + Retry-After), load shedding for the
// expensive submission routes when the job queue or sweep admission
// bound is already saturated (503 + Retry-After, before any body is
// read), a request-body byte cap, and a server-wide handling deadline
// for non-streaming routes. The fabric lease protocol (/v2/fabric/*)
// is authenticated but exempt from the rate limiter and deadline —
// heartbeats are frequent by design and the lease call long-polls.

// retryAfterShed is the Retry-After hint on load-shed 503s: shed
// clients should back off for at least a queue-drain quantum rather
// than hot-loop on the saturated server.
const retryAfterShed = 1 * time.Second

// maxRateClients bounds the rate limiter's bucket map so a scan of
// spoofed source addresses cannot grow server memory without bound.
const maxRateClients = 4096

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter is a token-bucket-per-client limiter: each client key
// accrues opts.RateLimit tokens/sec up to a burst cap, and each
// request spends one.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // test hook
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = math.Max(2*rate, 8)
	}
	return &rateLimiter{
		rate:    rate,
		burst:   b,
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow spends one token from key's bucket. When the bucket is empty
// it reports how long until the next token accrues — the Retry-After
// the client sees.
func (l *rateLimiter) allow(key string) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	bk := l.buckets[key]
	if bk == nil {
		if len(l.buckets) >= maxRateClients {
			l.pruneLocked(now)
		}
		bk = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = bk
	} else {
		bk.tokens = math.Min(l.burst, bk.tokens+now.Sub(bk.last).Seconds()*l.rate)
		bk.last = now
	}
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	return false, time.Duration((1 - bk.tokens) / l.rate * float64(time.Second))
}

// pruneLocked evicts buckets idle long enough to have refilled to
// capacity (their state is indistinguishable from a fresh bucket), and
// falls back to arbitrary eviction if a spoofing client defeated that.
func (l *rateLimiter) pruneLocked(now time.Time) {
	for k, bk := range l.buckets {
		if now.Sub(bk.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, k)
		}
	}
	for k := range l.buckets {
		if len(l.buckets) < maxRateClients/2 {
			break
		}
		delete(l.buckets, k)
	}
}

// bearerToken extracts the Authorization bearer credential, or "".
func bearerToken(r *http.Request) string {
	const prefix = "Bearer "
	auth := r.Header.Get("Authorization")
	if len(auth) > len(prefix) && strings.EqualFold(auth[:len(prefix)], prefix) {
		return auth[len(prefix):]
	}
	return ""
}

// authorized checks the request's bearer token against the configured
// one. Both sides are hashed before the constant-time compare, so
// neither content nor length of the configured token leaks through
// timing.
func (s *Server) authorized(r *http.Request) bool {
	got := sha256.Sum256([]byte(bearerToken(r)))
	return subtle.ConstantTimeCompare(got[:], s.authHash[:]) == 1
}

// clientKey identifies a client for rate limiting: the bearer token
// when one is presented (so one credential shares one budget across
// source addresses), else the remote host.
func clientKey(r *http.Request) string {
	if tok := bearerToken(r); tok != "" {
		sum := sha256.Sum256([]byte(tok))
		return "tok:" + string(sum[:16])
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "addr:" + host
}

// retryAfterHeader renders a wait as a whole-second Retry-After value,
// never less than 1 (a zero would invite an immediate retry).
func retryAfterHeader(wait time.Duration) string {
	secs := int64(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// streamingRoute reports routes that legitimately outlive any request
// deadline: the sweep SSE stream and the fabric long-poll lease call.
func streamingRoute(route string) bool {
	return route == "GET /v2/sweeps/{id}/events" || route == "POST /v2/fabric/lease"
}

// activeSweepsLocked counts non-terminal sweeps; callers hold s.mu.
func (s *Server) activeSweepsLocked() int {
	n := 0
	for _, sw := range s.sweeps {
		if !sw.terminal() {
			n++
		}
	}
	return n
}

func (s *Server) activeSweeps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.activeSweepsLocked()
}

// admitHandler wraps the API mux with the admission-control chain. It
// sits inside obsHandler, so rejected requests still land in the HTTP
// metrics and access log with their 401/429/503 codes.
func (s *Server) admitHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, route := s.mux.Handler(r)

		// Probes stay open: operators and schedulers must be able to
		// observe an overloaded or misconfigured server.
		if route == "GET /healthz" || route == "GET /metrics" {
			s.mux.ServeHTTP(w, r)
			return
		}

		if s.opts.AuthToken != "" && !s.authorized(r) {
			s.metAuthFail.Inc()
			w.Header().Set("WWW-Authenticate", `Bearer realm="dwarnd"`)
			writeError(w, http.StatusUnauthorized, fmt.Errorf("service: missing or invalid bearer token"))
			return
		}

		fabricRPC := strings.HasPrefix(r.URL.Path, "/v2/fabric")
		if s.limiter != nil && !fabricRPC {
			if ok, wait := s.limiter.allow(clientKey(r)); !ok {
				s.metRateLimited.Inc()
				w.Header().Set("Retry-After", retryAfterHeader(wait))
				writeError(w, http.StatusTooManyRequests, fmt.Errorf("service: rate limit exceeded"))
				return
			}
		}

		// Load shedding: refuse the expensive submission routes before
		// reading a byte of body once the corresponding backlog bound is
		// already saturated — the work would only fail deeper in with the
		// request fully parsed, or queue unboundedly.
		switch route {
		case "POST /v1/simulations", "POST /v2/runs":
			if s.mgr.QueueLen() >= s.opts.QueueDepth {
				s.shed(w, fmt.Errorf("%w: job queue full", ErrSaturated))
				return
			}
		case "POST /v1/sweeps", "POST /v2/sweeps":
			if s.activeSweeps() >= s.opts.MaxActiveSweeps {
				s.shed(w, fmt.Errorf("%w: too many active sweeps (max %d)", ErrSaturated, s.opts.MaxActiveSweeps))
				return
			}
		}

		// Bound every body read. The JSON routes re-wrap via decode with
		// the same cap (harmless); the trace upload keeps its own larger
		// bound, enforced again byte-exactly in the handler.
		if r.Body != nil {
			limit := s.opts.MaxBodyBytes
			if route == "POST /v1/traces" {
				limit = s.opts.MaxTraceBytes
			}
			r.Body = http.MaxBytesReader(w, r.Body, limit)
		}

		if t := s.opts.RequestTimeout; t > 0 && !streamingRoute(route) && !fabricRPC {
			ctx, cancel := context.WithTimeout(r.Context(), t)
			defer cancel()
			r = r.WithContext(ctx)
		}
		s.mux.ServeHTTP(w, r)
	})
}

// shed writes a load-shedding 503 with a Retry-After hint.
func (s *Server) shed(w http.ResponseWriter, err error) {
	s.metShed.Inc()
	w.Header().Set("Retry-After", retryAfterHeader(retryAfterShed))
	writeError(w, http.StatusServiceUnavailable, err)
}
