package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Job states. A job is terminal in StateDone, StateFailed, or
// StateCanceled.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Submission errors the HTTP layer maps to 503.
var (
	ErrQueueFull    = errors.New("service: job queue full")
	ErrShuttingDown = errors.New("service: shutting down")
)

// runFunc performs a job's work. It must honour ctx; cached reports
// whether the result was served from the result cache.
type runFunc func(ctx context.Context) (result json.RawMessage, cached bool, err error)

// Job is one unit of queued work. All fields are guarded by the owning
// Manager's mutex; handlers read them through View.
type Job struct {
	ID          string
	Kind        string // "simulation"
	Request     any    // echoed in status responses
	State       string
	Cached      bool
	Result      json.RawMessage
	Err         string
	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time

	ctx    context.Context
	cancel context.CancelFunc
	run    runFunc
}

// JobView is the JSON shape of a job in API responses.
type JobView struct {
	ID          string          `json:"id"`
	Kind        string          `json:"kind"`
	State       string          `json:"state"`
	Cached      bool            `json:"cached"`
	Request     any             `json:"request,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
	Error       string          `json:"error,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at"`
	StartedAt   *time.Time      `json:"started_at,omitempty"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
}

// Manager owns the worker pool and the FIFO job queue. Jobs are
// executed in submission order by a fixed number of workers; each job
// carries its own cancellable context, and Shutdown drains queued and
// in-flight work before returning. Terminal job records are retained
// for polling but bounded: beyond maxRecords the oldest terminal jobs
// are pruned (active jobs are never pruned), so a long-lived service
// cannot grow without bound.
type Manager struct {
	mu         sync.Mutex
	jobs       map[string]*Job
	order      []string // submission order, for listing
	seq        uint64
	closed     bool
	maxRecords int

	queue   chan *Job
	wg      sync.WaitGroup
	baseCtx context.Context
	stopAll context.CancelFunc

	now func() time.Time // test hook
}

// NewManager starts workers goroutines draining a queue of depth
// slots, retaining at most maxRecords job records.
func NewManager(workers, depth, maxRecords int) *Manager {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	if maxRecords < 1 {
		maxRecords = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		jobs:       make(map[string]*Job),
		queue:      make(chan *Job, depth),
		maxRecords: maxRecords,
		baseCtx:    ctx,
		stopAll:    cancel,
		now:        time.Now,
	}
	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	return m
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.mu.Lock()
		if j.State != StateQueued { // canceled while queued
			m.mu.Unlock()
			continue
		}
		j.State = StateRunning
		j.StartedAt = m.now()
		m.mu.Unlock()

		res, cached, err := j.run(j.ctx)

		m.mu.Lock()
		j.FinishedAt = m.now()
		switch {
		case err == nil:
			j.State = StateDone
			j.Result = res
			j.Cached = cached
		case errors.Is(err, context.Canceled) || j.ctx.Err() != nil:
			j.State = StateCanceled
			j.Err = "canceled"
		default:
			j.State = StateFailed
			j.Err = err.Error()
		}
		j.cancel()
		m.mu.Unlock()
	}
}

// terminal reports whether a state is final.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// pruneLocked drops the oldest terminal job records beyond maxRecords.
func (m *Manager) pruneLocked() {
	excess := len(m.order) - m.maxRecords
	if excess <= 0 {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		if excess > 0 && terminal(m.jobs[id].State) {
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

func (m *Manager) newJob(kind string, req any) *Job {
	m.seq++
	ctx, cancel := context.WithCancel(m.baseCtx)
	j := &Job{
		ID:          fmt.Sprintf("%s-%06d", kind, m.seq),
		Kind:        kind,
		Request:     req,
		State:       StateQueued,
		SubmittedAt: m.now(),
		ctx:         ctx,
		cancel:      cancel,
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.pruneLocked()
	return j
}

// Submit enqueues a new job. It fails fast with ErrQueueFull when the
// queue has no free slot and ErrShuttingDown after Shutdown began.
func (m *Manager) Submit(kind string, req any, run runFunc) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrShuttingDown
	}
	j := m.newJob(kind, req)
	j.run = run
	select {
	case m.queue <- j:
		return j, nil
	default:
		delete(m.jobs, j.ID)
		m.order = m.order[:len(m.order)-1]
		j.cancel()
		return nil, ErrQueueFull
	}
}

// Restore re-enqueues a journaled job under its original ID after a
// restart. The sequence counter advances past the restored ID so fresh
// submissions never collide with it; at is the original submission
// time (zero = now). Like Submit, it fails fast on a full queue.
func (m *Manager) Restore(id, kind string, req any, at time.Time, run runFunc) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrShuttingDown
	}
	if _, ok := m.jobs[id]; ok {
		return nil, fmt.Errorf("service: job %q already registered", id)
	}
	if n := trailingSeq(id); n > m.seq {
		m.seq = n
	}
	if at.IsZero() {
		at = m.now()
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j := &Job{
		ID:          id,
		Kind:        kind,
		Request:     req,
		State:       StateQueued,
		SubmittedAt: at,
		ctx:         ctx,
		cancel:      cancel,
		run:         run,
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.pruneLocked()
	select {
	case m.queue <- j:
		return j, nil
	default:
		delete(m.jobs, id)
		m.order = m.order[:len(m.order)-1]
		cancel()
		return nil, ErrQueueFull
	}
}

// RestoreTerminal re-registers a journaled job that had already reached
// a terminal state before a restart, so listings keep serving it. The
// result payload may be nil when the durable store no longer holds it;
// the state and error are still observable. Like Restore, the sequence
// counter advances past the restored id so fresh submissions never
// collide with it.
func (m *Manager) RestoreTerminal(id, kind string, req any, state, errMsg string, result json.RawMessage, cached bool, at time.Time) (*Job, error) {
	if !terminal(state) {
		return nil, fmt.Errorf("service: restore of job %q with non-terminal state %q", id, state)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrShuttingDown
	}
	if _, ok := m.jobs[id]; ok {
		return nil, fmt.Errorf("service: job %q already registered", id)
	}
	if n := trailingSeq(id); n > m.seq {
		m.seq = n
	}
	if at.IsZero() {
		at = m.now()
	}
	j := &Job{
		ID:          id,
		Kind:        kind,
		Request:     req,
		State:       state,
		Err:         errMsg,
		Result:      result,
		Cached:      cached,
		SubmittedAt: at,
		FinishedAt:  at,
		cancel:      func() {},
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.pruneLocked()
	return j, nil
}

// SubmitCompleted records a job that finished at submission time — the
// fast path for results already present in the cache, which bypasses
// the queue entirely.
func (m *Manager) SubmitCompleted(kind string, req any, result json.RawMessage, cached bool) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrShuttingDown
	}
	j := m.newJob(kind, req)
	j.State = StateDone
	j.StartedAt = j.SubmittedAt
	j.FinishedAt = j.SubmittedAt
	j.Result = result
	j.Cached = cached
	j.cancel()
	return j, nil
}

// Get returns a job's current view.
func (m *Manager) Get(id string) (JobView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return m.viewLocked(j), true
}

// Cancel cancels a queued or running job. Cancelling a queued job takes
// effect immediately; a running job stops at its next context check.
// Returns false if the job does not exist or is already terminal.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return false
	}
	switch j.State {
	case StateQueued:
		j.State = StateCanceled
		j.Err = "canceled"
		j.FinishedAt = m.now()
		j.cancel()
		return true
	case StateRunning:
		j.cancel() // worker observes ctx and records the terminal state
		return true
	}
	return false
}

// List returns all jobs in submission order.
func (m *Manager) List() []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobView, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.viewLocked(m.jobs[id]))
	}
	return out
}

// QueueLen returns the number of jobs waiting in the queue (the
// dwarn_jobs_queue_depth gauge).
func (m *Manager) QueueLen() int { return len(m.queue) }

// Counts returns the number of jobs per state.
func (m *Manager) Counts() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int)
	for _, j := range m.jobs {
		out[j.State]++
	}
	return out
}

func (m *Manager) viewLocked(j *Job) JobView {
	v := JobView{
		ID:          j.ID,
		Kind:        j.Kind,
		State:       j.State,
		Cached:      j.Cached,
		Request:     j.Request,
		Result:      j.Result,
		Error:       j.Err,
		SubmittedAt: j.SubmittedAt,
	}
	if !j.StartedAt.IsZero() {
		t := j.StartedAt
		v.StartedAt = &t
	}
	if !j.FinishedAt.IsZero() {
		t := j.FinishedAt
		v.FinishedAt = &t
	}
	return v
}

// Shutdown stops accepting jobs and drains the queue: queued and
// running jobs complete normally. If ctx expires first, every remaining
// job's context is cancelled and Shutdown waits for the workers to
// observe that before returning ctx.Err().
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.stopAll()
		<-done
		return ctx.Err()
	}
}
