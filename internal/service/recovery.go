package service

import (
	"context"
	"encoding/json"
	"fmt"

	"dwarn/internal/journal"
)

// Restart recovery: New folds the record stream journal.Open replayed
// (Options.Recovered) into entries and resumes every unfinished one
// through the normal submission paths. Canonical cell specs re-resolve
// to the same fingerprints they had before the crash, so cells a
// durable store (-store) already holds complete instantly at the
// precheck — recovery's cost is only the cells that were genuinely in
// flight when the process died. Entries whose specs no longer resolve
// (a trace uploaded to the dead process's memory, a removed workload)
// are registered terminal failed and get a finish record: failed, not
// wedged, and never re-resumed.

// recoverFromJournal is called once from New, after the executor and
// routes exist but before the listener serves traffic.
func (s *Server) recoverFromJournal() {
	entries := journal.Fold(s.opts.Recovered)
	if len(entries) == 0 {
		return
	}
	// Advance the id sequences past every journaled entry first, so ids
	// allocated to fresh submissions never collide with recovered ones
	// (including terminal entries that are not re-registered).
	s.mu.Lock()
	for _, e := range entries {
		if e.Kind == journal.KindSweep {
			if n := trailingSeq(e.ID); n > s.sweepSeq {
				s.sweepSeq = n
			}
		}
	}
	s.mu.Unlock()

	unfinished := 0
	for _, e := range entries {
		if !e.Unfinished() {
			// Terminal run jobs stay listed across a crash restart: GET
			// /v1/simulations must not forget work that finished before
			// the process died. (Clean shutdown compacts them away along
			// with everything else.)
			if e.Kind == journal.KindRun {
				s.restoreTerminalRun(e)
			}
			continue
		}
		unfinished++
		switch e.Kind {
		case journal.KindSweep:
			s.recoverSweep(e)
		case journal.KindRun:
			s.recoverRun(e)
		default:
			s.log.Warn("journal entry with unknown kind", "id", e.ID, "kind", e.Kind)
		}
	}
	s.log.Info("journal recovery", "replayed", len(s.opts.Recovered),
		"entries", len(entries), "resumed", unfinished)
}

// recoverSweep re-resolves a sweep's canonical cells and resumes it
// under its original id, flagged recovered in status responses.
func (s *Server) recoverSweep(e *journal.Entry) {
	cells := make([]sweepCell, 0, len(e.Cells))
	for _, rs := range e.Cells {
		res, err := s.resolveSpec(rs)
		if err != nil {
			s.failRecoveredSweep(e, fmt.Errorf("service: recovery: %w", err))
			return
		}
		cells = append(cells, sweepCell{resolved: res, view: cellIdentity(res)})
	}
	st, err := s.startSweep(sweepStart{
		cells:       cells,
		trace:       "recovery",
		id:          e.ID,
		recovered:   true,
		submittedAt: e.SubmittedAt,
	})
	if err != nil {
		s.failRecoveredSweep(e, fmt.Errorf("service: recovery: %w", err))
		return
	}
	s.log.Info("sweep recovered", "sweep", e.ID, "cells", len(cells),
		"done_on_record", len(e.Done), "state", st.State)
}

// failRecoveredSweep registers an unresumable sweep as terminal failed
// — observable via GET with the cause — and journals the terminal
// record so the next restart does not retry it forever.
func (s *Server) failRecoveredSweep(e *journal.Entry, cause error) {
	sw := &sweep{
		id:          e.ID,
		submittedAt: e.SubmittedAt,
		state:       StateFailed,
		recovered:   true,
		cancel:      func() {},
	}
	for _, rs := range e.Cells {
		view := SweepCell{Policy: rs.Policy.ID(), Seed: rs.Seed}
		if rs.Workload.Trace != "" {
			view.Trace = rs.Workload.Trace
		} else {
			view.Workload = rs.Workload.ID()
		}
		if rs.Machine != nil {
			view.Machine = rs.Machine.Name
		}
		view.State = StateFailed
		sw.cells = append(sw.cells, sweepCell{view: view})
		sw.progress = append(sw.progress, cellProgress{state: StateFailed, err: cause.Error()})
	}
	s.mu.Lock()
	if _, ok := s.sweeps[sw.id]; !ok {
		s.sweeps[sw.id] = sw
		s.sweepOrder = append(s.sweepOrder, sw.id)
		s.pruneSweepsLocked()
	}
	s.mu.Unlock()
	s.journalFinish(sw.id, StateFailed, cause.Error())
	s.log.Warn("sweep recovery failed", "sweep", e.ID, "err", cause)
}

// restoreTerminalRun re-registers a run job that had already finished
// before the crash. A done job's result is re-attached from the durable
// result cache when it still holds the payload; otherwise the terminal
// state (and failure message) is served without one.
func (s *Server) restoreTerminalRun(e *journal.Entry) {
	var req any
	var result json.RawMessage
	cached := false
	if len(e.Cells) == 1 {
		req = e.Cells[0]
		if e.State == StateDone {
			if res, err := s.resolveSpec(e.Cells[0]); err == nil {
				switch {
				case res.Spec.Baselines:
					// The relative-IPC summary only lives in the in-memory
					// response cache; after a restart the job serves its
					// terminal state without a payload.
					if raw, ok := s.cache.Peek(simBaselinesKey(res.Fingerprint)); ok {
						result, cached = raw, true
					}
				default:
					// The executor's store reaches the durable tier (-store),
					// so the job re-attaches the exact pre-crash payload.
					if r, ok := s.exec.Store().Get(res.Fingerprint); ok {
						raw, merr := json.Marshal(&SimulationResult{Fingerprint: res.Fingerprint, Result: r})
						if merr == nil {
							result, cached = raw, true
						}
					}
				}
			}
		}
	}
	errMsg := e.Error
	if e.State == StateCanceled && errMsg == "" {
		errMsg = "canceled"
	}
	if _, err := s.mgr.RestoreTerminal(e.ID, "sim", req, e.State, errMsg, result, cached, e.SubmittedAt); err != nil {
		s.log.Warn("terminal job restore failed", "job", e.ID, "err", err)
		return
	}
	s.log.Debug("terminal job restored", "job", e.ID, "state", e.State)
}

// recoverRun re-enqueues an unfinished single-run job under its
// original id. A spec that no longer resolves runs as an immediate
// failure, which records the terminal state through the normal path.
func (s *Server) recoverRun(e *journal.Entry) {
	var run func(context.Context) (json.RawMessage, bool, error)
	var req any
	switch {
	case len(e.Cells) != 1:
		cause := fmt.Errorf("service: recovery: job %s journal entry carries %d specs, want 1", e.ID, len(e.Cells))
		run = func(context.Context) (json.RawMessage, bool, error) { return nil, false, cause }
	default:
		req = e.Cells[0]
		res, err := s.resolveSpec(e.Cells[0])
		if err != nil {
			cause := fmt.Errorf("service: recovery: %w", err)
			run = func(context.Context) (json.RawMessage, bool, error) { return nil, false, cause }
			break
		}
		runner := s.runSim
		if res.Spec.Baselines {
			runner = s.runSimWithBaselines
		}
		run = func(ctx context.Context) (json.RawMessage, bool, error) {
			return runner(ctx, res)
		}
	}
	wrapped := func(ctx context.Context) (json.RawMessage, bool, error) {
		raw, cached, err := run(ctx)
		s.journalRunFinish(e.ID, ctx, err)
		return raw, cached, err
	}
	if _, err := s.mgr.Restore(e.ID, "sim", req, e.SubmittedAt, wrapped); err != nil {
		// Queue full or double restore: leave the entry unfinished — the
		// next restart tries again with a drained queue.
		s.log.Warn("job recovery failed", "job", e.ID, "err", err)
		return
	}
	s.log.Info("job recovered", "job", e.ID)
}
