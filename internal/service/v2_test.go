package service

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dwarn/internal/core"
	"dwarn/internal/exec"
	"dwarn/internal/spec"
)

// submitV2Run posts a spec to /v2/runs and decodes the acceptance.
func submitV2Run(t *testing.T, ts *httptest.Server, rs spec.RunSpec) RunAccepted {
	t.Helper()
	resp, raw := postJSON(t, ts, "/v2/runs", rs)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v2/runs: status %d body %s", resp.StatusCode, raw)
	}
	var v RunAccepted
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("bad run acceptance %q: %v", raw, err)
	}
	return v
}

// TestV2PoliciesCatalog: the v2 catalog exposes the registry's declared
// parameters, the data a client needs to build threshold sweeps.
func TestV2PoliciesCatalog(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	var out struct {
		Policies []struct {
			Name   string           `json:"name"`
			Params []core.ParamSpec `json:"params"`
		} `json:"policies"`
		Paper []string `json:"paper"`
	}
	getJSON(t, ts, "/v2/policies", &out)
	if len(out.Paper) != 6 {
		t.Fatalf("want 6 paper policies, got %v", out.Paper)
	}
	byName := map[string][]core.ParamSpec{}
	for _, p := range out.Policies {
		byName[p.Name] = p.Params
	}
	dwarn := byName["dwarn"]
	if len(dwarn) != 1 || dwarn[0].Name != "warn" || dwarn[0].Default != 1 {
		t.Fatalf("dwarn params %+v", dwarn)
	}
	if len(byName["icount"]) != 0 {
		t.Fatalf("icount declares params %+v", byName["icount"])
	}
}

// TestV2RunAdapterEquivalence: every legal v1 request maps to a spec
// with an identical fingerprint — proven end to end by cache hits: the
// v2 spelling of a completed v1 request must be served from the cache
// at submit time, and vice versa.
func TestV2RunAdapterEquivalence(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	cases := []struct {
		name string
		v1   SimulationRequest
		v2   spec.RunSpec
	}{
		{
			name: "named workload",
			v1: SimulationRequest{Policy: "dwarn", Workload: "2-MIX",
				WarmupCycles: testWarmup, MeasureCycles: testMeasure},
			v2: spec.RunSpec{Policy: spec.Policy{Name: "dwarn"}, Workload: spec.Workload{Name: "2-MIX"},
				WarmupCycles: testWarmup, MeasureCycles: testMeasure},
		},
		{
			name: "custom benchmarks, explicit defaults",
			v1: SimulationRequest{Policy: "stall", Benchmarks: []string{"gzip", "mcf"},
				WarmupCycles: testWarmup, MeasureCycles: testMeasure},
			v2: spec.RunSpec{
				Version:  spec.Version,
				Machine:  &spec.Machine{Name: "baseline"},
				Policy:   spec.Policy{Name: "stall", Params: map[string]int64{"threshold": 15}},
				Workload: spec.Workload{Benchmarks: []string{"gzip", "mcf"}},
				Seed:     42, WarmupCycles: testWarmup, MeasureCycles: testMeasure,
			},
		},
		{
			name: "small machine, seed",
			v1: SimulationRequest{Machine: "small", Policy: "icount", Workload: "2-MEM", Seed: 9,
				WarmupCycles: testWarmup, MeasureCycles: testMeasure},
			v2: spec.RunSpec{Machine: &spec.Machine{Name: "small"},
				Policy: spec.Policy{Name: "icount"}, Workload: spec.Workload{Name: "2-MEM"}, Seed: 9,
				WarmupCycles: testWarmup, MeasureCycles: testMeasure},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			first := waitJob(t, ts, submitSim(t, ts, tc.v1).ID, StateDone)
			sr, err := decodeSim(first.Result)
			if err != nil {
				t.Fatal(err)
			}

			v := submitV2Run(t, ts, tc.v2)
			if v.Fingerprint != sr.Fingerprint {
				t.Fatalf("v2 fingerprint %s, v1 %s", v.Fingerprint, sr.Fingerprint)
			}
			if v.State != StateDone || !v.Cached {
				t.Fatalf("v2 spelling not served from the v1 cache entry: state %q cached %v", v.State, v.Cached)
			}
		})
	}
}

// TestV1ServedFromV2CacheEntry: the adapter equivalence holds in the
// other direction too.
func TestV1ServedFromV2CacheEntry(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	rs := spec.RunSpec{Policy: spec.Policy{Name: "pdg"}, Workload: spec.Workload{Name: "2-ILP"},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure}
	v := submitV2Run(t, ts, rs)
	waitJob(t, ts, v.ID, StateDone)

	again := submitSim(t, ts, SimulationRequest{Policy: "pdg", Workload: "2-ILP",
		WarmupCycles: testWarmup, MeasureCycles: testMeasure})
	if again.State != StateDone || !again.Cached {
		t.Fatalf("v1 spelling not served from the v2 cache entry: state %q cached %v", again.State, again.Cached)
	}
}

// TestV2RunInlineOverrides: a no-op override shares the named machine's
// identity; a real override is a different machine.
func TestV2RunInlineOverrides(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	base := submitV2Run(t, ts, spec.RunSpec{
		Policy: spec.Policy{Name: "icount"}, Workload: spec.Workload{Name: "2-MIX"},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure})
	waitJob(t, ts, base.ID, StateDone)

	noop := submitV2Run(t, ts, spec.RunSpec{
		Machine: &spec.Machine{Name: "baseline", Overrides: []byte(`{"MemLatency": 100}`)},
		Policy:  spec.Policy{Name: "icount"}, Workload: spec.Workload{Name: "2-MIX"},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure})
	if noop.Fingerprint != base.Fingerprint || !noop.Cached {
		t.Fatalf("no-op override did not share the baseline identity (cached %v)", noop.Cached)
	}

	real := submitV2Run(t, ts, spec.RunSpec{
		Machine: &spec.Machine{Name: "baseline", Overrides: []byte(`{"MemLatency": 200}`)},
		Policy:  spec.Policy{Name: "icount"}, Workload: spec.Workload{Name: "2-MIX"},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure})
	if real.Fingerprint == base.Fingerprint {
		t.Fatal("a real override shares the baseline fingerprint")
	}
	done := waitJob(t, ts, real.ID, StateDone)
	sr, err := decodeSim(done.Result)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Result.Machine != "baseline" || sr.Result.Throughput <= 0 {
		t.Fatalf("override run result %+v", sr.Result)
	}
}

// TestV2DWarnWarnThresholdSweep is the paper's §5-style sensitivity
// grid over the wire: 3 warn thresholds × 2 workloads, per-cell
// fingerprints distinct per threshold, repeats served from cache.
func TestV2DWarnWarnThresholdSweep(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	sweep := spec.SweepSpec{
		Policies:     []spec.PolicyAxis{{Name: "dwarn", Params: map[string][]int64{"warn": {1, 2, 4}}}},
		Workloads:    []spec.Workload{{Name: "2-MIX"}, {Name: "2-MEM"}},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	}
	resp, raw := postJSON(t, ts, "/v2/sweeps", sweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v2/sweeps: status %d body %s", resp.StatusCode, raw)
	}
	var st SweepStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Total != 6 {
		t.Fatalf("sweep has %d cells, want 3 thresholds × 2 workloads = 6", st.Total)
	}

	fps := map[string]bool{}
	byPolicy := map[string]int{}
	for _, cell := range st.Cells {
		if cell.Fingerprint == "" {
			t.Fatalf("cell %s/%s missing fingerprint", cell.Policy, cell.Workload)
		}
		fps[cell.Fingerprint] = true
		byPolicy[cell.Policy]++
	}
	if len(fps) != 6 {
		t.Fatalf("%d distinct fingerprints, want 6 (thresholds must not collide)", len(fps))
	}
	for _, id := range []string{"dwarn", "dwarn(warn=2)", "dwarn(warn=4)"} {
		if byPolicy[id] != 2 {
			t.Fatalf("policy ids %v, want 2 cells each of dwarn, dwarn(warn=2), dwarn(warn=4)", byPolicy)
		}
	}

	deadline := time.Now().Add(120 * time.Second)
	for st.State == StateRunning && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		getJSON(t, ts, "/v2/sweeps/"+st.ID, &st)
	}
	if st.State != StateDone {
		t.Fatalf("sweep finished in state %q (%d/%d done)", st.State, st.Done, st.Total)
	}

	// Identical resubmission: every cell completes at submit time from
	// the cache.
	resp, raw = postJSON(t, ts, "/v2/sweeps", sweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("repeat POST /v2/sweeps: status %d body %s", resp.StatusCode, raw)
	}
	var again SweepStatus
	if err := json.Unmarshal(raw, &again); err != nil {
		t.Fatal(err)
	}
	if again.Done != again.Total || again.State != StateDone {
		t.Fatalf("repeat sweep not fully served from cache: %d/%d done at submit (state %s)", again.Done, again.Total, again.State)
	}
	for _, cell := range again.Cells {
		if !cell.Cached || cell.Throughput == nil {
			t.Fatalf("repeat cell %s/%s not marked cached (%+v)", cell.Policy, cell.Workload, cell)
		}
	}
}

// TestV2SweepSSEStream consumes GET /v2/sweeps/{id}/events to
// completion: every cell's terminal transition arrives as a "cell"
// frame, and the final "end" frame carries the finished status — the
// no-polling path to a sweep's progress.
func TestV2SweepSSEStream(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	sweep := spec.SweepSpec{
		Policies:     []spec.PolicyAxis{{Name: "icount"}, {Name: "dwarn"}},
		Workloads:    []spec.Workload{{Name: "2-MIX"}, {Name: "2-MEM"}},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	}
	resp, raw := postJSON(t, ts, "/v2/sweeps", sweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v2/sweeps: status %d body %s", resp.StatusCode, raw)
	}
	var st SweepStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}

	es, err := http.Get(ts.URL + "/v2/sweeps/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	if es.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", es.StatusCode)
	}
	if ct := es.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}

	terminalCells := map[int]string{}
	var final *SweepStatus
	var event string
	sc := bufio.NewScanner(es.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "cell":
				var ev SweepEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad cell frame %q: %v", data, err)
				}
				if ev.State != exec.CellStarted {
					terminalCells[ev.Index] = ev.State
					if ev.Throughput == nil && ev.Error == "" {
						t.Fatalf("terminal frame without throughput: %+v", ev)
					}
				}
			case "end":
				final = &SweepStatus{}
				if err := json.Unmarshal([]byte(data), final); err != nil {
					t.Fatalf("bad end frame %q: %v", data, err)
				}
			default:
				t.Fatalf("unknown SSE event %q", event)
			}
		}
	}
	// The server closes the stream after the end frame; the scanner
	// simply runs out of input.
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if final == nil {
		t.Fatal("stream closed without an end frame")
	}
	if final.State != StateDone || final.Done != 4 {
		t.Fatalf("end frame %+v", final)
	}
	if len(terminalCells) != 4 {
		t.Fatalf("saw terminal frames for %d cells, want 4 (%v)", len(terminalCells), terminalCells)
	}

	// A second consumer after completion replays the full history and
	// ends immediately.
	es2, err := http.Get(ts.URL + "/v2/sweeps/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es2.Body.Close()
	replay, err := io.ReadAll(es2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(replay), "event: end") {
		t.Fatalf("replay stream missing end frame: %s", replay)
	}
}

// TestV2SweepCellBound: a hostile grid is rejected with a 400 before
// any job exists.
func TestV2SweepCellBound(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1, MaxSweepCells: 4})
	sweep := spec.SweepSpec{
		Policies:  []spec.PolicyAxis{{Name: "dwarn", Params: map[string][]int64{"warn": {1, 2, 4}}}},
		Workloads: []spec.Workload{{Name: "2-MIX"}, {Name: "2-MEM"}},
	}
	resp, raw := postJSON(t, ts, "/v2/sweeps", sweep)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized sweep: status %d body %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "cells") {
		t.Fatalf("error does not explain the cell bound: %s", raw)
	}
	if jobs := srv.mgr.List(); len(jobs) != 0 {
		t.Fatalf("%d jobs created by a rejected sweep", len(jobs))
	}

	// The same bound applies to v1 sweeps (machines can be repeated to
	// inflate the product).
	resp, raw = postJSON(t, ts, "/v1/sweeps", SweepRequest{
		Machines:  []string{"baseline", "baseline", "baseline"},
		Workloads: []string{"2-MIX"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized v1 sweep: status %d body %s", resp.StatusCode, raw)
	}
}

// TestV2SeedReplicationSweep: the seeds axis fans out one cell per
// seed, each with its own identity.
func TestV2SeedReplicationSweep(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	resp, raw := postJSON(t, ts, "/v2/sweeps", spec.SweepSpec{
		Policies:     []spec.PolicyAxis{{Name: "icount"}},
		Workloads:    []spec.Workload{{Name: "2-ILP"}},
		Seeds:        []uint64{1, 2, 3},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v2/sweeps: status %d body %s", resp.StatusCode, raw)
	}
	var st SweepStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Total != 3 {
		t.Fatalf("%d cells, want 3 seeds", st.Total)
	}
	seeds := map[uint64]bool{}
	fps := map[string]bool{}
	for _, cell := range st.Cells {
		seeds[cell.Seed] = true
		fps[cell.Fingerprint] = true
	}
	if len(seeds) != 3 || len(fps) != 3 {
		t.Fatalf("seeds %v fingerprints %d, want 3 distinct each", seeds, len(fps))
	}
}

// TestV2TraceRunSharesV1Identity: a v2 spec replaying an uploaded trace
// by id prefix shares the cache entry of the v1 request that ran it by
// full id.
func TestV2TraceRunSharesV1Identity(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	raw := recordTestTrace(t, "2-MIX", 42, 60000)
	tv, _ := uploadTrace(t, ts, raw)

	first := waitJob(t, ts, submitSim(t, ts, SimulationRequest{
		Policy: "dwarn", Trace: tv.ID,
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	}).ID, StateDone)
	sr, err := decodeSim(first.Result)
	if err != nil {
		t.Fatal(err)
	}

	v := submitV2Run(t, ts, spec.RunSpec{
		Policy:       spec.Policy{Name: "dwarn"},
		Workload:     spec.Workload{Trace: tv.ID[:12]},
		Seed:         999, // replay ignores the seed; identity must not change
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	})
	if v.Fingerprint != sr.Fingerprint {
		t.Fatalf("v2 trace fingerprint %s, v1 %s", v.Fingerprint, sr.Fingerprint)
	}
	if !v.Cached {
		t.Fatal("v2 trace run not served from the v1 cache entry")
	}
}

func TestV2RunValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	bad := []spec.RunSpec{
		{Workload: spec.Workload{Name: "4-MIX"}},                                        // no policy
		{Policy: spec.Policy{Name: "nonesuch"}, Workload: spec.Workload{Name: "4-MIX"}}, // unknown policy
		{Policy: spec.Policy{Name: "dwarn", Params: map[string]int64{"warn": 0}}, // out of range
			Workload: spec.Workload{Name: "4-MIX"}},
		{Policy: spec.Policy{Name: "dwarn", Params: map[string]int64{"nope": 3}}, // unknown param
			Workload: spec.Workload{Name: "4-MIX"}},
		{Policy: spec.Policy{Name: "dwarn"}, Workload: spec.Workload{Name: "4-MIX", Solo: "gzip"}}, // two workloads
		{Policy: spec.Policy{Name: "dwarn"}, Workload: spec.Workload{Trace: "deadbeef00"}},         // unknown trace
		{Policy: spec.Policy{Name: "dwarn"}, Workload: spec.Workload{Name: "4-MIX"}, Version: 99},  // bad version
		{Policy: spec.Policy{Name: "dwarn"}, Workload: spec.Workload{Name: "4-MIX"}, // over cycle cap
			MeasureCycles: 100_000_000},
		{Machine: &spec.Machine{Name: "baseline", Overrides: []byte(`{"NoSuchField": 1}`)}, // bad override
			Policy: spec.Policy{Name: "dwarn"}, Workload: spec.Workload{Name: "4-MIX"}},
	}
	for i, rs := range bad {
		resp, raw := postJSON(t, ts, "/v2/runs", rs)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d body %s", i, resp.StatusCode, raw)
		}
	}

	// Unknown body fields are rejected (strict decoding).
	resp, err := http.Post(ts.URL+"/v2/runs", "application/json",
		strings.NewReader(`{"policy": {"name": "dwarn"}, "workload": {"name": "4-MIX"}, "bogus": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field accepted: status %d", resp.StatusCode)
	}
}

// TestV2JobSharedIDSpace: a job submitted on v2 is pollable and
// cancellable through v1 paths and vice versa.
func TestV2JobSharedIDSpace(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	v := submitV2Run(t, ts, spec.RunSpec{
		Policy: spec.Policy{Name: "dg"}, Workload: spec.Workload{Name: "2-MIX"},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure})
	waitJob(t, ts, v.ID, StateDone) // waitJob polls /v1/simulations/{id}

	var viaV2 JobView
	if resp := getJSON(t, ts, "/v2/runs/"+v.ID, &viaV2); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v2/runs/%s: status %d", v.ID, resp.StatusCode)
	}
	if viaV2.State != StateDone {
		t.Fatalf("v2 view state %q", viaV2.State)
	}
}
