package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"dwarn/internal/exec"
	"dwarn/internal/fabric"
	"dwarn/internal/spec"
)

// runSweepToDone posts a sweep and polls it to StateDone.
func runSweepToDone(t *testing.T, ts *httptest.Server, sweep spec.SweepSpec) SweepStatus {
	t.Helper()
	resp, raw := postJSON(t, ts, "/v2/sweeps", sweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v2/sweeps: status %d body %s", resp.StatusCode, raw)
	}
	var st SweepStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for st.State == StateRunning && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		getJSON(t, ts, "/v2/sweeps/"+st.ID, &st)
	}
	if st.State != StateDone {
		t.Fatalf("sweep finished in state %q (%d/%d done)", st.State, st.Done, st.Total)
	}
	return st
}

// TestServiceFabricSweep runs a sweep through a fabric-enabled server:
// the executor dispatches every cell into the coordinator's queue, the
// in-process local workers drain it, and GET /v2/fabric reports the
// fleet — while the public sweep API behaves exactly as without the
// fabric.
func TestServiceFabricSweep(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers: 2,
		Fabric:  &FabricOptions{LocalWorkers: 2, LeaseTTL: time.Second},
	})

	sweep := spec.SweepSpec{
		Policies:     []spec.PolicyAxis{{Name: "dwarn"}, {Name: "icount"}},
		Workloads:    []spec.Workload{{Name: "2-MIX"}},
		Seeds:        []uint64{1, 2},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	}
	st := runSweepToDone(t, ts, sweep)
	if st.Total != 4 || st.Done != 4 {
		t.Fatalf("sweep %d/%d done, want 4/4", st.Done, st.Total)
	}

	var fs fabric.Status
	getJSON(t, ts, "/v2/fabric", &fs)
	if !fs.Enabled {
		t.Fatal("/v2/fabric reports disabled on a fabric-enabled server")
	}
	if fs.CompletedTotal < 4 {
		t.Errorf("completed_total = %d, want >= 4", fs.CompletedTotal)
	}
	if len(fs.Workers) != 1 || fs.Workers[0].Name != "local" || !fs.Workers[0].Local {
		t.Fatalf("workers = %+v, want the one in-process worker", fs.Workers)
	}
	if fs.Workers[0].CellsDone < 4 {
		t.Errorf("local worker cells_done = %d, want >= 4", fs.Workers[0].CellsDone)
	}

	// The fabric counters surface on /metrics too.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, series := range []string{"dwarn_fabric_completes_total", "dwarn_fabric_queue_depth", "dwarn_fabric_workers"} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
}

// TestServiceFabricDisabledProbe: without Options.Fabric the probe
// endpoint still answers, reporting enabled=false.
func TestServiceFabricDisabledProbe(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	var fs fabric.Status
	resp := getJSON(t, ts, "/v2/fabric", &fs)
	if resp.StatusCode != http.StatusOK || fs.Enabled {
		t.Fatalf("GET /v2/fabric on plain server: status %d enabled %v", resp.StatusCode, fs.Enabled)
	}
}

// TestServiceDurableStore: with Options.Store the result cache is
// backed by a DirStore — results land on disk, and a fresh server (cold
// LRU) over the same directory serves the whole sweep from the store at
// submit time.
func TestServiceDurableStore(t *testing.T) {
	dir := t.TempDir()
	ds, err := exec.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sweep := spec.SweepSpec{
		Policies:     []spec.PolicyAxis{{Name: "icount"}},
		Workloads:    []spec.Workload{{Name: "2-MIX"}},
		Seeds:        []uint64{1, 2, 3},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	}

	_, ts := newTestServer(t, Options{Workers: 2, Store: ds})
	st := runSweepToDone(t, ts, sweep)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != st.Total {
		t.Fatalf("store dir holds %d entries after a %d-cell sweep", len(ents), st.Total)
	}

	// A second server over the same directory has a cold LRU but a warm
	// durable tier: the identical sweep completes at submission, every
	// cell cached.
	ds2, err := exec.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Options{Workers: 2, Store: ds2})
	resp, raw := postJSON(t, ts2, "/v2/sweeps", sweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v2/sweeps: status %d body %s", resp.StatusCode, raw)
	}
	var again SweepStatus
	if err := json.Unmarshal(raw, &again); err != nil {
		t.Fatal(err)
	}
	if again.State != StateDone || again.Done != again.Total {
		t.Fatalf("restarted server did not serve the sweep from the durable store: %d/%d (state %s)",
			again.Done, again.Total, again.State)
	}
	for _, cell := range again.Cells {
		if !cell.Cached {
			t.Fatalf("cell %s not served from the durable store", cell.Fingerprint[:12])
		}
	}
}
