package service

import (
	"net/http"
	"strconv"
	"time"

	"dwarn/internal/obs"
)

// The service's observability: every request passes through obsHandler
// (latency/status by route, request-ID access log), and GET /metrics
// serves the server's registry — HTTP series, job/sweep/cache gauges,
// and the shared executor's counters — merged with obs.Default, where
// the simulation engine records its end-of-run snapshots. One scrape
// therefore sees the whole stack: HTTP → queue → executor → engine.

// registerGauges binds the server's live state into its registry as
// func-backed series, sampled at scrape time.
func (s *Server) registerGauges() {
	r := s.reg
	r.GaugeFunc("dwarn_jobs_queue_depth", "Jobs waiting in the FIFO queue.",
		func() float64 { return float64(s.mgr.QueueLen()) })
	r.Gauge("dwarn_jobs_queue_capacity", "Capacity of the FIFO job queue.").Set(float64(s.opts.QueueDepth))
	for _, state := range []string{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		state := state
		r.GaugeFunc("dwarn_jobs", "Retained job records by state.",
			func() float64 { return float64(s.mgr.Counts()[state]) }, obs.L("state", state))
	}
	r.GaugeFunc("dwarn_sweeps_active", "Sweeps currently executing (admission is bounded by max_active_sweeps).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := 0
			for _, sw := range s.sweeps {
				if !sw.terminal() {
					n++
				}
			}
			return float64(n)
		})
	r.Gauge("dwarn_sweeps_active_max", "Admission bound on concurrently executing sweeps.").Set(float64(s.opts.MaxActiveSweeps))
	r.GaugeFunc("dwarn_sse_subscribers", "Open sweep SSE event streams.",
		func() float64 { return float64(s.sseSubs.Load()) })
	r.GaugeFunc("dwarn_cache_entries", "Entries in the content-addressed result cache.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	r.CounterFunc("dwarn_cache_hits_total", "Result-cache hits (byte-level LRU shared by runs and sweep cells).",
		func() float64 { return float64(s.cache.Stats().Hits) })
	r.CounterFunc("dwarn_cache_misses_total", "Result-cache misses.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	r.GaugeFunc("dwarn_traces", "Uploaded uop traces held in memory.",
		func() float64 { return float64(s.traces.Len()) })

	// Admission-control outcomes (middleware.go).
	s.metAuthFail = r.Counter("dwarn_http_auth_failures_total", "Requests rejected 401 for a missing or invalid bearer token.")
	s.metRateLimited = r.Counter("dwarn_http_rate_limited_total", "Requests rejected 429 by the per-client rate limiter.")
	s.metShed = r.Counter("dwarn_http_load_shed_total", "Requests rejected 503 by saturation load shedding.")

	// Durable registry (journal.go), present only with -journal.
	if s.jrnl != nil {
		r.CounterFunc("dwarn_journal_appends_total", "Registry records durably appended since startup.",
			func() float64 { return float64(s.jrnl.Appends()) })
		r.Gauge("dwarn_journal_replayed_records", "Registry records replayed from the journal at startup.").Set(float64(s.jrnl.Replayed()))
		torn := 0.0
		if s.jrnl.Torn() {
			torn = 1
		}
		r.Gauge("dwarn_journal_torn_tail", "1 when startup replay found and truncated a torn journal tail.").Set(torn)
	}
}

// statusWriter captures the response code for metrics and access logs.
// It forwards Flush so the SSE stream keeps working behind the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush implements http.Flusher when the underlying writer does.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestID picks the request's trace ID: a sane inbound X-Request-ID
// (callers correlating across services supply their own), else a fresh
// sequence ID. Sane means short and printable-ASCII with no spaces —
// anything else would pollute log lines and response headers.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" && len(id) <= 64 && saneID(id) {
		return id
	}
	return "r" + strconv.FormatUint(s.reqSeq.Add(1), 10)
}

func saneID(id string) bool {
	for i := 0; i < len(id); i++ {
		if c := id[i]; c <= ' ' || c > '~' {
			return false
		}
	}
	return true
}

// obsHandler wraps the mux with per-request metrics and structured
// access logs. The route label is the mux's registered pattern (bounded
// cardinality), never the raw URL. The request ID doubles as the trace
// ID: it rides the request context (with the server's logger) into
// handlers, job closures, exec cells, and ultimately the sim run — one
// ID from HTTP accept to cycle loop.
func (s *Server) obsHandler() http.Handler {
	const reqHelp = "HTTP requests by route pattern and status code."
	const latHelp = "HTTP request latency by route pattern."
	inner := s.admitHandler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, route := s.mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		id := s.requestID(r)
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(obs.WithLogger(obs.WithTrace(r.Context(), id), s.log))
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		inner.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		code := strconv.Itoa(sw.code)
		s.reg.Counter("dwarn_http_requests_total", reqHelp, obs.L("route", route), obs.L("code", code)).Inc()
		s.reg.Histogram("dwarn_http_request_seconds", latHelp, obs.DefBuckets, obs.L("route", route)).Observe(elapsed.Seconds())
		s.log.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"code", sw.code,
			"dur", elapsed.Round(time.Microsecond),
			"remote", r.RemoteAddr,
		)
	})
}

// handleMetrics serves the Prometheus text exposition: the server's own
// registry first, then obs.Default (the engine's run snapshots and any
// process-wide series). The two registries use disjoint name sets by
// convention, so the merge is concatenation.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
	if s.reg != obs.Default {
		_ = obs.Default.WritePrometheus(w)
	}
}

// MetricsHandler exposes the merged /metrics endpoint as a standalone
// handler for the admin mux (cmd/dwarnd -admin).
func (s *Server) MetricsHandler() http.Handler { return http.HandlerFunc(s.handleMetrics) }

// Registry returns the server's metrics registry (tests read counters
// through it; the dwarnd main wires it nowhere else).
func (s *Server) Registry() *obs.Registry { return s.reg }
