// Package service exposes the simulator as a long-lived HTTP service:
// REST endpoints over a bounded worker pool with a FIFO job queue,
// per-job cancellation, and a content-addressed LRU result cache keyed
// by sim.Fingerprint so identical requests — including the solo-IPC
// baselines behind every Hmean/weighted-speedup computation — are paid
// for once across requests. See DESIGN.md §dwarnd for the architecture.
package service

import (
	"fmt"
	"strings"
	"time"

	"dwarn/internal/config"
	"dwarn/internal/core"
	"dwarn/internal/sim"
	"dwarn/internal/stats"
	"dwarn/internal/workload"
)

// SimulationRequest is the body of POST /v1/simulations: one machine ×
// policy × workload run. Zero-valued protocol fields take the sim
// package defaults, so the empty request minus Policy/Workload is valid.
type SimulationRequest struct {
	// Machine names a configuration: "baseline" (default), "small", "deep".
	Machine string `json:"machine,omitempty"`
	// Policy is a fetch policy registry name ("dwarn", "icount", ...).
	Policy string `json:"policy"`
	// Workload names a Table 2(b) workload ("4-MIX"). Exactly one of
	// Workload and Benchmarks must be set.
	Workload string `json:"workload,omitempty"`
	// Benchmarks builds a custom workload from benchmark names instead.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Trace replays an uploaded uop trace (POST /v1/traces) instead of
	// running synthetic generators: its value is the trace id (content
	// digest, or an unambiguous prefix of at least 8 characters).
	// Mutually exclusive with Workload and Benchmarks.
	Trace string `json:"trace,omitempty"`
	// Seed drives all synthetic randomness (0 = the default seed).
	Seed uint64 `json:"seed,omitempty"`
	// WarmupCycles and MeasureCycles control the protocol (0 = defaults).
	WarmupCycles  int64 `json:"warmup_cycles,omitempty"`
	MeasureCycles int64 `json:"measure_cycles,omitempty"`
	// Baselines additionally runs each benchmark solo under ICOUNT (each
	// a cache entry of its own) and reports relative-IPC metrics.
	Baselines bool `json:"baselines,omitempty"`
}

// SimulationResult is the payload of a finished simulation job. Repeat
// submissions of an identical request are served byte-for-byte from the
// result cache.
type SimulationResult struct {
	// Fingerprint is the content-addressed identity of the run.
	Fingerprint string `json:"fingerprint"`
	// Result is the simulator's full measurement record.
	Result *sim.Result `json:"result"`
	// Summary holds relative-IPC metrics; only with Baselines.
	Summary *stats.Summary `json:"summary,omitempty"`
}

// SweepRequest is the body of POST /v1/sweeps: the cross product of
// machines × policies × workloads fans out into one job per cell.
type SweepRequest struct {
	// Machines defaults to ["baseline"].
	Machines []string `json:"machines,omitempty"`
	// Policies defaults to the six paper policies.
	Policies []string `json:"policies,omitempty"`
	// Workloads names Table 2(b) workloads; required unless Trace is
	// set.
	Workloads []string `json:"workloads,omitempty"`
	// Trace sweeps policies over one uploaded trace instead of
	// synthetic workloads (the byte-exact cross-policy comparison
	// traces exist for). Mutually exclusive with Workloads.
	Trace string `json:"trace,omitempty"`
	// Seed, WarmupCycles, MeasureCycles as in SimulationRequest.
	Seed          uint64 `json:"seed,omitempty"`
	WarmupCycles  int64  `json:"warmup_cycles,omitempty"`
	MeasureCycles int64  `json:"measure_cycles,omitempty"`
	// Baselines adds relative-IPC metrics to every cell.
	Baselines bool `json:"baselines,omitempty"`
}

// SweepCell is one grid point of a sweep's status.
type SweepCell struct {
	Machine  string `json:"machine"`
	Policy   string `json:"policy"`
	Workload string `json:"workload,omitempty"`
	Trace    string `json:"trace,omitempty"`
	// JobID is the cell's simulation job; poll it for the full result.
	JobID string `json:"job_id"`
	State string `json:"state"`
	// Throughput is filled in once the cell is done.
	Throughput *float64 `json:"throughput,omitempty"`
	// Hmean and WeightedSpeedup are filled in for Baselines sweeps.
	Hmean           *float64 `json:"hmean,omitempty"`
	WeightedSpeedup *float64 `json:"weighted_speedup,omitempty"`
	Error           string   `json:"error,omitempty"`
}

// SweepStatus is the response for GET /v1/sweeps/{id}.
type SweepStatus struct {
	ID          string    `json:"id"`
	State       string    `json:"state"` // running | done | failed | canceled
	SubmittedAt time.Time `json:"submitted_at"`
	Total       int       `json:"total"`
	Done        int       `json:"done"`
	Failed      int       `json:"failed"`
	Canceled    int       `json:"canceled"`
	// Error is set when the fan-out itself aborted (e.g. queue full);
	// cells never submitted report state "unsubmitted".
	Error string      `json:"error,omitempty"`
	Cells []SweepCell `json:"cells"`
}

// maxNameLen bounds request-supplied names so hostile payloads cannot
// bloat job records or cache keys.
const maxNameLen = 128

// resolve validates a SimulationRequest against the registries (and,
// for trace-driven requests, the trace store) and converts it to
// sim.Options. maxCycles bounds the requested run lengths (0 =
// unbounded).
func (req *SimulationRequest) resolve(maxCycles int64, traces *TraceStore) (sim.Options, error) {
	var opts sim.Options

	cfg, err := config.ByName(req.Machine)
	if err != nil {
		return opts, err
	}

	if req.Policy == "" {
		return opts, fmt.Errorf("service: request needs a policy (known: %v)", core.Policies())
	}
	if _, err := core.NewPolicy(req.Policy); err != nil {
		return opts, err
	}

	set := 0
	for _, ok := range []bool{req.Workload != "", len(req.Benchmarks) > 0, req.Trace != ""} {
		if ok {
			set++
		}
	}
	if set > 1 {
		return opts, fmt.Errorf("service: set exactly one of workload, benchmarks, trace")
	}

	if req.Trace != "" {
		if len(req.Trace) > maxNameLen {
			return opts, fmt.Errorf("service: name too long")
		}
		if req.Baselines {
			// Relative-IPC baselines re-run each benchmark solo through
			// the synthetic generators, which a trace run replaces.
			return opts, fmt.Errorf("service: baselines are not supported for trace runs")
		}
		tr, err := traces.Get(req.Trace)
		if err != nil {
			return opts, err
		}
		if len(tr.Threads) > cfg.HardwareContexts {
			return opts, fmt.Errorf("service: trace has %d threads but the %s machine has %d hardware contexts",
				len(tr.Threads), cfg.Name, cfg.HardwareContexts)
		}
		if err := checkCycles(req.WarmupCycles, req.MeasureCycles, maxCycles); err != nil {
			return opts, err
		}
		if len(req.Machine) > maxNameLen || len(req.Policy) > maxNameLen {
			return opts, fmt.Errorf("service: name too long")
		}
		return sim.Options{
			Config:        cfg,
			Policy:        req.Policy,
			Trace:         tr,
			Seed:          req.Seed,
			WarmupCycles:  req.WarmupCycles,
			MeasureCycles: req.MeasureCycles,
		}, nil
	}

	var wl workload.Workload
	switch {
	case req.Workload != "":
		wl, err = workload.GetWorkload(req.Workload)
		if err != nil {
			return opts, err
		}
	case len(req.Benchmarks) > 0:
		if len(req.Benchmarks) > cfg.HardwareContexts {
			return opts, fmt.Errorf("service: %d benchmarks exceed the %s machine's %d hardware contexts",
				len(req.Benchmarks), cfg.Name, cfg.HardwareContexts)
		}
		// The name encodes the content so the fingerprint of a custom
		// workload is stable across requests.
		wl, err = workload.Custom("custom:"+strings.Join(req.Benchmarks, "+"), req.Benchmarks)
		if err != nil {
			return opts, err
		}
	default:
		return opts, fmt.Errorf("service: request needs a workload or benchmarks")
	}
	if wl.Threads > cfg.HardwareContexts {
		return opts, fmt.Errorf("service: workload %s needs %d contexts but the %s machine has %d",
			wl.Name, wl.Threads, cfg.Name, cfg.HardwareContexts)
	}

	if err := checkCycles(req.WarmupCycles, req.MeasureCycles, maxCycles); err != nil {
		return opts, err
	}
	if len(req.Machine) > maxNameLen || len(req.Policy) > maxNameLen || len(req.Workload) > maxNameLen {
		return opts, fmt.Errorf("service: name too long")
	}

	return sim.Options{
		Config:        cfg,
		Policy:        req.Policy,
		Workload:      wl,
		Seed:          req.Seed,
		WarmupCycles:  req.WarmupCycles,
		MeasureCycles: req.MeasureCycles,
	}, nil
}

// checkCycles validates requested run lengths against the per-run cap.
func checkCycles(warmup, measure, maxCycles int64) error {
	if warmup < 0 || measure < 0 {
		return fmt.Errorf("service: cycle counts must be non-negative")
	}
	if maxCycles > 0 && (warmup > maxCycles || measure > maxCycles) {
		return fmt.Errorf("service: cycle counts capped at %d per run", maxCycles)
	}
	return nil
}

// cells expands a SweepRequest into per-cell SimulationRequests,
// validating every cell before any job is created. A trace sweep fans
// out machines × policies over the one uploaded trace; a workload
// sweep adds the workload axis.
func (req *SweepRequest) cells(maxCycles int64, traces *TraceStore) ([]SimulationRequest, error) {
	machines := req.Machines
	if len(machines) == 0 {
		machines = []string{"baseline"}
	}
	policies := req.Policies
	if len(policies) == 0 {
		policies = core.PaperPolicies()
	}
	switch {
	case req.Trace != "" && len(req.Workloads) > 0:
		return nil, fmt.Errorf("service: set workloads or trace, not both")
	case req.Trace == "" && len(req.Workloads) == 0:
		return nil, fmt.Errorf("service: sweep needs at least one workload or a trace")
	}
	workloads := req.Workloads
	if req.Trace != "" {
		workloads = []string{""} // one cell per machine × policy
	}

	out := make([]SimulationRequest, 0, len(machines)*len(policies)*len(workloads))
	for _, m := range machines {
		if m == "" {
			m = "baseline"
		}
		for _, p := range policies {
			for _, w := range workloads {
				cell := SimulationRequest{
					Machine:       m,
					Policy:        p,
					Workload:      w,
					Trace:         req.Trace,
					Seed:          req.Seed,
					WarmupCycles:  req.WarmupCycles,
					MeasureCycles: req.MeasureCycles,
					Baselines:     req.Baselines,
				}
				target := w
				if cell.Trace != "" {
					target = "trace:" + cell.Trace
				}
				if _, err := cell.resolve(maxCycles, traces); err != nil {
					return nil, fmt.Errorf("sweep cell %s/%s/%s: %w", m, p, target, err)
				}
				out = append(out, cell)
			}
		}
	}
	return out, nil
}
