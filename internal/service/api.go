// Package service exposes the simulator as a long-lived HTTP service.
// Single runs queue as jobs over a bounded worker pool with per-job
// cancellation; sweeps fan their cells into the shared execution layer
// (internal/exec) — one server-wide bounded pool with per-sweep
// cancellation, partial progress, an SSE completion stream, and
// per-cell error isolation. Both paths memoise through one
// content-addressed LRU result cache keyed by the spec fingerprint, so
// identical requests — including the solo-IPC baselines behind every
// Hmean/weighted-speedup computation — are paid for once across
// requests, sweeps, and API versions. The /v2 endpoints speak
// internal/spec natively; the /v1 handlers are thin adapters that
// translate their request shapes into the same RunSpecs, so a v1
// request and its v2 spelling share one cache entry. See DESIGN.md
// §dwarnd for the architecture.
package service

import (
	"fmt"
	"time"

	"dwarn/internal/sim"
	"dwarn/internal/spec"
	"dwarn/internal/stats"
	"dwarn/internal/timeline"
)

// SimulationRequest is the body of POST /v1/simulations: one machine ×
// policy × workload run. Zero-valued protocol fields take the sim
// package defaults, so the empty request minus Policy/Workload is
// valid. Internally it is an adapter: Spec() translates it to the
// canonical spec.RunSpec every run is keyed by.
type SimulationRequest struct {
	// Machine names a configuration: "baseline" (default), "small", "deep".
	Machine string `json:"machine,omitempty"`
	// Policy is a fetch policy registry name ("dwarn", "icount", ...).
	Policy string `json:"policy"`
	// Workload names a Table 2(b) workload ("4-MIX"). Exactly one of
	// Workload and Benchmarks must be set.
	Workload string `json:"workload,omitempty"`
	// Benchmarks builds a custom workload from benchmark names instead.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Trace replays an uploaded uop trace (POST /v1/traces) instead of
	// running synthetic generators: its value is the trace id (content
	// digest, or an unambiguous prefix of at least 8 characters).
	// Mutually exclusive with Workload and Benchmarks.
	Trace string `json:"trace,omitempty"`
	// Seed drives all synthetic randomness (0 = the default seed).
	Seed uint64 `json:"seed,omitempty"`
	// WarmupCycles and MeasureCycles control the protocol (0 = defaults).
	WarmupCycles  int64 `json:"warmup_cycles,omitempty"`
	MeasureCycles int64 `json:"measure_cycles,omitempty"`
	// Baselines additionally runs each benchmark solo under ICOUNT (each
	// a cache entry of its own) and reports relative-IPC metrics.
	Baselines bool `json:"baselines,omitempty"`
}

// Spec translates the v1 request into the canonical run spec. The
// translation is total; validation happens when the spec is resolved.
func (req *SimulationRequest) Spec() spec.RunSpec {
	var machine *spec.Machine
	if req.Machine != "" {
		machine = &spec.Machine{Name: req.Machine}
	}
	return spec.RunSpec{
		Machine: machine,
		Policy:  spec.Policy{Name: req.Policy},
		Workload: spec.Workload{
			Name:       req.Workload,
			Benchmarks: req.Benchmarks,
			Trace:      req.Trace,
		},
		Seed:          req.Seed,
		WarmupCycles:  req.WarmupCycles,
		MeasureCycles: req.MeasureCycles,
		Baselines:     req.Baselines,
	}
}

// SimulationResult is the payload of a finished simulation job. Repeat
// submissions of an identical request are served byte-for-byte from the
// result cache.
type SimulationResult struct {
	// Fingerprint is the content-addressed identity of the run.
	Fingerprint string `json:"fingerprint"`
	// Result is the simulator's full measurement record.
	Result *sim.Result `json:"result"`
	// Summary holds relative-IPC metrics; only with Baselines.
	Summary *stats.Summary `json:"summary,omitempty"`
}

// SweepRequest is the body of POST /v1/sweeps: the cross product of
// machines × policies × workloads fans out into one job per cell. Like
// SimulationRequest it is an adapter over the spec grid form.
type SweepRequest struct {
	// Machines defaults to ["baseline"].
	Machines []string `json:"machines,omitempty"`
	// Policies defaults to the six paper policies.
	Policies []string `json:"policies,omitempty"`
	// Workloads names Table 2(b) workloads; required unless Trace is
	// set.
	Workloads []string `json:"workloads,omitempty"`
	// Trace sweeps policies over one uploaded trace instead of
	// synthetic workloads (the byte-exact cross-policy comparison
	// traces exist for). Mutually exclusive with Workloads.
	Trace string `json:"trace,omitempty"`
	// Seed, WarmupCycles, MeasureCycles as in SimulationRequest.
	Seed          uint64 `json:"seed,omitempty"`
	WarmupCycles  int64  `json:"warmup_cycles,omitempty"`
	MeasureCycles int64  `json:"measure_cycles,omitempty"`
	// Baselines adds relative-IPC metrics to every cell.
	Baselines bool `json:"baselines,omitempty"`
}

// Spec translates the v1 sweep into the canonical grid form.
func (req *SweepRequest) Spec() (spec.SweepSpec, error) {
	switch {
	case req.Trace != "" && len(req.Workloads) > 0:
		return spec.SweepSpec{}, fmt.Errorf("service: set workloads or trace, not both")
	case req.Trace == "" && len(req.Workloads) == 0:
		return spec.SweepSpec{}, fmt.Errorf("service: sweep needs at least one workload or a trace")
	}

	var machines []spec.Machine
	for _, m := range req.Machines {
		machines = append(machines, spec.Machine{Name: m})
	}
	var policies []spec.PolicyAxis
	for _, p := range req.Policies {
		policies = append(policies, spec.PolicyAxis{Name: p})
	}
	var workloads []spec.Workload
	if req.Trace != "" {
		workloads = []spec.Workload{{Trace: req.Trace}}
	} else {
		for _, w := range req.Workloads {
			workloads = append(workloads, spec.Workload{Name: w})
		}
	}
	var seeds []uint64
	if req.Seed != 0 {
		seeds = []uint64{req.Seed}
	}
	return spec.SweepSpec{
		Machines:      machines,
		Policies:      policies,
		Workloads:     workloads,
		Seeds:         seeds,
		WarmupCycles:  req.WarmupCycles,
		MeasureCycles: req.MeasureCycles,
		Baselines:     req.Baselines,
	}, nil
}

// SweepCell is one grid point of a sweep's status. Cells execute
// through the shared execution layer (internal/exec), not the job
// queue: a cell has no job id, and one failing cell never aborts its
// siblings — its error is recorded here while the rest of the sweep
// completes.
type SweepCell struct {
	Machine  string `json:"machine"`
	Policy   string `json:"policy"`
	Workload string `json:"workload,omitempty"`
	Trace    string `json:"trace,omitempty"`
	// Seed is the cell's resolved seed (sweeps may replicate over seeds).
	Seed uint64 `json:"seed,omitempty"`
	// Fingerprint is the cell's content-addressed run identity; the
	// full result is available by submitting the same spec to /v2/runs
	// (served from the shared cache).
	Fingerprint string `json:"fingerprint,omitempty"`
	// State is queued, running, done, failed, or canceled.
	State string `json:"state"`
	// Cached reports the cell was served from the result store (an
	// earlier run, a concurrent sweep, or a duplicate cell in this one).
	Cached bool `json:"cached,omitempty"`
	// Throughput is filled in once the cell is done.
	Throughput *float64 `json:"throughput,omitempty"`
	// Hmean and WeightedSpeedup are filled in for Baselines sweeps once
	// the cell's solo baselines have completed.
	Hmean           *float64 `json:"hmean,omitempty"`
	WeightedSpeedup *float64 `json:"weighted_speedup,omitempty"`
	// Error is the cell's own failure; the sweep keeps going.
	Error string `json:"error,omitempty"`
}

// SweepStatus is the response for GET /v1/sweeps/{id} and /v2/sweeps/{id}.
type SweepStatus struct {
	ID          string    `json:"id"`
	State       string    `json:"state"` // running | done | failed | canceled
	SubmittedAt time.Time `json:"submitted_at"`
	// Recovered marks a sweep resumed from the journal after a restart;
	// already-stored cells completed from the store, the rest re-ran.
	Recovered bool `json:"recovered,omitempty"`
	Total     int  `json:"total"`
	Running   int  `json:"running,omitempty"`
	Done      int  `json:"done"`
	Failed    int  `json:"failed"`
	Canceled  int  `json:"canceled"`
	// Error reports a sweep-level failure (e.g. rejected at shutdown).
	Error string      `json:"error,omitempty"`
	Cells []SweepCell `json:"cells"`
}

// SweepEventFrame is the State of a live timeline interval event on the
// sweep SSE stream (sent as SSE event name "frame"); all other states
// are per-cell transitions (SSE event name "cell").
const SweepEventFrame = "frame"

// SweepEvent is one frame of the GET /v2/sweeps/{id}/events SSE stream:
// a per-cell state transition plus a progress snapshot, or — for cells
// whose spec requested timeline sampling — a live interval frame as it
// closes inside the running simulation. The stream replays a sweep's
// full event history from the start, then follows live until the sweep
// is terminal, where a final "end" event carries the finished
// SweepStatus.
type SweepEvent struct {
	// Seq numbers events from 0 within the sweep.
	Seq int `json:"seq"`
	// Index is the cell's position in SweepStatus.Cells.
	Index int `json:"index"`
	// Fingerprint and State identify the transition (exec cell states:
	// started, done, cached, failed, canceled — or "frame").
	Fingerprint string `json:"fingerprint"`
	State       string `json:"state"`
	// Throughput is set on done/cached transitions.
	Throughput *float64 `json:"throughput,omitempty"`
	Error      string   `json:"error,omitempty"`
	// Frame is the interval frame of a "frame" event.
	Frame *timeline.Frame `json:"frame,omitempty"`
	// Progress snapshot after this event.
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
	Total    int `json:"total"`
}

// checkCycles validates requested run lengths against the per-run cap.
func checkCycles(warmup, measure, maxCycles int64) error {
	if warmup < 0 || measure < 0 {
		return fmt.Errorf("service: cycle counts must be non-negative")
	}
	if maxCycles > 0 && (warmup > maxCycles || measure > maxCycles) {
		return fmt.Errorf("service: cycle counts capped at %d per run", maxCycles)
	}
	return nil
}
