package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"dwarn/internal/chaos"
	"dwarn/internal/exec"
	"dwarn/internal/journal"
	"dwarn/internal/obs"
	"dwarn/internal/sim"
	"dwarn/internal/spec"
	"dwarn/internal/stats"
	"dwarn/internal/timeline"
)

// Sweeps execute through the shared execution layer (internal/exec),
// not the job queue: every cell of every sweep fans into one bounded
// executor pool, memoised by the same cache-backed store /v1 and /v2
// run jobs are served from. A sweep is registered, prechecked against
// the store (cells already paid for complete at submission time), and
// its remaining cells run under a per-sweep context — DELETE cancels
// them cooperatively mid-simulation. Per-cell completions append to an
// event log that both the status endpoint (partial/progress results)
// and the SSE stream (GET /v2/sweeps/{id}/events) are views of. One
// failing cell records its error in its slot; the sweep keeps going.

// ErrTooManySweeps reports sweep admission hitting MaxActiveSweeps;
// the HTTP layer maps it to a 503, like a full job queue.
var ErrTooManySweeps = errors.New("service: too many active sweeps")

// errJournal reports a failed durable append at sweep admission. The
// submission is refused (500): admitting work the journal cannot
// remember would silently reintroduce the forget-on-restart bug the
// journal exists to fix.
var errJournal = errors.New("service: journal write failed")

// cacheStore adapts the service's byte-level LRU result cache onto the
// execution layer's Store interface. Entries are the exact marshaled
// SimulationResult payloads the run endpoints serve, so a sweep cell
// and a single-run request for the same spec share one cache entry in
// both directions.
type cacheStore struct{ c *Cache }

// Get implements exec.Store.
func (cs cacheStore) Get(fp string) (*sim.Result, bool) {
	raw, ok := cs.c.Peek(simKey(fp))
	if !ok {
		return nil, false
	}
	sr, err := decodeSim(raw)
	if err != nil {
		return nil, false
	}
	return sr.Result, true
}

// Put implements exec.Store.
func (cs cacheStore) Put(fp string, res *sim.Result) {
	raw, err := json.Marshal(&SimulationResult{Fingerprint: fp, Result: res})
	if err != nil {
		return
	}
	cs.c.Put(simKey(fp), raw)
}

// sweepCell is one resolved grid point: the canonical spec to run plus
// the static display identity shown in status responses.
type sweepCell struct {
	resolved *spec.Resolved
	view     SweepCell // identity fields only; progress is tracked per cell
}

// cellProgress is one public cell's mutable state, guarded by the
// server mutex.
type cellProgress struct {
	state      string // StateQueued/StateRunning/StateDone/StateFailed/StateCanceled
	cached     bool
	err        string
	throughput *float64
	hmean      *float64
	wspeedup   *float64
}

// sweep tracks one sweep's execution. cells are the public grid points;
// solos are the hidden solo-ICOUNT baseline cells a Baselines sweep
// additionally executes (through the same store, so they are shared
// with every other consumer needing the same denominator).
type sweep struct {
	id          string
	submittedAt time.Time
	cells       []sweepCell
	solos       []sweepCell
	soloFor     []map[string]string // per public cell: benchmark → solo fingerprint

	progress    []cellProgress
	events      []SweepEvent
	frameEvents int             // timeline frame events retained so far
	waiters     []chan struct{} // SSE streams blocked until the next event
	state       string          // StateRunning until terminal
	recovered   bool            // resumed from the journal after a restart
	cancel      context.CancelFunc
}

// terminal reports whether the sweep has finished (all cells terminal
// and summaries filled).
func (sw *sweep) terminal() bool { return sw.state != StateRunning }

// soloBaselines resolves the hidden solo cells a baselines cell needs:
// each distinct benchmark solo under ICOUNT at the cell's own machine,
// seed, and protocol — the canonical baseline identity every other
// consumer shares.
func soloBaselines(res *spec.Resolved) (map[string]string, []sweepCell, error) {
	if !res.Spec.Baselines || res.Options.Trace != nil {
		return nil, nil, nil
	}
	solos := map[string]string{}
	var cells []sweepCell
	for _, b := range res.Options.Workload.Benchmarks {
		if _, ok := solos[b]; ok {
			continue
		}
		soloSpec := spec.SoloBaseline(res.Spec, b)
		sr, err := soloSpec.Resolve(nil)
		if err != nil {
			return nil, nil, err
		}
		solos[b] = sr.Fingerprint
		cells = append(cells, sweepCell{resolved: sr, view: cellIdentity(sr)})
	}
	return solos, cells, nil
}

// maxSweepFrameEvents bounds the timeline frame events one sweep's
// event log retains: frames are a live-streaming convenience (the full
// timeline stays available per run), so past the bound further frames
// are dropped rather than growing a long sweep's record unboundedly.
const maxSweepFrameEvents = 4096

// frameSink receives one live interval frame from a cell identified by
// its fingerprint. Attached to a sweep's execution context, read by the
// server's exec RunFunc.
type frameSink func(fp string, f *timeline.Frame)

type frameSinkKey struct{}

func withFrameSink(ctx context.Context, fn frameSink) context.Context {
	return context.WithValue(ctx, frameSinkKey{}, fn)
}

func frameSinkFrom(ctx context.Context) frameSink {
	fn, _ := ctx.Value(frameSinkKey{}).(frameSink)
	return fn
}

// sweepFrameSink folds live interval frames into the sweep's event log
// as "frame" events, waking SSE streams. The frame's Threads slice is
// the sampler's ring storage, reused after the ring wraps — it is
// deep-copied before the event escapes the callback.
func (s *Server) sweepFrameSink(sw *sweep, fpIndex map[string]int) frameSink {
	return func(fp string, f *timeline.Frame) {
		idx, ok := fpIndex[fp]
		if !ok {
			return // hidden solo baseline cell
		}
		cp := *f
		cp.Threads = append([]timeline.ThreadFrame(nil), f.Threads...)
		s.mu.Lock()
		defer s.mu.Unlock()
		if sw.frameEvents >= maxSweepFrameEvents {
			return
		}
		sw.frameEvents++
		sw.events = append(sw.events, SweepEvent{
			Seq:         len(sw.events),
			Index:       idx,
			Fingerprint: fp,
			State:       SweepEventFrame,
			Frame:       &cp,
			Total:       len(sw.cells),
		})
		s.wakeSweepLocked(sw)
	}
}

// submitSweep runs the HTTP side of sweep admission: startSweep does
// the work, and failures map to statuses here — saturation and
// shutdown to 503, a failed durable append to 500, anything else
// (solo-baseline resolution) to 400.
func (s *Server) submitSweep(w http.ResponseWriter, r *http.Request, cells []sweepCell) {
	st, err := s.startSweep(sweepStart{cells: cells, trace: obs.TraceID(r.Context())})
	if err != nil {
		switch {
		case errors.Is(err, ErrShuttingDown), errors.Is(err, ErrTooManySweeps):
			submitError(w, err)
		case errors.Is(err, errJournal):
			writeError(w, http.StatusInternalServerError, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// sweepStart parameterises startSweep for its two callers: HTTP
// submission (fresh id, journaled, admission-bounded) and journal
// recovery (preassigned id, already journaled, bypasses the bound).
type sweepStart struct {
	cells       []sweepCell
	trace       string
	id          string    // preassigned id (recovery); "" allocates
	recovered   bool      // resumed from the journal: skip admission + submit record
	submittedAt time.Time // original submit time (recovery); zero = now
}

// startSweep registers resolved cells, durably journals the admission,
// completes what the store already holds, and fans the remainder into
// the shared executor. The submit trace ID is re-attached to the
// sweep's own (server-lifetime) execution context, so every cell the
// sweep pays for — and the sim runs underneath — logs under it.
func (s *Server) startSweep(p sweepStart) (*SweepStatus, error) {
	cells, trace := p.cells, p.trace
	// Resolve the hidden baseline cells before taking any locks.
	soloFor := make([]map[string]string, len(cells))
	var solos []sweepCell
	seenSolo := map[string]bool{}
	for i, c := range cells {
		m, sc, err := soloBaselines(c.resolved)
		if err != nil {
			return nil, err
		}
		soloFor[i] = m
		for _, cell := range sc {
			if !seenSolo[cell.resolved.Fingerprint] {
				seenSolo[cell.resolved.Fingerprint] = true
				solos = append(solos, cell)
			}
		}
	}

	// Precheck every cell (public and solo) against the store: cells an
	// earlier run, another sweep, or a duplicate already paid for are
	// done at submission time, which is also what lets a re-submitted
	// sweep resume exactly where a cancelled or failed one stopped.
	all := append(append([]sweepCell(nil), cells...), solos...)
	resByFp := make(map[string]*sim.Result)
	hit := make([]bool, len(all))
	for i, c := range all {
		if res, ok := s.exec.Store().Get(c.resolved.Fingerprint); ok {
			hit[i] = true
			resByFp[c.resolved.Fingerprint] = res
		}
	}

	ctx, cancel := context.WithCancel(s.sweepCtx)
	sw := &sweep{
		submittedAt: p.submittedAt,
		cells:       cells,
		solos:       solos,
		soloFor:     soloFor,
		progress:    make([]cellProgress, len(cells)),
		state:       StateRunning,
		recovered:   p.recovered,
		cancel:      cancel,
	}
	if sw.submittedAt.IsZero() {
		sw.submittedAt = time.Now()
	}

	// The cells the executor still has to pay for, with their index in
	// the combined cell list so events map back.
	var pending []*spec.Resolved
	var pendingIdx []int
	for i, c := range all {
		if !hit[i] {
			pending = append(pending, c.resolved)
			pendingIdx = append(pendingIdx, i)
		}
	}

	s.mu.Lock()
	if s.sweepClosed {
		s.mu.Unlock()
		cancel()
		return nil, ErrShuttingDown
	}
	// Admission control: sweeps bypass the job queue, so they need
	// their own fast-fail bound — without it a submit loop would pile
	// up unbounded live sweeps (each with one blocked goroutine per
	// pending cell). Fully-cached submissions are terminal on arrival
	// and don't count against the cap. Recovery bypasses the bound:
	// this work was already admitted (and journaled) before the
	// restart, so refusing it now would wedge it forever.
	if len(pending) > 0 && !p.recovered {
		if s.activeSweepsLocked() >= s.opts.MaxActiveSweeps {
			s.mu.Unlock()
			cancel()
			return nil, fmt.Errorf("%w (max %d)", ErrTooManySweeps, s.opts.MaxActiveSweeps)
		}
	}
	if p.id != "" {
		if _, ok := s.sweeps[p.id]; ok {
			s.mu.Unlock()
			cancel()
			return nil, fmt.Errorf("service: sweep %q already registered", p.id)
		}
		sw.id = p.id
		if n := trailingSeq(p.id); n > s.sweepSeq {
			s.sweepSeq = n
		}
	} else {
		s.sweepSeq++
		sw.id = fmt.Sprintf("sweep-%06d", s.sweepSeq)
	}
	s.sweeps[sw.id] = sw
	s.sweepOrder = append(s.sweepOrder, sw.id)
	s.pruneSweepsLocked()
	for i := range sw.progress {
		sw.progress[i].state = StateQueued
	}
	for i, c := range all {
		if hit[i] {
			s.cellEventLocked(sw, i, exec.Event{
				Fingerprint: c.resolved.Fingerprint,
				State:       exec.CellCached,
				Result:      resByFp[c.resolved.Fingerprint],
			})
		}
	}
	if len(pending) == 0 {
		s.finishSweepLocked(sw, resByFp, nil)
		st := s.sweepStatusLocked(sw)
		state := sw.state
		s.mu.Unlock()
		// Terminal on arrival: release the per-sweep context now, or it
		// would stay registered on the server-lifetime parent forever
		// (DELETE refuses terminal sweeps, so nothing else frees it).
		cancel()
		// A fresh fully-cached sweep journals nothing (no durable state
		// to resume); a recovered one must write its terminal record, or
		// every restart would re-resume it.
		if p.recovered {
			s.journalFinish(sw.id, state, "")
		}
		s.log.Info("sweep cached", "trace", trace, "sweep", sw.id, "cells", len(cells), "solos", len(solos))
		return st, nil
	}

	// Durability point: the submit record must be on stable storage
	// before any cell executes, so a crash from here on recovers the
	// sweep instead of forgetting it. One fsync under the server mutex
	// at admission time — cell completions sync outside it. A recovered
	// sweep's record already survives in the journal.
	if !p.recovered && s.jrnl != nil {
		specs := make([]spec.RunSpec, len(cells))
		for i, c := range cells {
			specs[i] = c.resolved.Spec
		}
		rec := journal.Record{
			Type: journal.TypeSubmit, ID: sw.id, Kind: journal.KindSweep,
			Time: sw.submittedAt, Cells: specs,
		}
		if err := s.journalAppend(rec); err != nil {
			delete(s.sweeps, sw.id)
			s.sweepOrder = s.sweepOrder[:len(s.sweepOrder)-1]
			s.mu.Unlock()
			cancel()
			return nil, fmt.Errorf("%w: %v", errJournal, err)
		}
	}
	// Chaos point for the crash drills: a process exit injected here
	// dies with the sweep journaled but not yet executing — exactly the
	// window restart recovery must cover.
	_ = chaos.Fire("sweep.journal.appended", sw.id)

	s.sweepWG.Add(1)
	st := s.sweepStatusLocked(sw)
	s.mu.Unlock()
	s.log.Info("sweep submitted", "trace", trace, "sweep", sw.id,
		"cells", len(cells), "solos", len(solos), "pending", len(pending), "recovered", p.recovered)

	// First public cell per fingerprint, for routing live frames back to
	// a cell index (duplicate cells share one simulation anyway).
	fpIndex := make(map[string]int, len(cells))
	for i, c := range cells {
		if _, ok := fpIndex[c.resolved.Fingerprint]; !ok {
			fpIndex[c.resolved.Fingerprint] = i
		}
	}
	// The sweep context derives from the server lifetime, not the
	// submitting request (the sweep outlives the HTTP exchange) — so the
	// request's trace, the server's logger, and the frame sink are
	// re-attached here explicitly.
	runCtx := withFrameSink(obs.WithLogger(obs.WithTrace(ctx, trace), s.log), s.sweepFrameSink(sw, fpIndex))

	go func() {
		defer s.sweepWG.Done()
		defer cancel()
		start := time.Now()
		results := s.exec.Execute(runCtx, pending, func(ev exec.Event) {
			// Durable progress first, outside the server mutex (the
			// append fsyncs): a public cell completion on record means a
			// restart re-resolves it straight from the store precheck.
			if idx := pendingIdx[ev.Index]; idx < len(sw.cells) &&
				(ev.State == exec.CellDone || ev.State == exec.CellCached) {
				if err := s.journalAppend(journal.Record{Type: journal.TypeCell, ID: sw.id, Fingerprint: ev.Fingerprint}); err != nil {
					s.log.Warn("journal cell append failed", "sweep", sw.id, "err", err)
				}
			}
			s.mu.Lock()
			s.cellEventLocked(sw, pendingIdx[ev.Index], ev)
			s.mu.Unlock()
		})
		errByFp := map[string]error{}
		for _, r := range results {
			if r.Result != nil {
				resByFp[r.Fingerprint] = r.Result
			} else if r.Err != nil {
				errByFp[r.Fingerprint] = r.Err
			}
		}
		s.mu.Lock()
		s.finishSweepLocked(sw, resByFp, errByFp)
		state := sw.state
		s.mu.Unlock()
		// Terminal record before sweepWG.Done: Shutdown's journal
		// compaction waits on the drain, so a shutdown-canceled sweep is
		// recorded canceled — never re-resumed on the next start.
		s.journalFinish(sw.id, state, "")
		s.log.Info("sweep finished", "trace", trace, "sweep", sw.id, "state", state,
			"cells", len(cells), "dur", time.Since(start).Round(time.Millisecond))
	}()

	return st, nil
}

// journalFinish appends an entry's terminal record (no-op without a
// journal); failures are logged, not fatal — the worst case is a
// completed entry re-resumed on the next start, where the store
// precheck completes it instantly again.
func (s *Server) journalFinish(id, state, errMsg string) {
	rec := journal.Record{Type: journal.TypeFinish, ID: id, State: state, Error: errMsg}
	if err := s.journalAppend(rec); err != nil {
		s.log.Warn("journal finish append failed", "id", id, "err", err)
	}
}

// trailingSeq parses the numeric suffix of a "name-000042" style id (0
// when absent), used to advance id sequences past recovered entries.
func trailingSeq(id string) uint64 {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '-' {
			var n uint64
			for _, c := range id[i+1:] {
				if c < '0' || c > '9' {
					return 0
				}
				n = n*10 + uint64(c-'0')
			}
			return n
		}
	}
	return 0
}

// pruneSweepsLocked drops the oldest terminal sweep records beyond
// MaxSweepRecords; active sweeps are never pruned.
func (s *Server) pruneSweepsLocked() {
	excess := len(s.sweepOrder) - s.opts.MaxSweepRecords
	if excess <= 0 {
		return
	}
	kept := s.sweepOrder[:0]
	for _, id := range s.sweepOrder {
		if excess > 0 && s.sweeps[id].terminal() {
			delete(s.sweeps, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.sweepOrder = kept
}

// cellEventLocked folds one executor event into the sweep: public
// cells update their progress and append to the event log (waking SSE
// streams); solo baseline cells are internal and only feed summaries.
func (s *Server) cellEventLocked(sw *sweep, idx int, ev exec.Event) {
	if idx >= len(sw.cells) {
		return // hidden solo baseline cell
	}
	p := &sw.progress[idx]
	switch ev.State {
	case exec.CellStarted:
		p.state = StateRunning
	case exec.CellDone, exec.CellCached:
		p.state = StateDone
		p.cached = ev.State == exec.CellCached
		if ev.Result != nil {
			t := ev.Result.Throughput
			p.throughput = &t
		}
	case exec.CellFailed:
		p.state = StateFailed
		if ev.Err != nil {
			p.err = ev.Err.Error()
		}
	case exec.CellCanceled:
		p.state = StateCanceled
		p.err = "canceled"
	}

	e := SweepEvent{
		Seq:         len(sw.events),
		Index:       idx,
		Fingerprint: ev.Fingerprint,
		State:       ev.State,
		Throughput:  p.throughput,
		Error:       p.err,
		Total:       len(sw.cells),
	}
	if ev.State == exec.CellStarted {
		e.Throughput = nil
		e.Error = ""
	}
	for i := range sw.cells {
		switch sw.progress[i].state {
		case StateDone:
			e.Done++
		case StateFailed:
			e.Failed++
		case StateCanceled:
			e.Canceled++
		}
	}
	sw.events = append(sw.events, e)
	s.wakeSweepLocked(sw)
}

// wakeSweepLocked releases every SSE stream blocked on this sweep.
func (s *Server) wakeSweepLocked(sw *sweep) {
	for _, ch := range sw.waiters {
		close(ch)
	}
	sw.waiters = nil
}

// finishSweepLocked fills relative-IPC summaries for baselines cells
// and derives the sweep's terminal state. A baselines cell whose solo
// denominator failed or was cancelled is demoted from done to
// failed/canceled with the solo's error — the cell's requested metrics
// could not be computed, and reporting it done-without-summary would
// pass that off silently.
func (s *Server) finishSweepLocked(sw *sweep, resByFp map[string]*sim.Result, errByFp map[string]error) {
	for i := range sw.cells {
		p := &sw.progress[i]
		solos := sw.soloFor[i]
		if solos == nil || p.state != StateDone {
			continue
		}
		res := resByFp[sw.cells[i].resolved.Fingerprint]
		if res == nil {
			continue
		}
		solo := make([]float64, len(res.Threads))
		ok := true
		for j, th := range res.Threads {
			sr := resByFp[solos[th.Benchmark]]
			if sr == nil || len(sr.Threads) == 0 {
				ok = false
				if err := errByFp[solos[th.Benchmark]]; err != nil {
					if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
						p.state = StateCanceled
						p.err = fmt.Sprintf("solo baseline for %s canceled", th.Benchmark)
					} else {
						p.state = StateFailed
						p.err = fmt.Sprintf("solo baseline for %s failed: %v", th.Benchmark, err)
					}
				}
				break
			}
			solo[j] = sr.Threads[0].IPC
		}
		if !ok {
			continue
		}
		if summary, err := stats.Summarize(res.IPCs(), solo); err == nil {
			h, ws := summary.Hmean, summary.WeightedSpeedup
			p.hmean, p.wspeedup = &h, &ws
		}
	}

	var failed, canceled int
	for i := range sw.progress {
		switch sw.progress[i].state {
		case StateFailed:
			failed++
		case StateCanceled:
			canceled++
		}
	}
	switch {
	case failed > 0:
		sw.state = StateFailed
	case canceled > 0:
		sw.state = StateCanceled
	default:
		sw.state = StateDone
	}
	s.wakeSweepLocked(sw)
}

// sweepStatusLocked assembles the aggregate view of a sweep.
func (s *Server) sweepStatusLocked(sw *sweep) *SweepStatus {
	st := &SweepStatus{
		ID:          sw.id,
		State:       sw.state,
		SubmittedAt: sw.submittedAt,
		Recovered:   sw.recovered,
		Total:       len(sw.cells),
		Cells:       make([]SweepCell, 0, len(sw.cells)),
	}
	for i, c := range sw.cells {
		p := sw.progress[i]
		cell := c.view
		cell.State = p.state
		cell.Cached = p.cached
		cell.Error = p.err
		cell.Throughput = p.throughput
		cell.Hmean = p.hmean
		cell.WeightedSpeedup = p.wspeedup
		switch p.state {
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCanceled:
			st.Canceled++
		}
		st.Cells = append(st.Cells, cell)
	}
	return st
}

// lookupSweep returns a sweep by id.
func (s *Server) lookupSweep(id string) (*sweep, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

func (s *Server) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookupSweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no sweep %q", r.PathValue("id")))
		return
	}
	s.mu.Lock()
	st := s.sweepStatusLocked(sw)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleCancelSweep cancels a running sweep: cells already finished
// keep their results, running cells stop at their next cooperative
// check, queued cells never start.
func (s *Server) handleCancelSweep(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookupSweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no sweep %q", r.PathValue("id")))
		return
	}
	s.mu.Lock()
	terminal := sw.terminal()
	s.mu.Unlock()
	if terminal {
		writeError(w, http.StatusConflict, fmt.Errorf("service: sweep %q already finished", sw.id))
		return
	}
	// The cancel record makes the request itself durable: if the
	// process dies before the cells observe their context, the next
	// start treats the sweep as terminal instead of re-resuming work
	// the client asked to stop.
	if err := s.journalAppend(journal.Record{Type: journal.TypeCancel, ID: sw.id}); err != nil {
		s.log.Warn("journal cancel append failed", "sweep", sw.id, "err", err)
	}
	sw.cancel()
	s.mu.Lock()
	st := s.sweepStatusLocked(sw)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleSweepEvents streams a sweep's per-cell progress as Server-Sent
// Events: the full event history replays first ("cell" events), then
// the stream follows live completions, and a final "end" event carries
// the terminal SweepStatus before the stream closes. Consuming the
// stream to completion is therefore equivalent to polling the status
// endpoint until terminal, without the polling.
func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.lookupSweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no sweep %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("service: streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	s.sseSubs.Add(1)
	defer s.sseSubs.Add(-1)

	next := 0
	for {
		s.mu.Lock()
		pending := sw.events[next:]
		terminal := sw.terminal()
		var wait chan struct{}
		if len(pending) == 0 && !terminal {
			wait = make(chan struct{})
			sw.waiters = append(sw.waiters, wait)
		}
		var final *SweepStatus
		if len(pending) == 0 && terminal {
			final = s.sweepStatusLocked(sw)
		}
		s.mu.Unlock()

		for _, ev := range pending {
			name := "cell"
			if ev.State == SweepEventFrame {
				name = "frame"
			}
			if err := writeSSE(w, name, ev); err != nil {
				return
			}
			next++
		}
		if len(pending) > 0 {
			flusher.Flush()
			continue
		}
		if final != nil {
			if writeSSE(w, "end", final) == nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one named SSE frame with a JSON payload.
func writeSSE(w http.ResponseWriter, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}
