package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dwarn/internal/obs"
	"dwarn/internal/spec"
	"dwarn/internal/timeline"
)

// logBuffer collects log output under a mutex: the server logs from
// HTTP goroutines, job workers, and exec cells concurrently.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTraceIDPropagatesEndToEnd is the tracing acceptance test: the
// X-Request-ID presented at POST /v2/sweeps must surface verbatim in
// the service's own log lines, the exec worker's cell logs, and the
// sim run's log line — one trace id from HTTP accept to cycle loop.
func TestTraceIDPropagatesEndToEnd(t *testing.T) {
	var logs logBuffer
	_, ts := newTestServer(t, Options{
		Workers: 2,
		Logger:  obs.NewLogger(&logs, obs.LevelDebug),
	})

	const trace = "test-trace-1"
	body, err := json.Marshal(spec.SweepSpec{
		Policies:     []spec.PolicyAxis{{Name: "dwarn"}},
		Workloads:    []spec.Workload{{Name: "2-MIX"}},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v2/sweeps", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v2/sweeps: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != trace {
		t.Fatalf("response echoes request id %q, want %q", got, trace)
	}
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		var cur SweepStatus
		getJSON(t, ts, "/v2/sweeps/"+st.ID, &cur)
		if cur.State != "running" {
			if cur.State != "done" {
				t.Fatalf("sweep ended %q", cur.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep did not finish in time")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Each layer tags its lines with the same trace id. The obs logger
	// leaves simple tokens unquoted, so the markers are literal.
	got := logs.String()
	for layer, markers := range map[string][]string{
		"service (request log)":  {`msg=request`, `id=` + trace},
		"service (sweep submit)": {`msg="sweep submitted"`, `trace=` + trace},
		"exec (cell log)":        {`msg="cell start"`, `trace=` + trace},
		"sim (run log)":          {`msg="sim run"`, `trace=` + trace},
	} {
		found := false
		for _, line := range strings.Split(got, "\n") {
			ok := true
			for _, m := range markers {
				if !strings.Contains(line, m) {
					ok = false
					break
				}
			}
			if ok {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no log line carrying %v\nlogs:\n%s", layer, markers, got)
		}
	}
}

// TestV2RunTimeline: a spec that requests sampling gets its frames back
// from GET /v2/runs/{id}/timeline; a plain run 404s with an explanation.
func TestV2RunTimeline(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	withTL := submitV2Run(t, ts, spec.RunSpec{
		Policy:       spec.Policy{Name: "dwarn"},
		Workload:     spec.Workload{Name: "2-MIX"},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
		Timeline: &spec.TimelineSpec{IntervalCycles: 1000},
	})
	waitJob(t, ts, withTL.ID, StateDone)

	var out struct {
		ID          string             `json:"id"`
		Fingerprint string             `json:"fingerprint"`
		Timeline    *timeline.Timeline `json:"timeline"`
	}
	resp := getJSON(t, ts, "/v2/runs/"+withTL.ID+"/timeline", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline endpoint: status %d", resp.StatusCode)
	}
	if out.ID != withTL.ID || out.Fingerprint == "" {
		t.Errorf("timeline envelope %+v", out)
	}
	if out.Timeline == nil || len(out.Timeline.Frames) != int(testMeasure/1000) {
		t.Fatalf("timeline frames %+v, want %d", out.Timeline, testMeasure/1000)
	}
	if out.Timeline.IntervalCycles != 1000 {
		t.Errorf("interval %d, want 1000", out.Timeline.IntervalCycles)
	}

	// A run that never asked for sampling has no frames to serve.
	plain := submitV2Run(t, ts, spec.RunSpec{
		Policy:       spec.Policy{Name: "icount"},
		Workload:     spec.Workload{Name: "2-MIX"},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	})
	waitJob(t, ts, plain.ID, StateDone)
	if resp := getJSON(t, ts, "/v2/runs/"+plain.ID+"/timeline", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("plain run timeline: status %d, want 404", resp.StatusCode)
	}

	// Unfinished or unknown ids are distinguishable from frame-less runs.
	if resp := getJSON(t, ts, "/v2/runs/nonesuch/timeline", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown run timeline: status %d, want 404", resp.StatusCode)
	}
}

// TestV2SweepSSEFrames: a timeline-enabled sweep interleaves live
// "frame" events in its SSE stream as intervals close inside running
// cells, alongside the usual cell transitions and final end event.
func TestV2SweepSSEFrames(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	sweep := spec.SweepSpec{
		Policies:     []spec.PolicyAxis{{Name: "dwarn"}},
		Workloads:    []spec.Workload{{Name: "2-MIX"}},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
		Timeline: &spec.TimelineSpec{IntervalCycles: 1000},
	}
	resp, raw := postJSON(t, ts, "/v2/sweeps", sweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v2/sweeps: status %d body %s", resp.StatusCode, raw)
	}
	var st SweepStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}

	es, err := http.Get(ts.URL + "/v2/sweeps/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()

	var frames []SweepEvent
	var ended bool
	var event string
	sc := bufio.NewScanner(es.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "frame":
				var ev SweepEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad frame event %q: %v", data, err)
				}
				if ev.State != SweepEventFrame || ev.Frame == nil {
					t.Fatalf("malformed frame event %+v", ev)
				}
				frames = append(frames, ev)
			case "cell", "end":
				if event == "end" {
					ended = true
				}
			default:
				t.Fatalf("unknown SSE event %q", event)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !ended {
		t.Error("stream had no end event")
	}
	if want := int(testMeasure / 1000); len(frames) != want {
		t.Fatalf("%d frame events, want %d", len(frames), want)
	}
	for i, ev := range frames {
		if ev.Fingerprint == "" || len(ev.Frame.Threads) != 2 {
			t.Errorf("frame %d: %+v", i, ev)
		}
		if ev.Frame.StartCycle != int64(i)*1000 {
			t.Errorf("frame %d starts at %d, want %d", i, ev.Frame.StartCycle, i*1000)
		}
	}
}
