package service

import (
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"dwarn/internal/exec"
	"dwarn/internal/journal"
	"dwarn/internal/spec"
)

// testGridSpecs resolves a small canonical grid — what a journal submit
// record carries for a sweep over these policies.
func testGridSpecs(t *testing.T, policies ...string) []spec.RunSpec {
	t.Helper()
	out := make([]spec.RunSpec, 0, len(policies))
	for _, p := range policies {
		rs := spec.RunSpec{
			Policy:        spec.Policy{Name: p},
			Workload:      spec.Workload{Name: "2-MIX"},
			WarmupCycles:  testWarmup,
			MeasureCycles: testMeasure,
		}
		res, err := rs.Resolve(nil)
		if err != nil {
			t.Fatalf("resolve %s: %v", p, err)
		}
		out = append(out, res.Spec)
	}
	return out
}

func openStore(t *testing.T, dir string) *exec.DirStore {
	t.Helper()
	ds, err := exec.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func openJournal(t *testing.T, path string) (*journal.Journal, []journal.Record) {
	t.Helper()
	j, recs, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

// waitSweep polls until the sweep leaves StateRunning.
func waitSweep(t *testing.T, srv *Server, id string) *SweepStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		sw, ok := srv.lookupSweep(id)
		if !ok {
			t.Fatalf("sweep %s not registered", id)
		}
		srv.mu.Lock()
		st := srv.sweepStatusLocked(sw)
		srv.mu.Unlock()
		if st.State != StateRunning {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not finish in time", id)
	return nil
}

// An unfinished journaled sweep is resumed on startup under its
// original id, marked recovered, completes with fingerprints identical
// to the pre-crash run, and serves already-stored cells from the store
// precheck without re-simulating.
func TestSweepRecoveryResumesWithIdenticalDigests(t *testing.T) {
	dir := t.TempDir()
	specs := testGridSpecs(t, "icount", "dwarn")

	// Pre-crash life: a server with the same durable store ran one of
	// the two cells to completion (the crash interrupted the other).
	srvA, tsA := newTestServer(t, Options{Workers: 2, Store: openStore(t, filepath.Join(dir, "store"))})
	first := submitSim(t, tsA, SimulationRequest{
		Policy: "icount", Workload: "2-MIX",
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	})
	done := waitJob(t, tsA, first.ID, StateDone)
	var firstRes SimulationResult
	if err := json.Unmarshal(done.Result, &firstRes); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	_ = srvA.Shutdown(ctx)
	cancel()
	tsA.Close()
	_ = srvA

	// The journal a kill -9 would leave: a submit record, no finish.
	jpath := filepath.Join(dir, "journal.log")
	j, _ := openJournal(t, jpath)
	if err := j.Append(journal.Record{
		Type: journal.TypeSubmit, ID: "sweep-000007", Kind: journal.KindSweep,
		Time: time.Now().UTC(), Cells: specs,
	}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Restart: the server folds the journal and resumes the sweep.
	j2, recs := openJournal(t, jpath)
	srvB, tsB := newTestServer(t, Options{
		Workers: 2,
		Store:   openStore(t, filepath.Join(dir, "store")),
		Journal: j2, Recovered: recs,
	})
	defer tsB.Close()

	var st SweepStatus
	getJSON(t, tsB, "/v2/sweeps/sweep-000007", &st)
	if !st.Recovered {
		t.Fatalf("recovered sweep not flagged: %+v", st)
	}
	final := waitSweep(t, srvB, "sweep-000007")
	if final.State != StateDone {
		t.Fatalf("recovered sweep state %q: %+v", final.State, final)
	}
	if !final.Recovered {
		t.Fatal("terminal status lost the recovered flag")
	}
	if len(final.Cells) != 2 {
		t.Fatalf("%d cells", len(final.Cells))
	}
	for i, c := range final.Cells {
		if c.Fingerprint != mustFingerprint(t, specs[i]) {
			t.Fatalf("cell %d fingerprint drifted: %s", i, c.Fingerprint)
		}
	}
	// The icount cell was durably stored pre-crash: recovery completes
	// it from the store, bit-identical result.
	var icountCell *SweepCell
	for i := range final.Cells {
		if final.Cells[i].Policy == "icount" {
			icountCell = &final.Cells[i]
		}
	}
	if icountCell == nil || !icountCell.Cached {
		t.Fatalf("pre-crash cell not served from store: %+v", icountCell)
	}
	if icountCell.Fingerprint != firstRes.Fingerprint {
		t.Fatalf("recovered fingerprint %s != pre-crash %s", icountCell.Fingerprint, firstRes.Fingerprint)
	}
	if icountCell.Throughput == nil || *icountCell.Throughput != firstRes.Result.Throughput {
		t.Fatalf("recovered throughput drifted: %v vs %v", icountCell.Throughput, firstRes.Result.Throughput)
	}

	// Fresh ids advance past the recovered one.
	resp, raw := postJSON(t, tsB, "/v1/sweeps", SweepRequest{
		Policies: []string{"icount"}, Workloads: []string{"2-MIX"},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-recovery sweep: %d %s", resp.StatusCode, raw)
	}
	var st2 SweepStatus
	if err := json.Unmarshal(raw, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.ID <= "sweep-000007" {
		t.Fatalf("fresh id %s did not advance past recovered id", st2.ID)
	}
}

func mustFingerprint(t *testing.T, rs spec.RunSpec) string {
	t.Helper()
	res, err := rs.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.Fingerprint
}

// A journaled sweep whose cells no longer resolve (its trace lived in
// the dead process's memory) recovers as terminal failed — observable,
// never re-resumed — rather than wedging startup.
func TestSweepRecoveryMissingTraceFailsNotWedged(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.log")
	j, _ := openJournal(t, jpath)
	traceCell := spec.RunSpec{
		Policy:        spec.Policy{Name: "icount"},
		Workload:      spec.Workload{Trace: "deadbeefdeadbeef"},
		WarmupCycles:  testWarmup,
		MeasureCycles: testMeasure,
	}
	if err := j.Append(journal.Record{
		Type: journal.TypeSubmit, ID: "sweep-000003", Kind: journal.KindSweep,
		Time: time.Now().UTC(), Cells: []spec.RunSpec{traceCell},
	}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, recs := openJournal(t, jpath)
	srv, ts := newTestServer(t, Options{Workers: 1, Journal: j2, Recovered: recs})
	defer ts.Close()

	var st SweepStatus
	resp := getJSON(t, ts, "/v2/sweeps/sweep-000003", &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered-failed sweep not observable: %d", resp.StatusCode)
	}
	if st.State != StateFailed || !st.Recovered {
		t.Fatalf("state %q recovered %v, want failed/true", st.State, st.Recovered)
	}
	if len(st.Cells) != 1 || st.Cells[0].Error == "" {
		t.Fatalf("failure cause missing: %+v", st.Cells)
	}

	// The terminal record is durable: a second restart has nothing to
	// resume for this sweep.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	_ = srv.Shutdown(ctx)
	cancel()
	_, recs2 := openJournal(t, jpath)
	for _, e := range journal.Fold(recs2) {
		if e.ID == "sweep-000003" && e.Unfinished() {
			t.Fatal("failed sweep still unfinished after restart")
		}
	}
}

// An unfinished journaled run job is restored under its original id
// and completes; its terminal record lands in the journal.
func TestRunJobRecovery(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.log")
	specs := testGridSpecs(t, "dwarn")

	j, _ := openJournal(t, jpath)
	if err := j.Append(journal.Record{
		Type: journal.TypeSubmit, ID: "sim-000042", Kind: journal.KindRun,
		Time: time.Now().UTC(), Cells: specs,
	}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, recs := openJournal(t, jpath)
	srv, ts := newTestServer(t, Options{Workers: 1, Journal: j2, Recovered: recs})
	v := waitJob(t, ts, "sim-000042", StateDone)
	if v.ID != "sim-000042" {
		t.Fatalf("restored id %s", v.ID)
	}

	// Fresh job ids advance past the restored one.
	fresh := submitSim(t, ts, SimulationRequest{
		Policy: "icount", Workload: "2-MIX",
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	})
	if fresh.ID <= "sim-000042" {
		t.Fatalf("fresh job id %s did not advance", fresh.ID)
	}

	// Clean shutdown compacts the journal: nothing unfinished remains.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	_ = srv.Shutdown(ctx)
	cancel()
	_, recs2 := openJournal(t, jpath)
	if entries := journal.Fold(recs2); len(journal.Live(entries)) != 0 {
		t.Fatalf("unfinished entries after clean shutdown: %+v", entries)
	}
}

// Terminal run jobs stay listed across a crash restart: a journaled
// done job reappears in GET /v1/simulations with its result re-attached
// from the durable store, a failed one reappears with its cause, and
// fresh ids advance past both.
func TestTerminalRunJobsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	specs := testGridSpecs(t, "icount")

	// Pre-crash life: the durable store pays for the cell once.
	srvA, tsA := newTestServer(t, Options{Workers: 1, Store: openStore(t, filepath.Join(dir, "store"))})
	first := submitSim(t, tsA, SimulationRequest{
		Policy: "icount", Workload: "2-MIX",
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	})
	preCrash := waitJob(t, tsA, first.ID, StateDone)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	_ = srvA.Shutdown(ctx)
	cancel()
	tsA.Close()

	// The journal a kill -9 leaves: submit+finish pairs that compaction
	// never got to drop — one done job, one failed.
	jpath := filepath.Join(dir, "journal.log")
	j, _ := openJournal(t, jpath)
	for _, rec := range []journal.Record{
		{Type: journal.TypeSubmit, ID: "sim-000031", Kind: journal.KindRun, Time: time.Now().UTC(), Cells: specs},
		{Type: journal.TypeFinish, ID: "sim-000031", State: StateDone},
		{Type: journal.TypeSubmit, ID: "sim-000032", Kind: journal.KindRun, Time: time.Now().UTC(), Cells: specs},
		{Type: journal.TypeFinish, ID: "sim-000032", State: StateFailed, Error: "boom"},
	} {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, recs := openJournal(t, jpath)
	_, tsB := newTestServer(t, Options{
		Workers: 1,
		Store:   openStore(t, filepath.Join(dir, "store")),
		Journal: j2, Recovered: recs,
	})
	defer tsB.Close()

	var done JobView
	if resp := getJSON(t, tsB, "/v1/simulations/sim-000031", &done); resp.StatusCode != http.StatusOK {
		t.Fatalf("done job forgotten after restart: %d", resp.StatusCode)
	}
	if done.State != StateDone || !done.Cached {
		t.Fatalf("done job state %q cached %v", done.State, done.Cached)
	}
	if string(done.Result) != string(preCrash.Result) {
		t.Fatalf("restored result drifted from pre-crash payload:\n%s\nvs\n%s", done.Result, preCrash.Result)
	}

	var failed JobView
	if resp := getJSON(t, tsB, "/v1/simulations/sim-000032", &failed); resp.StatusCode != http.StatusOK {
		t.Fatalf("failed job forgotten after restart: %d", resp.StatusCode)
	}
	if failed.State != StateFailed || failed.Error != "boom" {
		t.Fatalf("failed job state %q error %q", failed.State, failed.Error)
	}

	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	getJSON(t, tsB, "/v1/simulations", &list)
	if len(list.Jobs) != 2 {
		t.Fatalf("listing has %d jobs after restart, want 2", len(list.Jobs))
	}

	fresh := submitSim(t, tsB, SimulationRequest{
		Policy: "icount", Workload: "2-MIX",
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	})
	if fresh.ID <= "sim-000032" {
		t.Fatalf("fresh job id %s did not advance past restored terminal ids", fresh.ID)
	}
}

// Shutdown-canceled sweeps write terminal records before the journal
// compacts, so a canceled-at-shutdown sweep is never re-resumed.
func TestShutdownCancelWritesTerminalRecord(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.log")
	j, _ := openJournal(t, jpath)

	srv := New(Options{
		Workers: 1, MaxCycles: 500_000_000,
		Journal: j, Recovered: nil,
	})
	// A sweep long enough to still be running at shutdown.
	cells, err := srv.resolveSweep(spec.SweepSpec{
		Policies:      []spec.PolicyAxis{{Name: "icount"}},
		Workloads:     []spec.Workload{{Name: "8-MEM"}},
		WarmupCycles:  200_000_000,
		MeasureCycles: 200_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := srv.startSweep(sweepStart{cells: cells, trace: "test"})
	if err != nil {
		t.Fatal(err)
	}

	// Immediate-deadline shutdown cancels the sweep mid-flight.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	_ = srv.Shutdown(ctx)
	cancel()

	_, recs := openJournal(t, jpath)
	entries := journal.Fold(recs)
	for _, e := range entries {
		if e.ID == st.ID && e.Unfinished() {
			t.Fatalf("shutdown-canceled sweep %s still unfinished in journal", st.ID)
		}
	}
	if live := journal.Live(entries); len(live) != 0 {
		t.Fatalf("journal kept %d live records after shutdown", len(live))
	}
}
