package service

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dwarn/internal/ckpt"
	"dwarn/internal/config"
	"dwarn/internal/core"
	"dwarn/internal/exec"
	"dwarn/internal/fabric"
	"dwarn/internal/journal"
	"dwarn/internal/obs"
	"dwarn/internal/sim"
	"dwarn/internal/spec"
	"dwarn/internal/stats"
	"dwarn/internal/timeline"
	"dwarn/internal/workload"
)

// Options configures a Server; zero values take the defaults below.
type Options struct {
	// Workers is the simulation worker pool size (default 4).
	Workers int
	// QueueDepth bounds the FIFO job queue (default 256).
	QueueDepth int
	// CacheEntries bounds the result cache (default 4096).
	CacheEntries int
	// MaxCycles caps per-request warmup and measure cycles; 0 applies
	// the default cap of 5M, negative disables the cap.
	MaxCycles int64
	// MaxBodyBytes caps request bodies (default 1MB).
	MaxBodyBytes int64
	// MaxJobRecords bounds retained terminal job records (default 4096).
	MaxJobRecords int
	// MaxSweepRecords bounds retained sweep records (default 256).
	MaxSweepRecords int
	// MaxSweepCells bounds one sweep's expansion (default 1024); a
	// larger grid is rejected with a 400 rather than fanning out
	// unbounded jobs.
	MaxSweepCells int
	// MaxActiveSweeps bounds concurrently executing sweeps (default
	// 16). Together with MaxSweepCells this caps the sweep backlog —
	// at most MaxActiveSweeps × MaxSweepCells cells waiting on the
	// executor pool; further submissions fail fast with a 503, the
	// sweep-side analogue of the job queue's full-queue fast-fail.
	MaxActiveSweeps int
	// MaxTraceBytes caps an uploaded trace file (compressed bytes on
	// the wire; default 32MB).
	MaxTraceBytes int64
	// MaxTracePayload caps an uploaded trace's decompressed payload
	// (decompression-bomb guard; default 256MB).
	MaxTracePayload int64
	// MaxTraces bounds the number of stored traces (default 16).
	MaxTraces int
	// MaxTraceStoreBytes bounds the traces' total in-memory payload
	// (default 1GB).
	MaxTraceStoreBytes int64
	// Store, when non-nil, durably backs the result cache: misses fall
	// through to it, results are written to it, and entries survive
	// restarts and LRU eviction (dwarnd -store DIR passes a DirStore —
	// the same layout resumable CLI sweeps use, so the two share cache
	// identity through the filesystem).
	Store exec.Store
	// Checkpoints backs the checkpoint/fork engine: sweep cells sharing
	// a (machine, workload, seed) group warm once and fork the group's
	// post-prewarm machine state from this store. Nil defaults to a
	// bounded in-memory store — checkpointing is always on, because
	// forked runs are bit-identical to cold starts. dwarnd -store DIR
	// chains a durable tier under DIR/ckpt so groups survive restarts.
	Checkpoints ckpt.Store
	// Fabric, when non-nil, embeds a distributed-sweep coordinator: the
	// executor dispatches leader cells into its lease queue, in-process
	// local workers and remote `dwarnd -worker` processes drain it, and
	// the lease protocol is served under /v2/fabric.
	Fabric *FabricOptions
	// Registry receives the server's metrics (HTTP, jobs, sweeps,
	// cache, executor). Default: a fresh registry per server, so
	// concurrent servers in one process (tests) never share counters.
	// GET /metrics additionally merges obs.Default, where the
	// simulation engine records its per-run snapshots.
	Registry *obs.Registry
	// Logger receives structured access and lifecycle logs (default:
	// discard). cmd/dwarnd passes a key=value logger on stderr.
	Logger *obs.Logger
	// AuthToken, when non-empty, requires every request except the
	// GET /healthz and GET /metrics probes to present it as a bearer
	// token (compared in constant time); failures get 401.
	AuthToken string
	// RateLimit, when > 0, enforces a per-client token bucket of this
	// many requests/second on non-fabric routes; rejected requests get
	// 429 with a Retry-After hint.
	RateLimit float64
	// RateBurst is the rate limiter's bucket capacity (default
	// max(2×RateLimit, 8)).
	RateBurst int
	// RequestTimeout bounds the handling time of non-streaming,
	// non-fabric requests (0 disables; dwarnd defaults it to 60s).
	RequestTimeout time.Duration
	// Journal, when non-nil, durably records sweep and run-job registry
	// transitions; the Server appends to it as work is admitted and
	// completed, and compacts + closes it on Shutdown.
	Journal *journal.Journal
	// Recovered is the record stream journal.Open replayed before the
	// Server was built. New folds it and resumes unfinished entries
	// through the executor (durably stored cells short-circuit).
	Recovered []journal.Record
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 4096
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 5_000_000
	}
	if o.MaxCycles < 0 {
		o.MaxCycles = 0
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.MaxJobRecords <= 0 {
		o.MaxJobRecords = 4096
	}
	if o.MaxSweepRecords <= 0 {
		o.MaxSweepRecords = 256
	}
	if o.MaxSweepCells <= 0 {
		o.MaxSweepCells = 1024
	}
	if o.MaxActiveSweeps <= 0 {
		o.MaxActiveSweeps = 16
	}
	if o.MaxTraceBytes <= 0 {
		o.MaxTraceBytes = 32 << 20
	}
	if o.MaxTracePayload <= 0 {
		o.MaxTracePayload = 256 << 20
	}
	if o.MaxTraces <= 0 {
		o.MaxTraces = 16
	}
	if o.MaxTraceStoreBytes <= 0 {
		o.MaxTraceStoreBytes = 1 << 30
	}
	if o.Checkpoints == nil {
		o.Checkpoints = ckpt.NewMemStore(ckpt.DefaultMemBytes)
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.Logger == nil {
		o.Logger = obs.Nop()
	}
	return o
}

// Server is the dwarnd HTTP service: REST handlers over a job Manager
// (single runs) and the shared execution layer (sweeps), both memoised
// by one content-addressed result Cache.
type Server struct {
	opts   Options
	cache  *Cache
	mgr    *Manager
	traces *TraceStore
	exec   *exec.Executor      // shared sweep pool over the cache-backed store
	fabric *fabric.Coordinator // non-nil when Options.Fabric is set
	mux    *http.ServeMux
	start  time.Time
	reg    *obs.Registry
	log    *obs.Logger

	reqSeq  atomic.Uint64 // request-ID sequence for access logs
	sseSubs atomic.Int64  // open SSE event streams

	// Admission control (middleware.go).
	limiter  *rateLimiter // nil unless Options.RateLimit > 0
	authHash [32]byte     // sha256(Options.AuthToken); compared hashed

	metAuthFail    *obs.Counter
	metRateLimited *obs.Counter
	metShed        *obs.Counter

	// Durable registry. jrecs mirrors every record appended (or
	// replayed) this process lifetime, so Shutdown can fold it and
	// compact the on-disk log down to the still-unfinished entries.
	jrnl  *journal.Journal // nil without -journal
	jmu   sync.Mutex
	jrecs []journal.Record

	sweepWG    sync.WaitGroup
	sweepCtx   context.Context // parent of every sweep's context
	stopSweeps context.CancelFunc

	mu          sync.Mutex
	sweeps      map[string]*sweep
	sweepOrder  []string
	sweepSeq    uint64
	sweepClosed bool
}

// New builds a Server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		cache:      NewCache(opts.CacheEntries),
		mgr:        NewManager(opts.Workers, opts.QueueDepth, opts.MaxJobRecords),
		traces:     NewTraceStore(opts.MaxTraces, opts.MaxTraceStoreBytes),
		mux:        http.NewServeMux(),
		start:      time.Now(),
		reg:        opts.Registry,
		log:        opts.Logger,
		sweepCtx:   ctx,
		stopSweeps: cancel,
		sweeps:     make(map[string]*sweep),
	}
	if opts.AuthToken != "" {
		s.authHash = sha256.Sum256([]byte(opts.AuthToken))
	}
	s.limiter = newRateLimiter(opts.RateLimit, opts.RateBurst)
	s.jrnl = opts.Journal
	s.jrecs = append(s.jrecs, opts.Recovered...)
	// Every sweep cell executes through this one executor: N concurrent
	// sweeps share one bounded pool and one store identity — the same
	// cache entries /v1/simulations and /v2/runs are served from. Its
	// metrics (store hits/misses, dedup, per-policy cell times) land in
	// the server's registry. With Options.Store the LRU is layered over
	// the durable tier; with Options.Fabric leader cells dispatch into
	// the coordinator's lease queue instead of a local pool.
	store := exec.Store(cacheStore{c: s.cache})
	if opts.Store != nil {
		store = tieredStore{fast: cacheStore{c: s.cache}, slow: opts.Store}
	}
	if opts.Fabric != nil {
		s.fabric = s.startFabric(opts.Fabric)
	}
	s.exec = exec.New(exec.Options{
		Workers:     opts.Workers,
		Store:       store,
		Dispatcher:  dispatcherOrNil(s.fabric),
		Registry:    s.reg,
		Logger:      s.log,
		Run:         s.runCell,
		Checkpoints: opts.Checkpoints,
	})
	s.registerGauges()
	s.routes()
	s.recoverFromJournal()
	return s
}

// runCell computes one resolved cell. It is the one RunFunc under the
// executor's local pool, the fabric's local workers, and (via job
// closures) single runs — so every execution path streams interval
// frames the same way: when the executing context carries a frame sink
// (attached per sweep in submitSweep) and the cell's spec requested
// timeline sampling, each closing frame is forwarded as it happens
// instead of waiting for the cell's result.
func (s *Server) runCell(ctx context.Context, res *spec.Resolved) (*sim.Result, error) {
	opts := res.Options
	if sink := frameSinkFrom(ctx); sink != nil && opts.Timeline != nil {
		fp := res.Fingerprint
		opts.OnFrame = func(f *timeline.Frame) { sink(fp, f) }
	}
	// The executor's gated checkpoint store, so cells fork post-prewarm
	// state and the warm gate releases the moment a group publishes.
	opts.Checkpoints = s.exec.CheckpointStore()
	return sim.RunContext(ctx, opts)
}

// dispatcherOrNil avoids handing exec a typed-nil interface.
func dispatcherOrNil(c *fabric.Coordinator) exec.Dispatcher {
	if c == nil {
		return nil
	}
	return c
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	s.mux.HandleFunc("GET /v1/machines", s.handleMachines)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("POST /v1/simulations", s.handleSubmitSimulation)
	s.mux.HandleFunc("GET /v1/simulations", s.handleListSimulations)
	s.mux.HandleFunc("GET /v1/simulations/{id}", s.handleGetSimulation)
	s.mux.HandleFunc("DELETE /v1/simulations/{id}", s.handleCancelSimulation)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGetSweep)
	s.mux.HandleFunc("POST /v1/traces", s.handleUploadTrace)
	s.mux.HandleFunc("GET /v1/traces", s.handleListTraces)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleGetTrace)
	s.routesV2()
}

// Handler returns the root http.Handler: the API mux behind the
// admission-control chain (auth, rate limit, load shedding, body and
// deadline bounds) behind the observability layer (per-route metrics +
// request-ID access logs) — outermost first, so rejected requests are
// still counted and logged.
func (s *Server) Handler() http.Handler { return s.obsHandler() }

// Shutdown stops accepting work and drains both execution paths: the
// job Manager's queue (single runs) and every active sweep. Queued and
// running work completes normally; if ctx expires first, every
// remaining job and sweep context is cancelled and Shutdown waits for
// the workers to observe that before returning ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.sweepClosed = true
	s.mu.Unlock()

	sweepsDone := make(chan struct{})
	go func() {
		s.sweepWG.Wait()
		close(sweepsDone)
	}()
	err := s.mgr.Shutdown(ctx)
	select {
	case <-sweepsDone:
	case <-ctx.Done():
		s.stopSweeps()
		<-sweepsDone
		if err == nil {
			err = ctx.Err()
		}
	}
	// The fabric closes after the sweeps drain: every cell is resolved
	// by then, so closing only parks the local workers and tells remote
	// workers (on their next RPC) to back off.
	if s.fabric != nil {
		s.fabric.Close()
	}
	// Compact the journal down to whatever is still unfinished (after a
	// clean drain: nothing, leaving just the header) and close it. A
	// failed compaction is not fatal — the full log replays fine.
	if s.jrnl != nil {
		s.jmu.Lock()
		keep := journal.Live(journal.Fold(s.jrecs))
		s.jmu.Unlock()
		if cerr := s.jrnl.Compact(keep); cerr != nil {
			s.log.Warn("journal compact failed", "err", cerr)
		}
		if cerr := s.jrnl.Close(); cerr != nil {
			s.log.Warn("journal close failed", "err", cerr)
		}
	}
	return err
}

// journalAppend durably appends one registry record (no-op without a
// journal), mirroring it in memory for Shutdown's compaction fold.
func (s *Server) journalAppend(rec journal.Record) error {
	if s.jrnl == nil {
		return nil
	}
	if err := s.jrnl.Append(rec); err != nil {
		return err
	}
	s.jmu.Lock()
	s.jrecs = append(s.jrecs, rec)
	s.jmu.Unlock()
	return nil
}

// CacheStats exposes the result cache counters (used by tests and /healthz).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// ---- JSON helpers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err))
		return false
	}
	return true
}

// submitError maps submission failures (job queue or sweep admission)
// to HTTP statuses. Saturation 503s carry a Retry-After hint so
// well-behaved clients back off instead of hot-looping.
func submitError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrShuttingDown) ||
		errors.Is(err, ErrTooManySweeps) || errors.Is(err, ErrSaturated) {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterHeader(retryAfterShed))
	}
	writeError(w, status, err)
}

// ---- simulation execution ----

// simKey is the cache key for a plain simulation payload;
// simBaselinesKey for the payload that adds relative-IPC metrics.
func simKey(fp string) string          { return "sim:" + fp }
func simBaselinesKey(fp string) string { return "sim+baselines:" + fp }

// resolveSpec compiles a spec against the server's trace store and
// enforces the per-run cycle cap.
func (s *Server) resolveSpec(rs spec.RunSpec) (*spec.Resolved, error) {
	res, err := rs.Resolve(s.traces)
	if err != nil {
		return nil, err
	}
	if err := checkCycles(res.Spec.WarmupCycles, res.Spec.MeasureCycles, s.opts.MaxCycles); err != nil {
		return nil, err
	}
	return res, nil
}

// runSim returns the marshaled SimulationResult for a resolved run (no
// summary), computing and caching it under the spec fingerprint on a
// miss. The computation itself goes through the shared executor, so a
// run job and a sweep cell with the same fingerprint join one
// in-flight simulation (and one bounded pool) instead of simulating
// twice — the cache's single-flight dedupes identical run jobs, the
// executor's dedupes across the run/sweep boundary.
func (s *Server) runSim(ctx context.Context, res *spec.Resolved) (json.RawMessage, bool, error) {
	return s.cache.GetOrCompute(ctx, simKey(res.Fingerprint), func() ([]byte, error) {
		results := s.exec.Execute(ctx, []*spec.Resolved{res}, nil)
		if err := results[0].Err; err != nil {
			return nil, err
		}
		return json.Marshal(&SimulationResult{Fingerprint: res.Fingerprint, Result: results[0].Result})
	})
}

// decodeSim recovers the result record from cached payload bytes.
func decodeSim(raw []byte) (*SimulationResult, error) {
	var sr SimulationResult
	if err := json.Unmarshal(raw, &sr); err != nil {
		return nil, fmt.Errorf("service: corrupt cached result: %w", err)
	}
	return &sr, nil
}

// runSimWithBaselines additionally runs each distinct benchmark solo
// under ICOUNT — every solo run is a canonical spec of its own, so its
// cache entry is shared with any other request (v1 or v2) that needs
// the same baseline — and attaches the relative-IPC summary.
func (s *Server) runSimWithBaselines(ctx context.Context, res *spec.Resolved) (json.RawMessage, bool, error) {
	return s.cache.GetOrCompute(ctx, simBaselinesKey(res.Fingerprint), func() ([]byte, error) {
		raw, _, err := s.runSim(ctx, res)
		if err != nil {
			return nil, err
		}
		sr, err := decodeSim(raw)
		if err != nil {
			return nil, err
		}

		soloIPC := make(map[string]float64)
		for _, bench := range res.Options.Workload.Benchmarks {
			if _, ok := soloIPC[bench]; ok {
				continue
			}
			soloSpec := spec.SoloBaseline(res.Spec, bench)
			soloRes, err := soloSpec.Resolve(nil)
			if err != nil {
				return nil, err
			}
			soloRaw, _, err := s.runSim(ctx, soloRes)
			if err != nil {
				return nil, err
			}
			soloOut, err := decodeSim(soloRaw)
			if err != nil {
				return nil, err
			}
			soloIPC[bench] = soloOut.Result.Threads[0].IPC
		}

		smt := sr.Result.IPCs()
		solo := make([]float64, len(sr.Result.Threads))
		for i, t := range sr.Result.Threads {
			solo[i] = soloIPC[t.Benchmark]
		}
		sr.Summary, err = stats.Summarize(smt, solo)
		if err != nil {
			return nil, err
		}
		return json.Marshal(sr)
	})
}

// submitResolved either completes the run instantly from the cache or
// enqueues it. record is echoed in job status responses: the original
// request for v1 submissions, the canonical spec for v2. ctx is the
// submitting request's context: its trace ID and logger are re-attached
// to the job's own (queue-lifetime) context so the run executes under
// the trace of the request that submitted it.
func (s *Server) submitResolved(ctx context.Context, res *spec.Resolved, record any) (JobView, error) {
	key := simKey(res.Fingerprint)
	run := s.runSim
	if res.Spec.Baselines {
		key = simBaselinesKey(res.Fingerprint)
		run = s.runSimWithBaselines
	}

	// Fast path: an identical request already paid for this result, so
	// the job completes at submission time without taking a queue slot.
	// Peek rather than Get: a miss here is not an outcome — the queued
	// job's GetOrCompute records it.
	if raw, ok := s.cache.Peek(key); ok {
		j, err := s.mgr.SubmitCompleted("sim", record, raw, true)
		if err != nil {
			return JobView{}, err
		}
		v, _ := s.mgr.Get(j.ID)
		return v, nil
	}

	trace := obs.TraceID(ctx)
	base := func(jobCtx context.Context) (json.RawMessage, bool, error) {
		return run(obs.WithLogger(obs.WithTrace(jobCtx, trace), s.log), res)
	}
	runJob := base
	var ready chan struct{}
	var jobID *string
	if s.jrnl != nil {
		// The worker closure waits for the submit record (which carries
		// the job id) to be durably appended before executing, so the
		// journal never holds a finish record ahead of its submit.
		ready = make(chan struct{})
		jobID = new(string)
		runJob = func(jobCtx context.Context) (json.RawMessage, bool, error) {
			<-ready
			raw, cached, err := base(jobCtx)
			s.journalRunFinish(*jobID, jobCtx, err)
			return raw, cached, err
		}
	}
	j, err := s.mgr.Submit("sim", record, runJob)
	if err != nil {
		return JobView{}, err
	}
	if s.jrnl != nil {
		*jobID = j.ID
		if jerr := s.journalAppend(journal.Record{
			Type: journal.TypeSubmit, ID: j.ID, Kind: journal.KindRun,
			Time: j.SubmittedAt, Cells: []spec.RunSpec{res.Spec},
		}); jerr != nil {
			// Best effort for single runs (availability over strict
			// durability): the job still runs, it just won't be resumed
			// if the process dies first.
			s.log.Warn("journal job append failed", "job", j.ID, "err", jerr)
		}
		close(ready)
	}
	v, _ := s.mgr.Get(j.ID)
	return v, nil
}

// journalRunFinish appends a run job's terminal record, mirroring the
// Manager's state mapping for the job itself.
func (s *Server) journalRunFinish(id string, ctx context.Context, err error) {
	rec := journal.Record{Type: journal.TypeFinish, ID: id, State: StateDone}
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || ctx.Err() != nil:
		rec.State = StateCanceled
	default:
		rec.State = StateFailed
		rec.Error = err.Error()
	}
	if aerr := s.journalAppend(rec); aerr != nil {
		s.log.Warn("journal job finish append failed", "job", id, "err", aerr)
	}
}

// submitSpecJob resolves and submits one spec.
func (s *Server) submitSpecJob(ctx context.Context, rs spec.RunSpec, record any) (JobView, *spec.Resolved, error) {
	res, err := s.resolveSpec(rs)
	if err != nil {
		return JobView{}, nil, err
	}
	v, err := s.submitResolved(ctx, res, record)
	return v, res, err
}

// ---- handlers ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sweeps := len(s.sweeps)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"workers":        s.opts.Workers,
		"queue_depth":    s.opts.QueueDepth,
		"jobs":           s.mgr.Counts(),
		"sweeps":         sweeps,
		"traces":         s.traces.Len(),
		"cache":          s.cache.Stats(),
	})
}

func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"policies": core.Policies(),
		"paper":    core.PaperPolicies(),
	})
}

func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"machines": config.Machines()})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type wl struct {
		Name       string   `json:"name"`
		Threads    int      `json:"threads"`
		Mix        string   `json:"mix"`
		Benchmarks []string `json:"benchmarks"`
	}
	var out []wl
	for _, w := range workload.Workloads() {
		out = append(out, wl{Name: w.Name, Threads: w.Threads, Mix: w.Mix.String(), Benchmarks: w.Benchmarks})
	}
	writeJSON(w, http.StatusOK, map[string]any{"workloads": out})
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	type bench struct {
		Name string `json:"name"`
		Type string `json:"type"`
	}
	var out []bench
	for _, name := range workload.Names() {
		p, err := workload.Get(name)
		if err != nil {
			continue
		}
		out = append(out, bench{Name: name, Type: p.Type.String()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"benchmarks": out})
}

func (s *Server) handleSubmitSimulation(w http.ResponseWriter, r *http.Request) {
	var req SimulationRequest
	if !s.decode(w, r, &req) {
		return
	}
	v, _, err := s.submitSpecJob(r.Context(), req.Spec(), req)
	if err != nil {
		if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrShuttingDown) {
			submitError(w, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleListSimulations(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.List()})
}

func (s *Server) handleGetSimulation(w http.ResponseWriter, r *http.Request) {
	v, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleCancelSimulation(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.mgr.Get(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no job %q", id))
		return
	}
	if !s.mgr.Cancel(id) {
		writeError(w, http.StatusConflict, fmt.Errorf("service: job %q already finished", id))
		return
	}
	// Durable cancel: a job canceled while still queued never runs its
	// closure, so without this record a restart would resume it.
	if err := s.journalAppend(journal.Record{Type: journal.TypeCancel, ID: id}); err != nil {
		s.log.Warn("journal cancel append failed", "job", id, "err", err)
	}
	v, _ := s.mgr.Get(id)
	writeJSON(w, http.StatusOK, v)
}

// resolveSweep expands a sweep spec under the cell bound and resolves
// every cell, validating the whole grid before any work is admitted.
func (s *Server) resolveSweep(ss spec.SweepSpec) ([]sweepCell, error) {
	runs, err := ss.Expand(s.opts.MaxSweepCells)
	if err != nil {
		return nil, err
	}
	cells := make([]sweepCell, 0, len(runs))
	for _, rs := range runs {
		res, err := s.resolveSpec(rs)
		if err != nil {
			return nil, fmt.Errorf("sweep cell %s/%s/%s: %w",
				machineName(rs.Machine), rs.Policy.ID(), rs.Workload.ID(), err)
		}
		cells = append(cells, sweepCell{resolved: res, view: cellIdentity(res)})
	}
	return cells, nil
}

// machineName is the display name of a possibly-nil machine reference.
func machineName(m *spec.Machine) string {
	if m == nil || m.Name == "" {
		return "baseline"
	}
	return m.Name
}

// cellIdentity derives a cell's static display fields from its
// canonical spec.
func cellIdentity(res *spec.Resolved) SweepCell {
	c := SweepCell{
		Machine:     res.Spec.Machine.Name,
		Policy:      res.Spec.Policy.ID(),
		Seed:        res.Spec.Seed,
		Fingerprint: res.Fingerprint,
	}
	if tr := res.Spec.Workload.Trace; tr != "" {
		c.Trace = tr
	} else {
		c.Workload = res.Spec.Workload.ID()
	}
	return c
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decode(w, r, &req) {
		return
	}
	ss, err := req.Spec()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cells, err := s.resolveSweep(ss)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.submitSweep(w, r, cells)
}
