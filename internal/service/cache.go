package service

import (
	"container/list"
	"context"
	"sync"
)

// Cache is a bounded, content-addressed result cache: keys are
// sim.Fingerprint identities (plus payload-shape suffixes), values are
// the exact marshaled response bytes, so a repeat request is served
// byte-for-byte identical to the first. Eviction is LRU by entry count;
// values are immutable once stored and must not be modified by callers.
//
// GetOrCompute adds single-flight semantics on top: concurrent requests
// for the same key run the compute function once and share its result,
// which is what makes shared sub-results (the solo-IPC baselines behind
// every relative-IPC metric) cost one simulation no matter how many
// in-flight requests need them.
type Cache struct {
	mu       sync.Mutex
	max      int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*flight

	hits, misses uint64
}

type centry struct {
	key string
	val []byte
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// CacheStats is a point-in-time snapshot for /healthz.
type CacheStats struct {
	Entries int    `json:"entries"`
	Max     int    `json:"max"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// NewCache builds a cache bounded to max entries (min 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:      max,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Get returns the cached bytes for key, recording a hit or miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.getLocked(key)
}

// Peek is Get for callers that will come back through GetOrCompute on
// absence: a present entry records a hit, but absence records nothing,
// so the eventual GetOrCompute outcome is counted exactly once.
func (c *Cache) Peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*centry).val, true
	}
	return nil, false
}

func (c *Cache) getLocked(key string) ([]byte, bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*centry).val, true
	}
	c.misses++
	return nil, false
}

// Put stores val under key, evicting the least recently used entry if
// the cache is full. val must not be mutated afterwards.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, val)
}

func (c *Cache) putLocked(key string, val []byte) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*centry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&centry{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*centry).key)
	}
}

// GetOrCompute returns the cached bytes for key, computing and storing
// them via fn on a miss. Concurrent callers with the same key share one
// computation: the first becomes the leader, the rest wait. hit reports
// whether this caller avoided paying for the computation (a stored
// entry or another caller's in-flight result). If the leader fails —
// including cancellation of its context — waiters retry leadership with
// their own context rather than inheriting the failure, so one
// cancelled request cannot poison an identical healthy one.
func (c *Cache) GetOrCompute(ctx context.Context, key string, fn func() ([]byte, error)) (val []byte, hit bool, err error) {
	for {
		c.mu.Lock()
		if v, ok := c.getLocked(key); ok {
			c.mu.Unlock()
			return v, true, nil
		}
		if f, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
				if f.err == nil {
					return f.val, true, nil
				}
				// Leader failed; loop to retry as leader.
				continue
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.mu.Unlock()

		f.val, f.err = fn()
		c.mu.Lock()
		delete(c.inflight, key)
		if f.err == nil {
			c.putLocked(key, f.val)
		}
		c.mu.Unlock()
		close(f.done)
		return f.val, false, f.err
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: c.ll.Len(), Max: c.max, Hits: c.hits, Misses: c.misses}
}
