package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dwarn/internal/exec"
	"dwarn/internal/sim"
	"dwarn/internal/spec"
	"dwarn/internal/workload"
)

// Short protocol for tests: these exercise the service plumbing, not
// measurement quality.
const (
	testWarmup  = 2_000
	testMeasure = 5_000
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		// Cancel whatever is still active so the drain is immediate.
		for _, v := range srv.mgr.List() {
			if !terminal(v.State) {
				srv.mgr.Cancel(v.ID)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, ts
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", path, body, err)
		}
	}
	return resp
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, raw
}

func submitSim(t *testing.T, ts *httptest.Server, req SimulationRequest) JobView {
	t.Helper()
	resp, raw := postJSON(t, ts, "/v1/simulations", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/simulations: status %d body %s", resp.StatusCode, raw)
	}
	var v JobView
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("bad job view %q: %v", raw, err)
	}
	return v
}

// waitJob polls a job until it reaches one of the wanted states.
func waitJob(t *testing.T, ts *httptest.Server, id string, want ...string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var v JobView
		getJSON(t, ts, "/v1/simulations/"+id, &v)
		for _, w := range want {
			if v.State == w {
				return v
			}
		}
		if v.State == StateDone || v.State == StateFailed || v.State == StateCanceled {
			t.Fatalf("job %s reached %q (error %q), wanted one of %v", id, v.State, v.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach %v in time", id, want)
	return JobView{}
}

func TestCatalogEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	var health struct {
		Status string     `json:"status"`
		Cache  CacheStats `json:"cache"`
	}
	if resp := getJSON(t, ts, "/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health.Status != "ok" {
		t.Fatalf("healthz = %+v", health)
	}

	var pols struct {
		Policies []string `json:"policies"`
		Paper    []string `json:"paper"`
	}
	getJSON(t, ts, "/v1/policies", &pols)
	if len(pols.Paper) != 6 {
		t.Fatalf("want 6 paper policies, got %v", pols.Paper)
	}

	var wls struct {
		Workloads []struct {
			Name    string `json:"name"`
			Threads int    `json:"threads"`
		} `json:"workloads"`
	}
	getJSON(t, ts, "/v1/workloads", &wls)
	if len(wls.Workloads) != 12 {
		t.Fatalf("want 12 workloads, got %d", len(wls.Workloads))
	}

	var benches struct {
		Benchmarks []struct {
			Name string `json:"name"`
			Type string `json:"type"`
		} `json:"benchmarks"`
	}
	getJSON(t, ts, "/v1/benchmarks", &benches)
	if len(benches.Benchmarks) != 12 {
		t.Fatalf("want 12 benchmarks, got %d", len(benches.Benchmarks))
	}

	var machines struct {
		Machines []string `json:"machines"`
	}
	getJSON(t, ts, "/v1/machines", &machines)
	if len(machines.Machines) != 3 {
		t.Fatalf("want 3 machines, got %v", machines.Machines)
	}
}

func TestSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	req := SimulationRequest{
		Policy: "dwarn", Workload: "2-MIX",
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	}
	v := submitSim(t, ts, req)
	if v.State != StateQueued && v.State != StateRunning && v.State != StateDone {
		t.Fatalf("fresh job in state %q", v.State)
	}
	done := waitJob(t, ts, v.ID, StateDone)
	if done.Cached {
		t.Fatal("first run reported cached")
	}

	sr, err := decodeSim(done.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.EqualFold(sr.Result.Policy, "dwarn") || sr.Result.Workload != "2-MIX" {
		t.Fatalf("result identifies %s/%s", sr.Result.Policy, sr.Result.Workload)
	}
	if sr.Result.Throughput <= 0 || len(sr.Result.Threads) != 2 {
		t.Fatalf("implausible result: throughput %f, %d threads", sr.Result.Throughput, len(sr.Result.Threads))
	}
	if sr.Fingerprint == "" {
		t.Fatal("missing fingerprint")
	}
}

func TestRepeatRequestServedFromCacheIdenticalBytes(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	req := SimulationRequest{
		Policy: "icount", Workload: "2-ILP", Seed: 7,
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	}
	first := waitJob(t, ts, submitSim(t, ts, req).ID, StateDone)
	if first.Cached {
		t.Fatal("first submission reported cached")
	}
	hitsBefore := srv.CacheStats().Hits

	second := submitSim(t, ts, req)
	if second.State != StateDone {
		t.Fatalf("repeat submission not completed at submit time: %q", second.State)
	}
	if !second.Cached {
		t.Fatal("repeat submission not marked cached")
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("cached result bytes differ:\n%s\n%s", first.Result, second.Result)
	}
	if hits := srv.CacheStats().Hits; hits <= hitsBefore {
		t.Fatalf("cache hits did not increase (%d -> %d)", hitsBefore, hits)
	}
}

func TestBaselinesSummary(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	req := SimulationRequest{
		Policy: "dwarn", Workload: "2-MIX", Baselines: true,
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	}
	done := waitJob(t, ts, submitSim(t, ts, req).ID, StateDone)
	sr, err := decodeSim(done.Result)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Summary == nil {
		t.Fatal("baselines run missing summary")
	}
	if sr.Summary.Hmean <= 0 || sr.Summary.WeightedSpeedup <= 0 || len(sr.Summary.RelativeIPCs) != 2 {
		t.Fatalf("implausible summary %+v", sr.Summary)
	}
}

func TestSweepFanOutMatchesDirectRuns(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	req := SweepRequest{
		Workloads:    []string{"4-MIX"},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	}
	resp, raw := postJSON(t, ts, "/v1/sweeps", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps: status %d body %s", resp.StatusCode, raw)
	}
	var st SweepStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Total != 6 {
		t.Fatalf("sweep over paper policies × 4-MIX has %d cells, want 6", st.Total)
	}

	deadline := time.Now().Add(120 * time.Second)
	for st.State == StateRunning && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		getJSON(t, ts, "/v1/sweeps/"+st.ID, &st)
	}
	if st.State != StateDone {
		t.Fatalf("sweep finished in state %q (%d/%d done)", st.State, st.Done, st.Total)
	}

	// Every cell's throughput must match sim.Run called directly with
	// the same options — the service adds queueing and caching, never
	// different numbers.
	for _, cell := range st.Cells {
		if cell.Throughput == nil {
			t.Fatalf("cell %s/%s missing throughput", cell.Policy, cell.Workload)
		}
		wl, err := workload.GetWorkload(cell.Workload)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := sim.Run(sim.Options{
			Policy: cell.Policy, Workload: wl,
			WarmupCycles: testWarmup, MeasureCycles: testMeasure,
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(direct.Throughput-*cell.Throughput) > 1e-12 {
			t.Fatalf("cell %s: service %.6f vs direct %.6f", cell.Policy, *cell.Throughput, direct.Throughput)
		}
	}
}

func TestCancelMidJob(t *testing.T) {
	// One worker and a deliberately long run so the job is mid-flight
	// when the cancel arrives.
	_, ts := newTestServer(t, Options{Workers: 1, MaxCycles: 500_000_000})
	v := submitSim(t, ts, SimulationRequest{
		Policy: "flush", Workload: "8-MEM",
		WarmupCycles: 200_000_000, MeasureCycles: 200_000_000,
	})
	waitJob(t, ts, v.ID, StateRunning)

	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/simulations/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}

	got := waitJob(t, ts, v.ID, StateCanceled)
	if got.Result != nil {
		t.Fatal("canceled job has a result")
	}

	// The worker must be free again: a short job completes.
	short := submitSim(t, ts, SimulationRequest{
		Policy: "icount", Workload: "2-ILP",
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	})
	waitJob(t, ts, short.ID, StateDone)
}

func TestCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxCycles: 500_000_000})
	long := submitSim(t, ts, SimulationRequest{
		Policy: "icount", Workload: "8-MEM",
		WarmupCycles: 200_000_000, MeasureCycles: 200_000_000,
	})
	waitJob(t, ts, long.ID, StateRunning)

	queued := submitSim(t, ts, SimulationRequest{
		Policy: "stall", Workload: "2-MEM",
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	})
	for _, id := range []string{queued.ID, long.ID} {
		delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/simulations/"+id, nil)
		resp, err := http.DefaultClient.Do(delReq)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE %s status %d", id, resp.StatusCode)
		}
	}
	waitJob(t, ts, queued.ID, StateCanceled)
	waitJob(t, ts, long.ID, StateCanceled)
}

func TestQueueFullRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1, MaxCycles: 500_000_000})
	long := SimulationRequest{
		Policy: "icount", Workload: "8-MEM",
		WarmupCycles: 200_000_000, MeasureCycles: 200_000_000,
	}
	running := submitSim(t, ts, long)
	waitJob(t, ts, running.ID, StateRunning)

	// Occupies the single queue slot. A different seed avoids the
	// single-flight/cache identity of the running job.
	queued := long
	queued.Seed = 2
	submitSim(t, ts, queued)

	rejected := long
	rejected.Seed = 3
	resp, raw := postJSON(t, ts, "/v1/simulations", rejected)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submit: status %d body %s", resp.StatusCode, raw)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []SimulationRequest{
		{},                                      // no policy
		{Policy: "dwarn"},                       // no workload
		{Policy: "nonesuch", Workload: "4-MIX"}, // unknown policy
		{Policy: "dwarn", Workload: "nonesuch"},
		{Policy: "dwarn", Workload: "4-MIX", Benchmarks: []string{"gzip"}}, // both
		{Policy: "dwarn", Workload: "8-MIX", Machine: "small"},             // too many threads
		{Policy: "dwarn", Workload: "4-MIX", MeasureCycles: 100_000_000},   // over cap
		{Policy: "dwarn", Benchmarks: []string{"nonesuch"}},
	}
	for i, req := range cases {
		resp, raw := postJSON(t, ts, "/v1/simulations", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d body %s", i, resp.StatusCode, raw)
		}
	}
	if resp := getJSON(t, ts, "/v1/simulations/nonesuch", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts, "/v1/sweeps/nonesuch", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing sweep: status %d", resp.StatusCode)
	}
}

func TestCustomBenchmarksWorkload(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	req := SimulationRequest{
		Policy:       "dwarn",
		Benchmarks:   []string{"gzip", "mcf"},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	}
	done := waitJob(t, ts, submitSim(t, ts, req).ID, StateDone)
	sr, err := decodeSim(done.Result)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Result.Threads) != 2 {
		t.Fatalf("custom workload ran %d threads", len(sr.Result.Threads))
	}
}

// TestConcurrentIdenticalSubmissions hammers the service with identical
// requests from many goroutines; the simulation must be paid for once
// (single-flight + cache), and every job must return the same bytes.
func TestConcurrentIdenticalSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	req := SimulationRequest{
		Policy: "pdg", Workload: "2-MEM", Seed: 11,
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	}
	const clients = 16
	results := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/simulations", "application/json", bytes.NewReader(b))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("client %d: status %d body %s", i, resp.StatusCode, raw)
				return
			}
			var v JobView
			if err := json.Unmarshal(raw, &v); err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			deadline := time.Now().Add(60 * time.Second)
			for v.State != StateDone && time.Now().Before(deadline) {
				if v.State == StateFailed || v.State == StateCanceled {
					t.Errorf("client %d: job %s %s: %s", i, v.ID, v.State, v.Error)
					return
				}
				time.Sleep(5 * time.Millisecond)
				getJSON(t, ts, "/v1/simulations/"+v.ID, &v)
			}
			results[i] = v.Result
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("client %d saw different bytes", i)
		}
	}
}

func TestJobRecordPruning(t *testing.T) {
	m := NewManager(1, 4, 2)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	}()
	var last string
	for i := 0; i < 5; i++ {
		j, err := m.SubmitCompleted("sim", nil, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		last = j.ID
	}
	views := m.List()
	if len(views) != 2 {
		t.Fatalf("retained %d records, want 2", len(views))
	}
	if views[len(views)-1].ID != last {
		t.Fatalf("newest record %s pruned (kept %s)", last, views[len(views)-1].ID)
	}
}

// TestSweepCellErrorIsolated: one failing cell must not abort the
// sweep — its error is recorded in its slot while every sibling
// completes with a result.
func TestSweepCellErrorIsolated(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	// Swap in an executor whose RunFunc fails exactly the FLUSH cell;
	// everything else runs the real simulator over the same store.
	srv.exec = exec.New(exec.Options{
		Workers: 2,
		Store:   cacheStore{c: srv.cache},
		Run: func(ctx context.Context, res *spec.Resolved) (*sim.Result, error) {
			if res.Spec.Policy.Name == "flush" {
				return nil, errBoom
			}
			return sim.RunContext(ctx, res.Options)
		},
	})

	resp, raw := postJSON(t, ts, "/v1/sweeps", SweepRequest{
		Workloads:    []string{"4-MIX"},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps: status %d body %s", resp.StatusCode, raw)
	}
	var st SweepStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for st.State == StateRunning && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		getJSON(t, ts, "/v1/sweeps/"+st.ID, &st)
	}
	if st.State != StateFailed {
		t.Fatalf("sweep with one bad cell finished %q, want failed", st.State)
	}
	if st.Failed != 1 || st.Done != st.Total-1 {
		t.Fatalf("counts done=%d failed=%d total=%d, want every other cell done", st.Done, st.Failed, st.Total)
	}
	for _, c := range st.Cells {
		if c.Policy == "flush" {
			if c.State != StateFailed || c.Error == "" {
				t.Fatalf("failing cell %+v", c)
			}
			continue
		}
		if c.State != StateDone || c.Throughput == nil {
			t.Fatalf("sibling cell %s must survive the failure: %+v", c.Policy, c)
		}
	}
}

var errBoom = errors.New("boom")

// TestSweepAdmissionBound: sweeps bypass the job queue, so they carry
// their own backpressure — beyond MaxActiveSweeps concurrently
// executing sweeps, submission fails fast with a 503 instead of piling
// up unbounded backlog. Cancelling an active sweep frees its slot.
func TestSweepAdmissionBound(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxCycles: 500_000_000, MaxActiveSweeps: 2})
	long := SweepRequest{
		Policies:  []string{"icount"},
		Workloads: []string{"8-MEM"},
		// Long enough to still be running while the rest submit.
		WarmupCycles: 200_000_000, MeasureCycles: 200_000_000,
	}
	var ids []string
	for i := 0; i < 2; i++ {
		req := long
		req.Seed = uint64(i + 1) // distinct cells so nothing dedups
		resp, raw := postJSON(t, ts, "/v1/sweeps", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("sweep %d: status %d body %s", i, resp.StatusCode, raw)
		}
		var st SweepStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	over := long
	over.Seed = 99
	resp, raw := postJSON(t, ts, "/v1/sweeps", over)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap sweep: status %d body %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "too many active sweeps") {
		t.Fatalf("over-cap error body %s", raw)
	}

	// Free a slot and the same submission is admitted.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/sweeps/"+ids[0], nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	var st SweepStatus
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		getJSON(t, ts, "/v2/sweeps/"+ids[0], &st)
		if st.State != StateRunning {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, raw = postJSON(t, ts, "/v1/sweeps", over)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-cancel sweep: status %d body %s", resp.StatusCode, raw)
	}
	// Drain: cancel everything still running so cleanup is fast.
	var last SweepStatus
	if err := json.Unmarshal(raw, &last); err != nil {
		t.Fatal(err)
	}
	for _, id := range append(ids[1:], last.ID) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/sweeps/"+id, nil)
		if dresp, err := http.DefaultClient.Do(req); err == nil {
			dresp.Body.Close()
		}
	}
}

// TestSweepCancelMidFlight: DELETE /v2/sweeps/{id} stops a running
// sweep cooperatively — running cells observe their context, queued
// cells never start, and the record stays observable as canceled.
func TestSweepCancelMidFlight(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxCycles: 500_000_000})
	resp, raw := postJSON(t, ts, "/v1/sweeps", SweepRequest{
		Workloads: []string{"8-MEM"},
		// Long enough that the sweep is mid-flight when the DELETE lands.
		WarmupCycles: 200_000_000, MeasureCycles: 200_000_000,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps: status %d body %s", resp.StatusCode, raw)
	}
	var st SweepStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/sweeps/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", dresp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	for st.State == StateRunning && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		getJSON(t, ts, "/v2/sweeps/"+st.ID, &st)
	}
	if st.State != StateCanceled || st.Canceled == 0 {
		t.Fatalf("canceled sweep state %q (canceled %d)", st.State, st.Canceled)
	}

	// Cancelling a terminal sweep is a conflict, like jobs.
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusConflict {
		t.Fatalf("second DELETE: status %d, want 409", dresp.StatusCode)
	}
}

func TestManagerDrainsOnShutdown(t *testing.T) {
	srv := New(Options{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		v := submitSim(t, ts, SimulationRequest{
			Policy: "dg", Workload: "2-ILP", Seed: uint64(i + 1),
			WarmupCycles: testWarmup, MeasureCycles: testMeasure,
		})
		ids = append(ids, v.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		v, ok := srv.mgr.Get(id)
		if !ok || v.State != StateDone {
			t.Fatalf("job %s not drained to done: %+v", id, v)
		}
	}
	if _, err := srv.mgr.Submit("sim", nil, nil); err != ErrShuttingDown {
		t.Fatalf("submit after shutdown: %v", err)
	}
}
