package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// ---- rate limiter unit tests ----

func TestRateLimiterRefillAndRetryAfter(t *testing.T) {
	l := newRateLimiter(2, 2) // 2 req/s, burst 2
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("a"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, wait := l.allow("a")
	if ok {
		t.Fatal("empty bucket allowed a request")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("Retry-After wait = %v, want (0, 1s] at 2 req/s", wait)
	}

	// A different client has its own budget.
	if ok, _ := l.allow("b"); !ok {
		t.Fatal("independent client denied")
	}

	// Half a second refills one token at 2 req/s.
	now = now.Add(500 * time.Millisecond)
	if ok, _ := l.allow("a"); !ok {
		t.Fatal("refilled token denied")
	}
	if ok, _ := l.allow("a"); ok {
		t.Fatal("second request after single-token refill allowed")
	}
}

func TestRateLimiterBoundsClientMap(t *testing.T) {
	l := newRateLimiter(1, 1)
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }
	for i := 0; i < maxRateClients+100; i++ {
		l.allow("client-" + strconv.Itoa(i))
	}
	l.mu.Lock()
	n := len(l.buckets)
	l.mu.Unlock()
	if n > maxRateClients {
		t.Fatalf("bucket map grew to %d (bound %d)", n, maxRateClients)
	}
}

func TestNewRateLimiterDisabled(t *testing.T) {
	if l := newRateLimiter(0, 10); l != nil {
		t.Fatal("rate 0 built a limiter")
	}
}

func TestBearerToken(t *testing.T) {
	r := httptest.NewRequest("GET", "/", nil)
	if got := bearerToken(r); got != "" {
		t.Fatalf("no header: %q", got)
	}
	r.Header.Set("Authorization", "Bearer s3cret")
	if got := bearerToken(r); got != "s3cret" {
		t.Fatalf("got %q", got)
	}
	r.Header.Set("Authorization", "bearer lower")
	if got := bearerToken(r); got != "lower" {
		t.Fatalf("case-insensitive scheme: %q", got)
	}
	r.Header.Set("Authorization", "Basic dXNlcg==")
	if got := bearerToken(r); got != "" {
		t.Fatalf("non-bearer scheme: %q", got)
	}
}

func TestRetryAfterHeader(t *testing.T) {
	if got := retryAfterHeader(0); got != "1" {
		t.Fatalf("zero wait: %q", got)
	}
	if got := retryAfterHeader(1500 * time.Millisecond); got != "2" {
		t.Fatalf("1.5s wait: %q", got)
	}
}

// ---- HTTP status matrix: 401 / 429 / 503 ----

func doGet(t *testing.T, ts *httptest.Server, path, token string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestAuthMatrix(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1, AuthToken: "hunter2"})

	// Probes stay open without credentials.
	for _, path := range []string{"/healthz", "/metrics"} {
		if resp := doGet(t, ts, path, ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s without token: %d", path, resp.StatusCode)
		}
	}

	// API routes: no token and wrong token get 401 + WWW-Authenticate.
	for _, token := range []string{"", "wrong", "hunter"} {
		resp := doGet(t, ts, "/v1/policies", token)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("token %q: status %d, want 401", token, resp.StatusCode)
		}
		if !strings.Contains(resp.Header.Get("WWW-Authenticate"), "Bearer") {
			t.Fatalf("token %q: missing WWW-Authenticate", token)
		}
	}
	if resp := doGet(t, ts, "/v1/policies", "hunter2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("valid token rejected: %d", resp.StatusCode)
	}
	if got := srv.metAuthFail.Value(); got != 3 {
		t.Fatalf("auth-failure counter = %d, want 3", got)
	}
}

func TestRateLimitMatrix(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1, RateLimit: 1, RateBurst: 2})

	// Probes are exempt even under rate limiting... but they share no
	// budget anyway; hit the API until the burst is spent.
	limited := 0
	var last *http.Response
	for i := 0; i < 5; i++ {
		last = doGet(t, ts, "/v1/policies", "")
		if last.StatusCode == http.StatusTooManyRequests {
			limited++
		}
	}
	if limited == 0 {
		t.Fatal("burst 2 never produced a 429 in 5 requests")
	}
	if ra := last.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q", ra)
	}
	if srv.metRateLimited.Value() == 0 {
		t.Fatal("rate-limited counter did not move")
	}

	// Probes never count against (or get caught by) the limiter.
	for i := 0; i < 10; i++ {
		if resp := doGet(t, ts, "/healthz", ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz under rate limit: %d", resp.StatusCode)
		}
	}
}

func TestLoadShedMatrix(t *testing.T) {
	srv, ts := newTestServer(t, Options{
		Workers: 1, QueueDepth: 1, MaxActiveSweeps: 1, MaxCycles: 500_000_000,
	})
	long := SimulationRequest{
		Policy: "icount", Workload: "8-MEM",
		WarmupCycles: 200_000_000, MeasureCycles: 200_000_000,
	}
	running := submitSim(t, ts, long)
	waitJob(t, ts, running.ID, StateRunning)
	queued := long
	queued.Seed = 2
	submitSim(t, ts, queued)

	// Queue full: the middleware sheds before reading the body.
	rejected := long
	rejected.Seed = 3
	resp, raw := postJSON(t, ts, "/v1/simulations", rejected)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submit: status %d body %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 503 without Retry-After")
	}
	if srv.metShed.Value() == 0 {
		t.Fatal("load-shed counter did not move")
	}

	// Sweep bound: one active sweep saturates MaxActiveSweeps=1.
	sweepReq := SweepRequest{
		Policies: []string{"icount"}, Workloads: []string{"8-MEM"},
		Seed: 10, WarmupCycles: 200_000_000, MeasureCycles: 200_000_000,
	}
	resp, raw = postJSON(t, ts, "/v1/sweeps", sweepReq)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first sweep: status %d body %s", resp.StatusCode, raw)
	}
	var st SweepStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	over := sweepReq
	over.Seed = 11
	resp, _ = postJSON(t, ts, "/v1/sweeps", over)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap sweep: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("sweep shed 503 without Retry-After")
	}

	// Drain for fast cleanup.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/sweeps/"+st.ID, nil)
	if dresp, err := http.DefaultClient.Do(req); err == nil {
		dresp.Body.Close()
	}
}

// Fabric RPC routes authenticate but are exempt from the rate limiter:
// worker heartbeats are frequent by design.
func TestFabricRoutesExemptFromRateLimit(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers: 1, RateLimit: 1, RateBurst: 1,
		Fabric: &FabricOptions{LocalWorkers: 1},
	})
	// Exhaust the budget on an API route.
	doGet(t, ts, "/v1/policies", "")
	for i := 0; i < 5; i++ {
		resp, _ := postJSON(t, ts, "/v2/fabric/lease", map[string]any{
			"worker_id": "w-none", "max": 1, "wait_ms": 1,
		})
		if resp.StatusCode == http.StatusTooManyRequests {
			t.Fatalf("fabric lease rate-limited on attempt %d", i)
		}
	}
}
