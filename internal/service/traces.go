package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"dwarn/internal/trace"
)

// TraceStore holds uploaded uop traces in memory, keyed by content
// digest, with LRU eviction bounded by entry count and total payload
// bytes. Uploads are idempotent: re-posting an identical trace refreshes
// its LRU slot and returns the same id. Traces are immutable after
// load, so concurrently running simulations keep working against an
// evicted trace — eviction only removes the id from the index.
type TraceStore struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64

	byDigest map[string]*storedTrace
	order    []string // LRU: oldest first
	bytes    int64
}

type storedTrace struct {
	tr         *trace.Trace
	size       int64
	uploadedAt time.Time
}

// NewTraceStore bounds the store at maxEntries traces and maxBytes of
// total decompressed payload.
func NewTraceStore(maxEntries int, maxBytes int64) *TraceStore {
	return &TraceStore{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		byDigest:   make(map[string]*storedTrace),
	}
}

// Add stores tr (size is its payload footprint) and returns its id.
func (s *TraceStore) Add(tr *trace.Trace, size int64) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := tr.Digest
	if old, ok := s.byDigest[id]; ok {
		old.uploadedAt = time.Now()
		s.touch(id)
		return id
	}
	s.byDigest[id] = &storedTrace{tr: tr, size: size, uploadedAt: time.Now()}
	s.order = append(s.order, id)
	s.bytes += size
	for (len(s.order) > s.maxEntries || s.bytes > s.maxBytes) && len(s.order) > 1 {
		victim := s.order[0]
		s.order = s.order[1:]
		s.bytes -= s.byDigest[victim].size
		delete(s.byDigest, victim)
	}
	return id
}

// touch moves id to the most-recently-used position.
func (s *TraceStore) touch(id string) {
	for i, d := range s.order {
		if d == id {
			s.order = append(append(s.order[:i:i], s.order[i+1:]...), id)
			return
		}
	}
}

// Get resolves an id — a full digest or an unambiguous prefix of at
// least 8 hex characters — and refreshes its LRU slot.
func (s *TraceStore) Get(id string) (*trace.Trace, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.byDigest[id]; ok {
		s.touch(id)
		return st.tr, nil
	}
	if len(id) >= 8 {
		var matches []string
		for d := range s.byDigest {
			if strings.HasPrefix(d, id) {
				matches = append(matches, d)
			}
		}
		switch len(matches) {
		case 1:
			s.touch(matches[0])
			return s.byDigest[matches[0]].tr, nil
		case 0:
		default:
			return nil, fmt.Errorf("service: trace id %q is ambiguous (%d matches)", id, len(matches))
		}
	}
	return nil, fmt.Errorf("service: no trace %q (upload via POST /v1/traces)", id)
}

// TraceView is the JSON shape of a stored trace.
type TraceView struct {
	ID         string    `json:"id"`
	Workload   string    `json:"workload"`
	Seed       uint64    `json:"seed"`
	Threads    int       `json:"threads"`
	Benchmarks []string  `json:"benchmarks"`
	Uops       uint64    `json:"uops"`
	Bytes      int64     `json:"bytes"`
	UploadedAt time.Time `json:"uploaded_at"`
}

// List returns all stored traces, most recently used last.
func (s *TraceStore) List() []TraceView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.view(id))
	}
	return out
}

func (s *TraceStore) view(id string) TraceView {
	st := s.byDigest[id]
	return TraceView{
		ID:         id,
		Workload:   st.tr.Workload,
		Seed:       st.tr.Seed,
		Threads:    len(st.tr.Threads),
		Benchmarks: st.tr.Benchmarks(),
		Uops:       st.tr.Uops(),
		Bytes:      st.size,
		UploadedAt: st.uploadedAt,
	}
}

// ResolveTrace implements spec.TraceResolver: spec workload trace
// references are store ids (content digests or unambiguous prefixes).
func (s *TraceStore) ResolveTrace(ref string) (*trace.Trace, error) { return s.Get(ref) }

// Len reports the number of stored traces (for /healthz).
func (s *TraceStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byDigest)
}

// ---- handlers ----

// handleUploadTrace accepts a raw binary trace file body, validates it,
// and stores it content-addressed. 201 on first upload, 200 on a
// re-upload of identical content.
func (s *Server) handleUploadTrace(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxTraceBytes)
	tr, err := trace.Read(body, s.opts.MaxTracePayload)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	size := tr.PayloadBytes()
	status := http.StatusCreated
	if _, err := s.traces.Get(tr.Digest); err == nil {
		status = http.StatusOK
	}
	id := s.traces.Add(tr, size)
	v, _ := s.traceView(id)
	writeJSON(w, status, v)
}

func (s *Server) traceView(id string) (TraceView, bool) {
	for _, v := range s.traces.List() {
		if v.ID == id {
			return v, true
		}
	}
	return TraceView{}, false
}

func (s *Server) handleListTraces(w http.ResponseWriter, r *http.Request) {
	views := s.traces.List()
	sort.Slice(views, func(i, j int) bool { return views[i].UploadedAt.Before(views[j].UploadedAt) })
	writeJSON(w, http.StatusOK, map[string]any{"traces": views})
}

func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, err := s.traces.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	v, _ := s.traceView(tr.Digest)
	writeJSON(w, http.StatusOK, v)
}
