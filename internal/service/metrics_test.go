package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dwarn/internal/exec"
	"dwarn/internal/obs"
	"dwarn/internal/spec"
)

// scrapeMetrics fetches /metrics and parses it with the strict text
// validator, so every scrape doubles as a format check.
func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	m, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	return m
}

// seriesWithPrefix returns the parsed series whose full name (including
// the label block) starts with prefix.
func seriesWithPrefix(m map[string]float64, prefix string) map[string]float64 {
	out := map[string]float64{}
	for k, v := range m {
		if strings.HasPrefix(k, prefix) {
			out[k] = v
		}
	}
	return out
}

func waitSweepDone(t *testing.T, ts *httptest.Server, st *SweepStatus) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for st.State == StateRunning && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		getJSON(t, ts, "/v2/sweeps/"+st.ID, st)
	}
	if st.State != StateDone {
		t.Fatalf("sweep finished in state %q (%d/%d done)", st.State, st.Done, st.Total)
	}
}

// TestMetricsEndpoint is the acceptance check for GET /metrics: after a
// sweep completes, one scrape parses as valid Prometheus text and
// carries the whole stack's core series — queue depth, result-cache
// hits/misses, executor throughput, and per-policy run-time histograms.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	// Before any work: the endpoint already serves the registered
	// gauges, and a scrape is itself an HTTP request.
	m := scrapeMetrics(t, ts)
	if _, ok := m["dwarn_jobs_queue_depth"]; !ok {
		t.Fatalf("missing dwarn_jobs_queue_depth; series: %d", len(m))
	}
	if _, ok := m["dwarn_cache_hits_total"]; !ok {
		t.Fatal("missing dwarn_cache_hits_total")
	}
	if _, ok := m["dwarn_cache_misses_total"]; !ok {
		t.Fatal("missing dwarn_cache_misses_total")
	}

	sweep := spec.SweepSpec{
		Policies:     []spec.PolicyAxis{{Name: "icount"}, {Name: "dwarn"}},
		Workloads:    []spec.Workload{{Name: "2-MIX"}, {Name: "2-MEM"}},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	}
	resp, raw := postJSON(t, ts, "/v2/sweeps", sweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v2/sweeps: status %d body %s", resp.StatusCode, raw)
	}
	var st SweepStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	waitSweepDone(t, ts, &st)

	m = scrapeMetrics(t, ts)

	// Executor: all four cells ran (none could be cached on a fresh
	// server), and the batch throughput gauge was published.
	if got := m[`dwarn_exec_cells_total{state="done"}`]; got != 4 {
		t.Fatalf("dwarn_exec_cells_total{state=done} = %v, want 4", got)
	}
	if got := m["dwarn_exec_cells_per_second"]; got <= 0 {
		t.Fatalf("dwarn_exec_cells_per_second = %v, want > 0", got)
	}

	// Per-policy run-time histograms: each policy observed twice (two
	// workloads), with a positive total run time.
	for _, policy := range []string{"icount", "dwarn"} {
		count := `dwarn_exec_cell_seconds_count{policy="` + policy + `"}`
		if got := m[count]; got != 2 {
			t.Fatalf("%s = %v, want 2", count, got)
		}
		sum := `dwarn_exec_cell_seconds_sum{policy="` + policy + `"}`
		if got := m[sum]; got <= 0 {
			t.Fatalf("%s = %v, want > 0", sum, got)
		}
		if len(seriesWithPrefix(m, `dwarn_exec_cell_seconds_bucket{policy="`+policy+`"`)) == 0 {
			t.Fatalf("no cumulative buckets for policy %q", policy)
		}
	}

	// Engine snapshots land on obs.Default and are merged into the same
	// scrape. They are labelled with the engine's policy display names
	// ("ICOUNT", "DWarn"), and obs.Default is process-wide — other tests
	// in this package run simulations too — so assert floors, not exact
	// counts.
	if got := m[`dwarn_sim_runs_total{policy="ICOUNT"}`]; got < 2 {
		t.Fatalf("dwarn_sim_runs_total{policy=ICOUNT} = %v, want >= 2", got)
	}
	if got := m[`dwarn_sim_runs_total{policy="DWarn"}`]; got < 2 {
		t.Fatalf("dwarn_sim_runs_total{policy=DWarn} = %v, want >= 2", got)
	}
	if len(seriesWithPrefix(m, `dwarn_sim_run_seconds_bucket{policy="DWarn"`)) == 0 {
		t.Fatal("no dwarn_sim_run_seconds buckets for policy DWarn")
	}
	if got := m["dwarn_sim_cycles_per_second"]; got <= 0 {
		t.Fatalf("dwarn_sim_cycles_per_second = %v, want > 0", got)
	}

	// Checkpoint/fork engine (always on in the service): the sweep's four
	// cells form two (machine, workload, seed) groups, so at least two
	// warmed cold and published (misses) and at least two forked (hits).
	// obs.Default is process-wide, so assert floors, not exact counts.
	if got := m["dwarn_ckpt_misses_total"]; got < 2 {
		t.Fatalf("dwarn_ckpt_misses_total = %v, want >= 2", got)
	}
	if got := m["dwarn_ckpt_hits_total"]; got < 2 {
		t.Fatalf("dwarn_ckpt_hits_total = %v, want >= 2", got)
	}
	if got := m["dwarn_ckpt_bytes"]; got <= 0 {
		t.Fatalf("dwarn_ckpt_bytes = %v, want > 0", got)
	}

	// HTTP middleware: the sweep submission was counted under its route
	// pattern with a 202, and latency histograms exist.
	if got := m[`dwarn_http_requests_total{code="202",route="POST /v2/sweeps"}`]; got != 1 {
		t.Fatalf("dwarn_http_requests_total for POST /v2/sweeps = %v, want 1", got)
	}
	if len(seriesWithPrefix(m, `dwarn_http_request_seconds_bucket{route="POST /v2/sweeps"`)) == 0 {
		t.Fatal("no latency buckets for POST /v2/sweeps")
	}
}

// TestMetricsCacheAccounting: a sweep submitted twice must show the
// second pass as pure cache hits — the store counters move by exactly
// the cell count with zero new misses, and the replayed SSE stream's
// cached flags agree with the counters.
func TestMetricsCacheAccounting(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	sweep := spec.SweepSpec{
		Policies:     []spec.PolicyAxis{{Name: "icount"}, {Name: "dwarn"}},
		Workloads:    []spec.Workload{{Name: "2-MIX"}, {Name: "2-MEM"}},
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	}
	resp, raw := postJSON(t, ts, "/v2/sweeps", sweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v2/sweeps: status %d body %s", resp.StatusCode, raw)
	}
	var st SweepStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	waitSweepDone(t, ts, &st)

	before := scrapeMetrics(t, ts)
	if before["dwarn_exec_store_misses_total"] == 0 {
		t.Fatal("first pass recorded no store misses")
	}
	if before["dwarn_exec_store_puts_total"] != 4 {
		t.Fatalf("dwarn_exec_store_puts_total = %v, want 4", before["dwarn_exec_store_puts_total"])
	}

	// Second submission: the submit-time store precheck satisfies every
	// cell, so the sweep is terminal on arrival.
	resp, raw = postJSON(t, ts, "/v2/sweeps", sweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("repeat POST /v2/sweeps: status %d body %s", resp.StatusCode, raw)
	}
	var again SweepStatus
	if err := json.Unmarshal(raw, &again); err != nil {
		t.Fatal(err)
	}
	if again.State != StateDone || again.Done != again.Total {
		t.Fatalf("repeat sweep not served from cache: state %q %d/%d", again.State, again.Done, again.Total)
	}
	cachedCells := 0
	for _, cell := range again.Cells {
		if cell.Cached {
			cachedCells++
		}
	}
	if cachedCells != again.Total {
		t.Fatalf("%d/%d repeat cells marked cached", cachedCells, again.Total)
	}

	after := scrapeMetrics(t, ts)
	hits := after["dwarn_exec_store_hits_total"] - before["dwarn_exec_store_hits_total"]
	misses := after["dwarn_exec_store_misses_total"] - before["dwarn_exec_store_misses_total"]
	if hits != float64(again.Total) {
		t.Fatalf("second pass store hits = %v, want %d (one per cell)", hits, again.Total)
	}
	if misses != 0 {
		t.Fatalf("second pass store misses = %v, want 0", misses)
	}
	// The precheck serves cached cells at submit time without ever
	// entering the executor, so the executor's own cached-cell counter
	// must not move — the second pass is visible purely as store hits.
	if got := after[`dwarn_exec_cells_total{state="cached"}`]; got != 0 {
		t.Fatalf("dwarn_exec_cells_total{state=cached} = %v, want 0 (precheck bypasses the executor)", got)
	}

	// The SSE replay of the cached sweep must tell the same story: every
	// cell frame is a cached terminal transition.
	es, err := http.Get(ts.URL + "/v2/sweeps/" + again.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	cachedFrames, otherFrames := 0, 0
	var event string
	sc := bufio.NewScanner(es.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "cell":
			var ev SweepEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad cell frame: %v", err)
			}
			if ev.State == exec.CellCached {
				cachedFrames++
			} else {
				otherFrames++
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if cachedFrames != again.Total || otherFrames != 0 {
		t.Fatalf("SSE replay: %d cached + %d other frames, want %d cached only",
			cachedFrames, otherFrames, again.Total)
	}
}
