package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dwarn/internal/trace"
	"dwarn/internal/workload"
)

// recordTestTrace builds a small trace of wlName in memory.
func recordTestTrace(t *testing.T, wlName string, seed uint64, uops int) []byte {
	t.Helper()
	wl, err := workload.GetWorkload(wlName)
	if err != nil {
		t.Fatal(err)
	}
	srcs, err := wl.Generators(seed)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(wl.Name, seed)
	for _, src := range srcs {
		rec := w.Record(src)
		for i := 0; i < uops; i++ {
			rec.Next()
		}
	}
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func uploadTrace(t *testing.T, ts *httptest.Server, raw []byte) (TraceView, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var v TraceView
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("bad trace view %q: %v", body, err)
		}
	}
	return v, resp
}

func TestTraceUploadAndInfo(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	raw := recordTestTrace(t, "2-MIX", 42, 30000)

	v, resp := uploadTrace(t, ts, raw)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first upload status %d", resp.StatusCode)
	}
	if v.ID == "" || v.Threads != 2 || v.Workload != "2-MIX" || v.Uops != 60000 {
		t.Fatalf("trace view %+v", v)
	}

	// Idempotent re-upload: same id, 200.
	v2, resp2 := uploadTrace(t, ts, raw)
	if resp2.StatusCode != http.StatusOK || v2.ID != v.ID {
		t.Fatalf("re-upload status %d id %s (want 200, %s)", resp2.StatusCode, v2.ID, v.ID)
	}

	var list struct {
		Traces []TraceView `json:"traces"`
	}
	getJSON(t, ts, "/v1/traces", &list)
	if len(list.Traces) != 1 || list.Traces[0].ID != v.ID {
		t.Fatalf("trace list %+v", list)
	}

	var one TraceView
	if resp := getJSON(t, ts, "/v1/traces/"+v.ID[:12], &one); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET by prefix status %d", resp.StatusCode)
	}
	if one.ID != v.ID {
		t.Fatalf("prefix lookup got %s", one.ID)
	}
}

func TestTraceUploadRejectsCorrupt(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	raw := recordTestTrace(t, "2-ILP", 5, 2000)
	raw[len(raw)/2] ^= 0x40
	if _, resp := uploadTrace(t, ts, raw); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt upload status %d, want 400", resp.StatusCode)
	}
	if _, resp := uploadTrace(t, ts, []byte("not a trace")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk upload status %d, want 400", resp.StatusCode)
	}
}

// TestTraceSimulationMatchesSynthetic uploads a trace and runs it via
// the API: the result must match the synthetic run of the same
// workload/seed exactly, and repeat submissions must hit the cache.
func TestTraceSimulationMatchesSynthetic(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	raw := recordTestTrace(t, "2-MIX", 42, 60000)
	v, _ := uploadTrace(t, ts, raw)

	synthetic := submitSim(t, ts, SimulationRequest{
		Policy: "dwarn", Workload: "2-MIX", Seed: 42,
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	})
	traced := submitSim(t, ts, SimulationRequest{
		Policy: "dwarn", Trace: v.ID,
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	})
	sDone := waitJob(t, ts, synthetic.ID, StateDone)
	tDone := waitJob(t, ts, traced.ID, StateDone)

	sr, err := decodeSim(sDone.Result)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := decodeSim(tDone.Result)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Fingerprint == tr.Fingerprint {
		t.Fatal("trace and synthetic runs share a fingerprint")
	}
	if tr.Result.Throughput != sr.Result.Throughput {
		t.Fatalf("trace throughput %v, synthetic %v", tr.Result.Throughput, sr.Result.Throughput)
	}
	for i := range sr.Result.Threads {
		if tr.Result.Threads[i].IPC != sr.Result.Threads[i].IPC {
			t.Fatalf("t%d IPC %v vs %v", i, tr.Result.Threads[i].IPC, sr.Result.Threads[i].IPC)
		}
	}

	// Identical repeat: served from cache.
	again := submitSim(t, ts, SimulationRequest{
		Policy: "dwarn", Trace: v.ID,
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	})
	if done := waitJob(t, ts, again.ID, StateDone); !done.Cached {
		t.Fatal("repeat trace run not served from cache")
	}
}

func TestTraceSweep(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	raw := recordTestTrace(t, "2-MEM", 7, 60000)
	v, _ := uploadTrace(t, ts, raw)

	resp, body := postJSON(t, ts, "/v1/sweeps", SweepRequest{
		Policies:     []string{"icount", "dwarn"},
		Trace:        v.ID,
		WarmupCycles: testWarmup, MeasureCycles: testMeasure,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep status %d body %s", resp.StatusCode, body)
	}
	var st SweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Total != 2 {
		t.Fatalf("sweep total %d, want 2", st.Total)
	}
	deadline := time.Now().Add(120 * time.Second)
	for st.State == StateRunning && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		getJSON(t, ts, "/v1/sweeps/"+st.ID, &st)
	}
	if st.State != StateDone {
		t.Fatalf("trace sweep finished in state %q (%d/%d done)", st.State, st.Done, st.Total)
	}
	for _, cell := range st.Cells {
		if cell.Trace != v.ID {
			t.Fatalf("cell trace %q", cell.Trace)
		}
		if cell.Throughput == nil || *cell.Throughput <= 0 {
			t.Fatalf("cell %s/%s missing throughput", cell.Machine, cell.Policy)
		}
		// The sweep cell landed in the shared cache: a direct run of the
		// same spec completes at submission time.
		again := submitSim(t, ts, SimulationRequest{
			Policy: cell.Policy, Trace: v.ID,
			WarmupCycles: testWarmup, MeasureCycles: testMeasure,
		})
		done := waitJob(t, ts, again.ID, StateDone)
		if !done.Cached {
			t.Fatalf("cell %s not shared with the run cache", cell.Policy)
		}
		sr, err := decodeSim(done.Result)
		if err != nil {
			t.Fatal(err)
		}
		if len(sr.Result.Threads) != 2 || sr.Result.Throughput != *cell.Throughput {
			t.Fatalf("cell %s/%s result mismatch with cache", cell.Machine, cell.Policy)
		}
	}
}

func TestTraceRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	raw := recordTestTrace(t, "2-ILP", 3, 2000)
	v, _ := uploadTrace(t, ts, raw)

	bad := []SimulationRequest{
		{Policy: "dwarn", Trace: "deadbeef00"},                       // unknown trace
		{Policy: "dwarn", Trace: v.ID, Workload: "2-MIX"},            // both set
		{Policy: "dwarn", Trace: v.ID, Benchmarks: []string{"gzip"}}, // both set
		{Policy: "dwarn", Trace: v.ID, Baselines: true},              // baselines unsupported
		{Policy: "nope", Trace: v.ID},                                // bad policy
	}
	for i, req := range bad {
		if resp, body := postJSON(t, ts, "/v1/simulations", req); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad request %d accepted: status %d body %s", i, resp.StatusCode, body)
		}
	}

	// Trace sweep with workloads too must be rejected.
	if resp, _ := postJSON(t, ts, "/v1/sweeps", SweepRequest{
		Workloads: []string{"2-MIX"}, Trace: v.ID,
	}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("sweep with both workloads and trace accepted: %d", resp.StatusCode)
	}

	// A 404 for info on an unknown trace.
	if resp := getJSON(t, ts, "/v1/traces/0000000000000000", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace info status %d", resp.StatusCode)
	}
}

func TestTraceStoreEviction(t *testing.T) {
	s := NewTraceStore(2, 1<<30)
	mk := func(seed uint64) *trace.Trace {
		raw := recordTestTrace(t, "2-ILP", seed, 500)
		tr, err := trace.Read(bytes.NewReader(raw), 0)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b, c := mk(1), mk(2), mk(3)
	s.Add(a, a.PayloadBytes())
	s.Add(b, b.PayloadBytes())
	if _, err := s.Get(a.Digest); err != nil {
		t.Fatal("a evicted too early")
	}
	// a is now most-recently used; adding c evicts b.
	s.Add(c, c.PayloadBytes())
	if _, err := s.Get(b.Digest); err == nil {
		t.Fatal("b survived eviction")
	}
	if _, err := s.Get(a.Digest); err != nil {
		t.Fatal("a lost")
	}
	if _, err := s.Get(c.Digest); err != nil {
		t.Fatal("c lost")
	}
	if s.Len() != 2 {
		t.Fatalf("len %d", s.Len())
	}
}
