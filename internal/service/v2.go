package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"dwarn/internal/core"
	"dwarn/internal/spec"
)

// The /v2 API speaks internal/spec natively: POST /v2/runs takes a
// spec.RunSpec, POST /v2/sweeps a spec.SweepSpec. Both are resolved
// through exactly the code path the /v1 adapters use, so a run has one
// fingerprint and one cache entry regardless of which API version (or
// which CLI) asked for it. Jobs and sweeps share the /v1 id spaces:
// a job submitted on one version can be polled on the other. Sweeps
// additionally expose partial progress (GET /v2/sweeps/{id}), a live
// SSE completion stream (GET /v2/sweeps/{id}/events), and cooperative
// cancellation (DELETE /v2/sweeps/{id}).

// RunAccepted is the response of POST /v2/runs: the job plus the
// content-addressed identity of the run it executes (or was served
// from cache for).
type RunAccepted struct {
	JobView
	Fingerprint string `json:"fingerprint"`
	// Canonical is the canonical form of the submitted spec: defaults
	// applied, machine fully resolved, policy parameters completed.
	Canonical *spec.RunSpec `json:"canonical,omitempty"`
}

func (s *Server) routesV2() {
	s.mux.HandleFunc("GET /v2/policies", s.handlePoliciesV2)
	s.mux.HandleFunc("POST /v2/runs", s.handleSubmitRunV2)
	s.mux.HandleFunc("GET /v2/runs", s.handleListSimulations)
	s.mux.HandleFunc("GET /v2/runs/{id}", s.handleGetSimulation)
	s.mux.HandleFunc("GET /v2/runs/{id}/timeline", s.handleRunTimeline)
	s.mux.HandleFunc("DELETE /v2/runs/{id}", s.handleCancelSimulation)
	s.mux.HandleFunc("POST /v2/sweeps", s.handleSubmitSweepV2)
	s.mux.HandleFunc("GET /v2/sweeps/{id}", s.handleGetSweep)
	s.mux.HandleFunc("GET /v2/sweeps/{id}/events", s.handleSweepEvents)
	s.mux.HandleFunc("DELETE /v2/sweeps/{id}", s.handleCancelSweep)
	if s.fabric != nil {
		s.fabric.Routes(s.mux)
	} else {
		s.mux.HandleFunc("GET /v2/fabric", s.handleFabricDisabled)
	}
}

// handlePoliciesV2 lists the registry with its declared parameters —
// the data a client needs to build parameterised policy references and
// sweep grids without guessing.
func (s *Server) handlePoliciesV2(w http.ResponseWriter, r *http.Request) {
	type policy struct {
		Name   string           `json:"name"`
		Params []core.ParamSpec `json:"params,omitempty"`
	}
	var out []policy
	for _, name := range core.Policies() {
		params, err := core.PolicyParams(name)
		if err != nil {
			continue
		}
		out = append(out, policy{Name: name, Params: params})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"policies": out,
		"paper":    core.PaperPolicies(),
	})
}

func (s *Server) handleSubmitRunV2(w http.ResponseWriter, r *http.Request) {
	var rs spec.RunSpec
	if !s.decode(w, r, &rs) {
		return
	}
	res, err := s.resolveSpec(rs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := s.submitResolved(r.Context(), res, res.Spec)
	if err != nil {
		submitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, RunAccepted{JobView: v, Fingerprint: res.Fingerprint, Canonical: &res.Spec})
}

// handleRunTimeline returns a finished run's interval frames. Timeline
// sampling is non-semantic (it never changes a run's fingerprint), so a
// run whose result was served from a cache entry computed without
// sampling legitimately has no frames — that case is a 404 naming the
// cause, not an empty timeline.
func (s *Server) handleRunTimeline(w http.ResponseWriter, r *http.Request) {
	v, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no job %q", r.PathValue("id")))
		return
	}
	if v.State != StateDone {
		writeError(w, http.StatusConflict, fmt.Errorf("service: job %q is %s, not done", v.ID, v.State))
		return
	}
	sr, err := decodeSim(v.Result)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if sr.Result == nil || sr.Result.Timeline == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf(
			"service: run %q has no timeline: the spec did not request sampling, or the result was served from a cache entry computed without it", v.ID))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":          v.ID,
		"fingerprint": sr.Fingerprint,
		"timeline":    sr.Result.Timeline,
	})
}

// Preload expands a spec file and submits every cell, warming the
// result cache before traffic arrives (dwarnd's -spec flag). Cells are
// bounded like any sweep; trace references would resolve against the
// trace store, which is empty at startup, so preload specs are
// synthetic-workload only in practice.
//
// Every cell is resolved (validated) before anything is submitted, so
// a bad spec file fails without side effects. Submission itself is
// best-effort against the bounded job queue: a grid larger than the
// free queue depth stops at ErrQueueFull, returning the views admitted
// so far alongside the error — those keep warming the cache, and the
// caller decides whether a partial preload is fatal.
func (s *Server) Preload(f *spec.File) ([]JobView, error) {
	runs, err := f.Runs(s.opts.MaxSweepCells)
	if err != nil {
		return nil, err
	}
	resolved := make([]*spec.Resolved, len(runs))
	for i, rs := range runs {
		if resolved[i], err = s.resolveSpec(rs); err != nil {
			return nil, err
		}
	}
	views := make([]JobView, 0, len(resolved))
	for _, res := range resolved {
		v, err := s.submitResolved(context.Background(), res, res.Spec)
		if err != nil {
			if errors.Is(err, ErrQueueFull) {
				return views, fmt.Errorf("%w after %d of %d runs", err, len(views), len(resolved))
			}
			return views, err
		}
		views = append(views, v)
	}
	return views, nil
}

func (s *Server) handleSubmitSweepV2(w http.ResponseWriter, r *http.Request) {
	var ss spec.SweepSpec
	if !s.decode(w, r, &ss) {
		return
	}
	cells, err := s.resolveSweep(ss)
	if err != nil {
		// Validation failures — including a grid that fans out beyond
		// the configured cell bound (spec.ErrTooManyCells names the
		// limit) — are client errors, reported before any job exists.
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.submitSweep(w, r, cells)
}
