package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// CounterDigest folds every per-thread counter the simulator reports —
// pipeline, memory hierarchy, branch predictor — plus the cycle count
// into one hex SHA-256. Any behavioural difference between two runs
// moves at least one counter and therefore the digest, which makes it
// the equality oracle behind the golden-digest regression test and the
// parallel-vs-serial sweep determinism guard: two Results digest equal
// iff the simulations behaved identically, cycle for cycle.
func (r *Result) CounterDigest() string {
	h := sha256.New()
	fmt.Fprintf(h, "cycles=%d\n", r.Cycles)
	for i := range r.Threads {
		t := &r.Threads[i]
		fmt.Fprintf(h, "t%d %s pipeline=%+v mem=%+v bpred=%+v\n",
			i, t.Benchmark, t.Pipeline, t.Mem, t.Bpred)
	}
	return hex.EncodeToString(h.Sum(nil))
}
