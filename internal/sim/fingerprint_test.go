package sim

import (
	"context"
	"testing"
	"time"

	"dwarn/internal/config"
	"dwarn/internal/core"
	"dwarn/internal/workload"
)

func testOpts(t *testing.T) Options {
	t.Helper()
	wl, err := workload.GetWorkload("2-MIX")
	if err != nil {
		t.Fatal(err)
	}
	return Options{Policy: "dwarn", Workload: wl, WarmupCycles: 1000, MeasureCycles: 2000}
}

func TestFingerprintStableAndSensitive(t *testing.T) {
	base := testOpts(t)
	fp := Fingerprint(base, "")
	if fp == "" || fp != Fingerprint(base, "") {
		t.Fatal("fingerprint not stable")
	}

	// Defaults are applied before hashing: explicit defaults and zero
	// values are the same simulation.
	explicit := base
	explicit.Config = config.Baseline()
	explicit.Seed = DefaultSeed
	if Fingerprint(explicit, "") != fp {
		t.Error("explicit defaults changed the fingerprint")
	}

	variants := map[string]Options{}
	v := base
	v.Seed = 99
	variants["seed"] = v
	v = base
	v.Policy = "icount"
	variants["policy"] = v
	v = base
	v.MeasureCycles = 4000
	variants["measure"] = v
	v = base
	v.Config = config.Deep()
	variants["machine"] = v
	v = base
	v.Workload, _ = workload.GetWorkload("2-MEM")
	variants["workload"] = v
	for name, opt := range variants {
		if Fingerprint(opt, "") == fp {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}

	if Fingerprint(base, "stall-t6") == fp {
		t.Error("policyID override did not change the fingerprint")
	}
}

// TestFingerprintPolicyInstanceParams: a parameterised instance must not
// collide with the default-parameter instance of the same policy, even
// though both share a Name() — the bug that made threshold sweeps alias
// the base policy's cache entries.
func TestFingerprintPolicyInstanceParams(t *testing.T) {
	base := testOpts(t)
	base.Policy = ""

	def := base
	def.PolicyInstance = core.NewSTALL()
	tuned := base
	tuned.PolicyInstance = core.NewSTALLThreshold(25)
	if Fingerprint(def, "") == Fingerprint(tuned, "") {
		t.Error("STALL threshold variant collides with default STALL")
	}

	dgDef := base
	dgDef.PolicyInstance = core.NewDG()
	dgTuned := base
	dgTuned.PolicyInstance = core.NewDGThreshold(2)
	if Fingerprint(dgDef, "") == Fingerprint(dgTuned, "") {
		t.Error("DG gate-count variant collides with default DG")
	}

	// Stability: the same parameters hash identically.
	tuned2 := base
	tuned2.PolicyInstance = core.NewSTALLThreshold(25)
	if Fingerprint(tuned, "") != Fingerprint(tuned2, "") {
		t.Error("parameterised instance fingerprint unstable")
	}

	// An explicit policyID label still wins over instance params.
	if Fingerprint(tuned, "stall-t25") == Fingerprint(tuned, "") {
		t.Error("explicit policyID should override the instance identity")
	}
}

func TestRunContextCancel(t *testing.T) {
	opts := testOpts(t)
	opts.WarmupCycles = 100_000_000
	opts.MeasureCycles = 100_000_000
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := RunContext(ctx, opts); err != context.Canceled {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
}
