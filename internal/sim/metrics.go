package sim

import (
	"sync"
	"time"

	"dwarn/internal/obs"
)

// Run metrics are a cheap end-of-run snapshot recorded once per
// simulation on obs.Default, entirely outside the cycle loop — the
// engine's zero-allocation steady state (TestStepZeroAllocSteadyState)
// is untouched. dwarnd merges obs.Default into /metrics, and
// `smtsim -metrics` dumps it, so the same series describe a run no
// matter which frontend asked for it.
var runMetrics struct {
	once sync.Once

	runs      func(policy string) *obs.Counter
	seconds   func(policy string) *obs.Histogram
	errors    *obs.Counter
	cycles    *obs.Counter
	uops      *obs.Counter
	cyclesSec *obs.Gauge
	uopsSec   *obs.Gauge

	frames      func(policy string) *obs.Counter
	gateCycles  func(policy, class string) *obs.Counter
	intervalIPC func(policy string) *obs.Histogram

	mu        sync.Mutex
	byPolicyC map[string]*obs.Counter
	byPolicyH map[string]*obs.Histogram
	byKeyC    map[string]*obs.Counter
	byKeyH    map[string]*obs.Histogram
}

// ipcBuckets covers per-interval aggregate IPC on the repo's machines
// (an 8-wide fetch engine commits 0–6 uops/cycle in practice).
var ipcBuckets = []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 2.5, 3, 3.5, 4, 5, 6}

func initRunMetrics() {
	r := obs.Default
	runMetrics.byPolicyC = make(map[string]*obs.Counter)
	runMetrics.byPolicyH = make(map[string]*obs.Histogram)
	runMetrics.runs = func(policy string) *obs.Counter {
		runMetrics.mu.Lock()
		defer runMetrics.mu.Unlock()
		c, ok := runMetrics.byPolicyC[policy]
		if !ok {
			c = r.Counter("dwarn_sim_runs_total", "Completed simulations by fetch policy.", obs.L("policy", policy))
			runMetrics.byPolicyC[policy] = c
		}
		return c
	}
	runMetrics.seconds = func(policy string) *obs.Histogram {
		runMetrics.mu.Lock()
		defer runMetrics.mu.Unlock()
		h, ok := runMetrics.byPolicyH[policy]
		if !ok {
			h = r.Histogram("dwarn_sim_run_seconds", "Wall time of one complete simulation (warmup + measurement), by fetch policy.", obs.RunBuckets, obs.L("policy", policy))
			runMetrics.byPolicyH[policy] = h
		}
		return h
	}
	runMetrics.byKeyC = make(map[string]*obs.Counter)
	runMetrics.byKeyH = make(map[string]*obs.Histogram)
	runMetrics.frames = func(policy string) *obs.Counter {
		runMetrics.mu.Lock()
		defer runMetrics.mu.Unlock()
		key := "f|" + policy
		c, ok := runMetrics.byKeyC[key]
		if !ok {
			c = r.Counter("dwarn_timeline_frames_total", "Timeline interval frames sampled, by fetch policy.", obs.L("policy", policy))
			runMetrics.byKeyC[key] = c
		}
		return c
	}
	runMetrics.gateCycles = func(policy, class string) *obs.Counter {
		runMetrics.mu.Lock()
		defer runMetrics.mu.Unlock()
		key := "g|" + policy + "|" + class
		c, ok := runMetrics.byKeyC[key]
		if !ok {
			c = r.Counter("dwarn_timeline_gate_cycles_total", "Thread-cycles attributed to each fetch-gate decision class over sampled intervals.", obs.L("policy", policy), obs.L("class", class))
			runMetrics.byKeyC[key] = c
		}
		return c
	}
	runMetrics.intervalIPC = func(policy string) *obs.Histogram {
		runMetrics.mu.Lock()
		defer runMetrics.mu.Unlock()
		h, ok := runMetrics.byKeyH[policy]
		if !ok {
			h = r.Histogram("dwarn_timeline_interval_ipc", "Aggregate committed IPC of each sampled interval, by fetch policy.", ipcBuckets, obs.L("policy", policy))
			runMetrics.byKeyH[policy] = h
		}
		return h
	}
	runMetrics.errors = r.Counter("dwarn_sim_run_errors_total", "Simulations that returned an error (bad options or cancellation).")
	runMetrics.cycles = r.Counter("dwarn_sim_cycles_total", "Simulated cycles across all runs (warmup + measurement).")
	runMetrics.uops = r.Counter("dwarn_sim_uops_total", "Committed (correct-path retired) uops across all measured intervals.")
	runMetrics.cyclesSec = r.Gauge("dwarn_sim_cycles_per_second", "Simulated cycles per wall second over the most recent run.")
	runMetrics.uopsSec = r.Gauge("dwarn_sim_uops_per_second", "Committed uops per wall second over the most recent run's measured interval.")
}

// recordRun folds one finished simulation into the snapshot.
func recordRun(res *Result, warmup int64, elapsed time.Duration) {
	runMetrics.once.Do(initRunMetrics)
	policy := res.Policy
	runMetrics.runs(policy).Inc()
	runMetrics.seconds(policy).Observe(elapsed.Seconds())
	var committed uint64
	for i := range res.Threads {
		committed += res.Threads[i].Pipeline.Committed
	}
	cycles := res.Cycles + warmup
	runMetrics.cycles.Add(uint64(cycles))
	runMetrics.uops.Add(committed)
	if s := elapsed.Seconds(); s > 0 {
		runMetrics.cyclesSec.Set(float64(cycles) / s)
		runMetrics.uopsSec.Set(float64(committed) / s)
	}
}

// recordTimeline folds one run's interval frames into the per-interval
// series: frame count, interval-IPC distribution, and thread-cycles by
// gate decision class — the aggregate view of the same attribution the
// frames carry per interval. Cold path, once per sampled run.
func recordTimeline(res *Result) {
	runMetrics.once.Do(initRunMetrics)
	policy := res.Policy
	tl := res.Timeline
	runMetrics.frames(policy).Add(uint64(len(tl.Frames)))
	var normal, demoted, gated uint64
	for i := range tl.Frames {
		f := &tl.Frames[i]
		runMetrics.intervalIPC(policy).Observe(f.IPC())
		for j := range f.Threads {
			normal += f.Threads[j].GateNormalCycles
			demoted += f.Threads[j].GateDemotedCycles
			gated += f.Threads[j].GateGatedCycles
		}
	}
	runMetrics.gateCycles(policy, "normal").Add(normal)
	runMetrics.gateCycles(policy, "demoted").Add(demoted)
	runMetrics.gateCycles(policy, "gated").Add(gated)
}

// recordRunError counts a failed simulation.
func recordRunError() {
	runMetrics.once.Do(initRunMetrics)
	runMetrics.errors.Inc()
}
