package sim

import (
	"bytes"
	"testing"

	"dwarn/internal/core"
	"dwarn/internal/trace"
	"dwarn/internal/workload"
)

// recordTrace records n uops per thread of wlName standalone (no
// pipeline), returning the loaded trace.
func recordTrace(t testing.TB, wlName string, seed uint64, n int) *trace.Trace {
	t.Helper()
	wl, err := workload.GetWorkload(wlName)
	if err != nil {
		t.Fatal(err)
	}
	srcs, err := wl.Generators(seed)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(wl.Name, seed)
	for _, src := range srcs {
		rec := w.Record(src)
		for i := 0; i < n; i++ {
			rec.Next()
		}
	}
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Read(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestTraceReplayMatchesLiveRun is the acceptance property for the
// trace subsystem: one standalone-recorded trace, replayed through
// sim.Run under EVERY registered policy, reproduces the per-thread
// committed-instruction counts and IPCs of the corresponding live
// generator runs exactly. The correct-path stream is policy-independent
// and wrong paths are synthesized bit-identically, so equality is
// exact, not approximate.
func TestTraceReplayMatchesLiveRun(t *testing.T) {
	const (
		wlName  = "2-MIX"
		seed    = 42
		warmup  = 3000
		measure = 9000
		// Headroom: the fetch engine cannot consume more correct-path
		// uops than fetch width × cycles; in practice a fraction of
		// that. 90k uops per thread covers every policy comfortably.
		uops = 90000
	)
	tr := recordTrace(t, wlName, seed, uops)
	wl, _ := workload.GetWorkload(wlName)

	for _, policy := range core.Policies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			live, err := Run(Options{
				Policy:        policy,
				Workload:      wl,
				Seed:          seed,
				WarmupCycles:  warmup,
				MeasureCycles: measure,
			})
			if err != nil {
				t.Fatal(err)
			}
			replay, err := Run(Options{
				Policy:        policy,
				Trace:         tr,
				Seed:          seed,
				WarmupCycles:  warmup,
				MeasureCycles: measure,
			})
			if err != nil {
				t.Fatal(err)
			}

			if len(replay.Threads) != len(live.Threads) {
				t.Fatalf("thread count %d, want %d", len(replay.Threads), len(live.Threads))
			}
			for i := range live.Threads {
				lt, rt := &live.Threads[i], &replay.Threads[i]
				if rt.Benchmark != lt.Benchmark {
					t.Errorf("t%d benchmark %q, want %q", i, rt.Benchmark, lt.Benchmark)
				}
				if rt.Pipeline.Committed != lt.Pipeline.Committed {
					t.Errorf("t%d committed %d, want %d", i, rt.Pipeline.Committed, lt.Pipeline.Committed)
				}
				if rt.IPC != lt.IPC {
					t.Errorf("t%d IPC %v, want %v", i, rt.IPC, lt.IPC)
				}
				if rt.Pipeline != lt.Pipeline {
					t.Errorf("t%d pipeline stats diverge:\n got %+v\nwant %+v", i, rt.Pipeline, lt.Pipeline)
				}
			}
			if replay.Throughput != live.Throughput {
				t.Errorf("throughput %v, want %v", replay.Throughput, live.Throughput)
			}
		})
	}
}

// TestRecordDuringRunRoundTrips: recording through Options.Record
// during a live simulation and replaying the result under the same
// policy reproduces the run (the cmd/smtsim -trace path).
func TestRecordDuringRunRoundTrips(t *testing.T) {
	wl, _ := workload.GetWorkload("2-MEM")
	w := trace.NewWriter(wl.Name, 7)
	live, err := Run(Options{
		Policy:        "dwarn",
		Workload:      wl,
		Record:        w,
		Seed:          7,
		WarmupCycles:  2000,
		MeasureCycles: 6000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Read(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}

	replay, err := Run(Options{
		Policy:        "dwarn",
		Trace:         tr,
		WarmupCycles:  2000,
		MeasureCycles: 6000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range live.Threads {
		if replay.Threads[i].Pipeline != live.Threads[i].Pipeline {
			t.Errorf("t%d pipeline stats diverge:\n got %+v\nwant %+v",
				i, replay.Threads[i].Pipeline, live.Threads[i].Pipeline)
		}
	}
}

// TestTraceFingerprint: the run identity must track trace content and
// differ from the synthetic identity of the same workload.
func TestTraceFingerprint(t *testing.T) {
	tr1 := recordTrace(t, "2-ILP", 5, 2000)
	tr2 := recordTrace(t, "2-ILP", 6, 2000) // different seed → different content
	wl, _ := workload.GetWorkload("2-ILP")

	synth := Fingerprint(Options{Policy: "dwarn", Workload: wl}, "")
	a := Fingerprint(Options{Policy: "dwarn", Trace: tr1}, "")
	b := Fingerprint(Options{Policy: "dwarn", Trace: tr2}, "")
	a2 := Fingerprint(Options{Policy: "dwarn", Trace: tr1}, "")
	if a == synth || a == b {
		t.Error("trace fingerprints collide")
	}
	if a != a2 {
		t.Error("trace fingerprint unstable")
	}

	// Replay never consumes the seed, so seed must not split the cache:
	// identical trace runs differing only in Seed share one identity.
	s1 := Fingerprint(Options{Policy: "dwarn", Trace: tr1, Seed: 1}, "")
	s2 := Fingerprint(Options{Policy: "dwarn", Trace: tr1, Seed: 2}, "")
	if s1 != s2 || s1 != a {
		t.Error("seed leaked into the trace-run fingerprint")
	}
}
