package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"dwarn/internal/config"
	"dwarn/internal/workload"
)

// Fingerprint returns a content-addressed identity for a simulation: a
// hex SHA-256 over every input that determines its outcome — the full
// machine configuration, the policy identity, the workload (including
// the calibrated profile of every benchmark, so re-registering a
// benchmark changes the key), the seed, and the run lengths, all with
// defaults applied. Two Options with equal fingerprints produce
// byte-identical Results, which is what lets the exp memoiser and the
// dwarnd result cache share one cache identity.
//
// policyID overrides the policy component of the key; pass it for
// parameterised PolicyInstance runs whose Name() alone does not encode
// their parameters (the exp ablations label such runs "stall-t6",
// "dg-n2", ...). When empty, opts.Policy or PolicyInstance.Name() is
// used.
func Fingerprint(opts Options, policyID string) string {
	cfg := opts.Config
	if cfg == nil {
		cfg = config.Baseline()
	}
	seed := opts.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	warmup := opts.WarmupCycles
	if warmup == 0 {
		warmup = DefaultWarmupCycles
	}
	measure := opts.MeasureCycles
	if measure == 0 {
		measure = DefaultMeasureCycles
	}
	if policyID == "" {
		if opts.PolicyInstance != nil {
			policyID = "instance:" + opts.PolicyInstance.Name()
		} else {
			policyID = opts.Policy
		}
	}

	// %#v over value-only structs is deterministic and automatically
	// covers fields added later, at the cost of keys not being stable
	// across releases — fine for an in-process/in-memory cache identity.
	h := sha256.New()
	fmt.Fprintf(h, "machine|%#v\n", *cfg)
	fmt.Fprintf(h, "policy|%s\n", policyID)
	fmt.Fprintf(h, "workload|%s|%d|%s\n", opts.Workload.Name, opts.Workload.Threads, opts.Workload.Mix)
	for _, b := range opts.Workload.Benchmarks {
		if p, err := workload.Get(b); err == nil {
			fmt.Fprintf(h, "bench|%#v\n", *p)
		} else {
			fmt.Fprintf(h, "bench|unknown:%s\n", b)
		}
	}
	fmt.Fprintf(h, "protocol|seed=%d|warmup=%d|measure=%d\n", seed, warmup, measure)
	return hex.EncodeToString(h.Sum(nil))
}
