package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"dwarn/internal/config"
	"dwarn/internal/core"
	"dwarn/internal/pipeline"
	"dwarn/internal/workload"
)

// Fingerprint returns a content-addressed identity for a simulation: a
// hex SHA-256 over every input that determines its outcome — the full
// machine configuration, the policy identity, the workload (including
// the calibrated profile of every benchmark, so re-registering a
// benchmark changes the key), the seed, and the run lengths, all with
// defaults applied. Two Options with equal fingerprints produce
// byte-identical Results, which is what lets the exp memoiser and the
// dwarnd result cache share one cache identity.
//
// For trace-driven runs (opts.Trace set) the workload component is the
// trace's content digest and thread count: two runs over byte-identical
// traces share a key, and any re-recorded or edited trace gets a new
// one.
//
// policyID overrides the policy component of the key; pass it for
// out-of-registry PolicyInstance runs labelled by the caller. When
// empty, the canonical {Policy, PolicyParams} identity is used — or,
// for instance runs, PolicyInstance.Name() with the instance's Params()
// folded in when it implements pipeline.ParameterizedPolicy — so a
// threshold sweep never collides with the base policy's cache entries.
func Fingerprint(opts Options, policyID string) string {
	cfg := opts.Config
	if cfg == nil {
		cfg = config.Baseline()
	}
	seed := opts.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	warmup := opts.WarmupCycles
	if warmup == 0 {
		warmup = DefaultWarmupCycles
	}
	measure := opts.MeasureCycles
	if measure == 0 {
		measure = DefaultMeasureCycles
	}
	if policyID == "" {
		if opts.PolicyInstance != nil {
			policyID = "instance:" + opts.PolicyInstance.Name()
			if pp, ok := opts.PolicyInstance.(pipeline.ParameterizedPolicy); ok {
				policyID += "|" + pp.Params()
			}
		} else {
			// Canonical {name, params} identity: the bare name when every
			// parameter is at its default, so explicit defaults share the
			// cache entries of unparameterised requests.
			policyID = core.PolicyID(opts.Policy, opts.PolicyParams)
		}
	}

	// %#v over value-only structs is deterministic and automatically
	// covers fields added later, at the cost of keys not being stable
	// across releases — fine for an in-process/in-memory cache identity.
	h := sha256.New()
	hashMachine(h, cfg)
	fmt.Fprintf(h, "policy|%s\n", policyID)
	if opts.Trace != nil {
		fmt.Fprintf(h, "trace|%s|%d\n", opts.Trace.Digest, len(opts.Trace.Threads))
		// Replay consumes recorded streams, never the seed — hash a
		// fixed value so requests differing only in seed share the
		// cache entry their identical results deserve.
		seed = 0
	} else {
		hashWorkload(h, opts.Workload)
	}
	fmt.Fprintf(h, "protocol|seed=%d|warmup=%d|measure=%d\n", seed, warmup, measure)
	return hex.EncodeToString(h.Sum(nil))
}

// hashMachine writes the machine half's machine component: the full
// resolved processor configuration.
func hashMachine(h io.Writer, cfg *config.Processor) {
	fmt.Fprintf(h, "machine|%#v\n", *cfg)
}

// hashWorkload writes the synthetic-workload component: the workload
// identity plus the calibrated profile of every benchmark (so
// re-registering a benchmark changes every key derived from it).
func hashWorkload(h io.Writer, wl workload.Workload) {
	fmt.Fprintf(h, "workload|%s|%d|%s\n", wl.Name, wl.Threads, wl.Mix)
	for _, b := range wl.Benchmarks {
		if p, err := workload.Get(b); err == nil {
			fmt.Fprintf(h, "bench|%#v\n", *p)
		} else {
			fmt.Fprintf(h, "bench|unknown:%s\n", b)
		}
	}
}

// CheckpointKey returns the content-addressed identity of a run's
// post-prewarm machine state: the (machine, workload, seed) half of
// Fingerprint, deliberately excluding the policy, its parameters, and
// the warmup/measure cycle counts — none of which influence the state
// the snapshot captures (prewarm touches caches and TLBs before any
// cycle is simulated, under no policy). Every cell of a policy or
// threshold sweep over one workload therefore shares a key, which is
// exactly what lets the first cell warm and the rest fork.
//
// The empty string means "not checkpointable": trace replays (their
// sources cannot externalize cursors, and replay is already the fast
// path), recording runs (the writer wrapper must observe the stream
// from its start), and out-of-registry PolicyInstance runs (the cold
// fallback could not rebuild the policy).
func CheckpointKey(opts Options) string {
	if opts.Trace != nil || opts.Record != nil || opts.PolicyInstance != nil {
		return ""
	}
	cfg := opts.Config
	if cfg == nil {
		cfg = config.Baseline()
	}
	seed := opts.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	h := sha256.New()
	// The format magic is part of the key: a codec change re-keys every
	// checkpoint instead of decoding stale images.
	fmt.Fprintf(h, "ckpt|v1\n")
	hashMachine(h, cfg)
	hashWorkload(h, opts.Workload)
	fmt.Fprintf(h, "seed=%d\n", seed)
	return hex.EncodeToString(h.Sum(nil))
}
