package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"dwarn/internal/config"
	"dwarn/internal/core"
	"dwarn/internal/pipeline"
	"dwarn/internal/workload"
)

// Fingerprint returns a content-addressed identity for a simulation: a
// hex SHA-256 over every input that determines its outcome — the full
// machine configuration, the policy identity, the workload (including
// the calibrated profile of every benchmark, so re-registering a
// benchmark changes the key), the seed, and the run lengths, all with
// defaults applied. Two Options with equal fingerprints produce
// byte-identical Results, which is what lets the exp memoiser and the
// dwarnd result cache share one cache identity.
//
// For trace-driven runs (opts.Trace set) the workload component is the
// trace's content digest and thread count: two runs over byte-identical
// traces share a key, and any re-recorded or edited trace gets a new
// one.
//
// policyID overrides the policy component of the key; pass it for
// out-of-registry PolicyInstance runs labelled by the caller. When
// empty, the canonical {Policy, PolicyParams} identity is used — or,
// for instance runs, PolicyInstance.Name() with the instance's Params()
// folded in when it implements pipeline.ParameterizedPolicy — so a
// threshold sweep never collides with the base policy's cache entries.
func Fingerprint(opts Options, policyID string) string {
	cfg := opts.Config
	if cfg == nil {
		cfg = config.Baseline()
	}
	seed := opts.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	warmup := opts.WarmupCycles
	if warmup == 0 {
		warmup = DefaultWarmupCycles
	}
	measure := opts.MeasureCycles
	if measure == 0 {
		measure = DefaultMeasureCycles
	}
	if policyID == "" {
		if opts.PolicyInstance != nil {
			policyID = "instance:" + opts.PolicyInstance.Name()
			if pp, ok := opts.PolicyInstance.(pipeline.ParameterizedPolicy); ok {
				policyID += "|" + pp.Params()
			}
		} else {
			// Canonical {name, params} identity: the bare name when every
			// parameter is at its default, so explicit defaults share the
			// cache entries of unparameterised requests.
			policyID = core.PolicyID(opts.Policy, opts.PolicyParams)
		}
	}

	// %#v over value-only structs is deterministic and automatically
	// covers fields added later, at the cost of keys not being stable
	// across releases — fine for an in-process/in-memory cache identity.
	h := sha256.New()
	fmt.Fprintf(h, "machine|%#v\n", *cfg)
	fmt.Fprintf(h, "policy|%s\n", policyID)
	if opts.Trace != nil {
		fmt.Fprintf(h, "trace|%s|%d\n", opts.Trace.Digest, len(opts.Trace.Threads))
		// Replay consumes recorded streams, never the seed — hash a
		// fixed value so requests differing only in seed share the
		// cache entry their identical results deserve.
		seed = 0
	} else {
		fmt.Fprintf(h, "workload|%s|%d|%s\n", opts.Workload.Name, opts.Workload.Threads, opts.Workload.Mix)
		for _, b := range opts.Workload.Benchmarks {
			if p, err := workload.Get(b); err == nil {
				fmt.Fprintf(h, "bench|%#v\n", *p)
			} else {
				fmt.Fprintf(h, "bench|unknown:%s\n", b)
			}
		}
	}
	fmt.Fprintf(h, "protocol|seed=%d|warmup=%d|measure=%d\n", seed, warmup, measure)
	return hex.EncodeToString(h.Sum(nil))
}
