package sim

import (
	"testing"

	"dwarn/internal/config"
	"dwarn/internal/workload"
)

func shortOpts(policy, wl string) Options {
	w, _ := workload.GetWorkload(wl)
	return Options{Policy: policy, Workload: w, WarmupCycles: 8000, MeasureCycles: 15000}
}

func TestRunBasic(t *testing.T) {
	res, err := Run(shortOpts("icount", "2-MIX"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 15000 {
		t.Errorf("cycles %d", res.Cycles)
	}
	if len(res.Threads) != 2 {
		t.Fatalf("%d threads", len(res.Threads))
	}
	if res.Throughput <= 0 {
		t.Error("zero throughput")
	}
	sum := 0.0
	for _, th := range res.Threads {
		sum += th.IPC
	}
	if sum != res.Throughput {
		t.Errorf("throughput %v != sum of IPCs %v", res.Throughput, sum)
	}
	if res.Policy != "ICOUNT" || res.Workload != "2-MIX" || res.Machine != "baseline" {
		t.Errorf("labels: %s/%s/%s", res.Policy, res.Workload, res.Machine)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(shortOpts("dwarn", "2-MEM"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shortOpts("dwarn", "2-MEM"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput {
		t.Errorf("non-deterministic: %v vs %v", a.Throughput, b.Throughput)
	}
}

func TestRunSeedChangesResult(t *testing.T) {
	o1 := shortOpts("icount", "2-MIX")
	o2 := shortOpts("icount", "2-MIX")
	o2.Seed = 777
	a, _ := Run(o1)
	b, _ := Run(o2)
	if a.Throughput == b.Throughput {
		t.Error("different seeds gave identical throughput")
	}
}

func TestRunUnknownPolicy(t *testing.T) {
	o := shortOpts("nonesuch", "2-MIX")
	if _, err := Run(o); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunBadWorkload(t *testing.T) {
	o := Options{Policy: "icount", Workload: workload.Workload{Name: "bad", Threads: 1, Benchmarks: []string{"nope"}}}
	if _, err := Run(o); err == nil {
		t.Error("bad workload accepted")
	}
}

func TestRunSolo(t *testing.T) {
	res, err := RunSolo(nil, "gzip", 42, 8000, 15000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Threads) != 1 || res.Threads[0].Benchmark != "gzip" {
		t.Fatalf("solo result %+v", res.Threads)
	}
	if res.Threads[0].IPC <= 0 {
		t.Error("solo IPC zero")
	}
}

func TestRunOnSmallMachine(t *testing.T) {
	o := shortOpts("dwarn", "2-MEM")
	o.Config = config.Small()
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine != "small" {
		t.Errorf("machine %s", res.Machine)
	}
}

func TestFlushedFraction(t *testing.T) {
	o := shortOpts("flush", "2-MEM")
	o.MeasureCycles = 30000
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	f := res.FlushedFraction()
	if f <= 0 || f >= 1 {
		t.Errorf("flushed fraction %v not in (0,1)", f)
	}
	res2, _ := Run(shortOpts("icount", "2-MEM"))
	if res2.FlushedFraction() != 0 {
		t.Error("ICOUNT reported flushed instructions")
	}
}

func TestIPCsVector(t *testing.T) {
	res, err := Run(shortOpts("icount", "2-ILP"))
	if err != nil {
		t.Fatal(err)
	}
	ipcs := res.IPCs()
	if len(ipcs) != 2 || ipcs[0] != res.Threads[0].IPC {
		t.Errorf("IPCs %v", ipcs)
	}
}

func TestResultString(t *testing.T) {
	res, err := Run(shortOpts("icount", "2-ILP"))
	if err != nil {
		t.Fatal(err)
	}
	if s := res.String(); len(s) < 20 {
		t.Errorf("short string %q", s)
	}
}

func TestSoloWorkloadShape(t *testing.T) {
	wl := SoloWorkload("mcf")
	if wl.Threads != 1 || wl.Benchmarks[0] != "mcf" || wl.Name != "solo-mcf" {
		t.Errorf("solo workload %+v", wl)
	}
}
