package sim

import (
	"sync"
	"testing"

	"dwarn/internal/core"
	"dwarn/internal/workload"
)

// TestConcurrentRunsAllPoliciesRaceFree is the concurrency-audit
// regression test behind the parallel sweep executor: every registered
// policy simulates concurrently (plus a concurrent Register exercising
// the profile registry's write path), and each concurrent result must
// be bit-identical to its serial counterpart. Under `go test -race`
// (CI's default) this fails on any package-level mutable state or
// shared RNG in pipeline/workload/core; without -race it still fails
// if concurrent runs perturb each other's counters.
func TestConcurrentRunsAllPoliciesRaceFree(t *testing.T) {
	wl, err := workload.GetWorkload("2-MIX")
	if err != nil {
		t.Fatal(err)
	}
	opts := func(policy string) Options {
		return Options{
			Policy:       policy,
			Workload:     wl,
			Seed:         7,
			WarmupCycles: 1500, MeasureCycles: 4000,
		}
	}

	policies := core.Policies()
	serial := make(map[string]string, len(policies))
	for _, p := range policies {
		res, err := Run(opts(p))
		if err != nil {
			t.Fatalf("%s serial: %v", p, err)
		}
		serial[p] = res.CounterDigest()
	}

	var wg sync.WaitGroup
	digests := make([]string, len(policies))
	errs := make([]error, len(policies))
	for i, p := range policies {
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			res, err := Run(opts(p))
			if err != nil {
				errs[i] = err
				return
			}
			digests[i] = res.CounterDigest()
		}(i, p)
	}
	// Concurrent registry write: a new benchmark must not perturb (or
	// race with) in-flight simulations that never reference it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		base, err := workload.Get("gzip")
		if err != nil {
			t.Error(err)
			return
		}
		p := *base
		p.Name = "race-probe"
		if err := workload.Register(&p); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()

	for i, p := range policies {
		if errs[i] != nil {
			t.Fatalf("%s concurrent: %v", p, errs[i])
		}
		if digests[i] != serial[p] {
			t.Errorf("%s: concurrent digest %s != serial %s — runs are not hermetic", p, digests[i], serial[p])
		}
	}
}
