package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"dwarn/internal/ckpt"
	"dwarn/internal/workload"
)

// digest collapses a Result into a hex string over every per-thread
// counter, so "bit-identical" is a one-line comparison.
func digest(t *testing.T, r *Result) string {
	t.Helper()
	h := sha256.New()
	fmt.Fprintf(h, "%d|%f\n", r.Cycles, r.Throughput)
	for _, th := range r.Threads {
		fmt.Fprintf(h, "%s|%#v|%#v|%#v\n", th.Benchmark, th.Pipeline, th.Mem, th.Bpred)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestForkDeterminism is the engine's core contract: under every
// registry policy, a run forked from a checkpoint produces per-thread
// counters bit-identical to the same run started cold.
func TestForkDeterminism(t *testing.T) {
	wl, err := workload.GetWorkload("2-MIX")
	if err != nil {
		t.Fatal(err)
	}
	policies := []string{"icount", "stall", "flush", "dg", "pdg", "dwarn", "dwarn-prio"}
	for _, polName := range policies {
		t.Run(polName, func(t *testing.T) {
			base := Options{
				Policy:        polName,
				Workload:      wl,
				Seed:          7,
				WarmupCycles:  1500,
				MeasureCycles: 3000,
			}
			cold, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}
			store := ckpt.NewMemStore(ckpt.DefaultMemBytes)
			warm := base
			warm.Checkpoints = store
			// First checkpointed run warms cold and publishes...
			first, err := Run(warm)
			if err != nil {
				t.Fatal(err)
			}
			// ...second forks from the stored image.
			key := CheckpointKey(warm)
			if key == "" {
				t.Fatal("expected a non-empty checkpoint key")
			}
			if _, ok := store.Get(key); !ok {
				t.Fatalf("no checkpoint published under %s", key)
			}
			forked, err := Run(warm)
			if err != nil {
				t.Fatal(err)
			}
			want := digest(t, cold)
			if got := digest(t, first); got != want {
				t.Errorf("warming run diverged from plain cold start:\n cold %s\n warm %s", want, got)
			}
			if got := digest(t, forked); got != want {
				t.Errorf("forked run diverged from cold start:\n cold %s\n fork %s", want, got)
			}
		})
	}
}

// tamperStore wraps a store and mutates every image it serves, so the
// restore path sees a decodable-but-wrong checkpoint.
type tamperStore struct {
	inner  ckpt.Store
	tamper func(*ckpt.Image) *ckpt.Image
}

func (s tamperStore) Get(key string) (*ckpt.Image, bool) {
	img, ok := s.inner.Get(key)
	if !ok {
		return nil, false
	}
	return s.tamper(img), true
}
func (s tamperStore) Put(key string, img *ckpt.Image) { s.inner.Put(key, img) }

// TestRestoreFallbackNeverWrongAnswer: a damaged checkpoint that still
// decodes (the codec's CRC already kills byte-level corruption) must be
// rejected by Restore's shape checks, and the run must fall back to a
// cold start with a bit-identical result — a bad checkpoint can cost
// time, never correctness.
func TestRestoreFallbackNeverWrongAnswer(t *testing.T) {
	wl, err := workload.GetWorkload("2-MIX")
	if err != nil {
		t.Fatal(err)
	}
	base := Options{
		Policy: "dwarn", Workload: wl, Seed: 7,
		WarmupCycles: 1500, MeasureCycles: 3000,
	}
	cold, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	want := digest(t, cold)

	tampers := map[string]func(*ckpt.Image) *ckpt.Image{
		"thread-count": func(img *ckpt.Image) *ckpt.Image {
			out := *img
			out.Core.NumThreads = img.Core.NumThreads + 1
			return &out
		},
		"missing-sources": func(img *ckpt.Image) *ckpt.Image {
			out := *img
			out.Sources = nil
			return &out
		},
		"truncated-dtlb": func(img *ckpt.Image) *ckpt.Image {
			out := *img
			out.DTLB = img.DTLB[:0]
			return &out
		},
	}
	for name, tamper := range tampers {
		t.Run(name, func(t *testing.T) {
			inner := ckpt.NewMemStore(0)
			warm := base
			warm.Checkpoints = inner
			if _, err := Run(warm); err != nil { // publish a good image
				t.Fatal(err)
			}
			warm.Checkpoints = tamperStore{inner: inner, tamper: tamper}
			forked, err := Run(warm)
			if err != nil {
				t.Fatalf("tampered checkpoint failed the run instead of falling back: %v", err)
			}
			if got := digest(t, forked); got != want {
				t.Errorf("fallback run diverged from cold start:\n cold %s\n fall %s", want, got)
			}
		})
	}
}

// TestCheckpointKeySplitsFingerprint pins the key's identity rules:
// policy, its params, and run lengths share a key; machine, workload,
// and seed changes split it; trace/record/instance runs get none.
func TestCheckpointKeySplit(t *testing.T) {
	wl, err := workload.GetWorkload("2-ILP")
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Policy: "icount", Workload: wl, Seed: 3}
	k := CheckpointKey(base)
	if k == "" {
		t.Fatal("base options should be checkpointable")
	}
	same := base
	same.Policy = "dwarn"
	same.PolicyParams = map[string]int64{"warn": 3}
	same.WarmupCycles = 9999
	same.MeasureCycles = 1234
	if got := CheckpointKey(same); got != k {
		t.Errorf("policy/length changes must not split the key: %s vs %s", k, got)
	}
	diffSeed := base
	diffSeed.Seed = 4
	if got := CheckpointKey(diffSeed); got == k {
		t.Error("seed change must split the key")
	}
	diffWl := base
	diffWl.Workload, _ = workload.GetWorkload("2-MEM")
	if got := CheckpointKey(diffWl); got == k {
		t.Error("workload change must split the key")
	}
}
