package sim

import (
	"fmt"

	"dwarn/internal/ckpt"
	"dwarn/internal/pipeline"
	"dwarn/internal/workload"
)

// Snapshot captures the machine's post-prewarm state as a checkpoint
// image: core clock scalars, all three caches, the per-thread DTLBs,
// the branch predictor, and every thread's workload source cursors.
// The CPU must be quiescent (it is, right after prewarm: pre-touching
// installs cache and TLB state without simulating a cycle) and every
// source must be checkpointable; otherwise Snapshot fails and the run
// simply proceeds without publishing.
func Snapshot(key string, cpu *pipeline.CPU, srcs []workload.Source, seed uint64) (*ckpt.Image, error) {
	core, err := cpu.CoreState()
	if err != nil {
		return nil, err
	}
	img := &ckpt.Image{
		Key:  key,
		Seed: seed,
		Core: core,
	}
	mem := cpu.Mem()
	img.L1I = mem.L1I.State()
	img.L1D = mem.L1D.State()
	img.L2 = mem.L2.State()
	for _, t := range mem.DTLB {
		img.DTLB = append(img.DTLB, t.State())
	}
	img.Bpred = cpu.Bpred().State()
	img.Sources = make([]workload.SourceState, len(srcs))
	for i, src := range srcs {
		c, ok := src.(workload.Checkpointable)
		if !ok {
			return nil, fmt.Errorf("sim: source %d (%T) is not checkpointable", i, src)
		}
		st, err := c.CheckpointState()
		if err != nil {
			return nil, err
		}
		img.Sources[i] = st
	}
	return img, nil
}

// Restore forks a freshly built machine from a checkpoint image,
// overwriting cache, TLB, predictor, core-scalar, and source-cursor
// state. Every shape is validated against the live machine; any
// mismatch returns an error, after which the machine may be partially
// written — the caller must rebuild it and start cold rather than run
// a half-restored machine.
func Restore(img *ckpt.Image, cpu *pipeline.CPU, srcs []workload.Source) error {
	if img.Core.NumThreads != cpu.NumThreads() || len(img.Sources) != len(srcs) {
		return fmt.Errorf("sim: checkpoint has %d threads, machine has %d", img.Core.NumThreads, cpu.NumThreads())
	}
	mem := cpu.Mem()
	if len(img.DTLB) != len(mem.DTLB) {
		return fmt.Errorf("sim: checkpoint has %d DTLBs, machine has %d", len(img.DTLB), len(mem.DTLB))
	}
	for i, src := range srcs {
		c, ok := src.(workload.Checkpointable)
		if !ok {
			return fmt.Errorf("sim: source %d (%T) is not checkpointable", i, src)
		}
		if err := c.SetCheckpointState(img.Sources[i]); err != nil {
			return err
		}
	}
	if err := mem.L1I.SetState(img.L1I); err != nil {
		return err
	}
	if err := mem.L1D.SetState(img.L1D); err != nil {
		return err
	}
	if err := mem.L2.SetState(img.L2); err != nil {
		return err
	}
	for i, t := range mem.DTLB {
		if err := t.SetState(img.DTLB[i]); err != nil {
			return err
		}
	}
	if err := cpu.Bpred().SetState(img.Bpred); err != nil {
		return err
	}
	return cpu.SetCoreState(img.Core)
}
