package sim

import (
	"dwarn/internal/pipeline"
	"dwarn/internal/workload"
)

// prewarm installs each thread's steady-state working set into the
// memory hierarchy before the timed warmup: hot regions into the L1D
// and L2, mid rings and code into the L2, hot pages into the DTLB.
//
// Why: the mid ring's reuse distance is by construction larger than the
// L1, so one full lap — hundreds of thousands of instructions for
// benchmarks that touch it rarely — must pass before its steady state
// (L1 miss, L2 hit) is reached. Simulating that lap cold would either
// dominate the run time or, worse, misclassify every mid access as an
// L2 miss. Pre-touching is warmup engineering, not a change to the
// model: the subsequent timed warmup still converges queues, predictors
// and replacement state.
//
// Touch order interleaves threads line by line so that when the
// combined footprints exceed a level's capacity the survivors are an
// arbitrary inter-thread mix, as they would be in steady state.
func prewarm(cpu *pipeline.CPU, srcs []workload.Source) {
	mem := cpu.Mem()
	fps := make([]workload.Footprint, len(srcs))
	maxLines := 0
	for i, src := range srcs {
		fps[i] = src.Footprint()
		for _, n := range []int{fps[i].CodeBytes, fps[i].HotBytes, fps[i].MidBytes} {
			if lines := (n + 63) / 64; lines > maxLines {
				maxLines = lines
			}
		}
	}
	for off := 0; off < maxLines*64; off += 64 {
		for t := range fps {
			fp := &fps[t]
			if off < fp.MidBytes {
				mem.L2.Touch(fp.MidBase + uint64(off))
			}
			if off < fp.CodeBytes {
				mem.L2.Touch(fp.CodeBase + uint64(off))
			}
			if off < fp.HotBytes {
				mem.L2.Touch(fp.HotBase + uint64(off))
				mem.L1D.Touch(fp.HotBase + uint64(off))
			}
		}
	}
	// DTLB: hot pages first so they survive if the regions exceed TLB
	// reach (they do not, for the calibrated profiles).
	for t := range fps {
		fp := &fps[t]
		touchPages(cpu, t, fp.MidBase, fp.MidBytes)
		touchPages(cpu, t, fp.HotBase, fp.HotBytes)
	}
}

func touchPages(cpu *pipeline.CPU, thread int, base uint64, bytes int) {
	page := cpu.Config().PageBytes
	for off := 0; off < bytes; off += page {
		cpu.Mem().DTLB[thread].Access(base + uint64(off))
	}
}
