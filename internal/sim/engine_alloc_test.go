package sim

import (
	"testing"

	"dwarn/internal/config"
	"dwarn/internal/core"
	"dwarn/internal/pipeline"
	"dwarn/internal/workload"
)

// TestStepZeroAllocSteadyState is the allocation guard for the cycle
// engine: once the machine is warm (the DynInst arena, event-queue
// buckets, deques, and policy scratch buffers have grown to their
// steady-state capacities), pipeline.Step must not allocate at all,
// under every registered policy. A regression here reintroduces GC
// pressure on the hot loop that every experiment, sweep, and service
// request bottoms out in.
func TestStepZeroAllocSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard runs tens of thousands of cycles")
	}
	wl, err := workload.GetWorkload("4-MIX")
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range core.Policies() {
		t.Run(policy, func(t *testing.T) {
			srcs, err := wl.Generators(DefaultSeed)
			if err != nil {
				t.Fatal(err)
			}
			pol, err := core.NewPolicy(policy)
			if err != nil {
				t.Fatal(err)
			}
			cpu, err := pipeline.New(config.Baseline(), pol, srcs)
			if err != nil {
				t.Fatal(err)
			}
			// Long warmup: every pool and scratch buffer must reach its
			// high-water mark before measuring.
			cpu.Run(60_000)
			avg := testing.AllocsPerRun(3000, func() { cpu.Step() })
			if avg != 0 {
				t.Errorf("%s: %.4f allocs/cycle in steady state, want 0", policy, avg)
			}
		})
	}
}
