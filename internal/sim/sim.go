// Package sim assembles a complete simulation — machine configuration,
// fetch policy, synthetic workload — and runs the paper's measurement
// protocol: warm up the microarchitectural state, reset the counters,
// measure for a fixed number of cycles.
package sim

import (
	"context"
	"fmt"
	"time"

	"dwarn/internal/bpred"
	"dwarn/internal/ckpt"
	"dwarn/internal/config"
	"dwarn/internal/core"
	"dwarn/internal/mem/hierarchy"
	"dwarn/internal/obs"
	"dwarn/internal/pipeline"
	"dwarn/internal/timeline"
	"dwarn/internal/trace"
	"dwarn/internal/workload"
)

// DefaultSeed makes every experiment reproducible by default.
const DefaultSeed = 42

// Options selects what to simulate and for how long.
type Options struct {
	// Config is the machine; nil means config.Baseline().
	Config *config.Processor
	// Policy is a registry name ("icount", "stall", "flush", "dg",
	// "pdg", "dwarn", "dwarn-prio"). Ignored if PolicyInstance is set.
	Policy string
	// PolicyParams tunes the named policy's registry-declared parameters
	// (DWarn's warn threshold, STALL/FLUSH's declaration threshold, DG's
	// gate count); absent parameters take their paper defaults. This is
	// how specs request the paper's §5 threshold sweeps.
	PolicyParams map[string]int64
	// PolicyInstance overrides Policy with a pre-built policy — the
	// in-process escape hatch for policies living outside the registry.
	// Registry policies should use Policy + PolicyParams instead, which
	// content-addressed caches understand natively.
	PolicyInstance pipeline.FetchPolicy
	// Workload is the multiprogrammed workload to run. Ignored when
	// Trace is set (the trace's own metadata drives thread count and
	// benchmarks).
	Workload workload.Workload
	// Trace, when set, replays a recorded uop trace instead of running
	// the synthetic generators: thread streams come from the trace and
	// wrong paths are synthesized from its metadata, bit-identical to
	// the recorded run.
	Trace *trace.Trace
	// Record, when set, wraps every thread source in the trace writer
	// so the run's correct-path uop streams are recorded as a side
	// effect. The caller serializes the writer after Run returns.
	Record *trace.Writer
	// Seed drives all synthetic randomness; 0 means DefaultSeed.
	Seed uint64
	// WarmupCycles and MeasureCycles control the protocol; zero values
	// take the defaults (20k warmup, 100k measured).
	WarmupCycles  int64
	MeasureCycles int64
	// Timeline, when non-nil, samples per-thread interval frames during
	// the measured window into Result.Timeline. A metrics option, not a
	// different simulation: sampling is observation only (counters and
	// the content-addressed fingerprint are bit-identical with it on or
	// off).
	Timeline *timeline.Config
	// OnFrame, when set alongside Timeline, receives each interval
	// frame as it closes — the live-streaming seam (dwarnd's SSE frame
	// events). The frame's Threads slice is ring storage reused after
	// Timeline.MaxFrames further samples; consume or copy it before
	// returning.
	OnFrame func(*timeline.Frame)
	// Checkpoints, when non-nil, enables the checkpoint/fork engine:
	// runs sharing a CheckpointKey (same machine, workload, and seed —
	// policy and run lengths deliberately excluded) fork their
	// post-prewarm machine state from the store instead of rebuilding
	// generators and re-touching caches. Purely an optimization: forked
	// runs are bit-identical to cold starts, and any restore problem
	// falls back to a cold start. Runs whose key is empty (trace
	// replay, recording, out-of-registry policies) ignore the store.
	Checkpoints ckpt.Store
}

// Default run lengths: long enough that IPCs are stable to within a few
// percent (the mid/far regions complete several laps; the predictor and
// caches reach steady state), short enough that the full paper grid
// runs in minutes.
const (
	DefaultWarmupCycles  = 20_000
	DefaultMeasureCycles = 100_000
)

// ThreadResult carries one thread's measured behaviour.
type ThreadResult struct {
	// Benchmark is the synthetic program name.
	Benchmark string
	// IPC is committed instructions per cycle.
	IPC float64
	// Pipeline counters for the measurement interval.
	Pipeline pipeline.ThreadStats
	// Mem is the memory system's view (loads, misses, TLB).
	Mem hierarchy.ThreadStats
	// Bpred is the predictor's view.
	Bpred bpred.Stats
}

// Result is the outcome of one simulation.
type Result struct {
	// Workload and Policy identify the run.
	Workload string
	Policy   string
	Machine  string
	// Cycles measured.
	Cycles int64
	// Threads holds per-thread results in workload order.
	Threads []ThreadResult
	// Throughput is the sum of per-thread IPCs.
	Throughput float64
	// Timeline holds the per-interval frames when Options.Timeline
	// requested sampling; nil otherwise (including results computed by
	// a run that did not sample — timeline is non-semantic, so caches
	// may legitimately hold frame-less results for the same
	// fingerprint).
	Timeline *timeline.Timeline `json:",omitempty"`
}

// IPCs returns the per-thread IPC vector.
func (r *Result) IPCs() []float64 {
	out := make([]float64, len(r.Threads))
	for i, t := range r.Threads {
		out[i] = t.IPC
	}
	return out
}

// FlushedFraction returns policy-flushed instructions as a fraction of
// all fetched instructions (the paper's Figure 2 metric). Zero when
// nothing was fetched.
func (r *Result) FlushedFraction() float64 {
	var flushed, fetched uint64
	for _, t := range r.Threads {
		flushed += t.Pipeline.FlushSquashed
		fetched += t.Pipeline.Fetched
	}
	if fetched == 0 {
		return 0
	}
	return float64(flushed) / float64(fetched)
}

// Run executes one simulation.
func Run(opts Options) (*Result, error) {
	return RunContext(context.Background(), opts)
}

// cancelCheckInterval is how many cycles RunContext simulates between
// context checks: coarse enough that the check is free relative to the
// cycle loop, fine enough that cancellation lands within microseconds.
const cancelCheckInterval = 4096

// runCycles advances the CPU n cycles, polling ctx between chunks.
func runCycles(ctx context.Context, cpu *pipeline.CPU, n int64) error {
	for n > 0 {
		chunk := int64(cancelCheckInterval)
		if n < chunk {
			chunk = n
		}
		cpu.Run(chunk)
		n -= chunk
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// RunContext executes one simulation, abandoning it (and returning
// ctx.Err()) if the context is cancelled mid-run. This is the entry
// point long-lived callers (the dwarnd service) use so a disconnected
// or superseded request stops burning CPU. Each completed run records
// a metrics snapshot (wall time, cycles/sec, uops/sec, per-policy run
// counts) on obs.Default — sampled here, after the cycle loop, so the
// engine's zero-allocation guarantee is untouched.
func RunContext(ctx context.Context, opts Options) (*Result, error) {
	start := time.Now()
	res, err := runContext(ctx, opts)
	if err != nil {
		recordRunError()
		return nil, err
	}
	warmup := opts.WarmupCycles
	if warmup == 0 {
		warmup = DefaultWarmupCycles
	}
	recordRun(res, warmup, time.Since(start))
	if res.Timeline != nil {
		recordTimeline(res)
	}
	// The request-scoped trace (when a frontend attached one) reaches
	// its innermost hop here: the run that did the simulated work.
	if log := obs.LoggerFrom(ctx); log.Enabled(obs.LevelDebug) {
		log.Debug("sim run",
			"trace", obs.TraceID(ctx), "span", obs.SpanID(ctx),
			"policy", res.Policy, "workload", res.Workload, "machine", res.Machine,
			"cycles", res.Cycles, "throughput", res.Throughput,
			"dur", time.Since(start).Round(time.Microsecond))
	}
	return res, nil
}

func runContext(ctx context.Context, opts Options) (*Result, error) {
	cfg := opts.Config
	if cfg == nil {
		cfg = config.Baseline()
	}
	seed := opts.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	warmup := opts.WarmupCycles
	if warmup == 0 {
		warmup = DefaultWarmupCycles
	}
	measure := opts.MeasureCycles
	if measure == 0 {
		measure = DefaultMeasureCycles
	}

	pol := opts.PolicyInstance
	if pol == nil {
		var err error
		pol, err = core.NewPolicyParams(opts.Policy, opts.PolicyParams)
		if err != nil {
			return nil, err
		}
	}

	// The checkpoint key covers only the (machine, workload, seed) half
	// of the run identity; empty means this run class can't fork.
	ckKey := ""
	if opts.Checkpoints != nil {
		ckKey = CheckpointKey(opts)
	}

	var srcs []workload.Source
	var benchmarks []string
	wlName := opts.Workload.Name
	if opts.Trace != nil {
		srcs = opts.Trace.Sources()
		benchmarks = opts.Trace.Benchmarks()
		if wlName == "" {
			wlName = "trace:" + opts.Trace.Workload
		}
	} else {
		var err error
		if ckKey != "" {
			// Forkable runs share calibrated program cores process-wide:
			// bit-identical streams, but only the group's first run pays
			// for program construction and calibration.
			srcs, err = opts.Workload.SharedGenerators(seed)
		} else {
			srcs, err = opts.Workload.Generators(seed)
		}
		if err != nil {
			return nil, err
		}
		benchmarks = opts.Workload.Benchmarks
	}
	if opts.Record != nil {
		for i := range srcs {
			srcs[i] = opts.Record.Record(srcs[i])
		}
	}
	cpu, err := pipeline.New(cfg, pol, srcs)
	if err != nil {
		return nil, err
	}

	// Restore-or-warm: fork the post-prewarm state from the store, or
	// warm cold and publish it. Any restore failure rebuilds the whole
	// machine from scratch — a half-restored machine must never run.
	warmed := false
	if ckKey != "" {
		if img, ok := opts.Checkpoints.Get(ckKey); ok {
			if rerr := Restore(img, cpu, srcs); rerr == nil {
				ckpt.RecordHit()
				warmed = true
			} else {
				ckpt.RecordFallback()
				pol, err = core.NewPolicyParams(opts.Policy, opts.PolicyParams)
				if err != nil {
					return nil, err
				}
				srcs, err = opts.Workload.Generators(seed)
				if err != nil {
					return nil, err
				}
				cpu, err = pipeline.New(cfg, pol, srcs)
				if err != nil {
					return nil, err
				}
			}
		}
	}
	if !warmed {
		prewarm(cpu, srcs)
		if ckKey != "" {
			if img, serr := Snapshot(ckKey, cpu, srcs, seed); serr == nil {
				opts.Checkpoints.Put(ckKey, img)
				ckpt.RecordMiss(img.ApproxBytes())
			} else {
				// Unsnapshotable (non-quiescent or opaque source): still a
				// cold warmup, just nothing published for siblings.
				ckpt.RecordMiss(0)
			}
		}
	}

	var sampler *timeline.Sampler
	if opts.Timeline != nil {
		sampler = timeline.NewSampler(*opts.Timeline, cpu.NumThreads())
		cpu.EnableGateSampling()
	}

	if err := runCycles(ctx, cpu, warmup); err != nil {
		return nil, err
	}
	cpu.ResetStats()
	if sampler == nil {
		if err := runCycles(ctx, cpu, measure); err != nil {
			return nil, err
		}
	} else if err := runSampled(ctx, cpu, measure, sampler, opts.OnFrame); err != nil {
		return nil, err
	}

	res := &Result{
		Workload: wlName,
		Policy:   pol.Name(),
		Machine:  cfg.Name,
		Cycles:   cpu.Stats.Cycles,
		Threads:  make([]ThreadResult, cpu.NumThreads()),
	}
	for i := range res.Threads {
		ps := cpu.ThreadStats(i)
		res.Threads[i] = ThreadResult{
			Benchmark: benchmarks[i],
			IPC:       ps.IPC(res.Cycles),
			Pipeline:  ps,
			Mem:       cpu.Mem().Threads[i],
			Bpred:     cpu.Bpred().Stats[i],
		}
		res.Throughput += res.Threads[i].IPC
	}
	if sampler != nil {
		res.Timeline = sampler.Timeline()
	}
	return res, nil
}

// runSampled is the measured cycle loop with timeline sampling: it
// advances the CPU in interval-sized chunks (each internally split at
// the cancellation-check granularity, so the Step sequence is
// identical to the unsampled loop) and closes one frame per boundary.
// A trailing partial interval gets a final short frame.
func runSampled(ctx context.Context, cpu *pipeline.CPU, n int64, s *timeline.Sampler, onFrame func(*timeline.Frame)) error {
	interval := s.IntervalCycles()
	for done := int64(0); done < n; {
		chunk := interval
		if rem := n - done; rem < chunk {
			chunk = rem
		}
		if err := runCycles(ctx, cpu, chunk); err != nil {
			return err
		}
		f := s.Sample(cpu, done, done+chunk)
		if onFrame != nil {
			onFrame(f)
		}
		done += chunk
	}
	return nil
}

// SoloWorkload wraps a single benchmark as a one-thread workload (used
// for Table 2a and for relative-IPC baselines).
func SoloWorkload(bench string) workload.Workload {
	return workload.Workload{
		Name:       "solo-" + bench,
		Threads:    1,
		Mix:        workload.MixILP,
		Benchmarks: []string{bench},
	}
}

// RunSolo measures one benchmark alone under ICOUNT on cfg — the
// denominator of the paper's relative-IPC metric.
func RunSolo(cfg *config.Processor, bench string, seed uint64, warmup, measure int64) (*Result, error) {
	return Run(Options{
		Config:        cfg,
		Policy:        "icount",
		Workload:      SoloWorkload(bench),
		Seed:          seed,
		WarmupCycles:  warmup,
		MeasureCycles: measure,
	})
}

// String renders a short human-readable summary.
func (r *Result) String() string {
	s := fmt.Sprintf("%s/%s on %s: throughput %.3f IPC over %d cycles [", r.Policy, r.Workload, r.Machine, r.Throughput, r.Cycles)
	for i, t := range r.Threads {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%.3f", t.Benchmark, t.IPC)
	}
	return s + "]"
}
