package sim

import (
	"reflect"
	"testing"

	"dwarn/internal/config"
	"dwarn/internal/core"
	"dwarn/internal/pipeline"
	"dwarn/internal/timeline"
	"dwarn/internal/workload"
)

// TestTimelineSamplingDoesNotPerturbCounters: turning the sampler on
// must not change a single architectural counter. The sampled run
// drives the same Step sequence through interval-sized chunks, so the
// counter digest is bit-identical with sampling on and off — under
// every registered policy.
func TestTimelineSamplingDoesNotPerturbCounters(t *testing.T) {
	wl, err := workload.GetWorkload("2-MIX")
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range core.Policies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			base := Options{
				Policy:        policy,
				Workload:      wl,
				Seed:          7,
				WarmupCycles:  3000,
				MeasureCycles: 9000,
			}
			plain, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}
			sampled := base
			sampled.Timeline = &timeline.Config{IntervalCycles: 1000}
			withTL, err := Run(sampled)
			if err != nil {
				t.Fatal(err)
			}
			if withTL.Timeline == nil || len(withTL.Timeline.Frames) == 0 {
				t.Fatal("sampled run returned no frames")
			}
			if got, want := withTL.CounterDigest(), plain.CounterDigest(); got != want {
				t.Errorf("counter digest changed with sampling: %s vs %s", got, want)
			}
		})
	}
}

// TestTimelineLiveVsReplay: frames from a trace-replay run are
// bit-identical to the live generator run's frames, for every policy.
// The timeline is a pure function of the Step sequence, and replay
// reproduces that sequence exactly.
func TestTimelineLiveVsReplay(t *testing.T) {
	const (
		wlName  = "2-MIX"
		seed    = 42
		warmup  = 3000
		measure = 9000
		uops    = 90000
	)
	tr := recordTrace(t, wlName, seed, uops)
	wl, err := workload.GetWorkload(wlName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &timeline.Config{IntervalCycles: 1500}

	for _, policy := range core.Policies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			live, err := Run(Options{
				Policy: policy, Workload: wl, Seed: seed,
				WarmupCycles: warmup, MeasureCycles: measure,
				Timeline: cfg,
			})
			if err != nil {
				t.Fatal(err)
			}
			replay, err := Run(Options{
				Policy: policy, Trace: tr, Seed: seed,
				WarmupCycles: warmup, MeasureCycles: measure,
				Timeline: cfg,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(live.Timeline, replay.Timeline) {
				t.Errorf("replay timeline diverges from live:\nlive:   %+v\nreplay: %+v",
					live.Timeline, replay.Timeline)
			}
		})
	}
}

// TestTimelineTrailingPartialInterval: a measure window that is not a
// multiple of the interval still accounts for every cycle — the last
// frame is short, and frame bounds tile the window exactly.
func TestTimelineTrailingPartialInterval(t *testing.T) {
	wl, err := workload.GetWorkload("2-MIX")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{
		Policy: "icount", Workload: wl, Seed: 1,
		WarmupCycles: 1000, MeasureCycles: 2500,
		Timeline: &timeline.Config{IntervalCycles: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Timeline.Frames
	if len(fr) != 3 {
		t.Fatalf("%d frames for 2500 cycles at 1000/interval, want 3", len(fr))
	}
	var prev int64
	for i := range fr {
		if fr[i].StartCycle != prev {
			t.Errorf("frame %d starts at %d, want %d (gap or overlap)", i, fr[i].StartCycle, prev)
		}
		prev = fr[i].EndCycle
	}
	if prev != 2500 {
		t.Errorf("frames end at %d, want 2500", prev)
	}
	if short := fr[2].EndCycle - fr[2].StartCycle; short != 500 {
		t.Errorf("trailing frame spans %d cycles, want 500", short)
	}
}

// TestTimelineOnFrameStreams: OnFrame fires once per closed interval,
// in order, even past the retention cap — streaming sees frames the
// ring has already dropped.
func TestTimelineOnFrameStreams(t *testing.T) {
	wl, err := workload.GetWorkload("2-MIX")
	if err != nil {
		t.Fatal(err)
	}
	var starts []int64
	res, err := Run(Options{
		Policy: "dwarn", Workload: wl, Seed: 3,
		WarmupCycles: 1000, MeasureCycles: 6000,
		Timeline: &timeline.Config{IntervalCycles: 1000, MaxFrames: 2},
		OnFrame:  func(f *timeline.Frame) { starts = append(starts, f.StartCycle) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 6 {
		t.Fatalf("OnFrame fired %d times, want 6", len(starts))
	}
	for i, s := range starts {
		if s != int64(i)*1000 {
			t.Errorf("frame %d starts at %d, want %d", i, s, i*1000)
		}
	}
	if res.Timeline.DroppedFrames != 4 || len(res.Timeline.Frames) != 2 {
		t.Errorf("retention: dropped=%d retained=%d, want 4/2",
			res.Timeline.DroppedFrames, len(res.Timeline.Frames))
	}
}

// TestStepZeroAllocWithSampling extends the PR 4 zero-alloc guarantee
// to the timeline layer: steady-state stepping with gate sampling
// enabled and interval frames being taken allocates nothing.
func TestStepZeroAllocWithSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	wl, err := workload.GetWorkload("2-MIX")
	if err != nil {
		t.Fatal(err)
	}
	srcs, err := wl.Generators(42)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewPolicy("dwarn")
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := pipeline.New(config.Baseline(), pol, srcs)
	if err != nil {
		t.Fatal(err)
	}
	cpu.EnableGateSampling()
	sampler := timeline.NewSampler(timeline.Config{IntervalCycles: 100, MaxFrames: 16}, cpu.NumThreads())

	// Warm past cold-start growth (arena, ROB, event queue), exactly as
	// the base engine guard does.
	cpu.Run(60_000)

	// Measure per step, like TestStepZeroAllocSteadyState, but take a
	// frame every single cycle: an interval boundary is never cheaper
	// than a plain cycle, so even one allocation inside Sample would
	// push the per-step average past zero.
	cycle := int64(60_000)
	avg := testing.AllocsPerRun(3000, func() {
		cpu.Step()
		sampler.Sample(cpu, cycle, cycle+1)
		cycle++
	})
	if avg != 0 {
		t.Errorf("steady-state step+sample allocates %.4f per cycle, want 0", avg)
	}
}
