package sim

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dwarn/internal/core"
	"dwarn/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden counter digests")

// goldenRun is the fixed scenario the digests pin: every registered
// policy on the 4-MIX workload with the default seed. The run is short
// enough to keep the test fast but long enough to exercise squashes,
// flushes, TLB misses, and every event kind.
const (
	goldenWorkload = "4-MIX"
	goldenSeed     = 42
	goldenWarmup   = 3000
	goldenMeasure  = 10000
)

// goldenEntry records one policy's digest plus human-readable counters
// so a mismatch report shows what moved, not just that something did.
type goldenEntry struct {
	Digest    string   `json:"digest"`
	Cycles    int64    `json:"cycles"`
	Committed []uint64 `json:"committed"`
	Fetched   []uint64 `json:"fetched"`
}

// digestResult pairs Result.CounterDigest (the shared equality oracle)
// with human-readable counters so a mismatch report shows what moved.
func digestResult(res *Result) goldenEntry {
	e := goldenEntry{Digest: res.CounterDigest(), Cycles: res.Cycles}
	for i := range res.Threads {
		t := &res.Threads[i]
		e.Committed = append(e.Committed, t.Pipeline.Committed)
		e.Fetched = append(e.Fetched, t.Pipeline.Fetched)
	}
	return e
}

// TestGoldenCounterDigests is the determinism regression oracle for the
// cycle engine: per-thread counter digests for all registered policies
// on a fixed 4-MIX run, pinned from the pre-zero-alloc engine. Any
// refactor of the event queue, instruction lifecycle, or issue select
// must keep these digests bit-identical. Regenerate deliberately with
//
//	go test ./internal/sim -run TestGoldenCounterDigests -update
func TestGoldenCounterDigests(t *testing.T) {
	path := filepath.Join("testdata", "golden_digests.json")
	wl, err := workload.GetWorkload(goldenWorkload)
	if err != nil {
		t.Fatal(err)
	}

	got := make(map[string]goldenEntry)
	for _, policy := range core.Policies() {
		res, err := Run(Options{
			Policy:        policy,
			Workload:      wl,
			Seed:          goldenSeed,
			WarmupCycles:  goldenWarmup,
			MeasureCycles: goldenMeasure,
		})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		got[policy] = digestResult(res)
	}

	if *updateGolden {
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(got), path)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (run with -update to create): %v", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	for policy, g := range got {
		w, ok := want[policy]
		if !ok {
			t.Errorf("%s: no golden entry (run with -update)", policy)
			continue
		}
		if g.Digest != w.Digest {
			t.Errorf("%s: counter digest changed\n got %s (committed %v, fetched %v, cycles %d)\nwant %s (committed %v, fetched %v, cycles %d)",
				policy, g.Digest, g.Committed, g.Fetched, g.Cycles,
				w.Digest, w.Committed, w.Fetched, w.Cycles)
		}
	}
	for policy := range want {
		if _, ok := got[policy]; !ok {
			t.Errorf("%s: golden entry for unregistered policy (run with -update)", policy)
		}
	}
}
