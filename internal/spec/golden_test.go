package spec

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the spec golden files")

// goldenSpecs are the pinned inputs. Changing what they canonicalize or
// fingerprint to is a cache-identity break across every frontend — if
// that is intended (new config field, recalibrated profile), regenerate
// with `go test ./internal/spec -run Golden -update` and say so in the
// commit.
var goldenSpecs = map[string]RunSpec{
	"minimal": {
		Policy:   Policy{Name: "dwarn"},
		Workload: Workload{Name: "4-MIX"},
	},
	"dwarn-warn2-deep": {
		Machine:       &Machine{Name: "deep"},
		Policy:        Policy{Name: "dwarn", Params: map[string]int64{"warn": 2}},
		Workload:      Workload{Name: "2-MEM"},
		Seed:          7,
		WarmupCycles:  5_000,
		MeasureCycles: 10_000,
	},
	"override-solo": {
		Machine:  &Machine{Name: "baseline", Overrides: []byte(`{"MemLatency": 200}`)},
		Policy:   Policy{Name: "stall", Params: map[string]int64{"threshold": 25}},
		Workload: Workload{Solo: "mcf"},
	},
	"custom-benchmarks": {
		Policy:    Policy{Name: "icount"},
		Workload:  Workload{Benchmarks: []string{"gzip", "mcf"}},
		Baselines: true,
	},
}

// goldenRecord is what each golden file pins: the canonical JSON and
// the fingerprint of one spec.
type goldenRecord struct {
	Canonical   *RunSpec `json:"canonical"`
	Fingerprint string   `json:"fingerprint"`
}

func TestGoldenCanonicalFormAndFingerprint(t *testing.T) {
	for name, s := range goldenSpecs {
		t.Run(name, func(t *testing.T) {
			res, err := s.Resolve(nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(goldenRecord{Canonical: &res.Spec, Fingerprint: res.Fingerprint}, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := filepath.Join("testdata", name+".golden.json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("canonical form or fingerprint drifted from %s.\ngot:\n%s\nwant:\n%s\n(run with -update if the change is intended)", path, got, want)
			}
		})
	}
}

// TestGoldenRoundTrip: a golden file's canonical spec must parse back
// and resolve to its own pinned fingerprint — the property that lets
// canonical specs be stored and replayed as files.
func TestGoldenRoundTrip(t *testing.T) {
	if *update {
		t.Skip("regenerating")
	}
	for name := range goldenSpecs {
		raw, err := os.ReadFile(filepath.Join("testdata", name+".golden.json"))
		if err != nil {
			t.Fatal(err)
		}
		var rec goldenRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatal(err)
		}
		fp, err := rec.Canonical.Fingerprint(nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fp != rec.Fingerprint {
			t.Errorf("%s: canonical spec resolves to %s, pinned %s", name, fp, rec.Fingerprint)
		}
	}
}
