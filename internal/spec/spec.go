// Package spec defines the canonical, versioned description of a
// simulation run: one declarative RunSpec — machine, policy with
// parameters, workload, measurement protocol, metrics flags — that
// every frontend speaks. The CLI's -spec files, the service's /v2 API,
// the /v1 adapters, and the experiment runner all translate into
// RunSpecs, so a run has exactly one identity: Resolve validates it,
// canonicalizes it (defaults applied, machine fully resolved, policy
// parameters completed), compiles it to sim.Options, and fingerprints
// it with the same content-addressed key every cache in the system is
// keyed by. SweepSpec is the grid form: list-valued axes that expand
// deterministically into the cartesian product of RunSpecs.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"dwarn/internal/config"
	"dwarn/internal/core"
	"dwarn/internal/sim"
	"dwarn/internal/timeline"
	"dwarn/internal/trace"
	"dwarn/internal/workload"
)

// Version is the current spec schema version. Specs may omit the field
// (meaning "current"); canonical forms always carry it, so persisted
// specs self-describe the schema they were written against.
const Version = 1

// maxNameLen bounds every request-supplied name so hostile specs cannot
// bloat job records or cache keys.
const maxNameLen = 128

// maxBenchmarks bounds a custom workload's benchmark list before the
// machine's hardware-context check applies.
const maxBenchmarks = 64

// Machine selects the processor configuration: a named machine
// ("baseline", "small", "deep"), optionally patched field-by-field by
// Overrides, or a complete inline Config. A nil Machine is the baseline.
type Machine struct {
	// Name is a config.Machines() name; empty means "baseline" (or
	// labels Config when that is set).
	Name string `json:"name,omitempty"`
	// Overrides patches the named base configuration before validation:
	// a JSON object holding any subset of config.Processor's fields
	// (e.g. {"MemLatency": 200}). Mutually exclusive with Config.
	Overrides json.RawMessage `json:"overrides,omitempty"`
	// Config is a complete inline machine description. Canonical specs
	// always carry the fully resolved Config so they are self-contained.
	Config *config.Processor `json:"config,omitempty"`
}

// resolve produces the validated processor configuration.
func (m *Machine) resolve() (*config.Processor, error) {
	if m == nil {
		return config.Baseline(), nil
	}
	if m.Config != nil {
		if len(m.Overrides) > 0 {
			return nil, fmt.Errorf("spec: machine sets both config and overrides")
		}
		cfg := m.Config.Clone()
		if cfg.Name == "" {
			cfg.Name = "custom"
		}
		if m.Name != "" && m.Name != cfg.Name {
			return nil, fmt.Errorf("spec: machine name %q does not match inline config name %q", m.Name, cfg.Name)
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return cfg, nil
	}
	if len(m.Name) > maxNameLen {
		return nil, fmt.Errorf("spec: machine name too long")
	}
	cfg, err := config.ByName(m.Name)
	if err != nil {
		return nil, err
	}
	if len(m.Overrides) > 0 {
		dec := json.NewDecoder(bytes.NewReader(m.Overrides))
		dec.DisallowUnknownFields()
		if err := dec.Decode(cfg); err != nil {
			return nil, fmt.Errorf("spec: machine overrides: %w", err)
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}

// Policy references a fetch policy by registry name plus parameter
// values; absent parameters take their paper defaults. Unknown names,
// unknown parameters, and out-of-range values are validation errors.
type Policy struct {
	Name   string           `json:"name"`
	Params map[string]int64 `json:"params,omitempty"`
}

// ID renders the policy's canonical compact identity ("dwarn",
// "dwarn(warn=2)"): the display form caches and tables key rows by.
func (p Policy) ID() string { return core.PolicyID(p.Name, p.Params) }

// Workload selects what the threads execute. Exactly one of the four
// fields must be set.
type Workload struct {
	// Name is a Table 2(b) workload ("4-MIX").
	Name string `json:"name,omitempty"`
	// Solo runs one benchmark alone (the relative-IPC baseline shape).
	Solo string `json:"solo,omitempty"`
	// Benchmarks builds a custom workload from benchmark names.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Trace replays a recorded uop trace instead of running synthetic
	// generators. The reference is resolver-scoped: a store id for the
	// service, a file path for the CLI. Canonical forms carry the
	// trace's full content digest.
	Trace string `json:"trace,omitempty"`
}

// Validate performs the static checks that need no resolver.
func (w *Workload) Validate() error {
	set := 0
	for _, ok := range []bool{w.Name != "", w.Solo != "", len(w.Benchmarks) > 0, w.Trace != ""} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("spec: workload must set exactly one of name, solo, benchmarks, trace")
	}
	if len(w.Name) > maxNameLen || len(w.Solo) > maxNameLen || len(w.Trace) > maxNameLen {
		return fmt.Errorf("spec: workload name too long")
	}
	switch {
	case w.Name != "":
		if _, err := workload.GetWorkload(w.Name); err != nil {
			return err
		}
	case w.Solo != "":
		if _, err := workload.Get(w.Solo); err != nil {
			return err
		}
	case len(w.Benchmarks) > 0:
		if len(w.Benchmarks) > maxBenchmarks {
			return fmt.Errorf("spec: %d benchmarks exceed the limit of %d", len(w.Benchmarks), maxBenchmarks)
		}
		for _, b := range w.Benchmarks {
			if len(b) > maxNameLen {
				return fmt.Errorf("spec: benchmark name too long")
			}
			if _, err := workload.Get(b); err != nil {
				return err
			}
		}
	}
	return nil
}

// resolve produces the synthetic workload or the loaded trace.
func (w *Workload) resolve(r TraceResolver) (workload.Workload, *trace.Trace, error) {
	switch {
	case w.Trace != "":
		if r == nil {
			return workload.Workload{}, nil, fmt.Errorf("spec: no trace resolver available for trace %q", w.Trace)
		}
		tr, err := r.ResolveTrace(w.Trace)
		if err != nil {
			return workload.Workload{}, nil, err
		}
		return workload.Workload{}, tr, nil
	case w.Name != "":
		wl, err := workload.GetWorkload(w.Name)
		return wl, nil, err
	case w.Solo != "":
		return sim.SoloWorkload(w.Solo), nil, nil
	default:
		// The name encodes the content so the fingerprint of a custom
		// workload is stable across requests (and across API versions).
		wl, err := workload.Custom("custom:"+strings.Join(w.Benchmarks, "+"), w.Benchmarks)
		return wl, nil, err
	}
}

// TraceResolver resolves a Workload.Trace reference to a loaded trace.
// The service resolves store ids (content digests or prefixes); CLIs
// resolve file paths. Specs that do not reference traces never need one.
type TraceResolver interface {
	ResolveTrace(ref string) (*trace.Trace, error)
}

// FileTraces resolves trace references as filesystem paths — the CLI's
// resolver. The zero value is ready to use.
type FileTraces struct{}

// ResolveTrace implements TraceResolver.
func (FileTraces) ResolveTrace(ref string) (*trace.Trace, error) { return trace.ReadFile(ref) }

// RunSpec is the canonical description of one simulation. The zero
// values of the protocol fields mean "paper defaults", so the minimal
// legal spec is a policy plus a workload.
type RunSpec struct {
	// Version is the spec schema version; 0 means current.
	Version int `json:"version,omitempty"`
	// Machine is the processor configuration; nil means baseline.
	Machine *Machine `json:"machine,omitempty"`
	// Policy is the fetch policy reference.
	Policy Policy `json:"policy"`
	// Workload is what the threads execute.
	Workload Workload `json:"workload"`
	// Seed drives all synthetic randomness (0 = the default seed).
	// Replay runs ignore it: recorded streams carry their own history.
	Seed uint64 `json:"seed,omitempty"`
	// WarmupCycles and MeasureCycles control the measurement protocol
	// (0 = the sim package defaults).
	WarmupCycles  int64 `json:"warmup_cycles,omitempty"`
	MeasureCycles int64 `json:"measure_cycles,omitempty"`
	// Baselines additionally runs each benchmark solo under ICOUNT and
	// reports relative-IPC metrics. A metrics flag, not a different
	// simulation: it does not change the fingerprint.
	Baselines bool `json:"baselines,omitempty"`
	// Timeline requests per-interval timeline sampling during the
	// measured window. Like Baselines it is a metrics option, not a
	// different simulation: sampling is observation only and never
	// changes the fingerprint, so a timeline run and its plain twin
	// share one cache identity (a cached result may therefore lack
	// frames).
	Timeline *TimelineSpec `json:"timeline,omitempty"`
}

// TimelineSpec is the spec form of timeline.Config: the sampling
// interval and frame-ring bound, both defaulted when zero. Presence of
// the object enables sampling.
type TimelineSpec struct {
	// IntervalCycles is the sampling period (0 = 10k cycles).
	IntervalCycles int64 `json:"interval_cycles,omitempty"`
	// MaxFrames bounds retained frames; the oldest are dropped beyond
	// it (0 = 1024).
	MaxFrames int `json:"max_frames,omitempty"`
}

// Validate performs every check that needs no trace resolver: schema
// version, machine resolution, policy name and parameter ranges,
// workload shape and registry membership, protocol sanity, and the
// workload-fits-machine constraint.
func (s *RunSpec) Validate() error {
	_, err := s.resolve(nil, true)
	return err
}

// Resolved is a fully compiled RunSpec: its canonical form, the
// sim.Options ready to run, and the content-addressed fingerprint that
// identifies the run everywhere (exp memoiser, dwarnd result cache,
// v1 and v2 API alike).
type Resolved struct {
	// Spec is the canonical form: version stamped, machine carrying the
	// fully resolved config, policy parameters completed with defaults,
	// trace references expanded to content digests, protocol defaults
	// applied. Canonicalization is idempotent, and two specs describing
	// the same simulation canonicalize to the same form.
	Spec RunSpec
	// Options runs the simulation this spec describes.
	Options sim.Options
	// Fingerprint is hex SHA-256 over everything that determines the
	// run's outcome. Baselines is deliberately excluded: it selects
	// extra metrics over the same simulation.
	Fingerprint string
	// CheckpointKey is the (machine, workload, seed) half of the
	// fingerprint — the identity of the run's post-prewarm machine
	// state. Cells of a sweep sharing a key can fork one warmup.
	// Empty when the run can't checkpoint (trace replay, recording,
	// out-of-registry policies).
	CheckpointKey string
}

// Resolve validates, canonicalizes, compiles, and fingerprints the
// spec. r may be nil for specs that do not reference traces.
func (s *RunSpec) Resolve(r TraceResolver) (*Resolved, error) {
	return s.resolve(r, false)
}

// resolve is the one pass behind Validate and Resolve: every check runs
// exactly once, and static mode stops before the work that needs a
// trace resolver (returning a nil Resolved).
func (s *RunSpec) resolve(r TraceResolver, static bool) (*Resolved, error) {
	if s.Version != 0 && s.Version != Version {
		return nil, fmt.Errorf("spec: unsupported spec version %d (current: %d)", s.Version, Version)
	}
	cfg, err := s.Machine.resolve()
	if err != nil {
		return nil, err
	}
	if s.Policy.Name == "" {
		return nil, fmt.Errorf("spec: run needs a policy (known: %v)", core.Policies())
	}
	if len(s.Policy.Name) > maxNameLen {
		return nil, fmt.Errorf("spec: policy name too long")
	}
	params, err := core.CanonicalParams(s.Policy.Name, s.Policy.Params)
	if err != nil {
		return nil, err
	}
	if err := s.Workload.Validate(); err != nil {
		return nil, err
	}
	if s.WarmupCycles < 0 || s.MeasureCycles < 0 {
		return nil, fmt.Errorf("spec: cycle counts must be non-negative")
	}
	if s.Timeline != nil && (s.Timeline.IntervalCycles < 0 || s.Timeline.MaxFrames < 0) {
		return nil, fmt.Errorf("spec: timeline interval and max_frames must be non-negative")
	}
	if s.Baselines && s.Workload.Trace != "" {
		// Relative-IPC baselines re-run each benchmark solo through the
		// synthetic generators, which a trace run replaces.
		return nil, fmt.Errorf("spec: baselines are not supported for trace runs")
	}
	if static && s.Workload.Trace != "" {
		// Trace existence and shape are only checkable with a resolver.
		return nil, nil
	}

	wl, tr, err := s.Workload.resolve(r)
	if err != nil {
		return nil, err
	}
	if tr == nil && wl.Threads > cfg.HardwareContexts {
		return nil, fmt.Errorf("spec: workload %s needs %d contexts but the %s machine has %d",
			wl.Name, wl.Threads, cfg.Name, cfg.HardwareContexts)
	}
	if static {
		return nil, nil
	}

	seed := s.Seed
	if seed == 0 {
		seed = sim.DefaultSeed
	}
	warmup := s.WarmupCycles
	if warmup == 0 {
		warmup = sim.DefaultWarmupCycles
	}
	measure := s.MeasureCycles
	if measure == 0 {
		measure = sim.DefaultMeasureCycles
	}

	canonical := RunSpec{
		Version:       Version,
		Machine:       &Machine{Name: cfg.Name, Config: cfg},
		Policy:        Policy{Name: s.Policy.Name, Params: params},
		Seed:          seed,
		WarmupCycles:  warmup,
		MeasureCycles: measure,
		Baselines:     s.Baselines,
	}
	opts := sim.Options{
		Config:        cfg,
		Policy:        s.Policy.Name,
		PolicyParams:  params,
		Seed:          seed,
		WarmupCycles:  warmup,
		MeasureCycles: measure,
	}
	if s.Timeline != nil {
		// Canonical forms carry the defaulted values so equal requests
		// canonicalize identically; the fingerprint ignores Timeline
		// entirely (sim.Fingerprint hashes only outcome-determining
		// fields).
		tc := timeline.Config{IntervalCycles: s.Timeline.IntervalCycles, MaxFrames: s.Timeline.MaxFrames}.WithDefaults()
		canonical.Timeline = &TimelineSpec{IntervalCycles: tc.IntervalCycles, MaxFrames: tc.MaxFrames}
		opts.Timeline = &tc
	}
	if tr != nil {
		if len(tr.Threads) > cfg.HardwareContexts {
			return nil, fmt.Errorf("spec: trace has %d threads but the %s machine has %d hardware contexts",
				len(tr.Threads), cfg.Name, cfg.HardwareContexts)
		}
		// Replay consumes recorded streams, never the seed; canonical
		// trace specs drop it so equal replays share one identity.
		canonical.Seed = 0
		canonical.Workload = Workload{Trace: tr.Digest}
		opts.Trace = tr
		opts.Seed = 0
	} else {
		switch {
		case s.Workload.Name != "":
			canonical.Workload = Workload{Name: wl.Name}
		case s.Workload.Solo != "":
			canonical.Workload = Workload{Solo: s.Workload.Solo}
		default:
			canonical.Workload = Workload{Benchmarks: append([]string(nil), s.Workload.Benchmarks...)}
		}
		opts.Workload = wl
	}

	return &Resolved{
		Spec:          canonical,
		Options:       opts,
		Fingerprint:   sim.Fingerprint(opts, ""),
		CheckpointKey: sim.CheckpointKey(opts),
	}, nil
}

// Canonicalize returns the canonical form of the spec; see Resolved.Spec.
func (s *RunSpec) Canonicalize(r TraceResolver) (*RunSpec, error) {
	res, err := s.Resolve(r)
	if err != nil {
		return nil, err
	}
	return &res.Spec, nil
}

// Fingerprint returns the content-addressed identity of the run; see
// Resolved.Fingerprint.
func (s *RunSpec) Fingerprint(r TraceResolver) (string, error) {
	res, err := s.Resolve(r)
	if err != nil {
		return "", err
	}
	return res.Fingerprint, nil
}

// SoloBaseline derives the canonical solo-ICOUNT baseline spec for one
// benchmark of a run: the same machine, seed, and protocol, one thread
// under ICOUNT — the denominator of every relative-IPC metric. All
// baseline computations (the service's runs and sweeps, the experiment
// runner, smtsim -spec) MUST derive their solo cells through this one
// function: relative-IPC metrics are cheap only because every consumer
// resolves a given benchmark's baseline to the same fingerprint and
// therefore the same cache entry.
func SoloBaseline(s RunSpec, bench string) RunSpec {
	return RunSpec{
		Machine:       s.Machine,
		Policy:        Policy{Name: "icount"},
		Workload:      Workload{Solo: bench},
		Seed:          s.Seed,
		WarmupCycles:  s.WarmupCycles,
		MeasureCycles: s.MeasureCycles,
	}
}

// WorkloadID renders the workload's display identity: the workload
// name, "solo-<bench>", "custom:<a>+<b>", or "trace:<ref>".
func (w Workload) ID() string {
	switch {
	case w.Trace != "":
		return "trace:" + w.Trace
	case w.Solo != "":
		return "solo-" + w.Solo
	case w.Name != "":
		return w.Name
	default:
		return "custom:" + strings.Join(w.Benchmarks, "+")
	}
}
