package spec

import (
	"encoding/json"
	"testing"

	"dwarn/internal/timeline"
)

// TestTimelineSpecResolve: the canonical form carries the defaulted
// sampling parameters, the compiled sim.Options gets the matching
// timeline.Config, and canonicalization stays idempotent.
func TestTimelineSpecResolve(t *testing.T) {
	res := mustResolve(t, RunSpec{
		Policy:   Policy{Name: "dwarn"},
		Workload: Workload{Name: "4-MIX"},
		Timeline: &TimelineSpec{},
	})
	c := res.Spec.Timeline
	if c == nil || c.IntervalCycles != timeline.DefaultIntervalCycles || c.MaxFrames != timeline.DefaultMaxFrames {
		t.Fatalf("canonical timeline %+v, want defaults", c)
	}
	if o := res.Options.Timeline; o == nil || o.IntervalCycles != timeline.DefaultIntervalCycles {
		t.Fatalf("options timeline %+v", o)
	}
	second := mustResolve(t, res.Spec)
	if second.Spec.Timeline == nil || *second.Spec.Timeline != *c {
		t.Errorf("canonicalization not idempotent: %+v vs %+v", second.Spec.Timeline, c)
	}

	custom := mustResolve(t, RunSpec{
		Policy:   Policy{Name: "dwarn"},
		Workload: Workload{Name: "4-MIX"},
		Timeline: &TimelineSpec{IntervalCycles: 2500, MaxFrames: 7},
	})
	if ct := custom.Spec.Timeline; ct.IntervalCycles != 2500 || ct.MaxFrames != 7 {
		t.Errorf("explicit timeline config mangled: %+v", ct)
	}
}

// TestTimelineSpecFingerprintNeutral: sampling is observation only, so
// requesting a timeline (at any interval) must not move the spec off
// its plain twin's cache identity.
func TestTimelineSpecFingerprintNeutral(t *testing.T) {
	plain := mustResolve(t, RunSpec{Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}})
	for name, ts := range map[string]*TimelineSpec{
		"defaults": {},
		"custom":   {IntervalCycles: 777, MaxFrames: 3},
	} {
		got := mustResolve(t, RunSpec{
			Policy:   Policy{Name: "dwarn"},
			Workload: Workload{Name: "4-MIX"},
			Timeline: ts,
		}).Fingerprint
		if got != plain.Fingerprint {
			t.Errorf("%s timeline changed the fingerprint: %s vs %s", name, got, plain.Fingerprint)
		}
	}
}

func TestTimelineSpecRejectsNegative(t *testing.T) {
	for name, ts := range map[string]*TimelineSpec{
		"interval": {IntervalCycles: -1},
		"frames":   {MaxFrames: -1},
	} {
		s := RunSpec{Policy: Policy{Name: "dwarn"}, Workload: Workload{Name: "4-MIX"}, Timeline: ts}
		if err := s.Validate(); err == nil {
			t.Errorf("negative %s accepted", name)
		}
	}
}

// TestTimelineExampleSpec pins the shipped example: it must load,
// resolve with its requested interval, and share the cache identity of
// the same run without sampling (timeline is fingerprint-neutral).
func TestTimelineExampleSpec(t *testing.T) {
	f, err := LoadFile("../../examples/specs/timeline-dwarn.json")
	if err != nil {
		t.Fatal(err)
	}
	runs, err := f.Runs(0)
	if err != nil || len(runs) != 1 {
		t.Fatalf("Runs = %d, %v", len(runs), err)
	}
	res := mustResolve(t, runs[0])
	if res.Options.Timeline == nil || res.Options.Timeline.IntervalCycles != 10_000 {
		t.Fatalf("example timeline options %+v", res.Options.Timeline)
	}
	plain := runs[0]
	plain.Timeline = nil
	if got := mustResolve(t, plain).Fingerprint; got != res.Fingerprint {
		t.Errorf("example fingerprint %s differs from its plain twin %s", res.Fingerprint, got)
	}
}

// TestTimelineSpecJSONRoundTrip: the wire form survives encode/decode
// with the documented field names.
func TestTimelineSpecJSONRoundTrip(t *testing.T) {
	in := RunSpec{
		Policy:   Policy{Name: "dwarn"},
		Workload: Workload{Name: "4-MIX"},
		Timeline: &TimelineSpec{IntervalCycles: 5000, MaxFrames: 20},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["timeline"]; !ok {
		t.Fatalf("no timeline key in %s", b)
	}
	var out RunSpec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Timeline == nil || *out.Timeline != *in.Timeline {
		t.Errorf("round-trip mangled timeline: %+v", out.Timeline)
	}
}
